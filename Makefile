# FlowGuard reproduction — stdlib-only Go; these targets just bundle the
# common invocations.

GO ?= go

# staticcheck is optional locally (the repo is stdlib-only and cannot
# vendor it); CI installs exactly this version so local runs of
# `make staticcheck` agree with the lint job. Keep the two in sync via
# this single variable — ci.yml reads it out of the Makefile.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: all test test-short race bench bench-raw bench-compare experiments examples vet fgvet staticcheck fmt cover chaos async-smoke fuzz-smoke fleet-smoke sched-smoke fuzz oracle-soak cover-ratchet

all: vet test

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# bench runs the orchestrated tier-1 suite via fgperf: N interleaved
# iterations, summarized into a schema-versioned BENCH_<date>.json
# trajectory artifact. bench-raw is the plain unorchestrated run.
bench:
	$(GO) run ./cmd/fgperf -short

bench-raw:
	$(GO) test -bench=. -benchmem ./...

# bench-compare re-runs the tier-1 suite and gates it against a baseline
# artifact: exit 1 on a statistically significant >10% median slowdown
# in any tier-1 hot-path benchmark (Mann-Whitney U, p < 0.05).
#   make bench-compare                      # vs the committed baseline
#   make bench-compare BASE=BENCH_2026-08-06.json
BASE ?= bench/baseline.json

bench-compare:
	$(GO) run ./cmd/fgperf -short -base $(BASE) -gate

experiments:
	$(GO) run ./cmd/fgbench -all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/webserver
	$(GO) run ./examples/attacks
	$(GO) run ./examples/fuzztrain
	$(GO) run ./examples/multiproc

chaos:
	$(GO) test -race -short -run 'Chaos' ./internal/faults/ -count=1

# async-smoke races the asynchronous checking pipeline end to end: the
# guard's conformance/containment tests, the ToPA capture-concurrency
# suite, and the async slice of the chaos soak (worker stalls/crashes
# under every OnDegraded mode).
async-smoke:
	$(GO) test -race -short -run 'Async|ToPA|Chaos' ./internal/guard/ ./internal/trace/ipt/ ./internal/faults/ -count=1

# fleet-smoke is the CI fleet gate: a bounded flowguardd run under the
# race detector (2k processes, fork storms, invariant assertions — the
# process exits non-zero on any ledger/sharing/inheritance breach),
# plus the raced fleet test wall (fork-inheritance conformance, sharded
# admission fairness, artifact sharing, fleet chaos scenarios).
fleet-smoke:
	$(GO) run -race ./cmd/flowguardd -smoke
	$(GO) test -race -short -run 'Fleet|Fork|Artifact|BinaryGuards' ./internal/harness/ ./internal/guard/ ./internal/itc/ ./internal/kernelsim/ ./internal/faults/ -count=1

# sched-smoke races the preemptive multi-core world end to end: the
# time-sliced scheduler (threads, signals, core affinity), the PIP/CR3
# trace demux, the multicore guard conformance tests, the slice-boundary
# chaos scenarios, and the demux round-trip property (bounded seed count
# under -short; the full 1000-seed sweep runs in the oracle wall).
sched-smoke:
	$(GO) test -race -short -run 'Multicore|Demux|Preempt|Clone|Thread|Signal|SIGKILL|Slice|Gettid' ./internal/kernelsim/ ./internal/trace/ipt/ ./internal/guard/ ./internal/faults/ ./internal/harness/ -count=1

fuzz-smoke:
	$(GO) test -run 'Fuzz' ./internal/trace/ipt/ ./internal/harness/ ./internal/perfstat/ ./internal/itc/ -count=1

# Short real fuzzing campaigns (one -fuzz pattern per go test invocation).
fuzz:
	$(GO) test -fuzz FuzzTNTAnnotations -fuzztime 30s ./internal/trace/ipt/
	$(GO) test -fuzz FuzzWindowDecoder -fuzztime 30s ./internal/trace/ipt/
	$(GO) test -fuzz FuzzHybridVsOracle -fuzztime 60s ./internal/harness/

# Long differential soak of the optimized hybrid pipeline against the
# naive oracle (internal/oracle); nightly CI runs this.
oracle-soak:
	$(GO) run ./cmd/fgbench -oracle 10000

# Coverage ratchet for the packages the oracle suite exercises hardest.
# Raise the floors when coverage grows; never lower them.
COVER_FLOOR_GUARD     ?= 89.0
COVER_FLOOR_IPT       ?= 85.0
COVER_FLOOR_KERNELSIM ?= 74.0
COVER_FLOOR_HARNESS   ?= 61.0
# The analysis tree's framework is exercised mostly by the analyzer
# subpackages' fixture tests, so its floor is measured as the union
# profile across the whole ./internal/analysis/... tree.
COVER_FLOOR_ANALYSIS  ?= 82.0

cover-ratchet:
	@check() { \
	  pct=$$($(GO) test -cover $$1 -count=1 | awk '{for(i=1;i<=NF;i++) if ($$i ~ /%$$/) v=$$i} END {gsub(/%/,"",v); print v}'); \
	  echo "$$1 coverage: $$pct% (floor $$2%)"; \
	  awk -v p="$$pct" -v f="$$2" 'BEGIN {exit !(p+0 >= f+0)}' || { echo "coverage ratchet failed for $$1"; exit 1; }; \
	}; \
	checkunion() { \
	  prof=$$(mktemp); \
	  $(GO) test -count=1 -coverprofile=$$prof -coverpkg=$$1 $$1 >/dev/null && \
	  pct=$$($(GO) tool cover -func=$$prof | awk 'END {gsub(/%/,"",$$NF); print $$NF}'); \
	  rm -f $$prof; \
	  echo "$$1 coverage: $$pct% (floor $$2%)"; \
	  awk -v p="$$pct" -v f="$$2" 'BEGIN {exit !(p+0 >= f+0)}' || { echo "coverage ratchet failed for $$1"; exit 1; }; \
	}; \
	check ./internal/guard/ $(COVER_FLOOR_GUARD) && \
	check ./internal/trace/ipt/ $(COVER_FLOOR_IPT) && \
	check ./internal/kernelsim/ $(COVER_FLOOR_KERNELSIM) && \
	check ./internal/harness/ $(COVER_FLOOR_HARNESS) && \
	checkunion ./internal/analysis/... $(COVER_FLOOR_ANALYSIS)

# vet is the pre-commit gate (and part of `make all`): the stock go vet
# suite plus fgvet, the repo's own analyzers (oracle import isolation,
# fail-closed verdict handling, hot-path allocation, stats lockstep,
# lock discipline). fgvet exits non-zero on any unsuppressed finding.
vet: fgvet
	$(GO) vet ./...

fgvet:
	$(GO) run ./cmd/fgvet -quiet ./...

# staticcheck runs honnef.co's suite when the binary is available (CI
# pins it; locally install the same version or skip). `go run` would
# need network access to fetch the module, so this requires a
# preinstalled binary on PATH.
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 || { \
	  echo "staticcheck not installed; CI runs $(STATICCHECK_VERSION). Install with:"; \
	  echo "  go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)"; \
	  exit 1; \
	}
	staticcheck ./...

fmt:
	gofmt -l .

cover:
	$(GO) test -cover ./...
