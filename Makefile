# FlowGuard reproduction — stdlib-only Go; these targets just bundle the
# common invocations.

GO ?= go

.PHONY: all test test-short race bench experiments examples vet fmt cover chaos fuzz-smoke

all: vet test

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

experiments:
	$(GO) run ./cmd/fgbench -all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/webserver
	$(GO) run ./examples/attacks
	$(GO) run ./examples/fuzztrain
	$(GO) run ./examples/multiproc

chaos:
	$(GO) test -race -short -run 'Chaos' ./internal/faults/ -count=1

fuzz-smoke:
	$(GO) test -run 'Fuzz' ./internal/trace/ipt/ -count=1

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

cover:
	$(GO) test -cover ./...
