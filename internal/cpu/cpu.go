// Package cpu implements the emulator executing the synthetic ISA.
//
// It plays two roles from the paper's infrastructure:
//
//   - the protected machine itself: processes run on this CPU while the
//     IPT model observes retired branches, and
//   - the QEMU user-mode emulator that the AFL-style fuzzer instruments
//     during the dynamic training phase (§4.3) — the fuzzer attaches a
//     coverage sink to the same branch-event stream.
//
// The emulator also charges each retired instruction to a calibrated
// cycle model so experiments can report deterministic overheads next to
// wall-clock measurements (see EXPERIMENTS.md for calibration).
package cpu

import (
	"errors"
	"fmt"

	"flowguard/internal/isa"
	"flowguard/internal/module"
	"flowguard/internal/trace"
)

// SyscallHandler receives SYSCALL traps. The handler may mutate CPU state
// (registers, PC, even SP — sigreturn does). Returning an error stops the
// CPU; the kernel uses sentinel errors for clean exits and kills.
type SyscallHandler interface {
	Syscall(c *CPU) error
}

// ErrHalted is returned by Run when the program executes HALT.
var ErrHalted = errors.New("cpu: halted")

// Fault wraps a runtime fault (memory, illegal instruction, divide by
// zero) with the faulting PC; the kernel model turns it into SIGSEGV.
type Fault struct {
	PC  uint64
	Err error
}

func (f *Fault) Error() string { return fmt.Sprintf("fault at pc=%#x: %v", f.PC, f.Err) }

// Unwrap exposes the underlying fault cause.
func (f *Fault) Unwrap() error { return f.Err }

// Per-opcode cycle costs of the calibrated model. The base unit is "one
// simple ALU op = 1 cycle"; memory operations and multiplies cost more,
// matching the relative weights used to calibrate Table 1 (EXPERIMENTS.md).
var opCycles = [...]uint64{
	isa.NOP: 1, isa.HALT: 1, isa.MOV: 1, isa.MOVI: 1, isa.MOVIH: 1,
	isa.LEA: 1, isa.ADD: 1, isa.SUB: 1, isa.MUL: 3, isa.DIV: 20,
	isa.MOD: 20, isa.AND: 1, isa.OR: 1, isa.XOR: 1, isa.SHL: 1,
	isa.SHR: 1, isa.ADDI: 1, isa.CMP: 1, isa.CMPI: 1, isa.LD: 2,
	isa.ST: 2, isa.LDB: 2, isa.STB: 2, isa.PUSH: 2, isa.POP: 2,
	isa.JMP: 1, isa.JCC: 1, isa.CALL: 2, isa.JMPR: 2, isa.CALLR: 3,
	isa.RET: 2, isa.SYSCALL: 50,
}

// CPU is one hardware thread executing an address space.
type CPU struct {
	Regs  [isa.NumRegs]uint64
	PC    uint64
	FlagZ bool
	FlagN bool

	// AS is the process address space the CPU executes in.
	AS *module.AddressSpace
	// Sys handles SYSCALL traps; nil makes SYSCALL fault.
	Sys SyscallHandler
	// Branch, if non-nil, observes every retired CoFI. This is the
	// attachment point of the tracing hardware (IPT/BTS/LBR) and of the
	// fuzzer's coverage instrumentation.
	Branch trace.Sink

	// Instrs counts retired instructions.
	Instrs uint64
	// CycleCount accumulates the calibrated cycle model.
	CycleCount uint64

	// PendingTrap, when set, stops the CPU before the next instruction
	// with that error — the asynchronous-interrupt delivery point (the
	// PMI-triggered kill uses it).
	PendingTrap error

	halted bool
}

// New returns a CPU ready to run the address space from its entry point:
// PC at the executable entry and SP at the top of the stack.
func New(as *module.AddressSpace) *CPU {
	c := &CPU{AS: as}
	c.Reset()
	return c
}

// Reset rewinds registers to the process-start state.
func (c *CPU) Reset() {
	c.Regs = [isa.NumRegs]uint64{}
	c.Regs[isa.SP] = c.AS.InitialSP
	c.PC = c.AS.Exec.CodeBase + c.AS.Exec.Mod.Entry
	c.FlagZ, c.FlagN = false, false
	c.Instrs, c.CycleCount = 0, 0
	c.halted = false
}

// Halted reports whether the CPU has executed HALT.
func (c *CPU) Halted() bool { return c.halted }

// SP returns the stack pointer.
func (c *CPU) SP() uint64 { return c.Regs[isa.SP] }

// SetSP sets the stack pointer.
func (c *CPU) SetSP(v uint64) { c.Regs[isa.SP] = v }

func (c *CPU) fault(pc uint64, err error) error { return &Fault{PC: pc, Err: err} }

func (c *CPU) push(pc, v uint64) error {
	sp := c.Regs[isa.SP] - 8
	if err := c.AS.WriteU64(sp, v); err != nil {
		return c.fault(pc, err)
	}
	c.Regs[isa.SP] = sp
	return nil
}

func (c *CPU) pop(pc uint64) (uint64, error) {
	v, err := c.AS.ReadU64(c.Regs[isa.SP])
	if err != nil {
		return 0, c.fault(pc, err)
	}
	c.Regs[isa.SP] += 8
	return v, nil
}

func (c *CPU) cond(cc isa.Cond) bool {
	switch cc {
	case isa.EQ:
		return c.FlagZ
	case isa.NE:
		return !c.FlagZ
	case isa.LT:
		return c.FlagN
	case isa.LE:
		return c.FlagN || c.FlagZ
	case isa.GT:
		return !c.FlagN && !c.FlagZ
	case isa.GE:
		return !c.FlagN
	}
	return false
}

func (c *CPU) setFlags(a, b uint64) {
	d := int64(a) - int64(b)
	c.FlagZ = d == 0
	c.FlagN = d < 0
}

func (c *CPU) emit(b trace.Branch) {
	if c.Branch != nil {
		c.Branch.Branch(b)
	}
}

// Step retires one instruction.
func (c *CPU) Step() error {
	if c.halted {
		return ErrHalted
	}
	if c.PendingTrap != nil {
		err := c.PendingTrap
		c.PendingTrap = nil
		return err
	}
	pc := c.PC
	raw, err := c.AS.FetchInstr(pc)
	if err != nil {
		return c.fault(pc, err)
	}
	in, err := isa.Decode(raw)
	if err != nil {
		return c.fault(pc, err)
	}
	c.Instrs++
	c.CycleCount += opCycles[in.Op]
	next := pc + isa.InstrSize
	r := &c.Regs

	switch in.Op {
	case isa.NOP:
	case isa.HALT:
		c.halted = true
		c.PC = next
		return ErrHalted
	case isa.MOV:
		r[in.Rd] = r[in.Rs]
	case isa.MOVI:
		r[in.Rd] = uint64(int64(in.Imm))
	case isa.MOVIH:
		r[in.Rd] = r[in.Rd]&0xffffffff | uint64(uint32(in.Imm))<<32
	case isa.LEA:
		r[in.Rd] = next + uint64(int64(in.Imm))
	case isa.ADD:
		r[in.Rd] += r[in.Rs]
	case isa.SUB:
		r[in.Rd] -= r[in.Rs]
	case isa.MUL:
		r[in.Rd] *= r[in.Rs]
	case isa.DIV:
		if r[in.Rs] == 0 {
			return c.fault(pc, errors.New("divide by zero"))
		}
		r[in.Rd] /= r[in.Rs]
	case isa.MOD:
		if r[in.Rs] == 0 {
			return c.fault(pc, errors.New("divide by zero"))
		}
		r[in.Rd] %= r[in.Rs]
	case isa.AND:
		r[in.Rd] &= r[in.Rs]
	case isa.OR:
		r[in.Rd] |= r[in.Rs]
	case isa.XOR:
		r[in.Rd] ^= r[in.Rs]
	case isa.SHL:
		r[in.Rd] <<= r[in.Rs] & 63
	case isa.SHR:
		r[in.Rd] >>= r[in.Rs] & 63
	case isa.ADDI:
		r[in.Rd] += uint64(int64(in.Imm))
	case isa.CMP:
		c.setFlags(r[in.Rd], r[in.Rs])
	case isa.CMPI:
		c.setFlags(r[in.Rd], uint64(int64(in.Imm)))
	case isa.LD:
		v, err := c.AS.ReadU64(r[in.Rs] + uint64(int64(in.Imm)))
		if err != nil {
			return c.fault(pc, err)
		}
		r[in.Rd] = v
	case isa.ST:
		if err := c.AS.WriteU64(r[in.Rd]+uint64(int64(in.Imm)), r[in.Rs]); err != nil {
			return c.fault(pc, err)
		}
	case isa.LDB:
		v, err := c.AS.ReadU8(r[in.Rs] + uint64(int64(in.Imm)))
		if err != nil {
			return c.fault(pc, err)
		}
		r[in.Rd] = uint64(v)
	case isa.STB:
		if err := c.AS.WriteU8(r[in.Rd]+uint64(int64(in.Imm)), byte(r[in.Rs])); err != nil {
			return c.fault(pc, err)
		}
	case isa.PUSH:
		if err := c.push(pc, r[in.Rs]); err != nil {
			return err
		}
	case isa.POP:
		v, err := c.pop(pc)
		if err != nil {
			return err
		}
		r[in.Rd] = v

	case isa.JMP:
		t := in.BranchTarget(pc)
		c.emit(trace.Branch{Class: isa.CoFIDirect, Source: pc, Target: t, Taken: true})
		c.PC = t
		return nil
	case isa.JCC:
		taken := c.cond(in.Cond())
		t := next
		if taken {
			t = in.BranchTarget(pc)
		}
		c.emit(trace.Branch{Class: isa.CoFICond, Source: pc, Target: t, Taken: taken})
		c.PC = t
		return nil
	case isa.CALL:
		if err := c.push(pc, next); err != nil {
			return err
		}
		t := in.BranchTarget(pc)
		c.emit(trace.Branch{Class: isa.CoFIDirect, Source: pc, Target: t, Taken: true})
		c.PC = t
		return nil
	case isa.JMPR:
		t := r[in.Rs]
		c.emit(trace.Branch{Class: isa.CoFIIndirect, Source: pc, Target: t, Taken: true})
		c.PC = t
		return nil
	case isa.CALLR:
		if err := c.push(pc, next); err != nil {
			return err
		}
		t := r[in.Rs]
		c.emit(trace.Branch{Class: isa.CoFIIndirect, Source: pc, Target: t, Taken: true})
		c.PC = t
		return nil
	case isa.RET:
		t, err := c.pop(pc)
		if err != nil {
			return err
		}
		c.emit(trace.Branch{Class: isa.CoFIRet, Source: pc, Target: t, Taken: true})
		c.PC = t
		return nil
	case isa.SYSCALL:
		// Far transfer: user-only tracing sees the kernel entry/exit
		// boundary (FUP + TIP pair). PC is advanced first so handlers
		// observe the resume address and may overwrite it (sigreturn).
		c.emit(trace.Branch{Class: isa.CoFIFarTransfer, Source: pc, Target: next, Taken: true})
		c.PC = next
		if c.Sys == nil {
			return c.fault(pc, errors.New("syscall with no handler"))
		}
		return c.Sys.Syscall(c)
	default:
		return c.fault(pc, fmt.Errorf("unimplemented opcode %v", in.Op))
	}

	c.PC = next
	return nil
}

// Run retires instructions until the program halts, a fault or syscall
// error stops it, or maxInstrs is exceeded (0 means no limit). It returns
// the number of instructions retired in this call.
func (c *CPU) Run(maxInstrs uint64) (uint64, error) {
	start := c.Instrs
	for {
		if err := c.Step(); err != nil {
			return c.Instrs - start, err
		}
		if maxInstrs > 0 && c.Instrs-start >= maxInstrs {
			return c.Instrs - start, fmt.Errorf("cpu: instruction budget %d exhausted", maxInstrs)
		}
	}
}
