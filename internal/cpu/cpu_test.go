package cpu_test

import (
	"errors"
	"testing"

	"flowguard/internal/asm"
	"flowguard/internal/cpu"
	"flowguard/internal/isa"
	"flowguard/internal/module"
	"flowguard/internal/trace"
)

// run assembles a single-module executable, runs it to HALT and returns
// the CPU plus any recorded branches.
func run(t *testing.T, build func(b *asm.Builder)) (*cpu.CPU, []trace.Branch) {
	t.Helper()
	b := asm.NewModule("app")
	build(b)
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	as, err := module.Load(m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(as)
	var branches []trace.Branch
	c.Branch = trace.SinkFunc(func(br trace.Branch) { branches = append(branches, br) })
	if _, err := c.Run(100000); !errors.Is(err, cpu.ErrHalted) {
		t.Fatalf("Run: %v (pc=%#x)", err, c.PC)
	}
	return c, branches
}

func TestArithmeticLoop(t *testing.T) {
	c, _ := run(t, func(b *asm.Builder) {
		f := b.Func("main", 0, true)
		b.SetEntry("main")
		// r0 = sum(1..10)
		f.Movi(isa.R0, 0).Movi(isa.R1, 1)
		f.Label("loop")
		f.Add(isa.R0, isa.R1)
		f.Addi(isa.R1, 1)
		f.Cmpi(isa.R1, 10)
		f.Jcc(isa.LE, "loop")
		f.Halt()
	})
	if c.Regs[isa.R0] != 55 {
		t.Errorf("sum = %d, want 55", c.Regs[isa.R0])
	}
}

func TestCallRetAndStack(t *testing.T) {
	c, branches := run(t, func(b *asm.Builder) {
		main := b.Func("main", 0, true)
		b.SetEntry("main")
		main.Movi(isa.R0, 20).Movi(isa.R1, 22)
		main.Call("add2")
		main.Halt()
		add := b.Func("add2", 2, false)
		add.Prologue(0)
		add.Add(isa.R0, isa.R1)
		add.Epilogue()
	})
	if c.Regs[isa.R0] != 42 {
		t.Errorf("add2 result = %d, want 42", c.Regs[isa.R0])
	}
	if c.SP() != c.AS.InitialSP {
		t.Errorf("SP = %#x after balanced call, want %#x", c.SP(), c.AS.InitialSP)
	}
	// Branch stream: direct CALL then RET.
	var classes []isa.CoFIClass
	for _, br := range branches {
		classes = append(classes, br.Class)
	}
	want := []isa.CoFIClass{isa.CoFIDirect, isa.CoFIRet}
	if len(classes) != len(want) {
		t.Fatalf("branch classes = %v, want %v", classes, want)
	}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("branch classes = %v, want %v", classes, want)
		}
	}
	// The RET target must be the instruction after the CALL.
	ret := branches[1]
	call := branches[0]
	if ret.Target != call.Source+isa.InstrSize {
		t.Errorf("ret target = %#x, want %#x", ret.Target, call.Source+isa.InstrSize)
	}
}

func TestIndirectCallThroughTable(t *testing.T) {
	c, branches := run(t, func(b *asm.Builder) {
		b.FuncTable("ops", []string{"inc", "dec"}, false)
		main := b.Func("main", 0, true)
		b.SetEntry("main")
		main.AddrOf(isa.R6, "ops")
		main.Ld(isa.R6, isa.R6, 8) // ops[1] = dec
		main.Movi(isa.R0, 10)
		main.CallR(isa.R6)
		main.Halt()
		b.Func("inc", 1, false).Addi(isa.R0, 1).Ret()
		b.Func("dec", 1, false).Addi(isa.R0, -1).Ret()
	})
	if c.Regs[isa.R0] != 9 {
		t.Errorf("result = %d, want 9 (dec)", c.Regs[isa.R0])
	}
	var indirect *trace.Branch
	for i := range branches {
		if branches[i].Class == isa.CoFIIndirect {
			indirect = &branches[i]
		}
	}
	if indirect == nil {
		t.Fatal("no indirect branch recorded")
	}
	want, _ := c.AS.Exec.SymbolAddr("dec")
	if indirect.Target != want {
		t.Errorf("indirect target = %#x, want dec at %#x", indirect.Target, want)
	}
}

func TestConditionalFlags(t *testing.T) {
	// Exercise every condition code both ways via a bitmask result.
	c, _ := run(t, func(b *asm.Builder) {
		f := b.Func("main", 0, true)
		b.SetEntry("main")
		f.Movi(isa.R0, 0)
		f.Movi(isa.R1, 5)
		conds := []struct {
			c   isa.Cond
			imm int32
			bit int32
		}{
			{isa.EQ, 5, 1}, {isa.NE, 4, 2}, {isa.LT, 6, 4},
			{isa.LE, 5, 8}, {isa.GT, 4, 16}, {isa.GE, 5, 32},
			// And the not-taken variants must not set bits.
			{isa.EQ, 4, 64}, {isa.LT, 5, 128}, {isa.GT, 9, 256},
		}
		for i, cc := range conds {
			label := string(rune('a' + i))
			f.Cmpi(isa.R1, cc.imm)
			f.Jcc(invert(cc.c), label)
			f.Movi(isa.R2, cc.bit)
			f.Or(isa.R0, isa.R2)
			f.Label(label)
		}
		f.Halt()
	})
	if got := c.Regs[isa.R0]; got != 1|2|4|8|16|32 {
		t.Errorf("condition mask = %#b, want %#b", got, 1|2|4|8|16|32)
	}
}

// invert returns the complementary condition.
func invert(c isa.Cond) isa.Cond {
	switch c {
	case isa.EQ:
		return isa.NE
	case isa.NE:
		return isa.EQ
	case isa.LT:
		return isa.GE
	case isa.GE:
		return isa.LT
	case isa.GT:
		return isa.LE
	default:
		return isa.GT
	}
}

func TestMemoryOps(t *testing.T) {
	c, _ := run(t, func(b *asm.Builder) {
		b.DataSpace("buf", 64, false)
		f := b.Func("main", 0, true)
		b.SetEntry("main")
		f.AddrOf(isa.R1, "buf")
		f.Movi(isa.R2, 0x1234)
		f.St(isa.R1, 0, isa.R2)
		f.Ld(isa.R0, isa.R1, 0)
		f.Movi(isa.R3, 0xab)
		f.Stb(isa.R1, 9, isa.R3)
		f.Ldb(isa.R4, isa.R1, 9)
		f.Halt()
	})
	if c.Regs[isa.R0] != 0x1234 {
		t.Errorf("ld/st round trip = %#x, want 0x1234", c.Regs[isa.R0])
	}
	if c.Regs[isa.R4] != 0xab {
		t.Errorf("ldb/stb round trip = %#x, want 0xab", c.Regs[isa.R4])
	}
}

func runExpectFault(t *testing.T, build func(b *asm.Builder)) *cpu.Fault {
	t.Helper()
	b := asm.NewModule("app")
	build(b)
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	as, err := module.Load(m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(as)
	_, err = c.Run(300000)
	var f *cpu.Fault
	if !errors.As(err, &f) {
		t.Fatalf("Run = %v, want *cpu.Fault", err)
	}
	return f
}

func TestDEPFaultOnStackExecution(t *testing.T) {
	// Jumping to the stack must fault: NX is part of the threat model.
	f := runExpectFault(t, func(b *asm.Builder) {
		fn := b.Func("main", 0, true)
		b.SetEntry("main")
		fn.Mov(isa.R1, isa.SP)
		fn.Addi(isa.R1, -64)
		fn.JmpR(isa.R1)
	})
	var mf *module.Fault
	if !errors.As(f, &mf) || mf.Kind != module.FaultPerm {
		t.Errorf("fault = %v, want permission fault", f)
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	runExpectFault(t, func(b *asm.Builder) {
		fn := b.Func("main", 0, true)
		b.SetEntry("main")
		fn.Movi(isa.R0, 10).Movi(isa.R1, 0)
		fn.Div(isa.R0, isa.R1)
		fn.Halt()
	})
}

func TestStackOverflowFaults(t *testing.T) {
	runExpectFault(t, func(b *asm.Builder) {
		fn := b.Func("main", 0, true)
		b.SetEntry("main")
		fn.Label("down")
		fn.Push(isa.R0)
		fn.Jmp("down")
	})
}

func TestSyscallWithoutHandlerFaults(t *testing.T) {
	runExpectFault(t, func(b *asm.Builder) {
		fn := b.Func("main", 0, true)
		b.SetEntry("main")
		fn.Syscall()
	})
}

func TestCycleAccounting(t *testing.T) {
	c, _ := run(t, func(b *asm.Builder) {
		f := b.Func("main", 0, true)
		b.SetEntry("main")
		f.Movi(isa.R0, 1) // 1 cycle
		f.Ld(isa.R1, isa.SP, -8)
		f.Halt()
	})
	// movi(1) + ld(2) + halt(1) — plus the fetch of halt itself.
	if c.Instrs != 3 {
		t.Errorf("instrs = %d, want 3", c.Instrs)
	}
	if c.CycleCount != 4 {
		t.Errorf("cycles = %d, want 4", c.CycleCount)
	}
}

func TestResetRestoresEntryState(t *testing.T) {
	b := asm.NewModule("app")
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	f.Movi(isa.R0, 9).Halt()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	as, err := module.Load(m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(as)
	if _, err := c.Run(100); !errors.Is(err, cpu.ErrHalted) {
		t.Fatal(err)
	}
	c.Reset()
	if c.Halted() || c.Regs[isa.R0] != 0 || c.PC != as.Exec.CodeBase {
		t.Errorf("Reset left state: halted=%v r0=%d pc=%#x", c.Halted(), c.Regs[isa.R0], c.PC)
	}
	if _, err := c.Run(100); !errors.Is(err, cpu.ErrHalted) {
		t.Fatalf("second run: %v", err)
	}
	if c.Regs[isa.R0] != 9 {
		t.Errorf("second run r0 = %d, want 9", c.Regs[isa.R0])
	}
}

func TestMovihAndLea(t *testing.T) {
	c, _ := run(t, func(b *asm.Builder) {
		f := b.Func("main", 0, true)
		b.SetEntry("main")
		f.Movu64(isa.R0, 0xdeadbeefcafebabe)
		f.Halt()
	})
	if c.Regs[isa.R0] != 0xdeadbeefcafebabe {
		t.Errorf("movu64 = %#x", c.Regs[isa.R0])
	}
}

func TestShiftMasking(t *testing.T) {
	// Shift counts are masked to 6 bits, like real hardware.
	c, _ := run(t, func(b *asm.Builder) {
		f := b.Func("main", 0, true)
		b.SetEntry("main")
		f.Movi(isa.R0, 1)
		f.Movi(isa.R1, 65) // 65 & 63 == 1
		f.Shl(isa.R0, isa.R1)
		f.Halt()
	})
	if c.Regs[isa.R0] != 2 {
		t.Errorf("1 << 65 = %d, want 2 (masked shift)", c.Regs[isa.R0])
	}
}

func TestPendingTrapStopsBeforeNextInstruction(t *testing.T) {
	b := asm.NewModule("app")
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	f.Movi(isa.R0, 1)
	f.Movi(isa.R0, 2)
	f.Halt()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	as, err := module.Load(m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(as)
	if err := c.Step(); err != nil { // first movi
		t.Fatal(err)
	}
	sentinel := errors.New("pmi")
	c.PendingTrap = sentinel
	if err := c.Step(); !errors.Is(err, sentinel) {
		t.Fatalf("Step = %v, want pending trap", err)
	}
	if c.PendingTrap != nil {
		t.Error("trap not consumed")
	}
	if c.Regs[isa.R0] != 1 {
		t.Errorf("r0 = %d; the second movi must not have retired", c.Regs[isa.R0])
	}
	// Execution resumes normally afterwards.
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.R0] != 2 {
		t.Errorf("r0 = %d after resume, want 2", c.Regs[isa.R0])
	}
}
