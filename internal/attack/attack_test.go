package attack_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"flowguard/internal/apps"
	"flowguard/internal/attack"
	"flowguard/internal/isa"
	"flowguard/internal/module"
)

func vulndAS(t *testing.T) *module.AddressSpace {
	t.Helper()
	as, err := apps.Vulnd().Load()
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func TestFindGadgetsShape(t *testing.T) {
	as := vulndAS(t)
	gs := attack.FindGadgets(as, 5)
	if len(gs) < 20 {
		t.Fatalf("found %d gadgets, want plenty in libc-linked binaries", len(gs))
	}
	for _, g := range gs {
		last := g.Instrs[len(g.Instrs)-1]
		if last.Op != isa.RET {
			t.Fatalf("gadget %v does not end in ret", g)
		}
		if len(g.Instrs) > 5 {
			t.Fatalf("gadget %v exceeds max length", g)
		}
		for i, in := range g.Instrs[:len(g.Instrs)-1] {
			if in.Op.IsCoFI() && in.Op != isa.SYSCALL {
				t.Fatalf("gadget %v has a branch at %d", g, i)
			}
		}
		if g.String() == "" {
			t.Fatal("empty gadget rendering")
		}
	}
}

func TestFindPopChainLocatesCtxRestore(t *testing.T) {
	as := vulndAS(t)
	gs := attack.FindGadgets(as, 6)
	g, ok := attack.FindPopChain(gs, isa.R7, isa.R2, isa.R1, isa.R0)
	if !ok {
		t.Fatal("ctx_restore pop chain not found")
	}
	want, _ := as.ResolveSymbol("ctx_restore")
	if g.Addr != want {
		t.Errorf("pop chain at %#x, want ctx_restore %#x", g.Addr, want)
	}
	// A bare ret exists too.
	if _, ok := attack.FindPopChain(gs); !ok {
		t.Error("no bare ret gadget")
	}
	// An impossible chain does not.
	if _, ok := attack.FindPopChain(gs, isa.FP, isa.SP, isa.FP, isa.SP, isa.FP); ok {
		t.Error("found a chain that should not exist")
	}
}

func TestFindSyscallRet(t *testing.T) {
	as := vulndAS(t)
	g, ok := attack.FindSyscallRet(attack.FindGadgets(as, 3))
	if !ok {
		t.Fatal("no syscall;ret gadget")
	}
	if m := as.FindModule(g.Addr); m == nil || m.Mod.Name != "libc" {
		t.Errorf("syscall gadget outside libc: %v", g)
	}
}

func TestChainSerialization(t *testing.T) {
	var c attack.Chain
	c.Word(0x1122334455667788).Word(1)
	b := c.Bytes()
	if c.Len() != 16 || len(b) != 16 {
		t.Fatalf("len = %d/%d", c.Len(), len(b))
	}
	if !bytes.Equal(b[:8], []byte{0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11}) {
		t.Errorf("little-endian encoding broken: % x", b[:8])
	}
}

// TestPayloadsAreWellFormed: every builder produces a parseable vulnd
// request stream: benign prelude, then "P <n>\n" with exactly n payload
// bytes.
func TestPayloadsAreWellFormed(t *testing.T) {
	as := vulndAS(t)
	builders := map[string]func(*module.AddressSpace) ([]byte, error){
		"rop":     attack.BuildROPWrite,
		"srop":    attack.BuildSROP,
		"ret2lib": attack.BuildRet2Lib,
		"flush": func(as *module.AddressSpace) ([]byte, error) {
			return attack.BuildHistoryFlush(as, 40)
		},
	}
	for name, build := range builders {
		payload, err := build(as)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := string(payload)
		idx := strings.Index(s, "P ")
		if idx < 0 {
			t.Fatalf("%s: no overflow request", name)
		}
		nl := strings.IndexByte(s[idx:], '\n')
		declared := 0
		if _, err := fmt.Sscanf(s[idx:idx+nl], "P %d", &declared); err != nil {
			t.Fatalf("%s: bad overflow header %q", name, s[idx:idx+nl])
		}
		raw := payload[idx+nl+1:]
		if len(raw) != declared {
			t.Errorf("%s: declared %d payload bytes, got %d", name, declared, len(raw))
		}
		// The filler must cover buffer + saved fp before the chain.
		if declared <= 104 {
			t.Errorf("%s: payload %d too short to smash the return address", name, declared)
		}
	}
}
