// Package attack constructs the control-flow hijacking payloads of the
// paper's security evaluation (§7.1.2): a traditional ROP chain and an
// SROP attack against the implanted nginx vulnerability, plus a
// return-to-lib chain and a history-flushing attempt, all ending in the
// attacker goal of writing arbitrary data to a chosen file or spawning a
// process.
//
// The attacker model matches §3.3: full knowledge of the binaries and
// the (non-ASLR) layout, a remote input vector, DEP/NX in force — so
// code injection is impossible and the payload must reuse existing code.
// Gadgets are aligned instruction sequences ending in RET (the
// fixed-width ISA has no unintended instructions); the register-loading
// gadget is libc's ctx_restore (the setcontext analogue) and the kernel
// entry is the syscall;ret tail of libc's raw_syscall.
package attack

import (
	"encoding/binary"
	"fmt"

	"flowguard/internal/isa"
	"flowguard/internal/kernelsim"
	"flowguard/internal/module"
)

// Gadget is an aligned code sequence ending in RET.
type Gadget struct {
	Addr   uint64
	Instrs []isa.Instr
}

func (g Gadget) String() string {
	s := fmt.Sprintf("%#x:", g.Addr)
	for _, in := range g.Instrs {
		s += " " + in.String() + ";"
	}
	return s
}

// FindGadgets scans every module's code for RET-terminated sequences of
// at most maxLen instructions. Sequences may contain SYSCALL (the
// syscall;ret gadget) but no other control flow.
func FindGadgets(as *module.AddressSpace, maxLen int) []Gadget {
	var out []Gadget
	for _, l := range as.Mods {
		code := l.Mod.Code
		for off := 0; off+isa.InstrSize <= len(code); off += isa.InstrSize {
			in, err := isa.Decode(code[off:])
			if err != nil || in.Op != isa.RET {
				continue
			}
			// Extend backwards while instructions stay straight-line.
			for n := 1; n <= maxLen; n++ {
				start := off - (n-1)*isa.InstrSize
				if start < 0 {
					break
				}
				ok := true
				var instrs []isa.Instr
				for i := 0; i < n; i++ {
					gi, err := isa.Decode(code[start+i*isa.InstrSize:])
					if err != nil {
						ok = false
						break
					}
					if i < n-1 && gi.Op.IsCoFI() && gi.Op != isa.SYSCALL {
						ok = false
						break
					}
					instrs = append(instrs, gi)
				}
				if !ok {
					break
				}
				out = append(out, Gadget{Addr: l.CodeBase + uint64(start), Instrs: instrs})
			}
		}
	}
	return out
}

// FindPopChain locates a gadget that is exactly POP reg_0; ...;
// POP reg_{n-1}; RET.
func FindPopChain(gs []Gadget, regs ...isa.Reg) (Gadget, bool) {
	for _, g := range gs {
		if len(g.Instrs) != len(regs)+1 {
			continue
		}
		match := true
		for i, r := range regs {
			if g.Instrs[i].Op != isa.POP || g.Instrs[i].Rd != r {
				match = false
				break
			}
		}
		if match && g.Instrs[len(regs)].Op == isa.RET {
			return g, true
		}
	}
	return Gadget{}, false
}

// FindSyscallRet locates the SYSCALL; RET gadget.
func FindSyscallRet(gs []Gadget) (Gadget, bool) {
	for _, g := range gs {
		if len(g.Instrs) == 2 && g.Instrs[0].Op == isa.SYSCALL && g.Instrs[1].Op == isa.RET {
			return g, true
		}
	}
	return Gadget{}, false
}

// Chain assembles the stack words of a ROP payload.
type Chain struct {
	words []uint64
}

// Word appends a literal stack word.
func (c *Chain) Word(v uint64) *Chain {
	c.words = append(c.words, v)
	return c
}

// Gadget appends a gadget address.
func (c *Chain) Gadget(g Gadget) *Chain { return c.Word(g.Addr) }

// Len returns the chain size in bytes.
func (c *Chain) Len() int { return 8 * len(c.words) }

// Bytes serializes the chain little-endian.
func (c *Chain) Bytes() []byte {
	out := make([]byte, 0, c.Len())
	for _, w := range c.words {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], w)
		out = append(out, b[:]...)
	}
	return out
}

// Vulnd overflow geometry: h_post reads the payload into a 64-byte
// buffer at fp-96; the saved frame pointer sits at [fp] and the return
// address at [fp+8], so 96+8 filler bytes precede the chain.
const vulndFill = 96 + 8

// vulndRequest wraps a raw overflow payload in the vulnerable server's
// "P <n>" upload request.
func vulndRequest(payload []byte) []byte {
	req := []byte(fmt.Sprintf("P %d\n", len(payload)))
	return append(req, payload...)
}

// prelude is benign traffic sent before the exploit so the trace buffer
// holds realistic history (the attacks in the paper hijack a running
// server, not a fresh process).
func prelude() []byte {
	return []byte("G /index\nG /static/logo\nH /health\n")
}

// targets gathers the shared building blocks of the concrete attacks.
type targets struct {
	popAll  Gadget // pop r7; pop r2; pop r1; pop r0; ret (ctx_restore)
	syscall Gadget // syscall; ret (raw_syscall tail)
	spawn   uint64 // libc spawn() entry (execve wrapper)
	pathStr uint64 // address of a NUL-terminated string usable as a path
	dataStr uint64 // address of known bytes to exfiltrate
}

func resolveTargets(as *module.AddressSpace) (targets, error) {
	gs := FindGadgets(as, 6)
	var t targets
	var ok bool
	t.popAll, ok = FindPopChain(gs, isa.R7, isa.R2, isa.R1, isa.R0)
	if !ok {
		return t, fmt.Errorf("attack: no register-load gadget (ctx_restore) found")
	}
	t.syscall, ok = FindSyscallRet(gs)
	if !ok {
		return t, fmt.Errorf("attack: no syscall;ret gadget found")
	}
	t.spawn, ok = as.ResolveSymbol("spawn")
	if !ok {
		return t, fmt.Errorf("attack: libc spawn not found")
	}
	// "len\x00" from the executable's data doubles as the target file
	// name; "bad request\n" as the exfiltrated contents.
	if t.pathStr, ok = as.Exec.SymbolAddr("k_len"); !ok {
		return t, fmt.Errorf("attack: k_len string not found")
	}
	if t.dataStr, ok = as.Exec.SymbolAddr("s_bad"); !ok {
		return t, fmt.Errorf("attack: s_bad string not found")
	}
	return t, nil
}

// ROPFileName is the file the traditional ROP chain writes into.
const ROPFileName = "len"

// ROPMarker is the data the chain writes (the first 12 bytes of s_bad).
const ROPMarker = "bad request\n"

// BuildROPWrite constructs the traditional ROP attack of §7.1.2: open a
// file, write attacker-chosen bytes into it, exit. Under FlowGuard the
// violation is detected at the write syscall endpoint.
func BuildROPWrite(as *module.AddressSpace) ([]byte, error) {
	t, err := resolveTargets(as)
	if err != nil {
		return nil, err
	}
	var c Chain
	// open(path): fd will be 3 (first descriptor of the process).
	c.Gadget(t.popAll).
		Word(kernelsim.SysOpen).Word(0).Word(0).Word(t.pathStr).
		Gadget(t.syscall)
	// write(3, dataStr, len(ROPMarker))
	c.Gadget(t.popAll).
		Word(kernelsim.SysWrite).Word(uint64(len(ROPMarker))).Word(t.dataStr).Word(3).
		Gadget(t.syscall)
	// exit(0)
	c.Gadget(t.popAll).
		Word(kernelsim.SysExit).Word(0).Word(0).Word(0).
		Gadget(t.syscall)
	payload := append(make([]byte, vulndFill), c.Bytes()...)
	return append(prelude(), vulndRequest(payload)...), nil
}

// BuildSROP constructs the SROP attack of §7.1.2: invoke sigreturn with
// a forged signal frame that resumes execution inside libc's spawn with
// the attacker's path in R0. Under FlowGuard the violation is detected
// at the sigreturn syscall endpoint.
func BuildSROP(as *module.AddressSpace) ([]byte, error) {
	t, err := resolveTargets(as)
	if err != nil {
		return nil, err
	}
	var c Chain
	// sigreturn()
	c.Gadget(t.popAll).
		Word(kernelsim.SysSigreturn).Word(0).Word(0).Word(0).
		Gadget(t.syscall)
	// Forged frame read from SP by sigreturn: 16 GPRs, PC, flags.
	var frame [kernelsim.SigFrameWords]uint64
	frame[0] = t.pathStr                   // R0 = path for execve
	frame[isa.SP] = module.StackTop - 4096 // a sane stack
	frame[16] = t.spawn                    // PC = spawn()
	frame[17] = 0                          // flags
	for _, w := range frame {
		c.Word(w)
	}
	payload := append(make([]byte, vulndFill), c.Bytes()...)
	return append(prelude(), vulndRequest(payload)...), nil
}

// BuildRet2Lib constructs the return-to-lib attack: return straight into
// libc's spawn (a legitimate function entry) with the path popped into
// R0 — no syscall gadget needed. Under FlowGuard the violation is
// detected at the execve endpoint; the multi-module stride rule (§7.1.1)
// guarantees the pre-hijack executable history is part of the checked
// window.
func BuildRet2Lib(as *module.AddressSpace) ([]byte, error) {
	t, err := resolveTargets(as)
	if err != nil {
		return nil, err
	}
	var c Chain
	c.Gadget(t.popAll).
		Word(kernelsim.SysGetpid). // benign r7 filler
		Word(0).Word(0).Word(t.pathStr).
		Word(t.spawn) // ret -> spawn(path)
	payload := append(make([]byte, vulndFill), c.Bytes()...)
	return append(prelude(), vulndRequest(payload)...), nil
}

// BuildEndpointPruning constructs the endpoint-pruning attack §7.1.2
// warns about: the hijacked flow performs its (covert) computation —
// here a long hash over the stack region — and exits without ever
// touching a guarded syscall, so endpoint-based interception never
// fires. Only the PMI fallback (Policy.CheckOnPMI) catches it: the hash
// loop floods the ToPA buffer with TNT packets, and the buffer-full
// interrupt's window still holds the hijacking TIP edges.
func BuildEndpointPruning(as *module.AddressSpace) ([]byte, error) {
	t, err := resolveTargets(as)
	if err != nil {
		return nil, err
	}
	hashFnv, ok := as.ResolveSymbol("hash_fnv")
	if !ok {
		return nil, fmt.Errorf("attack: libc hash_fnv not found")
	}
	var c Chain
	// hash_fnv(stackBase, 150000): ~150k conditional branches, enough to
	// fill a 16 KiB ToPA once. The stack region is readable and large.
	c.Gadget(t.popAll).
		Word(kernelsim.SysGetpid). // benign r7 filler
		Word(0).
		Word(150_000).                            // r1 = n
		Word(module.StackTop - module.StackSize). // r0 = buf
		Word(hashFnv)                             // ret -> hash_fnv
	// hash_fnv returns into the exit stage: no guarded endpoint touched.
	c.Gadget(t.popAll).
		Word(kernelsim.SysExit).Word(0).Word(0).Word(0).
		Gadget(t.syscall)
	payload := append(make([]byte, vulndFill), c.Bytes()...)
	return append(prelude(), vulndRequest(payload)...), nil
}

// BuildHistoryFlush constructs the history-flushing attempt of §7.1.1: a
// long run of "NOP-like" ret-to-ret hops intended to push the hijack out
// of a short inspection window (the attack class that defeats
// 16-entry-LBR monitors), followed by the ROP write. With pkt_count >=
// 30 and graph-checked hops it must still be detected: the hops
// themselves are not ITC-CFG edges.
func BuildHistoryFlush(as *module.AddressSpace, hops int) ([]byte, error) {
	t, err := resolveTargets(as)
	if err != nil {
		return nil, err
	}
	retOnly, ok := FindPopChain(FindGadgets(as, 1))
	if !ok {
		return nil, fmt.Errorf("attack: no bare ret gadget")
	}
	var c Chain
	for i := 0; i < hops; i++ {
		c.Gadget(retOnly)
	}
	c.Gadget(t.popAll).
		Word(kernelsim.SysWrite).Word(uint64(len(ROPMarker))).Word(t.dataStr).Word(1).
		Gadget(t.syscall)
	c.Gadget(t.popAll).
		Word(kernelsim.SysExit).Word(0).Word(0).Word(0).
		Gadget(t.syscall)
	payload := append(make([]byte, vulndFill), c.Bytes()...)
	return append(prelude(), vulndRequest(payload)...), nil
}
