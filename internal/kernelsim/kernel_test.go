package kernelsim_test

import (
	"bytes"
	"errors"
	"testing"

	"flowguard/internal/asm"
	"flowguard/internal/isa"
	"flowguard/internal/kernelsim"
	"flowguard/internal/module"
)

// helloModule writes "hello\n" to stdout and exits 7.
func helloModule(t *testing.T) *module.Module {
	t.Helper()
	b := asm.NewModule("hello")
	b.DataBytes("msg", []byte("hello\n"), false)
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	f.Movu64(isa.R7, kernelsim.SysWrite)
	f.Movi(isa.R0, 1)
	f.AddrOf(isa.R1, "msg")
	f.Movi(isa.R2, 6)
	f.Syscall()
	f.Movu64(isa.R7, kernelsim.SysExit)
	f.Movi(isa.R0, 7)
	f.Syscall()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWriteAndExit(t *testing.T) {
	k := kernelsim.New()
	p, err := k.Spawn("hello", helloModule(t), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := k.Run(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Exited || st.Code != 7 {
		t.Fatalf("status = %v, want exit 7", st)
	}
	if !bytes.Equal(p.Stdout, []byte("hello\n")) {
		t.Errorf("stdout = %q, want hello", p.Stdout)
	}
}

func TestStdinRead(t *testing.T) {
	b := asm.NewModule("cat")
	b.DataSpace("buf", 32, false)
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	f.Movu64(isa.R7, kernelsim.SysRead)
	f.Movi(isa.R0, 0)
	f.AddrOf(isa.R1, "buf")
	f.Movi(isa.R2, 32)
	f.Syscall()
	// echo it back: r2 = bytes read
	f.Mov(isa.R2, isa.R0)
	f.Movu64(isa.R7, kernelsim.SysWrite)
	f.Movi(isa.R0, 1)
	f.AddrOf(isa.R1, "buf")
	f.Syscall()
	f.Movu64(isa.R7, kernelsim.SysExit)
	f.Movi(isa.R0, 0)
	f.Syscall()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	k := kernelsim.New()
	p, err := k.Spawn("cat", m, nil, nil, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	if string(p.Stdout) != "ping" {
		t.Errorf("stdout = %q, want ping", p.Stdout)
	}
}

func TestFileRoundTrip(t *testing.T) {
	b := asm.NewModule("fio")
	b.DataBytes("path", []byte("out.txt\x00"), false)
	b.DataBytes("msg", []byte("DATA"), false)
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	f.Movu64(isa.R7, kernelsim.SysOpen)
	f.AddrOf(isa.R0, "path")
	f.Syscall()
	f.Mov(isa.R5, isa.R0) // fd
	f.Movu64(isa.R7, kernelsim.SysWrite)
	f.Mov(isa.R0, isa.R5)
	f.AddrOf(isa.R1, "msg")
	f.Movi(isa.R2, 4)
	f.Syscall()
	f.Movu64(isa.R7, kernelsim.SysClose)
	f.Mov(isa.R0, isa.R5)
	f.Syscall()
	f.Movu64(isa.R7, kernelsim.SysExit)
	f.Movi(isa.R0, 0)
	f.Syscall()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	k := kernelsim.New()
	p, err := k.Spawn("fio", m, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	got, ok := k.FileContents("out.txt")
	if !ok || string(got) != "DATA" {
		t.Errorf("file contents = %q (ok=%v), want DATA", got, ok)
	}
}

func TestInterceptorVeto(t *testing.T) {
	k := kernelsim.New()
	var intercepted []uint64
	k.Intercept(kernelsim.SysWrite, func(p *kernelsim.Process, sysno uint64) error {
		intercepted = append(intercepted, sysno)
		k.Kill(p, kernelsim.SIGKILL)
		return kernelsim.ErrKilled
	})
	p, err := k.Spawn("hello", helloModule(t), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := k.Run(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Killed || st.Signal != kernelsim.SIGKILL {
		t.Fatalf("status = %v, want SIGKILL", st)
	}
	if len(intercepted) != 1 || intercepted[0] != kernelsim.SysWrite {
		t.Errorf("intercepted = %v, want [write]", intercepted)
	}
	if len(p.Stdout) != 0 {
		t.Errorf("vetoed write still produced output %q", p.Stdout)
	}

	// Uninstall restores the original handler.
	k.Uninstall(kernelsim.SysWrite)
	p2, err := k.Spawn("hello", helloModule(t), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := k.Run(p2, 1000); err != nil || !st.Exited {
		t.Fatalf("after uninstall: %v, %v", st, err)
	}
}

func TestInterceptorErrorSurfaced(t *testing.T) {
	// An interceptor failing with a non-sentinel error is a broken
	// checker, not a verdict: the process stops fail-closed (SIGKILL),
	// the run is not aborted, and the error is recorded on the kernel.
	k := kernelsim.New()
	boom := errors.New("checker exploded")
	k.Intercept(kernelsim.SysWrite, func(p *kernelsim.Process, sysno uint64) error {
		return boom
	})
	p, err := k.Spawn("hello", helloModule(t), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := k.Run(p, 1000)
	if err != nil {
		t.Fatalf("interceptor error aborted the run: %v", err)
	}
	if !st.Killed || st.Signal != kernelsim.SIGKILL {
		t.Fatalf("status = %v, want fail-closed SIGKILL", st)
	}
	var ie *kernelsim.InterceptError
	if !errors.As(st.FaultErr, &ie) {
		t.Fatalf("FaultErr = %v, want *InterceptError", st.FaultErr)
	}
	if ie.PID != p.PID || ie.Sysno != kernelsim.SysWrite || !errors.Is(ie, boom) {
		t.Errorf("InterceptError = %+v, want pid %d write wrapping boom", ie, p.PID)
	}
	recorded := k.InterceptErrors()
	if len(recorded) != 1 || recorded[0] != ie {
		t.Errorf("InterceptErrors() = %v, want the one recorded failure", recorded)
	}
	if len(p.Stdout) != 0 {
		t.Errorf("failed interception still produced output %q", p.Stdout)
	}
}

func TestInterceptorPassThrough(t *testing.T) {
	k := kernelsim.New()
	calls := 0
	k.Intercept(kernelsim.SysWrite, func(p *kernelsim.Process, sysno uint64) error {
		calls++
		return nil
	})
	p, _ := k.Spawn("hello", helloModule(t), nil, nil, nil)
	st, err := k.Run(p, 1000)
	if err != nil || !st.Exited {
		t.Fatalf("run: %v %v", st, err)
	}
	if calls != 1 {
		t.Errorf("interceptor calls = %d, want 1", calls)
	}
	if string(p.Stdout) != "hello\n" {
		t.Errorf("stdout = %q; pass-through interceptor must not block the write", p.Stdout)
	}
}

func TestSigreturnRestoresFullContext(t *testing.T) {
	// Build a forged signal frame on the stack, invoke sigreturn, and
	// verify the full register file (including SP and PC) comes from the
	// frame — the capability SROP abuses.
	b := asm.NewModule("srop")
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	// Reserve the frame.
	f.Addi(isa.SP, -8*kernelsim.SigFrameWords)
	// frame[i] = 100+i for the 16 GPRs.
	for i := 0; i < isa.NumRegs; i++ {
		f.Movi(isa.R6, int32(100+i))
		f.St(isa.SP, int32(8*i), isa.R6)
	}
	// frame[16] = &landing (PC), frame[17] = flags(Z).
	f.AddrOf(isa.R6, "landing")
	f.St(isa.SP, 8*16, isa.R6)
	f.Movi(isa.R6, 1)
	f.St(isa.SP, 8*17, isa.R6)
	f.Movu64(isa.R7, kernelsim.SysSigreturn)
	f.Syscall()
	f.Halt() // never reached
	g := b.Func("landing", 0, false)
	g.Halt()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	k := kernelsim.New()
	p, err := k.Spawn("srop", m, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := k.Run(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Exited {
		t.Fatalf("status = %v, want clean halt at landing", st)
	}
	c := p.CPU
	landing, _ := p.AS.Exec.SymbolAddr("landing")
	if c.PC != landing+isa.InstrSize {
		t.Errorf("PC = %#x, want past landing %#x", c.PC, landing)
	}
	for i := 0; i < isa.NumRegs; i++ {
		if c.Regs[i] != uint64(100+i) {
			t.Errorf("r%d = %d, want %d", i, c.Regs[i], 100+i)
		}
	}
	if !c.FlagZ || c.FlagN {
		t.Errorf("flags Z=%v N=%v, want Z only", c.FlagZ, c.FlagN)
	}
}

func TestSegfaultOnWildPointer(t *testing.T) {
	b := asm.NewModule("segv")
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	f.Movi(isa.R1, 16)
	f.Ld(isa.R0, isa.R1, 0) // unmapped
	f.Halt()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	k := kernelsim.New()
	p, _ := k.Spawn("segv", m, nil, nil, nil)
	st, err := k.Run(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Killed || st.Signal != kernelsim.SIGSEGV || st.FaultErr == nil {
		t.Errorf("status = %+v, want SIGSEGV with fault", st)
	}
}

func TestExecveRecorded(t *testing.T) {
	b := asm.NewModule("ex")
	b.DataBytes("sh", []byte("/bin/sh\x00"), false)
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	f.Movu64(isa.R7, kernelsim.SysExecve)
	f.AddrOf(isa.R0, "sh")
	f.Syscall()
	f.Movu64(isa.R7, kernelsim.SysExit)
	f.Movi(isa.R0, 0)
	f.Syscall()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	k := kernelsim.New()
	p, _ := k.Spawn("ex", m, nil, nil, nil)
	if _, err := k.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	if len(p.Execves) != 1 || p.Execves[0].Path != "/bin/sh" {
		t.Errorf("execves = %+v, want one /bin/sh", p.Execves)
	}
}

func TestMmapMprotectSyscalls(t *testing.T) {
	b := asm.NewModule("mm")
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	f.Movu64(isa.R7, kernelsim.SysMmap)
	f.Movi(isa.R0, 0)
	f.Movi(isa.R1, 0x1000)
	f.Movi(isa.R2, kernelsim.ProtRead|kernelsim.ProtWrite)
	f.Syscall()
	f.Mov(isa.R5, isa.R0) // base
	f.Movi(isa.R6, 0x99)
	f.St(isa.R5, 0, isa.R6)
	f.Movu64(isa.R7, kernelsim.SysMprotect)
	f.Mov(isa.R0, isa.R5)
	f.Movi(isa.R1, 0x1000)
	f.Movi(isa.R2, kernelsim.ProtRead)
	f.Syscall()
	f.St(isa.R5, 8, isa.R6) // faults: now read-only
	f.Halt()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	k := kernelsim.New()
	p, _ := k.Spawn("mm", m, nil, nil, nil)
	st, err := k.Run(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Killed || st.Signal != kernelsim.SIGSEGV {
		t.Fatalf("status = %v, want SIGSEGV from post-mprotect store", st)
	}
}

func TestGettimeofdayMonotonic(t *testing.T) {
	b := asm.NewModule("tod")
	b.DataSpace("tv", 16, false)
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	for i := 0; i < 2; i++ {
		f.Movu64(isa.R7, kernelsim.SysGettimeofday)
		f.AddrOf(isa.R0, "tv")
		f.Addi(isa.R0, int32(8*i))
		f.Syscall()
	}
	f.AddrOf(isa.R1, "tv")
	f.Ld(isa.R2, isa.R1, 0)
	f.Ld(isa.R3, isa.R1, 8)
	f.Halt()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	k := kernelsim.New()
	p, _ := k.Spawn("tod", m, nil, nil, nil)
	if _, err := k.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	t1, t2 := p.CPU.Regs[isa.R2], p.CPU.Regs[isa.R3]
	if t2 <= t1 {
		t.Errorf("clock not monotonic: %d then %d", t1, t2)
	}
}

func TestUnknownSyscallReturnsError(t *testing.T) {
	b := asm.NewModule("unk")
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	f.Movu64(isa.R7, 999)
	f.Syscall()
	f.Halt()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	k := kernelsim.New()
	p, _ := k.Spawn("unk", m, nil, nil, nil)
	st, err := k.Run(p, 1000)
	if err != nil || !st.Exited {
		t.Fatalf("run: %v %v", st, err)
	}
	if p.CPU.Regs[isa.R0] != ^uint64(0) {
		t.Errorf("unknown syscall returned %d, want -1", int64(p.CPU.Regs[isa.R0]))
	}
}

func TestErrSentinelsAreDistinct(t *testing.T) {
	if errors.Is(kernelsim.ErrExited, kernelsim.ErrKilled) {
		t.Fatal("sentinels must be distinct")
	}
}

func TestRunInterleaved(t *testing.T) {
	k := kernelsim.New()
	p1, err := k.Spawn("a", helloModule(t), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := k.Spawn("b", helloModule(t), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var switches []int
	k.OnSwitch = func(p *kernelsim.Process) { switches = append(switches, p.PID) }
	sts, err := k.RunInterleaved([]*kernelsim.Process{p1, p2}, 4, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range sts {
		if !st.Exited || st.Code != 7 {
			t.Errorf("proc %d: %v, want exit 7", i, st)
		}
	}
	if string(p1.Stdout) != "hello\n" || string(p2.Stdout) != "hello\n" {
		t.Errorf("outputs: %q / %q", p1.Stdout, p2.Stdout)
	}
	// The quantum forces genuine interleaving: both PIDs appear, and the
	// schedule alternates at least once before either finishes.
	seen := map[int]bool{}
	alternations := 0
	for i, pid := range switches {
		seen[pid] = true
		if i > 0 && switches[i-1] != pid {
			alternations++
		}
	}
	if len(seen) != 2 || alternations < 2 {
		t.Errorf("switch schedule %v not interleaved", switches)
	}
}

func TestRunInterleavedBudget(t *testing.T) {
	// An infinite-loop module must trip the total budget.
	b := asm.NewModule("spin")
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	f.Label("x")
	f.Jmp("x")
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	k := kernelsim.New()
	p, _ := k.Spawn("spin", m, nil, nil, nil)
	if _, err := k.RunInterleaved([]*kernelsim.Process{p}, 16, 1000); err == nil {
		t.Fatal("budget not enforced")
	}
}
