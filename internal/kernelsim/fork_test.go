package kernelsim_test

// Fork lifecycle unit tests: both sides of the fork return correctly,
// the child gets an isolated address-space clone with copied register
// state, each side advances its own stdin cursor, and a vetoing OnFork
// hook (the kernel module's protection-inheritance failure path) kills
// the fork without ever scheduling an unprotected child.

import (
	"errors"
	"testing"

	"flowguard/internal/asm"
	"flowguard/internal/isa"
	"flowguard/internal/kernelsim"
	"flowguard/internal/module"
)

// forkSidesModule forks, then each side overwrites the shared data byte
// with its own tag, rereads it, writes it to stdout and exits — the
// parent additionally exits with the child's PID as its code.
func forkSidesModule(t *testing.T) *module.Module {
	t.Helper()
	b := asm.NewModule("forker")
	b.DataBytes("tag", []byte{'?'}, true)
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	f.Movu64(isa.R7, kernelsim.SysFork)
	f.Syscall()
	f.Mov(isa.R11, isa.R0) // fork return: 0 in the child, child PID in the parent
	f.Cmpi(isa.R11, 0)
	f.Jcc(isa.EQ, "child")
	f.Movi(isa.R8, 'p')
	f.Jmp("stamp")
	f.Label("child")
	f.Movi(isa.R8, 'c')
	f.Label("stamp")
	f.AddrOf(isa.R9, "tag")
	f.Stb(isa.R9, 0, isa.R8)
	// write(1, tag, 1) — rereads through the (cloned) address space.
	f.Movu64(isa.R7, kernelsim.SysWrite)
	f.Movi(isa.R0, 1)
	f.AddrOf(isa.R1, "tag")
	f.Movi(isa.R2, 1)
	f.Syscall()
	f.Movu64(isa.R7, kernelsim.SysExit)
	f.Mov(isa.R0, isa.R11)
	f.Syscall()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestForkBothSidesRun(t *testing.T) {
	k := kernelsim.New()
	p, err := k.Spawn("forker", forkSidesModule(t), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sts, err := k.RunInterleaved([]*kernelsim.Process{p}, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 {
		t.Fatalf("got %d exit statuses, want parent + child", len(sts))
	}
	if !sts[0].Exited || sts[0].Code == 0 {
		t.Fatalf("parent status %v, want exit with the child PID", sts[0])
	}
	if !sts[1].Exited || sts[1].Code != 0 {
		t.Fatalf("child status %v, want exit 0", sts[1])
	}
	// Each side stamped its own tag into its own address space: the
	// clone isolated the write, so neither output is '?' or mixed.
	if string(p.Stdout) != "p" {
		t.Errorf("parent stdout %q, want %q", p.Stdout, "p")
	}
	kids := k.Procs()
	child := kids[sts[0].Code]
	if child == nil {
		t.Fatalf("child PID %d not in the process table", sts[0].Code)
	}
	if string(child.Stdout) != "c" {
		t.Errorf("child stdout %q, want %q (address space not isolated)", child.Stdout, "c")
	}
	if child.CR3 == p.CR3 {
		t.Error("child shares the parent's CR3; trace filtering cannot tell them apart")
	}
	if child.AS == p.AS {
		t.Error("child shares the parent's address space object")
	}
}

// forkStdinModule forks, then both sides read one byte from stdin and
// echo it: each side has its own stdin cursor copied at fork time, so
// both read the same next byte.
func forkStdinModule(t *testing.T) *module.Module {
	t.Helper()
	b := asm.NewModule("forkcat")
	b.DataSpace("buf", 8, false)
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	// Consume one byte before the fork so the copied cursor is nonzero.
	f.Movu64(isa.R7, kernelsim.SysRead)
	f.Movi(isa.R0, 0)
	f.AddrOf(isa.R1, "buf")
	f.Movi(isa.R2, 1)
	f.Syscall()
	f.Movu64(isa.R7, kernelsim.SysFork)
	f.Syscall()
	f.Movu64(isa.R7, kernelsim.SysRead)
	f.Movi(isa.R0, 0)
	f.AddrOf(isa.R1, "buf")
	f.Movi(isa.R2, 1)
	f.Syscall()
	f.Movu64(isa.R7, kernelsim.SysWrite)
	f.Movi(isa.R0, 1)
	f.AddrOf(isa.R1, "buf")
	f.Movi(isa.R2, 1)
	f.Syscall()
	f.Movu64(isa.R7, kernelsim.SysExit)
	f.Movi(isa.R0, 0)
	f.Syscall()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestForkCopiesStdinCursor(t *testing.T) {
	k := kernelsim.New()
	p, err := k.Spawn("forkcat", forkStdinModule(t), nil, nil, []byte("xyz"))
	if err != nil {
		t.Fatal(err)
	}
	sts, err := k.RunInterleaved([]*kernelsim.Process{p}, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 {
		t.Fatalf("got %d exit statuses, want 2", len(sts))
	}
	// 'x' was consumed pre-fork; both sides then independently read 'y'.
	if string(p.Stdout) != "y" {
		t.Errorf("parent read %q after fork, want %q", p.Stdout, "y")
	}
	for _, q := range k.Procs() {
		if q.PID != p.PID && string(q.Stdout) != "y" {
			t.Errorf("child read %q after fork, want %q (cursor not copied)", q.Stdout, "y")
		}
	}
}

// TestForkVetoedByHook pins the protection-inheritance failure
// contract: when OnFork rejects the child, the parent sees the fork
// fail, the child is removed from the process table, and it never runs.
func TestForkVetoedByHook(t *testing.T) {
	k := kernelsim.New()
	k.OnFork = func(parent, child *kernelsim.Process) error {
		return errors.New("no protection available")
	}
	p, err := k.Spawn("forker", forkSidesModule(t), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sts, err := k.RunInterleaved([]*kernelsim.Process{p}, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 1 {
		t.Fatalf("vetoed fork still scheduled a child: %d statuses", len(sts))
	}
	// fork returned -1: the parent takes the parent branch ('p' tag)
	// and exits with the failure value truncated to an int.
	if string(p.Stdout) != "p" {
		t.Errorf("parent stdout %q after vetoed fork, want %q", p.Stdout, "p")
	}
	if len(k.Procs()) != 1 {
		t.Errorf("process table holds %d entries after a vetoed fork, want 1", len(k.Procs()))
	}
	if kids := k.TakeForked(); len(kids) != 0 {
		t.Errorf("vetoed child left in the forked queue: %d entries", len(kids))
	}
}

// TestForkRegisterAndPCInheritance pins the low-level contract Fork
// promises: the child resumes at the parent's PC with the parent's
// registers (except the fork return value) and a cloned address space.
func TestForkRegisterAndPCInheritance(t *testing.T) {
	k := kernelsim.New()
	p, err := k.Spawn("forker", forkSidesModule(t), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.CPU.Regs[isa.R5] = 0xDEADBEEF
	child, err := k.Fork(p)
	if err != nil {
		t.Fatal(err)
	}
	if child.CPU.PC != p.CPU.PC {
		t.Errorf("child PC %#x, parent PC %#x", child.CPU.PC, p.CPU.PC)
	}
	if child.CPU.Regs[isa.R5] != 0xDEADBEEF {
		t.Error("child did not inherit the parent's register file")
	}
	if child.PID == p.PID || child.CR3 == p.CR3 {
		t.Errorf("child identity not fresh: pid %d/%d cr3 %#x/%#x", child.PID, p.PID, child.CR3, p.CR3)
	}
}
