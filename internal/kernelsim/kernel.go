// Package kernelsim models the OS pieces FlowGuard's kernel module needs:
// processes identified by CR3 values, a syscall table whose entries can be
// temporarily replaced by interceptors (paper §5.2), signal delivery
// (SIGKILL on CFI violation), and the sigreturn machinery SROP abuses.
//
// The kernel is trusted per the threat model (§3.3): its services cannot
// be subverted by the user-level attacker, DEP/NX is in force (the address
// space refuses to execute writable memory), and code pages are read-only.
//
// Network servers consume input from their stdin stream: the paper itself
// channels socket traffic to the console with preeny's desock module for
// fuzzing, and this reproduction adopts the same convention everywhere.
package kernelsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flowguard/internal/cpu"
	"flowguard/internal/isa"
	"flowguard/internal/module"
)

// Syscall numbers (Linux x86-64 flavored).
const (
	SysRead         uint64 = 0
	SysWrite        uint64 = 1
	SysOpen         uint64 = 2
	SysClose        uint64 = 3
	SysMmap         uint64 = 9
	SysMprotect     uint64 = 10
	SysSigaction    uint64 = 13
	SysSigreturn    uint64 = 15
	SysGetpid       uint64 = 39
	SysClone        uint64 = 56
	SysFork         uint64 = 57
	SysExecve       uint64 = 59
	SysExit         uint64 = 60
	SysKill         uint64 = 62
	SysGettid       uint64 = 186
	SysGettimeofday uint64 = 96
)

// SyscallName returns a human-readable name for diagnostics.
func SyscallName(n uint64) string {
	names := map[uint64]string{
		SysRead: "read", SysWrite: "write", SysOpen: "open", SysClose: "close",
		SysMmap: "mmap", SysMprotect: "mprotect", SysSigaction: "sigaction",
		SysSigreturn: "sigreturn", SysGetpid: "getpid", SysClone: "clone",
		SysFork: "fork", SysExecve: "execve", SysExit: "exit",
		SysKill: "kill", SysGettid: "gettid", SysGettimeofday: "gettimeofday",
	}
	if s, ok := names[n]; ok {
		return s
	}
	return fmt.Sprintf("sys_%d", n)
}

// Signal numbers.
const (
	SIGKILL = 9
	SIGSEGV = 11
)

// Sentinel errors stopping a process's CPU loop.
var (
	// ErrExited reports a clean exit via the exit syscall.
	ErrExited = errors.New("kernelsim: process exited")
	// ErrKilled reports signal death (SIGKILL from the guard, SIGSEGV
	// from a fault).
	ErrKilled = errors.New("kernelsim: process killed")
)

// Interceptor is an alternative syscall handler installed over a
// syscall-table entry. It runs before the original handler with full
// access to the calling process; returning an error vetoes the syscall
// and stops the process (FlowGuard returns ErrKilled after SIGKILL).
type Interceptor func(p *Process, sysno uint64) error

// InterceptError reports an interceptor that failed for a reason other
// than the sentinel kill/exit outcomes — the checker itself broke, not
// the checked process. The kernel records it (InterceptErrors) and the
// affected process is stopped fail-closed with SIGKILL; the scheduler
// keeps running the other processes instead of aborting the whole run.
type InterceptError struct {
	PID   int
	Sysno uint64
	Err   error
}

func (e *InterceptError) Error() string {
	return fmt.Sprintf("kernelsim: intercepting %s for pid %d: %v",
		SyscallName(e.Sysno), e.PID, e.Err)
}

func (e *InterceptError) Unwrap() error { return e.Err }

// ExecveRecord logs an execve attempt (the classic attacker goal).
type ExecveRecord struct {
	Path string
	PC   uint64
}

// Process is one user-level process.
type Process struct {
	PID  int
	Name string
	// CR3 is the page-directory base: the identity IPT's CR3 filter
	// matches on.
	CR3 uint64
	AS  *module.AddressSpace
	CPU *cpu.CPU

	stdin    []byte
	stdinPos int
	// Stdout accumulates fd-1/fd-2 writes.
	Stdout []byte

	files  map[int]*openFile
	nextFD int

	// SignalHandlers maps signal number to registered handler address.
	SignalHandlers map[uint64]uint64

	// Threads lists the process's threads, main thread first. All of
	// them share the address space, CR3, file table, and signal state;
	// each has private registers, stack pointer, and flags. Threads
	// beyond the first execute only under RunMulticore.
	Threads []*Thread

	// sigMu guards pendingSigs and the thread list against cross-process
	// senders (SysKill under RunParallel).
	sigMu sync.Mutex
	// pendingSigs queues signals sent by other processes; the multicore
	// scheduler delivers them at the target's next slice boundary.
	pendingSigs []uint64
	// curThread is the thread whose slice is currently executing, set by
	// the multicore scheduler so interceptors (whose signature predates
	// threads) can attribute a syscall to the right thread.
	curThread *Thread

	// Execves records execve attempts.
	Execves []ExecveRecord

	// Exit state.
	Exited   bool
	ExitCode int
	Killed   bool
	Signal   int

	kern *Kernel
}

type openFile struct {
	name string
	pos  int
}

// StdinRemaining returns the unread stdin bytes.
func (p *Process) StdinRemaining() int { return len(p.stdin) - p.stdinPos }

// Kernel is the machine-wide OS model.
//
// Kernel services reachable from syscall dispatch (filesystem, clock,
// syscall accounting, fork/clone bookkeeping, cross-process signals) are
// safe for concurrent use, so processes may run simultaneously via
// RunParallel. Per-process state IS touched concurrently once a process
// has threads or receives cross-process signals: the thread list and
// pending-signal queue are guarded by the process's sigMu, while a
// thread's registers and the rest of the per-process state are only ever
// touched by the scheduler slice currently running that task (the
// multicore scheduler is a deterministic serial interleaving, so no two
// slices overlap). Setup calls (Spawn, Intercept) remain init-time only:
// configure everything before the run starts, as a real kernel module's
// init does.
type Kernel struct {
	procs    map[int]*Process
	nextPID  int
	nextCR3  uint64
	intercep map[uint64]Interceptor
	// fsMu guards fs against concurrent syscall dispatch.
	fsMu sync.Mutex
	// fs is a trivial in-memory filesystem shared by all processes.
	fs map[string][]byte
	// clock is a deterministic logical clock for gettimeofday (atomic).
	clock uint64
	// SyscallCount counts dispatched syscalls (diagnostics; updated
	// atomically, read it after the run).
	SyscallCount uint64
	// gateNanos/gateCalls meter the syscall gate: cumulative wall-clock
	// time processes spent blocked inside intercepted syscall handlers,
	// and how many intercepted calls there were (atomics). This is the
	// paper's syscall-blocked time, measured at the interception point
	// itself, so synchronous and asynchronous checking are compared at
	// the exact same boundary.
	gateNanos uint64
	gateCalls uint64
	// errMu guards interceptErrs against concurrent syscall dispatch.
	errMu sync.Mutex
	// interceptErrs records interceptor failures (see InterceptError).
	interceptErrs []*InterceptError
	// OnSwitch, if set, runs at every context switch of RunInterleaved
	// with the process about to execute — where the kernel reprograms
	// the per-core trace unit's CR3 state (paper §5.1/§6).
	OnSwitch func(p *Process)
	// OnFork, if set, runs inside fork dispatch after the child is
	// built but before either side resumes — where the kernel module
	// inherits protection onto the child (guard.KernelModule wires
	// ProtectForked here). An error vetoes the fork: the child is
	// discarded and fork returns -1 to the parent, because a child the
	// module failed to protect must never run unprotected.
	OnFork func(parent, child *Process) error
	// OnCoreSwitch, if set, runs at every slice start of RunMulticore
	// with the core about to execute the task — where the kernel
	// reprograms the core's trace unit: save the outgoing task's trace
	// context, restore the incoming one's, and emit the PIP/MODE
	// context-switch marker into the core's shared stream (§5.1/§6).
	OnCoreSwitch func(core int, p *Process, t *Thread)
	// OnAsyncFlow, if set, observes every kernel-performed control
	// transfer invisible to the CPU's branch retirement: signal delivery
	// (from = interrupted PC, to = handler entry) and sigreturn (from =
	// the instruction after the syscall, to = the restored context). The
	// trace unit renders it as the FUP+TIP asynchronous-event shape.
	OnAsyncFlow func(p *Process, from, to uint64)

	// forkMu guards the process table and PID/CR3 allocation: unlike
	// Spawn (setup-time only), fork happens during the run, possibly
	// from several processes at once under RunParallel.
	forkMu sync.Mutex
	// forked accumulates children created since the last TakeForked
	// drain; RunInterleaved picks them up at every sweep.
	forked []*Process
	// cloned accumulates threads created by clone since the last
	// TakeCloned drain; RunMulticore picks them up at every sweep.
	cloned []*Thread
	// nextTID allocates thread IDs for clone (main threads reuse the
	// PID, Linux-style).
	nextTID int
}

// New returns an empty kernel.
func New() *Kernel {
	return &Kernel{
		procs:    make(map[int]*Process),
		nextPID:  1000,
		nextCR3:  0x1000_0000,
		intercep: make(map[uint64]Interceptor),
		fs:       make(map[string][]byte),
	}
}

// Intercept installs an alternative handler for the syscall-table entry,
// the mechanism FlowGuard's kernel module uses for its security-sensitive
// endpoints (§5.2). It replaces any previous interceptor for that entry.
func (k *Kernel) Intercept(sysno uint64, h Interceptor) { k.intercep[sysno] = h }

// GateWait returns the cumulative wall-clock time processes spent
// blocked inside intercepted syscall handlers and the number of
// intercepted calls — the syscall-blocked time the asynchronous checking
// pipeline exists to shrink. Safe to call concurrently with a run;
// read it after the run for a stable value.
func (k *Kernel) GateWait() (time.Duration, uint64) {
	return time.Duration(atomic.LoadUint64(&k.gateNanos)), atomic.LoadUint64(&k.gateCalls)
}

// Uninstall removes the interceptor for a syscall-table entry, restoring
// the original handler.
func (k *Kernel) Uninstall(sysno uint64) { delete(k.intercep, sysno) }

// InterceptErrors returns the interceptor failures recorded so far, in
// dispatch order. Each corresponds to one process stopped fail-closed
// because its checker errored rather than returning a verdict.
func (k *Kernel) InterceptErrors() []*InterceptError {
	k.errMu.Lock()
	defer k.errMu.Unlock()
	out := make([]*InterceptError, len(k.interceptErrs))
	copy(out, k.interceptErrs)
	return out
}

// FileContents returns the contents of an in-memory file.
func (k *Kernel) FileContents(name string) ([]byte, bool) {
	k.fsMu.Lock()
	defer k.fsMu.Unlock()
	b, ok := k.fs[name]
	return b, ok
}

// Spawn creates a process: loads the executable with its libraries and
// the VDSO, assigns a fresh PID and CR3, and wires the CPU's syscall
// dispatch to this kernel.
func (k *Kernel) Spawn(name string, exec *module.Module, libs map[string]*module.Module, vdso *module.Module, stdin []byte) (*Process, error) {
	as, err := module.Load(exec, libs, vdso)
	if err != nil {
		return nil, err
	}
	k.forkMu.Lock()
	p := &Process{
		PID:            k.nextPID,
		Name:           name,
		CR3:            k.nextCR3,
		AS:             as,
		stdin:          stdin,
		files:          make(map[int]*openFile),
		nextFD:         3,
		SignalHandlers: make(map[uint64]uint64),
		kern:           k,
	}
	k.nextPID++
	k.nextCR3 += 0x1000
	k.procs[p.PID] = p
	k.forkMu.Unlock()
	p.CPU = cpu.New(as)
	main := &Thread{TID: p.PID, CPU: p.CPU, proc: p}
	p.Threads = []*Thread{main}
	p.CPU.Sys = &procSyscalls{k: k, p: p, t: main}
	return p, nil
}

// Fork creates a child of parent: a fresh PID and CR3 (the trace-unit
// filter key), a private copy of the address space, and a CPU resuming
// at the parent's current PC with identical registers — the fork(2)
// contract. File descriptors, stdin position, signal handlers and the
// execve log are copied; accumulated Stdout is not (the child starts
// with an empty output buffer, like a real fork's unflushed-stdio
// hygiene). The caller differentiates the two sides via the fork return
// value, which the syscall dispatch sets after Fork returns.
//
// Fork is safe to call from syscall dispatch during RunParallel: the
// process table is locked for the insertion, and the child is queued
// for TakeForked / RunInterleaved pickup.
func (k *Kernel) Fork(parent *Process) (*Process, error) {
	if parent.AS == nil || parent.CPU == nil {
		return nil, errors.New("kernelsim: fork of an unspawned process")
	}
	as := parent.AS.Clone()
	k.forkMu.Lock()
	child := &Process{
		PID:            k.nextPID,
		Name:           parent.Name,
		CR3:            k.nextCR3,
		AS:             as,
		stdin:          parent.stdin,
		stdinPos:       parent.stdinPos,
		files:          make(map[int]*openFile, len(parent.files)),
		nextFD:         parent.nextFD,
		SignalHandlers: make(map[uint64]uint64, len(parent.SignalHandlers)),
		kern:           k,
	}
	k.nextPID++
	k.nextCR3 += 0x1000
	k.procs[child.PID] = child
	k.forkMu.Unlock()
	for fd, f := range parent.files {
		cf := *f
		child.files[fd] = &cf
	}
	for sig, h := range parent.SignalHandlers {
		child.SignalHandlers[sig] = h
	}
	child.Execves = append([]ExecveRecord(nil), parent.Execves...)
	c := cpu.New(as)
	c.Regs = parent.CPU.Regs
	c.PC = parent.CPU.PC
	c.FlagZ = parent.CPU.FlagZ
	c.FlagN = parent.CPU.FlagN
	c.Instrs = parent.CPU.Instrs
	c.CycleCount = parent.CPU.CycleCount
	cm := &Thread{TID: child.PID, CPU: c, proc: child}
	child.Threads = []*Thread{cm}
	c.Sys = &procSyscalls{k: k, p: child, t: cm}
	child.CPU = c
	return child, nil
}

// TakeForked drains the queue of children created by fork since the
// last drain. Schedulers that run a fixed process set (RunParallel)
// call this after the run — or concurrently, to schedule children as
// they appear; RunInterleaved drains it automatically every sweep.
func (k *Kernel) TakeForked() []*Process {
	k.forkMu.Lock()
	out := k.forked
	k.forked = nil
	k.forkMu.Unlock()
	return out
}

// TakeCloned drains the queue of threads created by clone since the
// last drain; RunMulticore drains it automatically every sweep.
func (k *Kernel) TakeCloned() []*Thread {
	k.forkMu.Lock()
	out := k.cloned
	k.cloned = nil
	k.forkMu.Unlock()
	return out
}

// findProc looks up a process by PID under the table lock.
func (k *Kernel) findProc(pid int) *Process {
	k.forkMu.Lock()
	defer k.forkMu.Unlock()
	return k.procs[pid]
}

// Procs returns a snapshot of the process table keyed by PID, children
// created by fork included (fleet accounting and tests).
func (k *Kernel) Procs() map[int]*Process {
	k.forkMu.Lock()
	defer k.forkMu.Unlock()
	out := make(map[int]*Process, len(k.procs))
	for pid, p := range k.procs {
		out[pid] = p
	}
	return out
}

// Kill delivers a fatal signal (the guard's SIGKILL on violation).
func (k *Kernel) Kill(p *Process, sig int) {
	p.Killed = true
	p.Signal = sig
}

// ExitStatus summarizes how a process stopped.
type ExitStatus struct {
	Exited   bool
	Code     int
	Killed   bool
	Signal   int
	FaultErr error
}

func (s ExitStatus) String() string {
	switch {
	case s.Killed:
		return fmt.Sprintf("killed by signal %d", s.Signal)
	case s.Exited:
		return fmt.Sprintf("exited %d", s.Code)
	default:
		return "stopped"
	}
}

// Run executes the process until it exits, is killed, faults, or exceeds
// the instruction budget (0 = unlimited).
func (k *Kernel) Run(p *Process, maxInstrs uint64) (ExitStatus, error) {
	_, err := p.CPU.Run(maxInstrs)
	return k.classify(p, err)
}

// classify converts a CPU-loop error into an exit status; errors the
// scheduler should propagate come back unchanged.
func (k *Kernel) classify(p *Process, err error) (ExitStatus, error) {
	switch {
	case errors.Is(err, ErrExited):
		return ExitStatus{Exited: true, Code: p.ExitCode}, nil
	case errors.Is(err, ErrKilled):
		return ExitStatus{Killed: true, Signal: p.Signal}, nil
	case errors.Is(err, cpu.ErrHalted):
		return ExitStatus{Exited: true, Code: 0}, nil
	default:
		var f *cpu.Fault
		if errors.As(err, &f) {
			k.Kill(p, SIGSEGV)
			return ExitStatus{Killed: true, Signal: SIGSEGV, FaultErr: f}, nil
		}
		var ie *InterceptError
		if errors.As(err, &ie) {
			// A broken checker is not a verdict: stop this process
			// fail-closed and let the scheduler continue the others.
			k.Kill(p, SIGKILL)
			return ExitStatus{Killed: true, Signal: SIGKILL, FaultErr: ie}, nil
		}
		return ExitStatus{}, err
	}
}

// RunParallel runs each process to completion on its own goroutine — the
// multi-core deployment of §6 suggestion 2: every core has its own trace
// unit and ToPA table, so no CR3 reprogramming happens at context
// switches and flow checks for different processes proceed concurrently
// (pair with a guard.CheckPool to bound the checking cores). Each process
// must have its own tracer sink. maxConcurrent bounds how many processes
// execute simultaneously (0 = all at once); the instruction budget is
// per process (0 = unlimited).
func (k *Kernel) RunParallel(procs []*Process, maxInstrs uint64, maxConcurrent int) ([]ExitStatus, error) {
	statuses := make([]ExitStatus, len(procs))
	errs := make([]error, len(procs))
	var sem chan struct{}
	if maxConcurrent > 0 {
		sem = make(chan struct{}, maxConcurrent)
	}
	var wg sync.WaitGroup
	for i, p := range procs {
		wg.Add(1)
		go func(i int, p *Process) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			_, err := p.CPU.Run(maxInstrs)
			statuses[i], errs[i] = k.classify(p, err)
		}(i, p)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return statuses, e
		}
	}
	return statuses, nil
}

// RunInterleaved schedules the processes round-robin on one core with
// the given instruction quantum, until every process has stopped or the
// total budget is exhausted. It models the paper's single-core
// multi-process scenario: one trace unit, one CR3 filter, many address
// spaces (§6 suggestion 2 exists because this is limiting).
//
// Children created by fork join the rotation at the next sweep; their
// exit statuses are appended after the initial processes', so callers
// that forked may receive a longer status slice than they passed in
// (initial indices are preserved).
func (k *Kernel) RunInterleaved(procs []*Process, quantum, maxTotal uint64) ([]ExitStatus, error) {
	procs = append([]*Process(nil), procs...)
	statuses := make([]ExitStatus, len(procs))
	done := make([]bool, len(procs))
	remaining := len(procs)
	var total uint64
	for {
		if kids := k.TakeForked(); len(kids) > 0 {
			procs = append(procs, kids...)
			statuses = append(statuses, make([]ExitStatus, len(kids))...)
			done = append(done, make([]bool, len(kids))...)
			remaining += len(kids)
		}
		if remaining == 0 {
			return statuses, nil
		}
		for i, p := range procs {
			if done[i] {
				continue
			}
			if k.OnSwitch != nil {
				k.OnSwitch(p)
			}
			var err error
			for n := uint64(0); n < quantum; n++ {
				if err = p.CPU.Step(); err != nil {
					break
				}
				total++
				if maxTotal > 0 && total >= maxTotal {
					return statuses, fmt.Errorf("kernelsim: interleaved budget %d exhausted", maxTotal)
				}
			}
			if err == nil {
				continue
			}
			done[i] = true
			remaining--
			st, cerr := k.classify(p, err)
			if cerr != nil {
				return statuses, cerr
			}
			statuses[i] = st
		}
	}
}

// procSyscalls binds the kernel's syscall dispatch to one thread of one
// process (each thread's CPU carries its own handler, so dispatch knows
// which register file and stack it is operating on).
type procSyscalls struct {
	k *Kernel
	p *Process
	t *Thread
}

// Syscall implements cpu.SyscallHandler: run the interceptor for the
// entry (if installed), then the original handler.
func (s *procSyscalls) Syscall(c *cpu.CPU) error {
	k, p := s.k, s.p
	atomic.AddUint64(&k.SyscallCount, 1)
	atomic.AddUint64(&k.clock, 1+c.Instrs%7)
	sysno := c.Regs[isa.R7]
	if h, ok := k.intercep[sysno]; ok {
		start := time.Now()
		err := h(p, sysno)
		atomic.AddUint64(&k.gateNanos, uint64(time.Since(start)))
		atomic.AddUint64(&k.gateCalls, 1)
		if err != nil {
			if errors.Is(err, ErrKilled) || errors.Is(err, ErrExited) {
				return err
			}
			ie := &InterceptError{PID: p.PID, Sysno: sysno, Err: err}
			k.errMu.Lock()
			k.interceptErrs = append(k.interceptErrs, ie)
			k.errMu.Unlock()
			return ie
		}
	}
	return k.dispatch(p, s.t, c, sysno)
}

func (k *Kernel) dispatch(p *Process, t *Thread, c *cpu.CPU, sysno uint64) error {
	a0, a1, a2 := c.Regs[isa.R0], c.Regs[isa.R1], c.Regs[isa.R2]
	setRet := func(v uint64) { c.Regs[isa.R0] = v }
	const eFAIL = ^uint64(0) // -1
	// chargeCopy accounts the kernel's data movement against the
	// process (roughly 16 bytes per cycle), so I/O-heavy programs have
	// realistic baselines in the calibrated cycle model.
	chargeCopy := func(n int) {
		if n > 0 {
			c.CycleCount += uint64(n) / 16
		}
	}

	switch sysno {
	case SysRead:
		n := int(a2)
		if a0 == 0 { // stdin
			avail := len(p.stdin) - p.stdinPos
			if n > avail {
				n = avail
			}
			for i := 0; i < n; i++ {
				if err := p.AS.WriteU8(a1+uint64(i), p.stdin[p.stdinPos+i]); err != nil {
					setRet(eFAIL)
					return nil
				}
			}
			p.stdinPos += n
			chargeCopy(n)
			setRet(uint64(n))
			return nil
		}
		f, ok := p.files[int(a0)]
		if !ok {
			setRet(eFAIL)
			return nil
		}
		k.fsMu.Lock()
		data := k.fs[f.name]
		k.fsMu.Unlock()
		avail := len(data) - f.pos
		if n > avail {
			n = avail
		}
		for i := 0; i < n; i++ {
			if err := p.AS.WriteU8(a1+uint64(i), data[f.pos+i]); err != nil {
				setRet(eFAIL)
				return nil
			}
		}
		f.pos += n
		chargeCopy(n)
		setRet(uint64(n))
	case SysWrite:
		buf, err := p.AS.ReadBytes(a1, int(a2))
		if err != nil {
			setRet(eFAIL)
			return nil
		}
		if a0 == 1 || a0 == 2 {
			p.Stdout = append(p.Stdout, buf...)
		} else if f, ok := p.files[int(a0)]; ok {
			k.fsMu.Lock()
			k.fs[f.name] = append(k.fs[f.name], buf...)
			k.fsMu.Unlock()
		} else {
			setRet(eFAIL)
			return nil
		}
		chargeCopy(len(buf))
		setRet(a2)
	case SysOpen:
		name, err := p.readCString(a0)
		if err != nil {
			setRet(eFAIL)
			return nil
		}
		k.fsMu.Lock()
		if _, ok := k.fs[name]; !ok {
			k.fs[name] = nil
		}
		k.fsMu.Unlock()
		fd := p.nextFD
		p.nextFD++
		p.files[fd] = &openFile{name: name}
		setRet(uint64(fd))
	case SysClose:
		delete(p.files, int(a0))
		setRet(0)
	case SysMmap:
		perm := permFromProt(a2)
		base, err := p.AS.Mmap(a1, perm)
		if err != nil {
			setRet(eFAIL)
			return nil
		}
		setRet(base)
	case SysMprotect:
		if err := p.AS.Mprotect(a0, permFromProt(a2)); err != nil {
			setRet(eFAIL)
			return nil
		}
		setRet(0)
	case SysSigaction:
		p.SignalHandlers[a0] = a1
		setRet(0)
	case SysSigreturn:
		// Restore the full register context from the signal frame at SP:
		// 16 GPRs, then PC, then flags — total control if forged (SROP).
		return k.sigreturn(p, c)
	case SysGetpid:
		setRet(uint64(p.PID))
	case SysGettid:
		if t != nil {
			setRet(uint64(t.TID))
		} else {
			setRet(uint64(p.PID))
		}
	case SysClone:
		// a0 = entry point, a1 = stack top, a2 = argument (landed in the
		// new thread's R0). Returns the new TID to the caller; the thread
		// joins the multicore rotation at the next sweep.
		if a0 == 0 || a1 == 0 {
			setRet(eFAIL)
			return nil
		}
		nt := k.newThread(p, a0, a1, a2)
		setRet(uint64(nt.TID))
	case SysKill:
		target := int(int64(a0))
		sig := a1
		if target == p.PID || target == 0 {
			// Self-signal: delivered immediately, at the point where kill
			// would have returned — the interrupted context the frame
			// saves is the instruction after the syscall, with kill's own
			// return value already in R0.
			if sig == SIGKILL {
				k.Kill(p, SIGKILL)
				return ErrKilled
			}
			h, ok := p.SignalHandlers[sig]
			if !ok {
				setRet(0) // no handler registered: ignored
				return nil
			}
			ct := t
			if ct == nil {
				ct = p.mainThread()
			}
			setRet(0)
			if err := k.deliverSignal(p, ct, sig, h); err != nil {
				return err
			}
			if p.Killed {
				return ErrKilled
			}
			return nil
		}
		// Cross-process: queue on the target; the multicore scheduler
		// delivers at the target's next slice boundary (under other
		// schedulers the signal stays pending). Queueing rather than
		// mutating the target keeps delivery deterministic and race-free.
		tp := k.findProc(target)
		if tp == nil {
			setRet(eFAIL)
			return nil
		}
		tp.sigMu.Lock()
		tp.pendingSigs = append(tp.pendingSigs, sig)
		tp.sigMu.Unlock()
		setRet(0)
	case SysFork:
		child, err := k.Fork(p)
		if err != nil {
			setRet(eFAIL)
			return nil
		}
		if k.OnFork != nil {
			if ferr := k.OnFork(p, child); ferr != nil {
				// The module could not inherit protection: a child that
				// would run unprotected must not run at all.
				k.forkMu.Lock()
				delete(k.procs, child.PID)
				k.forkMu.Unlock()
				setRet(eFAIL)
				return nil
			}
		}
		// Child resumes at the same PC with fork's child-side return
		// value; it is queued for the scheduler (TakeForked /
		// RunInterleaved pickup) only once protection is inherited.
		child.CPU.Regs[isa.R0] = 0
		k.forkMu.Lock()
		k.forked = append(k.forked, child)
		k.forkMu.Unlock()
		setRet(uint64(child.PID))
	case SysExecve:
		path, err := p.readCString(a0)
		if err != nil {
			path = fmt.Sprintf("<bad ptr %#x>", a0)
		}
		p.Execves = append(p.Execves, ExecveRecord{Path: path, PC: c.PC})
		setRet(0)
	case SysExit:
		if t != nil && t.TID != p.PID {
			// A non-main thread's exit terminates only that thread; the
			// scheduler drops it from the rotation and the process lives.
			return ErrExited
		}
		p.Exited = true
		p.ExitCode = int(int64(a0))
		return ErrExited
	case SysGettimeofday:
		if err := p.AS.WriteU64(a0, atomic.LoadUint64(&k.clock)); err != nil {
			setRet(eFAIL)
			return nil
		}
		setRet(0)
	default:
		setRet(eFAIL)
	}
	if p.Killed {
		return ErrKilled
	}
	return nil
}

// SigFrameWords is the size of a sigreturn frame in 64-bit words:
// 16 registers, PC, flags.
const SigFrameWords = 18

func (k *Kernel) sigreturn(p *Process, c *cpu.CPU) error {
	resume := c.PC // the instruction after the sigreturn syscall
	sp := c.Regs[isa.SP]
	var frame [SigFrameWords]uint64
	for i := range frame {
		v, err := p.AS.ReadU64(sp + uint64(i)*8)
		if err != nil {
			k.Kill(p, SIGSEGV)
			return ErrKilled
		}
		frame[i] = v
	}
	for i := 0; i < isa.NumRegs; i++ {
		c.Regs[i] = frame[i]
	}
	c.PC = frame[16]
	c.FlagZ = frame[17]&1 != 0
	c.FlagN = frame[17]&2 != 0
	if k.OnAsyncFlow != nil {
		// The kernel teleports the flow from the handler's tail back to
		// the interrupted context — the trace unit's second async edge.
		k.OnAsyncFlow(p, resume, c.PC)
	}
	if p.Killed {
		return ErrKilled
	}
	return nil
}

func (p *Process) readCString(addr uint64) (string, error) {
	var out []byte
	for i := 0; i < 4096; i++ {
		b, err := p.AS.ReadU8(addr + uint64(i))
		if err != nil {
			return "", err
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, b)
	}
	return "", errors.New("kernelsim: unterminated string")
}

// prot bits for mmap/mprotect (PROT_READ/WRITE/EXEC).
const (
	ProtRead  = 1
	ProtWrite = 2
	ProtExec  = 4
)

func permFromProt(prot uint64) module.Perm {
	var perm module.Perm
	if prot&ProtRead != 0 {
		perm |= module.PermR
	}
	if prot&ProtWrite != 0 {
		perm |= module.PermW
	}
	if prot&ProtExec != 0 {
		perm |= module.PermX
	}
	return perm
}
