package kernelsim_test

import (
	"bytes"
	"strings"
	"testing"

	"flowguard/internal/asm"
	"flowguard/internal/isa"
	"flowguard/internal/kernelsim"
	"flowguard/internal/module"
)

func mustAssemble(t *testing.T, b *asm.Builder) *module.Module {
	t.Helper()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// cloneServer builds a process whose main thread clones one worker and
// then emits mainN 'M' bytes with a spin delay between writes; the worker
// emits workerN 'T' bytes and leaves through a raw exit syscall.
func cloneServer(t *testing.T, mainN, workerN int32) *module.Module {
	b := asm.NewModule("tserv")
	b.DataSpace("tstk", 512, false)
	b.DataBytes("mb", []byte("M"), false)
	b.DataBytes("tb", []byte("T"), false)
	b.FuncTable("tbl", []string{"tmain"}, false)

	f := b.Func("main", 0, true)
	b.SetEntry("main")
	f.AddrOf(isa.R6, "tbl")
	f.Ld(isa.R0, isa.R6, 0)
	f.AddrOf(isa.R1, "tstk")
	f.Addi(isa.R1, 512-8)
	f.Movi(isa.R2, 1)
	f.Movu64(isa.R7, kernelsim.SysClone)
	f.Syscall()
	f.Movi(isa.R9, 0)
	f.Label("mloop")
	f.Cmpi(isa.R9, 0)
	// spin between writes so worker slices interleave
	f.Movi(isa.R10, 40)
	f.Label("spin")
	f.Cmpi(isa.R10, 0)
	f.Jcc(isa.LE, "emit")
	f.Addi(isa.R10, -1)
	f.Jmp("spin")
	f.Label("emit")
	f.Movu64(isa.R7, kernelsim.SysWrite)
	f.Movi(isa.R0, 1)
	f.AddrOf(isa.R1, "mb")
	f.Movi(isa.R2, 1)
	f.Syscall()
	f.Addi(isa.R9, 1)
	f.Cmpi(isa.R9, mainN)
	f.Jcc(isa.LT, "mloop")
	// drain: let the worker finish before process teardown
	f.Movi(isa.R10, 400)
	f.Label("drain")
	f.Cmpi(isa.R10, 0)
	f.Jcc(isa.LE, "exit")
	f.Addi(isa.R10, -1)
	f.Jmp("drain")
	f.Label("exit")
	f.Movu64(isa.R7, kernelsim.SysExit)
	f.Movi(isa.R0, 0)
	f.Syscall()

	w := b.Func("tmain", 1, false)
	w.Movi(isa.R9, 0)
	w.Label("tloop")
	w.Movi(isa.R10, 40)
	w.Label("tspin")
	w.Cmpi(isa.R10, 0)
	w.Jcc(isa.LE, "temit")
	w.Addi(isa.R10, -1)
	w.Jmp("tspin")
	w.Label("temit")
	w.Movu64(isa.R7, kernelsim.SysWrite)
	w.Movi(isa.R0, 1)
	w.AddrOf(isa.R1, "tb")
	w.Movi(isa.R2, 1)
	w.Syscall()
	w.Addi(isa.R9, 1)
	w.Cmpi(isa.R9, workerN)
	w.Jcc(isa.LT, "tloop")
	w.Movu64(isa.R7, kernelsim.SysExit)
	w.Movi(isa.R0, 0)
	w.Syscall()
	w.Halt()
	return mustAssemble(t, b)
}

func TestCloneThreadsInterleave(t *testing.T) {
	k := kernelsim.New()
	p, err := k.Spawn("tserv", cloneServer(t, 4, 4), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sts, err := k.RunMulticore([]*kernelsim.Process{p}, 2, 30, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !sts[0].Exited {
		t.Fatalf("status = %v, want clean exit", sts[0])
	}
	out := string(p.Stdout)
	if strings.Count(out, "M") != 4 || strings.Count(out, "T") != 4 {
		t.Fatalf("stdout = %q, want 4 M and 4 T", out)
	}
	// With a 30-instruction quantum the worker runs between main-thread
	// writes: the streams must actually interleave, not serialize.
	if strings.HasPrefix(out, "MMMM") || strings.HasPrefix(out, "TTTT") {
		t.Errorf("stdout = %q: threads did not interleave", out)
	}
	if len(p.Threads) != 2 {
		t.Errorf("len(Threads) = %d, want 2", len(p.Threads))
	}
}

func TestGettidDistinguishesThreads(t *testing.T) {
	b := asm.NewModule("tids")
	b.DataSpace("tstk", 512, false)
	b.DataSpace("buf", 8, false)
	b.FuncTable("tbl", []string{"tmain"}, false)

	f := b.Func("main", 0, true)
	b.SetEntry("main")
	// write(1, &gettid_low_byte, 1)
	f.Movu64(isa.R7, kernelsim.SysGettid)
	f.Syscall()
	f.AddrOf(isa.R1, "buf")
	f.Stb(isa.R1, 0, isa.R0)
	f.Movu64(isa.R7, kernelsim.SysWrite)
	f.Movi(isa.R0, 1)
	f.Movi(isa.R2, 1)
	f.Syscall()
	f.AddrOf(isa.R6, "tbl")
	f.Ld(isa.R0, isa.R6, 0)
	f.AddrOf(isa.R1, "tstk")
	f.Addi(isa.R1, 512-8)
	f.Movi(isa.R2, 0)
	f.Movu64(isa.R7, kernelsim.SysClone)
	f.Syscall()
	// spin long enough for the worker's slice, then exit
	f.Movi(isa.R9, 300)
	f.Label("spin")
	f.Cmpi(isa.R9, 0)
	f.Jcc(isa.LE, "done")
	f.Addi(isa.R9, -1)
	f.Jmp("spin")
	f.Label("done")
	f.Movu64(isa.R7, kernelsim.SysExit)
	f.Movi(isa.R0, 0)
	f.Syscall()

	w := b.Func("tmain", 1, false)
	w.Movu64(isa.R7, kernelsim.SysGettid)
	w.Syscall()
	w.AddrOf(isa.R1, "buf")
	w.Stb(isa.R1, 0, isa.R0)
	w.Movu64(isa.R7, kernelsim.SysWrite)
	w.Movi(isa.R0, 1)
	w.Movi(isa.R2, 1)
	w.Syscall()
	w.Movu64(isa.R7, kernelsim.SysExit)
	w.Movi(isa.R0, 0)
	w.Syscall()
	w.Halt()

	k := kernelsim.New()
	p, err := k.Spawn("tids", mustAssemble(t, b), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sts, err := k.RunMulticore([]*kernelsim.Process{p}, 1, 25, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !sts[0].Exited {
		t.Fatalf("status = %v, want clean exit", sts[0])
	}
	if len(p.Stdout) != 2 {
		t.Fatalf("stdout = %v, want 2 tid bytes", p.Stdout)
	}
	if p.Stdout[0] != byte(p.PID) {
		t.Errorf("main tid byte = %d, want pid low byte %d", p.Stdout[0], byte(p.PID))
	}
	if p.Stdout[0] == p.Stdout[1] {
		t.Errorf("worker tid byte %d equals main's: gettid must distinguish threads", p.Stdout[1])
	}
}

func TestSignalDeliveryAndSigreturnRestore(t *testing.T) {
	// The handler clobbers r9 and crosses a write endpoint; sigreturn
	// must restore the interrupted context so the process exits with the
	// pre-signal r9 value.
	b := asm.NewModule("selfsig")
	b.FuncTable("tbl", []string{"on_sig"}, false)
	b.DataBytes("hb", []byte("H"), false)

	f := b.Func("main", 0, true)
	b.SetEntry("main")
	f.AddrOf(isa.R6, "tbl")
	f.Ld(isa.R1, isa.R6, 0)
	f.Movi(isa.R0, 10)
	f.Movu64(isa.R7, kernelsim.SysSigaction)
	f.Syscall()
	f.Movi(isa.R9, 42)
	f.Movi(isa.R0, 0)
	f.Movi(isa.R1, 10)
	f.Movu64(isa.R7, kernelsim.SysKill)
	f.Syscall()
	f.Movu64(isa.R7, kernelsim.SysExit)
	f.Mov(isa.R0, isa.R9)
	f.Syscall()

	h := b.Func("on_sig", 1, false)
	h.Movi(isa.R9, 7) // clobber, must not survive sigreturn
	h.Movu64(isa.R7, kernelsim.SysWrite)
	h.Movi(isa.R0, 1)
	h.AddrOf(isa.R1, "hb")
	h.Movi(isa.R2, 1)
	h.Syscall()
	h.Movu64(isa.R7, kernelsim.SysSigreturn)
	h.Syscall()
	h.Halt()

	k := kernelsim.New()
	p, err := k.Spawn("selfsig", mustAssemble(t, b), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := k.Run(p, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Exited || st.Code != 42 {
		t.Fatalf("status = %v, want exit 42 (context restored)", st)
	}
	if !bytes.Equal(p.Stdout, []byte("H")) {
		t.Errorf("stdout = %q, want handler output H", p.Stdout)
	}
}

// sigTarget builds the receiving process: registers a handler for signal
// 10 that writes 'H', then spins and exits 0.
func sigTarget(t *testing.T) *module.Module {
	b := asm.NewModule("sigtarget")
	b.FuncTable("tbl", []string{"on_sig"}, false)
	b.DataBytes("hb", []byte("H"), false)
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	f.AddrOf(isa.R6, "tbl")
	f.Ld(isa.R1, isa.R6, 0)
	f.Movi(isa.R0, 10)
	f.Movu64(isa.R7, kernelsim.SysSigaction)
	f.Syscall()
	f.Movi(isa.R9, 400)
	f.Label("spin")
	f.Cmpi(isa.R9, 0)
	f.Jcc(isa.LE, "done")
	f.Addi(isa.R9, -1)
	f.Jmp("spin")
	f.Label("done")
	f.Movu64(isa.R7, kernelsim.SysExit)
	f.Movi(isa.R0, 0)
	f.Syscall()
	h := b.Func("on_sig", 1, false)
	h.Movu64(isa.R7, kernelsim.SysWrite)
	h.Movi(isa.R0, 1)
	h.AddrOf(isa.R1, "hb")
	h.Movi(isa.R2, 1)
	h.Syscall()
	h.Movu64(isa.R7, kernelsim.SysSigreturn)
	h.Syscall()
	h.Halt()
	return mustAssemble(t, b)
}

// sigSender builds the sending process: reads the target pid (2 bytes,
// little-endian) and the signal number (1 byte) from stdin, kills, then
// exits 0.
func sigSender(t *testing.T) *module.Module {
	b := asm.NewModule("sigsender")
	b.DataSpace("buf", 8, false)
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	f.Movu64(isa.R7, kernelsim.SysRead)
	f.Movi(isa.R0, 0)
	f.AddrOf(isa.R1, "buf")
	f.Movi(isa.R2, 3)
	f.Syscall()
	f.AddrOf(isa.R1, "buf")
	f.Ldb(isa.R0, isa.R1, 0)
	f.Ldb(isa.R8, isa.R1, 1)
	f.Movi(isa.R5, 8)
	f.Shl(isa.R8, isa.R5)
	f.Add(isa.R0, isa.R8)
	f.Ldb(isa.R1, isa.R1, 2)
	f.Movu64(isa.R7, kernelsim.SysKill)
	f.Syscall()
	f.Movu64(isa.R7, kernelsim.SysExit)
	f.Movi(isa.R0, 0)
	f.Syscall()
	return mustAssemble(t, b)
}

func TestCrossProcessSignalDeliveredAtSlice(t *testing.T) {
	k := kernelsim.New()
	tgt, err := k.Spawn("sigtarget", sigTarget(t), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	stdin := []byte{byte(tgt.PID), byte(tgt.PID >> 8), 10}
	snd, err := k.Spawn("sigsender", sigSender(t), nil, nil, stdin)
	if err != nil {
		t.Fatal(err)
	}
	sts, err := k.RunMulticore([]*kernelsim.Process{tgt, snd}, 2, 25, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !sts[0].Exited || !sts[1].Exited {
		t.Fatalf("statuses = %v, want both exited", sts)
	}
	if !bytes.Equal(tgt.Stdout, []byte("H")) {
		t.Errorf("target stdout = %q, want handler output H", tgt.Stdout)
	}
}

func TestCrossProcessSIGKILLQueued(t *testing.T) {
	k := kernelsim.New()
	tgt, err := k.Spawn("sigtarget", sigTarget(t), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	stdin := []byte{byte(tgt.PID), byte(tgt.PID >> 8), kernelsim.SIGKILL}
	snd, err := k.Spawn("sigsender", sigSender(t), nil, nil, stdin)
	if err != nil {
		t.Fatal(err)
	}
	sts, err := k.RunMulticore([]*kernelsim.Process{tgt, snd}, 2, 25, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !sts[0].Killed || sts[0].Signal != kernelsim.SIGKILL {
		t.Fatalf("target status = %v, want SIGKILL", sts[0])
	}
	if !sts[1].Exited {
		t.Fatalf("sender status = %v, want clean exit", sts[1])
	}
}

func TestRunMulticoreCoreAffinity(t *testing.T) {
	// Task i must always land on core i%cores: the per-core streams are
	// only reproducible if the placement is.
	k := kernelsim.New()
	p0, err := k.Spawn("a", cloneServer(t, 2, 2), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := k.Spawn("b", cloneServer(t, 2, 2), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]map[int]bool) // tid -> cores used
	k.OnCoreSwitch = func(core int, p *kernelsim.Process, th *kernelsim.Thread) {
		if seen[th.TID] == nil {
			seen[th.TID] = make(map[int]bool)
		}
		seen[th.TID][core] = true
	}
	if _, err := k.RunMulticore([]*kernelsim.Process{p0, p1}, 2, 20, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(seen) < 4 {
		t.Fatalf("saw %d threads on core switches, want >= 4", len(seen))
	}
	for tid, cores := range seen {
		if len(cores) != 1 {
			t.Errorf("tid %d ran on %d cores, want a fixed core", tid, len(cores))
		}
	}
}

func TestRunMulticoreBudget(t *testing.T) {
	k := kernelsim.New()
	p, err := k.Spawn("tserv", cloneServer(t, 4, 4), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.RunMulticore([]*kernelsim.Process{p}, 2, 30, 10); err == nil {
		t.Fatal("want budget-exhausted error")
	}
}
