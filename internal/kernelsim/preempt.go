package kernelsim

// Preemptive multi-core scheduling: time-sliced interleaving of
// processes and intra-process threads across simulated cores, plus the
// signal-delivery machinery that interrupts a traced flow mid-window.
// The scheduler is a deterministic serial interleaving — task i always
// runs its slice on core i%cores, sweeps visit tasks in creation order —
// so two runs over the same inputs produce byte-identical per-core trace
// streams, which is what the demux round-trip property and the
// differential oracle verify against.

import (
	"errors"
	"fmt"

	"flowguard/internal/cpu"
	"flowguard/internal/isa"
)

// Thread is one schedulable execution context within a process: private
// registers, stack pointer, and flags (its own cpu.CPU over the shared
// address space). The main thread reuses the process's CPU and PID as
// its TID, Linux-style; clone-created threads get fresh TIDs.
type Thread struct {
	TID  int
	CPU  *cpu.CPU
	proc *Process
}

// CurrentThread returns the thread whose slice is executing: set by the
// multicore scheduler before each slice, defaulting to the main thread
// under the single-threaded schedulers.
func (p *Process) CurrentThread() *Thread {
	if p.curThread != nil {
		return p.curThread
	}
	return p.mainThread()
}

// mainThread returns the process's first thread, synthesizing one
// around the process CPU for hand-built processes that bypassed Spawn.
func (p *Process) mainThread() *Thread {
	if len(p.Threads) == 0 {
		if p.CPU == nil {
			return nil
		}
		p.Threads = []*Thread{{TID: p.PID, CPU: p.CPU, proc: p}}
	}
	return p.Threads[0]
}

// newThread services clone: a fresh CPU over the shared address space,
// entered at entry with the given stack top and argument. The thread is
// queued for TakeCloned / RunMulticore pickup.
func (k *Kernel) newThread(p *Process, entry, stack, arg uint64) *Thread {
	c := cpu.New(p.AS)
	c.PC = entry
	c.Regs[isa.SP] = stack
	c.Regs[isa.R0] = arg
	k.forkMu.Lock()
	if k.nextTID == 0 {
		k.nextTID = 20000
	}
	tid := k.nextTID
	k.nextTID++
	k.forkMu.Unlock()
	t := &Thread{TID: tid, CPU: c, proc: p}
	c.Sys = &procSyscalls{k: k, p: p, t: t}
	p.sigMu.Lock()
	p.Threads = append(p.Threads, t)
	p.sigMu.Unlock()
	k.forkMu.Lock()
	k.cloned = append(k.cloned, t)
	k.forkMu.Unlock()
	return t
}

// deliverSignal interrupts a thread with a signal: the full register
// context (16 GPRs, PC, flags — the sigreturn frame) is pushed below
// the thread's stack pointer, then execution is redirected into the
// registered handler with the signal number in R0. The redirect is a
// kernel-performed transfer the CPU never retires, so it surfaces to
// the tracer only through OnAsyncFlow (FUP+TIP in the stream). A stack
// that cannot hold the frame is a segfault, as on real hardware.
func (k *Kernel) deliverSignal(p *Process, t *Thread, signo, handler uint64) error {
	c := t.CPU
	resume := c.PC
	newSP := c.Regs[isa.SP] - SigFrameWords*8
	for i := 0; i < isa.NumRegs; i++ {
		if err := p.AS.WriteU64(newSP+uint64(i)*8, c.Regs[i]); err != nil {
			k.Kill(p, SIGSEGV)
			return ErrKilled
		}
	}
	var flags uint64
	if c.FlagZ {
		flags |= 1
	}
	if c.FlagN {
		flags |= 2
	}
	if err := p.AS.WriteU64(newSP+16*8, c.PC); err != nil {
		k.Kill(p, SIGSEGV)
		return ErrKilled
	}
	if err := p.AS.WriteU64(newSP+17*8, flags); err != nil {
		k.Kill(p, SIGSEGV)
		return ErrKilled
	}
	c.Regs[isa.SP] = newSP
	c.Regs[isa.R0] = signo
	c.PC = handler
	if k.OnAsyncFlow != nil {
		k.OnAsyncFlow(p, resume, handler)
	}
	return nil
}

// deliverPending drains the process's cross-process signal queue onto
// the thread about to run its slice. SIGKILL is fatal without delivery;
// signals without a registered handler are ignored.
func (k *Kernel) deliverPending(p *Process, t *Thread) error {
	p.sigMu.Lock()
	sigs := p.pendingSigs
	p.pendingSigs = nil
	p.sigMu.Unlock()
	for _, sig := range sigs {
		if sig == SIGKILL {
			k.Kill(p, SIGKILL)
			return ErrKilled
		}
		h, ok := p.SignalHandlers[sig]
		if !ok {
			continue
		}
		if err := k.deliverSignal(p, t, sig, h); err != nil {
			return err
		}
	}
	return nil
}

// task is one schedulable (process, thread) pair in the multicore
// rotation.
type task struct {
	p *Process
	t *Thread
}

// RunMulticore schedules every thread of every process round-robin
// across the given number of simulated cores with the given instruction
// quantum, until all tasks have stopped or the total budget (0 =
// unlimited) is exhausted. Task i always runs on core i%cores; the
// interleaving is serial and deterministic, modeling what a real
// multi-core trace capture serializes into per-core streams.
//
// At each slice start the scheduler fires OnCoreSwitch (where the
// kernel module reprograms the core's trace unit and emits the PIP/MODE
// context-switch marker) and then delivers any pending cross-process
// signals onto the thread about to run. Forked children and cloned
// threads join the rotation at the next sweep. Statuses are reported
// per process in RunInterleaved's convention: initial indices preserved,
// forked children appended.
func (k *Kernel) RunMulticore(procs []*Process, cores int, quantum, maxTotal uint64) ([]ExitStatus, error) {
	if cores < 1 {
		cores = 1
	}
	procs = append([]*Process(nil), procs...)
	statuses := make([]ExitStatus, len(procs))
	procIdx := make(map[*Process]int, len(procs))
	procDone := make([]bool, len(procs))
	var tasks []task
	threadDone := make(map[*Thread]bool)
	for i, p := range procs {
		procIdx[p] = i
		if t := p.mainThread(); t != nil {
			tasks = append(tasks, task{p, t})
		} else {
			procDone[i] = true
		}
	}
	var total uint64
	for {
		// Pick up forked children and cloned threads created since the
		// last sweep; threads of an already-stopped process never run.
		for _, cp := range k.TakeForked() {
			procIdx[cp] = len(procs)
			procs = append(procs, cp)
			statuses = append(statuses, ExitStatus{})
			procDone = append(procDone, false)
			tasks = append(tasks, task{cp, cp.mainThread()})
		}
		for _, nt := range k.TakeCloned() {
			if idx, ok := procIdx[nt.proc]; !ok || procDone[idx] {
				continue
			}
			tasks = append(tasks, task{nt.proc, nt})
		}
		live := 0
		for _, tk := range tasks {
			if !threadDone[tk.t] && !procDone[procIdx[tk.p]] {
				live++
			}
		}
		if live == 0 {
			return statuses, nil
		}
		for i := range tasks {
			tk := tasks[i]
			pi := procIdx[tk.p]
			if threadDone[tk.t] || procDone[pi] {
				continue
			}
			core := i % cores
			tk.p.curThread = tk.t
			if k.OnCoreSwitch != nil {
				k.OnCoreSwitch(core, tk.p, tk.t)
			}
			err := k.deliverPending(tk.p, tk.t)
			if err == nil {
				for n := uint64(0); n < quantum; n++ {
					if err = tk.t.CPU.Step(); err != nil {
						break
					}
					total++
					if maxTotal > 0 && total >= maxTotal {
						return statuses, fmt.Errorf("kernelsim: multicore budget %d exhausted", maxTotal)
					}
				}
			}
			if err == nil {
				continue
			}
			if tk.t.TID != tk.p.PID && !tk.p.Exited &&
				(errors.Is(err, ErrExited) || errors.Is(err, cpu.ErrHalted)) {
				// A non-main thread ran off the end of its start routine
				// or called exit: only that thread leaves the rotation.
				threadDone[tk.t] = true
				continue
			}
			threadDone[tk.t] = true
			st, cerr := k.classify(tk.p, err)
			if cerr != nil {
				return statuses, cerr
			}
			statuses[pi] = st
			procDone[pi] = true // process teardown stops its other threads
		}
	}
}
