package asm

import (
	"testing"

	"flowguard/internal/isa"
	"flowguard/internal/module"
)

// buildLib returns a tiny library exporting add2 and a dispatch table.
func buildLib(t *testing.T) *module.Module {
	t.Helper()
	b := NewModule("libtiny")
	f := b.Func("add2", 2, true)
	f.Add(isa.R0, isa.R1).Ret()
	g := b.Func("sub2", 2, true)
	g.Sub(isa.R0, isa.R1).Ret()
	b.FuncTable("ops", []string{"add2", "sub2"}, true)
	m, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble(libtiny): %v", err)
	}
	return m
}

func TestAssembleLayout(t *testing.T) {
	m := buildLib(t)
	add, ok := m.Symbol("add2")
	if !ok || add.Off != 0 || add.Size != 2*isa.InstrSize {
		t.Fatalf("add2 symbol = %+v, ok=%v", add, ok)
	}
	sub, _ := m.Symbol("sub2")
	if sub.Off != 2*isa.InstrSize {
		t.Fatalf("sub2 offset = %#x, want %#x", sub.Off, 2*isa.InstrSize)
	}
	if !add.AddressTaken || !sub.AddressTaken {
		t.Error("functions referenced from FuncTable should be address-taken")
	}
	if len(m.Relocs) != 2 {
		t.Fatalf("relocs = %d, want 2", len(m.Relocs))
	}
	ops, ok := m.Symbol("ops")
	if !ok || ops.Kind != module.SymObject || ops.Size != 16 {
		t.Fatalf("ops symbol = %+v, ok=%v", ops, ok)
	}
}

func TestAssembleBranchResolution(t *testing.T) {
	b := NewModule("m")
	f := b.Func("loop10", 1, true)
	f.Movi(isa.R1, 0)
	f.Label("top")
	f.Addi(isa.R1, 1)
	f.Cmpi(isa.R1, 10)
	f.Jcc(isa.LT, "top")
	f.Mov(isa.R0, isa.R1)
	f.Ret()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	// Instruction 3 (offset 24) is the JCC; its target is offset 8.
	in, err := isa.Decode(m.Code[3*isa.InstrSize:])
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != isa.JCC {
		t.Fatalf("instr 3 = %v, want jcc", in)
	}
	if got := in.BranchTarget(3 * isa.InstrSize); got != 1*isa.InstrSize {
		t.Errorf("jcc target = %#x, want %#x", got, 1*isa.InstrSize)
	}
}

func TestAssemblePLTStubs(t *testing.T) {
	b := NewModule("app").Needs("libtiny")
	f := b.Func("main", 0, true)
	f.Movi(isa.R0, 3)
	f.Movi(isa.R1, 4)
	f.Call("add2") // imported -> PLT
	f.Ret()
	b.SetEntry("main")
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PLT) != 1 || m.PLT[0].Symbol != "add2" {
		t.Fatalf("PLT = %+v, want one add2 stub", m.PLT)
	}
	if m.GOTSlots != 1 {
		t.Fatalf("GOTSlots = %d, want 1", m.GOTSlots)
	}
	// The CALL at instruction 2 must target the PLT stub.
	in, err := isa.Decode(m.Code[2*isa.InstrSize:])
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != isa.CALL {
		t.Fatalf("instr 2 = %v, want call", in)
	}
	if got := in.BranchTarget(2 * isa.InstrSize); got != m.PLT[0].Off {
		t.Errorf("call target = %#x, want PLT stub %#x", got, m.PLT[0].Off)
	}
	// Stub shape: LEA r12; LD r12,[r12]; JMPR r12.
	stub := m.PLT[0].Off
	ops := []isa.Op{isa.LEA, isa.LD, isa.JMPR}
	for i, want := range ops {
		in, err := isa.Decode(m.Code[stub+uint64(i)*isa.InstrSize:])
		if err != nil {
			t.Fatal(err)
		}
		if in.Op != want {
			t.Errorf("stub instr %d = %v, want %v", i, in.Op, want)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	b := NewModule("bad")
	f := b.Func("f", 0, true)
	f.Jmp("missing")
	f.Ret()
	if _, err := b.Assemble(); err == nil {
		t.Error("Assemble accepted undefined label")
	}

	b2 := NewModule("bad2")
	b2.Func("f", 0, true).Ret()
	b2.Func("f", 0, true)
	if _, err := b2.Assemble(); err == nil {
		t.Error("Assemble accepted duplicate function")
	}

	b3 := NewModule("bad3")
	f3 := b3.Func("f", 0, true)
	f3.Label("l").Label("l")
	f3.Ret()
	if _, err := b3.Assemble(); err == nil {
		t.Error("Assemble accepted duplicate label")
	}

	b4 := NewModule("bad4")
	b4.SetEntry("nope")
	b4.Func("f", 0, true).Ret()
	if _, err := b4.Assemble(); err == nil {
		t.Error("Assemble accepted undefined entry")
	}

	// A tail jump to a foreign function routes through a PLT stub, like
	// real cross-module tail calls.
	b5 := NewModule("ok5")
	f5 := b5.Func("f", 0, true)
	f5.TailJmp("external")
	m5, err := b5.Assemble()
	if err != nil {
		t.Fatalf("Assemble(tail jump to import): %v", err)
	}
	if len(m5.PLT) != 1 || m5.PLT[0].Symbol != "external" {
		t.Errorf("PLT = %+v, want one stub for external", m5.PLT)
	}
}

func TestAddrOfVariants(t *testing.T) {
	b := NewModule("m")
	b.DataWords("tbl", []uint64{1, 2, 3}, false)
	f := b.Func("f", 0, true)
	f.AddrOf(isa.R0, "g")      // local function -> LEA, marks address-taken
	f.AddrOf(isa.R1, "tbl")    // local data -> LEA
	f.AddrOf(isa.R2, "extern") // import -> LEA+LD via GOT
	f.Ret()
	b.Func("g", 0, false).Ret()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	g, _ := m.Symbol("g")
	if !g.AddressTaken {
		t.Error("AddrOf(local func) should mark it address-taken")
	}
	if m.GOTSlots != 1 {
		t.Errorf("GOTSlots = %d, want 1 for extern", m.GOTSlots)
	}
	in0, _ := isa.Decode(m.Code[0:])
	if in0.Op != isa.LEA {
		t.Errorf("AddrOf(func) op = %v, want lea", in0.Op)
	}
	// The function reference resolves to g's offset.
	if got := in0.BranchTarget(0); got != func() uint64 { s, _ := m.Symbol("g"); return s.Off }() {
		t.Errorf("lea target = %#x, want g at %#x", got, g.Off)
	}
}

func TestMovu64(t *testing.T) {
	b := NewModule("m")
	f := b.Func("f", 0, true)
	f.Movu64(isa.R0, 42)                  // 1 instr
	f.Movu64(isa.R1, 0xdeadbeefcafebabe)  // 2 instrs
	f.Movu64(isa.R2, 0xffffffff_ffffffff) // sign-extends: 1 instr
	f.Movu64(isa.R3, 0x00000000_80000000) // needs MOVIH to clear sext: 2
	f.Ret()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	wantInstrs := 1 + 2 + 1 + 2 + 1
	if got := len(m.Code) / isa.InstrSize; got != wantInstrs {
		t.Errorf("instruction count = %d, want %d", got, wantInstrs)
	}
}

func TestAddrOfLabel(t *testing.T) {
	b := NewModule("m")
	f := b.Func("f", 0, true)
	f.AddrOfLabel(isa.R6, "target")
	f.JmpR(isa.R6)
	f.Nop()
	f.Label("target")
	f.Ret()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	in, err := isa.Decode(m.Code[0:])
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != isa.LEA {
		t.Fatalf("instr 0 = %v, want lea", in)
	}
	// LEA computes next+imm; target is instruction 3 (offset 24).
	if got := uint64(isa.InstrSize) + uint64(int64(in.Imm)); got != 3*isa.InstrSize {
		t.Errorf("label address = %#x, want %#x", got, 3*isa.InstrSize)
	}

	bad := NewModule("bad")
	fb := bad.Func("f", 0, true)
	fb.AddrOfLabel(isa.R6, "ghost")
	fb.Ret()
	if _, err := bad.Assemble(); err == nil {
		t.Fatal("Assemble accepted AddrOfLabel of an undefined label")
	}
}
