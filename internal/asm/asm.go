// Package asm is a two-pass programmatic assembler producing module.Module
// binaries for the synthetic ISA.
//
// It is the toolchain substrate of the reproduction: the synthetic
// applications (internal/apps), the random program generator
// (internal/progen) and the attack payloads are all built with it. The
// assembler mirrors what a real compiler + static linker produce:
//
//   - function symbols with declared arities (ground truth for the
//     TypeArmor-style analysis),
//   - a PLT stub per imported function, dispatching through a GOT slot
//     (so inter-module transfers are exactly "PLT indirect jump + return",
//     as §4.1 of the paper relies on),
//   - relocations for address-taken functions and data-section function
//     pointer tables (the inputs of the conservative indirect-call
//     analysis).
//
// The code section of a module is assumed to be loaded page-aligned; the
// assembler exploits that to emit PC-relative LEA instructions reaching
// the module's own data section.
package asm

import (
	"encoding/binary"
	"fmt"

	"flowguard/internal/isa"
	"flowguard/internal/module"
)

const pageAlign = 0x1000

// refKind distinguishes the fixup targets of emitted instructions.
type refKind uint8

const (
	refNone  refKind = iota
	refLabel         // function-local label (JMP/JCC/CALL within function)
	refFunc          // function in this module (CALL/JMP) or PLT stub
	refData          // data symbol (LEA)
	refGOT           // GOT slot index (LEA inside PLT stubs)
	refSym           // AddrOf: classified as func/data/import at assembly
	refSymLD         // AddrOf second slot: LD for imports, NOP otherwise
)

type pending struct {
	instr isa.Instr
	kind  refKind
	name  string
	slot  int // for refGOT
}

// Func accumulates the body of one function.
type Func struct {
	b        *Builder
	name     string
	args     int
	exported bool
	code     []pending
	labels   map[string]int // label -> instruction index
	off      uint64         // assigned in layout
}

// Builder accumulates a module.
type Builder struct {
	name    string
	funcs   []*Func
	funcIdx map[string]*Func
	needed  []string
	imports map[string]int // imported symbol -> GOT slot (also used for PLT order)
	impOrd  []string
	data    []byte
	dataSym map[string]uint64 // data symbol -> offset (pre-GOT-shift)
	dataTab []module.Symbol
	relocs  []module.Reloc // offsets pre-GOT-shift
	taken   map[string]bool
	entry   string
	err     error
}

// NewModule starts building a module with the given name.
func NewModule(name string) *Builder {
	return &Builder{
		name:    name,
		funcIdx: make(map[string]*Func),
		imports: make(map[string]int),
		dataSym: make(map[string]uint64),
		taken:   make(map[string]bool),
	}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("asm %s: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// Needs declares DT_NEEDED dependencies in search order.
func (b *Builder) Needs(libs ...string) *Builder {
	b.needed = append(b.needed, libs...)
	return b
}

// SetEntry names the entry-point function (executables).
func (b *Builder) SetEntry(fn string) *Builder {
	b.entry = fn
	return b
}

// Func starts a new exported/private function with the declared number of
// argument registers. Definitions are laid out in declaration order.
func (b *Builder) Func(name string, args int, exported bool) *Func {
	if _, dup := b.funcIdx[name]; dup {
		b.fail("duplicate function %q", name)
	}
	f := &Func{b: b, name: name, args: args, exported: exported, labels: make(map[string]int)}
	b.funcs = append(b.funcs, f)
	b.funcIdx[name] = f
	return f
}

// Import declares an imported function symbol, allocating its GOT slot and
// PLT stub. Calling or taking the address of an undeclared symbol imports
// it implicitly.
func (b *Builder) Import(name string) *Builder {
	b.importSlot(name)
	return b
}

func (b *Builder) importSlot(name string) int {
	if s, ok := b.imports[name]; ok {
		return s
	}
	s := len(b.impOrd)
	b.imports[name] = s
	b.impOrd = append(b.impOrd, name)
	return s
}

// DataBytes defines a data object with the given initial contents and
// returns its symbol name for AddrOf references.
func (b *Builder) DataBytes(name string, p []byte, exported bool) {
	b.alignData(8)
	if _, dup := b.dataSym[name]; dup {
		b.fail("duplicate data symbol %q", name)
		return
	}
	off := uint64(len(b.data))
	b.dataSym[name] = off
	b.data = append(b.data, p...)
	b.dataTab = append(b.dataTab, module.Symbol{
		Name: name, Kind: module.SymObject, Off: off, Size: uint64(len(p)), Exported: exported,
	})
}

// DataWords defines a data object of 64-bit words.
func (b *Builder) DataWords(name string, words []uint64, exported bool) {
	p := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(p[i*8:], w)
	}
	b.DataBytes(name, p, exported)
}

// DataSpace reserves a zero-initialized data object.
func (b *Builder) DataSpace(name string, size int, exported bool) {
	b.DataBytes(name, make([]byte, size), exported)
}

// FuncTable defines a data object holding the addresses of the named
// functions — a classic indirect-call dispatch table. Each entry produces
// a relocation and marks its target address-taken. Entries may be local
// functions or imported symbols.
func (b *Builder) FuncTable(name string, targets []string, exported bool) {
	b.alignData(8)
	off := uint64(len(b.data))
	if _, dup := b.dataSym[name]; dup {
		b.fail("duplicate data symbol %q", name)
		return
	}
	b.dataSym[name] = off
	for i, t := range targets {
		b.relocs = append(b.relocs, module.Reloc{Off: off + uint64(i)*8, Symbol: t})
		b.data = append(b.data, make([]byte, 8)...)
	}
	b.dataTab = append(b.dataTab, module.Symbol{
		Name: name, Kind: module.SymObject, Off: off, Size: uint64(8 * len(targets)), Exported: exported,
	})
}

func (b *Builder) alignData(a int) {
	for len(b.data)%a != 0 {
		b.data = append(b.data, 0)
	}
}

// --- instruction emission -------------------------------------------------

func (f *Func) emit(i isa.Instr) *Func { return f.emitRef(i, refNone, "", 0) }

func (f *Func) emitRef(i isa.Instr, k refKind, name string, slot int) *Func {
	f.code = append(f.code, pending{instr: i, kind: k, name: name, slot: slot})
	return f
}

// Label defines a function-local branch target at the current position.
func (f *Func) Label(name string) *Func {
	if _, dup := f.labels[name]; dup {
		f.b.fail("duplicate label %q in %s", name, f.name)
	}
	f.labels[name] = len(f.code)
	return f
}

// Nop emits a no-op.
func (f *Func) Nop() *Func { return f.emit(isa.Instr{Op: isa.NOP}) }

// Halt stops the CPU (used by crash stubs and tests).
func (f *Func) Halt() *Func { return f.emit(isa.Instr{Op: isa.HALT}) }

// Mov emits rd = rs.
func (f *Func) Mov(rd, rs isa.Reg) *Func { return f.emit(isa.Instr{Op: isa.MOV, Rd: rd, Rs: rs}) }

// Movi emits rd = signext(imm).
func (f *Func) Movi(rd isa.Reg, imm int32) *Func {
	return f.emit(isa.Instr{Op: isa.MOVI, Rd: rd, Imm: imm})
}

// Movu64 loads a full 64-bit constant via MOVI+MOVIH.
func (f *Func) Movu64(rd isa.Reg, v uint64) *Func {
	f.emit(isa.Instr{Op: isa.MOVI, Rd: rd, Imm: int32(uint32(v))})
	if uint64(int64(int32(uint32(v)))) != v {
		f.emit(isa.Instr{Op: isa.MOVIH, Rd: rd, Imm: int32(uint32(v >> 32))})
	}
	return f
}

// Binary ALU helpers.
func (f *Func) Add(rd, rs isa.Reg) *Func { return f.emit(isa.Instr{Op: isa.ADD, Rd: rd, Rs: rs}) }
func (f *Func) Sub(rd, rs isa.Reg) *Func { return f.emit(isa.Instr{Op: isa.SUB, Rd: rd, Rs: rs}) }
func (f *Func) Mul(rd, rs isa.Reg) *Func { return f.emit(isa.Instr{Op: isa.MUL, Rd: rd, Rs: rs}) }
func (f *Func) Div(rd, rs isa.Reg) *Func { return f.emit(isa.Instr{Op: isa.DIV, Rd: rd, Rs: rs}) }
func (f *Func) Mod(rd, rs isa.Reg) *Func { return f.emit(isa.Instr{Op: isa.MOD, Rd: rd, Rs: rs}) }
func (f *Func) And(rd, rs isa.Reg) *Func { return f.emit(isa.Instr{Op: isa.AND, Rd: rd, Rs: rs}) }
func (f *Func) Or(rd, rs isa.Reg) *Func  { return f.emit(isa.Instr{Op: isa.OR, Rd: rd, Rs: rs}) }
func (f *Func) Xor(rd, rs isa.Reg) *Func { return f.emit(isa.Instr{Op: isa.XOR, Rd: rd, Rs: rs}) }
func (f *Func) Shl(rd, rs isa.Reg) *Func { return f.emit(isa.Instr{Op: isa.SHL, Rd: rd, Rs: rs}) }
func (f *Func) Shr(rd, rs isa.Reg) *Func { return f.emit(isa.Instr{Op: isa.SHR, Rd: rd, Rs: rs}) }

// Addi emits rd += imm.
func (f *Func) Addi(rd isa.Reg, imm int32) *Func {
	return f.emit(isa.Instr{Op: isa.ADDI, Rd: rd, Imm: imm})
}

// Cmp/Cmpi set flags.
func (f *Func) Cmp(ra, rb isa.Reg) *Func { return f.emit(isa.Instr{Op: isa.CMP, Rd: ra, Rs: rb}) }
func (f *Func) Cmpi(ra isa.Reg, imm int32) *Func {
	return f.emit(isa.Instr{Op: isa.CMPI, Rd: ra, Imm: imm})
}

// Memory access helpers.
func (f *Func) Ld(rd, base isa.Reg, off int32) *Func {
	return f.emit(isa.Instr{Op: isa.LD, Rd: rd, Rs: base, Imm: off})
}
func (f *Func) St(base isa.Reg, off int32, rs isa.Reg) *Func {
	return f.emit(isa.Instr{Op: isa.ST, Rd: base, Rs: rs, Imm: off})
}
func (f *Func) Ldb(rd, base isa.Reg, off int32) *Func {
	return f.emit(isa.Instr{Op: isa.LDB, Rd: rd, Rs: base, Imm: off})
}
func (f *Func) Stb(base isa.Reg, off int32, rs isa.Reg) *Func {
	return f.emit(isa.Instr{Op: isa.STB, Rd: base, Rs: rs, Imm: off})
}
func (f *Func) Push(rs isa.Reg) *Func { return f.emit(isa.Instr{Op: isa.PUSH, Rs: rs}) }
func (f *Func) Pop(rd isa.Reg) *Func  { return f.emit(isa.Instr{Op: isa.POP, Rd: rd}) }

// Jmp emits a direct unconditional jump to a function-local label.
func (f *Func) Jmp(label string) *Func {
	return f.emitRef(isa.Instr{Op: isa.JMP}, refLabel, label, 0)
}

// Jcc emits a conditional branch to a function-local label.
func (f *Func) Jcc(c isa.Cond, label string) *Func {
	return f.emitRef(isa.Instr{Op: isa.JCC, Aux: uint8(c)}, refLabel, label, 0)
}

// Call emits a direct call. Names defined in this module (before or after
// this point) are called directly; unknown names are imported and routed
// through a PLT stub (still a direct CALL to the stub; the stub's indirect
// jump is what crosses the module boundary).
func (f *Func) Call(fn string) *Func {
	return f.emitRef(isa.Instr{Op: isa.CALL}, refFunc, fn, 0)
}

// TailJmp emits a direct jump to another function: the tail-call pattern
// of §4.1 (reuses the frame; the callee returns to this function's
// caller). Imported names tail-jump through their PLT stub.
func (f *Func) TailJmp(fn string) *Func {
	return f.emitRef(isa.Instr{Op: isa.JMP}, refFunc, fn, 0)
}

// CallR emits an indirect call through a register.
func (f *Func) CallR(rs isa.Reg) *Func { return f.emit(isa.Instr{Op: isa.CALLR, Rs: rs}) }

// JmpR emits an indirect jump through a register.
func (f *Func) JmpR(rs isa.Reg) *Func { return f.emit(isa.Instr{Op: isa.JMPR, Rs: rs}) }

// Ret emits a near return.
func (f *Func) Ret() *Func { return f.emit(isa.Instr{Op: isa.RET}) }

// Syscall emits the far-transfer syscall instruction.
func (f *Func) Syscall() *Func { return f.emit(isa.Instr{Op: isa.SYSCALL}) }

// AddrOfLabel loads the absolute address of a function-local label into
// rd (PC-relative LEA) — the computed-goto idiom compilers use for
// address-taken labels and sparse switch lowering. The static analyzer
// recognizes such LEAs as indirect-jump targets within the function.
func (f *Func) AddrOfLabel(rd isa.Reg, label string) *Func {
	return f.emitRef(isa.Instr{Op: isa.LEA, Rd: rd}, refLabel, label, 0)
}

// AddrOf loads the absolute address of a symbol into rd. Local functions
// and data use PC-relative LEA (and mark functions address-taken);
// imported symbols load their GOT slot. The symbol is classified at
// assembly time, so forward references to later definitions work; two
// instruction slots are always reserved (LEA+LD for imports, LEA+NOP for
// locals).
func (f *Func) AddrOf(rd isa.Reg, sym string) *Func {
	f.emitRef(isa.Instr{Op: isa.LEA, Rd: rd}, refSym, sym, 0)
	return f.emitRef(isa.Instr{Op: isa.NOP, Rd: rd}, refSymLD, sym, 0)
}

// Prologue emits the standard frame setup: push fp; fp = sp; sp -= frame.
func (f *Func) Prologue(frame int32) *Func {
	f.Push(isa.FP)
	f.Mov(isa.FP, isa.SP)
	if frame > 0 {
		f.Addi(isa.SP, -frame)
	}
	return f
}

// Epilogue emits the matching teardown and return.
func (f *Func) Epilogue() *Func {
	f.Mov(isa.SP, isa.FP)
	f.Pop(isa.FP)
	return f.Ret()
}

// Size returns the current number of emitted instructions.
func (f *Func) Size() int { return len(f.code) }

// --- assembly --------------------------------------------------------------

// Assemble lays out functions and PLT stubs, resolves every reference and
// returns the finished module.
func (b *Builder) Assemble() (*module.Module, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.funcs) == 0 {
		return nil, fmt.Errorf("asm %s: no functions", b.name)
	}

	// Classify deferred references now that every definition is known:
	// locally-defined AddrOf targets become address-taken, and names that
	// resolve to nothing local become imports (allocating GOT slots and
	// PLT stubs before layout).
	for _, f := range b.funcs {
		for _, p := range f.code {
			switch p.kind {
			case refSym:
				if _, isFn := b.funcIdx[p.name]; isFn {
					b.taken[p.name] = true
					continue
				}
				if _, isData := b.dataSym[p.name]; isData {
					continue
				}
				b.importSlot(p.name)
			case refFunc:
				if _, isFn := b.funcIdx[p.name]; !isFn {
					b.importSlot(p.name)
				}
			}
		}
	}
	// Function-pointer tables mark locally-defined targets address-taken;
	// foreign targets resolve at load time through the global lookup.
	for _, r := range b.relocs {
		if _, isFn := b.funcIdx[r.Symbol]; isFn {
			b.taken[r.Symbol] = true
		}
	}

	// Layout pass: functions in declaration order, then PLT stubs.
	off := uint64(0)
	for _, f := range b.funcs {
		f.off = off
		off += uint64(len(f.code)) * isa.InstrSize
	}
	const pltStubInstrs = 3
	pltOff := make(map[string]uint64, len(b.impOrd))
	for _, imp := range b.impOrd {
		pltOff[imp] = off
		off += pltStubInstrs * isa.InstrSize
	}
	codeSize := off

	// The GOT occupies the front of the data section; shift data symbols.
	gotBytes := uint64(len(b.impOrd)) * 8
	dataBase := func(codeOff uint64) int64 {
		// PC-relative distance from codeOff to the start of the data
		// section, assuming a page-aligned code base.
		return int64(alignUp(codeSize, pageAlign)) - int64(codeOff)
	}

	code := make([]byte, 0, codeSize)
	resolve := func(f *Func, idx int, p pending) (isa.Instr, error) {
		instrOff := f.off + uint64(idx)*isa.InstrSize
		next := instrOff + isa.InstrSize
		i := p.instr
		switch p.kind {
		case refNone:
			return i, nil
		case refLabel:
			t, ok := f.labels[p.name]
			if !ok {
				return i, fmt.Errorf("asm %s: undefined label %q in %s", b.name, p.name, f.name)
			}
			i.Imm = int32(int64(f.off+uint64(t)*isa.InstrSize) - int64(next))
			return i, nil
		case refFunc:
			var target uint64
			if tf, ok := b.funcIdx[p.name]; ok {
				target = tf.off
			} else if po, ok := pltOff[p.name]; ok {
				target = po
			} else {
				return i, fmt.Errorf("asm %s: unresolved function %q", b.name, p.name)
			}
			i.Imm = int32(int64(target) - int64(next))
			return i, nil
		case refData:
			d, ok := b.dataSym[p.name]
			if !ok {
				return i, fmt.Errorf("asm %s: unresolved data symbol %q", b.name, p.name)
			}
			i.Imm = int32(dataBase(next) + int64(gotBytes+d))
			return i, nil
		case refGOT:
			i.Imm = int32(dataBase(next) + int64(p.slot)*8)
			return i, nil
		case refSym:
			if tf, ok := b.funcIdx[p.name]; ok {
				i.Imm = int32(int64(tf.off) - int64(next))
				return i, nil
			}
			if d, ok := b.dataSym[p.name]; ok {
				i.Imm = int32(dataBase(next) + int64(gotBytes+d))
				return i, nil
			}
			slot, ok := b.imports[p.name]
			if !ok {
				return i, fmt.Errorf("asm %s: unresolved AddrOf symbol %q", b.name, p.name)
			}
			i.Imm = int32(dataBase(next) + int64(slot)*8)
			return i, nil
		case refSymLD:
			if _, ok := b.funcIdx[p.name]; ok {
				return isa.Instr{Op: isa.NOP}, nil
			}
			if _, ok := b.dataSym[p.name]; ok {
				return isa.Instr{Op: isa.NOP}, nil
			}
			return isa.Instr{Op: isa.LD, Rd: i.Rd, Rs: i.Rd}, nil
		}
		return i, fmt.Errorf("asm %s: unknown ref kind", b.name)
	}

	for _, f := range b.funcs {
		for idx, p := range f.code {
			i, err := resolve(f, idx, p)
			if err != nil {
				return nil, err
			}
			code = i.EncodeTo(code)
		}
	}

	var plt []module.PLTEntry
	for _, imp := range b.impOrd {
		stub := pltOff[imp]
		slot := b.imports[imp]
		lea := isa.Instr{Op: isa.LEA, Rd: isa.R12, Imm: int32(dataBase(stub+isa.InstrSize) + int64(slot)*8)}
		code = lea.EncodeTo(code)
		code = (isa.Instr{Op: isa.LD, Rd: isa.R12, Rs: isa.R12}).EncodeTo(code)
		code = (isa.Instr{Op: isa.JMPR, Rs: isa.R12}).EncodeTo(code)
		plt = append(plt, module.PLTEntry{Symbol: imp, Off: stub, GOTSlot: slot})
	}

	data := make([]byte, gotBytes+uint64(len(b.data)))
	copy(data[gotBytes:], b.data)

	m := &module.Module{
		Name:     b.name,
		Code:     code,
		Data:     data,
		GOTSlots: len(b.impOrd),
		PLT:      plt,
		Needed:   append([]string(nil), b.needed...),
	}
	for _, f := range b.funcs {
		m.Symbols = append(m.Symbols, module.Symbol{
			Name: f.name, Kind: module.SymFunc, Off: f.off,
			Size: uint64(len(f.code)) * isa.InstrSize, ArgCount: f.args,
			AddressTaken: b.taken[f.name], Exported: f.exported,
		})
	}
	for _, s := range b.dataTab {
		s.Off += gotBytes
		m.Symbols = append(m.Symbols, s)
	}
	for _, r := range b.relocs {
		m.Relocs = append(m.Relocs, module.Reloc{Off: r.Off + gotBytes, Symbol: r.Symbol})
	}
	if b.entry != "" {
		ef, ok := b.funcIdx[b.entry]
		if !ok {
			return nil, fmt.Errorf("asm %s: entry %q undefined", b.name, b.entry)
		}
		m.Entry = ef.off
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func alignUp(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }
