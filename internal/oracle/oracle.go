package oracle

import (
	"fmt"

	"flowguard/internal/cfg"
	"flowguard/internal/module"
)

// Verdict of one check.
type Verdict uint8

// Verdicts.
const (
	VerdictClean Verdict = iota
	VerdictViolation
)

// Health classifies the trace evidence backing a check, mirroring the
// production TraceHealth enumeration value-for-value.
type Health uint8

// Health classes.
const (
	HealthClean Health = iota
	HealthResynced
	HealthGap
	HealthMalformed
)

func (h Health) String() string {
	switch h {
	case HealthClean:
		return "clean"
	case HealthResynced:
		return "resynced"
	case HealthGap:
		return "gap"
	case HealthMalformed:
		return "malformed"
	}
	return fmt.Sprintf("health(%d)", uint8(h))
}

// DegradedMode selects how a degraded check resolves, mirroring the
// production enumeration value-for-value.
type DegradedMode uint8

// Degraded modes.
const (
	FailClosed DegradedMode = iota
	FailOpen
	SlowPathRetry
)

// defaultRetryMax bounds recovery re-decode attempts when the policy
// leaves RetryMax unset.
const defaultRetryMax = 3

// Policy mirrors the checking-relevant production policy knobs (cost
// modeling and endpoint selection are out of the oracle's scope).
type Policy struct {
	PktCount            int
	CredRatio           float64
	RequireModuleStride bool
	CredMinCount        uint32
	PathSensitive       bool
	NaiveFullDecode     bool
	OnDegraded          DegradedMode
	RetryMax            int
}

// Result of one reference check.
type Result struct {
	Verdict      Verdict
	Reason       string
	TIPs         int
	LowCredit    int
	UsedSlowPath bool
	Health       Health
	Degraded     bool
	Retries      int
}

// Stats accumulates the checking counters whose values the production
// pipeline must reproduce exactly. Cost-model counters (cycles, bytes
// scanned) and cache-shortcut counters are production implementation
// details and deliberately absent.
type Stats struct {
	Checks         uint64
	SlowChecks     uint64
	Violations     uint64
	TIPsChecked    uint64
	HighEdges      uint64
	LowEdges       uint64
	Resyncs        uint64
	Overflows      uint64
	Gaps           uint64
	Malformed      uint64
	DegradedChecks uint64
	FailOpens      uint64
	FailClosures   uint64
	Retries        uint64
	Shed           uint64
}

// TraceSource is the oracle's read-only view of a trace buffer. The
// production ToPA satisfies it structurally; the oracle never imports
// the trace packages.
type TraceSource interface {
	Snapshot() []byte
	TotalWritten() uint64
	Held() int
	Wrapped() bool
}

// edgeApproval keys a slow-path-approved edge.
type edgeApproval struct{ src, dst, sig uint64 }

// Oracle is the reference checker for one traced process. It is
// single-threaded and unhurried: every Check() re-parses its entire
// retained stream from scratch and re-derives the window, trading all of
// the production path's incrementality for obviousness.
type Oracle struct {
	AS     *module.AddressSpace
	OCFG   *cfg.Graph
	Ref    *Ref
	Src    TraceSource
	Policy Policy
	Stats  Stats

	// Retained stream state: everything appended since the last fresh
	// snapshot, never trimmed (the window logic filters by residency
	// instead — keeping the damaged prefix visible is what lets a batch
	// re-parse reproduce the incremental decoder's state exactly).
	started    bool
	invalid    bool
	stream     []byte
	streamBase uint64
	prevTotal  uint64
	prevOVF    int
	wrapLoss   bool

	// Per-parse scratch consulted by degraded resolution.
	curSynced  bool
	curLastOVF int

	apprEdges map[edgeApproval]bool
	apprPaths map[[3]uint64]bool
	apprGen   uint64
}

// New builds a reference checker over a trace source.
func New(as *module.AddressSpace, ocfg *cfg.Graph, ref *Ref, src TraceSource, pol Policy) *Oracle {
	return &Oracle{
		AS:        as,
		OCFG:      ocfg,
		Ref:       ref,
		Src:       src,
		Policy:    pol,
		apprEdges: make(map[edgeApproval]bool),
		apprPaths: make(map[[3]uint64]bool),
	}
}

// AdoptApprovals shares another oracle's approval store (the warm-cache
// property drives two oracles over one store).
func (o *Oracle) AdoptApprovals(from *Oracle) {
	o.apprEdges = from.apprEdges
	o.apprPaths = from.apprPaths
	o.apprGen = from.apprGen
}

// Invalidate drops the retained stream so the next check re-snapshots.
func (o *Oracle) Invalidate() { o.invalid = true }

// window re-derives the check window: sync the retained stream with the
// source, re-parse it wholesale, apply the residency and health rules,
// and select the newest sync-point suffix satisfying the packet-count
// and module-stride policy.
func (o *Oracle) window() (recs []tipRec, region []byte, health Health, err error) {
	total := o.Src.TotalWritten()
	o.wrapLoss = false
	fresh := !o.started || o.invalid || total < o.prevTotal
	if !fresh && total > o.prevTotal {
		delta := total - o.prevTotal
		if delta > uint64(o.Src.Held()) {
			// The producer wrapped past everything retained since the
			// last check: bytes were evicted unchecked.
			fresh = true
			o.wrapLoss = true
			o.Stats.Resyncs++
		} else {
			snap := o.Src.Snapshot()
			o.stream = append(o.stream, snap[uint64(len(snap))-delta:]...)
		}
	}
	if fresh {
		snap := o.Src.Snapshot()
		o.stream = append([]byte(nil), snap...)
		o.streamBase = total - uint64(len(snap))
		o.prevOVF = 0
	}
	o.started, o.invalid, o.prevTotal = true, false, total

	pkts, _, perr := parse(o.stream, int(o.streamBase), true)
	o.curSynced = syncedEnd(pkts)
	o.curLastOVF = lastOVFOff(pkts)
	if perr != nil {
		o.invalid = true
		o.Stats.Malformed++
		return nil, nil, HealthMalformed, perr
	}

	// Residency: records that scrolled out of the source buffer are no
	// longer checkable (and their bytes can no longer back a slow path).
	effBase := o.streamBase
	if lo := total - uint64(o.Src.Held()); lo > effBase {
		effBase = lo
	}
	all := recsFrom(extractRecords(pkts), int(effBase))
	pts := syncOffsetsFrom(pkts, int(effBase))

	ovfTot := ovfCount(pkts)
	if d := ovfTot - o.prevOVF; d > 0 {
		o.Stats.Overflows += uint64(d)
		o.prevOVF = ovfTot
		health = HealthResynced
	} else if ovfTot > 0 && !o.curSynced {
		health = HealthResynced
	} else if o.wrapLoss {
		health = HealthResynced
	}

	if len(pts) == 0 {
		if o.Src.Held() > 0 {
			o.Stats.Gaps++
			return nil, nil, HealthGap, nil
		}
		return nil, nil, health, nil // nothing traced yet
	}
	if !o.Src.Wrapped() && uint64(pts[0]) > effBase {
		// Unsyncable prefix in a buffer that never wrapped: the stream
		// head was damaged, not aged out.
		o.wrapLoss = true
		if health == HealthClean {
			health = HealthResynced
		}
	}

	for k := len(pts) - 1; k >= 0; k-- {
		sub := recsFrom(all, pts[k])
		if (len(sub) >= o.Policy.PktCount && o.strideOK(sub)) || k == 0 {
			return o.trim(sub), o.stream[uint64(pts[k])-o.streamBase:], health, nil
		}
	}
	return nil, nil, health, nil
}

// strideOK applies the module-stride rule: the window must span more
// than one module and touch the executable.
func (o *Oracle) strideOK(recs []tipRec) bool {
	if !o.Policy.RequireModuleStride {
		return true
	}
	return o.spansModules(recs)
}

func (o *Oracle) spansModules(recs []tipRec) bool {
	mods := make(map[*module.Loaded]bool)
	inExec := false
	for _, r := range recs {
		l := o.AS.FindModule(r.IP)
		if l == nil {
			continue
		}
		if l == o.AS.Exec {
			inExec = true
		}
		mods[l] = true
	}
	return inExec && len(mods) > 1
}

// trim cuts the window to the policy packet count, extending backwards
// while the stride rule is unmet (recomputed from scratch per step —
// quadratic and proud of it).
func (o *Oracle) trim(recs []tipRec) []tipRec {
	if len(recs) <= o.Policy.PktCount {
		return recs
	}
	start := len(recs) - o.Policy.PktCount
	if !o.Policy.RequireModuleStride {
		return recs[start:]
	}
	for start > 0 && !o.spansModules(recs[start:]) {
		start--
	}
	return recs[start:]
}

// Check runs one reference check over the source's current contents.
func (o *Oracle) Check() Result {
	if o.Ref != nil && o.apprGen != o.Ref.gen {
		// The label snapshot changed: approvals earned against the old
		// labels must be re-earned.
		o.apprEdges = make(map[edgeApproval]bool)
		o.apprPaths = make(map[[3]uint64]bool)
		o.apprGen = o.Ref.gen
	}
	o.Stats.Checks++
	recs, region, health, err := o.window()
	res := Result{TIPs: len(recs), Health: health}
	if err != nil || health != HealthClean {
		o.resolveDegraded(&res, recs, region, err)
	} else if len(recs) >= 2 {
		o.runChecks(&res, recs, region, o.Policy.NaiveFullDecode)
	}
	o.finish(&res)
	return res
}

// runChecks is the fast-path analogue: classify every consecutive TIP
// pair against the reference ITC-CFG and escalate to the slow path when
// the high-credit ratio falls below the policy threshold.
func (o *Oracle) runChecks(res *Result, recs []tipRec, region []byte, forceSlow bool) {
	if forceSlow {
		o.slowPath(res, recs, region)
		return
	}
	minCount := o.Policy.CredMinCount
	if minCount == 0 {
		minCount = 1
	}
	suspicious, checked := 0, 0
	for i := 0; i+1 < len(recs); i++ {
		if recs[i].Async || recs[i+1].Resync || recs[i+1].Async {
			// Not control-flow-adjacent: seam, async transfer, or a pair
			// anchored at an async target (a mid-block resume point is not
			// an indirect-branch target; the flow walk verifies that span).
			continue
		}
		checked++
		src, dst, sig := recs[i].IP, recs[i+1].IP, recs[i+1].Sig
		exists, count, sigOK := o.Ref.lookup(src, dst, sig)
		if !exists {
			res.Verdict = VerdictViolation
			res.Reason = fmt.Sprintf("ITC-CFG edge mismatch: %#x -> %#x", src, dst)
			return
		}
		if count > 0 && sigOK && count >= minCount {
			o.Stats.HighEdges++
			continue
		}
		if o.apprEdges[edgeApproval{src, dst, sig}] {
			o.Stats.HighEdges++
			continue
		}
		o.Stats.LowEdges++
		suspicious++
	}
	if o.Policy.PathSensitive {
		for i := 0; i+2 < len(recs); i++ {
			if recs[i].Async || recs[i+1].Resync || recs[i+2].Resync ||
				recs[i+1].Async || recs[i+2].Async {
				continue
			}
			a, b, c := recs[i].IP, recs[i+1].IP, recs[i+2].IP
			if o.Ref.pathTrained(a, b, c) || o.apprPaths[[3]uint64{a, b, c}] {
				continue
			}
			o.Stats.LowEdges++
			suspicious++
		}
	}
	res.LowCredit = suspicious
	if float64(checked-suspicious) < o.Policy.CredRatio*float64(checked) {
		o.slowPath(res, recs, region)
	}
}

// resolveDegraded applies the policy to a check whose trace evidence is
// incomplete or damaged.
func (o *Oracle) resolveDegraded(res *Result, recs []tipRec, region []byte, decodeErr error) {
	res.Degraded = true
	o.Stats.DegradedChecks++
	detail := res.Health.String()
	if decodeErr != nil {
		detail = decodeErr.Error()
	}
	switch o.Policy.OnDegraded {
	case FailOpen:
		if len(recs) >= 2 {
			o.runChecks(res, recs, region, false)
			if res.Verdict == VerdictViolation {
				return
			}
		}
		o.Stats.FailOpens++
		res.Verdict = VerdictClean
		res.Reason = "degraded trace (" + detail + "): fail open"
	case SlowPathRetry:
		if res.Health == HealthResynced && o.curSynced && o.tailCovered(recs) {
			o.runChecks(res, recs, region, true)
			return
		}
		o.retrySlowPath(res, detail)
	default:
		o.Stats.FailClosures++
		res.Verdict = VerdictViolation
		res.Reason = "degraded trace (" + detail + "): fail closed"
	}
}

// tailCovered reports whether the window's records cover the stream tail
// after the last overflow (a resynced-but-covered window may be checked
// in place).
func (o *Oracle) tailCovered(recs []tipRec) bool {
	if o.wrapLoss && len(recs) < o.Policy.PktCount {
		return false
	}
	if o.curLastOVF < 0 {
		return len(recs) >= 2
	}
	return len(recsFrom(recs, o.curLastOVF)) >= 2
}

// retrySlowPath re-decodes from successively later sync points of a
// fresh snapshot, forcing the full check over the first recovery whose
// tail is covered; exhausted budgets fail closed.
func (o *Oracle) retrySlowPath(res *Result, detail string) {
	max := o.Policy.RetryMax
	if max <= 0 {
		max = defaultRetryMax
	}
	wrapLoss := o.wrapLoss
	o.invalid = true // recovery abandons the retained stream
	buf := o.Src.Snapshot()
	pts := findAllPSBs(buf)
	attempts := len(pts)
	if attempts > max {
		attempts = max
	}
	if attempts == 0 {
		attempts = 1
	}
	for attempt := 0; attempt < attempts; attempt++ {
		o.Stats.Retries++
		res.Retries++
		if attempt >= len(pts) {
			break
		}
		start := pts[attempt]
		pkts, _, perr := parse(buf[start:], start, false)
		if perr != nil {
			continue
		}
		recs := extractRecords(pkts)
		if !recoveredTailOK(pkts, recs) {
			continue
		}
		if wrapLoss && len(recs) < o.Policy.PktCount {
			continue
		}
		res.TIPs = len(recs)
		o.runChecks(res, recs, buf[start:], true)
		return
	}
	o.Stats.FailClosures++
	res.Verdict = VerdictViolation
	res.Reason = "degraded trace (" + detail + "): recovery retries exhausted, fail closed"
}

// recoveredTailOK mirrors tailCovered for a recovery decode.
func recoveredTailOK(pkts []Packet, recs []tipRec) bool {
	lastOVF := lastOVFOff(pkts)
	if lastOVF < 0 {
		return len(recs) >= 2
	}
	return len(recsFrom(recs, lastOVF)) >= 2
}

// finish folds a result into the statistics.
func (o *Oracle) finish(res *Result) {
	o.Stats.TIPsChecked += uint64(res.TIPs)
	if res.UsedSlowPath {
		o.Stats.SlowChecks++
	}
	if res.Verdict == VerdictViolation {
		o.Stats.Violations++
	}
}

// NoteShed accounts a check the caller's admission control refused,
// mirroring the production pool's shed bookkeeping.
func (o *Oracle) NoteShed(violation bool) {
	o.Stats.Checks++
	o.Stats.DegradedChecks++
	o.Stats.Shed++
	if violation {
		o.Stats.Violations++
		o.Stats.FailClosures++
	} else {
		o.Stats.FailOpens++
	}
}
