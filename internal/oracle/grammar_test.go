package oracle

import (
	"bytes"
	"math/rand"
	"testing"
)

// genStream emits a random well-formed packet stream using an
// independent ad-hoc encoder (not Serialize, which is under test).
func genStream(r *rand.Rand, n int) []byte {
	var out []byte
	lastIP := uint64(0)
	psb := func() {
		for j := 0; j < psbRepeat; j++ {
			out = append(out, 0x02, extPSB)
		}
		lastIP = 0
	}
	psb()
	for i := 0; i < n; i++ {
		switch r.Intn(8) {
		case 0:
			out = append(out, 0x00)
		case 1:
			nb := 1 + r.Intn(maxTNTBits)
			bits := byte(r.Intn(1 << nb))
			out = append(out, byte(1)<<(nb+1)|bits<<1)
		case 2:
			psb()
		case 3:
			out = append(out, 0x02, extPSBEND)
		case 4:
			out = append(out, 0x02, extPIP)
			cr3 := r.Uint64()
			for j := 0; j < 8; j++ {
				out = append(out, byte(cr3>>(8*j)))
			}
		case 5:
			out = append(out, 0x02, extOVF)
		default:
			ops := []byte{hdrTIP, hdrTIPPGE, hdrTIPPGD, hdrFUP}
			op := ops[r.Intn(len(ops))]
			ipb := uint8(r.Intn(4))
			out = append(out, op|ipb<<5)
			target := r.Uint64()
			switch ipb {
			case 0:
				target = lastIP
			case 1:
				target = lastIP&^0xffff | target&0xffff
				out = append(out, byte(target), byte(target>>8))
			case 2:
				target = lastIP&^0xffffffff | target&0xffffffff
				for j := 0; j < 4; j++ {
					out = append(out, byte(target>>(8*j)))
				}
			default:
				for j := 0; j < 8; j++ {
					out = append(out, byte(target>>(8*j)))
				}
			}
			lastIP = target
		}
	}
	return out
}

// TestSerializeRoundTrip: parse → serialize must reproduce any fully
// parseable stream byte-identically.
func TestSerializeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		raw := genStream(r, 1+r.Intn(80))
		pkts, consumed, err := ParsePackets(raw)
		if err != nil {
			t.Fatalf("trial %d: parse error on well-formed stream: %v", trial, err)
		}
		if consumed != len(raw) {
			t.Fatalf("trial %d: consumed %d of %d bytes", trial, consumed, len(raw))
		}
		if got := Serialize(pkts); !bytes.Equal(got, raw) {
			t.Fatalf("trial %d: round trip diverged:\n in  %x\n out %x", trial, raw, got)
		}
	}
}

// TestParseTruncation: every prefix of a well-formed stream parses
// without error (truncated tails stop cleanly in the batch dialect).
func TestParseTruncation(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	raw := genStream(r, 60)
	for cut := 0; cut <= len(raw); cut++ {
		pkts, consumed, err := ParsePackets(raw[:cut])
		if err != nil {
			t.Fatalf("cut %d: batch parse errored on a truncated tail: %v", cut, err)
		}
		if consumed > cut {
			t.Fatalf("cut %d: consumed %d > %d", cut, consumed, cut)
		}
		// Whatever parsed must re-serialize to the consumed prefix.
		if got := Serialize(pkts); !bytes.Equal(got, raw[:consumed]) {
			t.Fatalf("cut %d: partial round trip diverged", cut)
		}
	}
}

// TestStreamDialectSkipsToPSB: bytes before the first PSB are skipped
// wholesale in the stream dialect, even if they are garbage.
func TestStreamDialectSkipsToPSB(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tail := genStream(r, 20)
	raw := append([]byte{0xFF, 0x03, 0x02, 0x41, 0x99}, tail...)
	pkts, _, err := parse(raw, 0, true)
	if err != nil {
		t.Fatalf("stream parse errored on pre-sync garbage: %v", err)
	}
	if len(pkts) == 0 || pkts[0].Kind != PkPSB {
		t.Fatalf("stream parse did not start at the PSB (first packet %v)", pkts[0].Kind)
	}
	if pkts[0].Off != 5 {
		t.Fatalf("first PSB at offset %d, want 5", pkts[0].Off)
	}
}

// TestStreamDialectMalformedPSBTail: a trailing partial PSB that cannot
// complete is malformed in the stream dialect but a clean stop in the
// batch dialect — matching the two production decoders' asymmetry.
func TestStreamDialectMalformedPSBTail(t *testing.T) {
	var raw []byte
	for j := 0; j < psbRepeat; j++ {
		raw = append(raw, 0x02, extPSB)
	}
	raw = append(raw, 0x02, extPSB, 0x02, 0x41) // partial PSB, provably broken

	if _, _, err := parse(raw, 0, true); err == nil {
		t.Fatal("stream dialect accepted a provably broken partial PSB")
	}
	if _, _, err := parse(raw, 0, false); err != nil {
		t.Fatalf("batch dialect rejected a truncated tail: %v", err)
	}

	// A viable partial PSB is a clean hold in both dialects.
	viable := raw[:len(raw)-2]
	if _, _, err := parse(viable, 0, true); err != nil {
		t.Fatalf("stream dialect rejected a viable partial PSB: %v", err)
	}
}

// TestExtractRecordsOverflowSemantics: records between an overflow and
// the next PSB are suppressed; the first record after resync is flagged.
func TestExtractRecordsOverflowSemantics(t *testing.T) {
	mkTIP := func(ip uint64) Packet { return Packet{Kind: PkTIP, IPB: 3, IP: ip} }
	pkts := []Packet{
		{Kind: PkPSB},
		mkTIP(0x100),
		{Kind: PkTNT, TNTBits: 0b101, TNTCount: 3},
		mkTIP(0x200),
		{Kind: PkOVF},
		mkTIP(0x300), // suppressed
		{Kind: PkPSB},
		mkTIP(0x400), // resync-flagged
		mkTIP(0x500),
	}
	recs := extractRecords(pkts)
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	if recs[0].IP != 0x100 || recs[0].SigLen != 0 {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].IP != 0x200 || recs[1].SigLen != 3 {
		t.Fatalf("record 1 = %+v", recs[1])
	}
	wantSig := sigAppend(sigAppend(sigAppend(tntSigEmpty, true), false), true)
	if recs[1].Sig != wantSig {
		t.Fatalf("record 1 sig %#x, want %#x", recs[1].Sig, wantSig)
	}
	if !recs[2].Resync || recs[2].IP != 0x400 {
		t.Fatalf("record 2 = %+v, want resync-flagged 0x400", recs[2])
	}
	if recs[3].Resync {
		t.Fatalf("record 3 still resync-flagged")
	}
}

// TestLongTNTRunCollapses: a run longer than the cap yields the wildcard
// signature.
func TestLongTNTRunCollapses(t *testing.T) {
	var pkts []Packet
	pkts = append(pkts, Packet{Kind: PkPSB})
	for i := 0; i < 4; i++ { // 4×5 = 20 bits > 16 cap
		pkts = append(pkts, Packet{Kind: PkTNT, TNTBits: 0b10101, TNTCount: 5})
	}
	pkts = append(pkts, Packet{Kind: PkTIP, IPB: 3, IP: 0x42})
	recs := extractRecords(pkts)
	if len(recs) != 1 || recs[0].Sig != tntSigLongRun || recs[0].SigLen != 20 {
		t.Fatalf("long run record = %+v", recs)
	}
}
