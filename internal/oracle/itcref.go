package oracle

import (
	"sort"

	"flowguard/internal/cfg"
)

// edge is an (IT-BB, target) pair.
type edge struct{ src, dst uint64 }

// Ref is the naive reference ITC-CFG: the same graph the production
// itc.FromCFG derives, rebuilt here with maps, per-query scans, and a
// sequential breadth-first search. Training labels (credit counts and
// TNT signature sets) live in plain maps, and path-sensitive triples are
// stored as exact 3-tuples rather than hashes.
type Ref struct {
	nodes  map[uint64]bool
	edges  map[edge]bool
	counts map[edge]uint32
	sigs   map[edge]map[uint64]bool
	paths  map[[3]uint64]bool

	// gen counts label rebuilds; the oracle's approval store keys its
	// validity on it, mirroring the production generation counter.
	gen uint64
}

// NewRef derives the reference ITC-CFG from the static O-CFG: the nodes
// are the indirectly targetable basic blocks, and each node's successors
// are every indirect-edge target reachable from it through direct edges
// only.
func NewRef(g *cfg.Graph) *Ref {
	r := &Ref{
		nodes:  make(map[uint64]bool),
		edges:  make(map[edge]bool),
		counts: make(map[edge]uint32),
		sigs:   make(map[edge]map[uint64]bool),
		paths:  make(map[[3]uint64]bool),
	}
	for _, b := range g.Blocks {
		for _, t := range b.IndTargets {
			r.nodes[t] = true
		}
	}
	// Blocks keyed by their start address; the reachability walk only
	// ever continues from exact block entries.
	starts := make(map[uint64]*cfg.Block, len(g.Blocks))
	for _, b := range g.Blocks {
		starts[b.Start] = b
	}
	for n := range r.nodes {
		visited := make(map[uint64]bool)
		queue := []uint64{n}
		for len(queue) > 0 {
			addr := queue[0]
			queue = queue[1:]
			if visited[addr] {
				continue
			}
			visited[addr] = true
			blk := starts[addr]
			if blk == nil {
				continue
			}
			switch blk.Kind {
			case cfg.TermIndCall, cfg.TermIndJmp, cfg.TermRet:
				for _, t := range blk.IndTargets {
					r.edges[edge{n, t}] = true
				}
			case cfg.TermFall, cfg.TermJmp, cfg.TermCall, cfg.TermSyscall:
				queue = append(queue, blk.Next)
			case cfg.TermCond:
				queue = append(queue, blk.Taken, blk.Fall)
			}
		}
	}
	return r
}

// HasNode reports whether addr is an indirectly targetable block entry.
func (r *Ref) HasNode(addr uint64) bool { return r.nodes[addr] }

// NumNodes returns the node count (cross-check against the production
// graph).
func (r *Ref) NumNodes() int { return len(r.nodes) }

// EdgeCount returns the total number of reference edges.
func (r *Ref) EdgeCount() int { return len(r.edges) }

// Edges lists every (src, dst) pair, sorted, for cross-checking against
// the production graph.
func (r *Ref) Edges() [][2]uint64 {
	out := make([][2]uint64, 0, len(r.edges))
	for e := range r.edges {
		out = append(out, [2]uint64{e.src, e.dst})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// ObserveTrace trains the reference labels from one raw benign trace:
// the batch parse of the stream yields the TIP records, and every
// consecutive pair that is a graph edge gains credit and its TNT
// signature; consecutive triples train the path store unconditionally
// (mirroring the production ObserveWindow contract).
func (r *Ref) ObserveTrace(raw []byte) error {
	pkts, _, err := parse(raw, 0, false)
	if err != nil {
		return err
	}
	r.observeRecords(extractRecords(pkts))
	return nil
}

func (r *Ref) observeRecords(recs []tipRec) {
	for i := 0; i+1 < len(recs); i++ {
		src, dst, sig := recs[i].IP, recs[i+1].IP, recs[i+1].Sig
		e := edge{src, dst}
		if r.edges[e] {
			r.counts[e]++
			set := r.sigs[e]
			if set == nil {
				set = make(map[uint64]bool)
				r.sigs[e] = set
			}
			set[sig] = true
		}
		if i+2 < len(recs) {
			r.paths[[3]uint64{src, dst, recs[i+2].IP}] = true
		}
	}
}

// Rebuild publishes the trained labels: in the reference there is
// nothing to snapshot, only the generation to advance.
func (r *Ref) Rebuild() { r.gen++ }

// Gen returns the label generation.
func (r *Ref) Gen() uint64 { return r.gen }

// Lookup classifies one observed transfer for external conformance
// checks: whether the edge is in the graph at all, its credit count, and
// whether the observed TNT signature was seen in training. Identical to
// the unexported probe the differential oracle uses internally.
func (r *Ref) Lookup(src, dst, sig uint64) (exists bool, count uint32, sigOK bool) {
	return r.lookup(src, dst, sig)
}

// Observe trains one edge with one TNT signature, exactly as a benign
// trace containing the consecutive pair would. It reports whether the
// edge exists in the reference graph.
func (r *Ref) Observe(src, dst, sig uint64) bool {
	e := edge{src, dst}
	if !r.edges[e] {
		return false
	}
	r.counts[e]++
	set := r.sigs[e]
	if set == nil {
		set = make(map[uint64]bool)
		r.sigs[e] = set
	}
	set[sig] = true
	return true
}

// ObservePath trains one consecutive-edge triple.
func (r *Ref) ObservePath(a, b, c uint64) {
	r.paths[[3]uint64{a, b, c}] = true
}

// PathObserved reports whether the triple was trained.
func (r *Ref) PathObserved(a, b, c uint64) bool { return r.pathTrained(a, b, c) }

// lookup classifies one observed transfer: whether the edge is in the
// graph at all, its credit count, and whether the observed TNT signature
// was seen in training (a stored long-run wildcard matches anything).
func (r *Ref) lookup(src, dst, sig uint64) (exists bool, count uint32, sigOK bool) {
	e := edge{src, dst}
	if !r.edges[e] {
		return false, 0, false
	}
	count = r.counts[e]
	if count > 0 {
		set := r.sigs[e]
		sigOK = set[sig] || set[tntSigLongRun]
	}
	return true, count, sigOK
}

// pathTrained reports whether the consecutive-edge triple was observed
// in training.
func (r *Ref) pathTrained(a, b, c uint64) bool {
	return r.paths[[3]uint64{a, b, c}]
}
