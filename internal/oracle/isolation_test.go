package oracle

// The oracle's value as a differential reference depends on sharing no
// decode or check code with the production pipeline. This test enforces
// the boundary mechanically: the package may import only the ground
// truth both pipelines are defined against (isa, module, cfg) plus the
// standard library.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// forbiddenImports are the production packages whose decode/check logic
// the oracle re-derives rather than reuses.
var forbiddenImports = []string{
	"flowguard/internal/guard",
	"flowguard/internal/itc",
	"flowguard/internal/trace",
	"flowguard/internal/trace/ipt",
}

// allowedProjectImports is the closed list of in-module packages the
// oracle (non-test files) may depend on.
var allowedProjectImports = map[string]bool{
	"flowguard/internal/cfg":    true,
	"flowguard/internal/isa":    true,
	"flowguard/internal/module": true,
}

func TestOracleImportIsolation(t *testing.T) {
	ents, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for _, bad := range forbiddenImports {
				if path == bad || strings.HasPrefix(path, bad+"/") {
					t.Errorf("%s imports %s: the oracle must not share code with the production pipeline", name, path)
				}
			}
			if strings.HasPrefix(path, "flowguard/") && !allowedProjectImports[path] {
				t.Errorf("%s imports %s: not on the oracle's allowed project-import list", name, path)
			}
		}
	}
}
