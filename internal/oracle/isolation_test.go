package oracle

// The oracle's value as a differential reference depends on sharing no
// decode or check code with the production pipeline. The boundary is
// enforced by the oracleisolation fgvet analyzer (which gates `make
// vet` and CI); this test is a thin wrapper that runs the same analyzer
// over this directory, so `go test ./internal/oracle` alone still
// catches a violation — one rule, two entry points.

import (
	"testing"

	"flowguard/internal/analysis"
	"flowguard/internal/analysis/oracleisolation"
)

func TestOracleImportIsolation(t *testing.T) {
	pkg, err := analysis.ParseDir(".", "flowguard/internal/oracle")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(pkg, []*analysis.Analyzer{oracleisolation.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Suppressed {
			// An //fg:ignore here would defeat the isolation guarantee;
			// surface it as a failure, not a documented exception.
			t.Errorf("suppressed isolation finding (suppressions are not honored for this boundary): %v", f)
			continue
		}
		t.Errorf("%v", f)
	}
}
