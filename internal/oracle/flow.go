package oracle

import (
	"errors"
	"fmt"

	"flowguard/internal/cfg"
	"flowguard/internal/isa"
)

// flowEdge is one reconstructed change-of-flow event.
type flowEdge struct {
	class    isa.CoFIClass
	src, dst uint64
	taken    bool
}

var errExhausted = errors.New("oracle: trace data exhausted")
var errDesync = errors.New("oracle: decoder desynchronized")
var errNoSync = errors.New("oracle: no sync point in trace")

// pktCursor serves TNT bits and IP packets in stream order, skipping
// synchronization-only packets — the reference twin of the production
// token cursor.
type pktCursor struct {
	pkts []Packet
	i    int
	bit  int
}

func (c *pktCursor) skipMeta() {
	for c.i < len(c.pkts) {
		switch p := c.pkts[c.i]; p.Kind {
		case PkPAD, PkPIP, PkPSBEND, PkPSB, PkMODE:
			c.i++
		case PkFUP:
			if p.Ctx {
				c.i++
				continue
			}
			return
		case PkTNT:
			if c.bit >= p.TNTCount {
				c.i++
				c.bit = 0
				continue
			}
			return
		default:
			return
		}
	}
}

func (c *pktCursor) nextTNT() (bool, error) {
	c.skipMeta()
	if c.i >= len(c.pkts) {
		return false, errExhausted
	}
	p := c.pkts[c.i]
	if p.Kind != PkTNT {
		return false, errDesync
	}
	taken := p.TNTBits&(1<<c.bit) != 0
	c.bit++
	return taken, nil
}

func (c *pktCursor) nextIP(want PacketKind) (Packet, error) {
	c.skipMeta()
	if c.i >= len(c.pkts) {
		return Packet{}, errExhausted
	}
	p := c.pkts[c.i]
	if p.Kind != want {
		return Packet{}, errDesync
	}
	c.i++
	c.bit = 0
	return p, nil
}

// nextAsync consumes a pending asynchronous-transfer pair — a non-context
// FUP whose IP equals the current walk position followed directly by a
// TIP — and returns the TIP target. The kernel performs this jump (signal
// delivery or sigreturn), so the walker relocates without recording a
// flow edge; on mismatch the cursor is restored.
func (c *pktCursor) nextAsync(ip uint64) (uint64, bool) {
	si, sbit := c.i, c.bit
	c.skipMeta()
	if c.i >= len(c.pkts) {
		c.i, c.bit = si, sbit
		return 0, false
	}
	p := c.pkts[c.i]
	if p.Kind != PkFUP || p.Ctx || p.IP != ip {
		c.i, c.bit = si, sbit
		return 0, false
	}
	c.i++
	c.bit = 0
	c.skipMeta()
	if c.i >= len(c.pkts) || c.pkts[c.i].Kind != PkTIP {
		c.i, c.bit = si, sbit
		return 0, false
	}
	t := c.pkts[c.i].IP
	c.i++
	c.bit = 0
	return t, true
}

// seekPSB advances to the next PSB's context FUP and returns its IP.
func (c *pktCursor) seekPSB() (uint64, bool) {
	for ; c.i < len(c.pkts); c.i++ {
		if c.pkts[c.i].Kind != PkPSB {
			continue
		}
		for j := c.i + 1; j < len(c.pkts); j++ {
			switch c.pkts[j].Kind {
			case PkFUP:
				if c.pkts[j].Ctx {
					c.i = j + 1
					c.bit = 0
					return c.pkts[j].IP, true
				}
			case PkPSBEND:
				j = len(c.pkts)
			}
		}
	}
	return 0, false
}

// walkFlow reconstructs the complete instruction flow from parsed
// packets by walking the binaries: fetch, decode, consume a TNT bit at
// each conditional and a TIP at each indirect transfer. resyncPts marks
// flow indices where reconstruction resumed at a later PSB (stateful
// consumers reset across the seam).
func (o *Oracle) walkFlow(pkts []Packet) (flow []flowEdge, resyncPts []int, err error) {
	cur := &pktCursor{pkts: pkts}
	ip, ok := cur.seekPSB()
	if !ok {
		return nil, nil, errNoSync
	}
	resync := func() bool {
		nip, ok := cur.seekPSB()
		if !ok {
			return false
		}
		resyncPts = append(resyncPts, len(flow))
		ip = nip
		return true
	}
	for {
		// A pending FUP(ip)+TIP pair is a kernel-performed asynchronous
		// transfer: relocate without fetching an instruction or recording
		// a flow edge (async edges are not in the O-CFG; the shadow stack
		// carries across — sigreturn brings the flow back).
		if t, aok := cur.nextAsync(ip); aok {
			ip = t
			continue
		}
		raw, ferr := o.AS.FetchInstr(ip)
		if ferr != nil {
			return flow, resyncPts, fmt.Errorf("oracle: flow fetch at %#x: %w", ip, ferr)
		}
		in, derr := isa.Decode(raw)
		if derr != nil {
			return flow, resyncPts, fmt.Errorf("oracle: flow decode at %#x: %w", ip, derr)
		}
		next := ip + isa.InstrSize
		switch in.Op {
		case isa.JMP, isa.CALL:
			t := in.BranchTarget(ip)
			flow = append(flow, flowEdge{isa.CoFIDirect, ip, t, true})
			ip = t
		case isa.JCC:
			taken, terr := cur.nextTNT()
			if errors.Is(terr, errExhausted) {
				return flow, resyncPts, nil
			}
			if terr != nil {
				if resync() {
					continue
				}
				return flow, resyncPts, nil
			}
			t := next
			if taken {
				t = in.BranchTarget(ip)
			}
			flow = append(flow, flowEdge{isa.CoFICond, ip, t, taken})
			ip = t
		case isa.JMPR, isa.CALLR, isa.RET:
			class := isa.CoFIIndirect
			if in.Op == isa.RET {
				class = isa.CoFIRet
			}
			p, perr := cur.nextIP(PkTIP)
			if errors.Is(perr, errExhausted) {
				return flow, resyncPts, nil
			}
			if perr != nil {
				if resync() {
					continue
				}
				return flow, resyncPts, nil
			}
			flow = append(flow, flowEdge{class, ip, p.IP, true})
			ip = p.IP
		case isa.SYSCALL:
			if _, perr := cur.nextIP(PkFUP); perr != nil {
				if errors.Is(perr, errExhausted) {
					return flow, resyncPts, nil
				}
				if resync() {
					continue
				}
				return flow, resyncPts, nil
			}
			if _, perr := cur.nextIP(PkTIPPGD); perr != nil {
				return flow, resyncPts, nil
			}
			pge, perr := cur.nextIP(PkTIPPGE)
			if perr != nil {
				return flow, resyncPts, nil
			}
			flow = append(flow, flowEdge{isa.CoFIFarTransfer, ip, pge.IP, true})
			ip = pge.IP
		case isa.HALT:
			return flow, resyncPts, nil
		default:
			ip = next
		}
	}
}

// ocfgContains is the linear-scan membership test against the static
// O-CFG: find the block containing src, then validate the edge against
// the block's terminator shape.
func (o *Oracle) ocfgContains(src, dst uint64, class isa.CoFIClass) bool {
	var blk *cfg.Block
	for _, b := range o.OCFG.Blocks {
		if b.Start <= src && src < b.End {
			blk = b
			break
		}
	}
	if blk == nil {
		return false
	}
	switch class {
	case isa.CoFIDirect, isa.CoFIFarTransfer:
		switch blk.Kind {
		case cfg.TermJmp, cfg.TermCall, cfg.TermSyscall:
			return blk.TermAddr == src && blk.Next == dst
		}
		return false
	case isa.CoFICond:
		return blk.Kind == cfg.TermCond && blk.TermAddr == src &&
			(blk.Taken == dst || blk.Fall == dst)
	case isa.CoFIIndirect, isa.CoFIRet:
		if blk.TermAddr != src || (blk.Kind != cfg.TermIndCall && blk.Kind != cfg.TermIndJmp && blk.Kind != cfg.TermRet) {
			return false
		}
		for _, t := range blk.IndTargets {
			if t == dst {
				return true
			}
		}
		return false
	}
	return false
}

// opAt decodes the opcode at addr, treating any fetch or decode failure
// as a NOP (the flow walk reports those separately).
func (o *Oracle) opAt(addr uint64) isa.Op {
	raw, err := o.AS.FetchInstr(addr)
	if err != nil {
		return isa.NOP
	}
	in, err := isa.Decode(raw)
	if err != nil {
		return isa.NOP
	}
	return in.Op
}

// slowPath is the reference full check: reconstruct the complete flow of
// the window region, validate every edge against the O-CFG, replay the
// shadow stack over calls and returns, and require far transfers to
// resume at the fall-through. A clean verdict approves the window's
// low-credit edges for later fast checks.
func (o *Oracle) slowPath(res *Result, recs []tipRec, region []byte) {
	res.UsedSlowPath = true
	if len(region) == 0 {
		return
	}
	pkts, _, perr := parse(region, 0, false)
	if perr == nil {
		var flow []flowEdge
		var resyncPts []int
		flow, resyncPts, perr = o.walkFlow(pkts)
		if perr == nil {
			var shadow []uint64
			nextResync := 0
			for fi, e := range flow {
				for nextResync < len(resyncPts) && resyncPts[nextResync] <= fi {
					shadow = shadow[:0]
					nextResync++
				}
				if !o.ocfgContains(e.src, e.dst, e.class) {
					res.Verdict = VerdictViolation
					res.Reason = fmt.Sprintf("slow path: O-CFG mismatch: %#x -> %#x", e.src, e.dst)
					return
				}
				switch o.opAt(e.src) {
				case isa.CALL, isa.CALLR:
					shadow = append(shadow, e.src+isa.InstrSize)
				case isa.RET:
					if len(shadow) == 0 {
						continue
					}
					want := shadow[len(shadow)-1]
					shadow = shadow[:len(shadow)-1]
					if e.dst != want {
						res.Verdict = VerdictViolation
						res.Reason = fmt.Sprintf("slow path: shadow stack: %#x != %#x", e.dst, want)
						return
					}
				case isa.SYSCALL:
					if e.dst != e.src+isa.InstrSize {
						res.Verdict = VerdictViolation
						res.Reason = fmt.Sprintf("slow path: far transfer resumed at %#x", e.dst)
						return
					}
				}
			}
		}
	}
	if perr != nil {
		res.Verdict = VerdictViolation
		res.Reason = fmt.Sprintf("slow path: flow reconstruction failed: %v", perr)
		return
	}
	// Clean: remember the verdict for the window's low-credit edges.
	for i := 0; i+1 < len(recs); i++ {
		if recs[i].Async || recs[i+1].Resync || recs[i+1].Async {
			continue
		}
		src, dst, sig := recs[i].IP, recs[i+1].IP, recs[i+1].Sig
		exists, count, sigOK := o.Ref.lookup(src, dst, sig)
		if exists && !(count > 0 && sigOK) {
			o.apprEdges[edgeApproval{src, dst, sig}] = true
		}
		if o.Policy.PathSensitive && i+2 < len(recs) && !recs[i+2].Resync && !recs[i+2].Async {
			o.apprPaths[[3]uint64{src, dst, recs[i+2].IP}] = true
		}
	}
}
