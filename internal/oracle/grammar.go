// Package oracle is the deliberately naive reference implementation of
// the hybrid CFI checker, used only for differential testing. Where the
// production pipeline (internal/guard + ipt.WindowDecoder) is
// incremental, cached, striped, and allocation-free, the oracle is
// straight-line and allocation-happy: every check re-parses the whole
// byte stream from scratch, every graph lookup is a linear scan or a map
// probe, and every intermediate result is a freshly built slice. It
// shares no decode or check code with the optimized paths — the packet
// grammar, the ITC edge set, the instruction-flow walk, the shadow
// stack, and the window policy are all re-derived here from the written
// specification (the ipt package doc comment and the paper's §5), so a
// disagreement between the two pipelines is evidence of a bug in one of
// them rather than a shared misunderstanding.
//
// The only production packages the oracle may import are the ground
// truth both pipelines are defined against: the instruction set
// (internal/isa), the address space (internal/module), and the static
// O-CFG (internal/cfg). An import-graph test enforces the boundary.
package oracle

import "fmt"

// Packet grammar constants, re-declared from the written format
// specification (matching numbers are the spec, not shared code).
const (
	hdrTIP    = 0x0D
	hdrTIPPGE = 0x11
	hdrTIPPGD = 0x01
	hdrFUP    = 0x1D

	extPSB    = 0x82
	extPSBEND = 0x23
	extPIP    = 0x43
	extOVF    = 0xF3
	extMODE   = 0x99

	psbRepeat = 8
	psbSize   = 2 * psbRepeat

	maxTNTBits = 6
)

// TNT-signature constants (FNV-1a over branch outcomes, long runs
// collapsed to a wildcard), re-declared from the specification.
const (
	tntSigEmpty   uint64 = 0xcbf29ce484222325
	tntSigLongRun uint64 = 0x9e3779b97f4a7c15
	tntRunCap            = 16
)

// sigAppend folds one branch outcome into a TNT signature.
func sigAppend(sig uint64, taken bool) uint64 {
	b := uint64(1)
	if taken {
		b = 2
	}
	return (sig ^ b) * 0x100000001b3
}

// PacketKind discriminates parsed packets.
type PacketKind uint8

// Packet kinds.
const (
	PkPAD PacketKind = iota
	PkTNT
	PkTIP
	PkTIPPGE
	PkTIPPGD
	PkFUP
	PkPSB
	PkPSBEND
	PkPIP
	PkOVF
	PkMODE
)

// Packet is one fully parsed packet, carrying enough to re-serialize it
// byte-identically.
type Packet struct {
	Kind PacketKind
	// Off is the stream offset of the header byte.
	Off int
	// IPB is the TIP-family ipbytes field (payload width selector).
	IPB uint8
	// IP is the reconstructed absolute target of a TIP-family packet.
	IP uint64
	// TNTBits / TNTCount carry a short TNT payload (bit k = k-th oldest
	// outcome).
	TNTBits  uint8
	TNTCount int
	// CR3 is a PIP payload.
	CR3 uint64
	// Ctx marks a FUP between PSB and PSBEND (context, not a branch).
	Ctx bool
}

// isTIPFamily reports whether the packet carries an IP payload.
func (p Packet) isTIPFamily() bool {
	switch p.Kind {
	case PkTIP, PkTIPPGE, PkTIPPGD, PkFUP:
		return true
	}
	return false
}

// findPSB scans for the first complete PSB at or after from, one byte at
// a time (the textbook version of ipt.Sync).
func findPSB(buf []byte, from int) int {
	for i := from; i+psbSize <= len(buf); i++ {
		if psbAt(buf, i) {
			return i
		}
	}
	return -1
}

// psbAt reports a complete PSB at offset i.
func psbAt(buf []byte, i int) bool {
	if i+psbSize > len(buf) {
		return false
	}
	for j := 0; j < psbRepeat; j++ {
		if buf[i+2*j] != 0x02 || buf[i+2*j+1] != extPSB {
			return false
		}
	}
	return true
}

// psbPrefix reports whether buf (shorter than a full PSB) could be the
// beginning of one.
func psbPrefix(buf []byte) bool {
	for j, b := range buf {
		want := byte(0x02)
		if j%2 == 1 {
			want = extPSB
		}
		if b != want {
			return false
		}
	}
	return true
}

// findAllPSBs returns every sync point, stepping over each found PSB
// (the textbook version of ipt.SyncPoints).
func findAllPSBs(buf []byte) []int {
	var pts []int
	i := 0
	for i+psbSize <= len(buf) {
		if psbAt(buf, i) {
			pts = append(pts, i)
			i += psbSize
			continue
		}
		i++
	}
	return pts
}

// tntLen derives the payload bit count of a short TNT byte: the stop bit
// is the highest set bit, the payload sits below it above bit 0.
func tntLen(b byte) int {
	for k := 7; k >= 1; k-- {
		if b&(1<<k) != 0 {
			return k - 1
		}
	}
	return -1
}

// parse decodes buf into packets. base offsets the reported packet
// positions. Two dialects exist, matching the two production decoders:
//
//   - stream = true mirrors the windowed decoder: bytes before the first
//     complete PSB are skipped wholesale (a wrapped buffer may start
//     mid-packet), and a trailing partial PSB that provably cannot
//     complete is malformed.
//   - stream = false mirrors the batch decoder: parsing starts at offset
//     0, and any truncated tail — even a provably bad partial PSB — is a
//     clean stop.
//
// Truncated tails never error in either dialect; the returned consumed
// count marks where parsing stopped.
func parse(buf []byte, base int, stream bool) (pkts []Packet, consumed int, err error) {
	i := 0
	if stream {
		p := findPSB(buf, 0)
		if p < 0 {
			return nil, 0, nil
		}
		i = p
	}
	lastIP := uint64(0)
	inPSB := false
	for i < len(buf) {
		b := buf[i]
		switch {
		case b == 0x00:
			pkts = append(pkts, Packet{Kind: PkPAD, Off: base + i})
			i++
		case b == 0x02:
			if i+1 >= len(buf) {
				return pkts, i, nil
			}
			switch buf[i+1] {
			case extPSB:
				if i+psbSize > len(buf) {
					if stream && !psbPrefix(buf[i:]) {
						return pkts, i, fmt.Errorf("oracle: malformed PSB at %d", base+i)
					}
					return pkts, i, nil
				}
				if !psbAt(buf, i) {
					return pkts, i, fmt.Errorf("oracle: malformed PSB at %d", base+i)
				}
				pkts = append(pkts, Packet{Kind: PkPSB, Off: base + i})
				lastIP = 0
				inPSB = true
				i += psbSize
			case extPSBEND:
				pkts = append(pkts, Packet{Kind: PkPSBEND, Off: base + i})
				inPSB = false
				i += 2
			case extPIP:
				if i+10 > len(buf) {
					return pkts, i, nil
				}
				var cr3 uint64
				for j := 0; j < 8; j++ {
					cr3 |= uint64(buf[i+2+j]) << (8 * j)
				}
				pkts = append(pkts, Packet{Kind: PkPIP, CR3: cr3, Off: base + i})
				i += 10
			case extOVF:
				pkts = append(pkts, Packet{Kind: PkOVF, Off: base + i})
				i += 2
			case extMODE:
				if i+3 > len(buf) {
					return pkts, i, nil
				}
				pkts = append(pkts, Packet{Kind: PkMODE, TNTBits: buf[i+2], Off: base + i})
				i += 3
			default:
				return pkts, i, fmt.Errorf("oracle: unknown extended opcode %#02x at %d", buf[i+1], base+i)
			}
		case b&1 == 0:
			n := tntLen(b)
			if n < 1 || n > maxTNTBits {
				return pkts, i, fmt.Errorf("oracle: malformed TNT byte %#02x at %d", b, base+i)
			}
			pkts = append(pkts, Packet{
				Kind:     PkTNT,
				TNTBits:  (b >> 1) & (1<<n - 1),
				TNTCount: n,
				Off:      base + i,
			})
			i++
		default:
			op := b & 0x1f
			var kind PacketKind
			switch op {
			case hdrTIP:
				kind = PkTIP
			case hdrTIPPGE:
				kind = PkTIPPGE
			case hdrTIPPGD:
				kind = PkTIPPGD
			case hdrFUP:
				kind = PkFUP
			default:
				return pkts, i, fmt.Errorf("oracle: unknown packet header %#02x at %d", b, base+i)
			}
			ipb := b >> 5
			n := payloadLen(ipb)
			if i+1+n > len(buf) {
				return pkts, i, nil
			}
			pk := Packet{Kind: kind, Off: base + i, IPB: ipb}
			switch ipb {
			case 0:
				pk.IP = lastIP
			case 1:
				lastIP = lastIP&^0xffff | uint64(buf[i+1]) | uint64(buf[i+2])<<8
				pk.IP = lastIP
			case 2:
				var v uint64
				for j := 0; j < 4; j++ {
					v |= uint64(buf[i+1+j]) << (8 * j)
				}
				lastIP = lastIP&^0xffffffff | v
				pk.IP = lastIP
			default:
				var v uint64
				for j := 0; j < 8; j++ {
					v |= uint64(buf[i+1+j]) << (8 * j)
				}
				lastIP = v
				pk.IP = lastIP
			}
			if kind == PkFUP && inPSB {
				pk.Ctx = true
			}
			pkts = append(pkts, pk)
			i += 1 + n
		}
	}
	return pkts, i, nil
}

// payloadLen maps an ipbytes field to its payload width.
func payloadLen(ipb uint8) int {
	switch ipb {
	case 0:
		return 0
	case 1:
		return 2
	case 2:
		return 4
	default:
		return 8
	}
}

// ParsePackets is the batch dialect of the naive parser, exported for
// the property layer (round-trip and mutation testing). It reports how
// many bytes were consumed; a truncated tail stops cleanly before err.
func ParsePackets(buf []byte) ([]Packet, int, error) {
	return parse(buf, 0, false)
}

// Serialize re-encodes packets byte-identically to the stream they were
// parsed from (the round-trip property), and is also the mutation
// vehicle: callers may widen IPB fields and rewrite IPs before
// re-encoding.
func Serialize(pkts []Packet) []byte {
	var out []byte
	for _, p := range pkts {
		switch p.Kind {
		case PkPAD:
			out = append(out, 0x00)
		case PkTNT:
			out = append(out, byte(1)<<(p.TNTCount+1)|(p.TNTBits&(1<<p.TNTCount-1))<<1)
		case PkTIP, PkTIPPGE, PkTIPPGD, PkFUP:
			var op byte
			switch p.Kind {
			case PkTIP:
				op = hdrTIP
			case PkTIPPGE:
				op = hdrTIPPGE
			case PkTIPPGD:
				op = hdrTIPPGD
			default:
				op = hdrFUP
			}
			out = append(out, op|p.IPB<<5)
			for j := 0; j < payloadLen(p.IPB); j++ {
				out = append(out, byte(p.IP>>(8*j)))
			}
		case PkPSB:
			for j := 0; j < psbRepeat; j++ {
				out = append(out, 0x02, extPSB)
			}
		case PkPSBEND:
			out = append(out, 0x02, extPSBEND)
		case PkPIP:
			out = append(out, 0x02, extPIP)
			for j := 0; j < 8; j++ {
				out = append(out, byte(p.CR3>>(8*j)))
			}
		case PkOVF:
			out = append(out, 0x02, extOVF)
		case PkMODE:
			out = append(out, 0x02, extMODE, p.TNTBits)
		}
	}
	return out
}

// tipRec is the oracle's TIP window record: the branch target annotated
// with the TNT signature accumulated since the previous record.
type tipRec struct {
	IP     uint64
	Sig    uint64
	SigLen int
	Off    int
	Resync bool
	// Async marks a TIP directly following a non-context FUP: the
	// kernel's asynchronous-transfer shape (signal delivery, sigreturn).
	// Like Resync, the record is not control-flow-adjacent to its
	// predecessor and edge checks admit the pair unchecked.
	Async bool
}

// extractRecords folds TNT runs into signatures and emits one record per
// TIP packet, suppressing everything between an overflow and the next
// sync point (whose first record is flagged Resync).
func extractRecords(pkts []Packet) []tipRec {
	sig, n := tntSigEmpty, 0
	skipping, resync := false, false
	prevFUP := false
	var out []tipRec
	for _, p := range pkts {
		// Async adjacency: a TIP directly following a non-context FUP.
		// PAD preserves the flag (the production scanners skip PAD
		// without touching their adjacency state); every other packet
		// clears it.
		async := prevFUP
		if p.Kind != PkPAD {
			prevFUP = p.Kind == PkFUP && !p.Ctx
		}
		switch p.Kind {
		case PkTNT:
			if skipping {
				continue
			}
			for k := 0; k < p.TNTCount; k++ {
				sig = sigAppend(sig, p.TNTBits&(1<<k) != 0)
				n++
			}
		case PkTIP:
			if skipping {
				continue
			}
			s := sig
			if n > tntRunCap {
				s = tntSigLongRun
			}
			out = append(out, tipRec{IP: p.IP, Sig: s, SigLen: n, Off: p.Off, Resync: resync, Async: async})
			sig, n = tntSigEmpty, 0
			resync = false
		case PkPSB:
			if skipping {
				skipping = false
				resync = true
			}
		case PkOVF:
			sig, n = tntSigEmpty, 0
			skipping = true
		}
	}
	return out
}

// recsFrom returns the records at or after stream offset lo (linear
// scan; the production path binary-searches).
func recsFrom(recs []tipRec, lo int) []tipRec {
	for i, r := range recs {
		if r.Off >= lo {
			return recs[i:]
		}
	}
	return nil
}

// syncOffsetsFrom lists the PSB offsets at or after lo.
func syncOffsetsFrom(pkts []Packet, lo int) []int {
	var pts []int
	for _, p := range pkts {
		if p.Kind == PkPSB && p.Off >= lo {
			pts = append(pts, p.Off)
		}
	}
	return pts
}

// ovfCount counts overflow packets.
func ovfCount(pkts []Packet) int {
	n := 0
	for _, p := range pkts {
		if p.Kind == PkOVF {
			n++
		}
	}
	return n
}

// lastOVFOff returns the offset of the last overflow packet, -1 if none.
func lastOVFOff(pkts []Packet) int {
	off := -1
	for _, p := range pkts {
		if p.Kind == PkOVF {
			off = p.Off
		}
	}
	return off
}

// syncedEnd reports whether a stream-dialect parse ends synchronized: a
// PSB was seen and no overflow follows the last one.
func syncedEnd(pkts []Packet) bool {
	lastPSB, lastOVF := -1, -1
	for i, p := range pkts {
		switch p.Kind {
		case PkPSB:
			lastPSB = i
		case PkOVF:
			lastOVF = i
		}
	}
	return lastPSB >= 0 && lastOVF < lastPSB
}
