// Package oracleisolation statically enforces the differential
// oracle's import boundary: internal/oracle re-derives the packet
// grammar, the ITC-CFG reference and the shadow stack from the paper's
// definitions, and its value as a reference (DESIGN.md §7) evaporates
// the moment it shares decode or check code with the optimized
// pipeline. The analyzer promotes the former runtime import-graph test
// to a compile gate: the oracle package may import only the ground
// truth both pipelines are defined against (isa, module, cfg) plus the
// standard library.
package oracleisolation

import (
	"strconv"
	"strings"

	"flowguard/internal/analysis"
)

// ForbiddenImports are the production packages whose decode/check
// logic the oracle re-derives rather than reuses. A prefix match also
// bans their subpackages (trace covers trace/ipt, trace/lbr, trace/bts).
var ForbiddenImports = []string{
	"flowguard/internal/guard",
	"flowguard/internal/itc",
	"flowguard/internal/trace",
}

// AllowedProjectImports is the closed list of in-module packages the
// oracle may depend on: the shared ground truth, nothing derived.
var AllowedProjectImports = map[string]bool{
	"flowguard/internal/cfg":    true,
	"flowguard/internal/isa":    true,
	"flowguard/internal/module": true,
}

// modulePrefix identifies in-module import paths.
const modulePrefix = "flowguard/"

// Analyzer is the oracleisolation analyzer. It is syntax-only: import
// declarations are all it needs, so the runtime test wrapper in
// internal/oracle can run it without a type-checking toolchain walk.
var Analyzer = &analysis.Analyzer{
	Name: "oracleisolation",
	Doc: "forbid internal/oracle from importing the production decode/check packages " +
		"(guard, itc, trace/...); only cfg, isa, module and std are allowed",
	Run: run,
}

// applies reports whether pkgPath is an oracle package.
func applies(pkgPath string) bool {
	return pkgPath == "internal/oracle" ||
		strings.HasSuffix(pkgPath, "/internal/oracle") ||
		strings.Contains(pkgPath, "/internal/oracle/")
}

func run(pass *analysis.Pass) error {
	if !applies(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue // the parser would have rejected it
			}
			banned := false
			for _, bad := range ForbiddenImports {
				if path == bad || strings.HasPrefix(path, bad+"/") {
					pass.Reportf(imp.Pos(),
						"oracle imports %s: the oracle must not share code with the production pipeline", path)
					banned = true
					break
				}
			}
			if !banned && strings.HasPrefix(path, modulePrefix) && !AllowedProjectImports[path] {
				pass.Reportf(imp.Pos(),
					"oracle imports %s: not on the oracle's allowed project-import list (cfg, isa, module)", path)
			}
		}
	}
	return nil
}
