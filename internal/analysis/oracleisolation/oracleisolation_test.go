package oracleisolation

import (
	"testing"

	"flowguard/internal/analysis"
	"flowguard/internal/analysis/analysistest"
)

func TestBadImports(t *testing.T) {
	analysistest.RunFixture(t, Analyzer, "testdata/bad", "flowguard/internal/oracle")
}

func TestGoodImports(t *testing.T) {
	analysistest.RunFixture(t, Analyzer, "testdata/good", "flowguard/internal/oracle")
}

// TestNonOraclePackagesIgnored pins the analyzer's scope: the same
// imports in any other package are none of its business.
func TestNonOraclePackagesIgnored(t *testing.T) {
	pkg, err := analysis.ParseDir("testdata/bad", "flowguard/internal/harness")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(pkg, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding outside internal/oracle: %s", f)
	}
}
