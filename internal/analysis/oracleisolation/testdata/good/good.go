// Package oracle is a fixture impersonating internal/oracle with only
// legal imports: the shared ground-truth packages and std.
package oracle

import (
	"sort"

	"flowguard/internal/cfg"
	"flowguard/internal/isa"
	"flowguard/internal/module"
)

func use() {
	sort.Ints(nil)
	_ = cfg.Graph{}
	_ = isa.Program{}
	_ = module.AddressSpace{}
}
