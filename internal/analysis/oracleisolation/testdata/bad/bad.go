// Package oracle is a fixture impersonating internal/oracle with
// every class of forbidden import: a production package, a production
// subpackage, and an in-module package missing from the allowed list.
package oracle

import (
	"fmt"

	"flowguard/internal/guard"     // want "must not share code with the production pipeline"
	"flowguard/internal/itc"       // want "must not share code with the production pipeline"
	"flowguard/internal/kernelsim" // want "not on the oracle's allowed project-import list"
	"flowguard/internal/module"
	"flowguard/internal/trace/ipt" // want "must not share code with the production pipeline"
)

func use() {
	fmt.Println(guard.VerdictClean, itc.PathKey(1, 2, 3), ipt.PSBSize, kernelsim.SysWrite, module.AddressSpace{})
}
