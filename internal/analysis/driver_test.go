package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixture materializes one file as a parseable package dir.
func writeFixture(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// flagReturns is a toy analyzer reporting every return statement.
var flagReturns = &Analyzer{
	Name: "flagreturns",
	Doc:  "test analyzer: flags every return statement",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if r, ok := n.(*ast.ReturnStmt); ok {
					p.Reportf(r.Pos(), "return statement")
				}
				return true
			})
		}
		return nil
	},
}

func runOn(t *testing.T, src string) []Finding {
	t.Helper()
	pkg, err := ParseDir(writeFixture(t, src), "example/fixture")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(pkg, []*Analyzer{flagReturns})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func TestSuppressionOnSameLine(t *testing.T) {
	fs := runOn(t, `package p
func f() int {
	return 1 //fg:ignore flagreturns documented reason
}
`)
	if len(fs) != 1 || !fs[0].Suppressed || fs[0].SuppressReason != "documented reason" {
		t.Fatalf("want one suppressed finding with its reason, got %v", fs)
	}
}

func TestSuppressionOnPrecedingLine(t *testing.T) {
	fs := runOn(t, `package p
func f() int {
	//fg:ignore flagreturns reason above the line
	return 1
}
`)
	if len(fs) != 1 || !fs[0].Suppressed {
		t.Fatalf("want one suppressed finding, got %v", fs)
	}
}

func TestSuppressionWrongAnalyzerDoesNotApply(t *testing.T) {
	fs := runOn(t, `package p
func f() int {
	return 1 //fg:ignore otheranalyzer reason
}
`)
	var unsuppressed, stale int
	for _, f := range fs {
		if f.Analyzer == "flagreturns" && !f.Suppressed {
			unsuppressed++
		}
		if f.Analyzer == "fgvet" && strings.Contains(f.Message, "stale") {
			stale++
		}
	}
	if unsuppressed != 1 || stale != 1 {
		t.Fatalf("want the finding unsuppressed and the mismatched directive reported stale, got %v", fs)
	}
}

func TestMalformedIgnoreReported(t *testing.T) {
	fs := runOn(t, `package p
//fg:ignore flagreturns
func f() {}
`)
	found := false
	for _, f := range fs {
		if f.Analyzer == "fgvet" && strings.Contains(f.Message, "malformed //fg:ignore") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a malformed-ignore finding, got %v", fs)
	}
}

func TestStaleIgnoreReported(t *testing.T) {
	fs := runOn(t, `package p
//fg:ignore flagreturns nothing to suppress here
var x = 1
`)
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "stale //fg:ignore") {
		t.Fatalf("want exactly the stale-directive finding, got %v", fs)
	}
}

func TestFindingsSortedByPosition(t *testing.T) {
	fs := runOn(t, `package p
func a() int { return 1 }
func b() int { return 2 }
`)
	if len(fs) != 2 || fs[0].Position.Line > fs[1].Position.Line {
		t.Fatalf("want two findings in position order, got %v", fs)
	}
}
