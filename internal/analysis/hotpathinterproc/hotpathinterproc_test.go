package hotpathinterproc

import (
	"testing"

	"flowguard/internal/analysis/analysistest"
)

const base = "flowguard/internal/analysis/hotpathinterproc"

func TestBad(t *testing.T) {
	analysistest.RunFixture(t, Analyzer, "testdata/bad", base+"/fixture")
}

func TestGood(t *testing.T) {
	analysistest.RunFixture(t, Analyzer, "testdata/good", base+"/fixture")
}

// TestCrossPackage analyzes the dependency first, then the importing
// fixture with only the exported facts in scope — the driver order
// cmd/fgvet uses on the real tree.
func TestCrossPackage(t *testing.T) {
	analysistest.RunFixtureDeps(t, Analyzer,
		[]analysistest.Dep{{Dir: "testdata/dep", PkgPath: base + "/fixturedep"}},
		"testdata/crosspkg", base+"/fixture")
}
