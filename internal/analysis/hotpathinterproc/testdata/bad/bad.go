// Package fixture seeds the interprocedural hot-path holes: a direct
// call to an allocating helper, a transitive chain through an innocent
// middleman, and a //fg:cold annotation with no reason.
package fixture

// grow allocates a fresh buffer on every call.
func grow(n int) []byte {
	return make([]byte, n)
}

// ensure reaches grow's allocation one hop out: it never allocates
// itself, which is exactly why the per-construct analyzer misses it.
func ensure(buf []byte, n int) []byte {
	if cap(buf) < n {
		return grow(n)
	}
	return buf
}

// scanDirect calls the allocating helper straight from the fast path.
//
//fg:hotpath
func scanDirect(pkts []byte) []byte {
	return grow(len(pkts)) // want "call to grow on the hot path reaches an allocation: grow: make allocates"
}

// scanTransitive reaches the same allocation through ensure.
//
//fg:hotpath
func scanTransitive(buf, pkts []byte) []byte {
	return ensure(buf, len(pkts)) // want "call to ensure on the hot path reaches an allocation: ensure -> grow: make allocates"
}

// undocumented claims coldness without saying why.
//
//fg:cold
func undocumented() []byte { // want "malformed //fg:cold"
	return make([]byte, 64)
}
