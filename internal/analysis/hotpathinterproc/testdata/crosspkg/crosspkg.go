// Package fixture exercises the fact boundary: the allocating helper
// lives in fixturedep, analyzed first; only its exported facts are
// visible here.
package fixture

import dep "flowguard/internal/analysis/hotpathinterproc/fixturedep"

// scan calls across the package boundary into an allocating helper.
//
//fg:hotpath
func scan(pkts []byte) int {
	n := dep.Clean(len(pkts))
	buf := dep.Fill(n) // want "call to dep.Fill on the hot path reaches an allocation: Fill: make allocates"
	return len(buf)
}

// stop routes through the dependency's documented cold helper.
//
//fg:hotpath
func stop(code int) []byte {
	return dep.Explain(code)
}
