// Package fixture holds the sanctioned shapes: clean helpers, hot
// callees that carry their own obligation, documented //fg:cold
// helpers, failure-exit calls, allocations confined to a callee's own
// failure exits, and spawned (off-path) work.
package fixture

import "errors"

type scratch struct {
	buf []byte
	n   int
}

// index is a clean helper: no allocation anywhere.
func index(pkts []byte, b byte) int {
	for i, p := range pkts {
		if p == b {
			return i
		}
	}
	return -1
}

// advance carries its own zero-alloc obligation, checked on its own.
//
//fg:hotpath
func advance(s *scratch) {
	s.n++
}

// clone allocates on every call — reachable only through sanctioned
// shapes below.
func clone(pkts []byte) []byte {
	out := make([]byte, len(pkts))
	copy(out, pkts)
	return out
}

// growCold amortizes buffer growth off the steady-state path.
//
//fg:cold amortized growth runs O(log n) times over a run, not per packet
func growCold(n int) []byte {
	return make([]byte, n)
}

// overflow is the failure handler: its allocation is reached only when
// the hot caller is already abandoning the path.
func overflow(s *scratch) error {
	s.buf = clone(s.buf)
	return errors.New("overflow")
}

// run calls only clean and hot callees.
//
//fg:hotpath
func run(s *scratch, pkts []byte) {
	advance(s)
	s.n += index(pkts, 0)
}

// refill routes growth through the documented cold helper.
//
//fg:hotpath
func refill(s *scratch, n int) {
	if cap(s.buf) < n {
		s.buf = growCold(n)
	}
	s.buf = s.buf[:n]
}

// step abandons the fast path on empty input: the failure-exit call
// may reach allocations freely.
//
//fg:hotpath
func step(s *scratch, pkts []byte) error {
	if len(pkts) == 0 {
		return overflow(s)
	}
	s.n++
	return nil
}

// flush spawns the allocating work: the goroutine is off this path.
//
//fg:hotpath
func flush(s *scratch) {
	go logStats(s)
	s.n = 0
}

func logStats(s *scratch) {
	_ = clone(s.buf)
}
