// Package fixturedep is the dependency side of the cross-package
// fixture: the facts exported here drive reports in the importing
// package.
package fixturedep

// Fill allocates a fresh slice on every call.
func Fill(n int) []byte {
	return make([]byte, n)
}

// Explain formats a diagnostic — documented cold work.
//
//fg:cold diagnostics format once per violation, not per packet
func Explain(code int) []byte {
	return make([]byte, code)
}

// Clean is allocation-free.
func Clean(x int) int {
	return x + 1
}
