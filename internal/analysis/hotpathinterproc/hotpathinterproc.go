// Package hotpathinterproc propagates the //fg:hotpath zero-allocation
// obligation through the callgraph. The per-construct hotpathalloc
// analyzer deliberately stops at call boundaries — calling an ordinary
// helper is the sanctioned escape hatch for *cold* work — but that
// leaves a hole: a helper that allocates on every invocation, called
// from inside the annotated packet-scan loop, costs exactly what an
// inline allocation costs. This analyzer closes the hole. Starting
// from each //fg:hotpath function it follows static calls and flags
// any call whose callee (transitively) reaches an allocation-forcing
// construct, printing the offending chain.
//
// Exemptions, expressed as facts so they compose across packages:
//
//   - callees annotated //fg:hotpath are not descended into — they
//     carry the obligation themselves and are checked independently
//   - callees annotated `//fg:cold <reason>` are sanctioned cold
//     helpers (violation diagnostics, buffer growth): the annotation
//     is the explicit, documented statement that this call is off the
//     steady-state path. A //fg:cold with no reason is itself an error.
//   - calls inside a failure-exit return (returning a non-nil error)
//     abandon the fast path and are exempt, as are allocations that
//     sit in a callee's own failure exits
//   - `go` statements: the spawned work is off the caller's path
//
// Dynamic calls (function values, interface methods) cannot be
// resolved statically and are not followed; lockdiscipline already
// forbids callback invocation in the states that matter.
//
// Per-function allocation reachability (with a witness chain) is
// exported as a package fact, so a hot function in guard calling a
// helper in itc sees through the package boundary — dependencies are
// analyzed first and their facts merged (see the analysis package).
package hotpathinterproc

import (
	"strings"

	"flowguard/internal/analysis"
	"flowguard/internal/analysis/summary"
)

// Analyzer is the hotpathalloc-interproc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc-interproc",
	Doc: "functions reachable from //fg:hotpath roots must not allocate; " +
		"cold helpers need an explicit //fg:cold <reason> annotation",
	Needs: analysis.NeedSummaries,
	Facts: func() any { return new(Facts) },
	Run:   run,
}

// Facts is the per-package fact: each function's hot/cold annotations
// and whether it transitively reaches an allocation.
type Facts struct {
	Funcs map[string]*FuncFact
}

// FuncFact is one function's propagation state.
type FuncFact struct {
	Hot  bool `json:",omitempty"`
	Cold bool `json:",omitempty"`
	// AllocReach is set when the function allocates (outside failure
	// exits) or reaches a function that does.
	AllocReach bool `json:",omitempty"`
	// Witness is the call chain to the first allocation reached,
	// ending in "func: message".
	Witness []string `json:",omitempty"`
}

func run(pass *analysis.Pass) error {
	depFuncs := map[string]*FuncFact{}
	err := pass.EachFact(func(pkgPath string, fact any) {
		for k, ff := range fact.(*Facts).Funcs {
			depFuncs[k] = ff
		}
	})
	if err != nil {
		return err
	}

	// Per-function state for this package.
	facts := map[summary.FuncKey]*FuncFact{}
	for _, key := range pass.Sum.Order {
		fn := pass.Sum.Funcs[key]
		ff := &FuncFact{Hot: fn.Hot, Cold: fn.Cold}
		for _, a := range fn.Allocs {
			if a.FailRet {
				continue
			}
			ff.AllocReach = true
			ff.Witness = []string{fn.Name + ": " + shorten(a.Msg)}
			break
		}
		facts[key] = ff
		if fn.ColdMalformed {
			pass.Reportf(fn.Pos, "malformed //fg:cold: want \"//fg:cold <reason>\" — an undocumented exemption is not an exemption")
		}
	}

	// Fixed point: propagate reachability backwards through static,
	// non-go, non-failure-exit calls. Hot and cold callees terminate
	// propagation (hot callees carry their own obligation; cold ones
	// are sanctioned).
	lookup := func(callee summary.FuncKey) *FuncFact {
		if ff, ok := facts[callee]; ok {
			return ff
		}
		return depFuncs[string(callee)]
	}
	for changed := true; changed; {
		changed = false
		for _, key := range pass.Sum.Order {
			ff := facts[key]
			if ff.AllocReach {
				continue
			}
			fn := pass.Sum.Funcs[key]
			for _, c := range fn.Calls {
				if c.Go || c.FailRet || c.Callee == "" {
					continue
				}
				cf := lookup(c.Callee)
				if cf == nil || cf.Hot || cf.Cold || !cf.AllocReach {
					continue
				}
				ff.AllocReach = true
				ff.Witness = append([]string{fn.Name}, cf.Witness...)
				changed = true
				break
			}
		}
	}

	// Report: every call from a //fg:hotpath function into an
	// allocation-reaching callee. Transitivity is already folded into
	// AllocReach, so direct calls are the complete frontier.
	for _, key := range pass.Sum.Order {
		fn := pass.Sum.Funcs[key]
		if !fn.Hot {
			continue
		}
		for _, c := range fn.Calls {
			if c.Go || c.FailRet || c.Callee == "" {
				continue
			}
			cf := lookup(c.Callee)
			if cf == nil || cf.Hot || cf.Cold || !cf.AllocReach {
				continue
			}
			pass.Reportf(c.Pos, "call to %s on the hot path reaches an allocation: %s (annotate the callee //fg:hotpath, hoist the allocation, or mark it //fg:cold <reason>)",
				c.Name, strings.Join(cf.Witness, " -> "))
		}
	}

	// Export everything non-trivial.
	out := &Facts{Funcs: map[string]*FuncFact{}}
	for _, key := range pass.Sum.Order {
		fn := pass.Sum.Funcs[key]
		if fn.Lit {
			continue // literals are not callable across packages
		}
		ff := facts[key]
		if ff.Hot || ff.Cold || ff.AllocReach {
			out.Funcs[string(key)] = ff
		}
	}
	pass.ExportFact(out)
	return nil
}

// shorten trims the hot-path phrasing off an allocation message for
// chain rendering ("make allocates on the hot path (...)" -> "make
// allocates").
func shorten(msg string) string {
	if i := strings.Index(msg, " on the hot path"); i > 0 {
		return msg[:i]
	}
	return msg
}
