// Package fixture seeds mixed atomic/plain accesses: hits is touched
// through sync/atomic in one function and plainly in others — the torn
// counter shape.
package fixture

import "sync/atomic"

type stats struct {
	hits   uint64
	misses uint64
}

// bump is the atomic side: it makes hits an atomic field everywhere.
func bump(s *stats) {
	atomic.AddUint64(&s.hits, 1)
}

// snapshot reads hits without synchronization.
func snapshot(s *stats) uint64 {
	return s.hits // want "plain read of s.hits"
}

// reset writes hits without synchronization.
func reset(s *stats) {
	s.hits = 0 // want "plain write of s.hits"
}

// onlyPlain never goes atomic: misses is a plain field and stays one.
func onlyPlain(s *stats) uint64 {
	s.misses++
	return s.misses
}

// suppressedRead documents a deliberate exception (single-goroutine
// teardown path): the finding exists but is suppressed.
func suppressedRead(s *stats) uint64 {
	//fg:ignore atomicfield read after all workers joined in teardown
	return s.hits
}
