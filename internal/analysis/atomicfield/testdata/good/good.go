// Package fixture holds the allowed shapes: fields accessed atomically
// everywhere, plain initialization inside the constructor, and plain
// fields that never go atomic.
package fixture

import "sync/atomic"

type stats struct {
	hits   uint64
	misses uint64
	gen    uint32
}

// newStats constructs the value before it is shared: plain stores in
// the constructor cannot race.
func newStats(seed uint64) *stats {
	s := &stats{}
	s.hits = seed
	s.gen = 1
	return s
}

// bump and drain keep every hits/gen access atomic.
func bump(s *stats) {
	atomic.AddUint64(&s.hits, 1)
	atomic.AddUint32(&s.gen, 1)
}

func drain(s *stats) (uint64, uint32) {
	return atomic.LoadUint64(&s.hits), atomic.LoadUint32(&s.gen)
}

// onlyPlain fields never atomic: free to use plainly anywhere.
func onlyPlain(s *stats) uint64 {
	s.misses++
	return s.misses
}
