// Package atomicfield flags struct fields accessed both through
// sync/atomic and through plain loads/stores. A field read with
// atomic.LoadUint64 in one place and `s.f++` in another has no
// synchronization at all on the plain side: the race detector only
// catches the interleavings a test happens to produce, while the
// checker's verdict path must never tear (a torn read of a generation
// counter silently converts "CFI enforced" into "CFI skipped"). The
// stats/counter idiom is therefore checked, not conventional: once any
// package touches a field atomically, every access anywhere in the
// module must be atomic.
//
// Field identity is the owning defined type ("pkg.Kernel.SyscallCount"),
// and the atomic-access evidence is exported as a package fact, so a
// plain access in a package that only *imports* the type is still
// caught (dependencies are analyzed first; see the analysis package).
//
// One shape is exempt: plain stores inside a function that constructs
// the owning type (its composite literal appears there). Initialization
// before the value is shared cannot race — requiring atomic stores in
// constructors would punish `k := &Kernel{}; k.clock = now` for no
// soundness gain. Fields of the atomic.* struct types (atomic.Uint64,
// atomic.Pointer) are immune by construction and outside this
// analyzer's scope.
package atomicfield

import (
	"sort"

	"flowguard/internal/analysis"
)

// Analyzer is the atomicfield analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "a struct field accessed via sync/atomic anywhere must be accessed " +
		"atomically everywhere (plain loads/stores tear)",
	Needs: analysis.NeedSummaries,
	Facts: func() any { return new(Facts) },
	Run:   run,
}

// Facts records which fields this package accesses atomically, with
// one witness site each.
type Facts struct {
	// Atomic maps "pkg.Type.field" to a "file:line" witness of an
	// atomic access.
	Atomic map[string]string
}

func run(pass *analysis.Pass) error {
	// Atomic evidence: dependencies' facts plus this package's own.
	atomic := map[string]string{}
	err := pass.EachFact(func(pkgPath string, fact any) {
		for k, site := range fact.(*Facts).Atomic {
			if _, ok := atomic[k]; !ok {
				atomic[k] = site
			}
		}
	})
	if err != nil {
		return err
	}
	own := map[string]string{}
	for _, key := range pass.Sum.Order {
		for _, fa := range pass.Sum.Funcs[key].Fields {
			if !fa.Atomic {
				continue
			}
			k := fa.Key.String()
			if _, ok := own[k]; !ok {
				own[k] = pass.Fset.Position(fa.Pos).String()
			}
			if _, ok := atomic[k]; !ok {
				atomic[k] = pass.Fset.Position(fa.Pos).String()
			}
		}
	}

	// Plain accesses against the merged evidence.
	for _, key := range pass.Sum.Order {
		fn := pass.Sum.Funcs[key]
		for _, fa := range fn.Fields {
			if fa.Atomic {
				continue
			}
			k := fa.Key.String()
			site, mixed := atomic[k]
			if !mixed {
				continue
			}
			if fn.Constructs[fa.Key.Type] {
				continue // initialization inside the type's constructor
			}
			kind := "read"
			if fa.Write {
				kind = "write"
			}
			pass.Reportf(fa.Pos, "plain %s of %s, which is accessed atomically at %s: unsynchronized plain access tears (use sync/atomic everywhere)",
				kind, fa.Expr, site)
		}
	}

	// Export this package's atomic evidence (deterministically).
	if len(own) > 0 {
		keys := make([]string, 0, len(own))
		for k := range own {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := &Facts{Atomic: make(map[string]string, len(own))}
		for _, k := range keys {
			out.Atomic[k] = own[k]
		}
		pass.ExportFact(out)
	}
	return nil
}
