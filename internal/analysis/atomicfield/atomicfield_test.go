package atomicfield

import (
	"testing"

	"flowguard/internal/analysis/analysistest"
)

func TestBad(t *testing.T) {
	analysistest.RunFixture(t, Analyzer, "testdata/bad", "flowguard/internal/analysis/atomicfield/fixture")
}

func TestGood(t *testing.T) {
	analysistest.RunFixture(t, Analyzer, "testdata/good", "flowguard/internal/analysis/atomicfield/fixture")
}
