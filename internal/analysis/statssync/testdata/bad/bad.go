// Package fixture reproduces the exact mistake the PR 3 reflection
// test guards against: a field added to Stats but not to Merge — plus
// a stale exemption and an under-referencing cross-package reporter.
package fixture

import "flowguard/internal/guard"

// Stats mirrors guard.Stats at the moment a new counter (Shed) has
// just been added.
type Stats struct {
	Checks     uint64
	SlowChecks uint64
	Violations uint64
	Shed       uint64 // newly added
}

// Merge predates the Shed field — the bug this analyzer exists for.
//
//fg:statssync Stats
func (s *Stats) Merge(o *Stats) { // want "Merge does not reference Stats field.s. Shed"
	s.Checks += o.Checks
	s.SlowChecks += o.SlowChecks
	s.Violations += o.Violations
}

// staleExempt excuses a field that was since renamed away.
//
//fg:statssync Stats -exempt Checks,Dropped
func staleExempt(s *Stats) uint64 { // want "exempt field Dropped does not exist"
	return s.SlowChecks + s.Violations + s.Shed
}

// prodReporter consumes the real guard.Stats but references none of
// its counters.
//
//fg:statssync guard.Stats
func prodReporter(s *guard.Stats) uint64 { // want "prodReporter does not reference guard.Stats field"
	return 0
}

// malformed annotation: no type.
//
//fg:statssync
func malformed(s *Stats) { // want "malformed //fg:statssync"
	_ = s.Checks
}
