// Package fixture holds the compliant shapes: full coverage via
// selectors, coverage via composite-literal keys, documented
// exemptions, and unannotated functions out of scope.
package fixture

type Stats struct {
	Checks     uint64
	SlowChecks uint64
	Violations uint64
	Shed       uint64
}

// Merge references every field.
//
//fg:statssync Stats
func (s *Stats) Merge(o *Stats) {
	s.Checks += o.Checks
	s.SlowChecks += o.SlowChecks
	s.Violations += o.Violations
	s.Shed += o.Shed
}

// literalCoverage counts composite-literal keys as references.
//
//fg:statssync Stats
func literalCoverage() Stats {
	return Stats{Checks: 1, SlowChecks: 2, Violations: 3, Shed: 4}
}

// exempted documents why Shed is not compared (it has no analogue on
// the other side, say).
//
//fg:statssync Stats -exempt Shed
func exempted(a, b *Stats) bool {
	return a.Checks == b.Checks && a.SlowChecks == b.SlowChecks && a.Violations == b.Violations
}

// unannotated functions may reference as little as they like.
func unannotated(s *Stats) uint64 { return s.Checks }
