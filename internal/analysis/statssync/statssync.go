// Package statssync keeps guard.Stats and its consumers in lockstep.
// The differential-oracle suite (DESIGN.md §7) treats Stats as part of
// the checker's observable behavior: a counter added to guard.Stats
// but forgotten in Stats.Merge silently under-reports in every
// parallel run, and one forgotten in the oracle comparison list or the
// fgbench reporter silently escapes verification. The PR 3 reflection
// test catches the Merge half at test time; this analyzer catches all
// of it at vet time.
//
// A function opts in with a doc-comment line
//
//	//fg:statssync <Type> [-exempt A,B,C]
//
// where <Type> is a struct type (optionally package-qualified, e.g.
// guard.Stats) visible to the function's package. The function body
// must then mention every field of the struct as a selector on a value
// of that type. Fields listed after -exempt are excused — with the
// reason living right next to the function — and an exemption naming a
// field that no longer exists is itself an error, so the list cannot
// go stale.
package statssync

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"flowguard/internal/analysis"
)

// Marker opens the annotation line.
const Marker = "fg:statssync"

// Analyzer is the statssync analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "statssync",
	Doc: "a function annotated //fg:statssync T must reference every field of struct T " +
		"(minus documented -exempt fields): Merge, oracle comparison and reporters stay in lockstep with Stats",
	Needs:     analysis.NeedTypes,
	Run:       run,
}

// annotation is one parsed marker line.
type annotation struct {
	typeRef string
	exempt  map[string]bool
}

// parseAnnotation extracts the marker from a doc comment, or nil.
// A malformed marker is returned as an error string diagnostic by the
// caller.
func parseAnnotation(doc *ast.CommentGroup) (*annotation, error) {
	if doc == nil {
		return nil, nil
	}
	for _, c := range doc.List {
		t := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		rest, ok := strings.CutPrefix(t, Marker)
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return nil, fmt.Errorf("malformed //%s: want \"//%s <Type> [-exempt A,B,C]\"", Marker, Marker)
		}
		a := &annotation{typeRef: fields[0], exempt: map[string]bool{}}
		for i := 1; i < len(fields); i++ {
			if fields[i] == "-exempt" && i+1 < len(fields) {
				for _, name := range strings.Split(fields[i+1], ",") {
					if name != "" {
						a.exempt[name] = true
					}
				}
				i++
				continue
			}
			return nil, fmt.Errorf("malformed //%s: unexpected %q", Marker, fields[i])
		}
		return a, nil
	}
	return nil, nil
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ann, err := parseAnnotation(fd.Doc)
			if err != nil {
				pass.Reportf(fd.Pos(), "%v", err)
				continue
			}
			if ann == nil {
				continue
			}
			checkFunc(pass, fd, ann)
		}
	}
	return nil
}

// resolveStruct finds the annotated struct type from the function's
// package or one of its imports.
func resolveStruct(pass *analysis.Pass, ref string) (*types.Named, *types.Struct, error) {
	var scope *types.Scope
	name := ref
	if pkgName, typeName, ok := strings.Cut(ref, "."); ok {
		for _, imp := range pass.Pkg.Imports() {
			if imp.Name() == pkgName {
				scope = imp.Scope()
				break
			}
		}
		if scope == nil {
			return nil, nil, fmt.Errorf("package %q is not imported here", pkgName)
		}
		name = typeName
	} else {
		scope = pass.Pkg.Scope()
	}
	tn, ok := scope.Lookup(name).(*types.TypeName)
	if !ok {
		return nil, nil, fmt.Errorf("%s is not a type in scope", ref)
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil, nil, fmt.Errorf("%s is not a defined type", ref)
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil, fmt.Errorf("%s is not a struct type", ref)
	}
	return named, st, nil
}

// checkFunc verifies the annotated function references every
// non-exempt field of the struct.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, ann *annotation) {
	named, st, err := resolveStruct(pass, ann.typeRef)
	if err != nil {
		pass.Reportf(fd.Pos(), "//%s %s: %v", Marker, ann.typeRef, err)
		return
	}
	fields := map[string]bool{}
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i).Name()] = true
	}
	for name := range ann.exempt {
		if !fields[name] {
			pass.Reportf(fd.Pos(), "//%s %s: exempt field %s does not exist (stale exemption)", Marker, ann.typeRef, name)
		}
	}
	seen := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if tv, ok := pass.TypesInfo.Types[x.X]; ok && sameStruct(tv.Type, named) && fields[x.Sel.Name] {
				seen[x.Sel.Name] = true
			}
		case *ast.CompositeLit:
			// Stats{Checks: ..., ...} literals count as references too.
			if tv, ok := pass.TypesInfo.Types[x]; ok && sameStruct(tv.Type, named) {
				for _, e := range x.Elts {
					if kv, ok := e.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok && fields[id.Name] {
							seen[id.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	var missing []string
	for i := 0; i < st.NumFields(); i++ {
		name := st.Field(i).Name()
		if !seen[name] && !ann.exempt[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(fd.Pos(), "%s does not reference %s field(s) %s: a field was added to %s without updating this consumer (or add -exempt with a reason)",
			fd.Name.Name, ann.typeRef, strings.Join(missing, ", "), ann.typeRef)
	}
}

// sameStruct reports whether t (possibly a pointer) is the named type.
func sameStruct(t types.Type, named *types.Named) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == named.Obj()
}
