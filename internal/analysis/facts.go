package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// FactStore holds the per-(analyzer, package) facts accumulated over a
// dependency-ordered run. Facts are stored JSON-serialized — the same
// modularity boundary go/analysis enforces with gob: a fact that does
// not survive serialization cannot leak unserializable state between
// packages, and the whole store round-trips through EncodeTo /
// DecodeFrom so a future driver can persist facts next to the build
// cache instead of recomputing dependencies every run.
type FactStore struct {
	// facts maps analyzer name -> package path -> encoded fact.
	facts map[string]map[string]json.RawMessage
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: make(map[string]map[string]json.RawMessage)}
}

// set serializes fact as (analyzer, pkgPath)'s entry.
func (s *FactStore) set(analyzer, pkgPath string, fact any) error {
	raw, err := json.Marshal(fact)
	if err != nil {
		return fmt.Errorf("fact for %s/%s does not serialize: %v", analyzer, pkgPath, err)
	}
	m := s.facts[analyzer]
	if m == nil {
		m = make(map[string]json.RawMessage)
		s.facts[analyzer] = m
	}
	m[pkgPath] = raw
	return nil
}

// get decodes (analyzer, pkgPath)'s fact into out, reporting presence.
func (s *FactStore) get(analyzer, pkgPath string, out any) (bool, error) {
	raw, ok := s.facts[analyzer][pkgPath]
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("decoding fact %s/%s: %v", analyzer, pkgPath, err)
	}
	return true, nil
}

// each decodes every fact stored for analyzer into fresh prototypes
// (in sorted package order, for determinism) and calls fn with each.
func (s *FactStore) each(analyzer string, proto func() any, fn func(pkgPath string, fact any)) error {
	m := s.facts[analyzer]
	paths := make([]string, 0, len(m))
	for p := range m {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fact := proto()
		if err := json.Unmarshal(m[p], fact); err != nil {
			return fmt.Errorf("decoding fact %s/%s: %v", analyzer, p, err)
		}
		fn(p, fact)
	}
	return nil
}

// Packages returns the package paths with a stored fact for analyzer,
// sorted.
func (s *FactStore) Packages(analyzer string) []string {
	var out []string
	for p := range s.facts[analyzer] {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// EncodeTo writes the store as JSON.
func (s *FactStore) EncodeTo(w io.Writer) error {
	return json.NewEncoder(w).Encode(s.facts)
}

// DecodeFrom replaces the store's contents with JSON previously
// written by EncodeTo.
func (s *FactStore) DecodeFrom(r io.Reader) error {
	m := make(map[string]map[string]json.RawMessage)
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return err
	}
	s.facts = m
	return nil
}
