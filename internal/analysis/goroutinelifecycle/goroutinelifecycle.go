// Package goroutinelifecycle checks the spawn/join hygiene of the
// checker's worker machinery. AsyncPool and FleetPool live or die by
// three idioms this analyzer turns into rules:
//
//   - no goroutine spawned while a mutex is held — the child can run
//     immediately, contend on the same lock, and (with the watchdog
//     patterns in asyncworker.go) self-deadlock in ways no short test
//     reproduces
//   - sync.WaitGroup discipline: Add happens-before the `go`
//     statement, never inside the spawned body (the race with Wait is
//     the classic lost-Add bug); Wait is never called with a lock held
//     (workers that need the lock to finish can never let Wait return);
//     and a WaitGroup class that is Added and Waited on but never
//     Done'd anywhere in the package can never return
//   - a send on a function-local unbuffered channel that never escapes
//     the function and has no receive or close in scope blocks forever
//     — the goroutine leak shape (sends guarded by select-with-default
//     are exempt: they shed instead of blocking)
//
// The checks are summary-based and intra-package: spawn sites, the
// held-lock sets at them, WaitGroup classes, and local-channel
// lifecycles all come from the summary walk, including inside function
// literals (where the real spawns live).
package goroutinelifecycle

import (
	"flowguard/internal/analysis"
	"flowguard/internal/analysis/summary"
)

// Analyzer is the goroutinelifecycle analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinelifecycle",
	Doc: "no goroutine spawn or WaitGroup.Wait under a held mutex; Add before go, " +
		"not inside the spawned body; no send on a local channel nothing can receive",
	Needs: analysis.NeedSummaries,
	Run:   run,
}

func run(pass *analysis.Pass) error {
	// Spawned literal bodies, for the Add-inside-goroutine check.
	spawned := map[summary.FuncKey]bool{}
	for _, key := range pass.Sum.Order {
		for _, c := range pass.Sum.Funcs[key].Calls {
			if c.Go && c.Callee != "" {
				spawned[c.Callee] = true
			}
		}
	}
	// Package-wide Done evidence per WaitGroup class.
	doneCount := map[summary.LockClass]int{}
	for _, key := range pass.Sum.Order {
		for _, wg := range pass.Sum.Funcs[key].WaitGroups {
			if wg.Kind == "Done" {
				doneCount[wg.Class]++
			}
		}
	}

	for _, key := range pass.Sum.Order {
		fn := pass.Sum.Funcs[key]
		for _, c := range fn.Calls {
			if c.Go && len(c.Held) > 0 {
				pass.Reportf(c.Pos, "goroutine spawned while holding %s: the child can contend on the same lock immediately (move the go statement after Unlock)",
					c.Held[0].Expr)
			}
		}
		adds := int64(0)
		constAdds := true
		hasWait := false
		for _, wg := range fn.WaitGroups {
			switch wg.Kind {
			case "Add":
				if spawned[fn.Key] {
					pass.Reportf(wg.Pos, "%s.Add inside the spawned goroutine races Wait: a Wait that runs before this Add returns early (Add before the go statement)",
						wg.Expr)
				}
				if wg.Delta < 0 {
					constAdds = false
				} else {
					adds += wg.Delta
				}
			case "Wait":
				hasWait = true
				if len(wg.Held) > 0 {
					pass.Reportf(wg.Pos, "%s.Wait while holding %s: workers needing the lock can never finish (release it before waiting)",
						wg.Expr, wg.Held[0].Expr)
				}
			}
		}
		// Add+Wait with no Done anywhere in the package: Wait can
		// never return. Only constant, positive Adds are judged —
		// dynamic worker counts hand Done to code this package may
		// receive as callbacks.
		if hasWait && constAdds && adds > 0 {
			for _, wg := range fn.WaitGroups {
				if wg.Kind == "Add" && doneCount[wg.Class] == 0 {
					pass.Reportf(wg.Pos, "%s.Add(%d) with Wait but no %s.Done anywhere in this package: Wait can never return",
						wg.Expr, wg.Delta, wg.Expr)
					break
				}
			}
		}
		// Local channels nothing can drain.
		for _, lc := range fn.LocalChans {
			if lc.Escapes || !lc.Unbuffered || lc.Sends == 0 {
				continue
			}
			if lc.Recvs > 0 || lc.Closes > 0 {
				continue
			}
			if lc.NonBlockingSends == lc.Sends {
				continue // every send sheds via select-with-default
			}
			pass.Reportf(lc.FirstSend, "send on %s: the channel is unbuffered, never leaves this function, and has no receive or close in scope — the sender blocks forever",
				lc.Name)
		}
	}
	return nil
}
