// Package fixture holds the sanctioned shapes: spawn after unlock,
// Add before go with the Done deferred in the worker, Wait with
// nothing held, buffered or escaping channels, and select-with-default
// sends that shed instead of blocking.
package fixture

import "sync"

type pool struct {
	mu sync.Mutex
	wg sync.WaitGroup
	n  int
}

func (p *pool) worker() {
	defer p.wg.Done()
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
}

// startWorkers is the AsyncPool shape: Add before go, Done deferred
// inside the worker, spawn with nothing held.
func startWorkers(p *pool, workers int) {
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
}

// spawnAfterUnlock snapshots under the lock and spawns released.
func spawnAfterUnlock(p *pool) {
	p.mu.Lock()
	n := p.n
	p.mu.Unlock()
	_ = n
	go p.worker()
}

// waitReleased joins with nothing held.
func waitReleased(p *pool) {
	p.wg.Wait()
}

// bufferedResult cannot block the sender: capacity covers the one
// send.
func bufferedResult(p *pool) int {
	res := make(chan int, 1)
	go func() {
		res <- p.n
	}()
	return <-res
}

// escapingChannel hands the channel to another function: receivers
// exist beyond this scope.
func escapingChannel(p *pool) {
	ch := make(chan int)
	go consume(ch)
	ch <- p.n
}

func consume(ch chan int) {
	<-ch
}

// shedDontBlock sheds through select-with-default: an unbuffered wake
// channel no one is draining cannot hang the sender.
func shedDontBlock() {
	wake := make(chan struct{})
	select {
	case wake <- struct{}{}:
	default:
	}
}

// closedPipeline closes what it makes: receivers terminate.
func closedPipeline(p *pool) {
	out := make(chan int)
	go func() {
		defer close(out)
		out <- p.n
	}()
	for range out {
	}
}
