// Package fixture seeds the spawn/join bugs goroutinelifecycle must
// reject: spawning under a lock, the lost-Add race, Wait under a lock,
// an Add no Done can ever balance, and a send nothing can receive.
package fixture

import "sync"

type pool struct {
	mu sync.Mutex
	wg sync.WaitGroup
	n  int
}

func (p *pool) work() {
	p.wg.Done()
}

// spawnUnderLock starts the worker while still holding p.mu.
func spawnUnderLock(p *pool) {
	p.mu.Lock()
	go p.work() // want "goroutine spawned while holding p.mu"
	p.n++
	p.mu.Unlock()
}

// addInsideGoroutine puts the Add in the spawned body: Wait can run
// before the goroutine is scheduled and return early.
func addInsideGoroutine(p *pool) {
	go func() {
		p.wg.Add(1) // want "Add inside the spawned goroutine"
		defer p.wg.Done()
		p.n++
	}()
	p.wg.Wait()
}

// waitUnderLock holds the lock the workers need to finish.
func waitUnderLock(p *pool) {
	p.mu.Lock()
	p.wg.Wait() // want "Wait while holding p.mu"
	p.mu.Unlock()
}

type solo struct {
	wg sync.WaitGroup
}

// addNoDone: nothing in this package ever calls solo.wg.Done.
func addNoDone(s *solo) {
	s.wg.Add(1) // want "no s.wg.Done anywhere in this package"
	s.wg.Wait()
}

// leakySend: done is unbuffered, never escapes, and has no receiver or
// close in scope — the sender goroutine leaks forever.
func leakySend(p *pool) {
	done := make(chan int)
	go func() {
		p.n++
		done <- 1 // want "blocks forever"
	}()
}
