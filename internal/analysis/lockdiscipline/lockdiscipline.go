// Package lockdiscipline statically enforces the checker's locking
// rules. Guard.Check serializes on g.mu and CheckPool's accounting
// uses p.mu; both sit on the endpoint-check critical path, where a
// mutex held across a blocking operation turns one slow process into a
// fleet-wide stall (the §6 offloading argument assumes checks of
// different processes never wait on each other's bookkeeping). The
// analyzer flags, inside any function:
//
//   - a channel send or receive while a sync.Mutex/RWMutex is held
//   - a time.Sleep call while a lock is held
//   - invoking a function value (callback, hook field) while a lock is
//     held — callbacks run arbitrary user code and must never run
//     under checker locks (the fault-injection Stall hook taught us)
//   - passing a value containing a sync.Mutex/RWMutex by copy into a
//     `go` statement — a copied lock guards nothing
//
// The walk is linear over the function body (defer x.Unlock() pins the
// lock to function end), which catches the straight-line shapes real
// code takes; it is a discipline check, not a model checker.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"flowguard/internal/analysis"
)

// Analyzer is the lockdiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "no mutex held across a channel send/receive, time.Sleep, or callback " +
		"invocation; no lock-containing value copied into a go statement",
	NeedTypes: true,
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// mutexType reports whether t is sync.Mutex or sync.RWMutex
// (possibly behind a pointer).
func mutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := n.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// containsMutex reports whether a value of type t embeds a mutex by
// value (so copying t copies the lock).
func containsMutex(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if mutexType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutex(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutex(u.Elem(), seen)
	}
	return false
}

// lockCall classifies a call as Lock/RLock/Unlock/RUnlock on a mutex
// and returns the receiver's printable key.
func lockCall(pass *analysis.Pass, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	tv, found := pass.TypesInfo.Types[sel.X]
	if !found || !mutexType(tv.Type) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// checkFunc runs the linear lock-state walk over one function body.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	held := map[string]bool{}
	heldAny := func() (string, bool) {
		for k := range held {
			return k, true
		}
		return "", false
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				// A nested closure runs later (defer, goroutine, stored
				// hook) — its body is not part of this lock region.
				return false
			case *ast.DeferStmt:
				if _, m, ok := lockCall(pass, x.Call); ok && (m == "Unlock" || m == "RUnlock") {
					// defer x.Unlock(): held to function end — leave the
					// lock in the held set for the rest of the walk.
					return false
				}
				return true
			case *ast.GoStmt:
				for _, arg := range x.Call.Args {
					if tv, ok := pass.TypesInfo.Types[arg]; ok && containsMutex(tv.Type, map[types.Type]bool{}) {
						pass.Reportf(arg.Pos(), "copying a lock-containing %s value into a go statement: the copy guards nothing (pass a pointer)", tv.Type)
					}
				}
				return true
			case *ast.CallExpr:
				if key, m, ok := lockCall(pass, x); ok {
					switch m {
					case "Lock", "RLock":
						held[key] = true
					case "Unlock", "RUnlock":
						delete(held, key)
					}
					return false
				}
				if k, locked := heldAny(); locked {
					if isTimeSleep(pass, x) {
						pass.Reportf(x.Pos(), "time.Sleep while holding %s: a stalled checker blocks every sibling (release the lock first)", k)
					} else if isDynamicCall(pass, x) {
						pass.Reportf(x.Pos(), "callback invoked while holding %s: hooks must never run under checker locks", k)
					}
				}
			case *ast.SendStmt:
				if k, locked := heldAny(); locked {
					pass.Reportf(x.Pos(), "channel send while holding %s", k)
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					if k, locked := heldAny(); locked {
						pass.Reportf(x.Pos(), "channel receive while holding %s", k)
					}
				}
			}
			return true
		})
	}
	walk(fd.Body)
}

// isTimeSleep matches time.Sleep(...).
func isTimeSleep(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sleep" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "time"
}

// isDynamicCall reports whether the callee is a function *value* — a
// variable, parameter, or struct field of function type — rather than
// a statically known function or method.
func isDynamicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	_, isSig := v.Type().Underlying().(*types.Signature)
	return isSig
}
