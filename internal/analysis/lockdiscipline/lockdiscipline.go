// Package lockdiscipline statically enforces the checker's locking
// rules. Guard.Check serializes on g.mu and CheckPool's accounting
// uses p.mu; both sit on the endpoint-check critical path, where a
// mutex held across a blocking operation turns one slow process into a
// fleet-wide stall (the §6 offloading argument assumes checks of
// different processes never wait on each other's bookkeeping). The
// analyzer flags, inside any function:
//
//   - a channel send or receive while a sync.Mutex/RWMutex is held
//   - a time.Sleep call while a lock is held
//   - invoking a function value (callback, hook field) while a lock is
//     held — callbacks run arbitrary user code and must never run
//     under checker locks (the fault-injection Stall hook taught us)
//   - passing a value containing a sync.Mutex/RWMutex by copy into a
//     `go` statement — a copied lock guards nothing
//
// The walk is linear over the function body (defer x.Unlock() pins the
// lock to function end), which catches the straight-line shapes real
// code takes; it is a discipline check, not a model checker.
//
// Since fgvet v2 the lock-state walk lives in the summary package and
// this analyzer reports over the recorded effects. That also made it
// stricter in one deliberate way: function literals — previously
// skipped entirely — are now pseudo-functions with their own lock
// regions, so a goroutine body that sends on a channel while holding
// its own lock is flagged too. Cross-function lock-order cycles and
// transitive blocking are the lockorder analyzer's job.
package lockdiscipline

import (
	"flowguard/internal/analysis"
	"flowguard/internal/analysis/summary"
)

// Analyzer is the lockdiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "no mutex held across a channel send/receive, time.Sleep, or callback " +
		"invocation; no lock-containing value copied into a go statement",
	Needs: analysis.NeedSummaries,
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, key := range pass.Sum.Order {
		fn := pass.Sum.Funcs[key]
		for _, cp := range fn.GoLockCopies {
			pass.Reportf(cp.Pos, "copying a lock-containing %s value into a go statement: the copy guards nothing (pass a pointer)", cp.Type)
		}
		for _, c := range fn.Calls {
			if len(c.Held) == 0 {
				continue
			}
			switch {
			case c.Callee == "time.Sleep":
				pass.Reportf(c.Pos, "time.Sleep while holding %s: a stalled checker blocks every sibling (release the lock first)", c.Held[0].Expr)
			case c.Dynamic:
				pass.Reportf(c.Pos, "callback invoked while holding %s: hooks must never run under checker locks", c.Held[0].Expr)
			}
		}
		for _, op := range fn.Chans {
			if len(op.Held) == 0 {
				continue
			}
			switch op.Kind {
			case summary.ChanSend:
				pass.Reportf(op.Pos, "channel send while holding %s", op.Held[0].Expr)
			case summary.ChanRecv:
				pass.Reportf(op.Pos, "channel receive while holding %s", op.Held[0].Expr)
			}
		}
	}
	return nil
}
