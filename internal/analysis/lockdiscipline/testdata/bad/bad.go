// Package fixture injects each lock-discipline violation.
package fixture

import (
	"sync"
	"time"
)

type pool struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	ch    chan int
	stall func() time.Duration
}

func sleepUnderLock(p *pool) {
	p.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding p.mu"
	p.mu.Unlock()
}

func sleepUnderDeferredLock(p *pool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding p.mu"
}

func sendUnderLock(p *pool) {
	p.mu.Lock()
	p.ch <- 1 // want "channel send while holding p.mu"
	p.mu.Unlock()
}

func recvUnderLock(p *pool) int {
	p.rw.RLock()
	v := <-p.ch // want "channel receive while holding p.rw"
	p.rw.RUnlock()
	return v
}

func callbackUnderLock(p *pool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stall() // want "callback invoked while holding p.mu"
}

type guarded struct {
	mu    sync.Mutex
	count int
}

func worker(g guarded) {}

func copiesLockIntoGoroutine(g *guarded) {
	go worker(*g) // want "copying a lock-containing"
}

// The asynchronous-pipeline shapes: a capture path that wakes the
// worker pool while still inside its own accounting lock, and a
// region-full notification hook fired under the buffer mutex.

type asyncPipe struct {
	mu      sync.Mutex
	wake    chan *pool
	pending []int
	onFull  func(int)
}

func wakesPoolUnderLock(a *asyncPipe, g *pool) {
	a.mu.Lock()
	a.pending = append(a.pending, 1)
	a.wake <- g // want "channel send while holding a.mu"
	a.mu.Unlock()
}

func firesHookUnderLock(a *asyncPipe, region int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onFull(region) // want "callback invoked while holding a.mu"
}

func backpressureSleepUnderLock(a *asyncPipe) {
	a.mu.Lock()
	for len(a.pending) > 8 {
		time.Sleep(time.Microsecond) // want "time.Sleep while holding a.mu"
	}
	a.mu.Unlock()
}
