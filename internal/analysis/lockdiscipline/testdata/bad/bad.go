// Package fixture injects each lock-discipline violation.
package fixture

import (
	"sync"
	"time"
)

type pool struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	ch    chan int
	stall func() time.Duration
}

func sleepUnderLock(p *pool) {
	p.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding p.mu"
	p.mu.Unlock()
}

func sleepUnderDeferredLock(p *pool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding p.mu"
}

func sendUnderLock(p *pool) {
	p.mu.Lock()
	p.ch <- 1 // want "channel send while holding p.mu"
	p.mu.Unlock()
}

func recvUnderLock(p *pool) int {
	p.rw.RLock()
	v := <-p.ch // want "channel receive while holding p.rw"
	p.rw.RUnlock()
	return v
}

func callbackUnderLock(p *pool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stall() // want "callback invoked while holding p.mu"
}

type guarded struct {
	mu    sync.Mutex
	count int
}

func worker(g guarded) {}

func copiesLockIntoGoroutine(g *guarded) {
	go worker(*g) // want "copying a lock-containing"
}
