// Package fixture holds the allowed shapes: blocking work outside the
// critical section, static calls under locks, pointers into
// goroutines, and hooks consulted lock-free.
package fixture

import (
	"sync"
	"time"
)

type pool struct {
	mu    sync.Mutex
	ch    chan int
	stall func() time.Duration
	n     int
}

func (p *pool) bump() { p.n++ }

// sleepAfterUnlock releases before blocking — the CheckPool backoff
// pattern.
func sleepAfterUnlock(p *pool) {
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// staticCallsUnderLock are fine: methods and functions are not hooks.
func staticCallsUnderLock(p *pool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.bump()
}

// hookOutsideLock consults the callback lock-free, then accounts under
// the lock.
func hookOutsideLock(p *pool) {
	d := p.stall()
	_ = d
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
}

// sendOutsideLock snapshots under the lock and sends after.
func sendOutsideLock(p *pool) {
	p.mu.Lock()
	v := p.n
	p.mu.Unlock()
	p.ch <- v
}

type guarded struct {
	mu sync.Mutex
	n  int
}

func workerPtr(g *guarded) {}

// pointerIntoGoroutine shares the lock instead of copying it.
func pointerIntoGoroutine(g *guarded) {
	go workerPtr(g)
}

// suppressed documents a deliberate exception.
func suppressed(p *pool) {
	p.mu.Lock()
	//fg:ignore lockdiscipline fixture demonstrating a documented suppression
	time.Sleep(time.Microsecond)
	p.mu.Unlock()
}

// The asynchronous-pipeline shapes, done right: enqueue under the lock,
// wake and fire hooks only after releasing it — the capture-hook
// contract asyncOnRegionFull and the ToPA's OnRegionFull dispatch keep.

type asyncPipe struct {
	mu      sync.Mutex
	wake    chan *pool
	pending []int
	onFull  func(int)
}

// enqueueThenWake appends under the lock and wakes the pool after — the
// enqueue/asyncNotify split.
func enqueueThenWake(a *asyncPipe, g *pool) {
	a.mu.Lock()
	a.pending = append(a.pending, 1)
	a.mu.Unlock()
	select {
	case a.wake <- g:
	default:
	}
}

// snapshotThenFire copies what the hook needs under the lock and
// invokes it released — the OnRegionFull dispatch shape.
func snapshotThenFire(a *asyncPipe, region int) {
	a.mu.Lock()
	n := len(a.pending)
	a.mu.Unlock()
	a.onFull(region + n)
}

// backpressureSleepOutsideLock polls the queue depth lock-free between
// bounded sleeps — the producer-stall shape.
func backpressureSleepOutsideLock(a *asyncPipe, depth func() int) {
	for depth() > 8 {
		time.Sleep(time.Microsecond)
	}
	a.mu.Lock()
	a.pending = a.pending[:0]
	a.mu.Unlock()
}
