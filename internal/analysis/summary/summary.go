// Package summary builds lightweight per-function value/effect
// summaries — an SSA-lite substitute for golang.org/x/tools/go/ssa,
// small enough to stay stdlib-only. For every function (and every
// function literal, modeled as a pseudo-function of its parent) the
// builder records the effects the concurrency and hot-path analyzers
// reason about:
//
//   - mutex acquisitions and releases, in program order, with the set
//     of locks already held at each acquisition (the raw material of
//     the global lock-order graph)
//   - channel sends/receives/closes and sync.WaitGroup Add/Done/Wait,
//     each with the held-lock set and select-with-default context
//   - struct-field accesses eligible for sync/atomic, split into
//     atomic and plain loads/stores (torn-read detection)
//   - allocation effects, with the same per-construct fidelity as the
//     hotpathalloc analyzer (which consumes these records)
//   - the static call graph: resolved callees, go/defer context,
//     failure-return context, and the held-lock set at the call site
//
// Identity is type-based: a mutex field is named by its owning defined
// type ("flowguard/internal/guard.Guard.mu"), so two instances of the
// same struct share a lock class — exactly the granularity a static
// acquisition-order analysis wants. Functions are keyed by
// types.Func.FullName, which is stable across packages and is what the
// analysis facts layer serializes.
package summary

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FuncKey names a function globally ("flowguard/internal/guard.New",
// "(*flowguard/internal/guard.Guard).Check", parent key + "$litN" for
// function literals).
type FuncKey string

// LockClass identifies a mutex (or WaitGroup) by its owning defined
// type and field ("pkg/path.Type.field"), by package-level variable
// ("pkg/path.varname"), or — for shapes the resolver cannot name — by a
// function-local fallback that never aliases across functions.
type LockClass string

// HeldLock is one entry of a held-lock set: the class for graph
// identity plus the source expression for diagnostics ("g.mu").
type HeldLock struct {
	Class LockClass
	Expr  string
}

// LockUse is one Lock/RLock/Unlock/RUnlock call.
type LockUse struct {
	Class LockClass
	Expr  string
	Op    string // "Lock", "RLock", "Unlock", "RUnlock"
	Pos   token.Pos
}

// AcquireEdge records "To acquired while From was held" inside one
// function — one edge of the global acquisition-order graph.
type AcquireEdge struct {
	From, To         LockClass
	FromExpr, ToExpr string
	Pos              token.Pos
}

// Call is one call site.
type Call struct {
	// Callee is the resolved static callee ("" for dynamic calls
	// through function values or unresolvable interface methods).
	Callee FuncKey
	// Name renders the callee as written ("p.stall", "time.Sleep").
	Name string
	// Dynamic marks a call through a function value (callback, hook).
	Dynamic bool
	// Iface marks a call through an interface method (statically
	// named, dynamically dispatched).
	Iface bool
	// Go marks the call as the operand of a go statement.
	Go bool
	// Deferred marks a deferred call.
	Deferred bool
	// FailRet marks a call inside a return statement that also
	// returns a non-nil error (the sanctioned failure-exit shape).
	FailRet bool
	Held    []HeldLock
	Pos     token.Pos
}

// ChanOpKind classifies a channel operation.
type ChanOpKind int

const (
	ChanSend ChanOpKind = iota
	ChanRecv
	ChanClose
)

// ChanOp is one channel operation.
type ChanOp struct {
	Kind ChanOpKind
	// NonBlocking marks operations inside a select that has a default
	// clause — they cannot block.
	NonBlocking bool
	Held        []HeldLock
	// Local indexes Func.LocalChans when the channel is a local made
	// in this function (or its parent, for literals); -1 otherwise.
	Local int
	Pos   token.Pos
}

// WGOp is one sync.WaitGroup Add/Done/Wait call.
type WGOp struct {
	Class LockClass
	Expr  string
	Kind  string // "Add", "Done", "Wait"
	// Delta is Add's argument when constant, -1 when not statically
	// known (Done is recorded as Delta 1).
	Delta int64
	Held  []HeldLock
	Pos   token.Pos
}

// LocalChan tracks a channel made inside a function: lifecycle
// analyzers check that sends on it can complete.
type LocalChan struct {
	Name       string
	Unbuffered bool
	// Escapes is set when the channel value leaves the function (call
	// argument, return value, store into a field/global/composite):
	// unseen code may receive from it.
	Escapes bool
	Sends, Recvs, Closes int
	// NonBlockingSends counts sends guarded by select-with-default.
	NonBlockingSends int
	FirstSend        token.Pos
}

// FieldKey names a struct field by its owning defined type.
type FieldKey struct {
	Type  string // "flowguard/internal/kernelsim.Kernel"
	Field string
}

func (k FieldKey) String() string { return k.Type + "." + k.Field }

// FieldAccess is one access to an atomic-eligible struct field
// (integer/uintptr kinds sync/atomic can operate on).
type FieldAccess struct {
	Key    FieldKey
	Expr   string
	Atomic bool
	Write  bool
	Pos    token.Pos
}

// AllocKind classifies an allocation effect.
type AllocKind int

const (
	AllocBannedCall AllocKind = iota
	AllocClosure
	AllocMapLit
	AllocSliceLit
	AllocStrConcat
	AllocMake
	AllocNew
	AllocAppend
	AllocConvBox
	AllocStrConv
	AllocArgBox
)

// Alloc is one allocation-forcing construct. Msg carries the rendered
// hotpathalloc diagnostic so the analyzer's output is byte-identical
// to its pre-summary form.
type Alloc struct {
	Kind AllocKind
	Msg  string
	// FailRet marks constructs inside a return statement that also
	// returns a non-nil error — exempt on hot paths.
	FailRet bool
	Pos     token.Pos
}

// LockCopy records a lock-containing value copied into a go statement.
type LockCopy struct {
	Type string
	Pos  token.Pos
}

// Func is one function's (or function literal's) summary.
type Func struct {
	Key  FuncKey
	Name string // display name: "Check", "(*Guard).Check", "worker$1"
	Pos  token.Pos

	// Hot marks a //fg:hotpath doc annotation; Cold marks //fg:cold.
	Hot           bool
	Cold          bool
	ColdReason    string
	ColdMalformed bool

	// Lit marks a pseudo-function built from a function literal;
	// Parent is its enclosing function.
	Lit    bool
	Parent FuncKey

	Acquires     []LockUse
	AcquireEdges []AcquireEdge
	Calls        []Call
	Chans        []ChanOp
	WaitGroups   []WGOp
	LocalChans   []*LocalChan
	Fields       []FieldAccess
	Allocs       []Alloc
	GoLockCopies []LockCopy

	// Constructs lists the defined types this function builds with a
	// composite literal or new() — the constructor-shape exemption
	// for plain initialization of atomically-accessed fields.
	Constructs map[string]bool
}

// Package is the summary of one package: every function keyed and in
// stable declaration order, forming the intra-package callgraph via
// Func.Calls.
type Package struct {
	Path  string
	Funcs map[FuncKey]*Func
	Order []FuncKey
}

// Markers recognized on function doc comments.
const (
	HotMarker  = "fg:hotpath"
	ColdMarker = "fg:cold"
)

// HotAnnotated reports whether the declaration carries //fg:hotpath.
func HotAnnotated(fd *ast.FuncDecl) bool {
	return docMarker(fd.Doc, HotMarker) != nil
}

// docMarker returns the text after the marker on the matching doc
// line, or nil when absent. An empty remainder returns a non-nil empty
// slice-backed string pointer so presence and emptiness are separable.
func docMarker(doc *ast.CommentGroup, marker string) *string {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		t := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
		t = strings.TrimSpace(t)
		if rest, ok := strings.CutPrefix(t, marker); ok {
			if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
				r := strings.TrimSpace(rest)
				return &r
			}
		}
	}
	return nil
}

// Build summarizes one type-checked package.
func Build(path string, fset *token.FileSet, files []*ast.File, info *types.Info) *Package {
	p := &Package{Path: path, Funcs: make(map[FuncKey]*Func)}
	b := &builder{pkgPath: path, fset: fset, info: info, pkg: p}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			b.buildDecl(fd)
		}
	}
	return p
}

type builder struct {
	pkgPath string
	fset    *token.FileSet
	info    *types.Info
	pkg     *Package
}

// buildDecl summarizes one top-level function declaration.
func (b *builder) buildDecl(fd *ast.FuncDecl) {
	obj, _ := b.info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	fn := &Func{
		Key:        FuncKey(obj.FullName()),
		Name:       displayName(fd),
		Pos:        fd.Pos(),
		Hot:        docMarker(fd.Doc, HotMarker) != nil,
		Constructs: map[string]bool{},
	}
	if cold := docMarker(fd.Doc, ColdMarker); cold != nil {
		fn.Cold = true
		fn.ColdReason = *cold
		fn.ColdMalformed = *cold == ""
	}
	b.register(fn)
	u := &unit{b: b, fn: fn, held: nil, chans: map[types.Object]*LocalChan{}, fieldSeen: map[fieldSeenKey]bool{}}
	u.failRets = failureReturns(b.info, fd.Body)
	u.walkStmt(fd.Body)
	u.markFailRetCalls()
	b.buildAllocs(fn, fd.Recv, fd.Type, fd.Body)
}

func (b *builder) register(fn *Func) {
	b.pkg.Funcs[fn.Key] = fn
	b.pkg.Order = append(b.pkg.Order, fn.Key)
}

// displayName renders a declaration for diagnostics.
func displayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + types.ExprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

// failRange is the span of a failure-exit return statement.
type failRange struct{ lo, hi token.Pos }

// failureReturns finds return statements whose results include a
// non-nil expression of type error — hot-path constructs inside them
// are exempt, and so are calls (the process is abandoning the path).
func failureReturns(info *types.Info, body *ast.BlockStmt) []failRange {
	var out []failRange
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if returnsError(info, ret) {
			out = append(out, failRange{ret.Pos(), ret.End()})
		}
		return true
	})
	return out
}

// returnsError reports whether the return's results include a non-nil
// error-typed expression.
func returnsError(info *types.Info, ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		if id, ok := r.(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		tv, ok := info.Types[r]
		if !ok {
			continue
		}
		if named, ok := tv.Type.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}

type fieldSeenKey struct {
	key    FieldKey
	atomic bool
	write  bool
}

// unit walks one function body, tracking the held-lock set linearly
// (branches are walked in sequence: the same discipline approximation
// the original lockdiscipline analyzer used — defer x.Unlock() pins
// the lock to function end).
type unit struct {
	b    *builder
	fn   *Func
	held []HeldLock
	// chans maps local channel variables (made in this function) to
	// their lifecycle records. Literal units inherit the parent's map
	// so goroutine bodies count toward the declaring function.
	chans     map[types.Object]*LocalChan
	fieldSeen map[fieldSeenKey]bool
	failRets  []failRange
	lits      int
	// selDefault is set while walking the comm clauses of a select
	// that has a default case.
	selDefault bool
}

func (u *unit) heldCopy() []HeldLock {
	if len(u.held) == 0 {
		return nil
	}
	out := make([]HeldLock, len(u.held))
	copy(out, u.held)
	return out
}

func (u *unit) inFailRet(pos token.Pos) bool {
	for _, r := range u.failRets {
		if pos >= r.lo && pos <= r.hi {
			return true
		}
	}
	return false
}

// markFailRetCalls stamps FailRet on calls recorded inside failure
// returns (computed after the walk so the walker stays context-free).
func (u *unit) markFailRetCalls() {
	for i := range u.fn.Calls {
		if u.inFailRet(u.fn.Calls[i].Pos) {
			u.fn.Calls[i].FailRet = true
		}
	}
}

// --- statement walk ---

func (u *unit) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		u.walkStmt(s)
	}
}

func (u *unit) walkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		u.walkStmts(x.List)
	case *ast.ExprStmt:
		u.walkExpr(x.X, false)
	case *ast.SendStmt:
		u.recordChanOp(ChanSend, x.Chan, x.Pos())
		u.walkChanExpr(x.Chan)
		u.walkExpr(x.Value, false)
	case *ast.AssignStmt:
		u.walkAssign(x)
	case *ast.IncDecStmt:
		u.walkExpr(x.X, true)
	case *ast.GoStmt:
		u.walkGo(x)
	case *ast.DeferStmt:
		u.walkDefer(x)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			u.walkExpr(r, false)
		}
	case *ast.IfStmt:
		u.walkStmt(x.Init)
		u.walkExpr(x.Cond, false)
		u.walkStmt(x.Body)
		u.walkStmt(x.Else)
	case *ast.ForStmt:
		u.walkStmt(x.Init)
		if x.Cond != nil {
			u.walkExpr(x.Cond, false)
		}
		u.walkStmt(x.Post)
		u.walkStmt(x.Body)
	case *ast.RangeStmt:
		if tv, ok := u.b.info.Types[x.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				u.recordChanOp(ChanRecv, x.X, x.Pos())
			}
		}
		u.walkChanExpr(x.X)
		u.walkStmt(x.Body)
	case *ast.SelectStmt:
		u.walkSelect(x)
	case *ast.SwitchStmt:
		u.walkStmt(x.Init)
		if x.Tag != nil {
			u.walkExpr(x.Tag, false)
		}
		u.walkStmt(x.Body)
	case *ast.TypeSwitchStmt:
		u.walkStmt(x.Init)
		u.walkStmt(x.Assign)
		u.walkStmt(x.Body)
	case *ast.CaseClause:
		for _, e := range x.List {
			u.walkExpr(e, false)
		}
		u.walkStmts(x.Body)
	case *ast.CommClause:
		u.walkStmt(x.Comm)
		u.walkStmts(x.Body)
	case *ast.LabeledStmt:
		u.walkStmt(x.Stmt)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					u.registerChanDecl(vs.Names, vs.Values)
					for _, v := range vs.Values {
						u.walkExpr(v, false)
					}
				}
			}
		}
	}
}

func (u *unit) walkSelect(x *ast.SelectStmt) {
	hasDefault := false
	for _, c := range x.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	for _, c := range x.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		prev := u.selDefault
		u.selDefault = hasDefault
		u.walkStmt(cc.Comm)
		u.selDefault = prev
		u.walkStmts(cc.Body)
	}
}

func (u *unit) walkAssign(x *ast.AssignStmt) {
	if x.Tok == token.DEFINE {
		u.registerChanAssign(x)
	}
	for _, l := range x.Lhs {
		if id, ok := l.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		u.walkExpr(l, true)
	}
	for _, r := range x.Rhs {
		u.walkExpr(r, false)
	}
}

// walkGo models the go statement: lock-copy detection on the
// arguments, a spawned Call edge, and the literal body (if any) as a
// pseudo-function of its own.
func (u *unit) walkGo(x *ast.GoStmt) {
	for _, arg := range x.Call.Args {
		if tv, ok := u.b.info.Types[arg]; ok && containsMutex(tv.Type, map[types.Type]bool{}) {
			u.fn.GoLockCopies = append(u.fn.GoLockCopies, LockCopy{Type: tv.Type.String(), Pos: arg.Pos()})
		}
		u.walkExpr(arg, false)
	}
	u.recordCallShape(x.Call, true, false)
}

func (u *unit) walkDefer(x *ast.DeferStmt) {
	// defer x.Unlock(): the lock is held to function end — leave it
	// in the held set for the rest of the walk.
	if _, _, op, ok := u.b.lockCall(x.Call); ok && (op == "Unlock" || op == "RUnlock") {
		return
	}
	// defer wg.Done() / defer close(ch): the canonical forms — record
	// the op itself, not just an opaque call.
	if wg, ok := u.b.wgCall(x.Call); ok {
		wg.Held = u.heldCopy()
		u.fn.WaitGroups = append(u.fn.WaitGroups, *wg)
		return
	}
	if id, ok := ast.Unparen(x.Call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, isBuiltin := u.b.info.Uses[id].(*types.Builtin); isBuiltin && len(x.Call.Args) == 1 {
			u.recordChanOp(ChanClose, x.Call.Args[0], x.Call.Pos())
			u.walkChanExpr(x.Call.Args[0])
			return
		}
	}
	for _, arg := range x.Call.Args {
		u.walkExpr(arg, false)
	}
	u.recordCallShape(x.Call, false, true)
}

// recordCallShape records a go/deferred call without re-walking its
// arguments: literals become pseudo-functions, everything else a Call.
func (u *unit) recordCallShape(call *ast.CallExpr, isGo, isDefer bool) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		key := u.buildLit(lit)
		u.fn.Calls = append(u.fn.Calls, Call{
			Callee: key, Name: string(key), Go: isGo, Deferred: isDefer,
			Held: u.heldCopy(), Pos: call.Pos(),
		})
		return
	}
	u.recordCall(call, isGo, isDefer)
	u.walkExpr(call.Fun, false)
}

// --- expression walk ---

// walkChanExpr walks a channel-operand expression without counting the
// use as an escape.
func (u *unit) walkChanExpr(e ast.Expr) {
	if _, ok := ast.Unparen(e).(*ast.Ident); ok {
		return // the op itself was recorded; a bare ident is no escape
	}
	u.walkExpr(e, false)
}

func (u *unit) walkExpr(e ast.Expr, write bool) {
	switch x := e.(type) {
	case nil:
	case *ast.Ident:
		// Only a *use* of a tracked channel counts as an escape — the
		// defining ident in `ch := make(chan T)` is not a leak.
		if obj := u.b.info.Uses[x]; obj != nil {
			if lc := u.chans[obj]; lc != nil {
				lc.Escapes = true
			}
		}
	case *ast.ParenExpr:
		u.walkExpr(x.X, write)
	case *ast.SelectorExpr:
		u.recordFieldAccess(x, write, false)
		u.walkExpr(x.X, false)
	case *ast.StarExpr:
		u.walkExpr(x.X, write)
	case *ast.UnaryExpr:
		switch x.Op {
		case token.ARROW:
			u.recordChanOp(ChanRecv, x.X, x.Pos())
			u.walkChanExpr(x.X)
		case token.AND:
			// &x.f: address taken — treated as a (potential) write.
			if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok {
				u.recordFieldAccess(sel, true, false)
				u.walkExpr(sel.X, false)
			} else {
				u.walkExpr(x.X, false)
			}
		default:
			u.walkExpr(x.X, write)
		}
	case *ast.BinaryExpr:
		u.walkExpr(x.X, false)
		u.walkExpr(x.Y, false)
	case *ast.IndexExpr:
		u.walkExpr(x.X, write)
		u.walkExpr(x.Index, false)
	case *ast.SliceExpr:
		u.walkExpr(x.X, write)
		u.walkExpr(x.Low, false)
		u.walkExpr(x.High, false)
		u.walkExpr(x.Max, false)
	case *ast.TypeAssertExpr:
		u.walkExpr(x.X, false)
	case *ast.KeyValueExpr:
		u.walkExpr(x.Value, false)
	case *ast.CompositeLit:
		u.recordConstruct(x)
		for _, el := range x.Elts {
			u.walkExpr(el, false)
		}
	case *ast.FuncLit:
		key := u.buildLit(x)
		u.fn.Calls = append(u.fn.Calls, Call{
			Callee: key, Name: string(key), Held: u.heldCopy(), Pos: x.Pos(),
		})
	case *ast.CallExpr:
		u.walkCall(x)
	}
}

// walkCall classifies one call expression and walks its operands.
func (u *unit) walkCall(call *ast.CallExpr) {
	// Lock/Unlock on a mutex: update the held set.
	if class, expr, op, ok := u.b.lockCall(call); ok {
		u.fn.Acquires = append(u.fn.Acquires, LockUse{Class: class, Expr: expr, Op: op, Pos: call.Pos()})
		switch op {
		case "Lock", "RLock":
			for _, h := range u.held {
				if h.Class != class {
					u.fn.AcquireEdges = append(u.fn.AcquireEdges, AcquireEdge{
						From: h.Class, To: class, FromExpr: h.Expr, ToExpr: expr, Pos: call.Pos(),
					})
				}
			}
			u.held = append(u.held, HeldLock{Class: class, Expr: expr})
		case "Unlock", "RUnlock":
			for i := len(u.held) - 1; i >= 0; i-- {
				if u.held[i].Expr == expr {
					u.held = append(u.held[:i], u.held[i+1:]...)
					break
				}
			}
		}
		return
	}
	// WaitGroup ops.
	if wg, ok := u.b.wgCall(call); ok {
		wg.Held = u.heldCopy()
		u.fn.WaitGroups = append(u.fn.WaitGroups, *wg)
		for _, arg := range call.Args {
			u.walkExpr(arg, false)
		}
		return
	}
	// sync/atomic calls on struct fields.
	if u.recordAtomicCall(call) {
		return
	}
	// close(ch).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, isBuiltin := u.b.info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) == 1 {
			u.recordChanOp(ChanClose, call.Args[0], call.Pos())
			u.walkChanExpr(call.Args[0])
			return
		}
	}
	// Immediately-invoked literal: func(){...}().
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		key := u.buildLit(lit)
		u.fn.Calls = append(u.fn.Calls, Call{Callee: key, Name: string(key), Held: u.heldCopy(), Pos: call.Pos()})
		for _, arg := range call.Args {
			u.walkExpr(arg, false)
		}
		return
	}
	u.recordCall(call, false, false)
	u.walkExpr(call.Fun, false)
	for _, arg := range call.Args {
		u.walkExpr(arg, false)
	}
}

// recordCall resolves the callee and appends a Call (skipping builtins
// and type conversions, which are not call edges).
func (u *unit) recordCall(call *ast.CallExpr, isGo, isDefer bool) {
	if tv, ok := u.b.info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = u.b.info.Uses[fun]
	case *ast.SelectorExpr:
		obj = u.b.info.Uses[fun.Sel]
	}
	c := Call{Name: types.ExprString(call.Fun), Go: isGo, Deferred: isDefer, Held: u.heldCopy(), Pos: call.Pos()}
	switch o := obj.(type) {
	case *types.Builtin:
		return
	case *types.Func:
		c.Callee = FuncKey(o.FullName())
		if sig, ok := o.Type().(*types.Signature); ok && sig.Recv() != nil {
			if types.IsInterface(sig.Recv().Type()) {
				c.Iface = true
				c.Callee = "" // dynamically dispatched: no static edge
			}
		}
	case *types.Var:
		if _, isSig := o.Type().Underlying().(*types.Signature); isSig {
			c.Dynamic = true
		} else {
			return
		}
	default:
		// Unresolved shape (method value call, etc.): treat as dynamic
		// only if it is a function-typed expression.
		if tv, ok := u.b.info.Types[call.Fun]; ok {
			if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
				c.Dynamic = true
			} else {
				return
			}
		} else {
			return
		}
	}
	u.fn.Calls = append(u.fn.Calls, c)
}

// buildLit summarizes a function literal as a pseudo-function. The
// literal shares the parent's local-channel map (a goroutine body's
// sends count toward the declaring function) but starts with an empty
// held-lock set: it runs later, outside the creation-site region.
func (u *unit) buildLit(lit *ast.FuncLit) FuncKey {
	u.lits++
	key := FuncKey(string(u.fn.Key) + "$" + itoa(u.lits))
	fn := &Func{
		Key: key, Name: u.fn.Name + "$" + itoa(u.lits), Pos: lit.Pos(),
		Lit: true, Parent: u.fn.Key, Constructs: map[string]bool{},
	}
	u.b.register(fn)
	lu := &unit{b: u.b, fn: fn, chans: u.chans, fieldSeen: map[fieldSeenKey]bool{}}
	lu.failRets = failureReturns(u.b.info, lit.Body)
	lu.walkStmt(lit.Body)
	lu.markFailRetCalls()
	u.b.buildAllocs(fn, nil, lit.Type, lit.Body)
	return key
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- channel helpers ---

func (u *unit) localChan(id *ast.Ident) *LocalChan {
	obj := u.b.info.Uses[id]
	if obj == nil {
		obj = u.b.info.Defs[id]
	}
	if obj == nil {
		return nil
	}
	return u.chans[obj]
}

func (u *unit) registerChanAssign(x *ast.AssignStmt) {
	if len(x.Lhs) != len(x.Rhs) {
		return
	}
	for i, l := range x.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		u.registerChanMake(id, x.Rhs[i])
	}
}

func (u *unit) registerChanDecl(names []*ast.Ident, values []ast.Expr) {
	if len(names) != len(values) {
		return
	}
	for i, id := range names {
		u.registerChanMake(id, values[i])
	}
}

// registerChanMake tracks `ch := make(chan T[, n])`.
func (u *unit) registerChanMake(id *ast.Ident, rhs ast.Expr) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fid.Name != "make" {
		return
	}
	if _, isBuiltin := u.b.info.Uses[fid].(*types.Builtin); !isBuiltin || len(call.Args) == 0 {
		return
	}
	tv, ok := u.b.info.Types[call]
	if !ok {
		return
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return
	}
	obj := u.b.info.Defs[id]
	if obj == nil {
		return
	}
	unbuffered := true
	if len(call.Args) >= 2 {
		if ctv, ok := u.b.info.Types[call.Args[1]]; ok && ctv.Value != nil {
			if v, exact := constant.Int64Val(ctv.Value); exact && v > 0 {
				unbuffered = false
			}
		} else {
			unbuffered = false // non-constant capacity: assume buffered
		}
	}
	lc := &LocalChan{Name: id.Name, Unbuffered: unbuffered}
	u.chans[obj] = lc
	u.fn.LocalChans = append(u.fn.LocalChans, lc)
}

func (u *unit) recordChanOp(kind ChanOpKind, ch ast.Expr, pos token.Pos) {
	op := ChanOp{Kind: kind, NonBlocking: u.selDefault, Held: u.heldCopy(), Local: -1, Pos: pos}
	if id, ok := ast.Unparen(ch).(*ast.Ident); ok {
		if lc := u.localChan(id); lc != nil {
			for i, c := range u.fn.LocalChans {
				if c == lc {
					op.Local = i
					break
				}
			}
			switch kind {
			case ChanSend:
				lc.Sends++
				if u.selDefault {
					lc.NonBlockingSends++
				}
				if lc.FirstSend == token.NoPos {
					lc.FirstSend = pos
				}
			case ChanRecv:
				lc.Recvs++
			case ChanClose:
				lc.Closes++
			}
		}
	}
	u.fn.Chans = append(u.fn.Chans, op)
}

// --- lock/waitgroup resolution ---

// lockCall classifies call as Lock/RLock/Unlock/RUnlock on a
// sync.Mutex/RWMutex value and resolves its class.
func (b *builder) lockCall(call *ast.CallExpr) (class LockClass, expr, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", "", false
	}
	tv, found := b.info.Types[sel.X]
	if !found || !mutexType(tv.Type) {
		return "", "", "", false
	}
	return b.lockClassOf(sel.X), types.ExprString(sel.X), sel.Sel.Name, true
}

// wgCall classifies Add/Done/Wait on a sync.WaitGroup.
func (b *builder) wgCall(call *ast.CallExpr) (*WGOp, bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false
	}
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return nil, false
	}
	tv, found := b.info.Types[sel.X]
	if !found || !namedSyncType(tv.Type, "WaitGroup") {
		return nil, false
	}
	op := &WGOp{
		Class: b.lockClassOf(sel.X), Expr: types.ExprString(sel.X),
		Kind: sel.Sel.Name, Delta: -1, Pos: call.Pos(),
	}
	switch sel.Sel.Name {
	case "Done":
		op.Delta = 1
	case "Add":
		if len(call.Args) == 1 {
			if atv, ok := b.info.Types[call.Args[0]]; ok && atv.Value != nil {
				if v, exact := constant.Int64Val(atv.Value); exact {
					op.Delta = v
				}
			}
		}
	}
	return op, true
}

// lockClassOf names the mutex/waitgroup value's class: owning defined
// type + field for struct fields, package path + name for package-level
// variables, a function-local fallback otherwise.
func (b *builder) lockClassOf(e ast.Expr) LockClass {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := b.info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				return LockClass(named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name)
			}
		}
		// Package-qualified variable: pkg.mu.
		if obj, ok := b.info.Uses[x.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return LockClass(obj.Pkg().Path() + "." + obj.Name())
		}
	case *ast.Ident:
		if obj, ok := b.info.Uses[x].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return LockClass(obj.Pkg().Path() + "." + obj.Name())
		}
	}
	return LockClass(b.pkgPath + "#local:" + types.ExprString(e))
}

// mutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func mutexType(t types.Type) bool {
	return namedSyncType(t, "Mutex") || namedSyncType(t, "RWMutex")
}

func namedSyncType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == name
}

// containsMutex reports whether copying a value of type t copies a
// mutex.
func containsMutex(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if mutexType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutex(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutex(u.Elem(), seen)
	}
	return false
}

// --- atomic/plain field accesses ---

// atomicFns maps sync/atomic function names to whether they write.
var atomicFns = map[string]bool{
	"LoadInt32": false, "LoadInt64": false, "LoadUint32": false,
	"LoadUint64": false, "LoadUintptr": false, "LoadPointer": false,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true,
	"StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"AddInt32": true, "AddInt64": true, "AddUint32": true,
	"AddUint64": true, "AddUintptr": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true,
	"SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true,
	"CompareAndSwapUint32": true, "CompareAndSwapUint64": true,
	"CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

// recordAtomicCall records atomic.Xxx(&s.f, ...) as an atomic field
// access and reports whether the call was one.
func (u *unit) recordAtomicCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	write, known := atomicFns[sel.Sel.Name]
	if !known {
		return false
	}
	pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := u.b.info.Uses[pkgID].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return false
	}
	if len(call.Args) > 0 {
		if un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && un.Op == token.AND {
			if fsel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
				u.recordFieldAccess(fsel, write, true)
				u.walkExpr(fsel.X, false)
			}
		}
	}
	for _, arg := range call.Args[min(1, len(call.Args)):] {
		u.walkExpr(arg, false)
	}
	return true
}

// recordFieldAccess records a struct-field access when the field's
// type is atomic-eligible, deduplicated per (field, atomic, write).
func (u *unit) recordFieldAccess(sel *ast.SelectorExpr, write, atomic bool) {
	selection, ok := u.b.info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	fieldObj := selection.Obj()
	if !atomicEligible(fieldObj.Type()) {
		return
	}
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	key := FieldKey{Type: named.Obj().Pkg().Path() + "." + named.Obj().Name(), Field: sel.Sel.Name}
	sk := fieldSeenKey{key: key, atomic: atomic, write: write}
	if u.fieldSeen[sk] {
		return
	}
	u.fieldSeen[sk] = true
	u.fn.Fields = append(u.fn.Fields, FieldAccess{
		Key: key, Expr: types.ExprString(sel), Atomic: atomic, Write: write, Pos: sel.Pos(),
	})
}

// atomicEligible reports whether sync/atomic has functions operating
// on the field's kind.
func atomicEligible(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr, types.UnsafePointer:
		return true
	}
	return false
}

// recordConstruct notes composite literals of defined struct types —
// the constructor-shape evidence atomicfield's exemption consults.
func (u *unit) recordConstruct(cl *ast.CompositeLit) {
	tv, ok := u.b.info.Types[cl]
	if !ok {
		return
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		if _, isStruct := named.Underlying().(*types.Struct); isStruct {
			u.fn.Constructs[named.Obj().Pkg().Path()+"."+named.Obj().Name()] = true
		}
	}
}
