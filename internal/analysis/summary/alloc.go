// Allocation-effect extraction: a port of the hotpathalloc walk that
// records Alloc facts instead of reporting diagnostics. Every function
// gets the walk — not just //fg:hotpath ones — because the
// interprocedural analyzer needs to know whether an *unannotated*
// helper allocates when it is reached transitively from a hot root.
// The rendered messages are kept byte-identical to the original
// analyzer so re-grounding hotpathalloc on summaries changes nothing
// observable.

package summary

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// BannedPackages always allocate (or force callbacks) and have no
// business on a hot path.
var BannedPackages = map[string]bool{
	"fmt":     true,
	"errors":  true,
	"sort":    true,
	"strconv": true,
}

// buildAllocs records fn's allocation-forcing constructs.
func (b *builder) buildAllocs(fn *Func, recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt) {
	c := &allocWalker{b: b, fn: fn, derived: b.derivedSet(recv, ftype, body)}
	c.walk(body, false)
}

// derivedSet computes the function's scratch roots: the receiver, the
// parameters, named results, and every local provably derived from one
// of them (w := &g.win; buf := chunk; nb := append(w.buf, ...)).
// Appending through such a root reuses caller- or receiver-owned
// storage and is amortized allocation-free.
func (b *builder) derivedSet(recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt) map[types.Object]bool {
	derived := make(map[types.Object]bool)
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := b.info.Defs[name]; obj != nil {
					derived[obj] = true
				}
			}
		}
	}
	addField(recv)
	addField(ftype.Params)
	addField(ftype.Results)

	exprDerived := func(e ast.Expr) bool {
		root := rootIdent(e)
		if root == nil {
			return false
		}
		obj := b.info.Uses[root.id]
		if obj == nil {
			obj = b.info.Defs[root.id]
		}
		return obj != nil && derived[obj]
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := b.info.Defs[id]
				if obj == nil {
					obj = b.info.Uses[id]
				}
				if obj == nil || derived[obj] {
					continue
				}
				if exprDerived(as.Rhs[i]) {
					derived[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return derived
}

// root is the base identifier an expression ultimately reads.
type root struct{ id *ast.Ident }

// rootIdent peels selectors, indexing, slicing, derefs, address-of and
// append calls down to the storage-owning identifier.
func rootIdent(e ast.Expr) *root {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return &root{id: x}
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
				e = x.Args[0]
				continue
			}
			return nil
		default:
			return nil
		}
	}
}

type allocWalker struct {
	b       *builder
	fn      *Func
	derived map[types.Object]bool
}

func (c *allocWalker) record(kind AllocKind, pos token.Pos, inFailRet bool, format string, args ...any) {
	c.fn.Allocs = append(c.fn.Allocs, Alloc{
		Kind: kind, Msg: fmt.Sprintf(format, args...), FailRet: inFailRet, Pos: pos,
	})
}

// walk traverses the body recording allocation-forcing constructs.
// inFailRet marks descent through a return statement that also returns
// a non-nil error — the exempt failure-exit shape (recorded with the
// FailRet flag rather than dropped, so consumers choose).
func (c *allocWalker) walk(n ast.Node, inFailRet bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			if !inFailRet && returnsError(c.b.info, x) {
				for _, r := range x.Results {
					c.walk(r, true)
				}
				return false
			}
		case *ast.FuncLit:
			c.record(AllocClosure, x.Pos(), inFailRet, "closure on the hot path: func literals allocate and defeat inlining")
			return false
		case *ast.CompositeLit:
			switch c.typeOf(x).Underlying().(type) {
			case *types.Map:
				c.record(AllocMapLit, x.Pos(), inFailRet, "map literal allocates on the hot path")
			case *types.Slice:
				c.record(AllocSliceLit, x.Pos(), inFailRet, "slice literal allocates on the hot path")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := c.b.info.Types[x]; ok && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						c.record(AllocStrConcat, x.Pos(), inFailRet, "string concatenation allocates on the hot path")
					}
				}
			}
		case *ast.CallExpr:
			return c.checkCall(x, inFailRet)
		}
		return true
	})
}

func (c *allocWalker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.b.info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

// checkCall records banned-package calls, builtin allocators,
// non-scratch appends, and interface boxing at the call site. It
// reports whether the walk should descend into the call's children: a
// banned-package call is recorded once, without also flagging the
// constructs inside its arguments (fixing the call removes them too).
func (c *allocWalker) checkCall(call *ast.CallExpr, inFailRet bool) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := c.b.info.Uses[id].(*types.PkgName); ok && BannedPackages[pn.Imported().Path()] {
				c.record(AllocBannedCall, call.Pos(), inFailRet,
					"call to %s.%s on the hot path: %s allocates (hoist into an unannotated cold helper)",
					pn.Imported().Path(), sel.Sel.Name, pn.Imported().Path())
				return false
			}
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "make":
			if c.isBuiltin(id) {
				c.record(AllocMake, call.Pos(), inFailRet, "make allocates on the hot path (reuse scratch storage instead)")
				return true
			}
		case "new":
			if c.isBuiltin(id) {
				c.record(AllocNew, call.Pos(), inFailRet, "new allocates on the hot path")
				return true
			}
		case "append":
			if c.isBuiltin(id) {
				c.checkAppend(call, inFailRet)
				return true
			}
		}
	}
	if tv, ok := c.b.info.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type, inFailRet)
		return true
	}
	c.checkArgBoxing(call, inFailRet)
	return true
}

func (c *allocWalker) isBuiltin(id *ast.Ident) bool {
	_, ok := c.b.info.Uses[id].(*types.Builtin)
	return ok
}

// checkAppend allows appends routed through caller/receiver-owned
// scratch and records the rest.
func (c *allocWalker) checkAppend(call *ast.CallExpr, inFailRet bool) {
	if len(call.Args) == 0 {
		return
	}
	base := call.Args[0]
	r := rootIdent(base)
	if r != nil {
		obj := c.b.info.Uses[r.id]
		if obj == nil {
			obj = c.b.info.Defs[r.id]
		}
		if obj != nil && c.derived[obj] {
			return
		}
	}
	c.record(AllocAppend, call.Pos(), inFailRet,
		"append to a non-scratch slice allocates per call on the hot path (append into receiver- or caller-owned storage)")
}

// checkConversion records T(x) conversions that box or copy.
func (c *allocWalker) checkConversion(call *ast.CallExpr, target types.Type, inFailRet bool) {
	if len(call.Args) != 1 {
		return
	}
	argT := c.typeOf(call.Args[0])
	if types.IsInterface(target.Underlying()) && !types.IsInterface(argT.Underlying()) && !isNil(call.Args[0]) {
		c.record(AllocConvBox, call.Pos(), inFailRet, "conversion boxes %s into %s on the hot path", argT, target)
		return
	}
	if b, ok := target.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		if _, ok := argT.Underlying().(*types.Slice); ok {
			c.record(AllocStrConv, call.Pos(), inFailRet, "string conversion copies the byte slice on the hot path")
		}
	}
}

// checkArgBoxing records concrete values passed to interface
// parameters.
func (c *allocWalker) checkArgBoxing(call *ast.CallExpr, inFailRet bool) {
	sig, ok := c.typeOf(call.Fun).Underlying().(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos {
		return // spreading an existing slice does not box per element
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := c.typeOf(arg)
		if types.IsInterface(pt.Underlying()) && !types.IsInterface(at.Underlying()) && !isNil(arg) {
			c.record(AllocArgBox, arg.Pos(), inFailRet, "argument boxes %s into interface parameter on the hot path", at)
		}
	}
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
