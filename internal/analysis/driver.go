package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one driver-level result: a diagnostic resolved to a file
// position, with suppression state attached.
type Finding struct {
	Analyzer   string
	Position   token.Position
	Message    string
	Suppressed bool
	// SuppressReason is the documented justification when Suppressed.
	SuppressReason string
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
	if f.Suppressed {
		s += " (suppressed: " + f.SuppressReason + ")"
	}
	return s
}

// ignoreDirective is one parsed //fg:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	line     int
	used     bool
	pos      token.Position
}

// collectIgnores parses the //fg:ignore directives of a file. A
// directive with no analyzer name or no reason is reported as a
// finding itself: suppressions must say what they suppress and why.
func collectIgnores(fset *token.FileSet, f *ast.File) (dirs []*ignoreDirective, bad []Finding) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//fg:ignore")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(text)
			if len(fields) < 2 {
				bad = append(bad, Finding{
					Analyzer: "fgvet",
					Position: pos,
					Message:  "malformed //fg:ignore: want \"//fg:ignore <analyzer> <reason>\"",
				})
				continue
			}
			dirs = append(dirs, &ignoreDirective{
				analyzer: fields[0],
				reason:   strings.Join(fields[1:], " "),
				line:     pos.Line,
				pos:      pos,
			})
		}
	}
	return dirs, bad
}

// Run executes the analyzers over one loaded package in isolation —
// no cross-package facts. Interprocedural analyzers see only their own
// package's summary. For dependency-ordered multi-package runs use
// RunPkg with a shared FactStore.
func Run(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	return RunPkg(pkg, analyzers, NewFactStore())
}

// RunPkg executes the analyzers over one loaded package against a
// shared fact store and resolves suppressions. Callers drive packages
// in dependency order (go list -deps emits exactly that), so the facts
// a package's dependencies exported are in the store before the
// package runs. Every unused //fg:ignore directive is itself reported:
// a suppression that no longer suppresses anything is stale and must
// be deleted, so suppressions can never outlive the finding they
// documented.
func RunPkg(pkg *Package, analyzers []*Analyzer, store *FactStore) ([]Finding, error) {
	var ignores []*ignoreDirective
	var findings []Finding
	for _, f := range pkg.Files {
		dirs, bad := collectIgnores(pkg.Fset, f)
		ignores = append(ignores, dirs...)
		findings = append(findings, bad...)
	}
	for _, a := range analyzers {
		if a.Needs&(NeedTypes|NeedSummaries) != 0 && pkg.Types == nil {
			return nil, fmt.Errorf("analyzer %s needs types but package %s was loaded syntax-only", a.Name, pkg.Path)
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			PkgPath:   pkg.Path,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			store:     store,
		}
		if a.Needs&NeedSummaries != 0 {
			pass.Sum = pkg.Summary()
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.Path, err)
		}
		if pass.export != nil {
			if a.Facts == nil {
				return nil, fmt.Errorf("analyzer %s exported a fact but has no Facts prototype", a.Name)
			}
			if err := store.set(a.Name, pkg.Path, pass.export); err != nil {
				return nil, err
			}
		}
		for _, d := range pass.Diagnostics() {
			fd := Finding{
				Analyzer: a.Name,
				Position: pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			}
			if dir := matchIgnore(ignores, a.Name, fd.Position); dir != nil {
				dir.used = true
				fd.Suppressed = true
				fd.SuppressReason = dir.reason
			}
			findings = append(findings, fd)
		}
	}
	for _, dir := range ignores {
		if !dir.used {
			findings = append(findings, Finding{
				Analyzer: "fgvet",
				Position: dir.pos,
				Message:  fmt.Sprintf("stale //fg:ignore %s: no %s finding on this or the next line", dir.analyzer, dir.analyzer),
			})
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}

// matchIgnore finds a directive for the analyzer sitting on the
// finding's line (trailing comment) or the line above it (standalone
// comment).
func matchIgnore(dirs []*ignoreDirective, analyzer string, pos token.Position) *ignoreDirective {
	for _, d := range dirs {
		if d.analyzer != analyzer {
			continue
		}
		if samePosFile(d.pos, pos) && (d.line == pos.Line || d.line == pos.Line-1) {
			return d
		}
	}
	return nil
}

func samePosFile(a, b token.Position) bool { return a.Filename == b.Filename }
