package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"

	"flowguard/internal/analysis/summary"
)

// Package is one loaded (and, when requested, type-checked) package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	// Types and Info are nil when the package was loaded syntax-only.
	Types *types.Package
	Info  *types.Info
	// FactsOnly marks an in-module dependency loaded only so
	// interprocedural analyzers can export its facts: drivers run the
	// analyzers but discard its findings (the package was not part of
	// the requested pattern).
	FactsOnly bool

	sumOnce sync.Once
	sum     *summary.Package
}

// Summary returns the package's function-effect summaries, built on
// first use (requires a type-checked package).
func (p *Package) Summary() *summary.Package {
	p.sumOnce.Do(func() {
		p.sum = summary.Build(p.Path, p.Fset, p.Files, p.Info)
	})
	return p.sum
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Loader resolves and type-checks module packages from source, using
// the build cache's export data (via `go list -export`) for every
// dependency — the same offline-friendly technique the go vet driver
// uses, built only on the standard library.
type Loader struct {
	// Dir is the module root the go tool runs in.
	Dir string

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	imp     types.Importer
	fset    *token.FileSet
	// extra holds type-checked packages registered via AddPackage —
	// fixture packages with no export data, so cross-package
	// interprocedural fixtures can import one another.
	extra map[string]*types.Package
}

// AddPackage registers an already-type-checked package (typically a
// fixture loaded with LoadDir) so later LoadDir calls can resolve
// imports of its path. Fixture packages never have build-cache export
// data; this is the substitute.
func (l *Loader) AddPackage(tp *types.Package) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.extra == nil {
		l.extra = make(map[string]*types.Package)
	}
	l.extra[tp.Path()] = tp
}

// chainImporter resolves imports from the loader's in-memory extras
// first, then falls back to export data.
type chainImporter struct{ l *Loader }

func (c chainImporter) Import(path string) (*types.Package, error) {
	c.l.mu.Lock()
	tp, ok := c.l.extra[path]
	c.l.mu.Unlock()
	if ok {
		return tp, nil
	}
	return c.l.imp.Import(path)
}

// NewLoader returns a loader rooted at dir (a directory inside the
// target module).
func NewLoader(dir string) *Loader { return &Loader{Dir: dir} }

// goList runs the go tool and decodes its JSON package stream.
func (l *Loader) goList(patterns ...string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Error",
		"-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ensureImporter populates the export-data map and the gc importer.
// The std pattern is included so analysistest fixtures may import any
// standard-library package, not only those the module already uses.
func (l *Loader) ensureImporter() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.imp != nil {
		return nil
	}
	pkgs, err := l.goList("std", "./...")
	if err != nil {
		return err
	}
	l.exports = make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	l.fset = token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (package failed to build?)", path)
		}
		return os.Open(f)
	}
	l.imp = importer.ForCompiler(l.fset, "gc", lookup)
	return nil
}

// newInfo returns a types.Info with every map analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load parses and type-checks the module packages matching patterns
// (non-test files only), in dependency order: `go list -deps` emits a
// post-order walk, so a package always appears after every package it
// imports — the order a fact-driven interprocedural driver needs.
// In-module packages pulled in only as dependencies of the patterns
// are included too, marked FactsOnly, so their exported facts exist
// even when the requested pattern is a subset of the module. Type
// errors are returned, not ignored: the analyzers assume a compiling
// package.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if err := l.ensureImporter(); err != nil {
		return nil, err
	}
	listed, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	rootDir, err := filepath.Abs(l.Dir)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range listed {
		if lp.Standard {
			continue
		}
		if lp.DepOnly && !strings.HasPrefix(lp.Dir, rootDir+string(filepath.Separator)) && lp.Dir != rootDir {
			continue // out-of-module dependency: export data suffices
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := l.checkFiles(lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.FactsOnly = lp.DepOnly
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks the .go files in one directory that
// is not necessarily a listable package (analysistest fixtures live in
// testdata, which the go tool skips). pkgPath becomes the checked
// package's import path, letting fixtures impersonate e.g. a package
// under internal/oracle.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	if err := l.ensureImporter(); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if n := e.Name(); filepath.Ext(n) == ".go" {
			files = append(files, n)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return l.checkFiles(pkgPath, dir, files)
}

// ParseDir parses (without type-checking) the non-test .go files of a
// directory — the syntax-only path used by analyzers with
// no type needs and by thin runtime wrappers in tests.
func ParseDir(dir, pkgPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pkg := &Package{Path: pkgPath, Dir: dir, Fset: fset}
	for _, e := range ents {
		n := e.Name()
		if filepath.Ext(n) != ".go" || isTestFile(n) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("no non-test .go files in %s", dir)
	}
	return pkg, nil
}

func isTestFile(name string) bool {
	return len(name) > len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// checkFiles parses and type-checks one file set as a package.
func (l *Loader) checkFiles(pkgPath, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: chainImporter{l}}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return &Package{Path: pkgPath, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}
