// Package hotpathalloc statically enforces the zero-allocation
// contract of FlowGuard's fast path. The paper's performance argument
// (§5.3, §7.2.2) depends on the per-endpoint packet scan and ITC-CFG
// binary searches staying allocation-free in steady state; functions
// annotated with a
//
//	//fg:hotpath
//
// doc-comment line are held to it. The analyzer rejects
// allocation-forcing constructs inside annotated functions:
//
//   - calls into fmt, errors, sort, strconv (formatting always
//     allocates; sort's callbacks defeat inlining on a per-probe path)
//   - closures (func literals)
//   - map/slice composite literals, make, new
//   - string concatenation and string([]byte) conversions
//   - implicit or explicit boxing into interface values
//   - append whose base slice is not caller- or receiver-owned scratch
//     (appending into reused storage is amortized-free; appending into
//     a fresh local allocates every call)
//
// One shape is exempt: constructs inside a `return` statement that
// also returns a non-nil error. Failure exits abandon the fast path —
// the process is about to be killed or the window resynchronized — so
// building the error there is deliberate and harmless. Anything else
// needs a documented //fg:ignore.
//
// The check is per-construct, not transitive: a call to an ordinary
// unannotated function is allowed, which is also the sanctioned escape
// hatch — hoist cold allocating work (violation diagnostics, say) into
// a helper and keep the annotated loop clean. The transitive
// obligation is enforced separately by the hotpathalloc-interproc
// analyzer, which propagates the annotation through the callgraph.
//
// Since fgvet v2 the per-construct walk lives in the summary package
// (allocation effects are recorded for every function, annotated or
// not, because the interprocedural analyzer needs them); this analyzer
// reports the recorded effects of //fg:hotpath functions unchanged.
package hotpathalloc

import (
	"flowguard/internal/analysis"
	"flowguard/internal/analysis/summary"
)

// Marker is the doc-comment line that opts a function into the check.
const Marker = summary.HotMarker

// BannedPackages always allocate (or force callbacks) and have no
// business on a hot path.
var BannedPackages = summary.BannedPackages

// Analyzer is the hotpathalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "functions annotated //fg:hotpath must not contain allocation-forcing " +
		"constructs (fmt, closures, map/slice literals, interface boxing, non-scratch append)",
	Needs: analysis.NeedSummaries,
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, key := range pass.Sum.Order {
		fn := pass.Sum.Funcs[key]
		if !fn.Hot {
			continue
		}
		for _, a := range fn.Allocs {
			if a.FailRet {
				continue // sanctioned failure-exit shape
			}
			pass.Reportf(a.Pos, "%s", a.Msg)
		}
	}
	return nil
}
