// Package hotpathalloc statically enforces the zero-allocation
// contract of FlowGuard's fast path. The paper's performance argument
// (§5.3, §7.2.2) depends on the per-endpoint packet scan and ITC-CFG
// binary searches staying allocation-free in steady state; functions
// annotated with a
//
//	//fg:hotpath
//
// doc-comment line are held to it. The analyzer rejects
// allocation-forcing constructs inside annotated functions:
//
//   - calls into fmt, errors, sort, strconv (formatting always
//     allocates; sort's callbacks defeat inlining on a per-probe path)
//   - closures (func literals)
//   - map/slice composite literals, make, new
//   - string concatenation and string([]byte) conversions
//   - implicit or explicit boxing into interface values
//   - append whose base slice is not caller- or receiver-owned scratch
//     (appending into reused storage is amortized-free; appending into
//     a fresh local allocates every call)
//
// One shape is exempt: constructs inside a `return` statement that
// also returns a non-nil error. Failure exits abandon the fast path —
// the process is about to be killed or the window resynchronized — so
// building the error there is deliberate and harmless. Anything else
// needs a documented //fg:ignore.
//
// The check is per-construct, not transitive: a call to an ordinary
// unannotated function is allowed, which is also the sanctioned escape
// hatch — hoist cold allocating work (violation diagnostics, say) into
// a helper and keep the annotated loop clean.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"flowguard/internal/analysis"
)

// Marker is the doc-comment line that opts a function into the check.
const Marker = "fg:hotpath"

// BannedPackages always allocate (or force callbacks) and have no
// business on a hot path.
var BannedPackages = map[string]bool{
	"fmt":     true,
	"errors":  true,
	"sort":    true,
	"strconv": true,
}

// Analyzer is the hotpathalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "functions annotated //fg:hotpath must not contain allocation-forcing " +
		"constructs (fmt, closures, map/slice literals, interface boxing, non-scratch append)",
	NeedTypes: true,
	Run:       run,
}

// Annotated reports whether the declaration carries the marker.
func Annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		t := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
		if strings.HasPrefix(strings.TrimSpace(t), Marker) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !Annotated(fd) {
				continue
			}
			c := &checker{pass: pass, derived: derivedSet(pass, fd)}
			c.walk(fd.Body, false)
		}
	}
	return nil
}

// derivedSet computes the function's scratch roots: the receiver, the
// parameters, named results, and every local provably derived from one
// of them (w := &g.win; buf := chunk; nb := append(w.buf, ...)).
// Appending through such a root reuses caller- or receiver-owned
// storage and is amortized allocation-free.
func derivedSet(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	derived := make(map[types.Object]bool)
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					derived[obj] = true
				}
			}
		}
	}
	addField(fd.Recv)
	addField(fd.Type.Params)
	addField(fd.Type.Results)

	exprDerived := func(e ast.Expr) bool {
		root := rootIdent(e)
		if root == nil {
			return false
		}
		obj := pass.TypesInfo.Uses[root.id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[root.id]
		}
		return obj != nil && derived[obj]
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || derived[obj] {
					continue
				}
				if exprDerived(as.Rhs[i]) {
					derived[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return derived
}

// root is the base identifier an expression ultimately reads.
type root struct{ id *ast.Ident }

// rootIdent peels selectors, indexing, slicing, derefs, address-of and
// append calls down to the storage-owning identifier.
func rootIdent(e ast.Expr) *root {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return &root{id: x}
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
				e = x.Args[0]
				continue
			}
			return nil
		default:
			return nil
		}
	}
}

type checker struct {
	pass    *analysis.Pass
	derived map[types.Object]bool
}

// walk traverses the body flagging allocation-forcing constructs.
// inFailRet marks descent through a return statement that also returns
// a non-nil error — the exempt failure-exit shape.
func (c *checker) walk(n ast.Node, inFailRet bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			if !inFailRet && c.returnsError(x) {
				for _, r := range x.Results {
					c.walk(r, true)
				}
				return false
			}
		case *ast.FuncLit:
			if !inFailRet {
				c.pass.Reportf(x.Pos(), "closure on the hot path: func literals allocate and defeat inlining")
			}
			return false
		case *ast.CompositeLit:
			if inFailRet {
				return true
			}
			switch c.typeOf(x).Underlying().(type) {
			case *types.Map:
				c.pass.Reportf(x.Pos(), "map literal allocates on the hot path")
			case *types.Slice:
				c.pass.Reportf(x.Pos(), "slice literal allocates on the hot path")
			}
		case *ast.BinaryExpr:
			if inFailRet {
				return true
			}
			if x.Op == token.ADD {
				if tv, ok := c.pass.TypesInfo.Types[x]; ok && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						c.pass.Reportf(x.Pos(), "string concatenation allocates on the hot path")
					}
				}
			}
		case *ast.CallExpr:
			if inFailRet {
				return true
			}
			// A banned-package call is reported once, without also
			// flagging the constructs inside its arguments (fixing the
			// call removes them too).
			return c.checkCall(x)
		}
		return true
	})
}

// returnsError reports whether the return statement's results include
// a non-nil expression of type error.
func (c *checker) returnsError(ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		if id, ok := r.(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		tv, ok := c.pass.TypesInfo.Types[r]
		if !ok {
			continue
		}
		if named, ok := tv.Type.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

// checkCall flags banned-package calls, builtin allocators, non-scratch
// appends, and interface boxing at the call site. It reports whether
// the walk should descend into the call's children.
func (c *checker) checkCall(call *ast.CallExpr) bool {
	// Banned packages: fmt.Sprintf and friends.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName); ok && BannedPackages[pn.Imported().Path()] {
				c.pass.Reportf(call.Pos(), "call to %s.%s on the hot path: %s allocates (hoist into an unannotated cold helper)",
					pn.Imported().Path(), sel.Sel.Name, pn.Imported().Path())
				return false
			}
		}
	}
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "make":
			if c.isBuiltin(id) {
				c.pass.Reportf(call.Pos(), "make allocates on the hot path (reuse scratch storage instead)")
				return true
			}
		case "new":
			if c.isBuiltin(id) {
				c.pass.Reportf(call.Pos(), "new allocates on the hot path")
				return true
			}
		case "append":
			if c.isBuiltin(id) {
				c.checkAppend(call)
				return true
			}
		}
	}
	// Conversions: string([]byte) and interface boxing.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return true
	}
	// Ordinary call: implicit boxing into interface parameters.
	c.checkArgBoxing(call)
	return true
}

func (c *checker) isBuiltin(id *ast.Ident) bool {
	_, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// checkAppend allows appends routed through caller/receiver-owned
// scratch and flags the rest.
func (c *checker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	base := call.Args[0]
	r := rootIdent(base)
	if r != nil {
		obj := c.pass.TypesInfo.Uses[r.id]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[r.id]
		}
		if obj != nil && c.derived[obj] {
			return
		}
	}
	c.pass.Reportf(call.Pos(), "append to a non-scratch slice allocates per call on the hot path (append into receiver- or caller-owned storage)")
}

// checkConversion flags T(x) conversions that box or copy.
func (c *checker) checkConversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	argT := c.typeOf(call.Args[0])
	if types.IsInterface(target.Underlying()) && !types.IsInterface(argT.Underlying()) && !isNil(call.Args[0]) {
		c.pass.Reportf(call.Pos(), "conversion boxes %s into %s on the hot path", argT, target)
		return
	}
	if b, ok := target.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		if _, ok := argT.Underlying().(*types.Slice); ok {
			c.pass.Reportf(call.Pos(), "string conversion copies the byte slice on the hot path")
		}
	}
}

// checkArgBoxing flags concrete values passed to interface parameters.
func (c *checker) checkArgBoxing(call *ast.CallExpr) {
	sig, ok := c.typeOf(call.Fun).Underlying().(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos {
		return // spreading an existing slice does not box per element
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := c.typeOf(arg)
		if types.IsInterface(pt.Underlying()) && !types.IsInterface(at.Underlying()) && !isNil(arg) {
			c.pass.Reportf(arg.Pos(), "argument boxes %s into interface parameter on the hot path", at)
		}
	}
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
