// Package fixture holds the allowed hot-path shapes: scratch-slice
// appends, failure-exit error construction, struct/array literals,
// cold helpers, and unannotated functions doing whatever they like.
package fixture

import (
	"errors"
	"fmt"
)

type rec struct {
	ip     uint64
	resync bool
}

type decoder struct {
	tips  []rec
	carry []byte
}

// scratchAppend appends into receiver-owned storage — amortized
// allocation-free, the WindowDecoder pattern.
//
//fg:hotpath
func (d *decoder) scratchAppend(ip uint64) {
	d.tips = append(d.tips, rec{ip: ip})
}

// callerScratch appends into a caller-provided slice — the
// ToPA.AppendSince pattern.
//
//fg:hotpath
func callerScratch(dst []byte, b byte) []byte {
	dst = append(dst, b)
	return dst
}

// derivedScratch routes scratch through a local alias, including a
// [:0] reset.
//
//fg:hotpath
func (d *decoder) derivedScratch(chunk []byte) {
	buf := d.carry
	buf = append(buf[:0], chunk...)
	d.carry = buf
}

// failureExit may build its error inline: the return abandons the fast
// path.
//
//fg:hotpath
func (d *decoder) failureExit(off int) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("malformed packet at %d", off)
	}
	return off, nil
}

// structLiteral and array literals live on the stack.
//
//fg:hotpath
func structLiteral(a, b, c uint64) uint64 {
	h := uint64(0)
	for _, v := range [3]uint64{a, b, c} {
		h = (h ^ v) * 0x100000001b3
	}
	_ = rec{ip: h}
	return h
}

// coldHelper is unannotated: hoisting allocating work here is the
// sanctioned escape hatch.
func coldHelper(ip uint64) string {
	return fmt.Sprintf("ip=%d", ip)
}

//fg:hotpath
func callsColdHelper(ip uint64) string {
	return coldHelper(ip)
}

// unannotated functions are out of scope entirely.
func unannotated() any {
	_ = errors.New("fine here")
	return map[string]int{"also": 1}
}

// suppressed documents a deliberate exception.
//
//fg:hotpath
func suppressed(n int) []byte {
	//fg:ignore hotpathalloc fixture demonstrating a documented suppression
	return make([]byte, n)
}
