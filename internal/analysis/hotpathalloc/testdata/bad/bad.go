// Package fixture injects each allocation-forcing construct into an
// annotated hot path.
package fixture

import (
	"fmt"
	"sort"
)

type rec struct {
	ip  uint64
	buf []byte
}

//fg:hotpath
func fmtOnHotPath(r *rec) string {
	return fmt.Sprintf("ip=%d", r.ip) // want "call to fmt.Sprintf on the hot path"
}

//fg:hotpath
func sortClosure(a []uint64, x uint64) int {
	return sort.Search(len(a), func(i int) bool { return a[i] >= x }) // want "call to sort.Search on the hot path"
}

//fg:hotpath
func closure(n int) func() int {
	f := func() int { return n } // want "closure on the hot path"
	return f
}

//fg:hotpath
func freshMap() int {
	m := map[uint64]bool{1: true} // want "map literal allocates on the hot path"
	return len(m)
}

//fg:hotpath
func freshSliceLit() []int {
	return []int{1, 2, 3} // want "slice literal allocates on the hot path"
}

//fg:hotpath
func makeAlloc(n int) []byte {
	return make([]byte, n) // want "make allocates on the hot path"
}

//fg:hotpath
func newAlloc() *rec {
	return new(rec) // want "new allocates on the hot path"
}

//fg:hotpath
func appendFresh(r *rec) []byte {
	var out []byte
	out = append(out, r.buf...) // want "append to a non-scratch slice allocates per call"
	return out
}

//fg:hotpath
func concat(a, b string) string {
	return a + b // want "string concatenation allocates on the hot path"
}

//fg:hotpath
func stringify(b []byte) string {
	return string(b) // want "string conversion copies the byte slice"
}

//fg:hotpath
func explicitBox(x uint64) any {
	return any(x) // want "conversion boxes uint64 into any"
}

func sink(v any) {}

//fg:hotpath
func implicitBox(x uint64) {
	sink(x) // want "argument boxes uint64 into interface parameter"
}
