package lockorder

import (
	"strings"
	"testing"

	"flowguard/internal/analysis"
	"flowguard/internal/analysis/analysistest"
)

func TestBad(t *testing.T) {
	analysistest.RunFixture(t, Analyzer, "testdata/bad", "flowguard/internal/analysis/lockorder/fixture")
}

func TestGood(t *testing.T) {
	analysistest.RunFixture(t, Analyzer, "testdata/good", "flowguard/internal/analysis/lockorder/fixture")
}

// TestStaleSuppression proves the suppression lifecycle on this
// analyzer: a //fg:ignore lockorder left behind after the cycle was
// fixed errors.
func TestStaleSuppression(t *testing.T) {
	analysistest.RunFixture(t, Analyzer, "testdata/stale", "flowguard/internal/analysis/lockorder/fixture")
}

// TestMalformedSuppression proves an //fg:ignore lockorder with no
// reason is refused. Asserted in code: a trailing want comment would
// itself be parsed as the directive's reason.
func TestMalformedSuppression(t *testing.T) {
	l, err := analysistest.TestLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDir("testdata/malformed", "flowguard/internal/analysis/lockorder/fixture")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := analysis.Run(pkg, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "malformed //fg:ignore") {
		t.Fatalf("want exactly one malformed-suppression finding, got %v", findings)
	}
}
