// Package fixture seeds the shapes lockorder must reject: opposite
// acquisition orders of the same two lock classes (one side direct,
// the other through a helper call — the interprocedural case), and a
// call to a transitively blocking function while a lock is held.
package fixture

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

type sys struct {
	a A
	b B
}

// lockBoth takes a.mu then b.mu — one direction of the cycle.
func (s *sys) lockBoth() {
	s.a.mu.Lock()
	s.b.mu.Lock() // want "lock-order cycle"
	s.b.n++
	s.b.mu.Unlock()
	s.a.mu.Unlock()
}

// reversed takes b.mu, then reaches a.mu through a helper: the edge
// only exists interprocedurally.
func (s *sys) reversed() {
	s.b.mu.Lock()
	s.takeA() // want "lock-order cycle"
	s.b.mu.Unlock()
}

func (s *sys) takeA() {
	s.a.mu.Lock()
	s.a.n++
	s.a.mu.Unlock()
}

// stallUnderLock calls a function that blocks on a channel while
// holding a.mu — invisible to the per-function lockdiscipline walk.
func (s *sys) stallUnderLock(ch chan int) {
	s.a.mu.Lock()
	s.drain(ch) // want "call to s.drain while holding s.a.mu"
	s.a.mu.Unlock()
}

func (s *sys) drain(ch chan int) {
	<-ch
}
