// Package fixture holds the allowed shapes: one consistent global
// acquisition order (even through helper calls), striped same-class
// locks, goroutines that take locks on their own stack, and blocking
// work done after release.
package fixture

import (
	"sync"
	"time"
)

type G struct {
	mu sync.Mutex
	n  int
}

type Q struct {
	mu      sync.Mutex
	pending []int
}

type world struct {
	g       G
	q       Q
	stripes [4]struct {
		mu sync.Mutex
		n  int
	}
}

// drainOne takes g.mu then q.mu — the one sanctioned order.
func (w *world) drainOne() {
	w.g.mu.Lock()
	w.q.mu.Lock()
	w.q.pending = w.q.pending[:0]
	w.q.mu.Unlock()
	w.g.mu.Unlock()
}

// drainViaHelper reaches q.mu through a call, in the same order.
func (w *world) drainViaHelper() {
	w.g.mu.Lock()
	w.trim()
	w.g.mu.Unlock()
}

func (w *world) trim() {
	w.q.mu.Lock()
	w.q.pending = w.q.pending[:0]
	w.q.mu.Unlock()
}

// sweepStripes takes several locks of the same class in sequence — a
// self-edge, which is ordering within a class, not a cycle.
func (w *world) sweepStripes() {
	for i := range w.stripes {
		w.stripes[i].mu.Lock()
		w.stripes[i].n++
		w.stripes[i].mu.Unlock()
	}
}

// spawnTaker holds g.mu while spawning, but the child takes q.mu on
// its own stack: no held-chain from g.mu.
func (w *world) spawnTaker() {
	w.g.mu.Lock()
	go w.trim()
	w.g.mu.Unlock()
}

// reversedOnOwnStack takes q.mu then, after releasing, g.mu: no
// overlap, no edge.
func (w *world) reversedOnOwnStack() {
	w.q.mu.Lock()
	w.q.pending = append(w.q.pending, 1)
	w.q.mu.Unlock()
	w.g.mu.Lock()
	w.g.n++
	w.g.mu.Unlock()
}

// sleepAfterRelease blocks only once nothing is held — the backoff
// pattern.
func (w *world) sleepAfterRelease() {
	w.g.mu.Lock()
	w.g.n++
	w.g.mu.Unlock()
	w.pause()
}

func (w *world) pause() {
	time.Sleep(time.Microsecond)
}

// shedNonBlocking wakes a worker under the lock through a
// select-with-default: it cannot block, so holding g.mu is fine for
// the lockorder analyzer (lockdiscipline's stricter textual rule is a
// separate analyzer).
func (w *world) shedNonBlocking(wake chan struct{}) {
	w.g.mu.Lock()
	w.notify(wake)
	w.g.mu.Unlock()
}

func (w *world) notify(wake chan struct{}) {
	select {
	case wake <- struct{}{}:
	default:
	}
}
