// Package fixture proves suppressions cannot outlive their finding:
// the cycle this //fg:ignore once documented has been fixed, so the
// directive itself is now an error.
package fixture

import "sync"

type pair struct {
	first  sync.Mutex
	second sync.Mutex
	n      int
}

// orderedNow acquires in the one sanctioned order; the leftover
// suppression must be reported as stale.
func (p *pair) orderedNow() {
	p.first.Lock()
	//fg:ignore lockorder historical cycle, fixed in the ordering refactor // want "stale //fg:ignore lockorder"
	p.second.Lock()
	p.n++
	p.second.Unlock()
	p.first.Unlock()
}
