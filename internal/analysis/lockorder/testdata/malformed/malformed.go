// Package fixture carries an //fg:ignore with no reason: undocumented
// suppressions are refused (asserted by TestMalformedSuppression, not
// by want comments — a trailing want would itself become the reason).
package fixture

import "sync"

type pair struct {
	first  sync.Mutex
	second sync.Mutex
	n      int
}

func (p *pair) undocumented() {
	p.first.Lock()
	//fg:ignore lockorder
	p.second.Lock()
	p.n++
	p.second.Unlock()
	p.first.Unlock()
}
