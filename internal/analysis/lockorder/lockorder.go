// Package lockorder builds the global mutex acquisition-order graph
// and reports cycles — the static form of deadlock freedom the
// async/fleet checker depends on. PR 7's AsyncPool and PR 8's
// FleetPool route every check through several mutexes (g.mu → a.mu,
// genMu → stripe.mu, shard.mu); a single call path that takes two of
// them in the opposite order is a latent fleet-wide deadlock that no
// test reliably reproduces. The analyzer:
//
//   - collects, per function, the locks acquired while other locks are
//     held (directly from the summary walk, and transitively through
//     static calls: if f holds A and calls g, every lock g acquires is
//     acquired under A)
//   - exports the resulting acquisition edges and per-function acquire
//     sets as package facts, merges them with the facts of every
//     dependency, and reports any cycle in the global graph
//   - re-grounds the lockdiscipline blocking rules interprocedurally:
//     calling a function that (transitively) performs a blocking
//     channel operation or time.Sleep while holding a lock is flagged
//     at the call site, not just when the operation is textually
//     inside the locked region
//
// Lock identity is the owning type's field (one class per
// "pkg.Type.field"), so two instances of the same struct share a
// class. Striped locks (stripes[i].mu then stripes[j].mu) therefore
// show up as a self-edge A → A; self-edges are excluded — ordering
// within a class is the code's own responsibility (e.g. by index), and
// treating them as cycles would flag every stripe sweep. Goroutine
// spawns break the held-chain: a lock the child takes is not taken
// under the parent's locks. Select statements with a default case are
// non-blocking and are not blocking evidence.
package lockorder

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"flowguard/internal/analysis"
	"flowguard/internal/analysis/summary"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "global mutex acquisition-order graph must be acyclic; no call to a " +
		"(transitively) blocking function while holding a lock",
	Needs: analysis.NeedSummaries,
	Facts: func() any { return new(Facts) },
	Run:   run,
}

// Facts is the per-package fact: the acquisition-order edges the
// package contributes and, per function, what it acquires and whether
// it can block — everything a dependent package needs to extend the
// graph across package boundaries.
type Facts struct {
	// Edges are the acquisition-order edges observed in this package
	// (including those induced through calls into dependencies).
	Edges []Edge
	// Funcs maps summary.FuncKey strings of exported-reachable
	// functions to their transitive effects.
	Funcs map[string]*FuncFact
}

// Edge is one "To acquired while From held" observation.
type Edge struct {
	From, To string // lock classes
	// Expr renders the acquisition as written ("a.mu under g.mu").
	Expr string
	// Site is "file:line" of the acquisition, for cross-package
	// diagnostics.
	Site string
	// Local is true in the reporting package only (not serialized):
	// cycles are reported once, by a package contributing an edge.
	Local bool `json:"-"`
	// Pos is the acquisition position for local edges (not
	// serialized; cross-package edges report via Site instead).
	Pos token.Pos `json:"-"`
}

// FuncFact is one function's transitive lock behavior.
type FuncFact struct {
	// Acquires lists lock classes the function (transitively)
	// acquires on the caller's goroutine.
	Acquires []string
	// Blocks describes the first (transitively reached) blocking
	// operation — "" when the function cannot block.
	Blocks string
}

func run(pass *analysis.Pass) error {
	// Merge dependency facts.
	depFuncs := map[string]*FuncFact{}
	var edges []Edge
	err := pass.EachFact(func(pkgPath string, fact any) {
		f := fact.(*Facts)
		for k, ff := range f.Funcs {
			depFuncs[k] = ff
		}
		edges = append(edges, f.Edges...)
	})
	if err != nil {
		return err
	}

	// Fixed point over the package's own callgraph: transitive
	// acquire sets and blocking reasons.
	acquires := map[summary.FuncKey]map[summary.LockClass]bool{}
	blocks := map[summary.FuncKey]string{}
	for _, key := range pass.Sum.Order {
		fn := pass.Sum.Funcs[key]
		set := map[summary.LockClass]bool{}
		for _, a := range fn.Acquires {
			if (a.Op == "Lock" || a.Op == "RLock") && !localClass(a.Class) {
				set[a.Class] = true
			}
		}
		acquires[key] = set
		blocks[key] = directBlock(fn)
	}
	for changed := true; changed; {
		changed = false
		for _, key := range pass.Sum.Order {
			fn := pass.Sum.Funcs[key]
			for _, c := range fn.Calls {
				if c.Go || c.Callee == "" {
					continue
				}
				for _, cls := range calleeAcquires(c.Callee, acquires, depFuncs) {
					if !acquires[key][cls] {
						acquires[key][cls] = true
						changed = true
					}
				}
				if blocks[key] == "" {
					if b := calleeBlocks(c.Callee, blocks, depFuncs); b != "" {
						blocks[key] = fmt.Sprintf("calls %s, which %s", c.Name, b)
						changed = true
					}
				}
			}
		}
	}

	// Edges: direct (from the summary walk) plus call-induced (callee
	// acquires under the caller's held set).
	for _, key := range pass.Sum.Order {
		fn := pass.Sum.Funcs[key]
		for _, e := range fn.AcquireEdges {
			if localClass(e.From) || localClass(e.To) {
				continue
			}
			edges = append(edges, Edge{
				From: string(e.From), To: string(e.To),
				Expr: e.ToExpr + " under " + e.FromExpr,
				Site: pass.Fset.Position(e.Pos).String(),
				Local: true, Pos: e.Pos,
			})
		}
		for _, c := range fn.Calls {
			if c.Go || c.Callee == "" || len(c.Held) == 0 {
				continue
			}
			for _, cls := range calleeAcquires(c.Callee, acquires, depFuncs) {
				for _, h := range c.Held {
					if h.Class == cls || localClass(h.Class) {
						continue
					}
					edges = append(edges, Edge{
						From: string(h.Class), To: string(cls),
						Expr: "via " + c.Name + "() under " + h.Expr,
						Site: pass.Fset.Position(c.Pos).String(),
						Local: true, Pos: c.Pos,
					})
				}
			}
			// Blocking call under a held lock: the interprocedural
			// form of lockdiscipline's rules.
			if b := calleeBlocks(c.Callee, blocks, depFuncs); b != "" {
				pass.Reportf(c.Pos, "call to %s while holding %s: it %s — a blocked checker stalls every sibling (release the lock first)",
					c.Name, c.Held[0].Expr, b)
			}
		}
	}

	reportCycles(pass, edges)
	exportFacts(pass, acquires, blocks, edges)
	return nil
}

// exportFacts serializes this package's contribution: its own edges
// and the transitive behavior of its non-literal functions.
func exportFacts(pass *analysis.Pass, acquires map[summary.FuncKey]map[summary.LockClass]bool, blocks map[summary.FuncKey]string, edges []Edge) {
	out := &Facts{Funcs: map[string]*FuncFact{}}
	for _, e := range edges {
		if e.Local {
			out.Edges = append(out.Edges, e)
		}
	}
	for _, key := range pass.Sum.Order {
		fn := pass.Sum.Funcs[key]
		if fn.Lit {
			continue // literals are not callable across packages
		}
		ff := &FuncFact{Blocks: blocks[key]}
		for c := range acquires[key] {
			ff.Acquires = append(ff.Acquires, string(c))
		}
		sort.Strings(ff.Acquires)
		if len(ff.Acquires) > 0 || ff.Blocks != "" {
			out.Funcs[string(key)] = ff
		}
	}
	pass.ExportFact(out)
}

// localClass reports a fallback (function-local) lock class, excluded
// from the global graph: its identity is an expression string, which
// would alias unrelated locals across functions.
func localClass(c summary.LockClass) bool { return strings.Contains(string(c), "#local:") }

// directBlock describes fn's first direct blocking operation.
func directBlock(fn *summary.Func) string {
	for _, op := range fn.Chans {
		if op.NonBlocking {
			continue
		}
		switch op.Kind {
		case summary.ChanSend:
			return "sends on a channel"
		case summary.ChanRecv:
			return "receives from a channel"
		}
	}
	for _, c := range fn.Calls {
		if !c.Go && c.Callee == "time.Sleep" {
			return "calls time.Sleep"
		}
	}
	return ""
}

func calleeAcquires(callee summary.FuncKey, own map[summary.FuncKey]map[summary.LockClass]bool, dep map[string]*FuncFact) []summary.LockClass {
	if set, ok := own[callee]; ok {
		out := make([]summary.LockClass, 0, len(set))
		for c := range set {
			out = append(out, c)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	if ff, ok := dep[string(callee)]; ok {
		out := make([]summary.LockClass, len(ff.Acquires))
		for i, c := range ff.Acquires {
			out[i] = summary.LockClass(c)
		}
		return out
	}
	return nil
}

func calleeBlocks(callee summary.FuncKey, own map[summary.FuncKey]string, dep map[string]*FuncFact) string {
	if b, ok := own[callee]; ok {
		return b
	}
	if ff, ok := dep[string(callee)]; ok {
		return ff.Blocks
	}
	return ""
}

// reportCycles finds cycles in the merged edge set and reports each
// once, at a locally-contributed edge that closes it.
func reportCycles(pass *analysis.Pass, edges []Edge) {
	adj := map[string]map[string]bool{}
	for _, e := range edges {
		if e.From == e.To {
			continue
		}
		m := adj[e.From]
		if m == nil {
			m = map[string]bool{}
			adj[e.From] = m
		}
		m[e.To] = true
	}
	// reaches reports whether from reaches to in the edge graph.
	reaches := func(from, to string) []string {
		type node struct {
			name string
			prev *node
		}
		seen := map[string]bool{from: true}
		queue := []*node{{name: from}}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			if n.name == to {
				var path []string
				for ; n != nil; n = n.prev {
					path = append([]string{n.name}, path...)
				}
				return path
			}
			next := make([]string, 0, len(adj[n.name]))
			for s := range adj[n.name] {
				next = append(next, s)
			}
			sort.Strings(next)
			for _, s := range next {
				if !seen[s] {
					seen[s] = true
					queue = append(queue, &node{name: s, prev: n})
				}
			}
		}
		return nil
	}
	reported := map[string]bool{}
	for _, e := range edges {
		if !e.Local || e.From == e.To {
			continue
		}
		back := reaches(e.To, e.From)
		if back == nil {
			continue
		}
		cycle := strings.Join(append([]string{e.From}, back...), " -> ")
		if reported[cycle] {
			continue
		}
		reported[cycle] = true
		pass.Reportf(e.Pos, "lock-order cycle: %s (edge %s): opposite acquisition orders can deadlock — pick one global order",
			cycle, e.Expr)
	}
}
