// Package analysis is a small, stdlib-only analogue of
// golang.org/x/tools/go/analysis: enough driver machinery to write
// domain-specific static checkers for this repository without pulling
// in a dependency. FlowGuard's security argument rests on invariants
// the compiler cannot see — fail-closed verdict handling, the
// zero-allocation fast path, the oracle's import isolation, deadlock
// freedom of the async/fleet checker — and the analyzers built on this
// package (see cmd/fgvet) turn those implicit contracts into
// machine-checked ones.
//
// An Analyzer inspects one package at a time. The driver hands it a
// Pass holding the parsed files, (for NeedTypes analyzers) the
// type-checked package and types.Info, and (for NeedSummaries
// analyzers) per-function effect summaries plus the fact store.
// Interprocedural analyzers communicate through serialized per-package
// **facts**, mirroring go/analysis modularity: the driver visits
// packages in dependency order, each analyzer exports one JSON-encoded
// fact per package (Pass.ExportFact), and downstream packages read the
// accumulated facts back (Pass.EachFact / Pass.ImportFact). Because
// facts round-trip through JSON, a fact store can be written to disk
// and reloaded (FactStore.EncodeTo/DecodeFrom), keeping cross-package
// analysis incremental in principle.
//
// The analyzer reports findings via Pass.Reportf. Findings can be
// suppressed at the offending line with a documented comment:
//
//	//fg:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line directly above it. The
// reason is mandatory: an undocumented suppression is itself an error.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"flowguard/internal/analysis/summary"
)

// Needs is the bitmask of inputs an analyzer requires.
type Needs uint

const (
	// NeedTypes requests a fully type-checked Pass. Analyzers that
	// only look at syntax (imports, comments) leave it unset and can
	// run without a working build cache.
	NeedTypes Needs = 1 << iota
	// NeedSummaries requests per-function effect summaries
	// (Pass.Sum) and access to the cross-package fact store. Implies
	// NeedTypes.
	NeedSummaries
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //fg:ignore comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Needs declares the inputs the analyzer requires.
	Needs Needs
	// Facts, when non-nil, returns a new zero value of the analyzer's
	// per-package fact type — the prototype the driver decodes stored
	// facts into. An analyzer with a Facts prototype runs on
	// dependency packages too (facts-only), so downstream packages
	// can see their effects.
	Facts func() any
	// Run performs the check and reports findings on the pass.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass holds the per-package inputs handed to an Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test files, parsed with comments.
	Files []*ast.File
	// PkgPath is the package's import path ("flowguard/internal/guard").
	PkgPath string
	// Pkg and TypesInfo are nil unless Analyzer.Needs has NeedTypes.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Sum is the package's function-effect summary (nil unless
	// Analyzer.Needs has NeedSummaries).
	Sum *summary.Package

	store  *FactStore
	export any
	diags  []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings reported so far, in position order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool { return p.diags[i].Pos < p.diags[j].Pos })
	return p.diags
}

// ExportFact records this package's fact for the analyzer. The driver
// serializes it into the fact store after Run returns, making it
// visible to later (dependent) packages. fact must be of the type
// Analyzer.Facts returns.
func (p *Pass) ExportFact(fact any) { p.export = fact }

// ImportFact decodes the fact a dependency package exported for this
// analyzer into out (a pointer of the Facts prototype type). It
// reports whether a fact was present.
func (p *Pass) ImportFact(pkgPath string, out any) (bool, error) {
	if p.store == nil {
		return false, nil
	}
	return p.store.get(p.Analyzer.Name, pkgPath, out)
}

// EachFact decodes every fact exported for this analyzer by packages
// already visited this run (dependencies first: the driver walks in
// dependency order), calling fn with each. Facts are decoded into
// fresh Analyzer.Facts prototypes.
func (p *Pass) EachFact(fn func(pkgPath string, fact any)) error {
	if p.store == nil || p.Analyzer.Facts == nil {
		return nil
	}
	return p.store.each(p.Analyzer.Name, p.Analyzer.Facts, fn)
}
