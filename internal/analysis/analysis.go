// Package analysis is a small, stdlib-only analogue of
// golang.org/x/tools/go/analysis: enough driver machinery to write
// domain-specific static checkers for this repository without pulling
// in a dependency. FlowGuard's security argument rests on invariants
// the compiler cannot see — fail-closed verdict handling, the
// zero-allocation fast path, the oracle's import isolation — and the
// analyzers built on this package (see cmd/fgvet) turn those implicit
// contracts into machine-checked ones.
//
// An Analyzer inspects one package at a time. The driver hands it a
// Pass holding the parsed files and (for NeedTypes analyzers) the
// type-checked package and types.Info; the analyzer reports findings
// via Pass.Reportf. Findings can be suppressed at the offending line
// with a documented comment:
//
//	//fg:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line directly above it. The
// reason is mandatory: an undocumented suppression is itself an error.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //fg:ignore comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// NeedTypes requests a fully type-checked Pass. Analyzers that
	// only look at syntax (imports, comments) leave it false and can
	// run without a working build cache.
	NeedTypes bool
	// Run performs the check and reports findings on the pass.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass holds the per-package inputs handed to an Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test files, parsed with comments.
	Files []*ast.File
	// PkgPath is the package's import path ("flowguard/internal/guard").
	PkgPath string
	// Pkg and TypesInfo are nil unless Analyzer.NeedTypes is set.
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings reported so far, in position order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool { return p.diags[i].Pos < p.diags[j].Pos })
	return p.diags
}
