// Package analysistest runs an analyzer over fixture packages and
// checks its findings against the fixtures' want comments — the
// repo's miniature analogue of golang.org/x/tools/go/analysis/analysistest.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"

	"flowguard/internal/analysis"
)

// Fixture packages live
// under an analyzer's testdata/ directory (which the go tool skips), and
// lines expecting a diagnostic carry a trailing comment of the form
//
//	// want "regexp"
//
// with one quoted regexp per expected diagnostic on that line. The
// fixtures must be valid, compiling Go: they demonstrate that an
// injected violation fails the build gate without ever breaking main.

var (
	sharedLoaderOnce sync.Once
	sharedLoader     *analysis.Loader
	sharedLoaderErr  error
)

// TestLoader returns a process-wide loader rooted at the enclosing
// module, so every analyzer test shares one `go list -export` walk.
func TestLoader() (*analysis.Loader, error) {
	sharedLoaderOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			sharedLoaderErr = err
			return
		}
		sharedLoader = analysis.NewLoader(root)
	})
	return sharedLoader, sharedLoaderErr
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// RunFixture loads the fixture directory as a package named pkgPath,
// runs the analyzer, and checks the findings against the fixture's
// want comments. Suppressed findings count as absent, so fixtures also
// exercise the //fg:ignore machinery.
func RunFixture(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	RunFixtureDeps(t, a, nil, dir, pkgPath)
}

// Dep names one dependency fixture package loaded (and analyzed
// facts-only) before the main fixture, so cross-package
// interprocedural fixtures can import it.
type Dep struct {
	Dir     string
	PkgPath string
}

// RunFixtureDeps is RunFixture with dependency fixture packages: each
// dep is loaded, registered with the loader so the main fixture can
// import it, and run through the analyzer against the shared fact
// store (findings discarded — deps model FactsOnly packages). Want
// comments are checked on the main fixture only.
func RunFixtureDeps(t *testing.T, a *analysis.Analyzer, deps []Dep, dir, pkgPath string) {
	t.Helper()
	store := analysis.NewFactStore()
	var pkg *analysis.Package
	var err error
	if a.Needs&(analysis.NeedTypes|analysis.NeedSummaries) != 0 {
		var l *analysis.Loader
		l, err = TestLoader()
		if err != nil {
			t.Fatalf("loader: %v", err)
		}
		for _, d := range deps {
			dpkg, derr := l.LoadDir(d.Dir, d.PkgPath)
			if derr != nil {
				t.Fatalf("loading dep fixture %s: %v", d.Dir, derr)
			}
			l.AddPackage(dpkg.Types)
			if _, derr := analysis.RunPkg(dpkg, []*analysis.Analyzer{a}, store); derr != nil {
				t.Fatalf("running %s on dep %s: %v", a.Name, d.Dir, derr)
			}
		}
		pkg, err = l.LoadDir(dir, pkgPath)
	} else {
		if len(deps) > 0 {
			t.Fatalf("dependency fixtures need a type-aware analyzer")
		}
		pkg, err = analysis.ParseDir(dir, pkgPath)
	}
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := analysis.RunPkg(pkg, []*analysis.Analyzer{a}, store)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	checkExpectations(t, pkg, findings)
}

// expectation is one want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// collectWants extracts the want expectations from the fixture files.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted returns the double-quoted tokens of s.
func splitQuoted(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		if s[i] != '"' {
			continue
		}
		j := i + 1
		for j < len(s) && s[j] != '"' {
			if s[j] == '\\' {
				j++
			}
			j++
		}
		if j < len(s) {
			out = append(out, s[i:j+1])
			i = j
		}
	}
	return out
}

// checkExpectations matches findings against want comments 1:1.
func checkExpectations(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, fd := range findings {
		if fd.Suppressed {
			continue
		}
		matched := false
		for _, w := range wants {
			if w.met || w.file != fd.Position.Filename || w.line != fd.Position.Line {
				continue
			}
			if w.re.MatchString(fd.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", fd)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}
