// Package fixture holds the allowed shapes: exhaustive switches,
// defaults that fail closed, explicit comparisons against the passing
// value, and a documented suppression.
package fixture

type Verdict uint8

const (
	VerdictClean Verdict = iota
	VerdictViolation
)

type TraceHealth uint8

const (
	HealthClean TraceHealth = iota
	HealthResynced
	HealthGap
	HealthMalformed
)

func exhaustive(v Verdict) string {
	switch v {
	case VerdictClean:
		return "clean"
	case VerdictViolation:
		return "violation"
	}
	return "?"
}

// defaultFailsClosed names every value AND keeps a fail-closed default
// for values that do not exist yet.
func defaultFailsClosed(h TraceHealth) Verdict {
	switch h {
	case HealthClean:
		return VerdictClean
	case HealthResynced, HealthGap, HealthMalformed:
		return VerdictViolation
	default:
		return VerdictViolation
	}
}

// explicitCleanComparison names its case: passing on == clean is the
// contract, not a violation of it.
func explicitCleanComparison(v Verdict) bool {
	if v == VerdictClean {
		return true
	}
	return false
}

// failClosedExclusion excludes a value but the excluded branch fails
// closed — allowed.
func failClosedExclusion(v Verdict) Verdict {
	if v == VerdictClean {
		return v
	}
	return VerdictViolation
}

// suppressed documents a deliberate exception; the driver must treat
// it as handled and the fixture runner as absent.
func suppressed(v Verdict) Verdict {
	switch v { //fg:ignore failclosed fixture demonstrating a documented suppression
	case VerdictViolation:
		return v
	}
	return VerdictViolation
}
