// Package fixture injects every violation class of the fail-closed
// contract: a non-exhaustive verdict switch, a default branch that
// passes, and pass-by-exclusion ifs.
package fixture

// Verdict mirrors guard.Verdict with a third value, modeling the
// enumeration growing after the decision sites below were written.
type Verdict uint8

const (
	VerdictClean Verdict = iota
	VerdictViolation
	VerdictDeferred
)

// TraceHealth mirrors guard.TraceHealth.
type TraceHealth uint8

const (
	HealthClean TraceHealth = iota
	HealthResynced
	HealthGap
)

func nonExhaustive(v Verdict) string {
	switch v { // want "not exhaustive: missing VerdictDeferred"
	case VerdictClean:
		return "clean"
	case VerdictViolation:
		return "violation"
	}
	return "?"
}

func defaultPasses(v Verdict) Verdict {
	switch v {
	case VerdictClean, VerdictViolation, VerdictDeferred:
		return v
	default:
		return VerdictClean // want "default branch of a switch over fixture.Verdict must not produce the passing value VerdictClean"
	}
}

func healthDefaultPasses(h TraceHealth) TraceHealth {
	switch h { // want "not exhaustive: missing HealthClean"
	case HealthResynced, HealthGap:
		return h
	default:
		return HealthClean // want "default branch of a switch over fixture.TraceHealth must not produce the passing value HealthClean"
	}
}

func exclusionEq(v Verdict) Verdict {
	if v == VerdictViolation {
		return v
	} else {
		return VerdictClean // want "passing value VerdictClean reached by excluding only VerdictViolation"
	}
}

func exclusionNeq(h TraceHealth) TraceHealth {
	if h != HealthGap {
		return HealthClean // want "passing value HealthClean reached by excluding only HealthGap"
	}
	return h
}
