// Package failclosed statically enforces the hybrid checker's
// fail-closed contract (§7.1.2 of the paper, DESIGN.md degraded-mode
// section): code that branches on a guard.Verdict or guard.TraceHealth
// must name every enumeration value it decides over, and no pass/clean
// outcome may be reached from a default-like branch. The invariant
// matters because both enumerations grow — a new TraceHealth class or
// verdict added for a new degraded mode must force every decision site
// to be revisited, instead of silently falling into a branch written
// when the value did not exist. The zero value of both monitored types
// is the passing value (VerdictClean, HealthClean), so "fail closed"
// concretely means: never produce the zero constant from a branch that
// did not explicitly match it.
package failclosed

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"flowguard/internal/analysis"
)

// MonitoredTypes names the enumerations under the fail-closed
// contract. Matching is by type name so that both the production types
// and fixture doubles are caught; only defined integer types qualify.
var MonitoredTypes = map[string]bool{
	"Verdict":     true,
	"TraceHealth": true,
}

// Analyzer is the failclosed analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "failclosed",
	Doc: "switches/ifs over guard.Verdict or guard.TraceHealth must handle every value " +
		"explicitly and must never reach a pass/clean outcome from a default branch",
	Needs:     analysis.NeedTypes,
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.SwitchStmt:
				checkSwitch(pass, st)
			case *ast.IfStmt:
				checkIf(pass, st)
			}
			return true
		})
	}
	return nil
}

// monitored returns the defined type behind t if it is under the
// contract, else nil.
func monitored(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || !MonitoredTypes[named.Obj().Name()] {
		return nil
	}
	if b, ok := named.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
		return nil
	}
	return named
}

// enumConst is one declared constant of a monitored type.
type enumConst struct {
	name string
	val  constant.Value
}

// enumConstants lists the package-level constants of the type, sorted
// by value — the full enumeration the contract ranges over.
func enumConstants(named *types.Named) []enumConst {
	scope := named.Obj().Pkg().Scope()
	var out []enumConst
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		out = append(out, enumConst{name: name, val: c.Val()})
	}
	sort.Slice(out, func(i, j int) bool {
		return constant.Compare(out[i].val, token.LSS, out[j].val)
	})
	return out
}

func isZero(v constant.Value) bool {
	return constant.Compare(v, token.EQL, constant.MakeInt64(0))
}

// typeLabel renders the type as it reads at the decision site.
func typeLabel(named *types.Named) string {
	return named.Obj().Pkg().Name() + "." + named.Obj().Name()
}

// checkSwitch enforces both halves of the contract on a tagged switch.
func checkSwitch(pass *analysis.Pass, st *ast.SwitchStmt) {
	if st.Tag == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[st.Tag]
	if !ok {
		return
	}
	named := monitored(tv.Type)
	if named == nil {
		return
	}
	consts := enumConstants(named)
	handled := make([]bool, len(consts))
	sawNonConstCase := false
	var deflt *ast.CaseClause
	for _, s := range st.Body.List {
		cc, ok := s.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, e := range cc.List {
			etv, ok := pass.TypesInfo.Types[e]
			if !ok || etv.Value == nil {
				sawNonConstCase = true
				continue
			}
			for i, c := range consts {
				if constant.Compare(etv.Value, token.EQL, c.val) {
					handled[i] = true
				}
			}
		}
	}
	if !sawNonConstCase {
		var missing []string
		for i, c := range consts {
			if !handled[i] {
				missing = append(missing, c.name)
			}
		}
		if len(missing) > 0 {
			pass.Reportf(st.Pos(),
				"switch over %s is not exhaustive: missing %s (every value must be handled explicitly; unverifiable states fail closed)",
				typeLabel(named), strings.Join(missing, ", "))
		}
	}
	if deflt != nil {
		if use := passUseIn(pass, deflt, named, consts); use != nil {
			pass.Reportf(use.Pos(),
				"default branch of a switch over %s must not produce the passing value %s: fail closed instead",
				typeLabel(named), passName(consts))
		}
	}
}

// checkIf flags pass-by-exclusion: an if over a monitored comparison
// whose not-matched branch — the branch taken for every value the
// condition did not name, including values that do not exist yet —
// produces the passing value.
func checkIf(pass *analysis.Pass, st *ast.IfStmt) {
	be, ok := st.Cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return
	}
	var named *types.Named
	var cmp constant.Value
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		vtv, vok := pass.TypesInfo.Types[pair[0]]
		ctv, cok := pass.TypesInfo.Types[pair[1]]
		if vok && cok && ctv.Value != nil {
			if m := monitored(vtv.Type); m != nil {
				named, cmp = m, ctv.Value
				break
			}
		}
	}
	if named == nil || isZero(cmp) {
		// Comparisons against the passing value itself are explicit
		// handling: `if v == VerdictClean { proceed }` names its case.
		return
	}
	// The branch reached when the value is NOT the named constant.
	var excluded ast.Node
	if be.Op == token.EQL {
		excluded = st.Else
	} else {
		excluded = st.Body
	}
	if excluded == nil {
		return
	}
	consts := enumConstants(named)
	if use := passUseIn(pass, excluded, named, consts); use != nil {
		pass.Reportf(use.Pos(),
			"passing value %s reached by excluding only %s of %s: handle each value explicitly (fail closed)",
			passName(consts), constName(consts, cmp), typeLabel(named))
	}
}

// passName returns the name of the zero (passing) constant.
func passName(consts []enumConst) string {
	for _, c := range consts {
		if isZero(c.val) {
			return c.name
		}
	}
	return "the zero value"
}

// constName resolves a constant value to its declared name.
func constName(consts []enumConst, v constant.Value) string {
	for _, c := range consts {
		if constant.Compare(c.val, token.EQL, v) {
			return c.name
		}
	}
	return v.String()
}

// passUseIn returns the first use of the passing (zero) constant of
// the monitored type inside node, or nil.
func passUseIn(pass *analysis.Pass, node ast.Node, named *types.Named, consts []enumConst) ast.Node {
	var found ast.Node
	ast.Inspect(node, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		c, ok := obj.(*types.Const)
		if !ok || !types.Identical(c.Type(), named) || !isZero(c.Val()) {
			return true
		}
		found = id
		return false
	})
	return found
}
