package lbr_test

import (
	"testing"

	"flowguard/internal/isa"
	"flowguard/internal/trace"
	"flowguard/internal/trace/lbr"
)

func branch(src, dst uint64, class isa.CoFIClass, taken bool) trace.Branch {
	return trace.Branch{Class: class, Source: src, Target: dst, Taken: taken}
}

// TestCFIFilter pins the kBouncer/PathArmor configuration: only indirect
// branches and returns are recorded.
func TestCFIFilter(t *testing.T) {
	tr := lbr.New(lbr.Depth16, lbr.FilterCFI)
	tr.Branch(branch(1, 2, isa.CoFIDirect, true))
	tr.Branch(branch(3, 4, isa.CoFICond, true))
	tr.Branch(branch(5, 6, isa.CoFIIndirect, true))
	tr.Branch(branch(7, 8, isa.CoFIRet, true))
	tr.Branch(branch(9, 10, isa.CoFIFarTransfer, true))
	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("recorded %d entries, want 2 (indirect + ret only)", len(snap))
	}
	if snap[0].From != 5 || snap[1].From != 7 {
		t.Errorf("snapshot = %+v", snap)
	}
}

// TestNotTakenConditionalsSkipped: LBR records taken branches only.
func TestNotTakenConditionalsSkipped(t *testing.T) {
	tr := lbr.New(lbr.Depth16, lbr.FilterAll)
	tr.Branch(branch(1, 2, isa.CoFICond, false))
	tr.Branch(branch(3, 4, isa.CoFICond, true))
	if got := len(tr.Snapshot()); got != 1 {
		t.Fatalf("recorded %d, want 1 (not-taken conditionals invisible)", got)
	}
}

// TestHistoryFlushing demonstrates the fundamental weakness the paper
// contrasts FlowGuard against (§7.1.1, [35]): any 16 legal branches
// evict the attack history from a 16-deep LBR, while FlowGuard's ToPA
// buffer retains kilobytes of packets.
func TestHistoryFlushing(t *testing.T) {
	tr := lbr.New(lbr.Depth16, lbr.FilterCFI)
	// The "attack": a wild indirect branch.
	tr.Branch(branch(0xbad, 0xdead, isa.CoFIIndirect, true))
	// Sixteen innocuous returns later...
	for i := 0; i < 16; i++ {
		tr.Branch(branch(uint64(0x1000+i), uint64(0x2000+i), isa.CoFIRet, true))
	}
	for _, e := range tr.Snapshot() {
		if e.From == 0xbad {
			t.Fatal("attack record survived 16 legal branches; LBR should have flushed it")
		}
	}
	if tr.Depth() != 16 {
		t.Errorf("depth = %d", tr.Depth())
	}
}

// TestRingOrder: snapshot is oldest-first after wrap.
func TestRingOrder(t *testing.T) {
	tr := lbr.New(4, lbr.FilterAll)
	for i := 0; i < 6; i++ {
		tr.Branch(branch(uint64(i), uint64(i), isa.CoFIRet, true))
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("len = %d, want 4", len(snap))
	}
	for i, e := range snap {
		if e.From != uint64(2+i) {
			t.Errorf("snapshot[%d] = %+v, want From=%d", i, e, 2+i)
		}
	}
}

// TestCostIsNegligible: the Table 1 "<1%" property.
func TestCostIsNegligible(t *testing.T) {
	tr := lbr.New(lbr.Depth32, lbr.FilterAll)
	for i := 0; i < 1000; i++ {
		tr.Branch(branch(1, 2, isa.CoFIRet, true))
	}
	if got := tr.Cycles(); got != uint64(1000*lbr.CyclesPerBranch) {
		t.Errorf("cycles = %d", got)
	}
	tr.ResetCycles()
	if tr.Cycles() != 0 {
		t.Error("ResetCycles did not zero the meter")
	}
}

func TestDefaultDepth(t *testing.T) {
	if d := lbr.New(0, lbr.FilterAll).Depth(); d != lbr.Depth32 {
		t.Errorf("default depth = %d, want 32", d)
	}
}
