// Package lbr models the Last Branch Record facility from Table 1 of the
// paper: a fixed-depth register stack (16 or 32 entries) of the most
// recent branch source/target pairs, rotated for free by the hardware.
//
// LBR supports CoFI-type filtering (e.g. recording only calls/returns/
// indirect jumps, as kBouncer/ROPecker/PathArmor configure it) and costs
// essentially nothing to the traced program (<1%), but its tiny depth is
// exactly the "LBR pollution" weakness the paper contrasts FlowGuard
// against: any 16/32 legal branches flush the attack history.
package lbr

import (
	"flowguard/internal/isa"
	"flowguard/internal/trace"
)

// Depths of real LBR implementations.
const (
	Depth16 = 16
	Depth32 = 32
)

// CyclesPerBranch is the calibrated cost of the register rotation
// (effectively free; the <1% in Table 1).
const CyclesPerBranch = 0.02

// Filter selects which CoFI classes are recorded.
type Filter struct {
	Direct   bool
	Cond     bool
	Indirect bool
	Ret      bool
	Far      bool
}

// FilterAll records every class.
var FilterAll = Filter{Direct: true, Cond: true, Indirect: true, Ret: true, Far: true}

// FilterCFI is the configuration CFI monitors use: indirect branches and
// returns only (conditional and direct branches are noise to them).
var FilterCFI = Filter{Indirect: true, Ret: true}

func (f Filter) match(c isa.CoFIClass) bool {
	switch c {
	case isa.CoFIDirect:
		return f.Direct
	case isa.CoFICond:
		return f.Cond
	case isa.CoFIIndirect:
		return f.Indirect
	case isa.CoFIRet:
		return f.Ret
	case isa.CoFIFarTransfer:
		return f.Far
	default:
		return false
	}
}

// Entry is one from/to register pair.
type Entry struct {
	From uint64
	To   uint64
}

// Tracer implements trace.Sink with a fixed-depth ring of branch pairs.
type Tracer struct {
	Filter   Filter
	ring     []Entry
	next     int
	full     bool
	Branches uint64
}

// New returns an LBR stack of the given depth with the given filter.
func New(depth int, f Filter) *Tracer {
	if depth <= 0 {
		depth = Depth32
	}
	return &Tracer{Filter: f, ring: make([]Entry, depth)}
}

// Branch implements trace.Sink.
func (t *Tracer) Branch(b trace.Branch) {
	if !t.Filter.match(b.Class) {
		return
	}
	if b.Class == isa.CoFICond && !b.Taken {
		return // LBR records taken branches only
	}
	t.Branches++
	t.ring[t.next] = Entry{From: b.Source, To: b.Target}
	t.next = (t.next + 1) % len(t.ring)
	if t.next == 0 {
		t.full = true
	}
}

// Snapshot returns the recorded pairs oldest-first; at most depth entries
// survive, which is the mechanism's fundamental limit.
func (t *Tracer) Snapshot() []Entry {
	if !t.full {
		out := make([]Entry, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Entry, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Depth returns the stack depth.
func (t *Tracer) Depth() int { return len(t.ring) }

// Cycles implements the calibrated cost model.
func (t *Tracer) Cycles() uint64 { return uint64(float64(t.Branches) * CyclesPerBranch) }

// ResetCycles zeroes the branch counter driving the meter.
func (t *Tracer) ResetCycles() { t.Branches = 0 }

var _ trace.Sink = (*Tracer)(nil)
var _ trace.CycleMeter = (*Tracer)(nil)
