package bts_test

import (
	"testing"

	"flowguard/internal/isa"
	"flowguard/internal/trace"
	"flowguard/internal/trace/bts"
)

func branch(src, dst uint64, class isa.CoFIClass, taken bool) trace.Branch {
	return trace.Branch{Class: class, Source: src, Target: dst, Taken: taken}
}

// TestRecordsEverything pins BTS's defining property (Table 1): no event
// filtering — even statically known direct branches are stored.
func TestRecordsEverything(t *testing.T) {
	tr := bts.New(0)
	classes := []isa.CoFIClass{
		isa.CoFIDirect, isa.CoFICond, isa.CoFIIndirect, isa.CoFIRet, isa.CoFIFarTransfer,
	}
	for i, c := range classes {
		tr.Branch(branch(uint64(i), uint64(100+i), c, true))
	}
	if tr.Records != uint64(len(classes)) {
		t.Fatalf("records = %d, want %d (BTS has no filtering)", tr.Records, len(classes))
	}
	snap := tr.Snapshot()
	for i := range classes {
		if snap[i].From != uint64(i) || snap[i].To != uint64(100+i) {
			t.Errorf("record %d = %+v", i, snap[i])
		}
	}
}

// TestCircularBuffer checks oldest-first ordering across a wrap.
func TestCircularBuffer(t *testing.T) {
	tr := bts.New(4)
	for i := 0; i < 10; i++ {
		tr.Branch(branch(uint64(i), uint64(i), isa.CoFIDirect, true))
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot length = %d, want 4", len(snap))
	}
	for i, r := range snap {
		if r.From != uint64(6+i) {
			t.Errorf("snapshot[%d].From = %d, want %d (oldest first)", i, r.From, 6+i)
		}
	}
}

// TestNotTakenFlag: the record flags encode branch direction.
func TestNotTakenFlag(t *testing.T) {
	tr := bts.New(0)
	tr.Branch(branch(1, 2, isa.CoFICond, false))
	tr.Branch(branch(3, 4, isa.CoFICond, true))
	snap := tr.Snapshot()
	if snap[0].Flags != 1 || snap[1].Flags != 0 {
		t.Errorf("flags = %d, %d; want 1 (not taken), 0 (taken)", snap[0].Flags, snap[1].Flags)
	}
}

// TestCostModel: BTS charges per record — the Table 1 "High (50X)" driver.
func TestCostModel(t *testing.T) {
	tr := bts.New(0)
	for i := 0; i < 100; i++ {
		tr.Branch(branch(1, 2, isa.CoFIDirect, true))
	}
	if got := tr.Cycles(); got != 100*bts.CyclesPerRecord {
		t.Errorf("cycles = %d, want %d", got, 100*bts.CyclesPerRecord)
	}
	tr.ResetCycles()
	if tr.Cycles() != 0 {
		t.Error("ResetCycles did not zero the meter")
	}
}
