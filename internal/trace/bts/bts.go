// Package bts models the Branch Trace Store mechanism from Table 1 of the
// paper: every control transfer — including statically known direct
// branches — is written as a full source/target record to a
// memory-resident buffer.
//
// BTS needs no decoding (records are self-describing), offers no
// filtering, and is expensive to the traced program: each record costs a
// microcode-assisted store plus the amortized buffer-management
// interrupt, which is what produces the ~50x geomean tracing slowdown on
// SPEC CPU2006 the paper reports. The per-record cost constant below is
// calibrated to that figure (EXPERIMENTS.md).
package bts

import (
	"flowguard/internal/trace"
)

// RecordSize is the size of one BTS record in bytes (source, target,
// flags — the layout of the real DS-area record).
const RecordSize = 24

// CyclesPerRecord is the calibrated cost of retiring one branch with BTS
// armed (store + serialization + amortized DS interrupt handling).
const CyclesPerRecord = 220

// Record is one branch record.
type Record struct {
	From  uint64
	To    uint64
	Flags uint64
}

// Tracer implements trace.Sink by storing a record for every CoFI.
type Tracer struct {
	// Buf is the memory-resident BTS buffer; when full the oldest
	// records are overwritten (circular, interrupt cost amortized into
	// CyclesPerRecord).
	Buf []Record
	// Cap bounds the buffer length (0 = unbounded, for analysis runs).
	Cap int

	Records uint64
	next    int
	wrapped bool
}

// New returns a tracer with the given buffer capacity (0 = unbounded).
func New(capacity int) *Tracer { return &Tracer{Cap: capacity} }

// Branch implements trace.Sink. BTS has no event filtering: every class,
// including direct branches, is recorded.
func (t *Tracer) Branch(b trace.Branch) {
	t.Records++
	var flags uint64
	if !b.Taken {
		flags = 1
	}
	r := Record{From: b.Source, To: b.Target, Flags: flags}
	if t.Cap == 0 {
		t.Buf = append(t.Buf, r)
		return
	}
	if len(t.Buf) < t.Cap {
		t.Buf = append(t.Buf, r)
		return
	}
	t.Buf[t.next] = r
	t.next = (t.next + 1) % t.Cap
	t.wrapped = true
}

// Snapshot returns the buffered records oldest-first.
func (t *Tracer) Snapshot() []Record {
	if !t.wrapped {
		out := make([]Record, len(t.Buf))
		copy(out, t.Buf)
		return out
	}
	out := make([]Record, 0, len(t.Buf))
	out = append(out, t.Buf[t.next:]...)
	out = append(out, t.Buf[:t.next]...)
	return out
}

// Cycles implements the calibrated cost model.
func (t *Tracer) Cycles() uint64 { return t.Records * CyclesPerRecord }

// ResetCycles zeroes the record counter driving the meter.
func (t *Tracer) ResetCycles() { t.Records = 0 }

var _ trace.Sink = (*Tracer)(nil)
var _ trace.CycleMeter = (*Tracer)(nil)
