package ipt

import (
	"math/bits"
	"testing"
)

// TestDFATableMatchesGrammar pins every pktTab entry against the packet
// grammar rules the scanners used to branch on inline: class, total
// length, and the class-specific auxiliary value must all agree for each
// of the 256 possible header bytes.
func TestDFATableMatchesGrammar(t *testing.T) {
	for hb := 0; hb < 256; hb++ {
		b := byte(hb)
		e := pktTab[b]
		class, length, aux := e&pcClassMask, int(e&pcLenMask), uint8(e>>8)
		switch {
		case b == 0x00:
			if class != pcPAD || length != 1 {
				t.Errorf("%#02x: got class %#x len %d, want PAD len 1", b, class, length)
			}
		case b == 0x02:
			if class != pcExt {
				t.Errorf("%#02x: got class %#x, want extended escape", b, class)
			}
		case b&1 == 0:
			n := bits.Len8(b) - 2
			if n >= 1 && n <= maxTNTBits {
				if class != pcTNT || length != 1 || int(aux) != n {
					t.Errorf("%#02x: got class %#x len %d aux %d, want TNT len 1 bits %d", b, class, length, aux, n)
				}
			} else if class != pcBad {
				t.Errorf("%#02x: got class %#x, want bad (invalid TNT)", b, class)
			}
		default:
			// TIP proper is the record-emitting family member and carries
			// its own class; the rest of the family shares pcTIP.
			wantClass := pcTIP
			var kind Kind
			valid := true
			switch b & 0x1f {
			case opTIP:
				kind, wantClass = KindTIP, pcTIPRec
			case opTIPPGE:
				kind = KindTIPPGE
			case opTIPPGD:
				kind = KindTIPPGD
			case opFUP:
				kind = KindFUP
			default:
				valid = false
			}
			if !valid {
				if class != pcBad {
					t.Errorf("%#02x: got class %#x, want bad (unknown TIP op)", b, class)
				}
				continue
			}
			wantLen := 1 + ipPayloadLen(b>>5)
			if class != wantClass || length != wantLen || Kind(aux) != kind {
				t.Errorf("%#02x: got class %#x len %d kind %v, want class %#x len %d kind %v",
					b, class, length, Kind(aux), wantClass, wantLen, kind)
			}
		}
	}
}

// TestTIPRegisterDispatch pins the register-dispatch constants the
// incremental scanner uses for the TIP family against the table: every
// odd header byte must agree on validity and total length, and the
// nibble-packed payload lengths must match ipPayloadLen for all ipb.
func TestTIPRegisterDispatch(t *testing.T) {
	for hb := 1; hb < 256; hb += 2 {
		b := byte(hb)
		e := pktTab[b]
		valid := tipOpSet>>(b&0x1f)&1 != 0
		if wantValid := e&pcClassMask != pcBad; valid != wantValid {
			t.Errorf("%#02x: bitmap valid = %v, table valid = %v", b, valid, wantValid)
		}
		if !valid {
			continue
		}
		plen := 1 + int(ipLenNibbles>>((b>>5)*4)&0xf)
		if want := int(e & pcLenMask); plen != want {
			t.Errorf("%#02x: nibble len = %d, table len = %d", b, plen, want)
		}
	}
	for ipb := uint8(0); ipb < 8; ipb++ {
		if got, want := int(ipLenNibbles>>(ipb*4)&0xf), ipPayloadLen(ipb); got != want {
			t.Errorf("ipb %d: nibble payload len = %d, want %d", ipb, got, want)
		}
	}
}

// TestTNTWordProbe pins the word classifier: a word is a TNT run iff all
// 8 bytes individually classify as pcTNT, and the summed bit count
// matches the per-byte grammar.
func TestTNTWordProbe(t *testing.T) {
	isTNTByte := func(b byte) bool { return pktTab[b]&pcClassMask == pcTNT }
	// Exhaustive over single differing bytes in an otherwise-TNT word.
	for hb := 0; hb < 256; hb++ {
		b := byte(hb)
		var w uint64
		for k := 0; k < 8; k++ {
			w |= uint64(0x06) << (8 * k) // one-outcome TNT filler
		}
		w = w&^0xff | uint64(b) // byte 0 varies
		if got, want := isTNTWord(w), isTNTByte(b); got != want {
			t.Errorf("word with byte %#02x: isTNTWord = %v, want %v", b, got, want)
		}
	}
	// Bit counts: a few mixed-width words.
	words := [][8]byte{
		{0x06, 0x06, 0x06, 0x06, 0x06, 0x06, 0x06, 0x06},
		{0xfe, 0xfe, 0xfe, 0xfe, 0xfe, 0xfe, 0xfe, 0xfe},
		{0x06, 0xfe, 0x0a, 0x72, 0x34, 0x06, 0xd8, 0x1c},
	}
	for _, bs := range words {
		var w uint64
		want := 0
		for k, b := range bs {
			w |= uint64(b) << (8 * k)
			want += bits.Len8(b) - 2
		}
		if !isTNTWord(w) {
			t.Fatalf("word % x not recognized as TNT run", bs)
		}
		if got := tntWordBits(w); got != want {
			t.Errorf("tntWordBits(% x) = %d, want %d", bs, got, want)
		}
	}
}
