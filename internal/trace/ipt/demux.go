package ipt

// Demux splits shared per-core trace streams back into per-process
// streams keyed by CR3, the software analogue of what the paper's kernel
// module does when several traced processes share a core's trace unit
// (§5.1/§6): the scheduler emits a bare PIP (plus a MODE.Exec packet) at
// every context switch-in, and the demux uses those markers to route the
// PIP-bounded spans between them to the per-process sink bound to that
// CR3.
//
// The output contract is byte identity: the stream a sink receives is
// exactly the stream a dedicated CR3-filtered tracer would have produced
// for that process alone. The switch markers themselves (bare PIP + MODE)
// are attribution metadata, not process trace, and are stripped; PIPs
// inside a PSB+ region are part of the synchronization context a solo
// tracer also emits and are forwarded unchanged.
//
// The PSB+ PIP doubles as an attribution check. A context-switch marker
// lost to stream corruption silently misattributes every byte up to the
// next PSB; when the PSB+ PIP then disagrees with the current attribution,
// the demux classifies the discrepancy as an unmarked loss, reports BOTH
// processes to OnLoss (the one that was wrongly credited the span and the
// one whose span went missing), and rebinds to the PSB's CR3 — the PSB+
// context is self-contained, so the re-attributed stream is decodable
// from that point.
//
// Grammar damage in a span is contained the same way a real decoder
// contains it: the span's process is reported to OnLoss, bytes are
// dropped up to the next PSB (a packet-aligned cut, so the sink stream
// stays parseable), and scanning resumes there.
//
// The demux is not internally locked: the kernel module pumps all cores
// under its own lock, in deterministic core order.
type Demux struct {
	sinks map[uint64]*ToPA
	cores []coreState

	// OnLoss, when set, is called with the CR3 of every process whose
	// trace bytes were lost or misattributed (grammar damage inside its
	// span, or an unmarked context switch detected at a PSB). A process
	// may be reported more than once.
	OnLoss func(cr3 uint64)

	// Resyncs counts drops to the next PSB forced by grammar damage.
	Resyncs int
	// UnmarkedLosses counts PSB+ PIP attribution mismatches (a lost or
	// corrupted context-switch marker upstream).
	UnmarkedLosses int
	// ForwardedBytes, StrippedBytes and DroppedBytes partition the input:
	// bytes routed to sinks, switch-marker bytes consumed by the demux
	// itself, and bytes discarded (unknown attribution, no sink bound, or
	// damage resynchronization).
	ForwardedBytes uint64
	StrippedBytes  uint64
	DroppedBytes   uint64
}

// coreState is the per-core incremental scan state.
type coreState struct {
	carry    []byte // packet truncated at the end of the previous feed
	curCR3   uint64
	bound    bool // curCR3 holds a valid attribution
	inPSB    bool // between PSB and PSBEND
	skipping bool // dropping to the next PSB after grammar damage
}

// NewDemux returns a demux for the given number of per-core streams.
func NewDemux(cores int) *Demux {
	return &Demux{
		sinks: make(map[uint64]*ToPA),
		cores: make([]coreState, cores),
	}
}

// Bind routes spans attributed to cr3 into sink, replacing any previous
// binding (the kernel module rebinds a process's CR3 to the running
// thread's sink at each switch-in when threads share an address space).
// Spans for CR3 values with no binding are dropped and counted.
func (x *Demux) Bind(cr3 uint64, sink *ToPA) { x.sinks[cr3] = sink }

// Unbind removes the binding for cr3 (process exit).
func (x *Demux) Unbind(cr3 uint64) { delete(x.sinks, cr3) }

// Feed consumes one appended chunk of core's shared stream. Chunks may be
// cut anywhere — a packet truncated at the chunk end is carried over and
// completed by the next Feed, exactly as WindowDecoder does.
//
//fg:hotpath demux runs on every multicore pump
func (x *Demux) Feed(core int, chunk []byte) {
	cs := &x.cores[core]
	buf := chunk
	if len(cs.carry) > 0 {
		cs.carry = append(cs.carry, chunk...)
		buf = cs.carry
	}
	n := x.scan(cs, buf)
	rest := buf[n:]
	if len(cs.carry) > 0 {
		m := copy(cs.carry, rest)
		cs.carry = cs.carry[:m]
	} else if len(rest) > 0 {
		cs.carry = append(cs.carry[:0], rest...)
	}
}

// spanScan is the per-call state of one scan pass: the pending output
// span and its sink. It lives on scan's stack (methods, not closures, so
// the hot path neither allocates nor defeats inlining).
type spanScan struct {
	x         *Demux
	cs        *coreState
	buf       []byte
	spanStart int
	spanSink  *ToPA
}

// flush forwards the pending span [spanStart, end) to its sink.
func (s *spanScan) flush(end int) {
	if s.spanStart >= 0 {
		if end > s.spanStart {
			s.spanSink.Write(s.buf[s.spanStart:end])
			s.x.ForwardedBytes += uint64(end - s.spanStart)
		}
		s.spanStart = -1
	}
}

// keep marks the packet at start as part of the current span if the
// attribution has a sink, otherwise counts the bytes as dropped.
func (s *spanScan) keep(start, plen int) {
	if s.spanStart < 0 {
		if !s.cs.bound {
			s.x.DroppedBytes += uint64(plen)
			return
		}
		sink := s.x.sinks[s.cs.curCR3]
		if sink == nil {
			s.x.DroppedBytes += uint64(plen)
			return
		}
		s.spanStart, s.spanSink = start, sink
	}
}

// damage flushes, reports the current attribution, and enters
// drop-to-next-PSB resynchronization. Attribution is invalidated: the
// next PSB's PIP re-establishes it.
func (s *spanScan) damage(at int) {
	s.flush(at)
	if s.cs.bound && s.x.OnLoss != nil {
		s.x.OnLoss(s.cs.curCR3)
	}
	s.cs.bound = false
	s.cs.inPSB = false
	s.cs.skipping = true
	s.x.Resyncs++
}

// scan consumes complete packets from buf and returns how many bytes it
// consumed. Kept packets are forwarded to the current attribution's sink
// in contiguous spans — one sink write per span, not per packet.
//
//fg:hotpath
func (x *Demux) scan(cs *coreState, buf []byte) int {
	n := len(buf)
	i := 0
	ss := spanScan{x: x, cs: cs, buf: buf, spanStart: -1}

	for i < n {
		if cs.skipping {
			p := Sync(buf, i)
			if p < 0 {
				// Keep a partial-PSB-sized tail unconsumed in case the
				// PSB completes in the next chunk.
				keepTail := n - (PSBSize - 1)
				if keepTail < i {
					keepTail = i
				}
				x.DroppedBytes += uint64(keepTail - i)
				return keepTail
			}
			x.DroppedBytes += uint64(p - i)
			cs.skipping = false
			i = p
			continue
		}
		b := buf[i]
		e := pktTab[b]
		c := e & pcClassMask
		if c == pcExt {
			if i+1 >= n {
				ss.flush(i)
				return i // truncated tail
			}
			switch buf[i+1] {
			case extPSB:
				if i+PSBSize > n {
					ss.flush(i)
					if isPSBPrefix(buf[i:]) {
						return i // PSB split across chunks
					}
					ss.damage(i)
					continue
				}
				if !isPSBAt(buf, i) {
					ss.damage(i)
					continue
				}
				// Peek at the PIP that emitPSB writes directly after the
				// PSB: it names the CR3 this synchronization context
				// belongs to, which both re-establishes attribution after
				// damage and cross-checks it against the markers.
				if i+PSBSize+1 >= n || (buf[i+PSBSize] == 0x02 && buf[i+PSBSize+1] == extPIP && i+PSBSize+10 > n) {
					ss.flush(i)
					return i // carry until the peek is decidable
				}
				if buf[i+PSBSize] == 0x02 && buf[i+PSBSize+1] == extPIP {
					cr3 := leUint64(buf[i+PSBSize+2 : i+PSBSize+10])
					if !cs.bound {
						cs.bound = true
						cs.curCR3 = cr3
					} else if cr3 != cs.curCR3 {
						// Unmarked loss: a context-switch marker went
						// missing upstream. Both processes are suspect.
						ss.flush(i)
						x.UnmarkedLosses++
						if x.OnLoss != nil {
							x.OnLoss(cs.curCR3)
							x.OnLoss(cr3)
						}
						cs.curCR3 = cr3
					}
					ss.keep(i, PSBSize+10)
					cs.inPSB = true
					i += PSBSize + 10
					continue
				}
				// PSB without a trailing PIP (corrupt or foreign stream):
				// forward under the existing attribution if any.
				ss.keep(i, PSBSize)
				cs.inPSB = true
				i += PSBSize
			case extPSBEND:
				ss.keep(i, 2)
				cs.inPSB = false
				i += 2
			case extPIP:
				if i+10 > n {
					ss.flush(i)
					return i
				}
				if cs.inPSB {
					// Synchronization context, part of the process's own
					// stream (handled above when directly after the PSB,
					// here if padding intervened).
					ss.keep(i, 10)
					i += 10
					continue
				}
				// Bare PIP: the scheduler's context-switch marker.
				// Attribution switches here; the marker itself is demux
				// metadata, never process trace.
				ss.flush(i)
				cs.curCR3 = leUint64(buf[i+2 : i+10])
				cs.bound = true
				x.StrippedBytes += 10
				i += 10
			case extMODE:
				if i+modePacketLen > n {
					ss.flush(i)
					return i
				}
				// MODE accompanies the switch marker; solo streams never
				// contain one, so it is always stripped.
				ss.flush(i)
				x.StrippedBytes += modePacketLen
				i += modePacketLen
			case extOVF:
				ss.keep(i, 2)
				i += 2
			default:
				ss.damage(i)
				continue
			}
			continue
		}
		if c == pcBad {
			ss.damage(i)
			continue
		}
		// TNT, TIP family, PAD: fixed lengths from the DFA table.
		plen := int(e & pcLenMask)
		if c == pcTIP || c == pcTIPRec {
			plen = 1 + int(ipLenNibbles>>((b>>5)*4)&0xf)
		}
		if i+plen > n {
			ss.flush(i)
			return i // truncated tail
		}
		ss.keep(i, plen)
		i += plen
	}
	ss.flush(n)
	return n
}
