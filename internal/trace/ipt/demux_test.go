package ipt_test

// Demux tests: splitting a shared per-core stream back into per-process
// streams must reproduce, byte for byte, what a dedicated CR3-filtered
// tracer would have captured for each process alone; switch markers are
// stripped, damage is contained by PSB resynchronization, and lost
// markers surface as unmarked losses at the next PSB's attribution check.

import (
	"bytes"
	"testing"

	"flowguard/internal/isa"
	"flowguard/internal/trace"
	"flowguard/internal/trace/ipt"
)

// demuxTask is one simulated task: its CR3, saved packetization context
// for the shared tracer, branch-generation state, and a dedicated solo
// tracer fed the identical branch sequence as the byte-identity
// reference.
type demuxTask struct {
	cr3  uint64
	ctx  ipt.TraceContext
	ip   uint64
	n    int
	solo *ipt.Tracer
}

func newDemuxTask(t testing.TB, cr3, base uint64, psbPeriod int) *demuxTask {
	t.Helper()
	solo := ipt.NewTracer(ipt.NewToPA(1 << 20))
	ctl := ctlDefault | ipt.CtlCR3Filter
	if err := solo.WriteMSR(ipt.MSRRTITCtl, ctl); err != nil {
		t.Fatal(err)
	}
	if err := solo.WriteMSR(ipt.MSRRTITCR3Match, cr3); err != nil {
		t.Fatal(err)
	}
	solo.SetCR3(cr3)
	if psbPeriod > 0 {
		solo.PSBPeriod = psbPeriod
	}
	return &demuxTask{cr3: cr3, ip: base, solo: solo}
}

// sliceBranches generates the task's next slice of branches: TNT runs
// and indirect TIPs, always ending on an indirect so no TNT bits are
// pending across a slice boundary end (the tests compare final buffers;
// mid-run pending bits travel in the context either way).
func (tk *demuxTask) sliceBranches(n int) []trace.Branch {
	var out []trace.Branch
	for i := 0; i < n; i++ {
		tk.n++
		run := tk.n % 5
		for j := 0; j < run; j++ {
			out = append(out, trace.Branch{
				Class: isa.CoFICond, Source: tk.ip, Target: tk.ip + 4,
				Taken: (tk.n+j)%3 != 0,
			})
		}
		cls := isa.CoFIIndirect
		if tk.n%7 == 3 {
			cls = isa.CoFIRet
		}
		tgt := tk.ip&^0xfffff | uint64((tk.n*2654435761)%(1<<20))
		out = append(out, trace.Branch{Class: cls, Source: tk.ip, Target: tgt, Taken: true})
		tk.ip = tgt
	}
	return out
}

// runShared drives tasks round-robin over one shared-core tracer for the
// given number of rounds, mirroring every branch into each task's solo
// tracer, and returns the shared stream plus the byte offset of every
// context-switch marker.
func runShared(t testing.TB, tasks []*demuxTask, rounds, slice, psbPeriod int) (*ipt.Tracer, []uint64) {
	t.Helper()
	shared := ipt.NewTracer(ipt.NewToPA(1 << 20))
	if err := shared.WriteMSR(ipt.MSRRTITCtl, ctlDefault); err != nil {
		t.Fatal(err)
	}
	if psbPeriod > 0 {
		shared.PSBPeriod = psbPeriod
	}
	var markers []uint64
	var cur *demuxTask
	for r := 0; r < rounds; r++ {
		for _, tk := range tasks {
			if cur != tk {
				// Same task keeping the core is not a context switch (the
				// kernel module skips the marker the same way).
				var prev *ipt.TraceContext
				if cur != nil {
					prev = &cur.ctx
				}
				markers = append(markers, shared.Out.TotalWritten())
				shared.SwitchTask(prev, tk.ctx, tk.cr3, 1)
				cur = tk
			}
			for _, b := range tk.sliceBranches(slice) {
				shared.Branch(b)
				tk.solo.Branch(b)
			}
		}
	}
	return shared, markers
}

// markerLen is the on-stream size of one context-switch marker: a bare
// PIP (10 bytes) plus the accompanying MODE packet (3 bytes).
const markerLen = 13

func feedChunks(dmx *ipt.Demux, core int, stream []byte, chunk int) {
	for off := 0; off < len(stream); off += chunk {
		end := off + chunk
		if end > len(stream) {
			end = len(stream)
		}
		dmx.Feed(core, stream[off:end])
	}
}

func TestDemuxRoundTripByteIdentity(t *testing.T) {
	for _, chunk := range []int{1, 7, 501, 1 << 20} {
		tasks := []*demuxTask{
			newDemuxTask(t, 0x1000, 0x400000, 0),
			newDemuxTask(t, 0x2000, 0x800000, 0),
			newDemuxTask(t, 0x3000, 0xc00000, 0),
		}
		shared, markers := runShared(t, tasks, 8, 12, 0)
		stream := shared.Out.Snapshot()

		dmx := ipt.NewDemux(1)
		sinks := make([]*ipt.ToPA, len(tasks))
		for i, tk := range tasks {
			sinks[i] = ipt.NewToPA(1 << 20)
			dmx.Bind(tk.cr3, sinks[i])
		}
		feedChunks(dmx, 0, stream, chunk)

		for i, tk := range tasks {
			got, want := sinks[i].Snapshot(), tk.solo.Out.Snapshot()
			if !bytes.Equal(got, want) {
				t.Fatalf("chunk=%d task %d: demuxed stream (%d bytes) != solo stream (%d bytes)",
					chunk, i, len(got), len(want))
			}
		}
		if dmx.Resyncs != 0 || dmx.UnmarkedLosses != 0 {
			t.Errorf("chunk=%d: clean stream counted Resyncs=%d UnmarkedLosses=%d",
				chunk, dmx.Resyncs, dmx.UnmarkedLosses)
		}
		wantStripped := uint64(len(markers) * markerLen)
		if dmx.StrippedBytes != wantStripped {
			t.Errorf("chunk=%d: StrippedBytes = %d, want %d (%d markers)",
				chunk, dmx.StrippedBytes, wantStripped, len(markers))
		}
		if dmx.DroppedBytes != 0 {
			t.Errorf("chunk=%d: DroppedBytes = %d, want 0", chunk, dmx.DroppedBytes)
		}
		if got := dmx.ForwardedBytes + dmx.StrippedBytes; got != uint64(len(stream)) {
			t.Errorf("chunk=%d: forwarded+stripped = %d, want full input %d",
				chunk, got, len(stream))
		}
	}
}

func TestDemuxUnboundSpansDropped(t *testing.T) {
	tasks := []*demuxTask{
		newDemuxTask(t, 0x1000, 0x400000, 0),
		newDemuxTask(t, 0x2000, 0x800000, 0),
	}
	shared, _ := runShared(t, tasks, 6, 10, 0)
	stream := shared.Out.Snapshot()

	dmx := ipt.NewDemux(1)
	sink := ipt.NewToPA(1 << 20)
	dmx.Bind(tasks[0].cr3, sink) // task 1 deliberately unbound
	feedChunks(dmx, 0, stream, 777)

	if !bytes.Equal(sink.Snapshot(), tasks[0].solo.Out.Snapshot()) {
		t.Fatal("bound task's stream perturbed by an unbound neighbor")
	}
	if dmx.DroppedBytes == 0 {
		t.Error("unbound task's spans were not counted as dropped")
	}
	if dmx.Resyncs != 0 || dmx.UnmarkedLosses != 0 {
		t.Errorf("unbound != lost: Resyncs=%d UnmarkedLosses=%d", dmx.Resyncs, dmx.UnmarkedLosses)
	}
}

func TestDemuxCorruptMarkerResyncs(t *testing.T) {
	tasks := []*demuxTask{
		newDemuxTask(t, 0x1000, 0x400000, 256),
		newDemuxTask(t, 0x2000, 0x800000, 256),
	}
	shared, markers := runShared(t, tasks, 8, 15, 256)
	stream := shared.Out.Snapshot()

	// Corrupt a mid-stream switch marker into an unknown extended packet:
	// grammar damage inside the span, contained by dropping to the next
	// PSB and reporting the attributed process.
	mid := markers[len(markers)/2]
	stream[mid+1] = 0x55

	dmx := ipt.NewDemux(1)
	var lost []uint64
	dmx.OnLoss = func(cr3 uint64) { lost = append(lost, cr3) }
	for i := range tasks {
		dmx.Bind(tasks[i].cr3, ipt.NewToPA(1<<20))
	}
	feedChunks(dmx, 0, stream, 333)

	if dmx.Resyncs == 0 {
		t.Error("corrupt marker did not force a resync")
	}
	if len(lost) == 0 {
		t.Error("corrupt marker reported no loss")
	}
	if dmx.DroppedBytes == 0 {
		t.Error("resync dropped no bytes")
	}
}

func TestDemuxLostMarkerIsUnmarkedLoss(t *testing.T) {
	// A low PSB period and fat slices guarantee a PSB inside the
	// misattributed span, which is the detection opportunity.
	tasks := []*demuxTask{
		newDemuxTask(t, 0x1000, 0x400000, 64),
		newDemuxTask(t, 0x2000, 0x800000, 64),
	}
	shared, markers := runShared(t, tasks, 8, 40, 64)
	stream := shared.Out.Snapshot()

	// Excise one whole mid-stream marker: the following span is silently
	// misattributed until the next PSB+ PIP names the true CR3.
	mid := markers[len(markers)/2]
	cut := append(append([]byte(nil), stream[:mid]...), stream[mid+markerLen:]...)

	dmx := ipt.NewDemux(1)
	lost := map[uint64]bool{}
	dmx.OnLoss = func(cr3 uint64) { lost[cr3] = true }
	for i := range tasks {
		dmx.Bind(tasks[i].cr3, ipt.NewToPA(1<<20))
	}
	feedChunks(dmx, 0, cut, 4096)

	if dmx.UnmarkedLosses == 0 {
		t.Fatal("lost context-switch marker was not classified as an unmarked loss")
	}
	if !lost[tasks[0].cr3] || !lost[tasks[1].cr3] {
		t.Errorf("unmarked loss must report both processes, got %v", lost)
	}
}

func TestDemuxMultiCoreStreamsIndependent(t *testing.T) {
	// Two cores fed interleaved chunks: per-core carry and attribution
	// state must not bleed between streams.
	tasksA := []*demuxTask{
		newDemuxTask(t, 0x1000, 0x400000, 0),
		newDemuxTask(t, 0x2000, 0x800000, 0),
	}
	tasksB := []*demuxTask{
		newDemuxTask(t, 0x3000, 0xc00000, 0),
	}
	sharedA, _ := runShared(t, tasksA, 6, 10, 0)
	sharedB, _ := runShared(t, tasksB, 6, 10, 0)
	sA, sB := sharedA.Out.Snapshot(), sharedB.Out.Snapshot()

	dmx := ipt.NewDemux(2)
	sinks := map[uint64]*ipt.ToPA{}
	for _, tk := range append(append([]*demuxTask(nil), tasksA...), tasksB...) {
		sinks[tk.cr3] = ipt.NewToPA(1 << 20)
		dmx.Bind(tk.cr3, sinks[tk.cr3])
	}
	// Alternate small chunks between the cores.
	for off := 0; off < len(sA) || off < len(sB); off += 97 {
		for core, s := range [][]byte{sA, sB} {
			if off >= len(s) {
				continue
			}
			end := off + 97
			if end > len(s) {
				end = len(s)
			}
			dmx.Feed(core, s[off:end])
		}
	}
	for _, tk := range append(append([]*demuxTask(nil), tasksA...), tasksB...) {
		if !bytes.Equal(sinks[tk.cr3].Snapshot(), tk.solo.Out.Snapshot()) {
			t.Fatalf("cr3 %#x: interleaved two-core feed broke byte identity", tk.cr3)
		}
	}
}

// BenchmarkDemux measures demux throughput over a realistic two-task
// shared-core stream (tier-1: the pump runs at every slice boundary and
// endpoint in multicore mode).
func BenchmarkDemux(b *testing.B) {
	tasks := []*demuxTask{
		newDemuxTask(b, 0x1000, 0x400000, 0),
		newDemuxTask(b, 0x2000, 0x800000, 0),
	}
	shared, _ := runShared(b, tasks, 40, 25, 0)
	stream := shared.Out.Snapshot()
	sinkA := ipt.NewToPA(1 << 20)
	sinkB := ipt.NewToPA(1 << 20)
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dmx := ipt.NewDemux(1)
		dmx.Bind(tasks[0].cr3, sinkA)
		dmx.Bind(tasks[1].cr3, sinkB)
		feedChunks(dmx, 0, stream, 4096)
	}
}
