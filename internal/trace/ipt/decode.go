package ipt

import (
	"errors"
	"sync"
)

// Event is one decoded packet from the fast (packet-grammar-only) layer.
type Event struct {
	Kind Kind
	// IP is the reconstructed instruction pointer for TIP/TIP.PGE/
	// TIP.PGD/FUP packets.
	IP uint64
	// Suppressed marks a TIP-family packet whose IP payload was
	// suppressed (ipbytes = 0 for TIP.PGD at far transfers).
	Suppressed bool
	// TNTBits holds up to 6 outcomes, oldest in bit 0.
	TNTBits  uint8
	TNTCount int
	// CR3 carries the PIP payload.
	CR3 uint64
	// Ctx marks FUP packets inside a PSB+ region: decoder
	// synchronization context rather than an asynchronous event.
	Ctx bool
	// Off is the byte offset of the packet header in the stream.
	Off int
}

// ErrNoSync reports a stream with no PSB to synchronize on.
var ErrNoSync = errors.New("ipt: no PSB sync point in stream")

// Sync returns the offset of the first PSB at or after from, or -1.
func Sync(buf []byte, from int) int {
	for i := from; i+PSBSize <= len(buf); i++ {
		if isPSBAt(buf, i) {
			return i
		}
	}
	return -1
}

func isPSBAt(buf []byte, i int) bool {
	if i+PSBSize > len(buf) {
		return false
	}
	for j := 0; j < psbRepeat; j++ {
		if buf[i+2*j] != 0x02 || buf[i+2*j+1] != extPSB {
			return false
		}
	}
	return true
}

// SyncPoints returns the offsets of every PSB in the stream; these are the
// boundaries the parallel fast decoder splits at (§5.3).
func SyncPoints(buf []byte) []int {
	var pts []int
	for i := 0; i+PSBSize <= len(buf); {
		if isPSBAt(buf, i) {
			pts = append(pts, i)
			i += PSBSize
		} else {
			i++
		}
	}
	return pts
}

// DecodeFast scans packet bytes starting at a packet boundary (offset 0
// must be a packet header; use Sync to find one after a ToPA wrap). It
// never consults program binaries — this is the cheap layer the fast path
// is built on. A packet truncated by the end of the buffer terminates the
// scan without error, matching a circular buffer cut mid-packet.
func DecodeFast(buf []byte) ([]Event, error) {
	return decodeFastFrom(buf, 0)
}

func decodeFastFrom(buf []byte, base int) ([]Event, error) {
	var evs []Event
	lastIP := uint64(0)
	inPSB := false
	i := 0
	n := len(buf)
	for i < n {
		b := buf[i]
		e := pktTab[b]
		switch e & pcClassMask {
		case pcTNT:
			tn := int(e >> 8)
			evs = append(evs, Event{
				Kind:     KindTNT,
				TNTBits:  (b >> 1) & (1<<tn - 1),
				TNTCount: tn,
				Off:      base + i,
			})
			i++
		case pcTIP, pcTIPRec:
			plen := int(e & pcLenMask)
			if i+plen > n {
				return evs, nil // truncated tail
			}
			kind := Kind(e >> 8)
			ev := Event{Kind: kind, Off: base + i}
			if ipb := b >> 5; ipb == 0 {
				ev.Suppressed = true
				ev.IP = lastIP
			} else {
				lastIP = ipReconstruct(ipb, buf[i+1:i+plen], lastIP)
				ev.IP = lastIP
			}
			if kind == KindFUP && inPSB {
				ev.Ctx = true
			}
			evs = append(evs, ev)
			i += plen
		case pcPAD:
			i++
			// PAD fills ToPA region tails: skip whole zero words.
			for i+8 <= n && leUint64(buf[i:]) == 0 {
				i += 8
			}
		case pcExt:
			if i+1 >= n {
				return evs, nil // truncated tail
			}
			switch buf[i+1] {
			case extPSB:
				if !isPSBAt(buf, i) {
					if i+PSBSize > n {
						return evs, nil
					}
					return evs, malformedf("malformed PSB at %d", base+i)
				}
				evs = append(evs, Event{Kind: KindPSB, Off: base + i})
				lastIP = 0
				inPSB = true
				i += PSBSize
			case extPSBEND:
				evs = append(evs, Event{Kind: KindPSBEND, Off: base + i})
				inPSB = false
				i += 2
			case extPIP:
				if i+10 > n {
					return evs, nil
				}
				evs = append(evs, Event{Kind: KindPIP, CR3: leUint64(buf[i+2 : i+10]), Off: base + i})
				i += 10
			case extMODE:
				if i+modePacketLen > n {
					return evs, nil
				}
				evs = append(evs, Event{Kind: KindMODE, TNTBits: buf[i+2], Off: base + i})
				i += modePacketLen
			case extOVF:
				evs = append(evs, Event{Kind: KindOVF, Off: base + i})
				i += 2
			default:
				return evs, malformedf("unknown extended opcode %#02x at %d", buf[i+1], base+i)
			}
		default: // pcBad
			if b&1 == 0 {
				return evs, malformedf("malformed TNT byte %#02x at %d", b, base+i)
			}
			return evs, malformedf("unknown packet header %#02x at %d", b, base+i)
		}
	}
	return evs, nil
}

// DecodeFastParallel decodes the stream with one worker per PSB-delimited
// segment, exploiting that PSB resets decoder state (§5.3: "with the help
// of packet stream boundary packets... this process can be done in
// parallel"). The leading bytes before the first PSB are decoded inline
// when the stream starts at a packet boundary; after a wrap, pass a
// buffer already Sync'd to a PSB.
func DecodeFastParallel(buf []byte, workers int) ([]Event, error) {
	pts := SyncPoints(buf)
	if len(pts) == 0 || workers <= 1 {
		return DecodeFast(buf)
	}
	segs := make([][2]int, 0, len(pts)+1)
	if pts[0] != 0 {
		segs = append(segs, [2]int{0, pts[0]})
	}
	for i, p := range pts {
		end := len(buf)
		if i+1 < len(pts) {
			end = pts[i+1]
		}
		segs = append(segs, [2]int{p, end})
	}
	results := make([][]Event, len(segs))
	errs := make([]error, len(segs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for si, s := range segs {
		wg.Add(1)
		go func(si int, lo, hi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[si], errs[si] = decodeFastFrom(buf[lo:hi], lo)
		}(si, s[0], s[1])
	}
	wg.Wait()
	var out []Event
	for si := range segs {
		// A segment cut at the next PSB may end mid-packet only if the
		// stream is corrupt; the encoder never splits packets across a
		// PSB. Truncation errors are therefore real errors here except
		// for the final segment.
		if errs[si] != nil {
			return nil, errs[si]
		}
		out = append(out, results[si]...)
	}
	return out, nil
}

// TIPRecord is one checked unit of the fast path: a TIP target plus the
// signature of the TNT run observed since the previous TIP (the
// information §4.3 attaches to ITC-CFG edges).
//
// The layout is deliberately 32 bytes — two records per cache line, no
// record ever straddling one — because the scanners emit these in bulk on
// the hot path and the checkers stream over them again per check.
type TIPRecord struct {
	// IP is the indirect branch target carried by the TIP packet.
	IP uint64
	// TNTSig is the signature of the conditional-branch outcomes seen
	// between the previous TIP and this one; TNTSigEmpty if none.
	TNTSig uint64
	// Off is the stream offset (diagnostics).
	Off int
	// TNTLen is the number of conditional outcomes folded into TNTSig.
	// 32 bits keep the record at two per cache line; a run that long
	// (hundreds of megabytes of contiguous TNT) collapsed its signature
	// to TNTSigLongRun at TNTRunCap outcomes already.
	TNTLen int32
	// Resync marks the first TIP decoded after an overflow-forced
	// resynchronization: the packets between the OVF and the next PSB
	// were discarded, so this record is NOT control-flow-adjacent to the
	// record before it. Pair-wise edge checks must not treat the two as
	// a consecutive edge.
	Resync bool
	// Async marks a TIP directly following a non-context FUP: the
	// kernel's asynchronous-transfer shape (signal delivery into a
	// handler, sigreturn restoring the interrupted flow). The jump it
	// records was performed by the kernel, not by a retired branch, so
	// pair-wise edge checks must admit it without consulting the CFG —
	// like Resync, the record is not control-flow-adjacent to its
	// predecessor.
	Async bool
}

// TNTSigEmpty is the signature of an empty TNT run.
const TNTSigEmpty uint64 = 0xcbf29ce484222325 // FNV-1a offset basis

// TNTRunCap bounds the conditional-branch run folded into a signature.
// Short runs carry the direct-fork information that repairs the AIA
// derogation (Figure 4); longer runs are data-dependent loop iteration
// counts, which would make every trained signature input-specific — the
// path explosion §4.2 deliberately avoids. Runs beyond the cap collapse
// to TNTSigLongRun.
const TNTRunCap = 16

// TNTSigLongRun is the wildcard signature of any capped run.
const TNTSigLongRun uint64 = 0x9e3779b97f4a7c15

// TNTSigAppend folds one conditional outcome into a running signature.
func TNTSigAppend(sig uint64, taken bool) uint64 {
	b := uint64(1)
	if taken {
		b = 2
	}
	return (sig ^ b) * 0x100000001b3
}

// ExtractTIPs folds a fast-decoded event stream into the TIP-window form
// the fast path checks: one record per TIP packet, each carrying the TNT
// signature accumulated since the previous TIP. Far-transfer and PSB
// context packets do not produce records (a syscall is a fall-through on
// the CFG) but TNT runs accumulate across them.
//
// An OVF packet means trace bytes were lost: IP compression and TNT
// attribution are unreliable until the next PSB resets decoder state, so
// packets between the OVF and that PSB are discarded (real-IPT decoders
// resynchronize the same way) and the first TIP afterwards is flagged
// Resync.
func ExtractTIPs(evs []Event) []TIPRecord {
	var out []TIPRecord
	sig := TNTSigEmpty
	n := 0
	skipping := false
	resync := false
	prevFUP := false
	for _, e := range evs {
		// A TIP directly following a non-context FUP is the kernel's
		// asynchronous-transfer shape (TIPRecord.Async). PAD never
		// appears here — the batch decoder emits no events for it — so
		// adjacency over events matches the incremental scanner, which
		// carries the flag across PAD bytes.
		async := prevFUP
		prevFUP = e.Kind == KindFUP && !e.Ctx
		switch e.Kind {
		case KindTNT:
			if skipping {
				continue
			}
			for k := 0; k < e.TNTCount; k++ {
				sig = TNTSigAppend(sig, e.TNTBits&(1<<k) != 0)
				n++
			}
		case KindTIP:
			if skipping {
				continue
			}
			if n > TNTRunCap {
				sig = TNTSigLongRun
			}
			out = append(out, TIPRecord{IP: e.IP, TNTSig: sig, TNTLen: int32(n), Off: e.Off, Resync: resync, Async: async})
			sig, n = TNTSigEmpty, 0
			resync = false
		case KindPSB:
			if skipping {
				skipping = false
				resync = true
			}
		case KindOVF:
			// Data lost: everything up to the next sync point is
			// unreliable.
			sig, n = TNTSigEmpty, 0
			skipping = true
		}
	}
	return out
}
