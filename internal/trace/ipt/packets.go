// Package ipt is the software model of Intel Processor Trace used by the
// whole reproduction: the packetizer ("hardware"), the MSR configuration
// surface the kernel module programs (§5.1), the ToPA output mechanism,
// and the two decoders whose asymmetry the paper is built around — the
// packet-level fast decoder (§5.3 fast path) and the instruction-flow-layer
// full decoder (the Intel reference-library analogue used by the slow
// path and by offline analysis).
//
// # Packet grammar
//
// The encoding follows the real IPT format in spirit:
//
//	PAD      00
//	TNT      one byte, bit0 = 0: up to 6 taken/not-taken bits below a
//	         stop bit (bit k+1 holds the k-th oldest outcome)
//	TIP      header 0x0D|ipb<<5, then 0/2/4/8 bytes of target IP
//	TIP.PGE  header 0x11|ipb<<5 (packet generation enable: resume address)
//	TIP.PGD  header 0x01|ipb<<5 (packet generation disable)
//	FUP      header 0x1D|ipb<<5 (source address of an async/far event)
//	PSB      02 82, eight times (16-byte stream synchronization point)
//	PSBEND   02 23
//	PIP      02 43, then 8 bytes of CR3
//	OVF      02 f3
//	MODE     02 99, then 1 byte of execution-mode payload (emitted at
//	         context switch-in alongside the bare PIP; never part of PSB+)
//
// IP payloads are compressed against the decoder-visible "last IP": the
// ipb field selects how many low bytes are updated (0 = unchanged,
// 1 = low 2 bytes, 2 = low 4 bytes, 3 = full 8 bytes). PSB resets the
// last-IP state on both sides, which is what makes PSB-parallel decoding
// possible (§5.3).
package ipt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrMalformedTrace is the sentinel wrapped by every grammar-level decode
// failure (bad PSB, unknown opcode, impossible TNT byte) and by the
// encoder when asked to emit an impossible packet. Degraded-mode policy
// in the guard keys off this error to distinguish corruption from a
// merely truncated or overflowed stream.
var ErrMalformedTrace = errors.New("ipt: malformed trace")

// malformedf builds an ErrMalformedTrace-wrapped error.
func malformedf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformedTrace, fmt.Sprintf(format, args...))
}

// Packet kind discriminators as seen by the decoders.
type Kind uint8

// Packet kinds.
const (
	KindPAD Kind = iota
	KindTNT
	KindTIP
	KindTIPPGE
	KindTIPPGD
	KindFUP
	KindPSB
	KindPSBEND
	KindPIP
	KindOVF
	KindMODE
)

var kindNames = [...]string{
	KindPAD: "PAD", KindTNT: "TNT", KindTIP: "TIP", KindTIPPGE: "TIP.PGE",
	KindTIPPGD: "TIP.PGD", KindFUP: "FUP", KindPSB: "PSB",
	KindPSBEND: "PSBEND", KindPIP: "PIP", KindOVF: "OVF", KindMODE: "MODE",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Header low-5-bit opcodes of the TIP packet family (bit0 = 1
// distinguishes them from TNT bytes).
const (
	opTIP    = 0x0D
	opTIPPGE = 0x11
	opTIPPGD = 0x01
	opFUP    = 0x1D
)

// Extended (0x02-prefixed) opcodes.
const (
	extPSB    = 0x82
	extPSBEND = 0x23
	extPIP    = 0x43
	extOVF    = 0xF3
	extMODE   = 0x99
)

// modePacketLen is the encoded size of a MODE packet (02 99 + payload).
const modePacketLen = 3

// psbRepeat is the number of "02 82" pairs forming a PSB.
const psbRepeat = 8

// PSBSize is the encoded size of a PSB packet in bytes.
const PSBSize = 2 * psbRepeat

// maxTNTBits is the capacity of a short TNT packet.
const maxTNTBits = 6

// ipCompress picks the smallest ipbytes encoding for target given the
// last-IP state, mirroring the hardware's IP compression.
func ipCompress(target, lastIP uint64) uint8 {
	switch {
	case target == lastIP:
		return 0
	case target>>16 == lastIP>>16:
		return 1
	case target>>32 == lastIP>>32:
		return 2
	default:
		return 3
	}
}

// ipPayloadLen returns the payload byte count for an ipbytes field.
func ipPayloadLen(ipb uint8) int {
	switch ipb {
	case 0:
		return 0
	case 1:
		return 2
	case 2:
		return 4
	default:
		return 8
	}
}

// ipReconstruct merges a compressed payload into the last-IP state. The
// payload widths are fixed per ipb, so the merges are single
// little-endian loads rather than per-byte shifts.
//
//fg:hotpath runs per TIP-family packet in both scanners
func ipReconstruct(ipb uint8, payload []byte, lastIP uint64) uint64 {
	switch ipb {
	case 0:
		return lastIP
	case 1:
		return lastIP&^0xffff | uint64(binary.LittleEndian.Uint16(payload))
	case 2:
		return lastIP&^0xffffffff | uint64(binary.LittleEndian.Uint32(payload))
	default:
		return binary.LittleEndian.Uint64(payload)
	}
}

// appendIPPacket appends a TIP-family packet for target, updating *lastIP.
func appendIPPacket(dst []byte, op uint8, target uint64, lastIP *uint64) []byte {
	ipb := ipCompress(target, *lastIP)
	dst = append(dst, op|ipb<<5)
	n := ipPayloadLen(ipb)
	for i := 0; i < n; i++ {
		dst = append(dst, byte(target>>(8*i)))
	}
	*lastIP = target
	return dst
}

// appendSuppressedIP appends a TIP-family packet with a suppressed IP
// (ipbytes = 0 without changing last-IP), used for TIP.PGD at far
// transfers under user-only filtering.
func appendSuppressedIP(dst []byte, op uint8) []byte {
	return append(dst, op)
}

// appendTNT appends a short TNT packet carrying bits[0..n) (oldest first).
// A bit count outside [1, maxTNTBits] cannot be encoded and is returned
// as an error rather than a panic: the tracer must stay alive under any
// internal-state corruption and signal the loss in-band instead.
func appendTNT(dst []byte, bits uint8, n int) ([]byte, error) {
	if n <= 0 || n > maxTNTBits {
		return dst, malformedf("invalid TNT bit count %d", n)
	}
	b := byte(1)<<(n+1) | (bits&(1<<n-1))<<1
	return append(dst, b), nil
}

// appendPSB appends a PSB synchronization packet.
func appendPSB(dst []byte) []byte {
	for i := 0; i < psbRepeat; i++ {
		dst = append(dst, 0x02, extPSB)
	}
	return dst
}

// appendPIP appends a PIP packet carrying the CR3 value.
func appendPIP(dst []byte, cr3 uint64) []byte {
	dst = append(dst, 0x02, extPIP)
	for i := 0; i < 8; i++ {
		dst = append(dst, byte(cr3>>(8*i)))
	}
	return dst
}

// appendMODE appends a MODE packet carrying the execution-mode payload
// byte (the multi-core scheduler emits one next to the bare PIP at every
// context switch-in, as hardware does for MODE.Exec).
func appendMODE(dst []byte, mode uint8) []byte {
	return append(dst, 0x02, extMODE, mode)
}
