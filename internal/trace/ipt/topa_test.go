package ipt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestToPASnapshotBeforeWrap(t *testing.T) {
	tp := NewToPA(8, 8)
	tp.Write([]byte{1, 2, 3})
	if got := tp.Snapshot(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("snapshot = %v", got)
	}
	tp.Write([]byte{4, 5, 6, 7, 8, 9}) // crosses into region 2
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if got := tp.Snapshot(); !bytes.Equal(got, want) {
		t.Fatalf("snapshot = %v, want %v", got, want)
	}
	if tp.Capacity() != 16 {
		t.Errorf("capacity = %d", tp.Capacity())
	}
}

func TestToPAWrapKeepsNewestAndFiresPMI(t *testing.T) {
	tp := NewToPA(4, 4)
	pmis := 0
	tp.OnFull = func() { pmis++ }
	for i := byte(0); i < 20; i++ {
		tp.Write([]byte{i})
	}
	if pmis != 2 {
		t.Errorf("PMIs = %d, want 2 (20 bytes through 8-byte chain)", pmis)
	}
	snap := tp.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot length = %d, want capacity", len(snap))
	}
	// Oldest-first: bytes 12..19.
	for i, b := range snap {
		if b != byte(12+i) {
			t.Fatalf("snapshot = %v, want 12..19", snap)
		}
	}
	if tp.TotalWritten() != 20 {
		t.Errorf("total = %d", tp.TotalWritten())
	}
	tp.Reset()
	if len(tp.Snapshot()) != 0 {
		t.Error("Reset left data")
	}
}

// Property: for any write schedule, the snapshot equals the suffix of
// the logical stream, with length min(total, capacity).
func TestQuickToPASuffix(t *testing.T) {
	f := func(chunks [][]byte, sizes [2]uint8) bool {
		r1, r2 := int(sizes[0]%32)+1, int(sizes[1]%32)+1
		tp := NewToPA(r1, r2)
		var all []byte
		for _, c := range chunks {
			if len(c) > 64 {
				c = c[:64]
			}
			tp.Write(c)
			all = append(all, c...)
		}
		want := all
		if len(want) > tp.Capacity() {
			want = want[len(want)-tp.Capacity():]
		}
		return bytes.Equal(tp.Snapshot(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDefaultRegions: the zero-argument constructor yields the paper's
// two-region configuration.
func TestDefaultRegions(t *testing.T) {
	tp := NewToPA()
	if tp.Capacity() != 16<<10 {
		t.Errorf("default capacity = %d, want 16 KiB (two 8 KiB regions)", tp.Capacity())
	}
}

// fillPattern writes n bytes of a recognizable sequence starting at
// value start.
func fillPattern(t *ToPA, start, n int) {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(start + i)
	}
	t.Write(buf)
}

func TestToPAZeroCapacityRegions(t *testing.T) {
	cases := []struct {
		name    string
		regions []int
		wantCap int
	}{
		{"all-zero falls back to default", []int{0, 0}, 16 << 10},
		{"no regions falls back to default", nil, 16 << 10},
		{"negative dropped", []int{-4, 64}, 64},
		{"zeros dropped between real regions", []int{0, 32, 0, 32}, 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tp := NewToPA(tc.regions...)
			if got := tp.Capacity(); got != tc.wantCap {
				t.Fatalf("capacity = %d, want %d", got, tc.wantCap)
			}
			// The write must terminate and stay fully accounted: a
			// zero-capacity region surviving into the table would spin
			// Write forever.
			fillPattern(tp, 0, 3*tc.wantCap/2)
			if got := int(tp.TotalWritten()); got != 3*tc.wantCap/2 {
				t.Fatalf("total = %d, want %d", got, 3*tc.wantCap/2)
			}
			if !tp.Wrapped() {
				t.Fatal("overfilled table did not wrap")
			}
			if got := len(tp.Snapshot()); got != tc.wantCap {
				t.Fatalf("snapshot = %d bytes, want full capacity %d", got, tc.wantCap)
			}
		})
	}
}

// TestToPAResetWhileWrapped: Reset on a wrapped buffer must restart the
// resident window cleanly — the next snapshot holds exactly the
// post-Reset bytes, and AppendSince addresses them by the still
// monotonic logical offsets.
func TestToPAResetWhileWrapped(t *testing.T) {
	tp := NewToPA(32, 32)
	fillPattern(tp, 0, 150) // wraps more than twice
	if !tp.Wrapped() {
		t.Fatal("setup: buffer did not wrap")
	}
	genBefore := tp.Gen()
	tp.Reset()
	if tp.Wrapped() {
		t.Fatal("Reset left the buffer marked wrapped")
	}
	if tp.Held() != 0 {
		t.Fatalf("Held after Reset = %d, want 0", tp.Held())
	}
	if tp.Gen() <= genBefore {
		t.Fatal("Reset did not advance the generation")
	}
	if tp.TotalWritten() != 150 {
		t.Fatalf("Reset changed the monotonic total: %d", tp.TotalWritten())
	}

	fillPattern(tp, 200, 20)
	want := make([]byte, 20)
	for i := range want {
		want[i] = byte(200 + i)
	}
	if got := tp.Snapshot(); !bytes.Equal(got, want) {
		t.Fatalf("post-Reset snapshot = %x, want %x", got, want)
	}
	// Logical offsets keep counting across Reset: the post-Reset bytes
	// span [150, 170).
	got, ok := tp.AppendSince(nil, 150)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("AppendSince(150) = %x, %v; want the 20 post-Reset bytes", got, ok)
	}
	if got, ok := tp.AppendSince(nil, 170); !ok || len(got) != 0 {
		t.Fatalf("AppendSince(at head) = %x, %v; want empty, true", got, ok)
	}
	// Pre-Reset offsets are gone even though they are numerically below
	// the total: the resident window starts at the Reset point.
	if _, ok := tp.AppendSince(nil, 149); ok {
		t.Fatal("AppendSince reached across Reset")
	}
}

// TestToPAAppendSinceOlderThanResident: once the buffer wraps, offsets
// below TotalWritten-Held are unservable and must report false — the
// incremental reader's signal to resynchronize from a snapshot.
func TestToPAAppendSinceOlderThanResident(t *testing.T) {
	tp := NewToPA(16, 16)
	fillPattern(tp, 0, 80) // capacity 32, so [48, 80) is resident
	cases := []struct {
		name string
		from uint64
		ok   bool
		len  int
	}{
		{"exact resident start", 48, true, 32},
		{"mid-window", 60, true, 20},
		{"head", 80, true, 0},
		{"one byte too old", 47, false, 0},
		{"ancient", 0, false, 0},
		{"beyond head", 81, false, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := tp.AppendSince(nil, tc.from)
			if ok != tc.ok || len(got) != tc.len {
				t.Fatalf("AppendSince(%d) = %d bytes, %v; want %d bytes, %v",
					tc.from, len(got), ok, tc.len, tc.ok)
			}
			if !ok {
				return
			}
			for i, b := range got {
				if b != byte(int(tc.from)+i) {
					t.Fatalf("byte %d = %#x, want %#x", i, b, byte(int(tc.from)+i))
				}
			}
		})
	}
}

// TestToPASnapshotIntoReuse: SnapshotInto(dst[:0]) must equal Snapshot
// and reuse the backing array once grown.
func TestToPASnapshotIntoReuse(t *testing.T) {
	tp := NewToPA(16, 16)
	fillPattern(tp, 0, 40)
	buf := tp.SnapshotInto(nil)
	if !bytes.Equal(buf, tp.Snapshot()) {
		t.Fatal("SnapshotInto(nil) != Snapshot()")
	}
	p0 := &buf[0]
	buf2 := tp.SnapshotInto(buf[:0])
	if !bytes.Equal(buf2, tp.Snapshot()) {
		t.Fatal("SnapshotInto(reused) != Snapshot()")
	}
	if &buf2[0] != p0 {
		t.Error("SnapshotInto reallocated despite sufficient capacity")
	}
}

// TestToPAAppendSinceMatchesSnapshotTail: for every resident from, the
// AppendSince range equals the snapshot's tail — the equivalence the
// incremental window decoder is built on.
func TestToPAAppendSinceMatchesSnapshotTail(t *testing.T) {
	tp := NewToPA(8, 24) // asymmetric regions exercise locate()
	for round := 0; round < 10; round++ {
		fillPattern(tp, round*13, 7+round*5)
		snap := tp.Snapshot()
		lo := tp.TotalWritten() - uint64(tp.Held())
		for from := lo; from <= tp.TotalWritten(); from++ {
			got, ok := tp.AppendSince(nil, from)
			if !ok {
				t.Fatalf("round %d: AppendSince(%d) refused a resident offset", round, from)
			}
			want := snap[from-lo:]
			if !bytes.Equal(got, want) {
				t.Fatalf("round %d: AppendSince(%d) diverges from snapshot tail", round, from)
			}
		}
	}
}
