package ipt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestToPASnapshotBeforeWrap(t *testing.T) {
	tp := NewToPA(8, 8)
	tp.Write([]byte{1, 2, 3})
	if got := tp.Snapshot(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("snapshot = %v", got)
	}
	tp.Write([]byte{4, 5, 6, 7, 8, 9}) // crosses into region 2
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if got := tp.Snapshot(); !bytes.Equal(got, want) {
		t.Fatalf("snapshot = %v, want %v", got, want)
	}
	if tp.Capacity() != 16 {
		t.Errorf("capacity = %d", tp.Capacity())
	}
}

func TestToPAWrapKeepsNewestAndFiresPMI(t *testing.T) {
	tp := NewToPA(4, 4)
	pmis := 0
	tp.OnFull = func() { pmis++ }
	for i := byte(0); i < 20; i++ {
		tp.Write([]byte{i})
	}
	if pmis != 2 {
		t.Errorf("PMIs = %d, want 2 (20 bytes through 8-byte chain)", pmis)
	}
	snap := tp.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot length = %d, want capacity", len(snap))
	}
	// Oldest-first: bytes 12..19.
	for i, b := range snap {
		if b != byte(12+i) {
			t.Fatalf("snapshot = %v, want 12..19", snap)
		}
	}
	if tp.TotalWritten() != 20 {
		t.Errorf("total = %d", tp.TotalWritten())
	}
	tp.Reset()
	if len(tp.Snapshot()) != 0 {
		t.Error("Reset left data")
	}
}

// Property: for any write schedule, the snapshot equals the suffix of
// the logical stream, with length min(total, capacity).
func TestQuickToPASuffix(t *testing.T) {
	f := func(chunks [][]byte, sizes [2]uint8) bool {
		r1, r2 := int(sizes[0]%32)+1, int(sizes[1]%32)+1
		tp := NewToPA(r1, r2)
		var all []byte
		for _, c := range chunks {
			if len(c) > 64 {
				c = c[:64]
			}
			tp.Write(c)
			all = append(all, c...)
		}
		want := all
		if len(want) > tp.Capacity() {
			want = want[len(want)-tp.Capacity():]
		}
		return bytes.Equal(tp.Snapshot(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDefaultRegions: the zero-argument constructor yields the paper's
// two-region configuration.
func TestDefaultRegions(t *testing.T) {
	tp := NewToPA()
	if tp.Capacity() != 16<<10 {
		t.Errorf("default capacity = %d, want 16 KiB (two 8 KiB regions)", tp.Capacity())
	}
}
