package ipt_test

import (
	"errors"
	"reflect"
	"testing"

	"flowguard/internal/asm"
	"flowguard/internal/cpu"
	"flowguard/internal/isa"
	"flowguard/internal/module"
	"flowguard/internal/trace"
	"flowguard/internal/trace/ipt"
)

// ctlDefault is the kernel module's IA32_RTIT_CTL programming from §5.1.
const ctlDefault = ipt.CtlTraceEn | ipt.CtlBranchEn | ipt.CtlUser | ipt.CtlToPA

// traceProgram assembles and runs a single-module program under an IPT
// tracer, returning the CPU, the tracer, and the ground-truth branches.
func traceProgram(t *testing.T, topa *ipt.ToPA, build func(b *asm.Builder)) (*cpu.CPU, *ipt.Tracer, []trace.Branch) {
	t.Helper()
	b := asm.NewModule("app")
	build(b)
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	as, err := module.Load(m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(as)
	tr := ipt.NewTracer(topa)
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlDefault); err != nil {
		t.Fatal(err)
	}
	var truth []trace.Branch
	c.Branch = trace.MultiSink{tr, trace.SinkFunc(func(br trace.Branch) { truth = append(truth, br) })}
	if _, err := c.Run(2_000_000); !errors.Is(err, cpu.ErrHalted) {
		t.Fatalf("Run: %v (pc=%#x)", err, c.PC)
	}
	tr.Flush()
	return c, tr, truth
}

// table2Program reproduces the control-flow shape of Table 2 in the
// paper: a taken conditional, an indirect jump, a direct call, a
// not-taken conditional, a direct jump, and a return.
func table2Program(b *asm.Builder) {
	main := b.Func("main", 0, true)
	b.SetEntry("main")
	main.Movi(isa.R0, 1)
	main.Cmpi(isa.R0, 1)
	main.Jcc(isa.EQ, "indir") // No.1: jg taken -> TNT(1)
	main.Halt()
	main.Label("indir")
	main.AddrOf(isa.R6, "hop")
	main.JmpR(isa.R6) // No.2: jmpq *%rax -> TIP(hop)
	hop := b.Func("hop", 0, false)
	hop.Call("fun1") // No.3: direct call -> no output
	hop.Halt()       // return lands here... (see ret target below)
	fun1 := b.Func("fun1", 0, false)
	fun1.Cmpi(isa.R0, 2)     // No.6: cmp
	fun1.Jcc(isa.EQ, "skip") // No.7: je not taken -> TNT(0)
	fun1.Jmp("tail")         // No.8: direct jmp -> no output
	fun1.Label("skip")
	fun1.Nop()
	fun1.Label("tail")
	fun1.Ret() // No.9: retq -> TIP(return address)
}

// TestTable2PacketSequence pins the exact packet kinds of the paper's
// worked example: TNT(taken), TIP, TNT(not-taken), TIP.
func TestTable2PacketSequence(t *testing.T) {
	c, tr, _ := traceProgram(t, nil, table2Program)
	evs, err := ipt.DecodeFast(tr.Out.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	// Strip sync/meta packets; keep TNT and TIP only.
	var seq []string
	var tips []uint64
	var bits []bool
	for _, e := range evs {
		switch e.Kind {
		case ipt.KindTNT:
			for k := 0; k < e.TNTCount; k++ {
				seq = append(seq, "TNT")
				bits = append(bits, e.TNTBits&(1<<k) != 0)
			}
		case ipt.KindTIP:
			seq = append(seq, "TIP")
			tips = append(tips, e.IP)
		}
	}
	want := []string{"TNT", "TIP", "TNT", "TIP"}
	if !reflect.DeepEqual(seq, want) {
		t.Fatalf("packet sequence = %v, want %v", seq, want)
	}
	if !bits[0] || bits[1] {
		t.Errorf("TNT bits = %v, want [taken, not-taken]", bits)
	}
	hop, _ := c.AS.Exec.SymbolAddr("hop")
	if tips[0] != hop {
		t.Errorf("first TIP = %#x, want hop at %#x", tips[0], hop)
	}
	// The return TIP targets the instruction after hop's CALL.
	if tips[1] != hop+isa.InstrSize {
		t.Errorf("second TIP = %#x, want %#x", tips[1], hop+isa.InstrSize)
	}
}

// TestDirectBranchesProduceNoPackets pins the core compression property:
// a program with only direct control flow emits no TIP/TNT at all.
func TestDirectBranchesProduceNoPackets(t *testing.T) {
	_, tr, truth := traceProgram(t, nil, func(b *asm.Builder) {
		main := b.Func("main", 0, true)
		b.SetEntry("main")
		main.Jmp("a")
		main.Label("a")
		main.Call("leaf") // direct call
		main.Halt()
		b.Func("leaf", 0, false).Nop().Ret()
	})
	if len(truth) == 0 {
		t.Fatal("test program retired no branches")
	}
	evs, err := ipt.DecodeFast(tr.Out.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evs {
		if e.Kind == ipt.KindTNT {
			t.Errorf("unexpected TNT packet for direct-only flow")
		}
		// The leaf RET is the only TIP.
		if e.Kind == ipt.KindTIP {
			continue
		}
	}
}

func countKinds(evs []ipt.Event) map[ipt.Kind]int {
	m := make(map[ipt.Kind]int)
	for _, e := range evs {
		m[e.Kind]++
	}
	return m
}

// TestFullDecodeReconstructsGroundTruth is the central fidelity check:
// the instruction-flow-layer decoder must reproduce the CPU's exact
// branch stream from packets + binaries alone.
func TestFullDecodeReconstructsGroundTruth(t *testing.T) {
	c, tr, truth := traceProgram(t, nil, func(b *asm.Builder) {
		b.FuncTable("ops", []string{"op_add", "op_mul", "op_xor"}, false)
		main := b.Func("main", 0, true)
		b.SetEntry("main")
		main.Movi(isa.R5, 0) // loop counter
		main.Movi(isa.R0, 7) // accumulator
		main.Label("loop")
		main.AddrOf(isa.R6, "ops")
		main.Mov(isa.R8, isa.R5)
		main.Movi(isa.R9, 3)
		main.Mod(isa.R8, isa.R9)
		main.Movi(isa.R9, 8)
		main.Mul(isa.R8, isa.R9)
		main.Add(isa.R6, isa.R8)
		main.Ld(isa.R6, isa.R6, 0)
		main.Movi(isa.R1, 3)
		main.CallR(isa.R6)
		main.Addi(isa.R5, 1)
		main.Cmpi(isa.R5, 20)
		main.Jcc(isa.LT, "loop")
		main.Call("fini")
		main.Halt()
		b.Func("op_add", 2, false).Add(isa.R0, isa.R1).Ret()
		b.Func("op_mul", 2, false).Mul(isa.R0, isa.R1).Ret()
		b.Func("op_xor", 2, false).Xor(isa.R0, isa.R1).Ret()
		b.Func("fini", 0, false).Nop().Ret()
	})
	ft, err := ipt.DecodeFull(c.AS, tr.Out.Snapshot(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Flow) != len(truth) {
		t.Fatalf("reconstructed %d branches, ground truth %d", len(ft.Flow), len(truth))
	}
	for i := range truth {
		if ft.Flow[i] != truth[i] {
			t.Fatalf("branch %d: reconstructed %+v, truth %+v", i, ft.Flow[i], truth[i])
		}
	}
	if ft.Instrs == 0 || ft.Cycles() != ft.Instrs*ipt.CyclesPerDecodedInstr {
		t.Errorf("cost model: instrs=%d cycles=%d", ft.Instrs, ft.Cycles())
	}
}

// TestIPCompression checks that consecutive nearby TIP targets use short
// encodings while far jumps use full ones.
func TestIPCompression(t *testing.T) {
	_, tr, _ := traceProgram(t, nil, func(b *asm.Builder) {
		main := b.Func("main", 0, true)
		b.SetEntry("main")
		main.Movi(isa.R5, 0)
		main.Label("loop")
		main.AddrOf(isa.R6, "near") // same 64 KiB page as main
		main.CallR(isa.R6)
		main.Addi(isa.R5, 1)
		main.Cmpi(isa.R5, 4)
		main.Jcc(isa.LT, "loop")
		main.Halt()
		b.Func("near", 0, false).Ret()
	})
	raw := tr.Out.Snapshot()
	evs, err := ipt.DecodeFast(raw)
	if err != nil {
		t.Fatal(err)
	}
	// All TIPs within the executable share high bits: after the first,
	// every TIP packet must be 3 bytes or fewer (header + 2-byte IP).
	var sizes []int
	for i, e := range evs {
		if e.Kind != ipt.KindTIP {
			continue
		}
		end := len(raw)
		if i+1 < len(evs) {
			end = evs[i+1].Off
		}
		sizes = append(sizes, end-e.Off)
	}
	if len(sizes) < 4 {
		t.Fatalf("want several TIPs, got %d", len(sizes))
	}
	for _, s := range sizes[1:] {
		if s > 3 {
			t.Errorf("TIP packet size %d, want <= 3 after warm-up (IP compression)", s)
		}
	}
}

// TestToPAWrapAndResync fills a tiny ToPA so it wraps, then verifies the
// fast decoder can sync at a PSB and decode the tail.
func TestToPAWrapAndResync(t *testing.T) {
	topa := ipt.NewToPA(2048, 2048)
	fills := 0
	topa.OnFull = func() { fills++ }
	c, tr, truth := traceProgram(t, topa, func(b *asm.Builder) {
		main := b.Func("main", 0, true)
		b.SetEntry("main")
		main.Movi(isa.R5, 0)
		main.Label("loop")
		main.Call("leaf")
		main.Addi(isa.R5, 1)
		main.Cmpi(isa.R5, 8000)
		main.Jcc(isa.LT, "loop")
		main.Halt()
		b.Func("leaf", 0, false).Nop().Ret()
	})
	if fills == 0 {
		t.Fatal("ToPA never filled; test needs a longer program or smaller buffer")
	}
	if tr.Out.TotalWritten() <= uint64(topa.Capacity()) {
		t.Fatal("trace volume did not exceed capacity")
	}
	raw := topa.Snapshot()
	start := ipt.Sync(raw, 0)
	if start < 0 {
		t.Fatal("no PSB in wrapped snapshot")
	}
	evs, err := ipt.DecodeFast(raw[start:])
	if err != nil {
		t.Fatal(err)
	}
	kinds := countKinds(evs)
	if kinds[ipt.KindTIP] == 0 || kinds[ipt.KindTNT] == 0 {
		t.Fatalf("decoded kinds = %v, want TIPs and TNTs", kinds)
	}
	// Full decode of the surviving window also works, reconstructing a
	// suffix of the ground truth.
	ft, err := ipt.DecodeFull(c.AS, raw[start:], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Flow) == 0 || len(ft.Flow) >= len(truth) {
		t.Fatalf("window flow = %d branches, truth %d; want proper suffix", len(ft.Flow), len(truth))
	}
	tail := truth[len(truth)-len(ft.Flow):]
	for i := range tail {
		if ft.Flow[i] != tail[i] {
			t.Fatalf("window branch %d = %+v, want %+v", i, ft.Flow[i], tail[i])
		}
	}
}

// TestParallelDecodeMatchesSerial verifies PSB-split parallel decoding is
// equivalent to the serial scan.
func TestParallelDecodeMatchesSerial(t *testing.T) {
	_, tr, _ := traceProgram(t, ipt.NewToPA(1<<20), func(b *asm.Builder) {
		main := b.Func("main", 0, true)
		b.SetEntry("main")
		main.Movi(isa.R5, 0)
		main.Label("loop")
		main.Call("leaf")
		main.Addi(isa.R5, 1)
		main.Cmpi(isa.R5, 3000)
		main.Jcc(isa.LT, "loop")
		main.Halt()
		b.Func("leaf", 0, false).Nop().Ret()
	})
	raw := tr.Out.Snapshot()
	if len(ipt.SyncPoints(raw)) < 3 {
		t.Fatalf("want multiple PSBs, got %d", len(ipt.SyncPoints(raw)))
	}
	serial, err := ipt.DecodeFast(raw)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ipt.DecodeFastParallel(raw, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel decode differs: %d vs %d events", len(parallel), len(serial))
	}
}

// TestCR3Filtering verifies that traces are only generated while the
// current CR3 matches IA32_RTIT_CR3_MATCH.
func TestCR3Filtering(t *testing.T) {
	tr := ipt.NewTracer(nil)
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlDefault|ipt.CtlCR3Filter); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteMSR(ipt.MSRRTITCR3Match, 0x5000); err != nil {
		t.Fatal(err)
	}
	br := trace.Branch{Class: isa.CoFIRet, Source: 0x400100, Target: 0x400200, Taken: true}

	tr.SetCR3(0x6000) // other process
	tr.Branch(br)
	if tr.TIPCount != 0 {
		t.Fatal("traced a non-matching CR3")
	}
	tr.SetCR3(0x5000) // protected process
	tr.Branch(br)
	if tr.TIPCount != 1 {
		t.Fatal("did not trace the matching CR3")
	}
	// Disabling TraceEn stops everything.
	if err := tr.WriteMSR(ipt.MSRRTITCtl, 0); err != nil {
		t.Fatal(err)
	}
	tr.Branch(br)
	if tr.TIPCount != 1 {
		t.Fatal("traced with TraceEn clear")
	}
	if v, err := tr.ReadMSR(ipt.MSRRTITCR3Match); err != nil || v != 0x5000 {
		t.Fatalf("ReadMSR = %#x, %v", v, err)
	}
	if _, err := tr.ReadMSR(0x9999); err == nil {
		t.Fatal("ReadMSR accepted unknown register")
	}
	if err := tr.WriteMSR(0x9999, 0); err == nil {
		t.Fatal("WriteMSR accepted unknown register")
	}
}

// TestExtractTIPs checks TNT-run attribution to the following TIP.
func TestExtractTIPs(t *testing.T) {
	_, tr, truth := traceProgram(t, nil, table2Program)
	evs, err := ipt.DecodeFast(tr.Out.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	recs := ipt.ExtractTIPs(evs)
	if len(recs) != 2 {
		t.Fatalf("TIP records = %d, want 2", len(recs))
	}
	if recs[0].TNTLen != 1 || recs[1].TNTLen != 1 {
		t.Errorf("TNT lengths = %d,%d, want 1,1", recs[0].TNTLen, recs[1].TNTLen)
	}
	wantSig0 := ipt.TNTSigAppend(ipt.TNTSigEmpty, true)
	wantSig1 := ipt.TNTSigAppend(ipt.TNTSigEmpty, false)
	if recs[0].TNTSig != wantSig0 || recs[1].TNTSig != wantSig1 {
		t.Errorf("TNT signatures mismatch")
	}
	if wantSig0 == wantSig1 {
		t.Error("taken and not-taken runs must have distinct signatures")
	}
	// Ground truth cross-check: the two TIP targets are the two
	// indirect/return targets.
	var indirects []uint64
	for _, b := range truth {
		if b.Class == isa.CoFIIndirect || b.Class == isa.CoFIRet {
			indirects = append(indirects, b.Target)
		}
	}
	if len(indirects) != 2 || recs[0].IP != indirects[0] || recs[1].IP != indirects[1] {
		t.Errorf("TIP IPs = %#x, truth %#x", []uint64{recs[0].IP, recs[1].IP}, indirects)
	}
}

// TestTracingCostModel sanity-checks the calibrated meters: IPT writes
// far fewer than 1 byte per retired instruction on branchy code.
func TestTracingCostModel(t *testing.T) {
	c, tr, _ := traceProgram(t, ipt.NewToPA(1<<20), func(b *asm.Builder) {
		main := b.Func("main", 0, true)
		b.SetEntry("main")
		main.Movi(isa.R5, 0)
		main.Label("loop")
		main.Call("leaf")
		main.Addi(isa.R5, 1)
		main.Cmpi(isa.R5, 1000)
		main.Jcc(isa.LT, "loop")
		main.Halt()
		b.Func("leaf", 0, false).Nop().Nop().Nop().Ret()
	})
	bytesPerInstr := float64(tr.Out.TotalWritten()) / float64(c.Instrs)
	if bytesPerInstr > 1.0 {
		t.Errorf("trace bytes per instruction = %.2f, want < 1 (paper: <1 bit/instr avg)", bytesPerInstr)
	}
	if tr.Cycles() == 0 {
		t.Error("tracer cycle meter is zero")
	}
}

// TestFullDecodeResyncAfterOverflow: an OVF packet mid-stream desyncs
// the instruction-flow walk, which must recover at the next PSB and
// reconstruct the rest of the trace.
func TestFullDecodeResyncAfterOverflow(t *testing.T) {
	c, tr, truth := traceProgram(t, nil, table2Program)
	buf := tr.Out.Snapshot()

	// Cut the stream right after the first TNT packet (the walk will
	// next need a TIP), inject OVF, then append a fresh PSB-led copy of
	// the same trace.
	evs, err := ipt.DecodeFast(buf)
	if err != nil {
		t.Fatal(err)
	}
	cut := -1
	for _, e := range evs {
		if e.Kind == ipt.KindTNT {
			cut = e.Off + 1 // short TNT is one byte
			break
		}
	}
	if cut < 0 {
		t.Fatal("no TNT packet in trace")
	}
	spliced := append([]byte{}, buf[:cut]...)
	spliced = append(spliced, 0x02, 0xF3) // OVF
	spliced = append(spliced, buf...)     // fresh PSB restarts decode state

	ft, err := ipt.DecodeFull(c.AS, spliced, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1", ft.Resyncs)
	}
	// After the resync the full ground-truth flow is reconstructed as
	// the tail of the spliced decode.
	if len(ft.Flow) < len(truth) {
		t.Fatalf("flow = %d branches, want at least the %d of the replay", len(ft.Flow), len(truth))
	}
	tail := ft.Flow[len(ft.Flow)-len(truth):]
	for i := range truth {
		if tail[i] != truth[i] {
			t.Fatalf("replayed branch %d = %+v, want %+v", i, tail[i], truth[i])
		}
	}
}
