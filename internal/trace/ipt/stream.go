package ipt

import (
	"math/bits"
)

// WindowDecoder is the incremental form of the fast path's packet-grammar
// scan (§5.3): it consumes an append-only trace stream chunk by chunk and
// maintains the decoded TIP-record tail plus the PSB sync-point offsets,
// so a checker that runs repeatedly over a growing buffer decodes each
// byte exactly once instead of re-scanning the whole suffix per check
// (the §6 "move checking off the critical path" shape).
//
// Record and sync-point offsets are absolute stream offsets: they keep
// their meaning across DropBefore compactions, so callers can slice their
// own retained copy of the stream with them. All storage is reused across
// feeds; a steady-state Feed of packet-aligned chunks performs no
// allocations once the internal slices have grown to the working size.
//
// Like DecodeFast, the decoder never consults program binaries. Unlike
// DecodeFast it accumulates TNT-run signatures linearly across the whole
// stream rather than per decoded suffix; the two agree on every record
// except the signature of the first TIP at or after a sync point, which
// no checker consults (edge checks read the signature of the *second*
// record of each pair).
type WindowDecoder struct {
	lastIP uint64
	sig    uint64
	sigN   int
	synced bool // a PSB has been seen; bytes before the first PSB are skipped
	off    int  // absolute stream offset of the next undecoded byte

	// skipping is set between an OVF packet and the next PSB: trace
	// bytes were lost, so IP compression and TNT attribution are
	// unreliable until a sync point resets decoder state. Packets in the
	// interval are grammar-checked but produce no records.
	skipping bool
	// resync marks that the next emitted TIP record follows an
	// OVF-forced resynchronization (TIPRecord.Resync).
	resync bool
	// ovf counts OVF packets seen since Reset (monotonic across
	// DropBefore); the guard uses the delta between checks to classify
	// trace health.
	ovf int
	// lastOVF is the absolute offset of the most recent OVF packet, or
	// -1 if none has been seen since Reset.
	lastOVF int

	// carry holds a packet truncated at the end of the previous chunk.
	carry []byte

	tips []TIPRecord
	pts  []int
}

// NewWindowDecoder returns a decoder positioned at stream offset base.
func NewWindowDecoder(base int) *WindowDecoder {
	d := &WindowDecoder{}
	d.Reset(base)
	return d
}

// Reset discards all decoder state and repositions the stream origin at
// absolute offset base (retaining allocated storage).
func (d *WindowDecoder) Reset(base int) {
	d.lastIP = 0
	d.sig = TNTSigEmpty
	d.sigN = 0
	d.synced = false
	d.skipping = false
	d.resync = false
	d.ovf = 0
	d.lastOVF = -1
	d.off = base
	d.carry = d.carry[:0]
	d.tips = d.tips[:0]
	d.pts = d.pts[:0]
}

// Tips returns the decoded TIP records, oldest first. The slice is owned
// by the decoder and valid until the next Feed/DropBefore/Reset.
func (d *WindowDecoder) Tips() []TIPRecord { return d.tips }

// SyncPoints returns the absolute offsets of the PSBs seen so far, under
// the same ownership rules as Tips.
func (d *WindowDecoder) SyncPoints() []int { return d.pts }

// Consumed returns the absolute stream offset of the next undecoded byte
// (bytes held back in the truncation carry are not consumed).
func (d *WindowDecoder) Consumed() int { return d.off - len(d.carry) }

// OVFTotal returns the number of OVF packets decoded since Reset. It is
// monotonic and survives DropBefore, so a caller can diff two
// observations to detect overflow between checks.
func (d *WindowDecoder) OVFTotal() int { return d.ovf }

// LastOVFOff returns the absolute stream offset of the most recent OVF
// packet, or -1 if none has been decoded since Reset. Records at or
// after this offset postdate the loss; records before it may be the
// last survivors of a severed history.
func (d *WindowDecoder) LastOVFOff() int { return d.lastOVF }

// Synced reports whether the decode position is trustworthy: a PSB has
// been seen and no overflow is pending resynchronization. While false,
// the tail of the stream cannot vouch for the control flow it encodes.
func (d *WindowDecoder) Synced() bool { return d.synced && !d.skipping }

// DropBefore discards TIP records and sync points with offsets below lo,
// compacting storage in place. Decoding state is unaffected: the stream
// remains continuous, only history is forgotten.
//
//fg:hotpath
func (d *WindowDecoder) DropBefore(lo int) {
	i := 0
	for i < len(d.tips) && d.tips[i].Off < lo {
		i++
	}
	if i > 0 {
		n := copy(d.tips, d.tips[i:])
		d.tips = d.tips[:n]
	}
	j := 0
	for j < len(d.pts) && d.pts[j] < lo {
		j++
	}
	if j > 0 {
		n := copy(d.pts, d.pts[j:])
		d.pts = d.pts[:n]
	}
}

// Feed decodes one appended chunk. Chunks normally end at packet
// boundaries (the tracer writes whole packet groups); a packet truncated
// at the chunk end is carried over and completed by the next Feed. A
// malformed packet is returned as an error, as DecodeFast would.
//
//fg:hotpath incremental decode runs on every check
func (d *WindowDecoder) Feed(chunk []byte) error {
	buf := chunk
	if len(d.carry) > 0 {
		d.carry = append(d.carry, chunk...)
		buf = d.carry
	}
	base := d.off - len(buf) + len(chunk) // absolute offset of buf[0]
	n, err := d.scan(buf, base)
	if err != nil {
		return err
	}
	rest := buf[n:]
	if len(d.carry) > 0 {
		m := copy(d.carry, rest)
		d.carry = d.carry[:m]
	} else if len(rest) > 0 {
		d.carry = append(d.carry[:0], rest...)
	}
	d.off = base + len(buf)
	return nil
}

// scan consumes complete packets from buf (whose first byte sits at
// absolute offset base) and returns how many bytes it consumed.
//
//fg:hotpath
func (d *WindowDecoder) scan(buf []byte, base int) (int, error) {
	i := 0
	// Before the first PSB the stream may start mid-packet (a wrapped
	// ToPA): skip to the first sync point, keeping a partial-PSB-sized
	// tail unconsumed in case the PSB completes in the next chunk.
	if !d.synced {
		p := Sync(buf, 0)
		if p < 0 {
			keep := len(buf) - (PSBSize - 1)
			if keep < 0 {
				keep = 0
			}
			return keep, nil
		}
		i = p
	}
	for i < len(buf) {
		b := buf[i]
		switch {
		case b == 0x00: // PAD
			i++
		case b == 0x02: // extended
			if i+1 >= len(buf) {
				return i, nil // truncated tail
			}
			switch buf[i+1] {
			case extPSB:
				if i+PSBSize > len(buf) {
					if isPSBPrefix(buf[i:]) {
						return i, nil // PSB split across chunks
					}
					return i, malformedf("malformed PSB at %d", base+i)
				}
				if !isPSBAt(buf, i) {
					return i, malformedf("malformed PSB at %d", base+i)
				}
				d.pts = append(d.pts, base+i)
				d.lastIP = 0
				d.synced = true
				if d.skipping {
					d.skipping = false
					d.resync = true
				}
				i += PSBSize
			case extPSBEND:
				i += 2
			case extPIP:
				if i+10 > len(buf) {
					return i, nil
				}
				i += 10
			case extOVF:
				// Data lost: the accumulated TNT run is unreliable, and
				// so is everything up to the next sync point.
				d.sig, d.sigN = TNTSigEmpty, 0
				d.skipping = true
				d.ovf++
				d.lastOVF = base + i
				i += 2
			default:
				return i, malformedf("unknown extended opcode %#02x at %d", buf[i+1], base+i)
			}
		case b&1 == 0: // short TNT
			n := bits.Len8(b) - 2
			if n < 1 || n > maxTNTBits {
				return i, malformedf("malformed TNT byte %#02x at %d", b, base+i)
			}
			if d.skipping {
				i++
				continue
			}
			payload := (b >> 1) & (1<<n - 1)
			for k := 0; k < n; k++ {
				d.sig = TNTSigAppend(d.sig, payload&(1<<k) != 0)
				d.sigN++
			}
			i++
		default: // TIP family
			op := b & 0x1f
			switch op {
			case opTIP, opTIPPGE, opTIPPGD, opFUP:
			default:
				return i, malformedf("unknown packet header %#02x at %d", b, base+i)
			}
			ipb := b >> 5
			n := ipPayloadLen(ipb)
			if i+1+n > len(buf) {
				return i, nil // truncated tail
			}
			if ipb != 0 {
				d.lastIP = ipReconstruct(ipb, buf[i+1:i+1+n], d.lastIP)
			}
			if op == opTIP && !d.skipping {
				sig := d.sig
				if d.sigN > TNTRunCap {
					sig = TNTSigLongRun
				}
				d.tips = append(d.tips, TIPRecord{IP: d.lastIP, TNTSig: sig, TNTLen: d.sigN, Off: base + i, Resync: d.resync})
				d.sig, d.sigN = TNTSigEmpty, 0
				d.resync = false
			}
			i += 1 + n
		}
	}
	return i, nil
}

// isPSBPrefix reports whether tail is a (possibly incomplete) prefix of a
// PSB packet.
func isPSBPrefix(tail []byte) bool {
	for j, b := range tail {
		if j%2 == 0 {
			if b != 0x02 {
				return false
			}
		} else if b != extPSB {
			return false
		}
	}
	return true
}

// TipsFrom returns the suffix of tips whose records sit at or after
// absolute stream offset lo (binary search on the ascending Off field).
//
//fg:hotpath
func TipsFrom(tips []TIPRecord, lo int) []TIPRecord {
	a, b := 0, len(tips)
	for a < b {
		m := (a + b) / 2
		if tips[m].Off < lo {
			a = m + 1
		} else {
			b = m
		}
	}
	return tips[a:]
}
