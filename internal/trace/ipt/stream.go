package ipt

// WindowDecoder is the incremental form of the fast path's packet-grammar
// scan (§5.3): it consumes an append-only trace stream chunk by chunk and
// maintains the decoded TIP-record tail plus the PSB sync-point offsets,
// so a checker that runs repeatedly over a growing buffer decodes each
// byte exactly once instead of re-scanning the whole suffix per check
// (the §6 "move checking off the critical path" shape).
//
// Record and sync-point offsets are absolute stream offsets: they keep
// their meaning across DropBefore compactions, so callers can slice their
// own retained copy of the stream with them. All storage is reused across
// feeds; a steady-state Feed of packet-aligned chunks performs no
// allocations once the internal slices have grown to the working size.
//
// Like DecodeFast, the decoder never consults program binaries. Unlike
// DecodeFast it accumulates TNT-run signatures linearly across the whole
// stream rather than per decoded suffix; the two agree on every record
// except the signature of the first TIP at or after a sync point, which
// no checker consults (edge checks read the signature of the *second*
// record of each pair).
type WindowDecoder struct {
	lastIP uint64
	sig    uint64
	sigN   int
	synced bool // a PSB has been seen; bytes before the first PSB are skipped
	off    int  // absolute stream offset of the next undecoded byte

	// skipping is set between an OVF packet and the next PSB: trace
	// bytes were lost, so IP compression and TNT attribution are
	// unreliable until a sync point resets decoder state. Packets in the
	// interval are grammar-checked but produce no records.
	skipping bool
	// resync marks that the next emitted TIP record follows an
	// OVF-forced resynchronization (TIPRecord.Resync).
	resync bool
	// inPSB is set between a PSB and its PSBEND: the FUP in that region
	// is synchronization context, not an asynchronous event.
	inPSB bool
	// prevFUP is set when the previous packet was a non-context FUP: a
	// TIP directly following one is the kernel's asynchronous-transfer
	// shape (signal delivery, sigreturn) and its record is flagged
	// TIPRecord.Async. PAD packets do not clear it (the batch decoder
	// emits no events for them, and the record extractors must agree).
	prevFUP bool
	// ovf counts OVF packets seen since Reset (monotonic across
	// DropBefore); the guard uses the delta between checks to classify
	// trace health.
	ovf int
	// lastOVF is the absolute offset of the most recent OVF packet, or
	// -1 if none has been seen since Reset.
	lastOVF int

	// carry holds a packet truncated at the end of the previous chunk.
	carry []byte

	tips []TIPRecord
	pts  []int
}

// NewWindowDecoder returns a decoder positioned at stream offset base.
func NewWindowDecoder(base int) *WindowDecoder {
	d := &WindowDecoder{}
	d.Reset(base)
	return d
}

// Reset discards all decoder state and repositions the stream origin at
// absolute offset base (retaining allocated storage).
func (d *WindowDecoder) Reset(base int) {
	d.lastIP = 0
	d.sig = TNTSigEmpty
	d.sigN = 0
	d.synced = false
	d.skipping = false
	d.resync = false
	d.inPSB = false
	d.prevFUP = false
	d.ovf = 0
	d.lastOVF = -1
	d.off = base
	d.carry = d.carry[:0]
	d.tips = d.tips[:0]
	d.pts = d.pts[:0]
}

// Tips returns the decoded TIP records, oldest first. The slice is owned
// by the decoder and valid until the next Feed/DropBefore/Reset.
func (d *WindowDecoder) Tips() []TIPRecord { return d.tips }

// SyncPoints returns the absolute offsets of the PSBs seen so far, under
// the same ownership rules as Tips.
func (d *WindowDecoder) SyncPoints() []int { return d.pts }

// Consumed returns the absolute stream offset of the next undecoded byte
// (bytes held back in the truncation carry are not consumed).
func (d *WindowDecoder) Consumed() int { return d.off - len(d.carry) }

// OVFTotal returns the number of OVF packets decoded since Reset. It is
// monotonic and survives DropBefore, so a caller can diff two
// observations to detect overflow between checks.
func (d *WindowDecoder) OVFTotal() int { return d.ovf }

// LastOVFOff returns the absolute stream offset of the most recent OVF
// packet, or -1 if none has been decoded since Reset. Records at or
// after this offset postdate the loss; records before it may be the
// last survivors of a severed history.
func (d *WindowDecoder) LastOVFOff() int { return d.lastOVF }

// Synced reports whether the decode position is trustworthy: a PSB has
// been seen and no overflow is pending resynchronization. While false,
// the tail of the stream cannot vouch for the control flow it encodes.
func (d *WindowDecoder) Synced() bool { return d.synced && !d.skipping }

// DropBefore discards TIP records and sync points with offsets below lo,
// compacting storage in place. Decoding state is unaffected: the stream
// remains continuous, only history is forgotten.
//
//fg:hotpath
func (d *WindowDecoder) DropBefore(lo int) {
	i := 0
	for i < len(d.tips) && d.tips[i].Off < lo {
		i++
	}
	if i > 0 {
		n := copy(d.tips, d.tips[i:])
		d.tips = d.tips[:n]
	}
	j := 0
	for j < len(d.pts) && d.pts[j] < lo {
		j++
	}
	if j > 0 {
		n := copy(d.pts, d.pts[j:])
		d.pts = d.pts[:n]
	}
}

// Feed decodes one appended chunk. Chunks normally end at packet
// boundaries (the tracer writes whole packet groups); a packet truncated
// at the chunk end is carried over and completed by the next Feed. A
// malformed packet is returned as an error, as DecodeFast would.
//
//fg:hotpath incremental decode runs on every check
func (d *WindowDecoder) Feed(chunk []byte) error {
	buf := chunk
	if len(d.carry) > 0 {
		d.carry = append(d.carry, chunk...)
		buf = d.carry
	}
	base := d.off - len(buf) + len(chunk) // absolute offset of buf[0]
	n, err := d.scan(buf, base)
	if err != nil {
		return err
	}
	rest := buf[n:]
	if len(d.carry) > 0 {
		m := copy(d.carry, rest)
		d.carry = d.carry[:m]
	} else if len(rest) > 0 {
		d.carry = append(d.carry[:0], rest...)
	}
	d.off = base + len(buf)
	return nil
}

// scan consumes complete packets from buf (whose first byte sits at
// absolute offset base) and returns how many bytes it consumed.
//
// This is the throughput-critical loop of the fast path: the TIP family
// (every odd header byte, the dense class of a record-bearing window) is
// dispatched entirely in registers, the even classes in one pktTab load
// per packet (no per-byte branch ladder), PAD gaps and TNT runs are
// skipped word-at-a-time with uint64 probes, and the last-IP / TNT-run
// state lives in locals across the whole window — the decoder fields are
// read once on entry and stored once per exit instead of per packet.
//
//fg:hotpath
func (d *WindowDecoder) scan(buf []byte, base int) (int, error) {
	i := 0
	// Before the first PSB the stream may start mid-packet (a wrapped
	// ToPA): skip to the first sync point, keeping a partial-PSB-sized
	// tail unconsumed in case the PSB completes in the next chunk. No
	// decoder state has been touched yet, so these exits need no stash.
	if !d.synced {
		p := Sync(buf, 0)
		if p < 0 {
			keep := len(buf) - (PSBSize - 1)
			if keep < 0 {
				keep = 0
			}
			return keep, nil
		}
		i = p
	}
	// Hoist the per-packet state into registers for the window; the
	// record slice rides along so the append fast path works on a local
	// header instead of reloading d.tips through the pointer per record.
	lastIP, sig, sigN, skipping := d.lastIP, d.sig, d.sigN, d.skipping
	resync, tips := d.resync, d.tips
	inPSB, prevFUP := d.inPSB, d.prevFUP
	n := len(buf)
	for i < n {
		b := buf[i]
		// The TIP family — every odd header byte — is the dense class of a
		// record-bearing window, so it is dispatched first and entirely in
		// registers: opcode validity is one bitmap probe and the packet
		// length one nibble shift, so advancing i never waits out the
		// load-use latency of a pktTab entry. The even classes are rarer
		// and go through the table.
		if b&1 != 0 {
			op := b & 0x1f
			if tipOpSet>>op&1 == 0 {
				d.stash(lastIP, sig, sigN, skipping, resync, inPSB, prevFUP, tips)
				return i, malformedf("unknown packet header %#02x at %d", b, base+i)
			}
			ipb := b >> 5
			plen := 1 + int(ipLenNibbles>>(ipb*4)&0xf)
			if i+plen > n {
				d.stash(lastIP, sig, sigN, skipping, resync, inPSB, prevFUP, tips)
				return i, nil // truncated tail
			}
			if ipb != 0 {
				lastIP = ipReconstruct(ipb, buf[i+1:i+plen], lastIP)
			}
			if op == opTIP && !skipping {
				// TIP proper: the one family member that emits a checked
				// record. The signature is already collapsed to
				// TNTSigLongRun when the run overran TNTRunCap (the TNT
				// case maintains that invariant), so the emit path is
				// branch-free on the run state. The record fields are
				// stored straight into the slice slot: appending the
				// composite literal would stage all 32 bytes on the stack
				// and copy them over.
				if len(tips) == cap(tips) {
					tips = append(tips, TIPRecord{})
				} else {
					tips = tips[:len(tips)+1]
				}
				r := &tips[len(tips)-1]
				r.IP = lastIP
				r.TNTSig = sig
				r.Off = base + i
				r.TNTLen = int32(sigN)
				r.Resync = resync
				r.Async = prevFUP
				sig, sigN = TNTSigEmpty, 0
				resync = false
			}
			prevFUP = op == opFUP && !inPSB
			i += plen
			continue
		}
		e := pktTab[b]
		c := e & pcClassMask
		if c == pcTNT {
			prevFUP = false
			if skipping {
				// Resynchronizing after OVF: outcomes are discarded, so
				// whole TNT words are skipped with one probe each.
				i++
				for i+8 <= n && isTNTWord(leUint64(buf[i:])) {
					i += 8
				}
				continue
			}
			nb := int(e >> 8)
			if sigN <= TNTRunCap {
				payload := (b >> 1) & (1<<nb - 1)
				for k := 0; k < nb; k++ {
					sig = TNTSigAppend(sig, payload&(1<<k) != 0)
				}
			}
			sigN += nb
			i++
			// Batch the rest of the run: while the next 8 bytes are all
			// short-TNT headers, fold them without re-dispatching. Once
			// the run exceeds TNTRunCap the folded value is dead (the
			// record collapses to TNTSigLongRun below) and only the exact
			// outcome count still matters.
			for i+8 <= n {
				w := leUint64(buf[i:])
				if !isTNTWord(w) {
					break
				}
				if sigN > TNTRunCap {
					sigN += tntWordBits(w)
				} else {
					for k := 0; k < 8; k++ {
						tb := byte(w >> (8 * k))
						tn := int(pktTab[tb] >> 8)
						tp := (tb >> 1) & (1<<tn - 1)
						for t := 0; t < tn; t++ {
							sig = TNTSigAppend(sig, tp&(1<<t) != 0)
						}
						sigN += tn
					}
				}
				i += 8
			}
			// Maintain the emit invariant: once the run overruns the cap,
			// sig IS the long-run wildcard, so the TIP case never has to
			// re-check the length. (Bits folded past the cap above were
			// already dead — sig is reset at every emit and every OVF.)
			if sigN > TNTRunCap {
				sig = TNTSigLongRun
			}
		} else if c == pcPAD {
			i++
			// Skip whole zero words: PAD fills ToPA region tails.
			for i+8 <= n && leUint64(buf[i:]) == 0 {
				i += 8
			}
		} else if c == pcExt {
			if i+1 >= n {
				d.stash(lastIP, sig, sigN, skipping, resync, inPSB, prevFUP, tips)
				return i, nil // truncated tail
			}
			switch buf[i+1] {
			case extPSB:
				if i+PSBSize > n {
					d.stash(lastIP, sig, sigN, skipping, resync, inPSB, prevFUP, tips)
					if isPSBPrefix(buf[i:]) {
						return i, nil // PSB split across chunks
					}
					return i, malformedf("malformed PSB at %d", base+i)
				}
				if !isPSBAt(buf, i) {
					d.stash(lastIP, sig, sigN, skipping, resync, inPSB, prevFUP, tips)
					return i, malformedf("malformed PSB at %d", base+i)
				}
				d.pts = append(d.pts, base+i)
				lastIP = 0
				d.synced = true
				inPSB = true
				prevFUP = false
				if skipping {
					skipping = false
					resync = true
				}
				i += PSBSize
			case extPSBEND:
				inPSB = false
				prevFUP = false
				i += 2
			case extPIP:
				if i+10 > n {
					d.stash(lastIP, sig, sigN, skipping, resync, inPSB, prevFUP, tips)
					return i, nil
				}
				prevFUP = false
				i += 10
			case extMODE:
				if i+modePacketLen > n {
					d.stash(lastIP, sig, sigN, skipping, resync, inPSB, prevFUP, tips)
					return i, nil
				}
				prevFUP = false
				i += modePacketLen
			case extOVF:
				// Data lost: the accumulated TNT run is unreliable, and
				// so is everything up to the next sync point.
				sig, sigN = TNTSigEmpty, 0
				skipping = true
				prevFUP = false
				d.ovf++
				d.lastOVF = base + i
				i += 2
			default:
				d.stash(lastIP, sig, sigN, skipping, resync, inPSB, prevFUP, tips)
				return i, malformedf("unknown extended opcode %#02x at %d", buf[i+1], base+i)
			}
		} else { // pcBad: an even byte that is no packet — impossible TNT
			d.stash(lastIP, sig, sigN, skipping, resync, inPSB, prevFUP, tips)
			return i, malformedf("malformed TNT byte %#02x at %d", b, base+i)
		}
	}
	d.stash(lastIP, sig, sigN, skipping, resync, inPSB, prevFUP, tips)
	return i, nil
}

// stash writes the register-carried scan state back to the decoder; every
// scan exit calls it exactly once.
func (d *WindowDecoder) stash(lastIP, sig uint64, sigN int, skipping, resync, inPSB, prevFUP bool, tips []TIPRecord) {
	d.lastIP = lastIP
	d.sig = sig
	d.sigN = sigN
	d.skipping = skipping
	d.resync = resync
	d.inPSB = inPSB
	d.prevFUP = prevFUP
	d.tips = tips
}

// isPSBPrefix reports whether tail is a (possibly incomplete) prefix of a
// PSB packet.
func isPSBPrefix(tail []byte) bool {
	for j, b := range tail {
		if j%2 == 0 {
			if b != 0x02 {
				return false
			}
		} else if b != extPSB {
			return false
		}
	}
	return true
}

// TipsFrom returns the suffix of tips whose records sit at or after
// absolute stream offset lo (binary search on the ascending Off field).
//
//fg:hotpath
func TipsFrom(tips []TIPRecord, lo int) []TIPRecord {
	a, b := 0, len(tips)
	for a < b {
		m := (a + b) / 2
		if tips[m].Off < lo {
			a = m + 1
		} else {
			b = m
		}
	}
	return tips[a:]
}
