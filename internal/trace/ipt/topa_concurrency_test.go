package ipt

// ToPA concurrency and hook-semantics coverage for the asynchronous
// checking pipeline: OnRegionFull event fields and ordering, hook
// re-entrancy, and a writer-vs-readers race test (meaningful under
// -race; CI runs it there) asserting the snapshot/AppendSince contract
// holds while the generation advances concurrently.

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestToPAOnRegionFullSemantics: one event per region boundary, with a
// consistent snapshot of (Region, Gen, Total), Wrapped only on the final
// region, and OnFull still firing after it.
func TestToPAOnRegionFullSemantics(t *testing.T) {
	tp := NewToPA(8, 8)
	var evs []RegionFull
	order := []string{}
	tp.OnRegionFull = func(ev RegionFull) {
		evs = append(evs, ev)
		order = append(order, "region")
	}
	tp.OnFull = func() { order = append(order, "full") }

	tp.Write(make([]byte, 5))
	if len(evs) != 0 {
		t.Fatalf("events before any region filled: %v", evs)
	}
	tp.Write(make([]byte, 15)) // fills region 0 at 8 and region 1 at 16
	tp.Write(make([]byte, 4))  // fills region 0 again at 24
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3: %v", len(evs), evs)
	}
	want := []RegionFull{
		{Region: 0, Total: 8, Gen: evs[0].Gen},
		{Region: 1, Total: 16, Gen: evs[1].Gen, Wrapped: true},
		{Region: 0, Total: 24, Gen: evs[2].Gen},
	}
	for i, ev := range evs {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
	if evs[0].Gen >= evs[1].Gen || evs[1].Gen >= evs[2].Gen {
		t.Errorf("generations not increasing across fills: %v", evs)
	}
	// OnFull (the wrap PMI) fires after the region event for the final
	// region, and only there.
	wantOrder := []string{"region", "region", "full", "region"}
	if len(order) != len(wantOrder) {
		t.Fatalf("hook order = %v, want %v", order, wantOrder)
	}
	for i := range order {
		if order[i] != wantOrder[i] {
			t.Fatalf("hook order = %v, want %v", order, wantOrder)
		}
	}
}

// TestToPAOnRegionFullReentrancy: the hook runs with the buffer lock
// released, so it may read the buffer — the capture pattern — and even
// write to it.
func TestToPAOnRegionFullReentrancy(t *testing.T) {
	tp := NewToPA(8, 8)
	var captured [][]byte
	depth := 0
	tp.OnRegionFull = func(ev RegionFull) {
		if depth > 0 {
			return // the hook's own write may fill the next region
		}
		depth++
		defer func() { depth-- }()
		got, ok := tp.AppendSince(nil, ev.Total-8)
		if !ok {
			t.Errorf("AppendSince from inside the hook failed at total %d", ev.Total)
		}
		captured = append(captured, got)
		if ev.Total == 8 {
			tp.Write([]byte{0xEE}) // re-entrant write must not deadlock
		}
	}
	tp.Write(bytes.Repeat([]byte{7}, 8))
	if len(captured) == 0 || len(captured[0]) != 8 {
		t.Fatalf("captured = %v, want the filled 8-byte region", captured)
	}
	if got := tp.TotalWritten(); got != 9 {
		t.Fatalf("total = %d, want 9 (8 + the hook's own write)", got)
	}
}

// TestToPAConcurrentWriteAndReaders races one producer against reader
// goroutines exercising the asynchronous pipeline's exact access mix —
// AppendSince into a reused scratch, SnapshotInto, Gen/Held/TotalWritten
// — and checks the content contract on every read: the stream is the
// byte sequence b(i) = i mod 251, so any correctly copied range is
// verifiable without stopping the writer. Run under -race, this is the
// regression test for the buffer's internal locking.
func TestToPAConcurrentWriteAndReaders(t *testing.T) {
	tp := NewToPA(1<<10, 1<<10)
	const mod = 251
	stop := make(chan struct{})
	var wrote uint64

	checkRange := func(start uint64, b []byte) {
		for i, v := range b {
			if v != byte((start+uint64(i))%mod) {
				t.Errorf("byte %d = %d, want %d", start+uint64(i), v, byte((start+uint64(i))%mod))
				return
			}
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // producer
		defer wg.Done()
		var off uint64
		chunk := make([]byte, 0, 96)
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := 1 + int(off%96)
			chunk = chunk[:0]
			for i := 0; i < n; i++ {
				chunk = append(chunk, byte((off+uint64(i))%mod))
			}
			tp.Write(chunk)
			off += uint64(n)
			atomic.StoreUint64(&wrote, off)
		}
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) { // readers
			defer wg.Done()
			scratch := make([]byte, 0, 4<<10)
			var cursor uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r {
				case 0: // the capture pattern: incremental AppendSince
					got, ok := tp.AppendSince(scratch[:0], cursor)
					if ok {
						checkRange(cursor, got)
						cursor += uint64(len(got))
					} else {
						cursor = tp.TotalWritten() // outrun: resynchronize
					}
				case 1: // the gate pattern: full snapshot
					snap := tp.SnapshotInto(scratch[:0])
					// Each call is internally consistent: the snapshot is
					// one contiguous range of the modular byte sequence.
					if len(snap) > tp.Capacity() {
						t.Errorf("snapshot longer than capacity: %d", len(snap))
					}
					for i := 1; i < len(snap); i++ {
						if snap[i] != byte((uint64(snap[i-1])+1)%mod) {
							t.Errorf("snapshot not contiguous at %d: %d then %d", i, snap[i-1], snap[i])
							return
						}
					}
				default: // metadata readers
					if h := tp.Held(); h > tp.Capacity() {
						t.Errorf("held %d > capacity", h)
						return
					}
					tp.Gen()
					tp.Wrapped()
				}
			}
		}(r)
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if atomic.LoadUint64(&wrote) == 0 {
		t.Fatal("producer wrote nothing")
	}
	if tp.TotalWritten() < atomic.LoadUint64(&wrote) {
		t.Fatalf("TotalWritten %d < producer's %d", tp.TotalWritten(), wrote)
	}
}

// TestToPAConcurrentRegionFullCapture races the full producer-side
// pipeline shape: a hook that captures each filled region via
// AppendSince (as guard.EnableAsync installs) while reader goroutines
// snapshot concurrently. The captures, concatenated, must equal the
// prefix-continuous stream — region boundaries lose nothing.
func TestToPAConcurrentRegionFullCapture(t *testing.T) {
	tp := NewToPA(512, 512)
	const mod = 251
	var (
		cursor   uint64 // writer-goroutine confined, like asyncState.cursor
		captured uint64
	)
	tp.OnRegionFull = func(ev RegionFull) {
		got, ok := tp.AppendSince(nil, cursor)
		if !ok {
			t.Errorf("capture outrun at cursor %d (span must still be resident)", cursor)
			return
		}
		for i, v := range got {
			if v != byte((cursor+uint64(i))%mod) {
				t.Errorf("captured byte %d corrupt", cursor+uint64(i))
				return
			}
		}
		cursor += uint64(len(got))
		atomic.AddUint64(&captured, uint64(len(got)))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := make([]byte, 0, 2<<10)
			for {
				select {
				case <-stop:
					return
				default:
					tp.SnapshotInto(scratch[:0])
					tp.Held()
				}
			}
		}()
	}

	var off uint64
	deadline := time.Now().Add(50 * time.Millisecond)
	buf := make([]byte, 0, 128)
	for time.Now().Before(deadline) {
		n := 1 + int(off%128)
		buf = buf[:0]
		for i := 0; i < n; i++ {
			buf = append(buf, byte((off+uint64(i))%mod))
		}
		tp.Write(buf)
		off += uint64(n)
	}
	close(stop)
	wg.Wait()
	if captured == 0 {
		t.Fatal("no region fills captured")
	}
	if cursor > tp.TotalWritten() {
		t.Fatalf("capture cursor %d ran past the stream %d", cursor, tp.TotalWritten())
	}
}
