package ipt

import (
	"fmt"

	"flowguard/internal/isa"
	"flowguard/internal/trace"
)

// Model-specific registers of the trace unit (real Intel numbering).
const (
	MSRRTITOutputBase uint32 = 0x560
	MSRRTITOutputMask uint32 = 0x561
	MSRRTITCtl        uint32 = 0x570
	MSRRTITStatus     uint32 = 0x571
	MSRRTITCR3Match   uint32 = 0x572
)

// IA32_RTIT_CTL bit positions (real Intel layout). FlowGuard's kernel
// module sets TraceEn+BranchEn+User+CR3Filter+ToPA and clears OS and
// FabricEn (§5.1).
const (
	CtlTraceEn   uint64 = 1 << 0
	CtlOS        uint64 = 1 << 2
	CtlUser      uint64 = 1 << 3
	CtlFabricEn  uint64 = 1 << 6
	CtlCR3Filter uint64 = 1 << 7
	CtlToPA      uint64 = 1 << 8
	CtlBranchEn  uint64 = 1 << 13
)

// CyclesPerTraceByte is the calibrated cost of emitting one trace byte,
// covering packetization and the memory-subsystem write bandwidth. With
// the workloads' ~0.1 trace bytes per retired instruction this yields the
// ~3% tracing overhead of Table 1 (see EXPERIMENTS.md).
const CyclesPerTraceByte = 0.35

// WriteFault intercepts the tracer's packet writes on their way to the
// ToPA buffer, modeling transport-level trace damage (bit flips, lost or
// delayed bursts, buffer-flooding). Implementations receive the packet
// bytes about to land at stream offset off and return the bytes to write
// instead — possibly p itself, possibly empty. They must not retain p
// past the call.
type WriteFault interface {
	Corrupt(p []byte, off uint64) []byte
}

// Tracer is one core's trace unit. It implements trace.Sink so the CPU
// can feed it retired branches, filters and compresses them per the MSR
// configuration, and streams packet bytes into the ToPA buffer.
type Tracer struct {
	ctl      uint64
	cr3Match uint64
	curCR3   uint64

	Out *ToPA

	// Fault, if non-nil, filters every packet write (fault injection).
	Fault WriteFault

	// PSBPeriod is the target byte distance between stream sync points.
	PSBPeriod int

	lastIP   uint64
	tntBits  uint8
	tntCount int
	sincePSB int
	started  bool

	// Stats.
	Packets     uint64
	TNTBitCount uint64
	TIPCount    uint64
	Branches    uint64
	// EncodeFaults counts packets the encoder could not produce
	// (impossible internal state); each one is signaled in-band with an
	// OVF packet so decoders resynchronize instead of misattributing.
	EncodeFaults uint64

	scratch []byte
}

// NewTracer returns a trace unit writing into out (a default two-region
// ToPA if nil).
func NewTracer(out *ToPA) *Tracer {
	if out == nil {
		out = NewToPA()
	}
	return &Tracer{Out: out, PSBPeriod: 2048}
}

// WriteMSR programs a trace-unit register, as the kernel module does with
// WRMSR. Unknown registers return an error.
func (t *Tracer) WriteMSR(msr uint32, v uint64) error {
	switch msr {
	case MSRRTITCtl:
		t.ctl = v
	case MSRRTITCR3Match:
		t.cr3Match = v
	case MSRRTITOutputBase, MSRRTITOutputMask, MSRRTITStatus:
		// Output configuration is modeled by the ToPA object itself.
	default:
		return fmt.Errorf("ipt: unknown MSR %#x", msr)
	}
	return nil
}

// ReadMSR reads back a trace-unit register.
func (t *Tracer) ReadMSR(msr uint32) (uint64, error) {
	switch msr {
	case MSRRTITCtl:
		return t.ctl, nil
	case MSRRTITCR3Match:
		return t.cr3Match, nil
	default:
		return 0, fmt.Errorf("ipt: unknown MSR %#x", msr)
	}
}

// SetCR3 models a context switch: the kernel writes the new address-space
// root, the trace unit re-evaluates its CR3 filter, and — as real IPT
// does for CR3 writes while TraceEn is set — emits a PIP packet so
// decoders can attribute subsequent packets to the right process.
func (t *Tracer) SetCR3(cr3 uint64) {
	if cr3 == t.curCR3 {
		return
	}
	t.curCR3 = cr3
	// PIP is only emitted while packet generation is contextually
	// enabled: with CR3 filtering, switching *away* from the protected
	// process produces nothing (ContextEn gating), and switching *to* it
	// marks the re-entry.
	if t.Enabled() && t.started {
		t.scratch = t.scratch[:0]
		t.flushTNT()
		t.scratch = appendPIP(t.scratch, cr3)
		t.Packets++
		t.write(t.scratch)
	}
}

// Enabled reports whether packet generation is currently active.
func (t *Tracer) Enabled() bool {
	if t.ctl&CtlTraceEn == 0 || t.ctl&CtlBranchEn == 0 {
		return false
	}
	if t.ctl&CtlCR3Filter != 0 && t.curCR3 != t.cr3Match {
		return false
	}
	return true
}

// Branch implements trace.Sink: one retired CoFI in, zero or more packet
// bytes out (Table 3).
func (t *Tracer) Branch(b trace.Branch) {
	if !t.Enabled() {
		return
	}
	// User-only filtering: with the OS bit clear, kernel-mode flow is
	// never seen; the far-transfer handling below covers the boundary.
	if t.ctl&CtlUser == 0 {
		return
	}
	t.Branches++
	t.scratch = t.scratch[:0]
	if !t.started {
		t.started = true
		t.emitPSB(b.Source)
	}
	switch b.Class {
	case isa.CoFIDirect:
		// Unconditional direct branches are statically known: no output.
	case isa.CoFICond:
		t.tntBits |= boolBit(b.Taken) << t.tntCount
		t.tntCount++
		t.TNTBitCount++
		if t.tntCount == maxTNTBits {
			t.flushTNT()
		}
	case isa.CoFIIndirect, isa.CoFIRet:
		t.flushTNT()
		t.scratch = appendIPPacket(t.scratch, opTIP, b.Target, &t.lastIP)
		t.TIPCount++
		t.Packets++
	case isa.CoFIFarTransfer:
		// FUP with the event source, TIP.PGD entering the kernel, then
		// TIP.PGE at the user-space resume address. Under user-only
		// filtering the kernel interval is invisible, so the three
		// packets are adjacent.
		t.flushTNT()
		t.scratch = appendIPPacket(t.scratch, opFUP, b.Source, &t.lastIP)
		t.scratch = appendSuppressedIP(t.scratch, opTIPPGD)
		t.scratch = appendIPPacket(t.scratch, opTIPPGE, b.Target, &t.lastIP)
		t.Packets += 3
	}
	if len(t.scratch) > 0 {
		t.write(t.scratch)
	}
	t.maybePSB(b.Target)
}

// TraceContext is the per-task slice of a shared-core trace unit's
// mutable state. A multi-core scheduler saves the outgoing task's
// context and restores the incoming one at every slice boundary, so the
// packet bytes each task contributes to the shared stream are identical
// to what a dedicated CR3-filtered tracer would have produced — pending
// TNT bits included (hardware keeps them across a context switch; they
// drain into the stream only when the same task runs again).
type TraceContext struct {
	LastIP   uint64
	TNTBits  uint8
	TNTCount int
	SincePSB int
	Started  bool
}

// SaveContext captures the running task's packetization state.
func (t *Tracer) SaveContext() TraceContext {
	return TraceContext{
		LastIP: t.lastIP, TNTBits: t.tntBits, TNTCount: t.tntCount,
		SincePSB: t.sincePSB, Started: t.started,
	}
}

// RestoreContext reinstates state captured by SaveContext.
func (t *Tracer) RestoreContext(c TraceContext) {
	t.lastIP, t.tntBits, t.tntCount = c.LastIP, c.TNTBits, c.TNTCount
	t.sincePSB, t.started = c.SincePSB, c.Started
}

// SwitchTask performs a context switch on a shared-core tracer: the
// outgoing task's packetization state is saved into prev (nil for the
// first switch on a core), the incoming task's restored, the CR3 view
// updated, and a bare PIP + MODE switch marker written to the stream —
// exactly the attribution breadcrumbs hardware leaves for a trace
// demultiplexer. The marker bytes pass the fault filter (slice-boundary
// chaos targets them) but do not advance the PSB countdown: the restored
// task's sincePSB must reflect only its own bytes, or interleaving would
// perturb its PSB cadence relative to dedicated tracing and break the
// demux byte-identity property.
func (t *Tracer) SwitchTask(prev *TraceContext, next TraceContext, cr3 uint64, mode uint8) {
	if prev != nil {
		*prev = t.SaveContext()
	}
	t.RestoreContext(next)
	t.curCR3 = cr3
	if t.ctl&CtlTraceEn == 0 {
		return
	}
	t.scratch = t.scratch[:0]
	t.scratch = appendPIP(t.scratch, cr3)
	t.scratch = appendMODE(t.scratch, mode)
	t.Packets += 2
	keep := t.sincePSB
	t.write(t.scratch)
	t.sincePSB = keep
}

// AsyncEvent records an asynchronous control transfer performed by the
// kernel rather than by a retired branch — signal delivery redirecting
// the interrupted flow into a handler, or sigreturn restoring it. The
// shape is a FUP carrying the pre-event address immediately followed by
// a TIP with the new one; that adjacency (never produced by any retired
// branch class) is what decoders classify as an async edge
// (TIPRecord.Async) and flow walkers admit without consulting the CFG.
func (t *Tracer) AsyncEvent(from, to uint64) {
	if !t.Enabled() || t.ctl&CtlUser == 0 {
		return
	}
	t.scratch = t.scratch[:0]
	if !t.started {
		t.started = true
		t.emitPSB(from)
	}
	t.flushTNT()
	t.scratch = appendIPPacket(t.scratch, opFUP, from, &t.lastIP)
	t.scratch = appendIPPacket(t.scratch, opTIP, to, &t.lastIP)
	t.TIPCount++
	t.Packets += 2
	t.write(t.scratch)
	t.maybePSB(to)
}

// Flush drains any pending TNT bits into the output buffer (end-of-window
// readout by the checker).
func (t *Tracer) Flush() {
	t.scratch = t.scratch[:0]
	t.flushTNT()
	if len(t.scratch) > 0 {
		t.write(t.scratch)
	}
}

func (t *Tracer) flushTNT() {
	if t.tntCount == 0 {
		return
	}
	out, err := appendTNT(t.scratch, t.tntBits, t.tntCount)
	if err != nil {
		// The run cannot be encoded; dropping it silently would let a
		// decoder misattribute every later outcome. Signal the loss
		// in-band exactly as hardware overflow does.
		out = append(t.scratch, 0x02, extOVF)
		t.EncodeFaults++
	}
	t.scratch = out
	t.tntBits, t.tntCount = 0, 0
	t.Packets++
}

func (t *Tracer) emitPSB(ip uint64) {
	t.scratch = appendPSB(t.scratch)
	t.scratch = appendPIP(t.scratch, t.curCR3)
	// PSB+ context: an FUP carrying the current IP, then PSBEND. The
	// full decoder starts its instruction walk here; last-IP resets on
	// both sides.
	t.lastIP = 0
	t.scratch = appendIPPacket(t.scratch, opFUP, ip, &t.lastIP)
	t.scratch = append(t.scratch, 0x02, extPSBEND)
	t.sincePSB = 0
	t.Packets += 4
}

func (t *Tracer) maybePSB(ip uint64) {
	if t.sincePSB < t.PSBPeriod {
		return
	}
	t.scratch = t.scratch[:0]
	t.flushTNT()
	t.emitPSB(ip)
	t.write(t.scratch)
}

func (t *Tracer) write(p []byte) {
	if t.Fault != nil {
		p = t.Fault.Corrupt(p, t.Out.TotalWritten())
	}
	if len(p) == 0 {
		return
	}
	t.Out.Write(p)
	t.sincePSB += len(p)
}

// Cycles implements the calibrated cost model: tracing work is
// proportional to emitted trace bytes.
func (t *Tracer) Cycles() uint64 {
	return uint64(float64(t.Out.TotalWritten()) * CyclesPerTraceByte)
}

// ResetCycles is a no-op for the tracer (its meter derives from the
// monotonic byte count); kept for interface symmetry.
func (t *Tracer) ResetCycles() {}

var _ trace.Sink = (*Tracer)(nil)
var _ trace.CycleMeter = (*Tracer)(nil)

func boolBit(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
