package ipt_test

// Tests of the incremental WindowDecoder: chunked feeding must agree
// byte-for-byte with the batch fast decoder over the same stream, because
// the guard's amortized window cache substitutes one for the other.

import (
	"reflect"
	"testing"

	"flowguard/internal/isa"
	"flowguard/internal/trace"
	"flowguard/internal/trace/ipt"
)

// synthStream produces a trace stream mixing TNT runs (short and
// long/capped), indirect TIPs, far transfers and periodic PSBs, plus the
// batch reference decode of it.
func synthStream(t *testing.T, branches int) ([]byte, []ipt.TIPRecord) {
	t.Helper()
	tr := ipt.NewTracer(ipt.NewToPA(1 << 20))
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlDefault); err != nil {
		t.Fatal(err)
	}
	ip := uint64(0x400000)
	for i := 0; i < branches; i++ {
		// A TNT run whose length cycles through short and capped.
		run := i % (ipt.TNTRunCap + 5)
		for j := 0; j < run; j++ {
			tr.Branch(trace.Branch{Class: isa.CoFICond, Source: ip, Target: ip + 4, Taken: (i+j)%3 != 0})
		}
		cls := isa.CoFIIndirect
		if i%7 == 3 {
			cls = isa.CoFIRet
		}
		tgt := 0x400000 + uint64((i*2654435761)%(1<<20))
		tr.Branch(trace.Branch{Class: cls, Source: ip, Target: tgt, Taken: true})
		if i%11 == 5 {
			tr.Branch(trace.Branch{Class: isa.CoFIFarTransfer, Source: ip, Target: ip + 8, Taken: true})
		}
		ip = tgt
	}
	tr.Flush()
	buf := tr.Out.Snapshot()
	evs, err := ipt.DecodeFast(buf)
	if err != nil {
		t.Fatal(err)
	}
	return buf, ipt.ExtractTIPs(evs)
}

func TestWindowDecoderMatchesBatchDecode(t *testing.T) {
	buf, want := synthStream(t, 400)
	if len(want) < 100 {
		t.Fatalf("degenerate stream: %d TIPs", len(want))
	}
	d := ipt.NewWindowDecoder(0)
	if err := d.Feed(buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.Tips(), want) {
		t.Fatalf("single-feed decode diverges from batch decode: %d vs %d records", len(d.Tips()), len(want))
	}
	if !reflect.DeepEqual(d.SyncPoints(), ipt.SyncPoints(buf)) {
		t.Fatal("sync points diverge from batch scan")
	}
}

func TestWindowDecoderChunkedFeeds(t *testing.T) {
	buf, want := synthStream(t, 300)
	for _, chunk := range []int{1, 2, 3, 5, 7, 16, 64, 1023} {
		d := ipt.NewWindowDecoder(0)
		for off := 0; off < len(buf); off += chunk {
			end := off + chunk
			if end > len(buf) {
				end = len(buf)
			}
			if err := d.Feed(buf[off:end]); err != nil {
				t.Fatalf("chunk=%d: %v", chunk, err)
			}
		}
		if !reflect.DeepEqual(d.Tips(), want) {
			t.Fatalf("chunk=%d: chunked decode diverges from batch decode", chunk)
		}
		if d.Consumed() != len(buf) {
			t.Fatalf("chunk=%d: consumed %d of %d bytes", chunk, d.Consumed(), len(buf))
		}
	}
}

// TestWindowDecoderSyncsMidStream models the post-wrap case: the stream
// handed to the decoder starts mid-packet, and decoding must begin at the
// first PSB, exactly as the batch path (Sync + DecodeFast) does.
func TestWindowDecoderSyncsMidStream(t *testing.T) {
	buf, _ := synthStream(t, 300)
	cut := len(buf) / 3
	sub := buf[cut:]
	p := ipt.Sync(sub, 0)
	if p <= 0 {
		t.Fatalf("no interior PSB after cut (p=%d); test needs periodic PSBs", p)
	}
	evs, err := ipt.DecodeFast(sub[p:])
	if err != nil {
		t.Fatal(err)
	}
	want := ipt.ExtractTIPs(evs)

	d := ipt.NewWindowDecoder(0)
	for off := 0; off < len(sub); off += 13 {
		end := off + 13
		if end > len(sub) {
			end = len(sub)
		}
		if err := d.Feed(sub[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	got := d.Tips()
	if len(got) != len(want) {
		t.Fatalf("mid-stream decode: %d records, want %d", len(got), len(want))
	}
	for i := range got {
		// Offsets are relative to the feed origin vs the PSB slice.
		if got[i].IP != want[i].IP || got[i].TNTSig != want[i].TNTSig || got[i].Off != want[i].Off+p {
			t.Fatalf("record %d diverges: %+v vs %+v (p=%d)", i, got[i], want[i], p)
		}
	}
	if d.SyncPoints()[0] != p {
		t.Fatalf("first sync point %d, want %d", d.SyncPoints()[0], p)
	}
}

func TestWindowDecoderDropBefore(t *testing.T) {
	buf, all := synthStream(t, 200)
	d := ipt.NewWindowDecoder(0)
	if err := d.Feed(buf); err != nil {
		t.Fatal(err)
	}
	lo := all[len(all)/2].Off
	d.DropBefore(lo)
	for _, r := range d.Tips() {
		if r.Off < lo {
			t.Fatalf("record at %d survived DropBefore(%d)", r.Off, lo)
		}
	}
	for _, p := range d.SyncPoints() {
		if p < lo {
			t.Fatalf("sync point %d survived DropBefore(%d)", p, lo)
		}
	}
	if !reflect.DeepEqual(d.Tips(), ipt.TipsFrom(all, lo)) {
		t.Fatal("DropBefore result diverges from TipsFrom")
	}
	// Decoding continues seamlessly after compaction.
	before := len(d.Tips())
	tr := ipt.NewTracer(ipt.NewToPA(1 << 20))
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlDefault); err != nil {
		t.Fatal(err)
	}
	tr.Branch(trace.Branch{Class: isa.CoFIIndirect, Source: 0x400000, Target: 0x400100, Taken: true})
	tr.Flush()
	if err := d.Feed(tr.Out.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if len(d.Tips()) <= before {
		t.Fatal("no records decoded after DropBefore")
	}
}

func TestTipsFrom(t *testing.T) {
	_, all := synthStream(t, 100)
	if got := ipt.TipsFrom(all, 0); len(got) != len(all) {
		t.Fatalf("TipsFrom(0) = %d records, want all %d", len(got), len(all))
	}
	if got := ipt.TipsFrom(all, all[len(all)-1].Off+1); len(got) != 0 {
		t.Fatalf("TipsFrom(past end) = %d records, want 0", len(got))
	}
	mid := all[len(all)/2].Off
	got := ipt.TipsFrom(all, mid)
	if got[0].Off != mid {
		t.Fatalf("TipsFrom(%d) starts at %d", mid, got[0].Off)
	}
	if len(got) != len(all)-len(all)/2 {
		t.Fatalf("TipsFrom(%d) = %d records", mid, len(got))
	}
}

// TestToPAAppendSince pins the incremental-read surface the guard's
// window cache is built on.
func TestToPAAppendSince(t *testing.T) {
	topa := ipt.NewToPA(64, 64)
	write := func(n int, v byte) {
		b := make([]byte, n)
		for i := range b {
			b[i] = v
		}
		topa.Write(b)
	}
	write(40, 1)
	if got, ok := topa.AppendSince(nil, 0); !ok || len(got) != 40 {
		t.Fatalf("AppendSince(0) = %d bytes, ok=%v", len(got), ok)
	}
	write(40, 2) // crosses into region 2
	got, ok := topa.AppendSince(nil, 40)
	if !ok || len(got) != 40 || got[0] != 2 {
		t.Fatalf("AppendSince(40) = %d bytes ok=%v", len(got), ok)
	}
	write(128, 3) // full wrap: everything before is gone
	if _, ok := topa.AppendSince(nil, 40); ok {
		t.Fatal("AppendSince accepted a range the wrap discarded")
	}
	from := topa.TotalWritten() - uint64(topa.Held())
	got, ok = topa.AppendSince(nil, from)
	if !ok || len(got) != topa.Held() {
		t.Fatalf("AppendSince(oldest resident) = %d bytes ok=%v, want %d", len(got), ok, topa.Held())
	}
	if !reflect.DeepEqual(got, topa.Snapshot()) {
		t.Fatal("AppendSince(oldest resident) diverges from Snapshot")
	}
	// Gen advances on writes and on Reset.
	g0 := topa.Gen()
	write(1, 4)
	if topa.Gen() <= g0 {
		t.Fatal("Gen did not advance on write")
	}
	g1 := topa.Gen()
	topa.Reset()
	if topa.Gen() <= g1 {
		t.Fatal("Gen did not advance on Reset")
	}
	if topa.Held() != 0 {
		t.Fatalf("Held after Reset = %d", topa.Held())
	}
}
