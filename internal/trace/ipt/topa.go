package ipt

// ToPA models the Table-of-Physical-Addresses output scheme: trace bytes
// stream into a chain of regions; when the last region fills, the table
// either wraps (losing the oldest data, the paper's default with two
// regions) or raises the buffer-full PMI that §7.1.2 proposes as the
// worst-case endpoint.
type ToPA struct {
	regions [][]byte
	// cur/pos locate the write cursor.
	cur, pos int
	// wrapped reports that at least one full pass has occurred, i.e. the
	// logical stream no longer starts at a packet boundary.
	wrapped bool
	// total counts bytes ever written (monotonic).
	total uint64
	// OnFull, if non-nil, is invoked each time the final region fills
	// (the PMI hook). The buffer wraps regardless.
	OnFull func()
}

// NewToPA allocates a table with the given region sizes. The paper's
// default configuration is two regions (§5.1).
func NewToPA(regionSizes ...int) *ToPA {
	t := &ToPA{}
	for _, n := range regionSizes {
		t.regions = append(t.regions, make([]byte, n))
	}
	if len(t.regions) == 0 {
		t.regions = [][]byte{make([]byte, 8<<10), make([]byte, 8<<10)}
	}
	return t
}

// Capacity returns the total byte capacity of all regions.
func (t *ToPA) Capacity() int {
	n := 0
	for _, r := range t.regions {
		n += len(r)
	}
	return n
}

// TotalWritten returns the monotonic count of bytes ever written.
func (t *ToPA) TotalWritten() uint64 { return t.total }

// Write appends trace bytes, wrapping when the chain fills.
func (t *ToPA) Write(p []byte) {
	t.total += uint64(len(p))
	for len(p) > 0 {
		r := t.regions[t.cur]
		n := copy(r[t.pos:], p)
		t.pos += n
		p = p[n:]
		if t.pos == len(r) {
			t.cur++
			t.pos = 0
			if t.cur == len(t.regions) {
				t.cur = 0
				t.wrapped = true
				if t.OnFull != nil {
					t.OnFull()
				}
			}
		}
	}
}

// Snapshot returns the logical byte stream currently buffered, oldest
// first. After a wrap the stream may begin mid-packet; decoders must
// synchronize to the first PSB.
func (t *ToPA) Snapshot() []byte {
	if !t.wrapped {
		var out []byte
		for i := 0; i < t.cur; i++ {
			out = append(out, t.regions[i]...)
		}
		out = append(out, t.regions[t.cur][:t.pos]...)
		return out
	}
	var out []byte
	out = append(out, t.regions[t.cur][t.pos:]...)
	for i := 1; i <= len(t.regions); i++ {
		r := (t.cur + i) % len(t.regions)
		if r == t.cur {
			out = append(out, t.regions[r][:t.pos]...)
		} else {
			out = append(out, t.regions[r]...)
		}
	}
	return out
}

// Reset discards all buffered bytes (used when tracing is reconfigured).
func (t *ToPA) Reset() {
	t.cur, t.pos, t.wrapped = 0, 0, false
}
