package ipt

import "sync"

// ToPA models the Table-of-Physical-Addresses output scheme: trace bytes
// stream into a chain of regions; when the last region fills, the table
// either wraps (losing the oldest data, the paper's default with two
// regions) or raises the buffer-full PMI that §7.1.2 proposes as the
// worst-case endpoint.
//
// Incremental readers (the guard's amortized window decoder) address the
// stream by its monotonic byte offset: TotalWritten is the offset one
// past the newest byte, Held is how many trailing bytes are still
// resident, and AppendSince copies a trailing range out without
// disturbing the write cursor.
//
// All methods are safe for concurrent use: the asynchronous checking
// pipeline reads (AppendSince, SnapshotInto, Gen, TotalWritten) while
// the producer writes. The hook fields OnFull and OnRegionFull must be
// installed before concurrent use begins; they are invoked on the
// writer's goroutine with the buffer's lock released, so a hook may call
// back into any ToPA method (including Write).
type ToPA struct {
	mu sync.Mutex

	regions [][]byte
	// cur/pos locate the write cursor.
	cur, pos int
	// wrapped reports that at least one full pass has occurred, i.e. the
	// logical stream no longer starts at a packet boundary.
	wrapped bool
	// total counts bytes ever written (monotonic).
	total uint64
	// gen is a write generation: it advances on every Write chunk and on
	// Reset, so incremental readers can detect any state change.
	gen uint64
	// resetTotal is the value of total at the last Reset; the physical
	// position of logical byte a is (a-resetTotal) mod Capacity().
	resetTotal uint64
	// OnFull, if non-nil, is invoked each time the final region fills
	// (the PMI hook). The buffer wraps regardless.
	OnFull func()
	// OnRegionFull, if non-nil, is invoked each time any region fills —
	// the interrupt real ToPA tables raise per INT-flagged entry. This is
	// the asynchronous pipeline's capture point: it fires mid-Write, on
	// the writer's goroutine, once per region boundary crossed, before
	// OnFull for the final region.
	OnRegionFull func(RegionFull)
}

// RegionFull describes one region-boundary crossing for OnRegionFull
// subscribers. All fields are a consistent snapshot taken at the instant
// the region filled (later writes may already have advanced the buffer
// by the time the hook body runs).
type RegionFull struct {
	// Region is the index of the region that just filled.
	Region int
	// Gen is the write generation after the fill.
	Gen uint64
	// Total is the stream offset one past the filled region's last byte.
	Total uint64
	// Wrapped marks the final region's fill: the table wrapped and the
	// oldest resident bytes are being discarded.
	Wrapped bool
}

// NewToPA allocates a table with the given region sizes. The paper's
// default configuration is two regions (§5.1). Non-positive region sizes
// are dropped — a zero-capacity region can never absorb a write, and a
// table made only of them would spin Write forever — and a table left
// empty falls back to the default configuration.
func NewToPA(regionSizes ...int) *ToPA {
	t := &ToPA{}
	for _, n := range regionSizes {
		if n > 0 {
			t.regions = append(t.regions, make([]byte, n))
		}
	}
	if len(t.regions) == 0 {
		t.regions = [][]byte{make([]byte, 8<<10), make([]byte, 8<<10)}
	}
	return t
}

// Capacity returns the total byte capacity of all regions.
func (t *ToPA) Capacity() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.capacity()
}

func (t *ToPA) capacity() int {
	n := 0
	for _, r := range t.regions {
		n += len(r)
	}
	return n
}

// TotalWritten returns the monotonic count of bytes ever written.
func (t *ToPA) TotalWritten() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Wrapped reports whether the buffer has discarded its oldest bytes at
// least once since the last Reset: the logical stream no longer starts
// at a packet boundary, and bytes before TotalWritten()-Held() are gone.
func (t *ToPA) Wrapped() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.wrapped
}

// Gen returns the write generation: it increases whenever the buffer
// contents change (writes or Reset), never decreases, and is equal
// between two observations only if the buffer is unchanged.
func (t *ToPA) Gen() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.gen
}

// Held returns how many of the most recently written logical bytes are
// still resident in the buffer (the span Snapshot would return).
func (t *ToPA) Held() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.held()
}

func (t *ToPA) held() int {
	if t.wrapped {
		return t.capacity()
	}
	return int(t.total - t.resetTotal)
}

// Write appends trace bytes, wrapping when the chain fills. total is
// advanced chunk by chunk so the hooks observe a consistent view; the
// lock is dropped around each hook invocation so hook bodies may read
// the buffer (or even write to it) without deadlocking.
//
//fg:hotpath the producer side of every simulated trace byte
func (t *ToPA) Write(p []byte) {
	for len(p) > 0 {
		t.mu.Lock()
		r := t.regions[t.cur]
		n := copy(r[t.pos:], p)
		t.pos += n
		t.total += uint64(n)
		t.gen++
		p = p[n:]
		filled := t.pos == len(r)
		var ev RegionFull
		if filled {
			ev = RegionFull{Region: t.cur, Gen: t.gen, Total: t.total}
			t.cur++
			t.pos = 0
			if t.cur == len(t.regions) {
				t.cur = 0
				t.wrapped = true
				ev.Wrapped = true
			}
		}
		t.mu.Unlock()
		if filled {
			if t.OnRegionFull != nil {
				t.OnRegionFull(ev)
			}
			if ev.Wrapped && t.OnFull != nil {
				t.OnFull()
			}
		}
	}
}

// AppendSince appends the logical stream bytes in [from, TotalWritten())
// to dst and returns the extended slice. It reports false — returning
// dst unchanged — when that range is no longer fully resident (the
// buffer wrapped past it), in which case the caller must resynchronize
// from a fresh Snapshot.
//
//fg:hotpath appends only into the caller's reusable scratch
func (t *ToPA) AppendSince(dst []byte, from uint64) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if from > t.total || t.total-from > uint64(t.held()) {
		return dst, false
	}
	for off := from; off < t.total; {
		ri, rp := t.locate(off)
		r := t.regions[ri]
		end := uint64(len(r) - rp)
		if rem := t.total - off; rem < end {
			end = rem
		}
		dst = append(dst, r[rp:rp+int(end)]...)
		off += end
	}
	return dst, true
}

// locate maps a resident logical offset to (region index, offset within
// region). Caller holds mu.
//
//fg:hotpath
func (t *ToPA) locate(off uint64) (int, int) {
	phys := int((off - t.resetTotal) % uint64(t.capacity()))
	for i, r := range t.regions {
		if phys < len(r) {
			return i, phys
		}
		phys -= len(r)
	}
	return 0, 0 // unreachable: phys < capacity
}

// Snapshot returns the logical byte stream currently buffered, oldest
// first. After a wrap the stream may begin mid-packet; decoders must
// synchronize to the first PSB.
func (t *ToPA) Snapshot() []byte { return t.SnapshotInto(nil) }

// SnapshotInto appends the buffered stream to dst (usually dst[:0] of a
// reusable buffer) and returns the extended slice.
//
//fg:hotpath appends only into the caller's reusable scratch
func (t *ToPA) SnapshotInto(dst []byte) []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		for i := 0; i < t.cur; i++ {
			dst = append(dst, t.regions[i]...)
		}
		return append(dst, t.regions[t.cur][:t.pos]...)
	}
	dst = append(dst, t.regions[t.cur][t.pos:]...)
	for i := 1; i <= len(t.regions); i++ {
		r := (t.cur + i) % len(t.regions)
		if r == t.cur {
			dst = append(dst, t.regions[r][:t.pos]...)
		} else {
			dst = append(dst, t.regions[r]...)
		}
	}
	return dst
}

// Reset discards all buffered bytes (used when tracing is reconfigured).
// The monotonic byte count is preserved; the next write lands at the
// start of the first region.
func (t *ToPA) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cur, t.pos, t.wrapped = 0, 0, false
	t.resetTotal = t.total
	t.gen++
}
