package ipt

import (
	"errors"
	"fmt"

	"flowguard/internal/isa"
	"flowguard/internal/module"
	"flowguard/internal/trace"
)

// CyclesPerDecodedInstr is the calibrated cost of reconstructing one
// retired instruction at the instruction-flow layer of abstraction
// (binary fetch + decode + packet correlation). It reproduces the ~230x
// geomean full-decode overhead the paper measures with Intel's reference
// decoder library (§2), and anchors the slow path's ~0.23 ms per 100-TIP
// window (§7.2.2). See EXPERIMENTS.md for the calibration.
const CyclesPerDecodedInstr = 360

// FullTrace is the output of the instruction-flow-layer decoder: the
// complete reconstructed control flow, not just the packetized subset.
type FullTrace struct {
	// Flow lists every reconstructed change-of-flow event in order,
	// including the direct branches that produce no packets.
	Flow []trace.Branch
	// Instrs is the number of instructions walked (the decode cost
	// driver).
	Instrs uint64
	// StartIP is the synchronization address (PSB+ FUP context).
	StartIP uint64
	// EndIP is the instruction pointer when trace data ran out.
	EndIP uint64
	// Resyncs counts recoveries via the next PSB after overflow or
	// desynchronization.
	Resyncs int
	// ResyncPoints holds, for each resynchronization, the index into
	// Flow where reconstruction resumed: Flow[p-1] and Flow[p] are not
	// control-flow-adjacent, and stateful consumers (the slow path's
	// shadow stack) must reset across the seam.
	ResyncPoints []int
}

// Cycles returns the calibrated cost of this decode.
func (t *FullTrace) Cycles() uint64 { return t.Instrs * CyclesPerDecodedInstr }

// tokenCursor walks the event list, serving TNT bits and IP packets in
// stream order and skipping synchronization-only packets.
type tokenCursor struct {
	evs []Event
	i   int
	bit int // next bit within evs[i] when it is a TNT packet
}

var errExhausted = errors.New("ipt: trace data exhausted")
var errDesync = errors.New("ipt: decoder desynchronized")

func (c *tokenCursor) skipMeta() {
	for c.i < len(c.evs) {
		switch e := c.evs[c.i]; e.Kind {
		case KindPAD, KindPIP, KindPSBEND, KindMODE:
			c.i++
		case KindPSB:
			c.i++
		case KindFUP:
			if e.Ctx {
				c.i++ // PSB+ context, redundant with walk state
				continue
			}
			return
		case KindTNT:
			if c.bit >= e.TNTCount {
				c.i++
				c.bit = 0
				continue
			}
			return
		default:
			return
		}
	}
}

// nextTNT pops the oldest pending conditional outcome.
func (c *tokenCursor) nextTNT() (bool, error) {
	c.skipMeta()
	if c.i >= len(c.evs) {
		return false, errExhausted
	}
	e := c.evs[c.i]
	if e.Kind != KindTNT {
		if e.Kind == KindOVF {
			return false, errDesync
		}
		return false, fmt.Errorf("%w: want TNT, have %v at offset %d", errDesync, e.Kind, e.Off)
	}
	taken := e.TNTBits&(1<<c.bit) != 0
	c.bit++
	return taken, nil
}

// nextIP pops the next IP-bearing packet of the wanted kind.
func (c *tokenCursor) nextIP(want Kind) (Event, error) {
	c.skipMeta()
	if c.i >= len(c.evs) {
		return Event{}, errExhausted
	}
	e := c.evs[c.i]
	if e.Kind != want {
		if e.Kind == KindOVF {
			return Event{}, errDesync
		}
		return Event{}, fmt.Errorf("%w: want %v, have %v at offset %d", errDesync, want, e.Kind, e.Off)
	}
	c.i++
	c.bit = 0
	return e, nil
}

// nextAsync consumes an asynchronous-transfer pair — a non-context FUP
// whose IP matches the current walk position, immediately followed by a
// TIP — and returns the TIP target. The kernel emits this shape at signal
// delivery (FUP = interrupted PC, TIP = handler entry) and at sigreturn
// (FUP = resume point of the handler, TIP = restored context). The jump
// is performed by the kernel, not by a retired branch, so the walker
// relocates without recording a flow edge: async edges are not part of
// the on-disk CFG and must not feed edge checks. On any mismatch the
// cursor is restored and (0, false) is returned.
func (c *tokenCursor) nextAsync(ip uint64) (uint64, bool) {
	si, sbit := c.i, c.bit
	c.skipMeta()
	if c.i >= len(c.evs) {
		c.i, c.bit = si, sbit
		return 0, false
	}
	e := c.evs[c.i]
	if e.Kind != KindFUP || e.Ctx || e.IP != ip {
		c.i, c.bit = si, sbit
		return 0, false
	}
	c.i++
	c.bit = 0
	c.skipMeta()
	if c.i >= len(c.evs) || c.evs[c.i].Kind != KindTIP {
		c.i, c.bit = si, sbit
		return 0, false
	}
	t := c.evs[c.i].IP
	c.i++
	c.bit = 0
	return t, true
}

// seekPSB advances to the next PSB and returns its context IP, used for
// the initial sync and for resynchronization after overflow.
func (c *tokenCursor) seekPSB() (uint64, bool) {
	for ; c.i < len(c.evs); c.i++ {
		if c.evs[c.i].Kind != KindPSB {
			continue
		}
		// Find the context FUP before PSBEND.
		for j := c.i + 1; j < len(c.evs); j++ {
			switch c.evs[j].Kind {
			case KindFUP:
				if c.evs[j].Ctx {
					c.i = j + 1
					c.bit = 0
					return c.evs[j].IP, true
				}
			case KindPSBEND:
				j = len(c.evs)
			}
		}
	}
	return 0, false
}

// DecodeFull is the instruction-flow-layer decoder (the Intel reference
// library analogue, §2/§5.3): it synchronizes at a PSB, then walks the
// program binaries instruction by instruction, consuming TNT bits at
// conditional branches and TIP targets at indirect branches/returns to
// reconstruct the complete control flow. maxInstrs bounds the walk
// (0 = unlimited).
func DecodeFull(as *module.AddressSpace, buf []byte, maxInstrs uint64) (*FullTrace, error) {
	evs, err := DecodeFast(buf)
	if err != nil {
		return nil, err
	}
	return DecodeFullEvents(as, evs, maxInstrs)
}

// DecodeFullEvents runs the instruction-flow walk over already
// fast-decoded events.
func DecodeFullEvents(as *module.AddressSpace, evs []Event, maxInstrs uint64) (*FullTrace, error) {
	cur := &tokenCursor{evs: evs}
	ip, ok := cur.seekPSB()
	if !ok {
		return nil, ErrNoSync
	}
	ft := &FullTrace{StartIP: ip}

	resync := func() bool {
		nip, ok := cur.seekPSB()
		if !ok {
			return false
		}
		ft.Resyncs++
		ft.ResyncPoints = append(ft.ResyncPoints, len(ft.Flow))
		ip = nip
		return true
	}

	for {
		if maxInstrs > 0 && ft.Instrs >= maxInstrs {
			break
		}
		// A pending FUP(ip)+TIP pair is a kernel-performed asynchronous
		// transfer (signal delivery or sigreturn): relocate the walk
		// without fetching an instruction or recording a flow edge. The
		// shadow-stack state of stateful consumers stays intact — the
		// handler runs on the same stack discipline and sigreturn brings
		// the flow back.
		if t, ok := cur.nextAsync(ip); ok {
			ip = t
			continue
		}
		raw, err := as.FetchInstr(ip)
		if err != nil {
			// The trace claims execution at an unfetchable address; give
			// the caller what was reconstructed so far. (A hijacked flow
			// can leave the window pointing at the stack, which is
			// itself a violation the slow path reports.)
			ft.EndIP = ip
			return ft, fmt.Errorf("ipt: flow reconstruction fetch at %#x: %w", ip, err)
		}
		in, err := isa.Decode(raw)
		if err != nil {
			ft.EndIP = ip
			return ft, fmt.Errorf("ipt: flow reconstruction decode at %#x: %w", ip, err)
		}
		ft.Instrs++
		next := ip + isa.InstrSize

		switch in.Op {
		case isa.JMP, isa.CALL:
			t := in.BranchTarget(ip)
			ft.Flow = append(ft.Flow, trace.Branch{Class: isa.CoFIDirect, Source: ip, Target: t, Taken: true})
			ip = t
		case isa.JCC:
			taken, err := cur.nextTNT()
			if errors.Is(err, errExhausted) {
				ft.EndIP = ip
				return ft, nil
			}
			if err != nil {
				if resync() {
					continue
				}
				ft.EndIP = ip
				return ft, nil
			}
			t := next
			if taken {
				t = in.BranchTarget(ip)
			}
			ft.Flow = append(ft.Flow, trace.Branch{Class: isa.CoFICond, Source: ip, Target: t, Taken: taken})
			ip = t
		case isa.JMPR, isa.CALLR, isa.RET:
			class := isa.CoFIIndirect
			if in.Op == isa.RET {
				class = isa.CoFIRet
			}
			e, err := cur.nextIP(KindTIP)
			if errors.Is(err, errExhausted) {
				ft.EndIP = ip
				return ft, nil
			}
			if err != nil {
				if resync() {
					continue
				}
				ft.EndIP = ip
				return ft, nil
			}
			ft.Flow = append(ft.Flow, trace.Branch{Class: class, Source: ip, Target: e.IP, Taken: true})
			ip = e.IP
		case isa.SYSCALL:
			if _, err := cur.nextIP(KindFUP); err != nil {
				if errors.Is(err, errExhausted) {
					ft.EndIP = ip
					return ft, nil
				}
				if resync() {
					continue
				}
				ft.EndIP = ip
				return ft, nil
			}
			if _, err := cur.nextIP(KindTIPPGD); err != nil {
				ft.EndIP = ip
				return ft, nil
			}
			pge, err := cur.nextIP(KindTIPPGE)
			if err != nil {
				ft.EndIP = ip
				return ft, nil
			}
			ft.Flow = append(ft.Flow, trace.Branch{Class: isa.CoFIFarTransfer, Source: ip, Target: pge.IP, Taken: true})
			ip = pge.IP
		case isa.HALT:
			ft.EndIP = ip
			return ft, nil
		default:
			ip = next
		}
	}
	ft.EndIP = ip
	return ft, nil
}
