package ipt

import "testing"

// FuzzDecodeFast drives the packet-grammar scanner with arbitrary bytes:
// it must never panic, and whatever events it accepts must carry sane
// field values. (Run with `go test -fuzz FuzzDecodeFast` for a real
// campaign; the seed corpus doubles as a regression suite.)
func FuzzDecodeFast(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})
	f.Add(appendPSB(nil))
	f.Add(appendTNT(nil, 0b101, 3))
	f.Add(appendPIP(nil, 0x1234))
	var last uint64
	f.Add(appendIPPacket(nil, opTIP, 0x400000, &last))
	f.Add([]byte{0x02, 0xF3}) // OVF
	f.Add([]byte{0x02, 0x99}) // unknown extended opcode
	f.Add([]byte{0xFF})       // unknown TIP-family header
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := DecodeFast(data)
		if err != nil {
			return
		}
		for _, e := range evs {
			if e.Kind == KindTNT && (e.TNTCount < 1 || e.TNTCount > maxTNTBits) {
				t.Fatalf("TNT count %d out of range", e.TNTCount)
			}
			if e.Off < 0 || e.Off >= len(data) {
				t.Fatalf("event offset %d outside %d-byte stream", e.Off, len(data))
			}
		}
		// A stream that decoded cleanly must also full-scan in parallel
		// mode to the same events.
		pevs, perr := DecodeFastParallel(data, 2)
		if perr != nil || len(pevs) != len(evs) {
			t.Fatalf("parallel decode disagreed: %v (%d vs %d events)", perr, len(pevs), len(evs))
		}
	})
}
