package ipt

import (
	"reflect"
	"testing"
)

func mustTNT(t *testing.F, bits uint8, n int) []byte {
	t.Helper()
	b, err := appendTNT(nil, bits, n)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// FuzzDecodeFast drives the packet-grammar scanner with arbitrary bytes:
// it must never panic, and whatever events it accepts must carry sane
// field values. (Run with `go test -fuzz FuzzDecodeFast` for a real
// campaign; the seed corpus doubles as a regression suite.)
func FuzzDecodeFast(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})
	f.Add(appendPSB(nil))
	f.Add(mustTNT(f, 0b101, 3))
	f.Add(appendPIP(nil, 0x1234))
	var last uint64
	f.Add(appendIPPacket(nil, opTIP, 0x400000, &last))
	f.Add([]byte{0x02, 0xF3}) // OVF
	f.Add([]byte{0x02, 0x99}) // unknown extended opcode
	f.Add([]byte{0xFF})       // unknown TIP-family header

	// Fault-shaped seeds: the corruption classes the chaos harness
	// injects (internal/faults).
	{
		// OVF spliced into the middle of a TIP packet's IP payload.
		last = 0
		tip := appendIPPacket(nil, opTIP, 0xdeadbeefcafe, &last)
		mid := len(tip) / 2
		ovfMidTIP := append(append(append([]byte{}, tip[:mid]...), 0x02, extOVF), tip[mid:]...)
		f.Add(ovfMidTIP)
	}
	f.Add(appendPSB(nil)[:7]) // truncated PSB
	{
		// Wrap splice: the tail of a cut TIP payload, then a PSB and
		// clean packets — the byte pattern after a ToPA wrap.
		last = 0
		cut := appendIPPacket(nil, opTIP, 0x123456789abc, &last)
		splice := append(append([]byte{}, cut[3:]...), appendPSB(nil)...)
		splice = appendIPPacket(splice, opTIP, 0x400100, &last)
		f.Add(splice)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := DecodeFast(data)
		if err != nil {
			return
		}
		for _, e := range evs {
			if e.Kind == KindTNT && (e.TNTCount < 1 || e.TNTCount > maxTNTBits) {
				t.Fatalf("TNT count %d out of range", e.TNTCount)
			}
			if e.Off < 0 || e.Off >= len(data) {
				t.Fatalf("event offset %d outside %d-byte stream", e.Off, len(data))
			}
		}
		// A stream that decoded cleanly must also full-scan in parallel
		// mode to the same events.
		pevs, perr := DecodeFastParallel(data, 2)
		if perr != nil || len(pevs) != len(evs) {
			t.Fatalf("parallel decode disagreed: %v (%d vs %d events)", perr, len(pevs), len(evs))
		}
	})
}

// FuzzWindowDecoder cross-checks the incremental decoder against the
// batch path over arbitrary PSB-prefixed bytes: chunked feeding must
// never panic, and when both paths accept the stream they must agree on
// every TIP record (including the OVF-resync Resync flags).
func FuzzWindowDecoder(f *testing.F) {
	f.Add([]byte{}, 3)
	f.Add(mustTNT(f, 0b11, 2), 1)
	{
		var last uint64
		s := appendIPPacket(nil, opTIP, 0x400000, &last)
		s = append(s, 0x02, extOVF)
		s = appendPSB(s)
		s = appendIPPacket(s, opTIP, 0x400100, &last)
		f.Add(s, 2)
	}
	f.Fuzz(func(t *testing.T, body []byte, chunk int) {
		if chunk <= 0 {
			chunk = 1
		}
		if chunk > len(body)+1 {
			chunk = len(body) + 1
		}
		buf := append(appendPSB(nil), body...)
		d := NewWindowDecoder(0)
		feedErr := error(nil)
		for off := 0; off < len(buf) && feedErr == nil; off += chunk {
			end := off + chunk
			if end > len(buf) {
				end = len(buf)
			}
			feedErr = d.Feed(buf[off:end])
		}
		evs, batchErr := DecodeFast(buf)
		if feedErr != nil || batchErr != nil {
			return // either path may reject corrupt bytes; neither may panic
		}
		if d.Consumed() < len(buf) {
			return // trailing partial packet still in the carry
		}
		want := ExtractTIPs(evs)
		got := d.Tips()
		if len(got) == 0 && len(want) == 0 {
			return
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("incremental decode diverges from batch: %d vs %d records", len(got), len(want))
		}
	})
}
