package ipt

import (
	"reflect"
	"testing"
)

func mustTNT(t *testing.F, bits uint8, n int) []byte {
	t.Helper()
	b, err := appendTNT(nil, bits, n)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// FuzzDecodeFast drives the packet-grammar scanner with arbitrary bytes:
// it must never panic, and whatever events it accepts must carry sane
// field values. (Run with `go test -fuzz FuzzDecodeFast` for a real
// campaign; the seed corpus doubles as a regression suite.)
func FuzzDecodeFast(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})
	f.Add(appendPSB(nil))
	f.Add(mustTNT(f, 0b101, 3))
	f.Add(appendPIP(nil, 0x1234))
	var last uint64
	f.Add(appendIPPacket(nil, opTIP, 0x400000, &last))
	f.Add([]byte{0x02, 0xF3})                                      // OVF
	f.Add([]byte{0x02, 0x99})                                      // truncated MODE packet
	f.Add([]byte{0x02, 0x55})                                      // unknown extended opcode
	f.Add([]byte{0xFF})                                            // unknown TIP-family header
	f.Add(appendMODE(nil, 1))                                      // context-switch MODE marker
	f.Add(append(appendPIP(nil, 0x77<<12), appendMODE(nil, 1)...)) // switch marker pair

	// Fault-shaped seeds: the corruption classes the chaos harness
	// injects (internal/faults).
	{
		// OVF spliced into the middle of a TIP packet's IP payload.
		last = 0
		tip := appendIPPacket(nil, opTIP, 0xdeadbeefcafe, &last)
		mid := len(tip) / 2
		ovfMidTIP := append(append(append([]byte{}, tip[:mid]...), 0x02, extOVF), tip[mid:]...)
		f.Add(ovfMidTIP)
	}
	f.Add(appendPSB(nil)[:7]) // truncated PSB
	{
		// Wrap splice: the tail of a cut TIP payload, then a PSB and
		// clean packets — the byte pattern after a ToPA wrap.
		last = 0
		cut := appendIPPacket(nil, opTIP, 0x123456789abc, &last)
		splice := append(append([]byte{}, cut[3:]...), appendPSB(nil)...)
		splice = appendIPPacket(splice, opTIP, 0x400100, &last)
		f.Add(splice)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := DecodeFast(data)
		if err != nil {
			return
		}
		for _, e := range evs {
			if e.Kind == KindTNT && (e.TNTCount < 1 || e.TNTCount > maxTNTBits) {
				t.Fatalf("TNT count %d out of range", e.TNTCount)
			}
			if e.Off < 0 || e.Off >= len(data) {
				t.Fatalf("event offset %d outside %d-byte stream", e.Off, len(data))
			}
		}
		// A stream that decoded cleanly must also full-scan in parallel
		// mode to the same events.
		pevs, perr := DecodeFastParallel(data, 2)
		if perr != nil || len(pevs) != len(evs) {
			t.Fatalf("parallel decode disagreed: %v (%d vs %d events)", perr, len(pevs), len(evs))
		}
	})
}

// FuzzWindowDecoder cross-checks the incremental decoder against the
// batch path over arbitrary PSB-prefixed bytes: chunked feeding must
// never panic, and when both paths accept the stream they must agree on
// every TIP record (including the OVF-resync Resync flags).
func FuzzWindowDecoder(f *testing.F) {
	f.Add([]byte{}, 3)
	f.Add(mustTNT(f, 0b11, 2), 1)
	{
		var last uint64
		s := appendIPPacket(nil, opTIP, 0x400000, &last)
		s = append(s, 0x02, extOVF)
		s = appendPSB(s)
		s = appendIPPacket(s, opTIP, 0x400100, &last)
		f.Add(s, 2)
	}
	{
		// IP-byte compression rollover: a full-width IP establishes
		// last-IP, then 2-byte-compressed TIPs move the low 16 bits
		// downward (the reconstruction must keep the upper bits rather
		// than borrow), with chunk sizes that split the 3-byte packets
		// mid-payload — the seam shape AppendSince hands the decoder
		// when a packet straddles a ToPA region boundary.
		var last uint64
		s := appendIPPacket(nil, opTIP, 0x4afffe, &last)
		s = appendIPPacket(s, opTIP, 0x4a0002, &last) // ipb=1, low bytes wrap down
		s = appendIPPacket(s, opTIP, 0x4aff00, &last) // ipb=1, back up
		f.Add(s, 2)
		f.Add(s, 5)
	}
	{
		// Context-switch marker at a region seam: the bare PIP+MODE pair
		// the multicore kernel module writes between slices, with chunk
		// sizes that cut the marker after the escape prefix, mid-CR3
		// payload, and between the PIP and its MODE — plus a marker cut
		// short by end-of-stream (a slice-boundary truncation fault).
		s := appendPSB(nil)
		var last uint64
		s = appendIPPacket(s, opTIP, 0x400000, &last)
		s = appendPIP(s, 0x77<<12)
		s = appendMODE(s, 1)
		s = appendIPPacket(s, opTIP, 0x400100, &last)
		f.Add(s, 1)
		f.Add(s, 3)
		f.Add(s, 7)
		f.Add(append(appendPSB(nil), appendPIP(nil, 0x55<<12)[:6]...), 2)
	}
	{
		// 4-byte compression split mid-payload: the target changes bits
		// 16..31 as the low 16 roll over.
		var last uint64
		s := appendIPPacket(nil, opTIP, 0x4afffe, &last)
		s = appendIPPacket(s, opTIP, 0x4b0001, &last) // ipb=2
		s = appendIPPacket(s, opTIP, 0x4afffc, &last) // ipb=2 back down
		f.Add(s, 3)
	}
	{
		// Every extended-opcode escape back to back: the DFA's pcExt
		// entry covers only the 0x02 prefix, so the second-byte dispatch
		// and its length handling (PSBEND 2, PIP 10, OVF 2) must survive
		// chunk seams that split each escape after its prefix byte.
		s := []byte{0x02, extPSBEND}
		s = appendPIP(s, 0xdead0000beef)
		s = append(s, 0x02, extOVF)
		s = appendPSB(s)
		f.Add(s, 1)
		f.Add(s, 3)
	}
	{
		// A TNT run long enough that the word-at-a-time probe both enters
		// (below TNTRunCap) and re-enters (above it, count-only) batching,
		// with chunk sizes of 7 and 9 so the uint64 probe window never
		// aligns with the feed seams: the incremental scan must fold the
		// same signature the batch scan does across every split.
		var last uint64
		s := appendIPPacket(nil, opTIP, 0x400000, &last)
		for i := 0; i < 24; i++ {
			s = append(s, 0b1<<3|0b101<<1) // 3-outcome TNT bytes, 72 total
		}
		s = appendIPPacket(s, opTIP, 0x400040, &last)
		f.Add(s, 7)
		f.Add(s, 9)
	}
	{
		// Short run that crosses exactly one probe boundary (9 one-outcome
		// bytes): stays under TNTRunCap, so the folded signature — not the
		// wildcard — must match across the word-batched path.
		var last uint64
		s := appendIPPacket(nil, opTIP, 0x400000, &last)
		for i := 0; i < 9; i++ {
			s = append(s, 0x06) // one taken outcome each
		}
		s = appendIPPacket(s, opTIP, 0x400040, &last)
		f.Add(s, 4)
		f.Add(s, 8)
	}
	{
		// IP-compression rollover at a ToPA region seam while a TNT word
		// run is in flight: PAD fill (zero words) precedes the region
		// boundary, then compressed TIPs continue against the carried
		// last-IP.
		var last uint64
		s := appendIPPacket(nil, opTIP, 0x4afffe, &last)
		for i := 0; i < 8; i++ {
			s = append(s, 0xfe) // 6-outcome TNT bytes: one full probe word
		}
		s = append(s, make([]byte, 16)...) // PAD to the region edge
		s = appendIPPacket(s, opTIP, 0x4b0002, &last)
		f.Add(s, 5)
		f.Add(s, 16)
	}
	f.Fuzz(func(t *testing.T, body []byte, chunk int) {
		if chunk <= 0 {
			chunk = 1
		}
		if chunk > len(body)+1 {
			chunk = len(body) + 1
		}
		buf := append(appendPSB(nil), body...)
		d := NewWindowDecoder(0)
		feedErr := error(nil)
		for off := 0; off < len(buf) && feedErr == nil; off += chunk {
			end := off + chunk
			if end > len(buf) {
				end = len(buf)
			}
			feedErr = d.Feed(buf[off:end])
		}
		evs, batchErr := DecodeFast(buf)
		if feedErr != nil || batchErr != nil {
			return // either path may reject corrupt bytes; neither may panic
		}
		if d.Consumed() < len(buf) {
			return // trailing partial packet still in the carry
		}
		want := ExtractTIPs(evs)
		got := d.Tips()
		if len(got) == 0 && len(want) == 0 {
			return
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("incremental decode diverges from batch: %d vs %d records", len(got), len(want))
		}
	})
}

// FuzzTNTAnnotations drives TNT-annotation extraction with generated
// TNT/TIP scripts: the TNT signature and length attached to every TIP
// record must equal an independently folded ground truth, in both the
// batch and the incremental decoder.
func FuzzTNTAnnotations(f *testing.F) {
	f.Add([]byte{}, 3)
	f.Add([]byte{0b101<<3 | 1, 0x00, 0b11<<3 | 2}, 1)
	f.Add([]byte{0x00, 0x00, 0x00}, 2)
	{
		// A run past TNTRunCap followed by a TIP: the wildcard case.
		long := make([]byte, 8)
		for i := range long {
			long[i] = 0b10101<<3 | 5
		}
		f.Add(append(long, 0x00), 4)
	}

	f.Fuzz(func(t *testing.T, script []byte, chunk int) {
		if chunk <= 0 {
			chunk = 1
		}
		buf := appendPSB(nil)
		var last uint64
		ip := uint64(0x400000)
		var run []bool
		type truth struct {
			sig uint64
			n   int
		}
		var want []truth
		flush := func() {
			sig, n := TNTSigEmpty, len(run)
			if n > TNTRunCap {
				sig = TNTSigLongRun
			} else {
				for _, taken := range run {
					sig = TNTSigAppend(sig, taken)
				}
			}
			want = append(want, truth{sig, n})
			run = run[:0]
		}
		for _, b := range script {
			if b&0x07 == 0 {
				ip += 0x40 + uint64(b>>3)
				buf = appendIPPacket(buf, opTIP, ip, &last)
				flush()
				continue
			}
			n := 1 + int(b&0x07)%maxTNTBits
			bits := b >> 3
			var err error
			if buf, err = appendTNT(buf, bits, n); err != nil {
				t.Fatalf("appendTNT(%#x, %d): %v", bits, n, err)
			}
			for i := 0; i < n; i++ {
				run = append(run, bits>>i&1 == 1)
			}
		}

		evs, err := DecodeFast(buf)
		if err != nil {
			t.Fatalf("generated stream rejected: %v", err)
		}
		recs := ExtractTIPs(evs)
		if len(recs) != len(want) {
			t.Fatalf("%d TIP records, want %d", len(recs), len(want))
		}
		for i, r := range recs {
			if r.TNTSig != want[i].sig || int(r.TNTLen) != want[i].n {
				t.Fatalf("record %d: sig %#x len %d, want %#x len %d",
					i, r.TNTSig, r.TNTLen, want[i].sig, want[i].n)
			}
		}

		// The incremental decoder must annotate identically under any
		// chunking.
		d := NewWindowDecoder(0)
		for off := 0; off < len(buf); off += chunk {
			end := off + chunk
			if end > len(buf) {
				end = len(buf)
			}
			if err := d.Feed(buf[off:end]); err != nil {
				t.Fatalf("incremental feed rejected generated stream: %v", err)
			}
		}
		if got := d.Tips(); !reflect.DeepEqual(got, recs) {
			t.Fatalf("incremental TNT annotations diverge from batch (%d vs %d records)", len(got), len(recs))
		}
	})
}

// TestIPCompressionRolloverAcrossRegions is the regression test for the
// fuzz-corpus gap where a 2-byte-compressed TIP payload straddles a ToPA
// region boundary while the low 16 bits of the IP roll downward: the
// incremental decoder fed AppendSince slices across the seam must
// reconstruct the same absolute IPs as a batch decode of the stitched
// snapshot.
func TestIPCompressionRolloverAcrossRegions(t *testing.T) {
	const region = 32
	topa := NewToPA(region, region)

	var raw []byte
	raw = appendPSB(raw) // 16 bytes
	var last uint64
	raw = appendIPPacket(raw, opTIP, 0x7ffffa, &last) // ipb=2, 5 bytes -> 21
	raw = append(raw, make([]byte, 7)...)             // PAD to 28
	raw = appendIPPacket(raw, opTIP, 0x7ffffe, &last) // ipb=1, 3 bytes -> 31
	// Header at 31, payload at 32/33: the payload bytes land in the
	// second region while the low 16 bits wrap downward.
	raw = appendIPPacket(raw, opTIP, 0x7f0004, &last)
	raw = appendIPPacket(raw, opTIP, 0x7fff02, &last) // and back up
	if len(raw) <= region || len(raw) > 2*region {
		t.Fatalf("stream is %d bytes; want one region < len <= two regions", len(raw))
	}
	if hdr := raw[31] &^ (3 << 5); hdr != opTIP {
		t.Fatalf("byte 31 is %#x, want a TIP header straddling the region seam", raw[31])
	}

	// Feed the decoder exactly as the guard does: AppendSince deltas
	// after every burst of writes, with a burst boundary mid-payload.
	d := NewWindowDecoder(0)
	var consumed uint64
	var carry []byte
	prev := 0
	for _, cut := range []int{19, 33, len(raw)} {
		topa.Write(raw[prev:cut])
		prev = cut
		nb, ok := topa.AppendSince(carry[:0], consumed)
		if !ok {
			t.Fatalf("AppendSince failed at cut %d", cut)
		}
		consumed += uint64(len(nb))
		if err := d.Feed(nb); err != nil {
			t.Fatalf("incremental feed at cut %d: %v", cut, err)
		}
	}

	evs, err := DecodeFast(topa.Snapshot())
	if err != nil {
		t.Fatalf("batch decode: %v", err)
	}
	batch := ExtractTIPs(evs)
	want := []uint64{0x7ffffa, 0x7ffffe, 0x7f0004, 0x7fff02}
	if len(batch) != len(want) {
		t.Fatalf("batch extracted %d records, want %d", len(batch), len(want))
	}
	for i, r := range batch {
		if r.IP != want[i] {
			t.Fatalf("batch record %d IP %#x, want %#x (compression rollover mis-merged)", i, r.IP, want[i])
		}
	}
	if got := d.Tips(); !reflect.DeepEqual(got, batch) {
		t.Fatalf("incremental decode across the region seam diverges from batch:\n got  %+v\n want %+v", got, batch)
	}
}
