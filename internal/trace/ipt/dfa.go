package ipt

import (
	"encoding/binary"
	"math/bits"
)

// Packet-length DFA (§5.3 fast path): the per-byte dispatch of the
// packet-grammar scanners is folded into a single 256-entry table mapping
// a header byte to its packet class and total encoded length. The
// scanners index the table once per packet instead of walking an if/else
// ladder per byte, which removes the data-dependent branches the
// hardware-speed scan cannot afford; only the rare 0x02 prefix escapes to
// a second dispatch on the extended opcode.
//
// Each entry packs, little end first:
//
//	bits 0..4   total packet length in bytes (header + payload)
//	bits 5..7   packet class (pc* constants)
//	bits 8..15  class-specific auxiliary value:
//	              pcTNT: the number of payload outcome bits
//	              pcTIP/pcTIPRec: the Kind discriminator of the family member
//
// The table is a pure function of the packet grammar in packets.go and is
// built once at init; both the batch scanner (decode.go) and the
// incremental WindowDecoder (stream.go) dispatch through it.

// Packet classes of the DFA. TIP proper gets a class of its own
// (pcTIPRec) distinct from the rest of its family: it is the only packet
// that emits a checked record, and record-bearing windows are TIP-dense,
// so the incremental scanner wants to reach the emit path on the class
// test alone without re-discriminating the Kind per packet.
const (
	pcBad    uint16 = iota << 5 // no packet starts with this byte
	pcPAD                       // 0x00 padding
	pcTNT                       // short TNT, outcome bits in the header byte
	pcTIP                       // TIP.PGE, TIP.PGD, FUP: last-IP update only
	pcExt                       // 0x02 extended-opcode escape
	pcTIPRec                    // TIP proper: updates last-IP and emits a record
)

const (
	pcLenMask   = 0x1f // bits 0..4: total packet length
	pcClassMask = 0xe0 // bits 5..7: packet class
)

// pktTab is the 256-entry header-byte DFA.
var pktTab [256]uint16

// TIP-family register dispatch: every odd header byte is TIP-family or
// invalid, and the family is the dense class of a record-bearing window,
// so the incremental scanner resolves it without touching pktTab — the
// advance of the scan position must not wait out a load-use latency per
// packet. Both constants are pure functions of the packet grammar;
// TestDFATableMatchesGrammar pins them against the table.
const (
	// tipOpSet has bit op set for each valid TIP-family low-5-bit opcode.
	tipOpSet uint32 = 1<<opTIP | 1<<opTIPPGE | 1<<opTIPPGD | 1<<opFUP
	// ipLenNibbles packs ipPayloadLen(ipb) for ipb 0..7, one nibble each:
	// payload length = ipLenNibbles >> (ipb*4) & 0xf.
	ipLenNibbles uint32 = 0x88888420
)

func init() {
	for b := 0; b < 256; b++ {
		pktTab[b] = classifyHeader(byte(b))
	}
}

// classifyHeader derives one DFA entry from the packet grammar; it must
// agree byte-for-byte with the dispatch rules the scanners used to
// implement inline (TestDFATableMatchesGrammar pins that).
func classifyHeader(b byte) uint16 {
	switch {
	case b == 0x00:
		return pcPAD | 1
	case b == 0x02:
		// Extended escape: real length depends on the second byte.
		return pcExt | 2
	case b&1 == 0:
		n := bits.Len8(b) - 2
		if n < 1 || n > maxTNTBits {
			return pcBad
		}
		return pcTNT | 1 | uint16(n)<<8
	default:
		class := pcTIP
		var kind Kind
		switch b & 0x1f {
		case opTIP:
			kind, class = KindTIP, pcTIPRec
		case opTIPPGE:
			kind = KindTIPPGE
		case opTIPPGD:
			kind = KindTIPPGD
		case opFUP:
			kind = KindFUP
		default:
			return pcBad
		}
		return class | uint16(1+ipPayloadLen(b>>5)) | uint16(kind)<<8
	}
}

// Word-at-a-time probes: the scanners load 8 stream bytes as one uint64
// and classify the whole word with branch-free bit tricks, so PAD gaps
// and long TNT runs cost one probe per 8 bytes instead of one dispatch
// per byte.

const (
	wordLSBs = 0x0101010101010101 // bit 0 of every byte
	wordMSBs = 0x8080808080808080 // bit 7 of every byte
	wordTNT  = 0xfcfcfcfcfcfcfcfc // bits 2..7 of every byte
)

// leUint64 loads 8 little-endian stream bytes as one probe word.
//
//fg:hotpath
func leUint64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// isTNTWord reports whether all 8 bytes of w are short-TNT headers: bit 0
// clear (even) and at least one bit above bit 1 set (the stop bit of a
// 1..6-outcome payload). Any byte failing either test — PAD, the 0x02
// escape, or a TIP-family header — rejects the word.
//
//fg:hotpath
func isTNTWord(w uint64) bool {
	if w&wordLSBs != 0 {
		return false // some byte is odd: TIP family
	}
	// Every byte needs a bit in 2..7; isolate those bits and reject if
	// any byte of the result is zero (the classic subtract/borrow probe).
	m := w & wordTNT
	return (m-wordLSBs)&^m&wordMSBs == 0
}

// tntWordBits sums the payload bit counts of a word of 8 short-TNT bytes
// (each byte carries bits.Len8(b)-2 outcomes below its stop bit).
//
//fg:hotpath
func tntWordBits(w uint64) int {
	n := 0
	for k := 0; k < 8; k++ {
		n += bits.Len8(byte(w>>(8*k))) - 2
	}
	return n
}
