package ipt

import (
	"errors"
	"testing"
	"testing/quick"

	"flowguard/internal/isa"
	"flowguard/internal/trace"
)

// TestIPCompressionRoundTrip: for any (lastIP, target) pair, the encoder
// and decoder agree.
func TestIPCompressionRoundTrip(t *testing.T) {
	f := func(lastIP, target uint64) bool {
		var buf []byte
		last := lastIP
		buf = appendIPPacket(buf, opTIP, target, &last)
		if last != target {
			return false
		}
		ipb := buf[0] >> 5
		got := ipReconstruct(ipb, buf[1:], lastIP)
		return got == target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestTNTByteRoundTrip: every (bits, count) combination survives.
func TestTNTByteRoundTrip(t *testing.T) {
	for n := 1; n <= maxTNTBits; n++ {
		for bits := 0; bits < 1<<n; bits++ {
			b, err := appendTNT(nil, uint8(bits), n)
			if err != nil {
				t.Fatalf("TNT(%d bits): %v", n, err)
			}
			if len(b) != 1 {
				t.Fatalf("TNT(%d bits) encoded to %d bytes", n, len(b))
			}
			if b[0]&1 != 0 {
				t.Fatalf("TNT byte %#02x has bit0 set", b[0])
			}
			evs, err := DecodeFast(b)
			if err != nil || len(evs) != 1 || evs[0].Kind != KindTNT {
				t.Fatalf("decode TNT: %v %v", evs, err)
			}
			if evs[0].TNTCount != n || evs[0].TNTBits != uint8(bits) {
				t.Fatalf("TNT(%#b,%d) decoded as (%#b,%d)", bits, n, evs[0].TNTBits, evs[0].TNTCount)
			}
		}
	}
}

// TestAppendTNTRejectsBadCount: counts outside [1, maxTNTBits] come back
// as a typed ErrMalformedTrace instead of a panic (regression: the
// encoder used to panic and could take the guard down with it).
func TestAppendTNTRejectsBadCount(t *testing.T) {
	for _, n := range []int{-1, 0, maxTNTBits + 1, 64} {
		dst := []byte{0x00}
		out, err := appendTNT(dst, 0, n)
		if err == nil {
			t.Fatalf("appendTNT accepted %d bits", n)
		}
		if !errors.Is(err, ErrMalformedTrace) {
			t.Fatalf("appendTNT(%d bits) error %v is not ErrMalformedTrace", n, err)
		}
		if len(out) != len(dst) {
			t.Fatalf("appendTNT(%d bits) wrote %d bytes despite error", n, len(out)-len(dst))
		}
	}
}

// TestEncodeDecodeBranchStreamProperty: random CoFI streams encoded by
// the tracer fast-decode back to the same TIP/TNT content.
func TestEncodeDecodeBranchStreamProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		tr := NewTracer(NewToPA(1 << 20))
		if err := tr.WriteMSR(MSRRTITCtl, CtlTraceEn|CtlBranchEn|CtlUser|CtlToPA); err != nil {
			return false
		}
		// Deterministic pseudo-random branch stream.
		state := uint64(seed)
		next := func() uint64 {
			state = state*6364136223846793005 + 1442695040888963407
			return state
		}
		var wantTIPs []uint64
		var wantBits []bool
		count := int(n%64) + 1
		for i := 0; i < count; i++ {
			src := 0x400000 + next()%0x10000&^7
			dst := 0x400000 + next()%0x10000&^7
			switch next() % 4 {
			case 0:
				tr.Branch(trace.Branch{Class: isa.CoFIDirect, Source: src, Target: dst, Taken: true})
			case 1:
				taken := next()%2 == 0
				tr.Branch(trace.Branch{Class: isa.CoFICond, Source: src, Target: dst, Taken: taken})
				wantBits = append(wantBits, taken)
			case 2:
				tr.Branch(trace.Branch{Class: isa.CoFIIndirect, Source: src, Target: dst, Taken: true})
				wantTIPs = append(wantTIPs, dst)
			case 3:
				tr.Branch(trace.Branch{Class: isa.CoFIRet, Source: src, Target: dst, Taken: true})
				wantTIPs = append(wantTIPs, dst)
			}
		}
		tr.Flush()
		evs, err := DecodeFast(tr.Out.Snapshot())
		if err != nil {
			return false
		}
		var gotTIPs []uint64
		var gotBits []bool
		for _, e := range evs {
			switch e.Kind {
			case KindTIP:
				gotTIPs = append(gotTIPs, e.IP)
			case KindTNT:
				for k := 0; k < e.TNTCount; k++ {
					gotBits = append(gotBits, e.TNTBits&(1<<k) != 0)
				}
			}
		}
		if len(gotTIPs) != len(wantTIPs) || len(gotBits) != len(wantBits) {
			return false
		}
		for i := range wantTIPs {
			if gotTIPs[i] != wantTIPs[i] {
				return false
			}
		}
		for i := range wantBits {
			if gotBits[i] != wantBits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSyncRejectsNonPSB and finds embedded PSBs.
func TestSync(t *testing.T) {
	junk := []byte{0x55, 0x66, 0x77}
	buf := append(append([]byte{}, junk...), appendPSB(nil)...)
	if got := Sync(buf, 0); got != len(junk) {
		t.Errorf("Sync = %d, want %d", got, len(junk))
	}
	if got := Sync(junk, 0); got != -1 {
		t.Errorf("Sync(junk) = %d, want -1", got)
	}
}

// TestDecodeFastRejectsGarbage: unknown extended opcodes are errors, not
// silent skips.
func TestDecodeFastRejectsGarbage(t *testing.T) {
	if _, err := DecodeFast([]byte{0x02, 0x55}); err == nil {
		t.Fatal("accepted unknown extended opcode")
	}
}

// TestDecodeFastToleratesTruncatedTail: a packet cut by the end of a
// circular buffer ends the scan cleanly.
func TestDecodeFastToleratesTruncatedTail(t *testing.T) {
	var last uint64
	full := appendIPPacket(nil, opTIP, 0xdeadbeefcafe, &last)
	evs, err := DecodeFast(full[:len(full)-2])
	if err != nil {
		t.Fatalf("truncated tail errored: %v", err)
	}
	if len(evs) != 0 {
		t.Fatalf("partial packet produced events: %v", evs)
	}
}

// TestPIPCarriesCR3 checks the context packet.
func TestPIPCarriesCR3(t *testing.T) {
	buf := appendPIP(nil, 0x123456789a)
	evs, err := DecodeFast(buf)
	if err != nil || len(evs) != 1 || evs[0].Kind != KindPIP {
		t.Fatalf("decode PIP: %v %v", evs, err)
	}
	if evs[0].CR3 != 0x123456789a {
		t.Errorf("CR3 = %#x", evs[0].CR3)
	}
}

// TestTNTSigProperties: order-sensitive, length-sensitive, deterministic.
func TestTNTSigProperties(t *testing.T) {
	tt := TNTSigAppend(TNTSigAppend(TNTSigEmpty, true), false)
	ft := TNTSigAppend(TNTSigAppend(TNTSigEmpty, false), true)
	if tt == ft {
		t.Error("signature is order-insensitive")
	}
	one := TNTSigAppend(TNTSigEmpty, true)
	if one == tt {
		t.Error("signature is length-insensitive")
	}
	if TNTSigAppend(TNTSigEmpty, true) != one {
		t.Error("signature not deterministic")
	}
}
