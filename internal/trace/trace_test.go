package trace_test

import (
	"testing"

	"flowguard/internal/isa"
	"flowguard/internal/trace"
)

func TestSinkFuncAndMultiSink(t *testing.T) {
	var a, b []uint64
	sa := trace.SinkFunc(func(br trace.Branch) { a = append(a, br.Source) })
	sb := trace.SinkFunc(func(br trace.Branch) { b = append(b, br.Target) })
	m := trace.MultiSink{sa, sb}
	m.Branch(trace.Branch{Class: isa.CoFIRet, Source: 1, Target: 2, Taken: true})
	m.Branch(trace.Branch{Class: isa.CoFIRet, Source: 3, Target: 4, Taken: true})
	if len(a) != 2 || a[0] != 1 || a[1] != 3 {
		t.Errorf("first sink saw %v", a)
	}
	if len(b) != 2 || b[0] != 2 || b[1] != 4 {
		t.Errorf("second sink saw %v", b)
	}
}

func TestNestedMultiSink(t *testing.T) {
	n := 0
	leaf := trace.SinkFunc(func(trace.Branch) { n++ })
	nested := trace.MultiSink{trace.MultiSink{leaf, leaf}, leaf}
	nested.Branch(trace.Branch{})
	if n != 3 {
		t.Errorf("nested fan-out reached %d sinks, want 3", n)
	}
}
