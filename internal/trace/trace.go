// Package trace defines the hardware-neutral branch-event types shared by
// the three tracing mechanisms the paper compares (BTS, LBR, IPT) and the
// CPU emulator that feeds them.
//
// The CPU reports every retired change-of-flow instruction (CoFI) as a
// Branch event; each tracing mechanism consumes the stream with its own
// filtering, storage format and cost model (paper §2, Table 1).
package trace

import "flowguard/internal/isa"

// Branch is one retired change-of-flow event.
type Branch struct {
	// Class is the CoFI classification (direct, conditional, indirect,
	// return, far transfer).
	Class isa.CoFIClass
	// Source is the address of the branch instruction.
	Source uint64
	// Target is the address control flow transferred to. For a
	// not-taken conditional branch this is the fall-through address; for
	// a far transfer it is the user-space resume address.
	Target uint64
	// Taken reports the direction of a conditional branch; true for all
	// other classes.
	Taken bool
}

// Sink consumes retired branch events. Implementations must be cheap:
// they run inline with instruction emulation, playing the role of the
// trace hardware.
type Sink interface {
	Branch(b Branch)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Branch)

// Branch implements Sink.
func (f SinkFunc) Branch(b Branch) { f(b) }

// MultiSink fans one branch stream out to several sinks (e.g. IPT plus a
// coverage recorder during fuzzing).
type MultiSink []Sink

// Branch implements Sink.
func (m MultiSink) Branch(b Branch) {
	for _, s := range m {
		s.Branch(b)
	}
}

// CycleMeter is implemented by components that charge work to the
// calibrated cycle model used for overhead accounting (see
// EXPERIMENTS.md for the constants).
type CycleMeter interface {
	// Cycles returns the cycles charged so far.
	Cycles() uint64
	// ResetCycles zeroes the meter.
	ResetCycles()
}
