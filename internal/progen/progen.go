// Package progen generates random — but well-formed and terminating —
// multi-module programs for property-based testing of the analysis
// pipeline: any program it emits must run to completion, every edge it
// executes must be contained in the conservative O-CFG, every pair of
// consecutive TIP packets must be an ITC-CFG edge, and the full decoder
// must reconstruct its exact branch stream.
//
// Termination is guaranteed by construction: loops are counted down from
// bounded constants, direct and indirect calls only target functions
// with strictly larger indices (a DAG), and tail calls follow the same
// order.
package progen

import (
	"fmt"
	"math/rand"

	"flowguard/internal/asm"
	"flowguard/internal/isa"
	"flowguard/internal/module"
)

// Config sizes the generated program.
type Config struct {
	Seed int64
	// ExecFuncs / LibFuncs are the function counts of the executable
	// and the generated library.
	ExecFuncs, LibFuncs int
	// MaxLoop bounds loop trip counts.
	MaxLoop int
	// CallFanout bounds how many calls one function may make.
	CallFanout int
}

// DefaultConfig returns a moderate program size.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, ExecFuncs: 12, LibFuncs: 8, MaxLoop: 6, CallFanout: 3}
}

// Program is a generated executable with its library.
type Program struct {
	Exec *module.Module
	Libs map[string]*module.Module
}

// Load maps the program into an address space.
func (p *Program) Load() (*module.AddressSpace, error) {
	return module.Load(p.Exec, p.Libs, nil)
}

// scratch registers available to generated code (arg registers R0..R2
// are reserved for call argument passing, SP/FP for the frames).
var scratch = []isa.Reg{isa.R6, isa.R8, isa.R9, isa.R10, isa.R11, isa.R13}

// Generate emits a random program.
func Generate(cfg Config) (*Program, error) {
	if cfg.ExecFuncs < 2 || cfg.LibFuncs < 2 {
		return nil, fmt.Errorf("progen: need at least 2 functions per module")
	}
	if cfg.MaxLoop <= 0 {
		cfg.MaxLoop = 4
	}
	if cfg.CallFanout <= 0 {
		cfg.CallFanout = 2
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	libNames := make([]string, cfg.LibFuncs)
	libArity := make([]int, cfg.LibFuncs)
	for i := range libNames {
		libNames[i] = fmt.Sprintf("g%02d", i)
		libArity[i] = r.Intn(3)
	}
	lib := asm.NewModule("librand")
	lib.FuncTable("ltbl", libNames, true)
	for i := range libNames {
		g := gen{r: r, cfg: cfg}
		g.emitFunc(lib, libNames[i], libArity[i], true,
			libNames[i+1:], libArity[i+1:], nil, nil, "ltbl", len(libNames))
	}
	libm, err := lib.Assemble()
	if err != nil {
		return nil, err
	}

	execNames := make([]string, cfg.ExecFuncs)
	execArity := make([]int, cfg.ExecFuncs)
	for i := range execNames {
		execNames[i] = fmt.Sprintf("f%02d", i)
		execArity[i] = r.Intn(3)
	}
	exec := asm.NewModule("randprog").Needs("librand")
	exec.FuncTable("etbl", execNames, false)
	exec.DataSpace("outbuf", 32, false)
	main := exec.Func("main", 0, true)
	exec.SetEntry("main")
	main.Prologue(64)
	// main drives a handful of calls into the function population,
	// reporting progress through write syscalls (guarded endpoints when
	// the program runs under protection).
	for k := 0; k < 3+r.Intn(4); k++ {
		i := r.Intn(cfg.ExecFuncs)
		setArgs(main, r, execArity[i])
		main.Call(execNames[i])
		if r.Intn(2) == 0 {
			emitWrite(main)
		}
	}
	// And one library call through the PLT.
	li := r.Intn(cfg.LibFuncs)
	setArgs(main, r, libArity[li])
	main.Call(libNames[li])
	emitWrite(main)
	main.Halt()

	for i := range execNames {
		g := gen{r: r, cfg: cfg}
		g.emitFunc(exec, execNames[i], execArity[i], false,
			execNames[i+1:], execArity[i+1:], libNames, libArity, "etbl", len(execNames))
	}
	execm, err := exec.Assemble()
	if err != nil {
		return nil, err
	}
	return &Program{Exec: execm, Libs: map[string]*module.Module{"librand": libm}}, nil
}

// emitWrite stores the accumulator and issues write(1, outbuf, 8).
func emitWrite(f *asm.Func) {
	f.AddrOf(isa.R1, "outbuf")
	f.St(isa.R1, 0, isa.R0)
	f.Movi(isa.R2, 8)
	f.Movu64(isa.R7, 1) // SysWrite
	f.Movi(isa.R0, 1)
	f.Syscall()
}

func setArgs(f *asm.Func, r *rand.Rand, arity int) {
	for a := 0; a < arity; a++ {
		f.Movi(isa.Reg(a), int32(r.Intn(100)+1))
	}
}

// gen emits one function body.
type gen struct {
	r      *rand.Rand
	cfg    Config
	labels int
}

func (g *gen) label() string {
	g.labels++
	return fmt.Sprintf("L%d", g.labels)
}

// emitFunc writes a random function. laterNames/laterArity are the
// callable successors within the same module; libNames/libArity the
// importable ones (executable only). tbl is the module's dispatch table
// (only entries with index > own position are indirect-call targets, to
// preserve the DAG).
func (g *gen) emitFunc(b *asm.Builder, name string, arity int, inLib bool,
	laterNames []string, laterArity []int, libNames []string, libArity []int,
	tbl string, tblLen int) {

	f := b.Func(name, arity, inLib)
	f.Prologue(32)
	r := g.r

	// Touch the declared arguments so the liveness analysis sees them.
	acc := isa.R6
	f.Movi(acc, int32(r.Intn(50)))
	for a := 0; a < arity; a++ {
		f.Add(acc, isa.Reg(a))
	}

	stmts := 2 + r.Intn(5)
	calls := 0
	for s := 0; s < stmts; s++ {
		switch r.Intn(7) {
		case 0: // arithmetic run
			for i := 0; i < 1+r.Intn(4); i++ {
				reg := scratch[r.Intn(len(scratch))]
				f.Movi(reg, int32(r.Intn(1000)+1))
				switch r.Intn(4) {
				case 0:
					f.Add(acc, reg)
				case 1:
					f.Xor(acc, reg)
				case 2:
					f.Mul(acc, reg)
				case 3:
					f.Sub(acc, reg)
				}
			}
		case 1: // bounded countdown loop
			cnt := isa.R11
			top := g.label()
			f.Movi(cnt, int32(1+r.Intn(g.cfg.MaxLoop)))
			f.Label(top)
			f.Addi(acc, int32(r.Intn(17)+1))
			f.Addi(cnt, -1)
			f.Cmpi(cnt, 0)
			f.Jcc(isa.GT, top)
		case 2: // forward conditional skip
			skip := g.label()
			f.Cmpi(acc, int32(r.Intn(2000)))
			f.Jcc([]isa.Cond{isa.LT, isa.GE, isa.EQ, isa.NE}[r.Intn(4)], skip)
			f.Movi(isa.R9, int32(r.Intn(90)))
			f.Add(acc, isa.R9)
			f.Label(skip)
		case 3: // direct call down the DAG
			if calls >= g.cfg.CallFanout || len(laterNames) == 0 {
				continue
			}
			calls++
			j := r.Intn(len(laterNames))
			f.St(isa.FP, -8, acc)
			setArgs(f, r, laterArity[j])
			f.Call(laterNames[j])
			f.Ld(acc, isa.FP, -8)
			f.Xor(acc, isa.R0)
		case 4: // indirect call through the dispatch table (DAG-safe)
			if calls >= g.cfg.CallFanout {
				continue
			}
			ownIdx := tblLen - len(laterNames) - 1
			if ownIdx+1 >= tblLen {
				continue
			}
			calls++
			j := ownIdx + 1 + r.Intn(tblLen-ownIdx-1)
			var jar int
			if j-ownIdx-1 < len(laterArity) {
				jar = laterArity[j-ownIdx-1]
			}
			f.St(isa.FP, -8, acc)
			f.AddrOf(isa.R10, tbl)
			f.Ld(isa.R10, isa.R10, int32(8*j))
			setArgs(f, r, jar)
			f.CallR(isa.R10)
			f.Ld(acc, isa.FP, -8)
			f.Add(acc, isa.R0)
		case 5: // PLT call into the library (executable only)
			if inLib || calls >= g.cfg.CallFanout || len(libNames) == 0 {
				continue
			}
			calls++
			j := r.Intn(len(libNames))
			f.St(isa.FP, -8, acc)
			setArgs(f, r, libArity[j])
			f.Call(libNames[j])
			f.Ld(acc, isa.FP, -8)
			f.Xor(acc, isa.R0)
		case 6: // computed-goto switch over address-taken labels
			k := 2 + r.Intn(3)
			cases := make([]string, k)
			for i := range cases {
				cases[i] = g.label()
			}
			goLbl, endLbl := g.label(), g.label()
			f.Mov(isa.R8, acc)
			f.Movi(isa.R9, int32(k))
			f.Mod(isa.R8, isa.R9)
			for i := 0; i < k-1; i++ {
				chk := g.label()
				f.Cmpi(isa.R8, int32(i))
				f.Jcc(isa.NE, chk)
				f.AddrOfLabel(isa.R10, cases[i])
				f.Jmp(goLbl)
				f.Label(chk)
			}
			f.AddrOfLabel(isa.R10, cases[k-1])
			f.Label(goLbl)
			f.JmpR(isa.R10)
			for i := 0; i < k; i++ {
				f.Label(cases[i])
				f.Addi(acc, int32(r.Intn(500)+i*7+1))
				if i < k-1 {
					f.Jmp(endLbl)
				}
			}
			f.Label(endLbl)
		}
	}

	// Terminator: mostly a normal return, occasionally a tail call down
	// the DAG.
	f.Mov(isa.R0, acc)
	if len(laterNames) > 0 && r.Intn(5) == 0 {
		j := r.Intn(len(laterNames))
		// A tail call reuses the frame: tear it down first, then jump.
		f.Mov(isa.SP, isa.FP)
		f.Pop(isa.FP)
		setArgs(f, r, laterArity[j])
		f.TailJmp(laterNames[j])
		return
	}
	f.Epilogue()
}
