package progen_test

import (
	"testing"

	"flowguard/internal/cfg"
	"flowguard/internal/guard"
	"flowguard/internal/isa"
	"flowguard/internal/itc"
	"flowguard/internal/kernelsim"
	"flowguard/internal/progen"
	"flowguard/internal/trace"
	"flowguard/internal/trace/ipt"
)

const ctlDefault = ipt.CtlTraceEn | ipt.CtlBranchEn | ipt.CtlUser | ipt.CtlToPA

// TestRandomProgramProperties is the pipeline-wide property suite: for
// many random programs,
//
//  1. the program terminates (generator invariant),
//  2. every executed edge is in the conservative O-CFG (§4.1: no false
//     positives),
//  3. every consecutive TIP pair is an ITC-CFG edge (§4.2 correctness),
//  4. the instruction-flow decoder reconstructs the exact branch stream,
//  5. training every observed edge succeeds (Observe never misses).
func TestRandomProgramProperties(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		cfgp := progen.DefaultConfig(seed)
		if seed%3 == 1 {
			cfgp.ExecFuncs, cfgp.LibFuncs = 20, 14
		}
		if seed%3 == 2 {
			cfgp.MaxLoop, cfgp.CallFanout = 10, 4
		}
		prog, err := progen.Generate(cfgp)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Programs issue write syscalls, so they run under the kernel.
		k := kernelsim.New()
		p, err := k.Spawn("randprog", prog.Exec, prog.Libs, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		as := p.AS
		g, err := cfg.Build(as)
		if err != nil {
			t.Fatalf("seed %d: cfg: %v", seed, err)
		}
		ig := itc.FromCFG(g)

		tr := ipt.NewTracer(ipt.NewToPA(16 << 20))
		if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlDefault); err != nil {
			t.Fatal(err)
		}
		var truth []trace.Branch
		bad := 0
		p.CPU.Branch = trace.MultiSink{
			tr,
			trace.SinkFunc(func(br trace.Branch) {
				truth = append(truth, br)
				if bad < 3 && !g.ContainsEdge(br.Source, br.Target, br.Class) {
					bad++
					t.Errorf("seed %d: executed edge not in O-CFG: %v %s -> %s",
						seed, br.Class, as.SymbolFor(br.Source), as.SymbolFor(br.Target))
				}
			}),
		}
		if st, err := k.Run(p, 5_000_000); err != nil || !st.Exited {
			t.Fatalf("seed %d: run: %v %v", seed, st, err)
		}
		tr.Flush()

		evs, err := ipt.DecodeFast(tr.Out.Snapshot())
		if err != nil {
			t.Fatalf("seed %d: fast decode: %v", seed, err)
		}
		tips := ipt.ExtractTIPs(evs)
		for i := 0; i+1 < len(tips); i++ {
			if !ig.HasEdge(tips[i].IP, tips[i+1].IP) {
				t.Errorf("seed %d: TIP pair not an ITC edge: %s -> %s",
					seed, as.SymbolFor(tips[i].IP), as.SymbolFor(tips[i+1].IP))
			}
			if !ig.Observe(tips[i].IP, tips[i+1].IP, tips[i+1].TNTSig) {
				t.Errorf("seed %d: Observe rejected an executed edge", seed)
			}
		}

		ft, err := ipt.DecodeFull(as, tr.Out.Snapshot(), 0)
		if err != nil {
			t.Fatalf("seed %d: full decode: %v", seed, err)
		}
		if len(ft.Flow) != len(truth) {
			t.Fatalf("seed %d: reconstructed %d branches, truth %d", seed, len(ft.Flow), len(truth))
		}
		for i := range truth {
			if ft.Flow[i] != truth[i] {
				t.Fatalf("seed %d: branch %d mismatch: %+v vs %+v", seed, i, ft.Flow[i], truth[i])
			}
		}
	}
}

// TestArityNeverOverestimated: the computed (liveness) arity must never
// exceed the declared ground truth, or indirect target sets could drop
// real targets.
func TestArityNeverOverestimated(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		prog, err := progen.Generate(progen.DefaultConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		as, err := prog.Load()
		if err != nil {
			t.Fatal(err)
		}
		g, err := cfg.Build(as)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range g.Funcs {
			if f.IsPLT {
				continue
			}
			if f.Arity > f.DeclaredArity && f.DeclaredArity >= 0 {
				t.Errorf("seed %d: %s computed arity %d > declared %d",
					seed, f.Name, f.Arity, f.DeclaredArity)
			}
		}
	}
}

// TestGenerateRejectsTinyConfigs covers the config validation.
func TestGenerateRejectsTinyConfigs(t *testing.T) {
	if _, err := progen.Generate(progen.Config{Seed: 1, ExecFuncs: 1, LibFuncs: 1}); err == nil {
		t.Fatal("Generate accepted a 1-function config")
	}
}

// TestDeterminism: the same seed yields bit-identical binaries.
func TestDeterminism(t *testing.T) {
	p1, err := progen.Generate(progen.DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := progen.Generate(progen.DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if string(p1.Exec.Code) != string(p2.Exec.Code) {
		t.Error("executable code differs between identical seeds")
	}
	if string(p1.Libs["librand"].Code) != string(p2.Libs["librand"].Code) {
		t.Error("library code differs between identical seeds")
	}
}

// TestProgramsContainCoFIMix: generated programs must exercise the whole
// Table 3 CoFI surface (except far transfers, which progen leaves to the
// app suite).
func TestProgramsContainCoFIMix(t *testing.T) {
	prog, err := progen.Generate(progen.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	k := kernelsim.New()
	p, err := k.Spawn("randprog", prog.Exec, prog.Libs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[isa.CoFIClass]int{}
	p.CPU.Branch = trace.SinkFunc(func(br trace.Branch) { seen[br.Class]++ })
	if st, err := k.Run(p, 5_000_000); err != nil || !st.Exited {
		t.Fatalf("run: %v %v", st, err)
	}
	for _, class := range []isa.CoFIClass{isa.CoFIDirect, isa.CoFICond,
		isa.CoFIIndirect, isa.CoFIRet, isa.CoFIFarTransfer} {
		if seen[class] == 0 {
			t.Errorf("no %v branches executed", class)
		}
	}
}

// TestProtectedRandomProgramsNeverFalseKilled is the end-to-end
// conservatism property: arbitrary generated programs run under full
// FlowGuard protection — analyzed but completely untrained, so every
// window is suspicious and slow-pathed — and must never be killed.
func TestProtectedRandomProgramsNeverFalseKilled(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(500); seed < 500+int64(seeds); seed++ {
		prog, err := progen.Generate(progen.DefaultConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		k := kernelsim.New()
		p, err := k.Spawn("randprog", prog.Exec, prog.Libs, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		g, err := cfg.Build(p.AS)
		if err != nil {
			t.Fatal(err)
		}
		ig := itc.FromCFG(g)
		km := guard.InstallModule(k)
		gd, err := km.Protect(p, g, ig, guard.DefaultPolicy())
		if err != nil {
			t.Fatal(err)
		}
		st, err := k.Run(p, 20_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Exited {
			t.Fatalf("seed %d: protected random program: %v (reports %v)", seed, st, km.Reports)
		}
		if len(km.Reports) != 0 {
			t.Fatalf("seed %d: false positives: %v", seed, km.Reports)
		}
		if gd.Stats.Checks == 0 {
			t.Fatalf("seed %d: no endpoint checks ran", seed)
		}
	}
}
