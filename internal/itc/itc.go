// Package itc implements the paper's central data structure: the
// indirect-targets-connected CFG (ITC-CFG, §4.2), plus the credit and TNT
// labeling that the fuzzing training phase attaches to its edges (§4.3)
// and the AIA metrics of Table 4.
//
// # Construction
//
// The O-CFG's direct edges are collapsed: the nodes of the ITC-CFG are
// the basic blocks targeted by at least one indirect edge (IT-BBs,
// identified by their entry address), and an edge x→y exists iff
// execution can flow from the entry of x through zero or more direct
// edges and then one indirect edge landing at the entry of y. That is
// exactly the condition under which IPT emits the consecutive packets
// TIP(x), TIP(y), so a TIP stream can be searched directly on this graph
// with no binary decoding (the correctness argument of §4.2).
//
// # Labeling
//
// Training replays traced executions and marks each observed edge with a
// high credit and the signature of the TNT run (conditional-branch
// outcomes) seen between the two TIPs. The TNT signatures restore the
// precision that collapsing direct conditional forks lost (the AIA
// derogation of Figure 4): an attacker constrained to high-credit edges
// with trained TNT runs faces roughly O-CFG-level AIA instead of the
// inflated ITC level.
package itc

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"flowguard/internal/cfg"
	"flowguard/internal/trace/ipt"
)

// edgeMeta carries the training labels of one edge.
type edgeMeta struct {
	// count is the number of times training observed the edge; >0 means
	// high credit under the paper's binary labeling.
	count uint32
	// sigs lists the distinct TNT-run signatures observed, sorted.
	sigs []uint64
}

// Graph is the credit-labeled ITC-CFG.
//
// Concurrency: the graph topology (nodes, succs) is immutable after
// construction. The training labels are mutable; RebuildCache publishes
// an immutable snapshot of them, after which Lookup, CacheLookup and
// PathTrained are lock-free — the checker-facing hot path never contends
// even with many guards checking in parallel (the §6 offloaded-checking
// shape). Any further Observe invalidates the snapshot and readers fall
// back to RLock-guarded access until the next RebuildCache, preserving
// the train-then-lookup-without-rebuild semantics.
type Graph struct {
	// nodes holds the IT-BB entry addresses, sorted ascending.
	// Immutable after construction.
	nodes []uint64
	// succs[i] holds the sorted target addresses of nodes[i]. Immutable
	// after construction.
	succs [][]uint64
	// meta[i][j] labels the edge nodes[i] -> succs[i][j]. Guarded by mu.
	meta [][]edgeMeta

	// Edges is the total edge count (|E| of Table 4).
	Edges int

	// mu guards meta, paths and the high* arrays. The hot read paths
	// take it only when snap is nil (labels changed since the last
	// RebuildCache).
	mu sync.RWMutex

	// snap is the immutable label snapshot read lock-free by the
	// checkers; nil whenever training has touched the labels since the
	// last RebuildCache.
	snap atomic.Pointer[labelSnap]

	// high is the separate high-credit cache §5.3 describes ("preserves
	// separate memory to store the source nodes and their targets
	// connected by edges with high credits"), in flat form. Rebuilt by
	// RebuildCache after training; read under mu when snap is nil.
	high *Flat

	// paths holds the trained consecutive-edge pairs for the optional
	// path-sensitive fast path (see paths.go).
	paths map[uint64]struct{}

	// labelGen counts label-snapshot publications (RebuildCache calls).
	// A rebuilt snapshot may relabel edges, so consumers caching
	// verdicts derived from the labels — the guard's approval cache —
	// key their validity on this generation and re-earn verdicts after
	// it advances.
	labelGen atomic.Uint64
}

// labelSnap is an immutable flat rendering of the training labels: the
// full labeled graph plus the high-credit subset. Immutable by
// construction — the flat arenas own their storage, so later Observe
// calls (which mutate meta in place) cannot reach them.
type labelSnap struct {
	full *Flat
	high *Flat
}

// FromCFG builds the unlabeled ITC-CFG from a conservative O-CFG by
// collapsing direct edges (§4.2).
func FromCFG(g *cfg.Graph) *Graph {
	// IT-BBs: every target of an indirect edge.
	nodeSet := make(map[uint64]bool)
	for _, b := range g.Blocks {
		for _, t := range b.IndTargets {
			nodeSet[t] = true
		}
	}
	nodes := make([]uint64, 0, len(nodeSet))
	for a := range nodeSet {
		nodes = append(nodes, a)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	out := &Graph{nodes: nodes, succs: make([][]uint64, len(nodes)), meta: make([][]edgeMeta, len(nodes))}
	// For each IT-BB, find every indirect edge reachable through direct
	// edges only. The per-node BFS instances are independent, so the
	// construction fans out across the CPUs (the paper amortizes its
	// seven-minute generation by caching library CFGs; we also simply
	// parallelize).
	workers := runtime.GOMAXPROCS(0)
	if workers > len(nodes) {
		workers = len(nodes)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	worker := func() {
		defer wg.Done()
		var queue []uint64
		for i := range next {
			visited := map[uint64]bool{}
			targets := map[uint64]bool{}
			queue = append(queue[:0], nodes[i])
			for len(queue) > 0 {
				addr := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				if visited[addr] {
					continue
				}
				visited[addr] = true
				blk, ok := g.BlockAt(addr)
				if !ok {
					continue
				}
				if blk.HasIndirectTerm() {
					for _, t := range blk.IndTargets {
						targets[t] = true
					}
					continue
				}
				queue = blk.DirectSuccs(queue)
			}
			ts := make([]uint64, 0, len(targets))
			for t := range targets {
				ts = append(ts, t)
			}
			sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
			out.succs[i] = ts
			out.meta[i] = make([]edgeMeta, len(ts))
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	for i := range nodes {
		next <- i
	}
	close(next)
	wg.Wait()
	for i := range out.succs {
		out.Edges += len(out.succs[i])
	}
	return out
}

// NumNodes returns |V| of Table 4.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Nodes returns the IT-BB entry addresses in ascending order.
func (g *Graph) Nodes() []uint64 { return g.nodes }

// searchU64 is sort.SearchInts for []uint64, inlined for the lookup hot
// path: sort.Search takes the predicate as a func value, which forces a
// closure allocation per call at the capture sites. The lookups below
// run per TIP pair per check, so they use this instead; training-time
// code (Observe) keeps sort.Search.
//
//fg:hotpath
func searchU64(a []uint64, x uint64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// nodeIndex binary-searches the sorted node array (§5.3).
//
//fg:hotpath
func (g *Graph) nodeIndex(addr uint64) (int, bool) {
	i := searchU64(g.nodes, addr)
	if i < len(g.nodes) && g.nodes[i] == addr {
		return i, true
	}
	return 0, false
}

// HasNode reports whether addr is an IT-BB entry.
func (g *Graph) HasNode(addr uint64) bool {
	_, ok := g.nodeIndex(addr)
	return ok
}

// edgeIndex locates dst in the sorted successor array of node i.
//
//fg:hotpath
func (g *Graph) edgeIndex(i int, dst uint64) (int, bool) {
	ts := g.succs[i]
	j := searchU64(ts, dst)
	if j < len(ts) && ts[j] == dst {
		return j, true
	}
	return 0, false
}

// HasEdge reports whether the ITC-CFG contains src -> dst: the fast
// path's first check (two binary searches, §5.3).
func (g *Graph) HasEdge(src, dst uint64) bool {
	i, ok := g.nodeIndex(src)
	if !ok {
		return false
	}
	_, ok = g.edgeIndex(i, dst)
	return ok
}

// EdgeLabel describes the training labels of one edge for the fast
// path's credibility assessment.
type EdgeLabel struct {
	// Exists reports graph membership.
	Exists bool
	// HighCredit reports the edge was observed during training.
	HighCredit bool
	// SigMatch reports the presented TNT-run signature was observed on
	// this edge during training (meaningful only when HighCredit).
	SigMatch bool
	// Count is the number of training observations.
	Count uint32
}

// Lookup performs the full fast-path edge check: membership, credit, and
// TNT-signature match. After RebuildCache it is lock-free (and stays so
// until labels change again); otherwise it takes a read lock.
//
//fg:hotpath per-TIP-pair on every check
func (g *Graph) Lookup(src, dst uint64, sig uint64) EdgeLabel {
	if s := g.snap.Load(); s != nil {
		return s.full.Lookup(src, dst, sig)
	}
	i, ok := g.nodeIndex(src)
	if !ok {
		return EdgeLabel{}
	}
	j, ok := g.edgeIndex(i, dst)
	if !ok {
		return EdgeLabel{}
	}
	g.mu.RLock()
	m := &g.meta[i][j]
	l := EdgeLabel{Exists: true, HighCredit: m.count > 0, Count: m.count}
	if l.HighCredit {
		l.SigMatch = sigMatches(m.sigs, sig)
	}
	g.mu.RUnlock()
	return l
}

// Observe marks the edge as trained with the given TNT-run signature,
// incrementing its occurrence count. It reports whether the edge exists
// in the graph (an observation outside the graph would mean the
// conservative construction missed real flow — callers treat that as a
// bug).
func (g *Graph) Observe(src, dst uint64, sig uint64) bool {
	i, ok := g.nodeIndex(src)
	if !ok {
		return false
	}
	j, ok := g.edgeIndex(i, dst)
	if !ok {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.snap.Store(nil) // labels changed: invalidate the lock-free snapshot
	m := &g.meta[i][j]
	m.count++
	k := sort.Search(len(m.sigs), func(k int) bool { return m.sigs[k] >= sig })
	if k < len(m.sigs) && m.sigs[k] == sig {
		return true
	}
	m.sigs = append(m.sigs, 0)
	copy(m.sigs[k+1:], m.sigs[k:])
	m.sigs[k] = sig
	return true
}

// ObserveWindow labels everything a training trace window provides: the
// consecutive-TIP edges with their TNT signatures, and the
// consecutive-edge pairs for the optional path-sensitive mode. It
// returns false if any pair fell outside the graph (a construction bug:
// §4.2 guarantees containment for legitimate traces).
func (g *Graph) ObserveWindow(tips []ipt.TIPRecord) bool {
	ok := true
	for i := 0; i+1 < len(tips); i++ {
		if !g.Observe(tips[i].IP, tips[i+1].IP, tips[i+1].TNTSig) {
			ok = false
		}
		if i+2 < len(tips) {
			g.ObservePath(tips[i].IP, tips[i+1].IP, tips[i+2].IP)
		}
	}
	return ok
}

// RebuildCache regenerates the flat lookup tables after training — the
// full labeled graph and the §5.3 separate high-credit memory — and
// publishes them as the immutable label snapshot that makes subsequent
// lookups lock-free. The flat arenas own their storage, so later
// in-place label mutation cannot alias into a published snapshot.
func (g *Graph) RebuildCache() {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := &labelSnap{
		full: g.buildFlatLocked(false),
		high: g.buildFlatLocked(true),
	}
	g.high = s.high
	g.snap.Store(s)
	g.labelGen.Add(1)
}

// LabelGen returns the label-snapshot generation: the number of
// RebuildCache publications so far. Lock-free.
func (g *Graph) LabelGen() uint64 { return g.labelGen.Load() }

// CacheLookup checks the high-credit cache only; a miss does not imply a
// violation (fall back to Lookup). Lock-free after RebuildCache.
//
//fg:hotpath
func (g *Graph) CacheLookup(src, dst uint64, sig uint64) (hit, sigMatch bool) {
	if s := g.snap.Load(); s != nil {
		return s.high.CacheLookup(src, dst, sig)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.high == nil {
		return false, false
	}
	return g.high.CacheLookup(src, dst, sig)
}

// sigMatches checks a TNT-run signature against an edge's trained set.
// An edge trained with the long-run wildcard is TNT-polymorphic: its
// conditional runs are data-dependent loop trip counts, which TNT
// labeling cannot disambiguate (the ITC-CFG deliberately avoids path
// explosion, §4.2), so any presented run is accepted for it. Short-run
// edges — the Figure 4 forks the labels exist for — still require an
// exact match.
//
//fg:hotpath
func sigMatches(sigs []uint64, sig uint64) bool {
	k := searchU64(sigs, sig)
	if k < len(sigs) && sigs[k] == sig {
		return true
	}
	k = searchU64(sigs, ipt.TNTSigLongRun)
	return k < len(sigs) && sigs[k] == ipt.TNTSigLongRun
}

// CredStats summarizes credit labeling after training.
type CredStats struct {
	Edges      int
	HighCredit int
	// Ratio is the fraction of edges with high credit.
	Ratio float64
	// Sigs is the total number of distinct (edge, TNT signature) pairs.
	Sigs int
}

// Credits computes labeling statistics (Figure 5(d)'s cred-ratio series
// uses the runtime-weighted variant in the guard; this is the static
// one).
func (g *Graph) Credits() CredStats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var s CredStats
	s.Edges = g.Edges
	for i := range g.meta {
		for j := range g.meta[i] {
			if g.meta[i][j].count > 0 {
				s.HighCredit++
				s.Sigs += len(g.meta[i][j].sigs)
			}
		}
	}
	if s.Edges > 0 {
		s.Ratio = float64(s.HighCredit) / float64(s.Edges)
	}
	return s
}

// AIA computes the plain ITC-CFG average-indirect-targets-allowed: the
// mean out-degree over nodes with at least one outgoing edge. This is the
// coarsened figure that exceeds the O-CFG AIA (the derogation of §4.3).
func (g *Graph) AIA() float64 {
	total, n := 0, 0
	for _, ts := range g.succs {
		if len(ts) == 0 {
			continue
		}
		total += len(ts)
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// AIAWithTNT computes the effective AIA when trained TNT signatures
// disambiguate targets: for each node, targets are partitioned by
// observed signature, and the attacker constrained to trained runs sees
// only the targets sharing a signature. Untrained edges are excluded
// (they route to the slow path).
func (g *Graph) AIAWithTNT() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var total float64
	n := 0
	for i := range g.succs {
		perSig := make(map[uint64]int)
		edges := 0
		for j := range g.succs[i] {
			m := &g.meta[i][j]
			if m.count == 0 {
				continue
			}
			edges++
			for _, s := range m.sigs {
				perSig[s]++
			}
		}
		if edges == 0 || len(perSig) == 0 {
			continue
		}
		sum := 0
		for _, c := range perSig {
			sum += c
		}
		total += float64(sum) / float64(len(perSig))
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// FineGrainedAIA computes the slow-path AIA of Table 4's FlowGuard
// column: forward edges stay TypeArmor-restricted (the O-CFG site sets)
// while backward edges collapse to the shadow stack's single target.
func FineGrainedAIA(g *cfg.Graph) float64 {
	if len(g.Sites) == 0 {
		return 0
	}
	total := 0
	for _, s := range g.Sites {
		if s.Kind == cfg.SiteRet {
			total++ // shadow stack: exactly one valid target
			continue
		}
		total += len(s.Targets)
	}
	return float64(total) / float64(len(g.Sites))
}

// MemoryBytes estimates the resident size of the labeled graph (Table 5's
// memory-usage column): node and target arrays, metadata, and the
// high-credit cache.
func (g *Graph) MemoryBytes() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var b uint64
	b += uint64(len(g.nodes)) * 8
	for i := range g.succs {
		b += uint64(len(g.succs[i])) * 8
		b += uint64(len(g.meta[i])) * 16 // count + slice header amortized
		for j := range g.meta[i] {
			b += uint64(len(g.meta[i][j].sigs)) * 8
		}
	}
	if g.high != nil {
		b += uint64(g.high.Size())
	}
	return b
}

func (g *Graph) String() string {
	return fmt.Sprintf("ITC-CFG{|V|=%d |E|=%d}", len(g.nodes), g.Edges)
}
