package itc

import (
	"fmt"
	"io"
)

// Serialization of the trained graph: the offline phase's distributable
// artifact (the paper conducts CFG generation and training "before the
// distribution of the protected software", §3.3, so the labeled ITC-CFG
// ships alongside the binary and loads at protection time).
//
// The wire format IS the flat in-memory form (flat.go): when the label
// snapshot is current, Encode writes the already-built arena verbatim,
// and Decode adopts the validated bytes as the lookup tables without
// copying — the artifact is mapped, not unmarshaled.

// Encode writes the labeled graph (including path training) to w.
func (g *Graph) Encode(w io.Writer) error {
	var f *Flat
	if s := g.snap.Load(); s != nil {
		f = s.full
	} else {
		g.mu.RLock()
		f = g.buildFlatLocked(false)
		g.mu.RUnlock()
	}
	_, err := w.Write(f.Bytes())
	return err
}

// Decode reads a labeled graph written by Encode and rebuilds the
// high-credit cache. The input must be a complete, valid artifact;
// LoadFlat's strict validation makes accepted bytes canonical, so
// re-encoding the result reproduces them exactly.
func Decode(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("itc: decode: %w", err)
	}
	f, err := LoadFlat(data)
	if err != nil {
		return nil, fmt.Errorf("itc: decode: %w", err)
	}
	g := graphFromFlat(f)
	g.RebuildCache()
	return g, nil
}
