package itc

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Serialization of the trained graph: the offline phase's distributable
// artifact (the paper conducts CFG generation and training "before the
// distribution of the protected software", §3.3, so the labeled ITC-CFG
// ships alongside the binary and loads at protection time).

// graphWire is the gob-stable on-disk form.
type graphWire struct {
	Version int
	Nodes   []uint64
	Succs   [][]uint64
	Counts  [][]uint32
	Sigs    [][][]uint64
	Paths   []uint64
}

const wireVersion = 1

// Encode writes the labeled graph (including path training) to w.
func (g *Graph) Encode(w io.Writer) error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	wire := graphWire{
		Version: wireVersion,
		Nodes:   g.nodes,
		Succs:   g.succs,
		Counts:  make([][]uint32, len(g.meta)),
		Sigs:    make([][][]uint64, len(g.meta)),
	}
	for i := range g.meta {
		wire.Counts[i] = make([]uint32, len(g.meta[i]))
		wire.Sigs[i] = make([][]uint64, len(g.meta[i]))
		for j := range g.meta[i] {
			wire.Counts[i][j] = g.meta[i][j].count
			wire.Sigs[i][j] = g.meta[i][j].sigs
		}
	}
	for p := range g.paths {
		wire.Paths = append(wire.Paths, p)
	}
	return gob.NewEncoder(w).Encode(&wire)
}

// Decode reads a labeled graph written by Encode and rebuilds the
// high-credit cache.
func Decode(r io.Reader) (*Graph, error) {
	var wire graphWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("itc: decode: %w", err)
	}
	if wire.Version != wireVersion {
		return nil, fmt.Errorf("itc: unsupported graph version %d", wire.Version)
	}
	if len(wire.Succs) != len(wire.Nodes) || len(wire.Counts) != len(wire.Nodes) || len(wire.Sigs) != len(wire.Nodes) {
		return nil, fmt.Errorf("itc: corrupt graph: ragged arrays")
	}
	g := &Graph{
		nodes: wire.Nodes,
		succs: wire.Succs,
		meta:  make([][]edgeMeta, len(wire.Nodes)),
	}
	for i := range wire.Succs {
		if len(wire.Counts[i]) != len(wire.Succs[i]) || len(wire.Sigs[i]) != len(wire.Succs[i]) {
			return nil, fmt.Errorf("itc: corrupt graph: ragged edge metadata at node %d", i)
		}
		g.meta[i] = make([]edgeMeta, len(wire.Succs[i]))
		for j := range wire.Succs[i] {
			g.meta[i][j] = edgeMeta{count: wire.Counts[i][j], sigs: wire.Sigs[i][j]}
		}
		g.Edges += len(wire.Succs[i])
	}
	if len(wire.Paths) > 0 {
		g.paths = make(map[uint64]struct{}, len(wire.Paths))
		for _, p := range wire.Paths {
			g.paths[p] = struct{}{}
		}
	}
	g.RebuildCache()
	return g, nil
}
