package itc

import "sort"

// Path-sensitive labeling: the paper's future-work extension (§7.1.2,
// "we can also make the fast path more context-sensitive by matching the
// high-credit paths, each of which consisting of multiple consecutive
// high-credit edges"). Training records the observed pairs of
// consecutive ITC edges; at runtime a window whose edge pairs were never
// seen together is suspicious even if each edge is individually
// high-credit, which defeats attacks stitching individually-trained
// edges into novel orders — at the price of more slow-path escalations.

// PathKey hashes one consecutive-edge pair (a->b, b->c).
//
//fg:hotpath
func PathKey(a, b, c uint64) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, v := range [3]uint64{a, b, c} {
		h = (h ^ v) * 0x100000001b3
	}
	return h
}

// ObservePath records one consecutive-edge pair during training.
func (g *Graph) ObservePath(a, b, c uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.snap.Store(nil) // labels changed: invalidate the lock-free snapshot
	if g.paths == nil {
		g.paths = make(map[uint64]struct{})
	}
	g.paths[PathKey(a, b, c)] = struct{}{}
}

// PathTrained reports whether the consecutive-edge pair was observed in
// training. Lock-free after RebuildCache, like Lookup.
//
//fg:hotpath
func (g *Graph) PathTrained(a, b, c uint64) bool {
	k := PathKey(a, b, c)
	if s := g.snap.Load(); s != nil {
		return s.full.PathTrained(k)
	}
	g.mu.RLock()
	_, ok := g.paths[k]
	g.mu.RUnlock()
	return ok
}

// NumPaths returns the number of distinct trained edge pairs.
func (g *Graph) NumPaths() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.paths)
}

// CreditAtLeast reports whether the edge was observed at least minCount
// times in training — the multi-occurrence credit levels §4.3 sketches
// ("one can use more than two levels of credit values to label the
// edges, based on their number of occurrences").
func (g *Graph) CreditAtLeast(src, dst uint64, minCount uint32) bool {
	i, ok := g.nodeIndex(src)
	if !ok {
		return false
	}
	j, ok := g.edgeIndex(i, dst)
	if !ok {
		return false
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.meta[i][j].count >= minCount
}

// CreditHistogram buckets edges by observation count (diagnostics for
// the multi-level labeling policy).
func (g *Graph) CreditHistogram() map[uint32]int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	hist := make(map[uint32]int)
	for i := range g.meta {
		for j := range g.meta[i] {
			hist[bucketCount(g.meta[i][j].count)]++
		}
	}
	return hist
}

func bucketCount(c uint32) uint32 {
	switch {
	case c == 0:
		return 0
	case c == 1:
		return 1
	case c < 10:
		return 2
	case c < 100:
		return 10
	default:
		return 100
	}
}

// TopEdges returns up to n edges by observation count, for reporting.
type EdgeCount struct {
	Src, Dst uint64
	Count    uint32
}

// TopEdges lists the n most frequently trained edges.
func (g *Graph) TopEdges(n int) []EdgeCount {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var all []EdgeCount
	for i := range g.meta {
		for j := range g.meta[i] {
			if c := g.meta[i][j].count; c > 0 {
				all = append(all, EdgeCount{Src: g.nodes[i], Dst: g.succs[i][j], Count: c})
			}
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Count != all[b].Count {
			return all[a].Count > all[b].Count
		}
		return all[a].Src < all[b].Src
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}
