package itc_test

// Artifact sharing tests (run them under -race): an Artifact is the
// fleet's one-per-binary immutable view of the labeled ITC-CFG, probed
// lock-free by any number of checkers while the live graph keeps
// training and republishing snapshots underneath it.

import (
	"sync"
	"testing"

	"flowguard/internal/itc"
	"flowguard/internal/trace/ipt"
)

// TestArtifactZeroCopyFromSnapshot pins the no-copy contract: an
// Artifact aliases the label snapshot's own flat arenas, so publishing
// one (and publishing it again without intervening training) allocates
// no new graph memory.
func TestArtifactZeroCopyFromSnapshot(t *testing.T) {
	as := figure4Program(t)
	_, ig := buildBoth(t, as)
	edges := graphEdges(ig)
	for round, e := range edges {
		ig.Observe(e[0], e[1], uint64(round))
	}
	ig.RebuildCache()

	a1 := ig.Artifact()
	a2 := ig.Artifact()
	if a1.Full() != a2.Full() {
		t.Fatal("two artifacts of one quiescent graph hold different full arenas: a copy was made")
	}
	if &a1.Bytes()[0] != &a1.Full().Bytes()[0] {
		t.Fatal("Artifact.Bytes does not alias the flat arena")
	}
	if a1.Size() == 0 {
		t.Fatal("trained artifact serialized to zero bytes")
	}
}

// TestArtifactImmutableUnderRetraining races checker goroutines probing
// a published artifact against a trainer mutating the live graph and
// republishing its snapshot: the artifact's answers and generation must
// never change — it is a fixed point-in-time view, which is exactly
// what lets ten thousand guards probe it without synchronization.
func TestArtifactImmutableUnderRetraining(t *testing.T) {
	as := figure4Program(t)
	_, ig := buildBoth(t, as)
	edges := graphEdges(ig)
	if len(edges) < 2 {
		t.Fatal("fixture graph too small")
	}
	// Train only the first half of the edges, then publish.
	half := edges[:len(edges)/2]
	for _, e := range half {
		ig.Observe(e[0], e[1], 3)
		ig.ObservePath(e[0], e[1], e[0])
	}
	ig.RebuildCache()
	art := ig.Artifact()
	gen := art.Gen()

	type probe struct {
		label    itc.EdgeLabel
		hit, sig bool
		path     bool
	}
	baseline := make([]probe, len(edges))
	snap := func(a *itc.Artifact) []probe {
		out := make([]probe, len(edges))
		for i, e := range edges {
			out[i].label = a.Lookup(e[0], e[1], 3)
			out[i].hit, out[i].sig = a.CacheLookup(e[0], e[1], 3)
			out[i].path = a.PathTrained(itc.PathKey(e[0], e[1], e[0]))
		}
		return out
	}
	copy(baseline, snap(art))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := edges[i%len(edges)]
				got := art.Lookup(e[0], e[1], 3)
				want := baseline[i%len(edges)].label
				if got != want {
					t.Errorf("artifact lookup %#x->%#x changed under retraining: %+v -> %+v", e[0], e[1], want, got)
					return
				}
				art.CacheLookup(e[0], e[1], uint64(i))
				art.PathTrained(itc.PathKey(e[0], e[1], e[0]))
				i++
			}
		}(w)
	}
	// Retrain every edge (including the untrained half) and republish
	// the snapshot repeatedly while the probes run.
	for round := 0; round < 50; round++ {
		for _, e := range edges {
			ig.Observe(e[0], e[1], uint64(round))
			ig.ObservePath(e[0], e[1], e[1])
		}
		ig.RebuildCache()
	}
	close(stop)
	wg.Wait()

	if art.Gen() != gen {
		t.Fatalf("artifact generation moved under retraining: %d -> %d", gen, art.Gen())
	}
	for i, p := range snap(art) {
		if p != baseline[i] {
			t.Errorf("edge %#x->%#x drifted: %+v -> %+v", edges[i][0], edges[i][1], baseline[i], p)
		}
	}
	// The live graph, by contrast, must have moved on.
	fresh := ig.Artifact()
	if fresh.Gen() == gen {
		t.Fatal("retraining plus rebuild did not advance the live label generation")
	}
}

// TestArtifactFromFlatAgrees pins the serialized round trip at the
// artifact level: an artifact adopted from FGITCFL1 bytes must answer
// every Lookup/CacheLookup/PathTrained probe exactly like the artifact
// that produced the bytes, even though it derives cache verdicts from
// the full arena instead of a separate high-credit memory.
func TestArtifactFromFlatAgrees(t *testing.T) {
	as := figure4Program(t)
	_, ig := buildBoth(t, as)
	edges := graphEdges(ig)
	for i, e := range edges {
		if i%2 == 0 {
			ig.Observe(e[0], e[1], uint64(i))
			ig.ObservePath(e[0], e[1], e[0])
		}
	}
	ig.RebuildCache()
	orig := ig.Artifact()

	f, err := itc.LoadFlat(append([]byte(nil), orig.Bytes()...))
	if err != nil {
		t.Fatal(err)
	}
	adopted := itc.ArtifactFromFlat(f)
	for _, e := range edges {
		for _, sig := range []uint64{ipt.TNTSigEmpty, 3, uint64(e[0] % 7)} {
			if got, want := adopted.Lookup(e[0], e[1], sig), orig.Lookup(e[0], e[1], sig); got != want {
				t.Fatalf("lookup %#x->%#x sig %d: adopted %+v, original %+v", e[0], e[1], sig, got, want)
			}
			ah, asig := adopted.CacheLookup(e[0], e[1], sig)
			oh, osig := orig.CacheLookup(e[0], e[1], sig)
			if ah != oh || asig != osig {
				t.Fatalf("cache lookup %#x->%#x sig %d: adopted (%v,%v), original (%v,%v)", e[0], e[1], sig, ah, asig, oh, osig)
			}
			key := itc.PathKey(e[0], e[1], e[0])
			if adopted.PathTrained(key) != orig.PathTrained(key) {
				t.Fatalf("path trained %#x->%#x diverges after round trip", e[0], e[1])
			}
		}
	}
}
