package itc_test

// Concurrency tests (run them under -race): checker goroutines keep
// issuing lookups while training observes edges and rebuilds the
// high-credit cache, mirroring RunMulti's parallel checkers over a
// shared graph.

import (
	"sync"
	"testing"

	"flowguard/internal/itc"
	"flowguard/internal/trace/ipt"
)

func graphEdges(ig *itc.Graph) [][2]uint64 {
	var edges [][2]uint64
	for _, src := range ig.Nodes() {
		for _, dst := range ig.Nodes() {
			if ig.HasEdge(src, dst) {
				edges = append(edges, [2]uint64{src, dst})
			}
		}
	}
	return edges
}

func TestConcurrentLookupsDuringTraining(t *testing.T) {
	as := figure4Program(t)
	_, ig := buildBoth(t, as)
	edges := graphEdges(ig)
	if len(edges) == 0 {
		t.Fatal("graph has no edges")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := edges[i%len(edges)]
				ig.Lookup(e[0], e[1], ipt.TNTSigEmpty)
				ig.CacheLookup(e[0], e[1], ipt.TNTSigEmpty)
				ig.PathTrained(e[0], e[1], e[0])
				i++
			}
		}(w)
	}
	// Training mutates labels and republishes the lock-free snapshot
	// while the readers above hammer the lookup paths.
	for round := 0; round < 100; round++ {
		for _, e := range edges {
			ig.Observe(e[0], e[1], uint64(round))
			ig.ObservePath(e[0], e[1], e[0])
		}
		ig.RebuildCache()
	}
	close(stop)
	wg.Wait()

	for _, e := range edges {
		l := ig.Lookup(e[0], e[1], 5)
		if !l.Exists || !l.HighCredit || l.Count < 100 {
			t.Fatalf("edge %#x->%#x after training: %+v", e[0], e[1], l)
		}
		if !ig.PathTrained(e[0], e[1], e[0]) {
			t.Fatalf("path %#x->%#x->%#x lost", e[0], e[1], e[0])
		}
	}
}

// TestObserveVisibleWithoutRebuild pins the fallback semantics: an
// Observe after RebuildCache must be visible to Lookup immediately, even
// though it invalidates the lock-free snapshot.
func TestObserveVisibleWithoutRebuild(t *testing.T) {
	as := figure4Program(t)
	_, ig := buildBoth(t, as)
	edges := graphEdges(ig)
	e := edges[0]
	ig.RebuildCache() // publish an (untrained) snapshot

	if l := ig.Lookup(e[0], e[1], 7); l.HighCredit {
		t.Fatalf("untrained edge already high-credit: %+v", l)
	}
	if !ig.Observe(e[0], e[1], 7) {
		t.Fatal("Observe rejected a graph edge")
	}
	l := ig.Lookup(e[0], e[1], 7)
	if !l.HighCredit || !l.SigMatch || l.Count != 1 {
		t.Fatalf("Observe not visible without RebuildCache: %+v", l)
	}
	// The high-credit cache, by §5.3 design, lags until the rebuild.
	if hit, _ := ig.CacheLookup(e[0], e[1], 7); hit {
		t.Fatal("high-credit cache updated without RebuildCache")
	}
	ig.RebuildCache()
	if hit, sigOK := ig.CacheLookup(e[0], e[1], 7); !hit || !sigOK {
		t.Fatal("high-credit cache missing the edge after RebuildCache")
	}
}
