package itc_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"flowguard/internal/itc"
	"flowguard/internal/trace/ipt"
)

// TestEncodeDecodeRoundTrip: a trained graph survives serialization with
// all labels, signatures and path marks intact.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	as := figure4Program(t)
	_, ig := buildBoth(t, as)
	trainAll(t, as, ig)
	// Also record a path mark.
	tips, _ := runTraced(t, as, 0, 0)
	ig.ObserveWindow(tips)
	ig.RebuildCache()

	var buf bytes.Buffer
	if err := ig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := itc.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != ig.NumNodes() || got.Edges != ig.Edges {
		t.Fatalf("shape mismatch: %v vs %v", got, ig)
	}
	if got.Credits() != ig.Credits() {
		t.Errorf("credits mismatch: %+v vs %+v", got.Credits(), ig.Credits())
	}
	if got.NumPaths() != ig.NumPaths() {
		t.Errorf("paths = %d, want %d", got.NumPaths(), ig.NumPaths())
	}
	// Lookups behave identically, including the rebuilt cache.
	fork, _ := as.Exec.SymbolAddr("fork")
	bb4, _ := as.Exec.SymbolAddr("bb4")
	sig := ipt.TNTSigAppend(ipt.TNTSigEmpty, false)
	if got.Lookup(fork, bb4, sig) != ig.Lookup(fork, bb4, sig) {
		t.Error("Lookup differs after round trip")
	}
	h1, s1 := ig.CacheLookup(fork, bb4, sig)
	h2, s2 := got.CacheLookup(fork, bb4, sig)
	if h1 != h2 || s1 != s2 {
		t.Error("CacheLookup differs after round trip")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := itc.Decode(bytes.NewReader([]byte("not a graph"))); err == nil {
		t.Fatal("Decode accepted garbage")
	}
}

// TestPathKeyDistinguishesOrder: the path hash is order-sensitive.
func TestPathKeyDistinguishesOrder(t *testing.T) {
	if itc.PathKey(1, 2, 3) == itc.PathKey(3, 2, 1) {
		t.Error("PathKey is order-insensitive")
	}
	if itc.PathKey(1, 2, 3) == itc.PathKey(1, 2, 4) {
		t.Error("PathKey ignores the final element")
	}
}

// TestCreditLevels: counts accumulate and the threshold predicate works.
func TestCreditLevels(t *testing.T) {
	as := figure4Program(t)
	_, ig := buildBoth(t, as)
	tips, _ := runTraced(t, as, 0, 0)
	for i := 0; i < 3; i++ {
		ig.ObserveWindow(tips)
	}
	src, dst := tips[0].IP, tips[1].IP
	if !ig.CreditAtLeast(src, dst, 3) {
		t.Error("edge should have 3 observations")
	}
	if ig.CreditAtLeast(src, dst, 4) {
		t.Error("edge should not have 4 observations")
	}
	if ig.CreditAtLeast(0xdead, dst, 1) {
		t.Error("absent edge has credit")
	}
	hist := ig.CreditHistogram()
	if hist[2] == 0 { // bucket for 2..9 observations
		t.Errorf("histogram missing the trained bucket: %v", hist)
	}
	top := ig.TopEdges(5)
	if len(top) == 0 || top[0].Count < 3 {
		t.Errorf("TopEdges = %+v", top)
	}
}

// Property: Observe/Lookup are consistent for arbitrary (edge, sig)
// probes — observed pairs match, unobserved signatures don't (unless the
// long-run wildcard was trained on that edge).
func TestQuickObserveLookup(t *testing.T) {
	as := figure4Program(t)
	_, ig := buildBoth(t, as)
	nodes := ig.Nodes()
	if len(nodes) == 0 {
		t.Fatal("no nodes")
	}
	f := func(srcIdx, dstIdx uint16, sig uint64, observe bool) bool {
		src := nodes[int(srcIdx)%len(nodes)]
		dst := nodes[int(dstIdx)%len(nodes)]
		if sig == ipt.TNTSigLongRun {
			sig++ // keep the wildcard out of the random space
		}
		exists := ig.HasEdge(src, dst)
		if observe {
			if got := ig.Observe(src, dst, sig); got != exists {
				return false
			}
		}
		l := ig.Lookup(src, dst, sig)
		if l.Exists != exists {
			return false
		}
		if observe && exists && (!l.HighCredit || !l.SigMatch) {
			return false
		}
		if !exists && (l.HighCredit || l.SigMatch) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
