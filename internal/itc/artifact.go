package itc

// Artifact is the fleet-sharing unit of the labeled ITC-CFG: one
// immutable pair of flat arenas (the full labeled graph and the §5.3
// high-credit subset) that any number of per-process guards reference
// by pointer. Nothing in an Artifact is mutable, so ten thousand
// checkers can probe one concurrently with no synchronization and no
// per-process copy — the per-process enforcement state shrinks to
// {window cursor, approval generation, stats}, all of which live in the
// guard, none of which duplicate the graph.
//
// An Artifact is obtained either from a trained Graph (Graph.Artifact,
// which shares the flat arenas the label snapshot already owns) or from
// serialized FGITCFL1 bytes (ArtifactFromFlat over LoadFlat): the PR 6
// wire format doubles as the zero-copy in-memory form, so a fleet
// controller can mmap one trained artifact per binary and hand the same
// pointer to every process it protects.
type Artifact struct {
	full *Flat
	// high is the separate high-credit memory. It is nil when the
	// artifact was adopted from serialized full-graph bytes; CacheLookup
	// then derives the cache verdict from the full arena (see below).
	high *Flat
	// gen is the label generation the artifact was published at. It is
	// fixed for the artifact's lifetime — sharing guards key their
	// approval-cache validity on it exactly as they would on a live
	// graph's LabelGen.
	gen uint64
}

// Artifact publishes the graph's current label snapshot as a shared
// immutable artifact. The flat arenas are the snapshot's own (zero
// copies); if training touched the labels since the last RebuildCache,
// the snapshot is rebuilt first. Subsequent training does not affect an
// already-returned Artifact — it is a fixed point-in-time view.
func (g *Graph) Artifact() *Artifact {
	s := g.snap.Load()
	if s == nil {
		g.RebuildCache()
		s = g.snap.Load()
	}
	return &Artifact{full: s.full, high: s.high, gen: g.labelGen.Load()}
}

// ArtifactFromFlat adopts a loaded full-graph arena (LoadFlat over
// FGITCFL1 bytes) as a shared artifact. The serialized format carries
// the full labeled graph only; the high-credit cache verdict is derived
// from it on probe, which is semantically identical — the high arena
// contains exactly the count>0 edges with the same signature sets, so
// presence-in-high equals HighCredit-in-full and the sig matches agree.
func ArtifactFromFlat(f *Flat) *Artifact {
	return &Artifact{full: f, gen: 1}
}

// Lookup is the artifact form of Graph.Lookup: membership, credit, and
// TNT-signature match. Lock-free always.
//
//fg:hotpath
func (a *Artifact) Lookup(src, dst, sig uint64) EdgeLabel {
	return a.full.Lookup(src, dst, sig)
}

// CacheLookup probes the high-credit cache. Lock-free always.
//
//fg:hotpath
func (a *Artifact) CacheLookup(src, dst, sig uint64) (hit, sigMatch bool) {
	if a.high != nil {
		return a.high.CacheLookup(src, dst, sig)
	}
	l := a.full.Lookup(src, dst, sig)
	return l.HighCredit, l.SigMatch
}

// PathTrained reports whether the PathKey value was recorded in
// training. Lock-free always.
//
//fg:hotpath
func (a *Artifact) PathTrained(key uint64) bool {
	return a.full.PathTrained(key)
}

// Gen returns the artifact's (fixed) label generation.
func (a *Artifact) Gen() uint64 { return a.gen }

// Bytes returns the serialized FGITCFL1 form of the full labeled graph:
// the backing arena itself, aliased, not copied. Must not be modified.
func (a *Artifact) Bytes() []byte { return a.full.Bytes() }

// Size returns the serialized size of the full arena in bytes.
func (a *Artifact) Size() int { return a.full.Size() }

// Full returns the full labeled flat graph the artifact wraps.
func (a *Artifact) Full() *Flat { return a.full }
