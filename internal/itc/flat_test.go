package itc

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"flowguard/internal/trace/ipt"
)

// randomTrainedGraph builds a Graph with randomized topology and labels
// directly (no CFG collapse): the flat layout must hold for any shape,
// not just ones a compiler would emit.
func randomTrainedGraph(rng *rand.Rand, nNodes int) *Graph {
	nodes := make([]uint64, 0, nNodes)
	seen := map[uint64]bool{}
	for len(nodes) < nNodes {
		a := 0x400000 + uint64(rng.Intn(1<<20))*16
		if !seen[a] {
			seen[a] = true
			nodes = append(nodes, a)
		}
	}
	sortU64(nodes)
	g := &Graph{
		nodes: nodes,
		succs: make([][]uint64, nNodes),
		meta:  make([][]edgeMeta, nNodes),
	}
	for i := range nodes {
		deg := rng.Intn(5)
		if deg > nNodes {
			deg = nNodes
		}
		ts := map[uint64]bool{}
		for len(ts) < deg {
			ts[nodes[rng.Intn(nNodes)]] = true
		}
		succ := make([]uint64, 0, deg)
		for t := range ts {
			succ = append(succ, t)
		}
		sortU64(succ)
		g.succs[i] = succ
		g.meta[i] = make([]edgeMeta, deg)
		g.Edges += deg
	}
	// Train a random subset of edges with random signatures.
	for i := range g.succs {
		for _, dst := range g.succs[i] {
			if rng.Intn(3) == 0 {
				continue // leave low-credit
			}
			for k := 0; k < 1+rng.Intn(3); k++ {
				sig := ipt.TNTSigEmpty
				if rng.Intn(4) == 0 {
					sig = ipt.TNTSigLongRun
				} else {
					for b := 0; b < rng.Intn(6); b++ {
						sig = ipt.TNTSigAppend(sig, rng.Intn(2) == 0)
					}
				}
				g.Observe(g.nodes[i], dst, sig)
			}
		}
	}
	// Random trained paths.
	for k := 0; k < nNodes; k++ {
		g.ObservePath(nodes[rng.Intn(nNodes)], nodes[rng.Intn(nNodes)], nodes[rng.Intn(nNodes)])
	}
	return g
}

// TestFlatAgreesWithMeta drives randomized graphs through both the flat
// snapshot path and the locked meta path and requires identical answers
// from Lookup, CacheLookup and PathTrained for hits and misses alike.
func TestFlatAgreesWithMeta(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 50; round++ {
		g := randomTrainedGraph(rng, 2+rng.Intn(40))

		// Collect locked-path answers before the snapshot exists.
		type probe struct {
			src, dst, sig   uint64
			want            EdgeLabel
			wantHit, wantSM bool
		}
		var probes []probe
		addProbe := func(src, dst, sig uint64) {
			l := g.Lookup(src, dst, sig)
			// Pre-rebuild the high cache is empty, so record only the
			// label; CacheLookup is probed post-rebuild against it.
			probes = append(probes, probe{src: src, dst: dst, sig: sig, want: l})
		}
		for i := range g.succs {
			for j, dst := range g.succs[i] {
				addProbe(g.nodes[i], dst, ipt.TNTSigEmpty)
				for _, s := range g.meta[i][j].sigs {
					addProbe(g.nodes[i], dst, s)
				}
				addProbe(g.nodes[i], dst, 0xdeadbeef)
			}
			addProbe(g.nodes[i], 0x1, 0) // miss: absent target
		}
		addProbe(0x1, 0x2, 0) // miss: absent source

		g.RebuildCache()
		for pi := range probes {
			p := &probes[pi]
			got := g.Lookup(p.src, p.dst, p.sig)
			if got != p.want {
				t.Fatalf("round %d: flat Lookup(%#x,%#x,%#x) = %+v, want %+v",
					round, p.src, p.dst, p.sig, got, p.want)
			}
			hit, sm := g.CacheLookup(p.src, p.dst, p.sig)
			wantHit := p.want.Exists && p.want.HighCredit
			wantSM := wantHit && p.want.SigMatch
			if hit != wantHit || sm != wantSM {
				t.Fatalf("round %d: flat CacheLookup(%#x,%#x,%#x) = (%v,%v), want (%v,%v)",
					round, p.src, p.dst, p.sig, hit, sm, wantHit, wantSM)
			}
		}
		// Path probes: trained keys hit, a fresh key misses.
		for p := range g.paths {
			s := g.snap.Load()
			if !s.full.PathTrained(p) {
				t.Fatalf("round %d: trained path key %#x not found in flat", round, p)
			}
		}
		if g.snap.Load().full.PathTrained(0x1234) == (func() bool { _, ok := g.paths[0x1234]; return ok }()) == false {
			t.Fatalf("round %d: flat PathTrained(0x1234) disagrees with map", round)
		}
	}
}

// TestFlatRoundTripCanonical pins the zero-copy serialization contract:
// Encode produces the arena bytes, Decode adopts and revalidates them,
// and re-encoding the decoded graph reproduces the input byte for byte.
func TestFlatRoundTripCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for round := 0; round < 20; round++ {
		g := randomTrainedGraph(rng, 1+rng.Intn(30))
		g.RebuildCache()

		var buf bytes.Buffer
		if err := g.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		wire := append([]byte(nil), buf.Bytes()...)

		g2, err := Decode(bytes.NewReader(wire))
		if err != nil {
			t.Fatalf("round %d: decode: %v", round, err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.Edges != g.Edges || g2.NumPaths() != g.NumPaths() {
			t.Fatalf("round %d: shape mismatch after decode", round)
		}
		var buf2 bytes.Buffer
		if err := g2.Encode(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire, buf2.Bytes()) {
			t.Fatalf("round %d: re-encode not byte-identical (%d vs %d bytes)",
				round, len(wire), buf2.Len())
		}
		// Decoded graph answers like the original.
		for i := range g.succs {
			for _, dst := range g.succs[i] {
				if a, b := g.Lookup(g.nodes[i], dst, ipt.TNTSigEmpty), g2.Lookup(g.nodes[i], dst, ipt.TNTSigEmpty); a != b {
					t.Fatalf("round %d: lookup divergence after round-trip: %+v vs %+v", round, a, b)
				}
			}
		}
	}
}

// TestFlatEncodeWithoutSnapshot exercises the Encode fallback that builds
// the arena under the read lock when training invalidated the snapshot.
func TestFlatEncodeWithoutSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomTrainedGraph(rng, 10)
	// No RebuildCache: snap is nil.
	if g.snap.Load() != nil {
		t.Fatal("expected nil snapshot before RebuildCache")
	}
	var a bytes.Buffer
	if err := g.Encode(&a); err != nil {
		t.Fatal(err)
	}
	g.RebuildCache()
	var b bytes.Buffer
	if err := g.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("locked-path Encode differs from snapshot Encode")
	}
}

// TestLoadFlatRejects corrupts a valid arena one field at a time; every
// mutation must be rejected (the canonical-form guarantee rests on it).
func TestLoadFlatRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomTrainedGraph(rng, 12)
	g.RebuildCache()
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := LoadFlat(good); err != nil {
		t.Fatalf("valid arena rejected: %v", err)
	}

	mutate := func(name string, f func(b []byte) []byte) {
		b := f(append([]byte(nil), good...))
		if _, err := LoadFlat(b); err == nil {
			t.Errorf("%s: corrupt arena accepted", name)
		}
	}
	mutate("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	mutate("truncated", func(b []byte) []byte { return b[:len(b)-1] })
	mutate("extended", func(b []byte) []byte { return append(b, 0) })
	mutate("node count", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[8:], binary.LittleEndian.Uint64(b[8:])+1)
		return b
	})
	mutate("huge count", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[16:], 1<<40)
		return b
	})
	mutate("unsorted nodes", func(b []byte) []byte {
		// Swap two eytzinger slots: the in-order walk stops ascending.
		e := b[flatHeaderSize:]
		for i := 0; i < 8; i++ {
			e[i], e[8+i] = e[8+i], e[i]
		}
		return b
	})
	mutate("short", func(b []byte) []byte { return b[:flatHeaderSize-1] })
}

// TestFlatEmptyGraph pins the degenerate cases: zero nodes, and nodes
// with no edges.
func TestFlatEmptyGraph(t *testing.T) {
	g := &Graph{}
	g.RebuildCache()
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 0 || g2.Edges != 0 {
		t.Fatalf("empty graph round-trip: got %d nodes %d edges", g2.NumNodes(), g2.Edges)
	}
	if l := g2.Lookup(1, 2, 3); l.Exists {
		t.Fatal("lookup on empty graph reported an edge")
	}
	if hit, _ := g2.CacheLookup(1, 2, 3); hit {
		t.Fatal("cache lookup on empty graph reported a hit")
	}
}

// FuzzFlatITCRoundTrip feeds arbitrary bytes to LoadFlat; accepted input
// must be canonical (decode → re-encode reproduces it exactly) and must
// never panic, which is the whole safety story for loading shipped
// artifacts.
func FuzzFlatITCRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 3, 17} {
		g := randomTrainedGraph(rng, 1+n)
		g.RebuildCache()
		var buf bytes.Buffer
		if err := g.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(flatMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		fl, err := LoadFlat(data)
		if err != nil {
			return
		}
		g := graphFromFlat(fl)
		g.RebuildCache()
		var out bytes.Buffer
		if err := g.Encode(&out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("accepted input not canonical: %d in, %d out", len(data), out.Len())
		}
	})
}
