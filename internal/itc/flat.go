package itc

import (
	"encoding/binary"
	"fmt"

	"flowguard/internal/trace/ipt"
)

// Flat is the cache-line-conscious form of the labeled ITC-CFG: every
// table the checker-facing lookups touch laid out as a contiguous
// array, addressed by offset instead of pointer. The layout serves two
// masters at once:
//
//   - The hot path. The node index is stored in eytzinger (BFS) order, so
//     the first four levels of every search share one cache line and deeper
//     levels prefetch predictably — the slices-of-slices form paid a
//     dependent pointer load per node level. Successor lists, edge counts,
//     TNT-signature sets and trained path keys are flat arrays located by
//     offset arithmetic, never by chasing slice headers. The lookups run
//     over typed []uint64 / []uint32 views (direct word loads, bounds
//     checks the compiler can hoist), materialized once when the Flat is
//     built or loaded.
//
//   - Serialization. The byte arena IS the wire format (§3.3's
//     distributable training artifact): Encode writes the bytes out
//     verbatim and LoadFlat validates them in one pass, so a trained
//     graph ships and loads with no per-record marshaling on either side.
//
// Layout (all fields little-endian):
//
//	magic    8  "FGITCFL1"
//	header   32 nNodes, nEdges, nSigs, nPaths (u64 each)
//	eytz     nNodes*8   node addresses, eytzinger order (root 0, children
//	                    of slot k at 2k+1 / 2k+2; in-order = ascending)
//	ref      nNodes*8   per eytz slot: first-edge index (low u32) and
//	                    out-degree (high u32); edges are grouped by slot,
//	                    so the starts are the prefix sums in slot order
//	succ     nEdges*8   successor addresses, ascending within each node
//	cnt      nEdges*4   training observation count per edge
//	sigIdx   (nEdges+1)*4  prefix sums into sig
//	sig      nSigs*8    TNT signatures, ascending within each edge
//	path     nPaths*8   trained PathKey values, ascending
//
// Every degree of freedom is pinned by LoadFlat's validation, so a byte
// string either fails to load or is exactly what encoding the decoded
// graph would produce: Encode∘Decode is the identity on accepted input.
type Flat struct {
	data []byte // canonical serialized form

	nNodes int
	nEdges int

	// Typed views of the sections, decoded once at build/load time; the
	// hot lookups index these directly.
	eytz   []uint64
	ref    []uint64
	succ   []uint64
	cnt    []uint32
	sigIdx []uint32
	sig    []uint64
	path   []uint64
}

// flatMagic identifies the format; the trailing 1 is the version.
const flatMagic = "FGITCFL1"

const flatHeaderSize = len(flatMagic) + 4*8

// findNode locates addr in the eytzinger index and returns its slot.
//
//fg:hotpath
func (f *Flat) findNode(addr uint64) (int, bool) {
	eytz := f.eytz
	k := 0
	for k < len(eytz) {
		v := eytz[k]
		if v == addr {
			return k, true
		}
		if addr < v {
			k = 2*k + 1
		} else {
			k = 2*k + 2
		}
	}
	return 0, false
}

// findEdge locates the edge src->dst and returns its index in the edge
// arenas.
//
//fg:hotpath
func (f *Flat) findEdge(src, dst uint64) (int, bool) {
	k, ok := f.findNode(src)
	if !ok {
		return 0, false
	}
	r := f.ref[k]
	lo := int(uint32(r))
	end := lo + int(uint32(r>>32))
	succ := f.succ
	// Indirect-branch out-degrees are tiny (typically 1-4): a forward
	// scan beats binary-search branch mispredicts there, and the list is
	// one cache line anyway. Large fan-out nodes still get the search.
	if end-lo <= flatLinearScanMax {
		for i := lo; i < end; i++ {
			v := succ[i]
			if v == dst {
				return i, true
			}
			if v > dst {
				break
			}
		}
		return 0, false
	}
	hi := end
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if succ[mid] < dst {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < end && succ[lo] == dst {
		return lo, true
	}
	return 0, false
}

// flatLinearScanMax is the run length (one cache line of u64s) below
// which the flat lookups scan forward instead of binary-searching.
const flatLinearScanMax = 8

// sigMatch checks sig against the trained signature set of edge e,
// honoring the long-run wildcard (see sigMatches).
//
//fg:hotpath
func (f *Flat) sigMatch(e int, sig uint64) bool {
	lo := int(f.sigIdx[e])
	hi := int(f.sigIdx[e+1])
	s := f.sig
	// Trained signature sets are almost always a handful of entries: one
	// pass tests the exact signature and the long-run wildcard together,
	// where two binary searches would pay their branches twice.
	if hi-lo <= flatLinearScanMax {
		for i := lo; i < hi; i++ {
			v := s[i]
			if v == sig || v == ipt.TNTSigLongRun {
				return true
			}
		}
		return false
	}
	if sigSearch(s, lo, hi, sig) {
		return true
	}
	return sigSearch(s, lo, hi, ipt.TNTSigLongRun)
}

// sigSearch binary-searches entries [lo, hi) of s for x.
//
//fg:hotpath
func sigSearch(s []uint64, lo, hi int, x uint64) bool {
	end := hi
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < end && s[lo] == x
}

// Lookup is the flat form of Graph.Lookup: membership, credit, and
// TNT-signature match in one pass over the arena.
//
//fg:hotpath
func (f *Flat) Lookup(src, dst, sig uint64) EdgeLabel {
	e, ok := f.findEdge(src, dst)
	if !ok {
		return EdgeLabel{}
	}
	count := f.cnt[e]
	l := EdgeLabel{Exists: true, HighCredit: count > 0, Count: count}
	if l.HighCredit {
		l.SigMatch = f.sigMatch(e, sig)
	}
	return l
}

// CacheLookup is the flat form of the high-credit cache probe: on a Flat
// built highOnly, every present edge is trained, so presence is the hit.
//
//fg:hotpath
func (f *Flat) CacheLookup(src, dst, sig uint64) (hit, sigMatch bool) {
	e, ok := f.findEdge(src, dst)
	if !ok {
		return false, false
	}
	return true, f.sigMatch(e, sig)
}

// PathTrained reports whether the PathKey value was recorded in training
// (binary search on the sorted path section).
//
//fg:hotpath
func (f *Flat) PathTrained(key uint64) bool {
	path := f.path
	lo, hi := 0, len(path)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if path[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(path) && path[lo] == key
}

// Bytes returns the backing arena: the serialized form of the graph. The
// slice aliases the Flat's storage and must not be modified.
func (f *Flat) Bytes() []byte { return f.data }

// Size returns the size of the serialized arena in bytes. The resident
// footprint is roughly twice this: the canonical bytes plus the typed
// lookup views decoded from them.
func (f *Flat) Size() int { return len(f.data) }

// eytzFill places sorted[*next], advancing it, at slot k and recursively
// below, producing the eytzinger permutation whose in-order walk is the
// sorted order.
func eytzFill(dst []byte, n int, k int, sorted []uint64, next *int) {
	if k >= n {
		return
	}
	eytzFill(dst, n, 2*k+1, sorted, next)
	binary.LittleEndian.PutUint64(dst[k*8:], sorted[*next])
	*next++
	eytzFill(dst, n, 2*k+2, sorted, next)
}

// eytzSlots returns the eytzinger slot of each sorted position: the
// inverse walk of eytzFill.
func eytzSlots(n int) []int {
	slots := make([]int, 0, n)
	var walk func(k int)
	walk = func(k int) {
		if k >= n {
			return
		}
		walk(2*k + 1)
		slots = append(slots, k)
		walk(2*k + 2)
	}
	walk(0)
	return slots
}

// buildFlatLocked lays the labeled graph out as a Flat arena. Callers
// hold g.mu (the label fields are read). With highOnly set, only edges
// with a positive training count — and only nodes retaining at least one
// such edge — are emitted: the §5.3 separate high-credit memory.
func (g *Graph) buildFlatLocked(highOnly bool) *Flat {
	// Select nodes and count the sections.
	type nodeSel struct {
		addr  uint64
		idx   int // index into g.nodes
		edges []int
	}
	sel := make([]nodeSel, 0, len(g.nodes))
	nEdges, nSigs := 0, 0
	for i, addr := range g.nodes {
		var edges []int
		for j := range g.succs[i] {
			if highOnly && g.meta[i][j].count == 0 {
				continue
			}
			edges = append(edges, j)
			nSigs += len(g.meta[i][j].sigs)
		}
		if highOnly && len(edges) == 0 {
			continue
		}
		sel = append(sel, nodeSel{addr: addr, idx: i, edges: edges})
		nEdges += len(edges)
	}
	n := len(sel)

	var paths []uint64
	if !highOnly {
		paths = make([]uint64, 0, len(g.paths))
		for p := range g.paths {
			paths = append(paths, p)
		}
		sortU64(paths)
	}

	size := flatHeaderSize + n*8 + n*8 + nEdges*8 + nEdges*4 + (nEdges+1)*4 + nSigs*8 + len(paths)*8
	data := make([]byte, size)
	copy(data, flatMagic)
	hdr := data[len(flatMagic):]
	binary.LittleEndian.PutUint64(hdr[0:], uint64(n))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(nEdges))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(nSigs))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(paths)))

	secEytz, secRef, secSucc, secCnt, secSigIdx, secSig, secPath := flatSections(data, n, nEdges, nSigs, len(paths))

	sorted := make([]uint64, n)
	for i, s := range sel {
		sorted[i] = s.addr
	}
	next := 0
	eytzFill(secEytz, n, 0, sorted, &next)

	// Edges are grouped by eytzinger slot: walk the slots of the sorted
	// positions and emit each node's edge block at the running offset.
	slots := eytzSlots(n)
	// slotOf[k] = sorted position occupying slot k.
	slotOf := make([]int, n)
	for pos, k := range slots {
		slotOf[k] = pos
	}
	e := 0 // running edge index
	sg := 0
	binary.LittleEndian.PutUint32(secSigIdx[0:], 0)
	for k := 0; k < n; k++ {
		s := sel[slotOf[k]]
		binary.LittleEndian.PutUint64(secRef[k*8:], uint64(e)|uint64(len(s.edges))<<32)
		for _, j := range s.edges {
			m := &g.meta[s.idx][j]
			binary.LittleEndian.PutUint64(secSucc[e*8:], g.succs[s.idx][j])
			binary.LittleEndian.PutUint32(secCnt[e*4:], m.count)
			for _, sv := range m.sigs {
				binary.LittleEndian.PutUint64(secSig[sg*8:], sv)
				sg++
			}
			e++
			binary.LittleEndian.PutUint32(secSigIdx[e*4:], uint32(sg))
		}
	}
	for i, p := range paths {
		binary.LittleEndian.PutUint64(secPath[i*8:], p)
	}
	return sliceFlat(data, n, nEdges, nSigs, len(paths))
}

// flatSections carves the raw byte sections out of a correctly-sized
// arena.
func flatSections(data []byte, nNodes, nEdges, nSigs, nPaths int) (eytz, ref, succ, cnt, sigIdx, sig, path []byte) {
	b := data[flatHeaderSize:]
	cut := func(n int) []byte {
		s := b[:n:n]
		b = b[n:]
		return s
	}
	eytz = cut(nNodes * 8)
	ref = cut(nNodes * 8)
	succ = cut(nEdges * 8)
	cnt = cut(nEdges * 4)
	sigIdx = cut((nEdges + 1) * 4)
	sig = cut(nSigs * 8)
	path = cut(nPaths * 8)
	return
}

// u64Section decodes a little-endian u64 section into a typed view.
func u64Section(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

// u32Section decodes a little-endian u32 section into a typed view.
func u32Section(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

// sliceFlat adopts a correctly-sized arena and decodes the typed views
// the hot lookups run over.
func sliceFlat(data []byte, nNodes, nEdges, nSigs, nPaths int) *Flat {
	eytz, ref, succ, cnt, sigIdx, sig, path := flatSections(data, nNodes, nEdges, nSigs, nPaths)
	return &Flat{
		data:   data,
		nNodes: nNodes,
		nEdges: nEdges,
		eytz:   u64Section(eytz),
		ref:    u64Section(ref),
		succ:   u64Section(succ),
		cnt:    u32Section(cnt),
		sigIdx: u32Section(sigIdx),
		sig:    u64Section(sig),
		path:   u64Section(path),
	}
}

// flatLimit bounds each header count; far above any real graph, low
// enough that the section-size arithmetic cannot overflow.
const flatLimit = 1 << 31

// LoadFlat validates data as a serialized labeled ITC-CFG and adopts it
// (the caller must not modify data afterwards; the typed lookup views
// are decoded from it in one pass). The validation pins every encoding
// choice: section sizes must account for the input exactly, the node
// index must be the eytzinger permutation of a strictly ascending
// address set, edge blocks must be contiguous in slot order with
// ascending successors and ascending per-edge signature sets, and path
// keys must ascend. Accepted input is therefore canonical: re-encoding
// the decoded graph reproduces data byte for byte.
func LoadFlat(data []byte) (*Flat, error) {
	if len(data) < flatHeaderSize || string(data[:len(flatMagic)]) != flatMagic {
		return nil, fmt.Errorf("itc: flat: bad magic")
	}
	hdr := data[len(flatMagic):]
	nNodes := binary.LittleEndian.Uint64(hdr[0:])
	nEdges := binary.LittleEndian.Uint64(hdr[8:])
	nSigs := binary.LittleEndian.Uint64(hdr[16:])
	nPaths := binary.LittleEndian.Uint64(hdr[24:])
	if nNodes > flatLimit || nEdges > flatLimit || nSigs > flatLimit || nPaths > flatLimit {
		return nil, fmt.Errorf("itc: flat: section count out of range")
	}
	n, e, s, p := int(nNodes), int(nEdges), int(nSigs), int(nPaths)
	want := flatHeaderSize + n*8 + n*8 + e*8 + e*4 + (e+1)*4 + s*8 + p*8
	if len(data) != want {
		return nil, fmt.Errorf("itc: flat: size %d, want %d", len(data), want)
	}
	f := sliceFlat(data, n, e, s, p)

	// Node index: in-order walk of the eytzinger tree must strictly
	// ascend (which also pins the permutation itself).
	slots := eytzSlots(n)
	var prev uint64
	for pos, k := range slots {
		v := f.eytz[k]
		if pos > 0 && v <= prev {
			return nil, fmt.Errorf("itc: flat: node index not ascending")
		}
		prev = v
	}
	// Edge blocks: contiguous prefix sums in slot order; successors
	// strictly ascending within a node.
	off := 0
	for k := 0; k < n; k++ {
		r := f.ref[k]
		start, cnt := int(uint32(r)), int(uint32(r>>32))
		if start != off || off+cnt > e {
			return nil, fmt.Errorf("itc: flat: edge refs not contiguous")
		}
		for j := 1; j < cnt; j++ {
			if f.succ[start+j] <= f.succ[start+j-1] {
				return nil, fmt.Errorf("itc: flat: successors not ascending")
			}
		}
		off += cnt
	}
	if off != e {
		return nil, fmt.Errorf("itc: flat: edge refs cover %d of %d edges", off, e)
	}
	// Signature index: exact prefix sums with ascending per-edge sets.
	if f.sigIdx[0] != 0 || int(f.sigIdx[e]) != s {
		return nil, fmt.Errorf("itc: flat: signature index bounds")
	}
	for i := 0; i < e; i++ {
		lo, hi := int(f.sigIdx[i]), int(f.sigIdx[i+1])
		if lo > hi || hi > s {
			return nil, fmt.Errorf("itc: flat: signature index not monotonic")
		}
		for j := lo + 1; j < hi; j++ {
			if f.sig[j] <= f.sig[j-1] {
				return nil, fmt.Errorf("itc: flat: signatures not ascending")
			}
		}
	}
	for i := 1; i < p; i++ {
		if f.path[i] <= f.path[i-1] {
			return nil, fmt.Errorf("itc: flat: path keys not ascending")
		}
	}
	return f, nil
}

// graphFromFlat reconstructs the mutable training-side Graph from a
// validated arena.
func graphFromFlat(f *Flat) *Graph {
	n := f.nNodes
	g := &Graph{
		nodes: make([]uint64, n),
		succs: make([][]uint64, n),
		meta:  make([][]edgeMeta, n),
		Edges: f.nEdges,
	}
	slots := eytzSlots(n)
	for pos, k := range slots {
		g.nodes[pos] = f.eytz[k]
		r := f.ref[k]
		start, cnt := int(uint32(r)), int(uint32(r>>32))
		succs := make([]uint64, cnt)
		meta := make([]edgeMeta, cnt)
		for j := 0; j < cnt; j++ {
			e := start + j
			succs[j] = f.succ[e]
			lo, hi := int(f.sigIdx[e]), int(f.sigIdx[e+1])
			var sigs []uint64
			if hi > lo {
				sigs = make([]uint64, hi-lo)
				copy(sigs, f.sig[lo:hi])
			}
			meta[j] = edgeMeta{count: f.cnt[e], sigs: sigs}
		}
		g.succs[pos] = succs
		g.meta[pos] = meta
	}
	if len(f.path) > 0 {
		g.paths = make(map[uint64]struct{}, len(f.path))
		for _, p := range f.path {
			g.paths[p] = struct{}{}
		}
	}
	return g
}

// sortU64 sorts in place without the sort package's closure allocation
// (heapsort: the inputs are small and cold).
func sortU64(a []uint64) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftU64(a, i, n)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		siftU64(a, 0, i)
	}
}

func siftU64(a []uint64, i, n int) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && a[c+1] > a[c] {
			c++
		}
		if a[i] >= a[c] {
			return
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
}
