package itc_test

import (
	"errors"
	"testing"

	"flowguard/internal/asm"
	"flowguard/internal/cfg"
	"flowguard/internal/cpu"
	"flowguard/internal/isa"
	"flowguard/internal/itc"
	"flowguard/internal/module"
	"flowguard/internal/trace"
	"flowguard/internal/trace/ipt"
)

const ctlDefault = ipt.CtlTraceEn | ipt.CtlBranchEn | ipt.CtlUser | ipt.CtlToPA

// figure4Program mirrors Figure 4 of the paper: the IT-BB "fork" holds a
// conditional; the not-taken side performs an indirect call through a
// table, the taken side returns directly. Collapsing the conditional
// merges the call-target set with the return-target set on fork's
// outgoing ITC edges (AIA derogation); the TNT labels restore the split.
//
// Inputs are passed through the "input" data words (selector, table
// offset) so the toolchain's argument-materialization invariant holds.
func figure4Program(t *testing.T) *module.AddressSpace {
	t.Helper()
	b := asm.NewModule("fig4")
	b.DataSpace("input", 16, false)
	b.FuncTable("tblA", []string{"bb4", "bb5"}, false)
	b.FuncTable("entrytbl", []string{"fork"}, false)

	main := b.Func("main", 0, true)
	b.SetEntry("main")
	main.AddrOf(isa.R8, "input")
	main.Ld(isa.R0, isa.R8, 0) // selector
	main.Ld(isa.R1, isa.R8, 8) // table byte offset
	main.AddrOf(isa.R6, "entrytbl")
	main.Ld(isa.R6, isa.R6, 0)
	main.CallR(isa.R6) // -> fork; the return lands at "mainRet"
	main.Halt()

	fork := b.Func("fork", 2, false)
	fork.Cmpi(isa.R0, 0)
	fork.Jcc(isa.NE, "right") // BB-1's conditional fork
	// Not-taken side (BB-2): indirect call through tblA.
	fork.AddrOf(isa.R6, "tblA")
	fork.Add(isa.R6, isa.R1)
	fork.Ld(isa.R6, isa.R6, 0)
	fork.Movi(isa.R0, 1)
	fork.CallR(isa.R6)
	fork.Ret()
	// Taken side (BB-3): plain return.
	fork.Label("right")
	fork.Ret()

	b.Func("bb4", 0, false).Movi(isa.R0, 4).Ret()
	bb5 := b.Func("bb5", 1, false)
	bb5.Addi(isa.R0, 50).Ret()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	as, err := module.Load(m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func buildBoth(t *testing.T, as *module.AddressSpace) (*cfg.Graph, *itc.Graph) {
	t.Helper()
	g, err := cfg.Build(as)
	if err != nil {
		t.Fatal(err)
	}
	return g, itc.FromCFG(g)
}

func TestNodesAreIndirectTargets(t *testing.T) {
	as := figure4Program(t)
	g, ig := buildBoth(t, as)
	if ig.NumNodes() == 0 || ig.Edges == 0 {
		t.Fatalf("empty ITC-CFG: %v", ig)
	}
	// Every node must be the target of some indirect edge in the O-CFG.
	isTarget := map[uint64]bool{}
	for _, b := range g.Blocks {
		for _, tt := range b.IndTargets {
			isTarget[tt] = true
		}
	}
	for _, n := range ig.Nodes() {
		if !isTarget[n] {
			t.Errorf("ITC node %s is not an indirect target", as.SymbolFor(n))
		}
	}
	for _, name := range []string{"fork", "bb4", "bb5"} {
		a, _ := as.Exec.SymbolAddr(name)
		if !ig.HasNode(a) {
			t.Errorf("%s missing from ITC nodes", name)
		}
	}
}

// TestAIADerogation reproduces Figure 4 locally: the fork node's ITC
// out-degree (call targets merged with return targets across the
// collapsed conditional) exceeds every single O-CFG site reachable from
// it.
func TestAIADerogation(t *testing.T) {
	as := figure4Program(t)
	g, ig := buildBoth(t, as)
	fork, _ := as.Exec.SymbolAddr("fork")

	outdeg := 0
	for _, d := range allTargets(g) {
		if ig.HasEdge(fork, d) {
			outdeg++
		}
	}
	// Sites inside fork: the CALLR and the two RETs.
	maxSite := 0
	for _, s := range g.Sites {
		if s.Fn.Entry == fork {
			if len(s.Targets) > maxSite {
				maxSite = len(s.Targets)
			}
		}
	}
	if maxSite == 0 {
		t.Fatal("no indirect sites in fork")
	}
	if outdeg <= maxSite {
		t.Errorf("fork ITC out-degree %d <= max site set %d; expected derogation (Figure 4)", outdeg, maxSite)
	}
}

func allTargets(g *cfg.Graph) []uint64 {
	set := map[uint64]bool{}
	for _, b := range g.Blocks {
		for _, t := range b.IndTargets {
			set[t] = true
		}
	}
	out := make([]uint64, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	return out
}

// runTraced pokes the input words, executes the program with IPT tracing
// and returns the TIP window plus ground truth.
func runTraced(t *testing.T, as *module.AddressSpace, selector, tblOff uint64) ([]ipt.TIPRecord, []trace.Branch) {
	t.Helper()
	input, ok := as.Exec.SymbolAddr("input")
	if !ok {
		t.Fatal("no input symbol")
	}
	if err := as.WriteU64(input, selector); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteU64(input+8, tblOff); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(as)
	tr := ipt.NewTracer(ipt.NewToPA(1 << 20))
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlDefault); err != nil {
		t.Fatal(err)
	}
	var truth []trace.Branch
	c.Branch = trace.MultiSink{tr, trace.SinkFunc(func(b trace.Branch) { truth = append(truth, b) })}
	if _, err := c.Run(1_000_000); !errors.Is(err, cpu.ErrHalted) {
		t.Fatalf("Run: %v (pc=%#x)", err, c.PC)
	}
	tr.Flush()
	evs, err := ipt.DecodeFast(tr.Out.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return ipt.ExtractTIPs(evs), truth
}

// TestConsecutiveTIPsAreEdges is the §4.2 correctness theorem: for any
// two consecutive TIP packets traced by IPT, there must be an edge in the
// ITC-CFG.
func TestConsecutiveTIPsAreEdges(t *testing.T) {
	as := figure4Program(t)
	_, ig := buildBoth(t, as)
	for _, seed := range []struct{ sel, off uint64 }{{0, 0}, {0, 8}, {1, 0}} {
		tips, _ := runTraced(t, as, seed.sel, seed.off)
		if len(tips) < 2 {
			t.Fatalf("seed %v: only %d TIPs", seed, len(tips))
		}
		for i := 0; i+1 < len(tips); i++ {
			if !ig.HasEdge(tips[i].IP, tips[i+1].IP) {
				t.Errorf("seed %v: consecutive TIPs %s -> %s not an ITC edge",
					seed, as.SymbolFor(tips[i].IP), as.SymbolFor(tips[i+1].IP))
			}
		}
	}
}

func trainAll(t *testing.T, as *module.AddressSpace, ig *itc.Graph) {
	t.Helper()
	for _, seed := range []struct{ sel, off uint64 }{{0, 0}, {0, 8}, {1, 0}} {
		tips, _ := runTraced(t, as, seed.sel, seed.off)
		for i := 0; i+1 < len(tips); i++ {
			if !ig.Observe(tips[i].IP, tips[i+1].IP, tips[i+1].TNTSig) {
				t.Fatalf("trained edge %s->%s not in ITC-CFG",
					as.SymbolFor(tips[i].IP), as.SymbolFor(tips[i+1].IP))
			}
		}
	}
	ig.RebuildCache()
}

// TestTrainingRestoresPrecision mirrors §4.3: TNT labels must separate
// the call-side targets (not-taken fork) from the return-side target
// (taken fork), and drop the TNT-aware AIA below the plain ITC AIA.
func TestTrainingRestoresPrecision(t *testing.T) {
	as := figure4Program(t)
	_, ig := buildBoth(t, as)
	trainAll(t, as, ig)

	plain := ig.AIA()
	tnt := ig.AIAWithTNT()
	if tnt >= plain {
		t.Errorf("AIA with TNT %.2f >= plain %.2f; TNT labels should restore precision", tnt, plain)
	}
	cs := ig.Credits()
	if cs.HighCredit == 0 || cs.Ratio == 0 {
		t.Fatalf("no high-credit edges after training: %+v", cs)
	}

	fork, _ := as.Exec.SymbolAddr("fork")
	bb4, _ := as.Exec.SymbolAddr("bb4")
	notTaken := ipt.TNTSigAppend(ipt.TNTSigEmpty, false)
	taken := ipt.TNTSigAppend(ipt.TNTSigEmpty, true)

	l4 := ig.Lookup(fork, bb4, notTaken)
	if !l4.Exists || !l4.HighCredit || !l4.SigMatch {
		t.Errorf("fork->bb4 with not-taken TNT: %+v, want trained match", l4)
	}
	if l4wrong := ig.Lookup(fork, bb4, taken); l4wrong.SigMatch {
		t.Error("fork->bb4 matched the taken TNT signature; forking info lost")
	}
	// The taken path returns to mainRet: find that edge and verify the
	// not-taken signature does NOT match it even though the plain ITC
	// edge exists.
	var mainRet uint64
	tips, _ := runTraced(t, as, 1, 0)
	mainRet = tips[len(tips)-1].IP
	l6 := ig.Lookup(fork, mainRet, notTaken)
	if !l6.Exists {
		t.Fatal("fork->mainRet edge missing from ITC-CFG")
	}
	if l6.SigMatch {
		t.Error("fork->mainRet matched the not-taken TNT signature; derogation not repaired")
	}
	if lOK := ig.Lookup(fork, mainRet, taken); !lOK.SigMatch {
		t.Errorf("fork->mainRet with taken TNT: %+v, want trained match", lOK)
	}
}

func TestLookupAndCache(t *testing.T) {
	as := figure4Program(t)
	_, ig := buildBoth(t, as)
	trainAll(t, as, ig)
	tips, _ := runTraced(t, as, 0, 0)
	src, dst, sig := tips[0].IP, tips[1].IP, tips[1].TNTSig

	l := ig.Lookup(src, dst, sig)
	if !l.Exists || !l.HighCredit || !l.SigMatch || l.Count == 0 {
		t.Fatalf("Lookup(trained edge) = %+v", l)
	}
	hit, sigOK := ig.CacheLookup(src, dst, sig)
	if !hit || !sigOK {
		t.Fatalf("CacheLookup(trained edge) = %v, %v", hit, sigOK)
	}
	if hit, _ := ig.CacheLookup(src, 0xdead, sig); hit {
		t.Error("cache hit for absent edge")
	}
	if l := ig.Lookup(0xdead, dst, sig); l.Exists {
		t.Error("Lookup invented a node")
	}
	if ig.Observe(0xdead, dst, sig) {
		t.Error("Observe accepted an edge outside the graph")
	}
	if ig.MemoryBytes() == 0 {
		t.Error("MemoryBytes = 0")
	}
}

func TestFineGrainedAIA(t *testing.T) {
	as := figure4Program(t)
	g, _ := buildBoth(t, as)
	fine := itc.FineGrainedAIA(g)
	ocfg := g.ComputeStats().AIA
	if fine <= 0 {
		t.Fatalf("fine-grained AIA = %v", fine)
	}
	if fine > ocfg {
		t.Errorf("fine-grained AIA %.2f > O-CFG %.2f; shadow stack must only shrink it", fine, ocfg)
	}
}
