package cfg

import (
	"fmt"
	"sort"

	"flowguard/internal/isa"
	"flowguard/internal/module"
)

// Build disassembles every loaded module and constructs the conservative
// O-CFG.
func Build(as *module.AddressSpace) (*Graph, error) {
	b := &builder{
		g: &Graph{
			AS:      as,
			funcAt:  make(map[uint64]*Function),
			blockAt: make(map[uint64]*Block),
		},
		instrs: make(map[uint64]isa.Instr),
	}
	if err := b.disassemble(); err != nil {
		return nil, err
	}
	b.discoverFunctions()
	b.markAddressTaken()
	b.buildBlocks()
	// BlockContaining binary-searches g.Blocks; establish the invariant
	// before the analyses that depend on it.
	sort.Slice(b.g.Blocks, func(i, j int) bool { return b.g.Blocks[i].Start < b.g.Blocks[j].Start })
	b.computeArities()
	b.resolveCallSites()
	b.tailClosure()
	b.propagateReturns()
	b.finalizeSites()
	return b.g, nil
}

type builder struct {
	g      *Graph
	instrs map[uint64]isa.Instr
	// taken marks address-taken function entries.
	taken map[uint64]bool
	// labelTargets maps a function to the interior addresses its code
	// takes with LEA — the computed-goto / switch-lowering targets that
	// bound the function's indirect jumps.
	labelTargets map[*Function][]uint64
}

func (b *builder) disassemble() error {
	for _, l := range b.g.AS.Mods {
		code := l.Mod.Code
		for off := 0; off+isa.InstrSize <= len(code); off += isa.InstrSize {
			in, err := isa.Decode(code[off:])
			if err != nil {
				return fmt.Errorf("cfg: %s+%#x: %w", l.Mod.Name, off, err)
			}
			b.instrs[l.CodeBase+uint64(off)] = in
		}
	}
	return nil
}

func (b *builder) discoverFunctions() {
	for _, l := range b.g.AS.Mods {
		for _, s := range l.Mod.Symbols {
			if s.Kind != module.SymFunc {
				continue
			}
			f := &Function{
				Name:          l.Mod.Name + "!" + s.Name,
				Mod:           l,
				Entry:         l.CodeBase + s.Off,
				End:           l.CodeBase + s.Off + s.Size,
				DeclaredArity: s.ArgCount,
				AddressTaken:  s.AddressTaken,
			}
			b.g.Funcs = append(b.g.Funcs, f)
			b.g.funcAt[f.Entry] = f
		}
		for _, p := range l.Mod.PLT {
			target, ok := b.g.AS.ResolveSymbol(p.Symbol)
			if !ok {
				continue
			}
			f := &Function{
				Name:      l.Mod.Name + "!" + p.Symbol + "@plt",
				Mod:       l,
				Entry:     l.CodeBase + p.Off,
				End:       l.CodeBase + p.Off + 3*isa.InstrSize,
				IsPLT:     true,
				PLTTarget: target,
			}
			b.g.Funcs = append(b.g.Funcs, f)
			b.g.funcAt[f.Entry] = f
		}
	}
	sort.Slice(b.g.Funcs, func(i, j int) bool { return b.g.Funcs[i].Entry < b.g.Funcs[j].Entry })
}

// markAddressTaken combines three escape channels, as a binary analyzer
// would: symbol-table flags (our toolchain's relocation summary), LEA
// instructions whose target is a function entry, and data relocations
// resolving to function symbols (function-pointer tables).
func (b *builder) markAddressTaken() {
	b.taken = make(map[uint64]bool)
	for _, f := range b.g.Funcs {
		if f.AddressTaken {
			b.taken[f.Entry] = true
		}
	}
	for addr, in := range b.instrs {
		if in.Op != isa.LEA {
			continue
		}
		t := addr + isa.InstrSize + uint64(int64(in.Imm))
		if f, ok := b.g.funcAt[t]; ok && !f.IsPLT {
			b.taken[f.Entry] = true
			f.AddressTaken = true
		}
	}
	for _, l := range b.g.AS.Mods {
		for _, r := range l.Mod.Relocs {
			addr, ok := l.SymbolAddr(r.Symbol)
			if !ok {
				addr, ok = b.g.AS.ResolveSymbol(r.Symbol)
			}
			if !ok {
				continue
			}
			if f, fok := b.g.funcAt[addr]; fok && !f.IsPLT {
				b.taken[f.Entry] = true
				f.AddressTaken = true
			}
		}
		// GOT-bound functions: the loader writes their absolute address
		// into the GOT, from where any code can load it (AddrOf on an
		// imported symbol compiles to a GOT load). As in real binary
		// CFI, every dynamically-bound function must conservatively be
		// treated as address-taken.
		for _, p := range l.Mod.PLT {
			addr, ok := b.g.AS.ResolveSymbol(p.Symbol)
			if !ok {
				continue
			}
			if f, fok := b.g.funcAt[addr]; fok && !f.IsPLT {
				b.taken[f.Entry] = true
				f.AddressTaken = true
			}
		}
	}
}

func (b *builder) buildBlocks() {
	b.labelTargets = make(map[*Function][]uint64)
	for _, f := range b.g.Funcs {
		b.buildFunctionBlocks(f)
	}
}

func (b *builder) buildFunctionBlocks(f *Function) {
	leaders := map[uint64]bool{f.Entry: true}
	for a := f.Entry; a < f.End; a += isa.InstrSize {
		in := b.instrs[a]
		if in.Op == isa.LEA {
			// An address-taken interior label (computed goto): it is a
			// potential indirect-jump target, hence a block leader.
			t := a + isa.InstrSize + uint64(int64(in.Imm))
			if t > f.Entry && t < f.End {
				leaders[t] = true
				b.labelTargets[f] = append(b.labelTargets[f], t)
			}
			continue
		}
		if !in.Op.IsCoFI() {
			continue
		}
		if a+isa.InstrSize < f.End {
			leaders[a+isa.InstrSize] = true
		}
		switch in.Op {
		case isa.JMP, isa.JCC, isa.CALL:
			t := in.BranchTarget(a)
			if t >= f.Entry && t < f.End {
				leaders[t] = true
			}
		}
	}
	starts := make([]uint64, 0, len(leaders))
	for a := range leaders {
		starts = append(starts, a)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	for i, start := range starts {
		limit := f.End
		if i+1 < len(starts) {
			limit = starts[i+1]
		}
		blk := &Block{Start: start, Fn: f}
		end := start
		for a := start; a < limit; a += isa.InstrSize {
			end = a + isa.InstrSize
			in := b.instrs[a]
			if !in.Op.IsCoFI() && in.Op != isa.HALT {
				continue
			}
			blk.TermAddr = a
			next := a + isa.InstrSize
			switch in.Op {
			case isa.JMP:
				blk.Kind = TermJmp
				blk.Next = in.BranchTarget(a)
			case isa.JCC:
				blk.Kind = TermCond
				blk.Taken = in.BranchTarget(a)
				blk.Fall = next
			case isa.CALL:
				blk.Kind = TermCall
				blk.Next = in.BranchTarget(a)
				f.CallSites = append(f.CallSites, &CallSite{Addr: a, RetAddr: next})
			case isa.CALLR:
				blk.Kind = TermIndCall
				f.CallSites = append(f.CallSites, &CallSite{Addr: a, RetAddr: next, Prepared: -1})
			case isa.JMPR:
				blk.Kind = TermIndJmp
			case isa.RET:
				blk.Kind = TermRet
			case isa.SYSCALL:
				blk.Kind = TermSyscall
				blk.Next = next
			case isa.HALT:
				blk.Kind = TermHalt
			}
			break
		}
		blk.End = end
		if blk.TermAddr == 0 && blk.Kind == TermFall {
			// No terminator before the next leader: plain fall-through.
			blk.End = limit
			if limit < f.End {
				blk.Next = limit
			} else {
				// Running off the end of the function: dead end.
				blk.Kind = TermHalt
			}
		}
		f.Blocks = append(f.Blocks, blk)
		b.g.Blocks = append(b.g.Blocks, blk)
		b.g.blockAt[blk.Start] = blk
	}
}

// regReads returns the register-read set of an instruction as a bitmask.
func regReads(in isa.Instr) uint16 {
	rd, rs := uint16(1)<<in.Rd, uint16(1)<<in.Rs
	switch in.Op {
	case isa.MOV, isa.LD, isa.LDB:
		return rs
	case isa.MOVIH, isa.ADDI:
		return rd
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR, isa.CMP, isa.ST, isa.STB:
		return rd | rs
	case isa.CMPI:
		return rd
	case isa.PUSH, isa.JMPR, isa.CALLR:
		return rs
	}
	return 0
}

// regWrites returns the register-write set of an instruction as a bitmask.
func regWrites(in isa.Instr) uint16 {
	switch in.Op {
	case isa.MOV, isa.MOVI, isa.MOVIH, isa.LEA, isa.ADD, isa.SUB, isa.MUL,
		isa.DIV, isa.MOD, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR,
		isa.ADDI, isa.LD, isa.LDB, isa.POP:
		return 1 << in.Rd
	}
	return 0
}

const argMask = 1<<isa.NumArgRegs - 1

// computeArities runs the TypeArmor-style callee-side analysis: a
// backward liveness fixpoint over each function's intra-procedural blocks
// determines which argument registers are read before being written.
// Calls act as barriers (reads past a call may observe return values, not
// arguments), which can only under-estimate the consumed count — the safe
// direction for target-set construction.
func (b *builder) computeArities() {
	for _, f := range b.g.Funcs {
		if f.IsPLT {
			f.Arity = isa.NumArgRegs // stubs forward everything
			continue
		}
		f.Arity = b.calleeArity(f)
	}
}

func (b *builder) calleeArity(f *Function) int {
	type flow struct{ gen, kill uint16 }
	flows := make(map[*Block]flow, len(f.Blocks))
	for _, blk := range f.Blocks {
		var fl flow
		for a := blk.Start; a < blk.End; a += isa.InstrSize {
			in := b.instrs[a]
			if in.Op == isa.CALL || in.Op == isa.CALLR {
				// Barrier: everything after the call is invisible, and
				// the call's own target read (CALLR Rs) is not an
				// argument use.
				fl.kill = argMask
				break
			}
			fl.gen |= regReads(in) &^ fl.kill & argMask
			fl.kill |= regWrites(in) & argMask
		}
		flows[blk] = fl
	}
	liveIn := make(map[*Block]uint16, len(f.Blocks))
	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			blk := f.Blocks[i]
			var out uint16
			var succs []uint64
			succs = blk.DirectSuccs(succs)
			for _, s := range succs {
				if sb, ok := b.g.blockAt[s]; ok && sb.Fn == f {
					out |= liveIn[sb]
				}
			}
			fl := flows[blk]
			in := fl.gen | out&^fl.kill
			if in != liveIn[blk] {
				liveIn[blk] = in
				changed = true
			}
		}
	}
	entry, ok := b.g.blockAt[f.Entry]
	if !ok {
		return 0
	}
	live := liveIn[entry] & argMask
	arity := 0
	for i := 0; i < isa.NumArgRegs; i++ {
		if live&(1<<i) != 0 {
			arity = i + 1
		}
	}
	return arity
}

// sitePrepared over-approximates the argument registers materialized at
// an indirect call site: the TypeArmor caller-side analysis. The
// toolchain invariant (arguments are set up in the call's own basic
// block, with pass-through wrappers forwarding their own arguments)
// bounds the scan to the block prefix plus the enclosing function's
// consumed arguments.
func (b *builder) sitePrepared(f *Function, blk *Block, callAddr uint64) int {
	var written uint16
	for a := blk.Start; a < callAddr; a += isa.InstrSize {
		in := b.instrs[a]
		if in.Op == isa.CALL || in.Op == isa.CALLR {
			// A preceding call clobbers the pending argument window:
			// restart (its return value in R0 may itself be an arg).
			written = 1 << 0 // R0 holds the return value
			continue
		}
		written |= regWrites(in) & argMask
	}
	prepared := 0
	for i := 0; i < isa.NumArgRegs; i++ {
		if written&(1<<i) != 0 {
			prepared = i + 1
		}
	}
	if f.Arity > prepared {
		// Pass-through: the caller's own live arguments remain valid.
		prepared = f.Arity
	}
	return prepared
}

// resolveCallSites fills direct callees, indirect target sets (arity
// filtered over address-taken functions) and the Prepared counts.
func (b *builder) resolveCallSites() {
	var takenFuncs []*Function
	for _, f := range b.g.Funcs {
		if f.AddressTaken && !f.IsPLT {
			takenFuncs = append(takenFuncs, f)
		}
	}
	for _, f := range b.g.Funcs {
		for _, cs := range f.CallSites {
			blk, ok := b.g.BlockContaining(cs.Addr)
			if !ok {
				continue
			}
			if blk.Kind == TermCall {
				cs.Callee = b.g.funcAt[blk.Next]
				continue
			}
			cs.Prepared = b.sitePrepared(f, blk, cs.Addr)
			for _, tf := range takenFuncs {
				if tf.Arity <= cs.Prepared {
					cs.Targets = append(cs.Targets, tf)
				}
			}
		}
	}
}

// tailClosure detects tail calls (paper §4.1): terminal direct jumps to
// other function entries and PLT-stub indirect jumps, closed
// transitively, so returns of the tail callee can be connected to the
// original caller's return address.
func (b *builder) tailClosure() {
	direct := make(map[*Function][]*Function)
	for _, f := range b.g.Funcs {
		if f.IsPLT {
			if tf, ok := b.g.funcAt[f.PLTTarget]; ok {
				direct[f] = append(direct[f], tf)
			}
			continue
		}
		for _, blk := range f.Blocks {
			switch blk.Kind {
			case TermJmp:
				if tf, ok := b.g.funcAt[blk.Next]; ok && tf != f {
					direct[f] = append(direct[f], tf)
				}
			case TermIndJmp:
				if len(b.labelTargets[f]) > 0 {
					// Computed goto within the function: not a tail call.
					continue
				}
				// A non-PLT indirect jump may tail-call any address-taken
				// function (conservative).
				for _, tf := range b.g.Funcs {
					if tf.AddressTaken && !tf.IsPLT {
						direct[f] = append(direct[f], tf)
					}
				}
			}
		}
	}
	for _, f := range b.g.Funcs {
		seen := map[*Function]bool{f: true}
		stack := append([]*Function(nil), direct[f]...)
		for len(stack) > 0 {
			t := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[t] {
				continue
			}
			seen[t] = true
			f.TailTargets = append(f.TailTargets, t)
			stack = append(stack, direct[t]...)
		}
	}
}

// propagateReturns performs call/return matching: for every call site,
// the return address becomes a valid RET target of the callee and of
// every function the callee can tail-jump to.
func (b *builder) propagateReturns() {
	ret := make(map[*Function]map[uint64]bool)
	add := func(f *Function, addr uint64) {
		if ret[f] == nil {
			ret[f] = make(map[uint64]bool)
		}
		ret[f][addr] = true
	}
	addClosure := func(callee *Function, addr uint64) {
		add(callee, addr)
		for _, t := range callee.TailTargets {
			add(t, addr)
		}
	}
	for _, f := range b.g.Funcs {
		for _, cs := range f.CallSites {
			if cs.Callee != nil {
				addClosure(cs.Callee, cs.RetAddr)
				continue
			}
			for _, t := range cs.Targets {
				addClosure(t, cs.RetAddr)
			}
		}
	}
	for _, f := range b.g.Funcs {
		targets := make([]uint64, 0, len(ret[f]))
		for a := range ret[f] {
			targets = append(targets, a)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		f.RetTargets = targets
	}
}

// finalizeSites writes each indirect block's target set and the AIA site
// list. Return addresses and indirect targets become block leaders by
// construction (the instruction after any CoFI is a leader; indirect
// call/jmp targets are function entries).
func (b *builder) finalizeSites() {
	for _, f := range b.g.Funcs {
		siteTargets := make(map[uint64][]uint64)
		for _, cs := range f.CallSites {
			if !cs.Indirect() {
				continue
			}
			ts := make([]uint64, 0, len(cs.Targets))
			for _, t := range cs.Targets {
				ts = append(ts, t.Entry)
			}
			siteTargets[cs.Addr] = ts
		}
		for _, blk := range f.Blocks {
			switch blk.Kind {
			case TermIndCall:
				blk.IndTargets = sortedUnique(siteTargets[blk.TermAddr])
				b.g.Sites = append(b.g.Sites, &IndirectSite{
					Addr: blk.TermAddr, Kind: SiteIndCall, Fn: f, Targets: blk.IndTargets,
				})
			case TermIndJmp:
				var ts []uint64
				switch {
				case f.IsPLT:
					ts = []uint64{f.PLTTarget}
				case len(b.labelTargets[f]) > 0:
					// Computed goto: the jump is bounded by the labels
					// whose addresses the function takes (plus tail-call
					// fan-out if the function also escapes addresses of
					// other functions — covered by the general case when
					// no interior labels exist).
					ts = append(ts, b.labelTargets[f]...)
				default:
					for _, tf := range b.g.Funcs {
						if tf.AddressTaken && !tf.IsPLT {
							ts = append(ts, tf.Entry)
						}
					}
				}
				blk.IndTargets = sortedUnique(ts)
				b.g.Sites = append(b.g.Sites, &IndirectSite{
					Addr: blk.TermAddr, Kind: SiteIndJmp, Fn: f, Targets: blk.IndTargets,
				})
			case TermRet:
				blk.IndTargets = f.RetTargets
				b.g.Sites = append(b.g.Sites, &IndirectSite{
					Addr: blk.TermAddr, Kind: SiteRet, Fn: f, Targets: blk.IndTargets,
				})
			}
		}
	}
	sort.Slice(b.g.Sites, func(i, j int) bool { return b.g.Sites[i].Addr < b.g.Sites[j].Addr })
}

func sortedUnique(ts []uint64) []uint64 {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := ts[:0]
	var last uint64
	for i, t := range ts {
		if i == 0 || t != last {
			out = append(out, t)
		}
		last = t
	}
	return out
}
