package cfg_test

import (
	"errors"
	"testing"

	"flowguard/internal/asm"
	"flowguard/internal/cfg"
	"flowguard/internal/cpu"
	"flowguard/internal/isa"
	"flowguard/internal/module"
	"flowguard/internal/trace"
)

// fixture builds a two-module program exercising every analysis feature:
// PLT calls, indirect calls through a table, tail calls, and returns.
func fixture(t *testing.T) *module.AddressSpace {
	t.Helper()

	lib := asm.NewModule("libx")
	// handler0(a) and handler1(a, b): different arities, both
	// address-taken via the dispatch table.
	h0 := lib.Func("handler0", 1, true)
	h0.Addi(isa.R0, 100).Ret()
	h1 := lib.Func("handler1", 2, true)
	h1.Add(isa.R0, isa.R1).Ret()
	// helper: exported, called via PLT from the executable.
	helper := lib.Func("helper", 1, true)
	helper.Addi(isa.R0, 1).Ret()
	// tail_a tail-jumps to tail_b: tail_b's ret returns to tail_a's
	// caller.
	ta := lib.Func("tail_a", 1, true)
	ta.Addi(isa.R0, 10)
	ta.TailJmp("tail_b")
	tb := lib.Func("tail_b", 1, true)
	tb.Addi(isa.R0, 20).Ret()
	libm, err := lib.Assemble()
	if err != nil {
		t.Fatal(err)
	}

	app := asm.NewModule("app").Needs("libx")
	app.FuncTable("handlers", []string{"h_local0", "h_local2"}, false)
	main := app.Func("main", 0, true)
	app.SetEntry("main")
	// Direct PLT call.
	main.Movi(isa.R0, 1)
	main.Call("helper")
	// Indirect call, two args prepared.
	main.AddrOf(isa.R6, "handlers")
	main.Ld(isa.R6, isa.R6, 8)
	main.Movi(isa.R0, 2)
	main.Movi(isa.R1, 3)
	main.CallR(isa.R6)
	// Tail-call chain via PLT.
	main.Movi(isa.R0, 4)
	main.Call("tail_a")
	main.Halt()
	l0 := app.Func("h_local0", 0, false)
	l0.Movi(isa.R0, 7).Ret()
	l2 := app.Func("h_local2", 2, false)
	l2.Add(isa.R0, isa.R1).Ret()
	appm, err := app.Assemble()
	if err != nil {
		t.Fatal(err)
	}

	as, err := module.Load(appm, map[string]*module.Module{"libx": libm}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func findFunc(t *testing.T, g *cfg.Graph, name string) *cfg.Function {
	t.Helper()
	for _, f := range g.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("function %q not in graph", name)
	return nil
}

func TestArityAnalysisMatchesDeclared(t *testing.T) {
	g, err := cfg.Build(fixture(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range g.Funcs {
		if f.IsPLT || f.Name == "app!main" {
			continue
		}
		if f.Arity > f.DeclaredArity {
			t.Errorf("%s: computed arity %d exceeds declared %d (unsafe over-estimate)",
				f.Name, f.Arity, f.DeclaredArity)
		}
	}
	// The leaf handlers read exactly their declared registers, so the
	// liveness analysis should be exact on them.
	for name, want := range map[string]int{
		"libx!handler0": 1, "libx!handler1": 2,
		"app!h_local0": 0, "app!h_local2": 2,
		"libx!tail_a": 1, "libx!tail_b": 1,
	} {
		if f := findFunc(t, g, name); f.Arity != want {
			t.Errorf("%s arity = %d, want %d", name, f.Arity, want)
		}
	}
}

func TestIndirectCallTargetsArityFiltered(t *testing.T) {
	g, err := cfg.Build(fixture(t))
	if err != nil {
		t.Fatal(err)
	}
	main := findFunc(t, g, "app!main")
	var ind *cfg.CallSite
	for _, cs := range main.CallSites {
		if cs.Indirect() {
			ind = cs
		}
	}
	if ind == nil {
		t.Fatal("no indirect call site in main")
	}
	if ind.Prepared != 2 {
		t.Errorf("prepared = %d, want 2", ind.Prepared)
	}
	names := map[string]bool{}
	for _, f := range ind.Targets {
		names[f.Name] = true
	}
	// Address-taken functions with arity <= 2: the two table handlers,
	// plus the GOT-bound imports (helper, tail_a) — dynamically bound
	// function addresses escape into the GOT, so conservative binary CFI
	// must admit them (as binCFI does for exported functions).
	for _, want := range []string{"app!h_local0", "app!h_local2", "libx!helper"} {
		if !names[want] {
			t.Errorf("target set missing %s (have %v)", want, names)
		}
	}
	// Functions whose address never escapes (main is only the entry
	// point) must not be indirect targets.
	if names["app!main"] {
		t.Errorf("target set leaked non-address-taken main: %v", names)
	}
}

func TestReturnMatchingAndTailCalls(t *testing.T) {
	as := fixture(t)
	g, err := cfg.Build(as)
	if err != nil {
		t.Fatal(err)
	}
	main := findFunc(t, g, "app!main")

	// helper returns to the address after main's first CALL.
	helper := findFunc(t, g, "libx!helper")
	var helperRet, tailARet uint64
	for _, cs := range main.CallSites {
		if cs.Callee == nil {
			continue
		}
		switch cs.Callee.Name {
		case "app!helper@plt":
			helperRet = cs.RetAddr
		case "app!tail_a@plt":
			tailARet = cs.RetAddr
		}
	}
	if helperRet == 0 || tailARet == 0 {
		t.Fatalf("PLT call sites not found in main: %+v", main.CallSites)
	}
	if !contains(helper.RetTargets, helperRet) {
		t.Errorf("helper ret targets %v missing call-site return %#x", helper.RetTargets, helperRet)
	}

	// tail_b is only ever tail-jumped from tail_a, so its return target
	// must be main's tail_a call site return address (paper §4.1 tail
	// call handling).
	tailB := findFunc(t, g, "libx!tail_b")
	if !contains(tailB.RetTargets, tailARet) {
		t.Errorf("tail_b ret targets %v missing tail-propagated %#x", tailB.RetTargets, tailARet)
	}

	// The PLT stub fans out to the interposed definition.
	stub := findFunc(t, g, "app!helper@plt")
	if !stub.IsPLT {
		t.Fatal("helper@plt not marked as PLT")
	}
	want, _ := as.ResolveSymbol("helper")
	if stub.PLTTarget != want {
		t.Errorf("PLT target = %#x, want %#x", stub.PLTTarget, want)
	}
}

// TestNoFalsePositives is the conservatism guarantee of §4.1: every edge
// the program actually executes must be present in the O-CFG.
func TestNoFalsePositives(t *testing.T) {
	as := fixture(t)
	g, err := cfg.Build(as)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(as)
	var violations []trace.Branch
	c.Branch = trace.SinkFunc(func(b trace.Branch) {
		if !g.ContainsEdge(b.Source, b.Target, b.Class) {
			violations = append(violations, b)
		}
	})
	if _, err := c.Run(100000); !errors.Is(err, cpu.ErrHalted) {
		t.Fatalf("Run: %v", err)
	}
	for _, v := range violations {
		t.Errorf("executed edge not in O-CFG: %v %s -> %s",
			v.Class, as.SymbolFor(v.Source), as.SymbolFor(v.Target))
	}
}

func TestContainsEdgeRejectsForeignEdges(t *testing.T) {
	as := fixture(t)
	g, err := cfg.Build(as)
	if err != nil {
		t.Fatal(err)
	}
	helper := findFunc(t, g, "libx!helper")
	main := findFunc(t, g, "app!main")
	// A return from helper into main's entry is not a matched return.
	retAddr := helper.End - isa.InstrSize
	if g.ContainsEdge(retAddr, main.Entry, isa.CoFIRet) {
		t.Error("ContainsEdge accepted an unmatched return edge")
	}
	// An indirect "call" from main's entry (not a CALLR instruction).
	if g.ContainsEdge(main.Entry, helper.Entry, isa.CoFIIndirect) {
		t.Error("ContainsEdge accepted an indirect edge from a non-indirect instruction")
	}
}

func TestStats(t *testing.T) {
	g, err := cfg.Build(fixture(t))
	if err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	if s.Libraries != 1 {
		t.Errorf("libraries = %d, want 1", s.Libraries)
	}
	if s.ExecBlocks == 0 || s.LibBlocks == 0 {
		t.Errorf("blocks: exec=%d lib=%d, want both > 0", s.ExecBlocks, s.LibBlocks)
	}
	if s.AIA <= 0 {
		t.Errorf("AIA = %v, want > 0", s.AIA)
	}
	if s.Sites == 0 {
		t.Error("no indirect sites found")
	}
}

func TestBlockContaining(t *testing.T) {
	g, err := cfg.Build(fixture(t))
	if err != nil {
		t.Fatal(err)
	}
	main := findFunc(t, g, "app!main")
	b, ok := g.BlockContaining(main.Entry + isa.InstrSize)
	if !ok || b.Fn != main {
		t.Fatalf("BlockContaining(main+8) = %v, %v", b, ok)
	}
	if _, ok := g.BlockContaining(0x10); ok {
		t.Error("BlockContaining(unmapped) succeeded")
	}
}

func contains(xs []uint64, v uint64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
