package cfg_test

import (
	"errors"
	"testing"

	"flowguard/internal/asm"
	"flowguard/internal/cfg"
	"flowguard/internal/cpu"
	"flowguard/internal/isa"
	"flowguard/internal/itc"
	"flowguard/internal/module"
	"flowguard/internal/trace"
	"flowguard/internal/trace/ipt"
)

// switchProgram lowers a computed-goto switch: the dispatcher takes the
// address of each case label with LEA and jumps indirectly — the idiom
// compilers emit for address-taken labels.
func switchProgram(t *testing.T) *module.AddressSpace {
	t.Helper()
	b := asm.NewModule("switchy")
	b.DataSpace("input", 8, false)
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	f.AddrOf(isa.R8, "input")
	f.Ld(isa.R0, isa.R8, 0) // selector
	f.Call("dispatch")
	f.Halt()

	d := b.Func("dispatch", 1, false)
	d.Cmpi(isa.R0, 0)
	d.Jcc(isa.NE, "try1")
	d.AddrOfLabel(isa.R6, "case0")
	d.Jmp("go")
	d.Label("try1")
	d.Cmpi(isa.R0, 1)
	d.Jcc(isa.NE, "try2")
	d.AddrOfLabel(isa.R6, "case1")
	d.Jmp("go")
	d.Label("try2")
	d.AddrOfLabel(isa.R6, "caseN")
	d.Label("go")
	d.JmpR(isa.R6) // the computed goto
	d.Label("case0")
	d.Movi(isa.R0, 100)
	d.Ret()
	d.Label("case1")
	d.Movi(isa.R0, 200)
	d.Ret()
	d.Label("caseN")
	d.Movi(isa.R0, 999)
	d.Ret()

	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	as, err := module.Load(m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return as
}

// TestComputedGotoTargets: the indirect jump's target set is exactly the
// LEA'd labels, not the whole address-taken population.
func TestComputedGotoTargets(t *testing.T) {
	as := switchProgram(t)
	g, err := cfg.Build(as)
	if err != nil {
		t.Fatal(err)
	}
	var site *cfg.IndirectSite
	for _, s := range g.Sites {
		if s.Kind == cfg.SiteIndJmp {
			site = s
		}
	}
	if site == nil {
		t.Fatal("no indirect-jump site found")
	}
	if len(site.Targets) != 3 {
		t.Fatalf("jump targets = %d, want the 3 case labels", len(site.Targets))
	}
	dispatch, _ := as.Exec.SymbolAddr("dispatch")
	for _, tgt := range site.Targets {
		if tgt <= dispatch {
			t.Errorf("target %#x not an interior label of dispatch", tgt)
		}
	}
}

// TestComputedGotoNoFalsePositives: all three selector values execute
// inside the O-CFG, consecutive TIPs stay in the ITC-CFG, and the case
// blocks are IT-BBs.
func TestComputedGotoNoFalsePositives(t *testing.T) {
	as := switchProgram(t)
	g, err := cfg.Build(as)
	if err != nil {
		t.Fatal(err)
	}
	ig := itc.FromCFG(g)
	input, _ := as.Exec.SymbolAddr("input")
	for sel := uint64(0); sel < 3; sel++ {
		if err := as.WriteU64(input, sel); err != nil {
			t.Fatal(err)
		}
		c := cpu.New(as)
		tr := ipt.NewTracer(ipt.NewToPA(1 << 20))
		if err := tr.WriteMSR(ipt.MSRRTITCtl, ipt.CtlTraceEn|ipt.CtlBranchEn|ipt.CtlUser|ipt.CtlToPA); err != nil {
			t.Fatal(err)
		}
		bad := 0
		c.Branch = trace.MultiSink{tr, trace.SinkFunc(func(br trace.Branch) {
			if bad < 3 && !g.ContainsEdge(br.Source, br.Target, br.Class) {
				bad++
				t.Errorf("sel %d: edge not in O-CFG: %v %s -> %s",
					sel, br.Class, as.SymbolFor(br.Source), as.SymbolFor(br.Target))
			}
		})}
		if _, err := c.Run(10000); !errors.Is(err, cpu.ErrHalted) {
			t.Fatalf("sel %d: %v", sel, err)
		}
		tr.Flush()
		evs, err := ipt.DecodeFast(tr.Out.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		tips := ipt.ExtractTIPs(evs)
		for i := 0; i+1 < len(tips); i++ {
			if !ig.HasEdge(tips[i].IP, tips[i+1].IP) {
				t.Errorf("sel %d: TIP pair not an ITC edge: %s -> %s",
					sel, as.SymbolFor(tips[i].IP), as.SymbolFor(tips[i+1].IP))
			}
		}
	}
}

// TestComputedGotoHijackCaught: a jump to a non-label interior address
// violates the O-CFG (the precision computed-goto bounding buys).
func TestComputedGotoHijackCaught(t *testing.T) {
	as := switchProgram(t)
	g, err := cfg.Build(as)
	if err != nil {
		t.Fatal(err)
	}
	dispatch, _ := as.Exec.SymbolAddr("dispatch")
	// Find the JMPR instruction.
	var jmpr uint64
	for _, s := range g.Sites {
		if s.Kind == cfg.SiteIndJmp {
			jmpr = s.Addr
		}
	}
	// A jump to dispatch+8 (not a taken label) must be rejected.
	if g.ContainsEdge(jmpr, dispatch+isa.InstrSize, isa.CoFIIndirect) {
		t.Error("O-CFG accepted a jump to a non-label interior address")
	}
}
