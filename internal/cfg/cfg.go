// Package cfg implements the offline static binary analysis of §4.1: it
// disassembles the loaded executable and every shared library, recovers
// functions and basic blocks, and builds the conservative original CFG
// (O-CFG) that the ITC-CFG reconstruction and the slow path consume.
//
// The analysis mirrors the paper's Dyninst-plugin pipeline:
//
//   - intra-module CFGs from disassembly (exact here: fixed-width ISA),
//   - inter-module edges only through PLT stubs (indirect jumps bound by
//     the loader with DT_NEEDED-order symbol interposition and VDSO
//     precedence) and the corresponding returns,
//   - indirect-call target sets restricted by a TypeArmor-style use-def /
//     liveness arity analysis over address-taken functions,
//   - return instructions connected to the valid return addresses after
//     call sites (call/return matching),
//   - tail calls detected by following terminal jumps out of functions and
//     propagating the caller's return addresses to the tail callee.
//
// The CFG is conservative: indirect target sets over-approximate, so
// runtime checking of legitimate flow never raises a false positive.
package cfg

import (
	"fmt"
	"sort"

	"flowguard/internal/isa"
	"flowguard/internal/module"
)

// TermKind classifies how a basic block ends.
type TermKind uint8

// Block terminator kinds.
const (
	TermFall    TermKind = iota // runs into the next leader
	TermJmp                     // direct jump
	TermCond                    // conditional branch
	TermCall                    // direct call
	TermIndCall                 // indirect call (CALLR)
	TermIndJmp                  // indirect jump (JMPR)
	TermRet                     // return
	TermSyscall                 // far transfer, resumes at fall-through
	TermHalt                    // no successors
)

var termNames = [...]string{
	TermFall: "fall", TermJmp: "jmp", TermCond: "cond", TermCall: "call",
	TermIndCall: "indcall", TermIndJmp: "indjmp", TermRet: "ret",
	TermSyscall: "syscall", TermHalt: "halt",
}

func (k TermKind) String() string { return termNames[k] }

// Block is one basic block, identified by its absolute start address.
type Block struct {
	Start, End uint64
	Fn         *Function
	Kind       TermKind
	// TermAddr is the address of the terminating CoFI (End-8) when Kind
	// is not TermFall.
	TermAddr uint64

	// Direct successor structure. For TermCond, Taken/Fall are the two
	// targets (the taken edge corresponds to TNT bit 1). For TermJmp,
	// TermCall and TermSyscall, Next is the single direct successor
	// (callee entry for calls, fall-through for syscalls). For TermFall,
	// Next is the next leader.
	Taken, Fall uint64
	Next        uint64

	// IndTargets lists the conservatively resolved targets of an
	// indirect terminator (TermIndCall/TermIndJmp: function or table
	// entries; TermRet: valid return addresses). Sorted ascending.
	IndTargets []uint64
}

// DirectSuccs appends the block's direct-edge successors to dst.
// Direct edges are the ones IPT never reports: following them produces no
// packet, which is exactly why the ITC-CFG collapses them (§4.2).
func (b *Block) DirectSuccs(dst []uint64) []uint64 {
	switch b.Kind {
	case TermFall, TermJmp, TermCall, TermSyscall:
		dst = append(dst, b.Next)
	case TermCond:
		dst = append(dst, b.Taken, b.Fall)
	}
	return dst
}

// HasIndirectTerm reports whether the block ends in a TIP-producing
// branch.
func (b *Block) HasIndirectTerm() bool {
	return b.Kind == TermIndCall || b.Kind == TermIndJmp || b.Kind == TermRet
}

// CallSite is one call instruction (direct or indirect) inside a
// function.
type CallSite struct {
	Addr    uint64
	RetAddr uint64
	// Callee is the direct callee (possibly a PLT stub function); nil
	// for indirect sites.
	Callee *Function
	// Targets holds the resolved callee set of an indirect site.
	Targets []*Function
	// Prepared is the over-approximated count of argument registers set
	// up at this site (TypeArmor forward analysis).
	Prepared int
}

// Indirect reports whether the site is an indirect call.
func (c *CallSite) Indirect() bool { return c.Callee == nil }

// Function is one recovered function (including synthesized PLT-stub
// functions).
type Function struct {
	Name  string
	Mod   *module.Loaded
	Entry uint64
	End   uint64
	// Arity is the computed number of argument registers consumed
	// (liveness at entry), the TypeArmor callee-side signature.
	Arity int
	// DeclaredArity is the toolchain ground truth from the symbol table,
	// used only to validate the analysis (never by enforcement).
	DeclaredArity int
	// AddressTaken marks functions whose address escapes; only these are
	// legal indirect-call targets.
	AddressTaken bool
	// IsPLT marks synthesized PLT-stub functions.
	IsPLT bool
	// PLTTarget is the loader-bound target address of a PLT stub.
	PLTTarget uint64

	Blocks    []*Block
	CallSites []*CallSite

	// TailTargets lists functions reached from this one via terminal
	// jumps (tail calls), including PLT stub fan-out.
	TailTargets []*Function

	// RetTargets is the set of valid return addresses for this
	// function's RET instructions (call/return matching plus tail-call
	// propagation), sorted ascending.
	RetTargets []uint64
}

// SiteKind classifies indirect-branch instructions for AIA accounting.
type SiteKind uint8

// Indirect site kinds.
const (
	SiteIndCall SiteKind = iota
	SiteIndJmp
	SiteRet
)

func (k SiteKind) String() string {
	switch k {
	case SiteIndCall:
		return "indcall"
	case SiteIndJmp:
		return "indjmp"
	default:
		return "ret"
	}
}

// IndirectSite is one indirect branch instruction with its allowed target
// set — the unit over which AIA (average indirect targets allowed, §4.3)
// is computed.
type IndirectSite struct {
	Addr    uint64
	Kind    SiteKind
	Fn      *Function
	Targets []uint64 // sorted ascending
}

// Graph is the conservative O-CFG over the whole address space.
type Graph struct {
	AS    *module.AddressSpace
	Funcs []*Function
	// Blocks is sorted by start address.
	Blocks []*Block
	// Sites lists every indirect branch instruction.
	Sites []*IndirectSite

	funcAt  map[uint64]*Function
	blockAt map[uint64]*Block
}

// Synthetic assembles a Graph directly from hand- or generator-built
// blocks, bypassing binary analysis: conformance suites use it to drive
// the ITC-CFG machinery over randomized topologies that no real program
// would compile to. Blocks are sorted by start address and indexed; no
// function or site information is derived.
func Synthetic(blocks []*Block) *Graph {
	g := &Graph{
		Blocks:  append([]*Block(nil), blocks...),
		funcAt:  make(map[uint64]*Function),
		blockAt: make(map[uint64]*Block, len(blocks)),
	}
	sort.Slice(g.Blocks, func(i, j int) bool { return g.Blocks[i].Start < g.Blocks[j].Start })
	for _, b := range g.Blocks {
		g.blockAt[b.Start] = b
	}
	return g
}

// FuncAt returns the function whose entry is addr.
func (g *Graph) FuncAt(addr uint64) (*Function, bool) {
	f, ok := g.funcAt[addr]
	return f, ok
}

// BlockAt returns the block starting at addr.
func (g *Graph) BlockAt(addr uint64) (*Block, bool) {
	b, ok := g.blockAt[addr]
	return b, ok
}

// BlockContaining returns the block covering addr.
func (g *Graph) BlockContaining(addr uint64) (*Block, bool) {
	i := sort.Search(len(g.Blocks), func(i int) bool { return g.Blocks[i].End > addr })
	if i < len(g.Blocks) && g.Blocks[i].Start <= addr {
		return g.Blocks[i], true
	}
	return nil, false
}

// FuncContaining returns the function covering addr.
func (g *Graph) FuncContaining(addr uint64) (*Function, bool) {
	b, ok := g.BlockContaining(addr)
	if !ok {
		return nil, false
	}
	return b.Fn, true
}

// Stats summarizes the graph for Table 4 reporting.
type Stats struct {
	// ExecBlocks/LibBlocks count basic blocks in the executable and the
	// libraries (paper Table 4 columns).
	ExecBlocks, LibBlocks int
	// ExecEdges/LibEdges count O-CFG edges by source module.
	ExecEdges, LibEdges int
	// Libraries is the number of loaded libraries (excluding the
	// executable and the VDSO).
	Libraries int
	// AIA is the average indirect targets allowed over all indirect
	// branch sites.
	AIA float64
	// Sites is the number of indirect branch instructions.
	Sites int
}

// ComputeStats derives the Table 4 inputs from the graph.
func (g *Graph) ComputeStats() Stats {
	var s Stats
	for _, l := range g.AS.Mods {
		if l != g.AS.Exec && l != g.AS.VDSO {
			s.Libraries++
		}
	}
	for _, b := range g.Blocks {
		inExec := b.Fn.Mod == g.AS.Exec
		edges := len(b.IndTargets)
		switch b.Kind {
		case TermFall, TermJmp, TermCall, TermSyscall:
			edges++
		case TermCond:
			edges += 2
		}
		if inExec {
			s.ExecBlocks++
			s.ExecEdges += edges
		} else {
			s.LibBlocks++
			s.LibEdges += edges
		}
	}
	s.Sites = len(g.Sites)
	if s.Sites > 0 {
		total := 0
		for _, site := range g.Sites {
			total += len(site.Targets)
		}
		s.AIA = float64(total) / float64(s.Sites)
	}
	return s
}

// ContainsEdge reports whether the O-CFG allows a transfer from the CoFI
// at src to dst. It is the slow path's ground-truth membership test.
func (g *Graph) ContainsEdge(src, dst uint64, class isa.CoFIClass) bool {
	b, ok := g.BlockContaining(src)
	if !ok {
		return false
	}
	switch class {
	case isa.CoFIDirect, isa.CoFIFarTransfer:
		switch b.Kind {
		case TermJmp, TermCall, TermSyscall:
			return b.TermAddr == src && b.Next == dst
		}
		return false
	case isa.CoFICond:
		return b.Kind == TermCond && b.TermAddr == src && (b.Taken == dst || b.Fall == dst)
	case isa.CoFIIndirect, isa.CoFIRet:
		if b.TermAddr != src || !b.HasIndirectTerm() {
			return false
		}
		i := sort.Search(len(b.IndTargets), func(i int) bool { return b.IndTargets[i] >= dst })
		return i < len(b.IndTargets) && b.IndTargets[i] == dst
	}
	return false
}

func (g *Graph) String() string {
	return fmt.Sprintf("O-CFG{funcs=%d blocks=%d sites=%d}", len(g.Funcs), len(g.Blocks), len(g.Sites))
}
