package harness

import (
	"fmt"
	"time"

	"flowguard/internal/apps"
	"flowguard/internal/guard"
	"flowguard/internal/kernelsim"
	"flowguard/internal/trace/ipt"
)

// MicroResult holds the §7.2.2 checking-time micro-benchmark: the cost
// of handling a window of memory containing ~100 TIP packets on the fast
// path versus the slow (context-sensitive) path.
type MicroResult struct {
	// WindowTIPs is the number of TIP packets in the measured window.
	WindowTIPs int
	// FastCycles / SlowCycles are the calibrated per-window costs.
	FastCycles, SlowCycles uint64
	// SlowOverFast is the ratio (the paper reports ~60x).
	SlowOverFast float64
	// SlowMsAt4GHz expresses the slow path in milliseconds on the
	// paper's 4.0 GHz machine (the paper reports ~0.23 ms).
	SlowMsAt4GHz float64
	// FastWall / SlowWall are wall-clock measurements of this
	// implementation (secondary evidence; the cycle model is primary).
	FastWall, SlowWall time.Duration
}

func (m MicroResult) String() string {
	return fmt.Sprintf("window=%d TIPs  fast=%d cyc  slow=%d cyc  ratio=%.0fx  slow@4GHz=%.3f ms  (wall: fast=%v slow=%v)",
		m.WindowTIPs, m.FastCycles, m.SlowCycles, m.SlowOverFast, m.SlowMsAt4GHz, m.FastWall, m.SlowWall)
}

// Micro measures the fast/slow asymmetry on a ~100-TIP window traced
// from the interpreter kernel (perlbench), whose dispatch-dense profile
// matches the TIP density the paper's 0.23 ms / 100-TIP figure implies;
// sparser windows (leaf-loop-heavy server code) only widen the gap in
// the fast path's favor.
func (r *Runner) Micro() (MicroResult, error) {
	a, err := apps.ByName("perlbench")
	if err != nil {
		return MicroResult{}, err
	}
	an, err := r.Analyze(a)
	if err != nil {
		return MicroResult{}, err
	}
	if err := r.Train(an); err != nil {
		return MicroResult{}, err
	}

	// Trace a run into a buffer large enough to avoid wrap, then find a
	// window holding ~100 TIPs ending at a PSB-aligned region.
	k := kernelsim.New()
	p, err := a.Spawn(k, a.MakeInput(r.Scale, r.Seed+7))
	if err != nil {
		return MicroResult{}, err
	}
	tr := ipt.NewTracer(ipt.NewToPA(64 << 20))
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
		return MicroResult{}, err
	}
	p.CPU.Branch = tr
	if st, err := k.Run(p, 500_000_000); err != nil || !st.Exited {
		return MicroResult{}, fmt.Errorf("harness: micro trace run: %v %v", st, err)
	}
	tr.Flush()
	buf := tr.Out.Snapshot()

	// Pick the window: the densest 100-TIP span that begins at a sync
	// point (the checker always decodes from a PSB). Density matters:
	// the slow path's cost is the instructions between TIPs, and the
	// §7.2.2 measurement targets the endpoint-adjacent regions where
	// indirect branches cluster.
	pts := ipt.SyncPoints(buf)
	if len(pts) == 0 {
		return MicroResult{}, fmt.Errorf("harness: no sync points")
	}
	const wantTIPs = 100
	evs, err := ipt.DecodeFast(buf)
	if err != nil {
		return MicroResult{}, err
	}
	var tipOffs []int
	for _, e := range evs {
		if e.Kind == ipt.KindTIP {
			tipOffs = append(tipOffs, e.Off)
		}
	}
	if len(tipOffs) <= wantTIPs {
		return MicroResult{}, fmt.Errorf("harness: only %d TIPs traced", len(tipOffs))
	}
	// For each candidate span of 100 TIPs, find the nearest preceding
	// PSB and take the smallest byte window.
	precedingPSB := func(off int) int {
		best := -1
		for _, p := range pts {
			if p <= off {
				best = p
			}
		}
		return best
	}
	bestStart, bestEnd := -1, len(buf)
	for i := 0; i+wantTIPs < len(tipOffs); i++ {
		s := precedingPSB(tipOffs[i])
		if s < 0 {
			continue
		}
		e := tipOffs[i+wantTIPs] + 16
		if e > len(buf) {
			e = len(buf)
		}
		if bestStart < 0 || e-s < bestEnd-bestStart {
			bestStart, bestEnd = s, e
		}
	}
	if bestStart < 0 {
		return MicroResult{}, fmt.Errorf("harness: no PSB-aligned window")
	}
	window := buf[bestStart:bestEnd]

	// Fast path: packet scan + graph search (measure wall time too).
	t0 := time.Now()
	wevs, err := ipt.DecodeFast(window)
	if err != nil {
		return MicroResult{}, err
	}
	tips := ipt.ExtractTIPs(wevs)
	for i := 0; i+1 < len(tips); i++ {
		an.ITC.Lookup(tips[i].IP, tips[i+1].IP, tips[i+1].TNTSig)
	}
	fastWall := time.Since(t0)
	fastCycles := uint64(float64(len(window))*guard.CyclesPerFastDecodeByte) +
		uint64(len(tips))*guard.CyclesPerTIPCheck

	// Slow path: instruction-flow decode of the same window.
	t1 := time.Now()
	ft, err := ipt.DecodeFull(p.AS, window, 0)
	if err != nil {
		return MicroResult{}, err
	}
	slowWall := time.Since(t1)
	slowCycles := ft.Cycles()

	res := MicroResult{
		WindowTIPs: len(tips),
		FastCycles: fastCycles,
		SlowCycles: slowCycles,
		FastWall:   fastWall,
		SlowWall:   slowWall,
	}
	if fastCycles > 0 {
		res.SlowOverFast = float64(slowCycles) / float64(fastCycles)
	}
	res.SlowMsAt4GHz = float64(slowCycles) / 4e9 * 1e3
	return res, nil
}
