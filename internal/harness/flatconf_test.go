package harness

import (
	"math/rand"
	"testing"

	"flowguard/internal/cfg"
	"flowguard/internal/itc"
	"flowguard/internal/oracle"
	"flowguard/internal/trace/ipt"
)

// Conformance of the flat ITC tables against the differential oracle's
// map+BFS reference, over randomized synthetic CFGs: the production graph
// (eytzinger index, offset arenas, lock-free snapshots) and the naive
// reference must agree on every Lookup, CacheLookup and path probe, both
// through training churn and across RebuildCache generations. This is
// the property-level counterpart of the trace-driven differential suite:
// it reaches graph shapes no program generator emits.

// synthProgram builds a random synthetic O-CFG: a run of blocks where
// every block either falls/jumps/conditionally branches to other blocks
// or terminates indirectly targeting random block entries.
func synthProgram(rng *rand.Rand, nBlocks int) *cfg.Graph {
	starts := make([]uint64, nBlocks)
	for i := range starts {
		starts[i] = 0x400000 + uint64(i)*0x40
	}
	blocks := make([]*cfg.Block, nBlocks)
	for i := range blocks {
		b := &cfg.Block{Start: starts[i], End: starts[i] + 0x40}
		pick := func() uint64 { return starts[rng.Intn(nBlocks)] }
		switch rng.Intn(6) {
		case 0:
			b.Kind = cfg.TermFall
			b.Next = pick()
		case 1:
			b.Kind = cfg.TermJmp
			b.Next = pick()
		case 2:
			b.Kind = cfg.TermCond
			b.Taken, b.Fall = pick(), pick()
		default:
			if rng.Intn(2) == 0 {
				b.Kind = cfg.TermIndCall
			} else {
				b.Kind = cfg.TermIndJmp
			}
			n := 1 + rng.Intn(4)
			seen := map[uint64]bool{}
			for len(seen) < n {
				seen[pick()] = true
			}
			for t := range seen {
				b.IndTargets = append(b.IndTargets, t)
			}
			sortAddrs(b.IndTargets)
		}
		blocks[i] = b
	}
	return cfg.Synthetic(blocks)
}

func sortAddrs(a []uint64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// randSig yields the signature of a short random TNT run, occasionally
// the long-run wildcard or the empty run.
func randSig(rng *rand.Rand) uint64 {
	switch rng.Intn(5) {
	case 0:
		return ipt.TNTSigEmpty
	case 1:
		return ipt.TNTSigLongRun
	default:
		sig := ipt.TNTSigEmpty
		for b := 0; b < 1+rng.Intn(6); b++ {
			sig = ipt.TNTSigAppend(sig, rng.Intn(2) == 0)
		}
		return sig
	}
}

// TestFlatITCMatchesOracleRef cross-checks the production flat tables
// against the oracle reference on randomized graphs through a full
// train / rebuild / re-train cycle.
func TestFlatITCMatchesOracleRef(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 30; round++ {
		og := synthProgram(rng, 4+rng.Intn(30))
		g := itc.FromCFG(og)
		ref := oracle.NewRef(og)

		// Topology must agree before any training.
		if g.NumNodes() != ref.NumNodes() {
			t.Fatalf("round %d: node count %d vs ref %d", round, g.NumNodes(), ref.NumNodes())
		}
		refEdges := ref.Edges()
		if g.Edges != len(refEdges) {
			t.Fatalf("round %d: edge count %d vs ref %d", round, g.Edges, len(refEdges))
		}
		nodes := g.Nodes()
		if len(nodes) == 0 {
			continue
		}
		pick := func() uint64 { return nodes[rng.Intn(len(nodes))] }

		// Train both sides with the same random edge and path stream;
		// production and reference must agree on membership as they go.
		train := func(k int) {
			for ; k > 0; k-- {
				var src, dst uint64
				if len(refEdges) > 0 && rng.Intn(3) > 0 {
					e := refEdges[rng.Intn(len(refEdges))]
					src, dst = e[0], e[1]
				} else {
					src, dst = pick(), pick()
				}
				sig := randSig(rng)
				if got, want := g.Observe(src, dst, sig), ref.Observe(src, dst, sig); got != want {
					t.Fatalf("round %d: Observe(%#x,%#x) = %v, ref %v", round, src, dst, got, want)
				}
				if rng.Intn(4) == 0 {
					a, b, c := pick(), pick(), pick()
					g.ObservePath(a, b, c)
					ref.ObservePath(a, b, c)
				}
			}
		}
		check := func(stage string, cacheFresh bool) {
			for k := 0; k < 200; k++ {
				src, dst, sig := pick(), pick(), randSig(rng)
				if len(refEdges) > 0 && rng.Intn(2) == 0 {
					e := refEdges[rng.Intn(len(refEdges))]
					src, dst = e[0], e[1]
				}
				exists, count, sigOK := ref.Lookup(src, dst, sig)
				l := g.Lookup(src, dst, sig)
				if l.Exists != exists || l.Count != count || (l.HighCredit && l.SigMatch != sigOK) {
					t.Fatalf("round %d %s: Lookup(%#x,%#x,%#x) = %+v, ref (%v,%d,%v)",
						round, stage, src, dst, sig, l, exists, count, sigOK)
				}
				hit, sm := g.CacheLookup(src, dst, sig)
				if hit && (!l.Exists || !l.HighCredit) {
					// Credit counts only grow, so even a stale cache can
					// never claim credit Lookup denies.
					t.Fatalf("round %d %s: cache hit on unlabeled edge %#x->%#x", round, stage, src, dst)
				}
				if cacheFresh && hit && sm != l.SigMatch {
					// Signature verdicts agree only while the snapshot is
					// current; a stale cache serves the last rebuilt sets.
					t.Fatalf("round %d %s: cache sig %v vs lookup sig %v", round, stage, sm, l.SigMatch)
				}
				a, b, c := pick(), pick(), pick()
				if got, want := g.PathTrained(a, b, c), ref.PathObserved(a, b, c); got != want {
					t.Fatalf("round %d %s: PathTrained(%#x,%#x,%#x) = %v, ref %v", round, stage, a, b, c, got, want)
				}
			}
		}

		train(60)
		check("pre-rebuild (locked fallback)", false)
		gen := g.LabelGen()
		g.RebuildCache()
		if g.LabelGen() != gen+1 {
			t.Fatalf("round %d: LabelGen did not advance on RebuildCache", round)
		}
		check("post-rebuild (lock-free snapshot)", true)

		// Post-snapshot training must invalidate the snapshot: new labels
		// are visible immediately through the locked fallback, and the
		// cache, rebuilt again, reflects them.
		train(30)
		check("post-snapshot-invalidation", false)
		g.RebuildCache()
		check("second generation", true)
		if g.LabelGen() != gen+2 {
			t.Fatalf("round %d: LabelGen %d after two rebuilds, want %d", round, g.LabelGen(), gen+2)
		}
	}
}

// TestFlatCacheLookupStaleUntilRebuild pins the §5.3 cache refresh
// contract the guard depends on: CacheLookup serves the last *rebuilt*
// labels — observations after a rebuild do not leak into the cache until
// the next RebuildCache, while Lookup sees them immediately.
func TestFlatCacheLookupStaleUntilRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for round := 0; round < 20; round++ {
		og := synthProgram(rng, 10+rng.Intn(20))
		g := itc.FromCFG(og)
		ref := oracle.NewRef(og)
		refEdges := ref.Edges()
		if len(refEdges) == 0 {
			continue
		}
		e := refEdges[rng.Intn(len(refEdges))]
		sig := randSig(rng)

		g.RebuildCache() // empty-label generation
		if hit, _ := g.CacheLookup(e[0], e[1], sig); hit {
			t.Fatalf("round %d: cache hit before any training", round)
		}
		if !g.Observe(e[0], e[1], sig) {
			t.Fatalf("round %d: edge %#x->%#x not in graph", round, e[0], e[1])
		}
		if l := g.Lookup(e[0], e[1], sig); !l.HighCredit || !l.SigMatch {
			t.Fatalf("round %d: Lookup missed fresh observation: %+v", round, l)
		}
		if hit, _ := g.CacheLookup(e[0], e[1], sig); hit {
			t.Fatalf("round %d: unrebuilt observation leaked into the cache", round)
		}
		g.RebuildCache()
		hit, sm := g.CacheLookup(e[0], e[1], sig)
		if !hit || !sm {
			t.Fatalf("round %d: cache missed trained edge after rebuild (%v,%v)", round, hit, sm)
		}
	}
}
