package harness

import (
	"fmt"

	"flowguard/internal/apps"
	"flowguard/internal/itc"
)

// CredRatioPoint evaluates the §7.1.1 formula
//
//	AIA_ratio = ratio*AIA_fine + (1-ratio)*AIA_itc
//
// for one ratio value against one application's graphs.
type CredRatioPoint struct {
	Ratio float64
	AIA   float64
	// BeatsOCFG reports the effective AIA is at least as strong as the
	// plain O-CFG protection (the paper finds this for ratio > 70%).
	BeatsOCFG bool
}

// CredRatioSweep evaluates the formula over the servers, returning per
// app the crossover ratio above which FlowGuard's effective AIA beats
// the O-CFG.
type CredRatioSweep struct {
	App       string
	OCFGAIA   float64
	FineAIA   float64
	ITCAIA    float64
	Points    []CredRatioPoint
	Crossover float64
}

func (s CredRatioSweep) String() string {
	return fmt.Sprintf("%-8s O-CFG=%.2f fine=%.2f itc=%.2f  crossover at cred-ratio=%.0f%%",
		s.App, s.OCFGAIA, s.FineAIA, s.ITCAIA, 100*s.Crossover)
}

// SweepCredRatio computes the §7.1.1 analysis for the server apps.
func (r *Runner) SweepCredRatio() ([]CredRatioSweep, error) {
	var out []CredRatioSweep
	for _, a := range apps.Servers() {
		an, err := r.Analyze(a)
		if err != nil {
			return nil, err
		}
		ocfg := an.OCFG.ComputeStats().AIA
		fine := itc.FineGrainedAIA(an.OCFG)
		itcAIA := an.ITC.AIA()
		sweep := CredRatioSweep{App: a.Name, OCFGAIA: ocfg, FineAIA: fine, ITCAIA: itcAIA, Crossover: 1}
		for i := 0; i <= 10; i++ {
			ratio := float64(i) / 10
			aia := ratio*fine + (1-ratio)*itcAIA
			p := CredRatioPoint{Ratio: ratio, AIA: aia, BeatsOCFG: aia <= ocfg}
			sweep.Points = append(sweep.Points, p)
			if p.BeatsOCFG && sweep.Crossover == 1 && ratio < 1 {
				sweep.Crossover = ratio
			}
		}
		out = append(out, sweep)
	}
	return out, nil
}

// PktCountPoint measures the overhead/robustness trade of the pkt_count
// knob on the nginx analogue (§7.1.1 chooses 30 as the lower bound).
type PktCountPoint struct {
	PktCount  int
	TotalPct  float64
	CheckPct  float64
	DecodePct float64
}

func (p PktCountPoint) String() string {
	return fmt.Sprintf("pkt_count=%3d  total=%.2f%%  decode=%.2f%% check=%.2f%%", p.PktCount, p.TotalPct, p.DecodePct, p.CheckPct)
}

// SweepPktCount varies the checked-window lower bound.
func (r *Runner) SweepPktCount(counts []int) ([]PktCountPoint, error) {
	a := apps.Nginx()
	var out []PktCountPoint
	for _, n := range counts {
		pol := r.policy()
		pol.PktCount = n
		row, err := r.overheadFor(a, pol)
		if err != nil {
			return nil, err
		}
		out = append(out, PktCountPoint{PktCount: n, TotalPct: row.TotalPct, CheckPct: row.CheckPct, DecodePct: row.DecodePct})
	}
	return out, nil
}
