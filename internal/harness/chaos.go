package harness

import (
	"fmt"

	"flowguard/internal/apps"
	"flowguard/internal/attack"
	"flowguard/internal/faults"
	"flowguard/internal/guard"
	"flowguard/internal/kernelsim"
)

// ChaosRow aggregates one degraded-mode policy's slice of a seeded
// fault-injection sweep over the vulnerable server: how many hijacked
// runs the guard still killed, how many benign runs survived, and the
// degraded-check accounting behind those verdicts (the §7.1.2 worst
// cases: trace loss, buffer gaps, corruption).
type ChaosRow struct {
	Mode guard.DegradedMode
	Runs int
	// Attacks / Detected count hijacked runs and their kills; Benign /
	// Survived the clean-traffic runs that exited normally.
	Attacks, Detected int
	Benign, Survived  int
	// Faults is the number of injected trace faults across the slice.
	Faults uint64
	// The summed guard counters behind the verdicts.
	Degraded, Overflows, Malformed, Gaps uint64
	Retries, FailOpens, FailClosures     uint64
}

func (c ChaosRow) String() string {
	return fmt.Sprintf("%-15s runs=%-4d attacks=%2d/%-2d benign-ok=%2d/%-2d faults=%-4d degraded=%-4d ovf=%-3d bad=%-3d gap=%-2d retries=%-3d open=%-3d closed=%d",
		c.Mode, c.Runs, c.Detected, c.Attacks, c.Survived, c.Benign,
		c.Faults, c.Degraded, c.Overflows, c.Malformed, c.Gaps,
		c.Retries, c.FailOpens, c.FailClosures)
}

// Chaos sweeps n seeded fault plans across the three degraded-mode
// policies (seed i runs under mode i%3, with every other run carrying a
// real exploit payload — the periods are coprime-ish by design so every
// mode sees both workload classes, mirroring the chaos soak in
// internal/faults).
// It reports per-mode aggregates; an attack a non-fail-open mode let
// through is an error — the security half of the degraded-mode
// contract, enforced here just as in the tests.
func (r *Runner) Chaos(n int) ([]ChaosRow, error) {
	a := apps.Vulnd()
	an, err := r.Analyze(a)
	if err != nil {
		return nil, err
	}
	if err := r.Train(an); err != nil {
		return nil, err
	}
	as, err := a.Load()
	if err != nil {
		return nil, err
	}
	rop, err := attack.BuildROPWrite(as)
	if err != nil {
		return nil, err
	}
	srop, err := attack.BuildSROP(as)
	if err != nil {
		return nil, err
	}
	benign := a.MakeInput(r.Scale, r.Seed)

	modes := []guard.DegradedMode{guard.FailClosed, guard.SlowPathRetry, guard.FailOpen}
	rows := make([]ChaosRow, len(modes))
	for i := range rows {
		rows[i].Mode = modes[i]
	}
	for seed := int64(0); seed < int64(n); seed++ {
		mi := int(seed % int64(len(modes)))
		mode := modes[mi]
		isAttack := seed%2 == 1
		input := benign
		if isAttack {
			if (seed/2)%2 == 0 {
				input = rop
			} else {
				input = srop
			}
		}

		k := kernelsim.New()
		p, err := a.Spawn(k, input)
		if err != nil {
			return nil, err
		}
		km := guard.InstallModule(k)
		pol := r.policy()
		pol.OnDegraded = mode
		// Alternate the async pipeline on a period coprime with the
		// mode (3) and workload (2) cycles, so every mode sees faulted
		// attacks and faulted benign traffic both sync and async. The
		// same plan doubles as the pool's worker-fault source.
		pol.Async = (seed/6)%2 == 0
		plan := faults.FromSeed(seed)
		var ap *guard.AsyncPool
		if pol.Async {
			ap = guard.NewAsyncPool(pol.AsyncWorkers, pol.AsyncQueue)
			ap.InjectFaults(plan)
			km.UseAsync(ap)
		}
		g, err := km.Protect(p, an.OCFG, an.ITC, pol)
		if err != nil {
			return nil, err
		}
		g.Tracer.Fault = plan
		st, err := k.Run(p, 500_000_000)
		km.Shutdown()
		if ap != nil {
			ap.Close()
		}
		if err != nil {
			return nil, err
		}

		row := &rows[mi]
		row.Runs++
		row.Faults += plan.Total()
		if isAttack {
			row.Attacks++
			if st.Killed {
				row.Detected++
			} else if mode != guard.FailOpen {
				return nil, fmt.Errorf("harness: chaos seed %d mode %v: attack not detected (plan %+v)",
					seed, mode, plan.Config())
			}
		} else {
			row.Benign++
			if st.Exited {
				row.Survived++
			}
		}
		row.Degraded += g.Stats.DegradedChecks
		row.Overflows += g.Stats.Overflows
		row.Malformed += g.Stats.Malformed
		row.Gaps += g.Stats.Gaps
		row.Retries += g.Stats.Retries
		row.FailOpens += g.Stats.FailOpens
		row.FailClosures += g.Stats.FailClosures
	}
	return rows, nil
}
