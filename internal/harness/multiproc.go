package harness

import (
	"fmt"

	"flowguard/internal/apps"
	"flowguard/internal/kernelsim"
	"flowguard/internal/trace"
	"flowguard/internal/trace/ipt"
)

// MultiProcResult quantifies the §7.2.4 observation that "single-process
// applications outperform multi-process ones due to the single CR3
// filtering mechanism": on a shared core, a worker filtered by its CR3
// pays only for its own trace, while a multi-process service that one
// filter cannot cover must trace everything.
type MultiProcResult struct {
	// FilteredBytes is the trace volume with the CR3 filter tracking the
	// protected worker across context switches.
	FilteredBytes uint64
	// UnfilteredBytes is the volume when the filter cannot single out a
	// process (the multi-process case).
	UnfilteredBytes uint64
	// FilteredPct / UnfilteredPct are the tracing overheads against the
	// combined baseline cycles.
	FilteredPct, UnfilteredPct float64
	// Workers is the number of interleaved processes.
	Workers int
}

func (m MultiProcResult) String() string {
	return fmt.Sprintf("workers=%d  filtered: %d bytes (%.2f%%)  unfiltered: %d bytes (%.2f%%)  ratio=%.1fx",
		m.Workers, m.FilteredBytes, m.FilteredPct, m.UnfilteredBytes, m.UnfilteredPct,
		float64(m.UnfilteredBytes)/float64(maxU64(m.FilteredBytes, 1)))
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// MultiProc interleaves `workers` nginx-analogue processes on one core
// and compares CR3-filtered against unfiltered tracing cost.
func (r *Runner) MultiProc(workers int) (MultiProcResult, error) {
	if workers < 2 {
		workers = 2
	}
	res := MultiProcResult{Workers: workers}

	run := func(filter bool) (bytes uint64, baseCycles uint64, err error) {
		a := apps.Nginx()
		k := kernelsim.New()
		procs := make([]*kernelsim.Process, workers)
		for i := range procs {
			p, err := a.Spawn(k, a.MakeInput(r.Scale, r.Seed)) // identical workers isolate the filtering effect
			if err != nil {
				return 0, 0, err
			}
			procs[i] = p
		}
		tr := ipt.NewTracer(ipt.NewToPA(256 << 20))
		ctl := ctlTrace
		if filter {
			ctl |= ipt.CtlCR3Filter
		}
		if err := tr.WriteMSR(ipt.MSRRTITCtl, ctl); err != nil {
			return 0, 0, err
		}
		if filter {
			if err := tr.WriteMSR(ipt.MSRRTITCR3Match, procs[0].CR3); err != nil {
				return 0, 0, err
			}
		}
		for _, p := range procs {
			if p.CPU.Branch != nil {
				p.CPU.Branch = trace.MultiSink{p.CPU.Branch, tr}
			} else {
				p.CPU.Branch = tr
			}
		}
		k.OnSwitch = func(p *kernelsim.Process) { tr.SetCR3(p.CR3) }
		sts, err := k.RunInterleaved(procs, 1024, 2_000_000_000)
		if err != nil {
			return 0, 0, err
		}
		for i, st := range sts {
			if !st.Exited {
				return 0, 0, fmt.Errorf("harness: multiproc worker %d: %v", i, st)
			}
		}
		tr.Flush()
		var cycles uint64
		for _, p := range procs {
			cycles += p.CPU.CycleCount
		}
		return tr.Out.TotalWritten(), cycles, nil
	}

	fb, base, err := run(true)
	if err != nil {
		return res, err
	}
	res.FilteredBytes = fb
	res.FilteredPct = 100 * float64(fb) * ipt.CyclesPerTraceByte / float64(base)

	ub, base2, err := run(false)
	if err != nil {
		return res, err
	}
	res.UnfilteredBytes = ub
	res.UnfilteredPct = 100 * float64(ub) * ipt.CyclesPerTraceByte / float64(base2)
	return res, nil
}
