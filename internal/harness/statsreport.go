package harness

import (
	"fmt"
	"strings"

	"flowguard/internal/guard"
)

// FormatStats renders every guard.Stats counter as an aligned block for
// fgbench reports. It is the reporter leg of the statssync invariant: a
// field added to guard.Stats but missing here (or from Stats.Merge or
// the oracle comparison) is an fgvet error, so aggregate reports can
// never silently omit a counter.
//
//fg:statssync guard.Stats
func FormatStats(s *guard.Stats) string {
	var b strings.Builder
	line := func(name string, v uint64) {
		fmt.Fprintf(&b, "  %-14s %12d\n", name, v)
	}
	line("Checks", s.Checks)
	line("SlowChecks", s.SlowChecks)
	line("Violations", s.Violations)
	line("TIPsChecked", s.TIPsChecked)
	line("HighEdges", s.HighEdges)
	line("LowEdges", s.LowEdges)
	line("DecodeCycles", s.DecodeCycles)
	line("CheckCycles", s.CheckCycles)
	line("OtherCycles", s.OtherCycles)
	line("SlowCycles", s.SlowCycles)
	line("BytesScanned", s.BytesScanned)
	line("CacheHits", s.CacheHits)
	line("Resyncs", s.Resyncs)
	line("Overflows", s.Overflows)
	line("Gaps", s.Gaps)
	line("Malformed", s.Malformed)
	line("DegradedChecks", s.DegradedChecks)
	line("FailOpens", s.FailOpens)
	line("FailClosures", s.FailClosures)
	line("Retries", s.Retries)
	line("Shed", s.Shed)
	return b.String()
}
