package harness

import (
	"fmt"
	"strings"

	"flowguard/internal/guard"
)

// FormatStats renders every guard.Stats counter as an aligned block for
// fgbench reports. The counter list lives in StatsFields (which carries
// the statssync invariant), so this block and the JSON artifact's
// fleet_stats can never disagree about which counters exist.
func FormatStats(s *guard.Stats) string {
	var b strings.Builder
	for _, f := range StatsFields(s) {
		fmt.Fprintf(&b, "  %-14s %12d\n", f.Name, f.Value)
	}
	return b.String()
}
