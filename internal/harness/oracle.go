package harness

// Differential oracle driver: runs identical workloads and identical
// trace bytes through the production hybrid checker (internal/guard +
// internal/trace/ipt) and the naive reference pipeline
// (internal/oracle), asserting verdict-, classification- and
// statistics-level equivalence. The two pipelines share no decode or
// check code (internal/oracle's isolation test enforces that), so any
// divergence is a real bug in one of them.

import (
	"bytes"
	"fmt"

	"flowguard/internal/apps"
	"flowguard/internal/attack"
	"flowguard/internal/faults"
	"flowguard/internal/fuzz"
	"flowguard/internal/guard"
	"flowguard/internal/kernelsim"
	"flowguard/internal/oracle"
	"flowguard/internal/progen"
	"flowguard/internal/trace"
	"flowguard/internal/trace/ipt"
)

// oraclePolicy mirrors the checking-relevant production policy knobs
// into the oracle's policy (endpoints and cost modeling are driver
// concerns the oracle never sees). The enum value equivalence it relies
// on is asserted by TestDegradedModeEnumsAgree.
func oraclePolicy(p guard.Policy) oracle.Policy {
	return oracle.Policy{
		PktCount:            p.PktCount,
		CredRatio:           p.CredRatio,
		RequireModuleStride: p.RequireModuleStride,
		CredMinCount:        p.CredMinCount,
		PathSensitive:       p.PathSensitive,
		NaiveFullDecode:     p.NaiveFullDecode,
		OnDegraded:          oracle.DegradedMode(p.OnDegraded),
		RetryMax:            p.RetryMax,
	}
}

// DiffFixture is one application prepared for differential checking:
// production analysis (O-CFG + trained ITC-CFG) and the reference
// ITC-CFG trained from the very same trace bytes, plus canonical
// workloads.
type DiffFixture struct {
	An  *Analysis
	Ref *oracle.Ref
	// ROP / SROP are exploit payloads (nil for generated programs that
	// have no crafted attack).
	ROP, SROP []byte
	// Benign is the reference clean workload; BenignTrace its raw IPT
	// stream captured during fixture setup.
	Benign      []byte
	BenignTrace []byte
}

// DiffTrain analyzes the app and trains the production ITC-CFG and the
// reference graph from identical raw trace bytes, so any later labeling
// divergence is a derivation bug rather than a data difference.
func (r *Runner) DiffTrain(a *apps.App) (*DiffFixture, error) {
	an, err := r.Analyze(a)
	if err != nil {
		return nil, err
	}
	ref := oracle.NewRef(an.OCFG)
	for i := 0; i < r.TrainRuns; i++ {
		input := a.MakeInput(r.Scale, r.Seed+int64(100+i))
		raw, err := r.traceBytes(a, input)
		if err != nil {
			return nil, err
		}
		evs, err := ipt.DecodeFast(raw)
		if err != nil {
			return nil, err
		}
		an.ITC.ObserveWindow(ipt.ExtractTIPs(evs))
		if err := ref.ObserveTrace(raw); err != nil {
			return nil, err
		}
	}
	an.ITC.RebuildCache()
	ref.Rebuild()

	benign := a.MakeInput(r.Scale, r.Seed)
	btr, err := r.traceBytes(a, benign)
	if err != nil {
		return nil, err
	}
	return &DiffFixture{An: an, Ref: ref, Benign: benign, BenignTrace: btr}, nil
}

// OracleFixture prepares the vulnerable server with exploit payloads —
// the canonical differential workload.
func (r *Runner) OracleFixture() (*DiffFixture, error) {
	fx, err := r.DiffTrain(apps.Vulnd())
	if err != nil {
		return nil, err
	}
	as, err := fx.An.App.Load()
	if err != nil {
		return nil, err
	}
	if fx.ROP, err = attack.BuildROPWrite(as); err != nil {
		return nil, err
	}
	if fx.SROP, err = attack.BuildSROP(as); err != nil {
		return nil, err
	}
	return fx, nil
}

// DiffOutcome is the result of one differential run.
type DiffOutcome struct {
	Checks         int
	Killed, Exited bool
	// GuardViolation reports any production check returned a violation.
	GuardViolation bool
	// Healths collects the production health classification per check
	// (the truncation property asserts over these).
	Healths []guard.TraceHealth
	// Divergences lists every field where the two pipelines disagreed.
	Divergences []string
}

// compareResults diffs the per-check result fields both pipelines must
// agree on (cycle meters are production-only cost modeling).
func compareResults(check int, g guard.Result, o oracle.Result) (divs []string) {
	add := func(field string, gv, ov any) {
		divs = append(divs, fmt.Sprintf("check %d %s: guard=%v oracle=%v", check, field, gv, ov))
	}
	if uint8(g.Verdict) != uint8(o.Verdict) {
		add("verdict", g.Verdict, o.Verdict)
	}
	if g.TIPs != o.TIPs {
		add("tips", g.TIPs, o.TIPs)
	}
	if g.LowCredit != o.LowCredit {
		add("low-credit", g.LowCredit, o.LowCredit)
	}
	if g.UsedSlowPath != o.UsedSlowPath {
		add("used-slow-path", g.UsedSlowPath, o.UsedSlowPath)
	}
	if uint8(g.Health) != uint8(o.Health) {
		add("health", g.Health, o.Health)
	}
	if g.Degraded != o.Degraded {
		add("degraded", g.Degraded, o.Degraded)
	}
	if g.Retries != o.Retries {
		add("retries", g.Retries, o.Retries)
	}
	return divs
}

// compareStats diffs the counters shared by both Stats types. The
// exempt fields are cycle meters, bytes scanned, cache hits and the
// asynchronous-pipeline counters: production cost/shortcut/scheduling
// bookkeeping with no oracle analogue (the oracle always decodes
// synchronously; the async design guarantees the verdict-bearing
// counters above still match it exactly). StreamLosses counts
// demux-reported losses, a transport event upstream of the oracle's
// stream view — the health/degraded consequences it forces are still
// compared through the counters above.
//
//fg:statssync guard.Stats -exempt DecodeCycles,CheckCycles,OtherCycles,SlowCycles,BytesScanned,CacheHits,AsyncWindows,AsyncMaxLag,BackpressureStalls,WatchdogSheds,WorkerCrashes,FairnessSheds,ForkInherits,StreamLosses
func compareStats(g *guard.Stats, o *oracle.Stats) (divs []string) {
	pairs := []struct {
		name   string
		gv, ov uint64
	}{
		{"Checks", g.Checks, o.Checks},
		{"SlowChecks", g.SlowChecks, o.SlowChecks},
		{"Violations", g.Violations, o.Violations},
		{"TIPsChecked", g.TIPsChecked, o.TIPsChecked},
		{"HighEdges", g.HighEdges, o.HighEdges},
		{"LowEdges", g.LowEdges, o.LowEdges},
		{"Resyncs", g.Resyncs, o.Resyncs},
		{"Overflows", g.Overflows, o.Overflows},
		{"Gaps", g.Gaps, o.Gaps},
		{"Malformed", g.Malformed, o.Malformed},
		{"DegradedChecks", g.DegradedChecks, o.DegradedChecks},
		{"FailOpens", g.FailOpens, o.FailOpens},
		{"FailClosures", g.FailClosures, o.FailClosures},
		{"Retries", g.Retries, o.Retries},
		{"Shed", g.Shed, o.Shed},
	}
	for _, p := range pairs {
		if p.gv != p.ov {
			divs = append(divs, fmt.Sprintf("stats %s: guard=%d oracle=%d", p.name, p.gv, p.ov))
		}
	}
	return divs
}

// diffProtectedRun executes the app on input with both pipelines
// attached to the same ToPA. It mirrors KernelModule.Protect's MSR
// programming but installs its own endpoint interceptors so both
// checkers run on every endpoint, in a fixed order (the guard's check
// flushes the tracer; the oracle then reads the identical buffer state).
func diffProtectedRun(fx *DiffFixture, input []byte, pol guard.Policy, plan *faults.Plan) (*DiffOutcome, error) {
	k := kernelsim.New()
	p, err := fx.An.App.Spawn(k, input)
	if err != nil {
		return nil, err
	}
	topa := ipt.NewToPA(guard.DefaultToPARegion, guard.DefaultToPARegion)
	tr := ipt.NewTracer(topa)
	ctl := ipt.CtlTraceEn | ipt.CtlBranchEn | ipt.CtlUser | ipt.CtlCR3Filter | ipt.CtlToPA
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctl); err != nil {
		return nil, err
	}
	if err := tr.WriteMSR(ipt.MSRRTITCR3Match, p.CR3); err != nil {
		return nil, err
	}
	tr.SetCR3(p.CR3)
	if plan != nil {
		tr.Fault = plan
	}
	if p.CPU.Branch != nil {
		p.CPU.Branch = trace.MultiSink{p.CPU.Branch, tr}
	} else {
		p.CPU.Branch = tr
	}

	g := guard.New(p.AS, fx.An.OCFG, fx.An.ITC, tr, pol)
	if pol.Async {
		ap := guard.NewAsyncPool(pol.AsyncWorkers, pol.AsyncQueue)
		defer ap.Close()
		if plan != nil {
			ap.InjectFaults(plan)
		}
		g.EnableAsync(ap)
	}
	o := oracle.New(p.AS, fx.An.OCFG, fx.Ref, topa, oraclePolicy(pol))
	out := &DiffOutcome{}

	handler := func(cp *kernelsim.Process, sysno uint64) error {
		if cp.CR3 != p.CR3 {
			return nil
		}
		gres := g.Check()
		ores := o.Check()
		out.Checks++
		out.Healths = append(out.Healths, gres.Health)
		out.Divergences = append(out.Divergences, compareResults(out.Checks, gres, ores)...)
		if gres.Verdict == guard.VerdictViolation {
			out.GuardViolation = true
			k.Kill(cp, kernelsim.SIGKILL)
			return kernelsim.ErrKilled
		}
		return nil
	}
	eps := pol.Endpoints
	if len(eps) == 0 {
		eps = guard.DefaultEndpoints()
	}
	for _, sysno := range eps {
		k.Intercept(sysno, handler)
	}
	st, err := k.Run(p, 500_000_000)
	if err != nil {
		return nil, err
	}
	out.Killed, out.Exited = st.Killed, st.Exited
	g.AsyncFlushStats()
	out.Divergences = append(out.Divergences, compareStats(&g.Stats, &o.Stats)...)
	return out, nil
}

// diffRawStream replays a raw packet stream into a fresh ToPA in chunks,
// checking with both pipelines after every chunk — the vehicle for
// mutated, truncated and fuzz-generated traces that no real execution
// produces.
func diffRawStream(fx *DiffFixture, pol guard.Policy, raw []byte, chunks, region int) (*DiffOutcome, error) {
	g, o, topa, err := newDiffPair(fx, pol, region)
	if err != nil {
		return nil, err
	}
	if pol.Async {
		ap := guard.NewAsyncPool(pol.AsyncWorkers, pol.AsyncQueue)
		defer ap.Close()
		g.EnableAsync(ap)
	}
	return replayStream(g, o, topa, raw, chunks), nil
}

// diffFleetStream is the fleet workload class of the soak: an
// artifact-backed parent guard replays a benign stream to quiescence
// (banking approvals), then a child built by ForkGuard replays its own
// stream — benign or attacked — from a fresh window, compared against
// a fresh oracle pre-seeded with the parent's approvals. This is the
// fork-inheritance conformance contract (see ForkGuard) exercised at
// soak scale: the child's verdicts must match an oracle that inherited
// the same trained state, and an injected edge must still be caught
// despite the inheritance.
func diffFleetStream(fx *DiffFixture, pol guard.Policy, parentRaw, childRaw []byte, chunks int) (*DiffOutcome, error) {
	region := len(parentRaw) + guard.DefaultToPARegion
	if len(childRaw) > len(parentRaw) {
		region = len(childRaw) + guard.DefaultToPARegion
	}
	parent, po, ptopa, err := newDiffPair(fx, pol, region)
	if err != nil {
		return nil, err
	}
	parent.UseArtifact(fx.An.ITC.Artifact())
	var ap *guard.AsyncPool
	if pol.Async {
		ap = guard.NewAsyncPool(pol.AsyncWorkers, pol.AsyncQueue)
		defer ap.Close()
		parent.EnableAsync(ap)
	}
	out := replayStream(parent, po, ptopa, parentRaw, chunks)

	ctopa := ipt.NewToPA(region, region)
	ctr := ipt.NewTracer(ctopa)
	if err := ctr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
		return nil, err
	}
	child := guard.ForkGuard(parent, nil, ctr)
	if ap != nil {
		child.EnableAsync(ap)
	}
	co := oracle.New(fx.An.OCFG.AS, fx.An.OCFG, fx.Ref, ctopa, oraclePolicy(pol))
	co.AdoptApprovals(po)
	cout := replayStream(child, co, ctopa, childRaw, chunks)

	out.Checks += cout.Checks
	out.GuardViolation = out.GuardViolation || cout.GuardViolation
	out.Healths = append(out.Healths, cout.Healths...)
	out.Divergences = append(out.Divergences, cout.Divergences...)
	return out, nil
}

// newDiffPair builds a production guard and a reference oracle over one
// shared fresh ToPA (no process attached — raw-stream replay).
func newDiffPair(fx *DiffFixture, pol guard.Policy, region int) (*guard.Guard, *oracle.Oracle, *ipt.ToPA, error) {
	if region < ipt.PSBSize {
		region = guard.DefaultToPARegion
	}
	topa := ipt.NewToPA(region, region)
	tr := ipt.NewTracer(topa)
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
		return nil, nil, nil, err
	}
	as := fx.An.OCFG.AS
	g := guard.New(as, fx.An.OCFG, fx.An.ITC, tr, pol)
	o := oracle.New(as, fx.An.OCFG, fx.Ref, topa, oraclePolicy(pol))
	return g, o, topa, nil
}

// replayStream writes raw into the buffer in chunks, checking with both
// pipelines after each.
func replayStream(g *guard.Guard, o *oracle.Oracle, topa *ipt.ToPA, raw []byte, chunks int) *DiffOutcome {
	if chunks < 1 {
		chunks = 1
	}
	out := &DiffOutcome{}
	for c := 0; c < chunks; c++ {
		lo, hi := c*len(raw)/chunks, (c+1)*len(raw)/chunks
		topa.Write(raw[lo:hi])
		gres := g.Check()
		ores := o.Check()
		out.Checks++
		out.Healths = append(out.Healths, gres.Health)
		out.Divergences = append(out.Divergences, compareResults(out.Checks, gres, ores)...)
		if gres.Verdict == guard.VerdictViolation {
			out.GuardViolation = true
		}
	}
	out.Divergences = append(out.Divergences, compareStats(&g.Stats, &o.Stats)...)
	return out
}

// injectEdge widens every IP-bearing packet of a well-formed stream to
// full width (so each is self-contained and retargeting one cannot skew
// later compressed reconstructions) and then points the pick-th TIP
// from the end at target, yielding a trace whose flow takes one edge
// the program never had.
func injectEdge(raw []byte, pick int, target uint64) ([]byte, bool) {
	pkts, _, err := oracle.ParsePackets(raw)
	if err != nil {
		return nil, false
	}
	var tips []int
	for i := range pkts {
		switch pkts[i].Kind {
		case oracle.PkTIP, oracle.PkTIPPGE, oracle.PkTIPPGD, oracle.PkFUP:
			pkts[i].IPB = 3
		}
		if pkts[i].Kind == oracle.PkTIP && !pkts[i].Ctx {
			tips = append(tips, i)
		}
	}
	if pick < 0 || len(tips) < pick+2 {
		return nil, false
	}
	pkts[tips[len(tips)-1-pick]].IP = target
	return oracle.Serialize(pkts), true
}

// jopTarget returns an executable-code address that is neither an
// ITC-CFG node in the production graph nor in the reference graph — the
// landing pad of a synthetic JOP-style hijack.
func jopTarget(fx *DiffFixture) uint64 {
	as := fx.An.OCFG.AS
	for addr := as.Exec.CodeBase + 7; addr < as.Exec.CodeEnd(); addr++ {
		if !fx.Ref.HasNode(addr) && !fx.An.ITC.HasNode(addr) {
			return addr
		}
	}
	return as.Exec.CodeEnd() - 1
}

// psbOffsets lists every complete PSB offset in raw (the truncation
// property cuts prefixes at these points).
func psbOffsets(raw []byte) []int {
	psb := bytes.Repeat([]byte{0x02, 0x82}, 8)
	var out []int
	for i := 0; i+len(psb) <= len(raw); {
		j := bytes.Index(raw[i:], psb)
		if j < 0 {
			break
		}
		out = append(out, i+j)
		i += j + 2
	}
	return out
}

// vulndCorpus runs a short coverage-guided campaign against the
// vulnerable server and returns its corpus — inputs with shapes no
// hand-written workload generator produces.
func vulndCorpus(maxExecs int) [][]byte {
	a := apps.Vulnd()
	exec := func(input []byte, cov []byte) error {
		k := kernelsim.New()
		p, err := a.Spawn(k, input)
		if err != nil {
			return err
		}
		p.CPU.Branch = fuzz.CoverageSink(cov)
		_, err = k.Run(p, 3_000_000)
		return err
	}
	seeds := [][]byte{
		[]byte("G /index\n"),
		[]byte("P 16\n"),
		[]byte("H /health\n"),
	}
	f := fuzz.New(exec, seeds, fuzz.DefaultConfig())
	f.Run(maxExecs)
	return f.Corpus()
}

// progenFixtures generates and diff-trains n random programs, each with
// its own independent reference graph.
func (r *Runner) progenFixtures(n int) ([]*DiffFixture, error) {
	out := make([]*DiffFixture, 0, n)
	for i := 0; i < n; i++ {
		pr, err := progen.Generate(progen.DefaultConfig(int64(1000 + 7*i)))
		if err != nil {
			return nil, err
		}
		a := &apps.App{
			Name: fmt.Sprintf("progen-%d", i),
			Exec: pr.Exec,
			Libs: pr.Libs,
			MakeInput: func(scale int, seed int64) []byte {
				return nil // generated programs take no stdin
			},
		}
		fx, err := r.DiffTrain(a)
		if err != nil {
			return nil, err
		}
		out = append(out, fx)
	}
	return out, nil
}

// OracleSoakRow aggregates one degraded mode's slice of a differential
// soak.
type OracleSoakRow struct {
	Mode guard.DegradedMode
	Runs int
	// ProcRuns executed a real process; StreamRuns replayed a raw
	// stream.
	ProcRuns, StreamRuns int
	// Attacks / Detected count hijacked runs (exploit payloads and
	// injected-edge streams) and how many the production guard flagged.
	Attacks, Detected int
	Checks            uint64
	Faults            uint64
	// DivergenceCount is the number of field-level disagreements;
	// Panics and Errors the runs that blew up. All must be zero.
	DivergenceCount int
	Panics, Errors  int
	// Samples holds the first few divergence/error descriptions.
	Samples []string
}

func (r OracleSoakRow) String() string {
	return fmt.Sprintf("%-15s runs=%-5d proc=%-4d stream=%-4d attacks=%3d/%-3d checks=%-6d faults=%-5d diverged=%d panics=%d errors=%d",
		r.Mode, r.Runs, r.ProcRuns, r.StreamRuns, r.Detected, r.Attacks,
		r.Checks, r.Faults, r.DivergenceCount, r.Panics, r.Errors)
}

func (r *OracleSoakRow) note(s string) {
	if len(r.Samples) < 5 {
		r.Samples = append(r.Samples, s)
	}
}

// OracleSoak drives n seeded differential runs across the three
// degraded modes and eight workload classes: benign and fuzz-corpus
// server traffic, ROP/SROP exploits, chaos-faulted runs, synthetic raw
// streams (injected edges and PSB truncations), generated progen
// programs, fleet fork-inheritance replays (artifact-backed parents,
// forked children), preempted multicore runs (benign and ROP workloads
// time-sliced across shared trace units with noise neighbors), and
// preempted signal/thread workloads (signald's handler-interrupted
// windows, threadd's per-thread demuxed streams). A healthy repository
// reports zero divergences, panics and errors.
func (r *Runner) OracleSoak(n int) ([]OracleSoakRow, error) {
	fx, err := r.OracleFixture()
	if err != nil {
		return nil, err
	}
	progs, err := r.progenFixtures(3)
	if err != nil {
		return nil, err
	}
	preempt, err := r.preemptFixtures()
	if err != nil {
		return nil, err
	}
	corpus := vulndCorpus(300)
	jop := jopTarget(fx)
	psbs := psbOffsets(fx.BenignTrace)

	modes := []guard.DegradedMode{guard.FailClosed, guard.FailOpen, guard.SlowPathRetry}
	rows := make([]OracleSoakRow, len(modes))
	for i := range rows {
		rows[i].Mode = modes[i]
	}
	for seed := 0; seed < n; seed++ {
		mi := seed % len(modes)
		row := &rows[mi]
		pol := guard.DefaultPolicy()
		pol.OnDegraded = modes[mi]
		// Half the seeds run the production guard asynchronously: the
		// pipeline's verdict transparency means every comparison below
		// must still hold bit-for-bit against the synchronous oracle.
		pol.Async = seed%2 == 0
		row.Runs++
		func() {
			defer func() {
				if p := recover(); p != nil {
					row.Panics++
					row.note(fmt.Sprintf("seed %d: panic: %v", seed, p))
				}
			}()
			r.soakOne(fx, progs, preempt, corpus, jop, psbs, seed, pol, row)
		}()
	}
	return rows, nil
}

// preemptFixtures diff-trains the signal- and thread-heavy servers for
// the preempted workload class (class 7): signald interrupts its own
// checked windows with handler entries and sigreturns; threadd fans
// endpoint checks out across cloned threads sharing one address space.
func (r *Runner) preemptFixtures() ([]*DiffFixture, error) {
	out := make([]*DiffFixture, 0, 2)
	for _, name := range []string{"signald", "threadd"} {
		a, err := apps.ByName(name)
		if err != nil {
			return nil, err
		}
		fx, err := r.DiffTrain(a)
		if err != nil {
			return nil, err
		}
		out = append(out, fx)
	}
	return out, nil
}

// mcSoakRun folds one multicore differential run into the soak's
// DiffOutcome shape, adding the transport-cleanliness assertion: these
// runs inject no faults, so any demux resynchronization or attribution
// loss is itself a divergence.
func mcSoakRun(fx *DiffFixture, input []byte, pol guard.Policy,
	cores int, quantum uint64, noise [][]byte) (*DiffOutcome, error) {
	mo, err := diffMulticoreRun(fx, input, pol, cores, quantum, noise)
	if err != nil {
		return nil, err
	}
	if mo.Demux != nil && (mo.Demux.Resyncs != 0 || mo.Demux.UnmarkedLosses != 0) {
		mo.Divergences = append(mo.Divergences, fmt.Sprintf(
			"fault-free multicore run: demux Resyncs=%d UnmarkedLosses=%d",
			mo.Demux.Resyncs, mo.Demux.UnmarkedLosses))
	}
	return &mo.DiffOutcome, nil
}

// soakOne runs a single soak seed, folding its outcome into row.
func (r *Runner) soakOne(fx *DiffFixture, progs, preempt []*DiffFixture, corpus [][]byte,
	jop uint64, psbs []int, seed int, pol guard.Policy, row *OracleSoakRow) {
	var (
		out      *DiffOutcome
		err      error
		isAttack bool
		stream   bool
	)
	// OracleSoak cycles modes with period 3, which shares a factor with
	// the eight workload classes; divide the mode period out so the class
	// cycles per-mode and every (mode, class) pair occurs.
	k := seed / 3
	v := k / 8
	switch k % 8 {
	case 0: // benign traffic, alternating generated and fuzz-corpus inputs
		input := fx.Benign
		if len(corpus) > 0 && v%2 == 1 {
			input = corpus[v%len(corpus)]
		}
		out, err = diffProtectedRun(fx, input, pol, nil)
	case 1: // exploit payloads
		isAttack = true
		input := fx.ROP
		if v%2 == 1 {
			input = fx.SROP
		}
		out, err = diffProtectedRun(fx, input, pol, nil)
	case 2: // chaos-faulted runs, benign and hijacked alternating
		plan := faults.FromSeed(int64(seed))
		input := fx.Benign
		if v%2 == 1 {
			isAttack = true
			input = fx.ROP
		}
		out, err = diffProtectedRun(fx, input, pol, plan)
		if out != nil {
			row.Faults += plan.Total()
		}
	case 3: // synthetic raw streams
		stream = true
		if v%2 == 0 {
			isAttack = true
			raw, ok := injectEdge(fx.BenignTrace, 1+v%8, jop)
			if !ok {
				err = fmt.Errorf("seed %d: injectEdge failed", seed)
				break
			}
			out, err = diffRawStream(fx, pol, raw, 1+v%7, len(raw))
		} else {
			p := psbs[v%len(psbs)]
			out, err = diffRawStream(fx, pol, fx.BenignTrace[p:], 1+v%7, guard.DefaultToPARegion)
		}
	case 4: // generated programs
		pfx := progs[v%len(progs)]
		out, err = diffProtectedRun(pfx, nil, pol, nil)
	case 5: // fleet fork-inheritance replays
		stream = true
		if v%2 == 0 {
			isAttack = true
			raw, ok := injectEdge(fx.BenignTrace, 1+v%8, jop)
			if !ok {
				err = fmt.Errorf("seed %d: injectEdge failed", seed)
				break
			}
			out, err = diffFleetStream(fx, pol, fx.BenignTrace, raw, 1+v%7)
		} else {
			out, err = diffFleetStream(fx, pol, fx.BenignTrace, fx.BenignTrace, 1+v%7)
		}
	case 6: // preempted multicore runs, benign and hijacked alternating
		input := fx.Benign
		if v%2 == 1 {
			isAttack = true
			input = fx.ROP
		}
		var noise [][]byte
		if v%3 != 0 {
			noise = [][]byte{fx.An.App.MakeInput(r.Scale/2+2, int64(seed+500))}
		}
		quanta := [...]uint64{120, 250, 400}
		out, err = mcSoakRun(fx, input, pol, 1+v%3, quanta[v%len(quanta)], noise)
	default: // preempted signal/thread workloads (handler windows, clones)
		pfx := preempt[v%len(preempt)]
		input := pfx.An.App.MakeInput(16+v%16, int64(seed))
		quanta := [...]uint64{120, 200, 300}
		out, err = mcSoakRun(pfx, input, pol, 1+v%3, quanta[v%len(quanta)], nil)
	}
	if err != nil {
		row.Errors++
		row.note(fmt.Sprintf("seed %d: %v", seed, err))
		return
	}
	if stream {
		row.StreamRuns++
	} else {
		row.ProcRuns++
	}
	row.Checks += uint64(out.Checks)
	if isAttack {
		row.Attacks++
		if out.GuardViolation {
			row.Detected++
		}
	}
	row.DivergenceCount += len(out.Divergences)
	for _, d := range out.Divergences {
		row.note(fmt.Sprintf("seed %d: %s", seed, d))
	}
}
