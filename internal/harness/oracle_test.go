package harness

import (
	"encoding/hex"
	"flag"
	"fmt"
	"sync"
	"testing"

	"flowguard/internal/apps"
	"flowguard/internal/faults"
	"flowguard/internal/guard"
	"flowguard/internal/oracle"
	"flowguard/internal/trace/ipt"
)

var seedFile = flag.String("seedfile", "", "replay a dumped property-failure artifact (TestOracleReplay)")

// The fixture is expensive (analysis + training + attack synthesis), so
// every differential test shares one.
var diffFix struct {
	once sync.Once
	fx   *DiffFixture
	err  error
}

func getFixture(t testing.TB) *DiffFixture {
	diffFix.once.Do(func() {
		diffFix.fx, diffFix.err = NewRunner().OracleFixture()
	})
	if diffFix.err != nil {
		t.Fatalf("oracle fixture: %v", diffFix.err)
	}
	return diffFix.fx
}

var diffModes = []guard.DegradedMode{guard.FailClosed, guard.FailOpen, guard.SlowPathRetry}

func modePolicy(m guard.DegradedMode) guard.Policy {
	pol := guard.DefaultPolicy()
	pol.OnDegraded = m
	return pol
}

// TestDegradedModeEnumsAgree pins the value-for-value correspondence
// oraclePolicy's cast relies on.
func TestDegradedModeEnumsAgree(t *testing.T) {
	if uint8(guard.FailClosed) != uint8(oracle.FailClosed) ||
		uint8(guard.FailOpen) != uint8(oracle.FailOpen) ||
		uint8(guard.SlowPathRetry) != uint8(oracle.SlowPathRetry) {
		t.Fatal("DegradedMode enums diverged between guard and oracle")
	}
	if uint8(guard.HealthClean) != uint8(oracle.HealthClean) ||
		uint8(guard.HealthResynced) != uint8(oracle.HealthResynced) ||
		uint8(guard.HealthGap) != uint8(oracle.HealthGap) ||
		uint8(guard.HealthMalformed) != uint8(oracle.HealthMalformed) {
		t.Fatal("health enums diverged between guard and oracle")
	}
	if uint8(guard.VerdictClean) != uint8(oracle.VerdictClean) ||
		uint8(guard.VerdictViolation) != uint8(oracle.VerdictViolation) {
		t.Fatal("verdict enums diverged between guard and oracle")
	}
}

// TestRefGraphMatchesITC cross-checks the independently derived
// reference ITC-CFG against the production graph: identical node sets
// and identical edge sets (both directions, exhaustively).
func TestRefGraphMatchesITC(t *testing.T) {
	fx := getFixture(t)
	ig, ref := fx.An.ITC, fx.Ref
	if ig.NumNodes() != ref.NumNodes() {
		t.Fatalf("node counts diverge: itc %d, ref %d", ig.NumNodes(), ref.NumNodes())
	}
	nodes := ig.Nodes()
	for _, n := range nodes {
		if !ref.HasNode(n) {
			t.Fatalf("node %#x in production graph but not in reference", n)
		}
	}
	refEdges := make(map[[2]uint64]bool, ref.EdgeCount())
	for _, e := range ref.Edges() {
		refEdges[e] = true
		if !ig.HasEdge(e[0], e[1]) {
			t.Errorf("edge %#x -> %#x in reference but not in production graph", e[0], e[1])
		}
	}
	for _, s := range nodes {
		for _, d := range nodes {
			if ig.HasEdge(s, d) && !refEdges[[2]uint64{s, d}] {
				t.Errorf("edge %#x -> %#x in production graph but not in reference", s, d)
			}
		}
	}
}

// TestDifferentialBenign runs the clean workload under every degraded
// mode: the pipelines must agree on every check and the process must
// survive.
func TestDifferentialBenign(t *testing.T) {
	fx := getFixture(t)
	for _, m := range diffModes {
		out, err := diffProtectedRun(fx, fx.Benign, modePolicy(m), nil)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if out.Checks == 0 {
			t.Fatalf("%v: no endpoint checks ran", m)
		}
		if !out.Exited || out.Killed {
			t.Fatalf("%v: benign run did not exit cleanly (exited=%v killed=%v)", m, out.Exited, out.Killed)
		}
		for _, d := range out.Divergences {
			t.Errorf("%v: %s", m, d)
		}
	}
}

// TestDifferentialAttacks runs the ROP and SROP payloads under every
// degraded mode: both pipelines must agree and the guard must kill.
func TestDifferentialAttacks(t *testing.T) {
	fx := getFixture(t)
	for _, m := range diffModes {
		for name, input := range map[string][]byte{"rop": fx.ROP, "srop": fx.SROP} {
			out, err := diffProtectedRun(fx, input, modePolicy(m), nil)
			if err != nil {
				t.Fatalf("%v/%s: %v", m, name, err)
			}
			if !out.GuardViolation || !out.Killed {
				t.Errorf("%v/%s: attack not detected (violation=%v killed=%v)", m, name, out.GuardViolation, out.Killed)
			}
			for _, d := range out.Divergences {
				t.Errorf("%v/%s: %s", m, name, d)
			}
		}
	}
}

// TestDifferentialFaulted sweeps seeded fault plans (trace loss,
// corruption, stalls) across modes and workload classes: whatever the
// damage, the two pipelines must resolve it identically.
func TestDifferentialFaulted(t *testing.T) {
	fx := getFixture(t)
	for seed := int64(0); seed < 18; seed++ {
		m := diffModes[seed%3]
		input := fx.Benign
		if seed%2 == 1 {
			input = fx.ROP
		}
		out, err := diffProtectedRun(fx, input, modePolicy(m), faults.FromSeed(seed))
		if err != nil {
			t.Fatalf("seed %d %v: %v", seed, m, err)
		}
		for _, d := range out.Divergences {
			t.Errorf("seed %d %v: %s", seed, m, d)
		}
	}
}

// dumpFailure shrinks a failing trace and dumps a replayable artifact,
// reporting the replay command.
func dumpFailure(t *testing.T, art *SeedArtifact, raw []byte, fails func([]byte) bool) {
	t.Helper()
	min := ShrinkTrace(raw, fails)
	art.TraceHex = hex.EncodeToString(min)
	path, err := DumpSeedArtifact(art)
	if err != nil {
		t.Errorf("property %s failed; artifact dump also failed: %v", art.Property, err)
		return
	}
	t.Errorf("property %s failed (trace minimized %d -> %d bytes); replay with: go test ./internal/harness -run TestOracleReplay -seedfile=%s",
		art.Property, len(raw), len(min), path)
}

// propInjectedEdge checks property (a) for one (pick, chunks, mode)
// point: both pipelines agree on the mutated stream, and returns whether
// the injection was detected as a violation.
func propInjectedEdge(t *testing.T, fx *DiffFixture, raw []byte, chunks int, m guard.DegradedMode, seed int64) (detected bool) {
	t.Helper()
	out, err := diffRawStream(fx, modePolicy(m), raw, chunks, len(raw))
	if err != nil {
		t.Fatalf("injected-edge replay: %v", err)
	}
	if len(out.Divergences) > 0 {
		for _, d := range out.Divergences {
			t.Errorf("injected-edge %v: %s", m, d)
		}
		dumpFailure(t, &SeedArtifact{Property: "injected-edge", Seed: seed, Mode: int(m), Chunks: chunks}, raw,
			func(b []byte) bool {
				o, e := diffRawStream(fx, modePolicy(m), b, chunks, len(b))
				return e == nil && len(o.Divergences) > 0
			})
	}
	return out.GuardViolation
}

// TestPropertyInjectedEdge: retargeting one TIP of a benign trace at a
// non-CFG address flips the verdict to violation, identically in both
// pipelines, for every pick position in the checked window.
func TestPropertyInjectedEdge(t *testing.T) {
	fx := getFixture(t)
	jop := jopTarget(fx)
	detected := 0
	for pick := 1; pick <= 8; pick++ {
		raw, ok := injectEdge(fx.BenignTrace, pick, jop)
		if !ok {
			t.Fatalf("injectEdge failed at pick %d", pick)
		}
		if propInjectedEdge(t, fx, raw, 1+pick%4, diffModes[pick%3], int64(pick)) {
			detected++
		}
	}
	if detected == 0 {
		t.Error("no injected edge was detected as a violation by any pick")
	}
}

// TestPropertyRoundTrip: the captured production trace re-serializes
// byte-identically through the oracle grammar (property b).
func TestPropertyRoundTrip(t *testing.T) {
	fx := getFixture(t)
	pkts, consumed, err := oracle.ParsePackets(fx.BenignTrace)
	if err != nil {
		t.Fatalf("parse of production trace: %v", err)
	}
	if consumed != len(fx.BenignTrace) {
		t.Fatalf("parse consumed %d of %d production bytes", consumed, len(fx.BenignTrace))
	}
	got := oracle.Serialize(pkts)
	if len(got) != len(fx.BenignTrace) {
		t.Fatalf("round trip changed length: %d -> %d", len(fx.BenignTrace), len(got))
	}
	for i := range got {
		if got[i] != fx.BenignTrace[i] {
			t.Fatalf("round trip diverged at byte %d: %#x -> %#x", i, fx.BenignTrace[i], got[i])
		}
	}
}

// TestPropertyPSBTruncation: any prefix truncation at a PSB boundary
// yields a resynced-or-clean stream — never malformed — and both
// pipelines agree on it (property c).
func TestPropertyPSBTruncation(t *testing.T) {
	fx := getFixture(t)
	pts := psbOffsets(fx.BenignTrace)
	if len(pts) == 0 {
		t.Fatal("production trace holds no PSB")
	}
	step := 1
	if len(pts) > 8 {
		step = len(pts) / 8
	}
	for i := 0; i < len(pts); i += step {
		raw := fx.BenignTrace[pts[i]:]
		m := diffModes[i%3]
		chunks := 1 + i%5
		out, err := diffRawStream(fx, modePolicy(m), raw, chunks, guard.DefaultToPARegion)
		if err != nil {
			t.Fatalf("psb %d: %v", i, err)
		}
		bad := len(out.Divergences) > 0
		for _, h := range out.Healths {
			if h == guard.HealthMalformed {
				t.Errorf("psb %d %v: truncation at a sync point classified malformed", i, m)
				bad = true
			}
		}
		for _, d := range out.Divergences {
			t.Errorf("psb %d %v: %s", i, m, d)
		}
		if bad {
			dumpFailure(t, &SeedArtifact{Property: "psb-truncation", Seed: int64(i), Mode: int(m), Chunks: chunks}, raw,
				func(b []byte) bool {
					o, e := diffRawStream(fx, modePolicy(m), b, chunks, guard.DefaultToPARegion)
					if e != nil {
						return false
					}
					if len(o.Divergences) > 0 {
						return true
					}
					for _, h := range o.Healths {
						if h == guard.HealthMalformed {
							return true
						}
					}
					return false
				})
		}
	}
}

// warmVerdicts replays the benign trace with a high credit bar (forcing
// slow paths) and returns the per-check verdict sequence; prior
// pipelines, when given, pre-warm the approval stores.
func warmVerdicts(t *testing.T, fx *DiffFixture, chunks int, prevG *guard.Guard, prevO *oracle.Oracle) ([]guard.Verdict, *guard.Guard, *oracle.Oracle) {
	t.Helper()
	pol := guard.DefaultPolicy()
	g, o, topa, err := newDiffPair(fx, pol, len(fx.BenignTrace))
	if err != nil {
		t.Fatal(err)
	}
	if prevG != nil {
		g.ShareApprovals(prevG.Approvals())
		o.AdoptApprovals(prevO)
	}
	out := &DiffOutcome{}
	var verdicts []guard.Verdict
	raw := fx.BenignTrace
	for c := 0; c < chunks; c++ {
		lo, hi := c*len(raw)/chunks, (c+1)*len(raw)/chunks
		topa.Write(raw[lo:hi])
		gres := g.Check()
		ores := o.Check()
		out.Checks++
		verdicts = append(verdicts, gres.Verdict)
		out.Divergences = append(out.Divergences, compareResults(out.Checks, gres, ores)...)
	}
	out.Divergences = append(out.Divergences, compareStats(&g.Stats, &o.Stats)...)
	for _, d := range out.Divergences {
		t.Errorf("warm-cache: %s", d)
	}
	return verdicts, g, o
}

// newUnderTrainedFixture trains both graphs on only the first third of
// the very trace the tests replay: the run's tail then exercises
// legal-but-uncredited edges — the population slow-path approvals exist
// for.
func newUnderTrainedFixture() (*DiffFixture, error) {
	r := NewRunner()
	an, err := r.Analyze(apps.Vulnd())
	if err != nil {
		return nil, err
	}
	benign := an.App.MakeInput(r.Scale, r.Seed)
	raw, err := r.traceBytes(an.App, benign)
	if err != nil {
		return nil, err
	}
	cut := len(raw) / 3
	evs, err := ipt.DecodeFast(raw[:cut]) // truncated tails stop cleanly
	if err != nil {
		return nil, err
	}
	an.ITC.ObserveWindow(ipt.ExtractTIPs(evs))
	ref := oracle.NewRef(an.OCFG)
	if err := ref.ObserveTrace(raw[:cut]); err != nil {
		return nil, err
	}
	an.ITC.RebuildCache()
	ref.Rebuild()
	return &DiffFixture{An: an, Ref: ref, Benign: benign, BenignTrace: raw}, nil
}

func underTrainedFixture(t *testing.T) *DiffFixture {
	t.Helper()
	fx, err := newUnderTrainedFixture()
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

// TestPropertyWarmApprovalCache: a warm approval cache may convert slow
// paths into fast paths but never changes a verdict, and both pipelines
// agree throughout (property d).
func TestPropertyWarmApprovalCache(t *testing.T) {
	fx := underTrainedFixture(t)
	const chunks = 6
	cold, g1, o1 := warmVerdicts(t, fx, chunks, nil, nil)
	if g1.Approvals().Len() == 0 {
		t.Fatal("cold run approved no edges; the property would be vacuous")
	}
	warm, _, _ := warmVerdicts(t, fx, chunks, g1, o1)
	if len(cold) != len(warm) {
		t.Fatalf("check counts diverge: cold %d, warm %d", len(cold), len(warm))
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Errorf("check %d: cold verdict %v, warm verdict %v", i, cold[i], warm[i])
		}
	}
}

// TestOracleSoakShort is a scaled-down version of the nightly
// `make oracle-soak` acceptance run.
func TestOracleSoakShort(t *testing.T) {
	n := 45
	if testing.Short() {
		n = 12
	}
	rows, err := NewRunner().OracleSoak(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		t.Logf("%s", row)
		if row.DivergenceCount > 0 || row.Panics > 0 || row.Errors > 0 {
			t.Errorf("%v: %d divergences, %d panics, %d errors; samples: %v",
				row.Mode, row.DivergenceCount, row.Panics, row.Errors, row.Samples)
		}
		if row.Mode != guard.FailOpen && row.Detected != row.Attacks {
			t.Errorf("%v: only %d of %d attacks detected", row.Mode, row.Detected, row.Attacks)
		}
	}
}

// TestOracleReplay re-runs a dumped property-failure artifact
// bit-for-bit. Without -seedfile it is a no-op; with one it fails while
// the dumped bug still reproduces.
func TestOracleReplay(t *testing.T) {
	if *seedFile == "" {
		t.Skip("no -seedfile given")
	}
	art, err := LoadSeedArtifact(*seedFile)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := art.Trace()
	if err != nil {
		t.Fatalf("artifact trace: %v", err)
	}
	fx := getFixture(t)
	m := guard.DegradedMode(art.Mode)
	switch art.Property {
	case "injected-edge", "stream-diff":
		out, err := diffRawStream(fx, modePolicy(m), raw, art.Chunks, len(raw))
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range out.Divergences {
			t.Errorf("replay: %s", d)
		}
	case "psb-truncation":
		out, err := diffRawStream(fx, modePolicy(m), raw, art.Chunks, guard.DefaultToPARegion)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range out.Healths {
			if h == guard.HealthMalformed {
				t.Error("replay: malformed health on a PSB-aligned truncation")
			}
		}
		for _, d := range out.Divergences {
			t.Errorf("replay: %s", d)
		}
	case "fork-inherit":
		ffx, fart := forkFixture(t)
		// The dispatch flavor is not recorded; replay both — the dumped
		// bug reproduces in at least one.
		for _, useArt := range []bool{false, true} {
			p := forkPoint{pol: modePolicy(m), chunks: art.Chunks, forkAt: art.Pick, artifact: useArt}
			divs, _, err := runForkConformance(ffx, fart, p, raw)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range divs {
				t.Errorf("replay (artifact=%v): %s", useArt, d)
			}
		}
	case "demux-roundtrip":
		mfx, mrop := mcFixture(t)
		// The point decodes from the seed; the (possibly shrunk) artifact
		// bytes replace the workload input.
		p := mcPointFor(art.Seed)
		divs, _, err := runMCConformance(mfx, p, raw, mcNoise(mfx, p, art.Seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range divs {
			t.Errorf("replay: %s", d)
		}
		_ = mrop
	default:
		t.Fatalf("unknown property %q in artifact", art.Property)
	}
}

// TestShrinkTraceMinimizes exercises the shrinker on a synthetic
// predicate: the minimized trace must keep failing and be packet-aligned
// smaller than the input.
func TestShrinkTraceMinimizes(t *testing.T) {
	fx := getFixture(t)
	jop := jopTarget(fx)
	raw, ok := injectEdge(fx.BenignTrace, 2, jop)
	if !ok {
		t.Fatal("injectEdge failed")
	}
	fails := func(b []byte) bool {
		o, err := diffRawStream(fx, modePolicy(guard.FailClosed), b, 1, len(b)+guard.DefaultToPARegion)
		return err == nil && o.GuardViolation
	}
	if !fails(raw) {
		t.Skip("injection at pick 2 not detected; covered by TestPropertyInjectedEdge")
	}
	min := ShrinkTrace(raw, fails)
	if !fails(min) {
		t.Fatal("shrunk trace no longer fails")
	}
	if len(min) > len(raw) {
		t.Fatalf("shrinker grew the trace: %d -> %d", len(raw), len(min))
	}
	t.Logf("shrunk %d -> %d bytes", len(raw), len(min))
}

// FuzzHybridVsOracle feeds arbitrary bytes through both pipelines as a
// raw stream replay: they must never panic and never disagree.
func FuzzHybridVsOracle(f *testing.F) {
	fx := getFixture(f)
	psb := []byte{0x02, 0x82, 0x02, 0x82, 0x02, 0x82, 0x02, 0x82, 0x02, 0x82, 0x02, 0x82, 0x02, 0x82, 0x02, 0x82}
	f.Add([]byte{}, uint8(0), uint8(1))
	f.Add(psb, uint8(1), uint8(2))
	f.Add(append(append([]byte{}, psb...), 0x02, 0xF3), uint8(2), uint8(1)) // OVF after sync
	f.Add(append(append([]byte{}, psb...), 0xFF, 0x00, 0x6D), uint8(0), uint8(3))
	head := fx.BenignTrace
	if len(head) > 2048 {
		head = head[:2048]
	}
	f.Add(append([]byte{}, head...), uint8(1), uint8(4))
	if raw, ok := injectEdge(fx.BenignTrace, 3, jopTarget(fx)); ok {
		tail := raw
		if len(tail) > 2048 {
			tail = tail[len(tail)-2048:]
		}
		f.Add(append([]byte{}, tail...), uint8(2), uint8(2))
	}
	// Context-switch markers at region seams: the bare PIP+MODE pair the
	// multicore world writes between slices — whole, truncated mid-CR3
	// (a slice-boundary fault), and spliced into a benign stream where
	// the replay chunking will cut it.
	mark := []byte{0x02, 0x43, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x00, 0x02, 0x99, 0x01}
	f.Add(append(append([]byte{}, psb...), mark...), uint8(0), uint8(2))
	f.Add(append(append([]byte{}, psb...), mark[:6]...), uint8(1), uint8(3))
	if len(fx.BenignTrace) > 1024 {
		spliced := append([]byte{}, fx.BenignTrace[:512]...)
		spliced = append(spliced, mark...)
		spliced = append(spliced, fx.BenignTrace[512:1024]...)
		f.Add(spliced, uint8(2), uint8(5))
	}
	f.Fuzz(func(t *testing.T, raw []byte, mode, chunks uint8) {
		m := diffModes[int(mode)%len(diffModes)]
		out, err := diffRawStream(fx, modePolicy(m), raw, 1+int(chunks)%6, guard.DefaultToPARegion)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Divergences) > 0 {
			art := &SeedArtifact{Property: "stream-diff", Mode: int(m), Chunks: 1 + int(chunks)%6,
				TraceHex: hex.EncodeToString(raw)}
			path, _ := DumpSeedArtifact(art)
			t.Fatalf("pipelines diverged (artifact %s): %v", path, out.Divergences)
		}
	})
}

var _ = fmt.Sprintf // keep fmt for ad-hoc debugging edits
