package harness

// perfexport bridges the harness's experiment results into the
// perfstat artifact schema, so fgbench -json and fgperf speak the same
// BENCH_<date>.json dialect and a trajectory point can carry both
// wall-clock benchmarks and the paper's per-phase overhead breakdowns.

import (
	"flowguard/internal/guard"
	"flowguard/internal/perfstat"
)

// StatField is one guard.Stats counter paired with its report name.
type StatField struct {
	Name  string
	Value uint64
}

// StatsFields flattens every guard.Stats counter into named fields, in
// report order. It is the reporter leg of the statssync invariant: a
// field added to guard.Stats but missing here (or from Stats.Merge or
// the oracle comparison) is an fgvet error, so neither the FormatStats
// block nor the JSON artifact can silently omit a counter.
//
//fg:statssync guard.Stats
func StatsFields(s *guard.Stats) []StatField {
	return []StatField{
		{"Checks", s.Checks},
		{"SlowChecks", s.SlowChecks},
		{"Violations", s.Violations},
		{"TIPsChecked", s.TIPsChecked},
		{"HighEdges", s.HighEdges},
		{"LowEdges", s.LowEdges},
		{"DecodeCycles", s.DecodeCycles},
		{"CheckCycles", s.CheckCycles},
		{"OtherCycles", s.OtherCycles},
		{"SlowCycles", s.SlowCycles},
		{"BytesScanned", s.BytesScanned},
		{"CacheHits", s.CacheHits},
		{"Resyncs", s.Resyncs},
		{"Overflows", s.Overflows},
		{"Gaps", s.Gaps},
		{"Malformed", s.Malformed},
		{"DegradedChecks", s.DegradedChecks},
		{"FailOpens", s.FailOpens},
		{"FailClosures", s.FailClosures},
		{"Retries", s.Retries},
		{"Shed", s.Shed},
		{"FairnessSheds", s.FairnessSheds},
		{"AsyncWindows", s.AsyncWindows},
		{"AsyncMaxLag", s.AsyncMaxLag},
		{"BackpressureStalls", s.BackpressureStalls},
		{"WatchdogSheds", s.WatchdogSheds},
		{"WorkerCrashes", s.WorkerCrashes},
		{"ForkInherits", s.ForkInherits},
		{"StreamLosses", s.StreamLosses},
	}
}

// StatsMap returns the counters keyed by name — the artifact's
// fleet_stats form.
func StatsMap(s *guard.Stats) map[string]uint64 {
	fields := StatsFields(s)
	m := make(map[string]uint64, len(fields))
	for _, f := range fields {
		m[f.Name] = f.Value
	}
	return m
}

// PhaseBreakdowns converts Figure-5 overhead rows into their
// schema-stable artifact form.
func PhaseBreakdowns(rows []OverheadRow) []perfstat.PhaseBreakdown {
	out := make([]perfstat.PhaseBreakdown, len(rows))
	for i, r := range rows {
		out[i] = perfstat.PhaseBreakdown{
			App:        r.App,
			Category:   r.Category,
			TotalPct:   r.TotalPct,
			TracePct:   r.TracePct,
			DecodePct:  r.DecodePct,
			CheckPct:   r.CheckPct,
			OtherPct:   r.OtherPct,
			SlowRate:   r.SlowRate,
			CredRatio:  r.CredRatio,
			BaseInstrs: r.BaseInstrs,
		}
	}
	return out
}
