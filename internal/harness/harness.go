// Package harness drives the paper's evaluation (§7): it reproduces every
// table and figure — Table 1 (tracing mechanisms), Table 4 (CFG statistics
// and AIA), Table 5 (memory and CFG generation time), Figure 5(a)-(c)
// (runtime overhead with the trace/decode/check/other breakdown), Figure
// 5(d) (fuzzing training dynamics), the §7.2.2 micro-benchmarks, the
// §7.1.2 attack matrix, the §7.1.1 parameter analysis and the §7.2.4
// hardware-extension ablation.
//
// Overheads are reported from the calibrated cycle model (see
// EXPERIMENTS.md): the protected process retires exactly the same
// instruction stream as the baseline, so the overhead is the metered
// tracing/decoding/checking work divided by the baseline execution
// cycles, mirroring how the paper attributes its Figure 5 components.
package harness

import (
	"errors"
	"fmt"
	"math"
	"time"

	"flowguard/internal/apps"
	"flowguard/internal/cfg"
	"flowguard/internal/guard"
	"flowguard/internal/itc"
	"flowguard/internal/kernelsim"
	"flowguard/internal/trace/ipt"
)

// Runner fixes the experiment parameters.
type Runner struct {
	// Scale sizes each workload (requests, archive entries, kernel
	// iterations); the paper's runs are minutes long, the default here
	// keeps a full reproduction in seconds.
	Scale int
	// Seed drives workload generation.
	Seed int64
	// TrainRuns is the number of differently-seeded training replays
	// per application.
	TrainRuns int
	// Policy is the protection configuration (DefaultPolicy if zero).
	Policy guard.Policy
}

// NewRunner returns the default experiment configuration.
func NewRunner() *Runner {
	return &Runner{Scale: 30, Seed: 1, TrainRuns: 6, Policy: guard.DefaultPolicy()}
}

const ctlTrace = ipt.CtlTraceEn | ipt.CtlBranchEn | ipt.CtlUser | ipt.CtlToPA

// Analysis bundles the offline phase outputs for one application.
type Analysis struct {
	App     *apps.App
	OCFG    *cfg.Graph
	ITC     *itc.Graph
	GenTime time.Duration
	// LibShare is the fraction of analyzed basic blocks living in
	// shared libraries (the paper: >90% of generation time is spent on
	// libraries, so caching their CFGs amortizes the cost).
	LibShare float64
}

// Analyze runs static CFG generation and ITC reconstruction.
func (r *Runner) Analyze(a *apps.App) (*Analysis, error) {
	as, err := a.Load()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	g, err := cfg.Build(as)
	if err != nil {
		return nil, err
	}
	ig := itc.FromCFG(g)
	gen := time.Since(start)
	st := g.ComputeStats()
	libShare := 0.0
	if st.ExecBlocks+st.LibBlocks > 0 {
		libShare = float64(st.LibBlocks) / float64(st.ExecBlocks+st.LibBlocks)
	}
	return &Analysis{App: a, OCFG: g, ITC: ig, GenTime: gen, LibShare: libShare}, nil
}

// Train replays TrainRuns differently-seeded workloads under the IPT
// model and labels the ITC-CFG (§4.3 step 3 without the fuzzing stage;
// TrainWithFuzzer adds it).
func (r *Runner) Train(an *Analysis) error {
	for i := 0; i < r.TrainRuns; i++ {
		input := an.App.MakeInput(r.Scale, r.Seed+int64(100+i))
		tips, err := r.traceRun(an.App, input)
		if err != nil {
			return err
		}
		an.ITC.ObserveWindow(tips)
	}
	an.ITC.RebuildCache()
	return nil
}

// traceRun executes the app on input with IPT attached and returns the
// extracted TIP window over the whole run.
func (r *Runner) traceRun(a *apps.App, input []byte) ([]ipt.TIPRecord, error) {
	raw, err := r.traceBytes(a, input)
	if err != nil {
		return nil, err
	}
	evs, err := ipt.DecodeFast(raw)
	if err != nil {
		return nil, err
	}
	return ipt.ExtractTIPs(evs), nil
}

// traceBytes executes the app on input with IPT attached and returns the
// raw trace stream (the differential oracle trains both pipelines from
// the identical bytes).
func (r *Runner) traceBytes(a *apps.App, input []byte) ([]byte, error) {
	k := kernelsim.New()
	p, err := a.Spawn(k, input)
	if err != nil {
		return nil, err
	}
	tr := ipt.NewTracer(ipt.NewToPA(64 << 20))
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
		return nil, err
	}
	p.CPU.Branch = tr
	st, err := k.Run(p, 500_000_000)
	if err != nil {
		return nil, err
	}
	if !st.Exited {
		return nil, fmt.Errorf("harness: training run of %s: %v", a.Name, st)
	}
	tr.Flush()
	return tr.Out.Snapshot(), nil
}

// Baseline runs the app unprotected and untraced, returning execution
// cycles and instruction count.
func (r *Runner) Baseline(a *apps.App, input []byte) (cycles, instrs uint64, err error) {
	k := kernelsim.New()
	p, err := a.Spawn(k, input)
	if err != nil {
		return 0, 0, err
	}
	st, err := k.Run(p, 500_000_000)
	if err != nil {
		return 0, 0, err
	}
	if !st.Exited {
		return 0, 0, fmt.Errorf("harness: baseline of %s: %v", a.Name, st)
	}
	return p.CPU.CycleCount, p.CPU.Instrs, nil
}

// ProtectedRun is the outcome of one run under full FlowGuard
// protection.
type ProtectedRun struct {
	BaseCycles uint64
	// Component cycle meters.
	TraceCycles  uint64
	DecodeCycles uint64
	CheckCycles  uint64
	OtherCycles  uint64
	SlowCycles   uint64
	Stats        guard.Stats
	Killed       bool
	Reports      []guard.ViolationReport
	WallTime     time.Duration
}

// OverheadPct returns the total overhead percentage against the
// baseline execution cycles.
func (pr *ProtectedRun) OverheadPct() float64 {
	if pr.BaseCycles == 0 {
		return 0
	}
	extra := pr.TraceCycles + pr.DecodeCycles + pr.CheckCycles + pr.OtherCycles + pr.SlowCycles
	return 100 * float64(extra) / float64(pr.BaseCycles)
}

// ComponentPct returns the (trace, decode, check, other) shares in
// percent of baseline; the slow path is folded into "check" as the paper
// does (it is part of checking work at the endpoint).
func (pr *ProtectedRun) ComponentPct() (trace, decode, check, other float64) {
	if pr.BaseCycles == 0 {
		return
	}
	b := float64(pr.BaseCycles)
	return 100 * float64(pr.TraceCycles) / b,
		100 * float64(pr.DecodeCycles) / b,
		100 * float64(pr.CheckCycles+pr.SlowCycles) / b,
		100 * float64(pr.OtherCycles) / b
}

// RunProtected executes the app on input under the trained guard.
func (r *Runner) RunProtected(an *Analysis, input []byte, pol guard.Policy) (*ProtectedRun, error) {
	k := kernelsim.New()
	p, err := an.App.Spawn(k, input)
	if err != nil {
		return nil, err
	}
	km := guard.InstallModule(k)
	g, err := km.Protect(p, an.OCFG, an.ITC, pol)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	st, err := k.Run(p, 500_000_000)
	km.Shutdown() // close any module-owned async pool, flush pipeline counters
	if err != nil {
		return nil, err
	}
	if !st.Exited && !st.Killed {
		return nil, errors.New("harness: protected run did not finish")
	}
	return &ProtectedRun{
		BaseCycles:   p.CPU.CycleCount,
		TraceCycles:  g.Tracer.Cycles(),
		DecodeCycles: g.Stats.DecodeCycles,
		CheckCycles:  g.Stats.CheckCycles,
		OtherCycles:  g.Stats.OtherCycles,
		SlowCycles:   g.Stats.SlowCycles,
		Stats:        g.Stats,
		Killed:       st.Killed,
		Reports:      km.Reports,
		WallTime:     time.Since(start),
	}, nil
}

// geomean of positive values; zeros contribute as tiny positives so a
// zero-overhead app does not zero the whole mean.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x < 1e-9 {
			x = 1e-9
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
