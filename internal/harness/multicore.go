package harness

// Multicore differential driver: runs a workload under the preemptive
// multi-core world (guard.EnableMulticore + kernelsim.RunMulticore) with
// harness-owned endpoint interceptors, so every module verdict — computed
// over a demux-reconstructed per-thread window — is compared on the spot
// against a reference oracle reading the very same reconstructed sink.
// The oracle side is per thread: the first thread's oracle owns the
// approval store and later threads adopt it, mirroring how the guard
// shares one approval cache across its ThreadStates.

import (
	"flowguard/internal/guard"
	"flowguard/internal/kernelsim"
	"flowguard/internal/oracle"
	"flowguard/internal/trace/ipt"
)

// MCOutcome extends DiffOutcome with the multicore run's scheduler- and
// transport-level observables.
type MCOutcome struct {
	DiffOutcome
	// Results is the target process's per-check production result
	// sequence, in endpoint order (the round-trip property compares it
	// against a solo run's sequence).
	Results []guard.Result
	// Statuses are RunMulticore's exit statuses (target first).
	Statuses []kernelsim.ExitStatus
	// Guard is the target's checking engine, Demux the module's stream
	// router (counters are read after FlushMulticore).
	Guard *guard.Guard
	Demux *ipt.Demux
	// ThreadOracles is how many per-thread oracles ran (>1 means clone
	// threads crossed endpoints of their own).
	ThreadOracles int
}

// addOracleStats folds src into dst field by field (thread-oracle stats
// sum into one process-level view, exactly like guard.Stats sharing).
func addOracleStats(dst, src *oracle.Stats) {
	dst.Checks += src.Checks
	dst.SlowChecks += src.SlowChecks
	dst.Violations += src.Violations
	dst.TIPsChecked += src.TIPsChecked
	dst.HighEdges += src.HighEdges
	dst.LowEdges += src.LowEdges
	dst.Resyncs += src.Resyncs
	dst.Overflows += src.Overflows
	dst.Gaps += src.Gaps
	dst.Malformed += src.Malformed
	dst.DegradedChecks += src.DegradedChecks
	dst.FailOpens += src.FailOpens
	dst.FailClosures += src.FailClosures
	dst.Retries += src.Retries
	dst.Shed += src.Shed
}

// diffMulticoreRun executes the target input under multicore protection,
// preempted across cores and interleaved with unprotected noise
// neighbors, comparing the module's per-thread verdicts against
// per-thread reference oracles at every endpoint. Policy endpoints are
// cleared so the harness owns interception; the module still routes
// streams, switches trace contexts and reconstructs windows exactly as
// in production.
func diffMulticoreRun(fx *DiffFixture, input []byte, pol guard.Policy,
	cores int, quantum uint64, noise [][]byte) (*MCOutcome, error) {
	k := kernelsim.New()
	p, err := fx.An.App.Spawn(k, input)
	if err != nil {
		return nil, err
	}
	procs := []*kernelsim.Process{p}
	for _, nin := range noise {
		np, nerr := fx.An.App.Spawn(k, nin)
		if nerr != nil {
			return nil, nerr
		}
		procs = append(procs, np)
	}

	km := guard.InstallModule(k)
	if err := km.EnableMulticore(cores); err != nil {
		return nil, err
	}
	pol.Endpoints = nil // harness-owned interception (CheckCurrent)
	g, err := km.ProtectMulticore(p, fx.An.OCFG, fx.An.ITC, pol)
	if err != nil {
		return nil, err
	}

	out := &MCOutcome{Guard: g}
	oracles := make(map[*kernelsim.Thread]*oracle.Oracle)
	var primary *oracle.Oracle
	handler := func(cp *kernelsim.Process, sysno uint64) error {
		if cp != p {
			return nil // noise neighbors run unprotected and unchecked
		}
		gres, ok := km.CheckCurrent(cp)
		if !ok {
			return nil
		}
		th := cp.CurrentThread()
		o := oracles[th]
		if o == nil {
			sink := km.ThreadSink(th)
			if sink == nil {
				sink = g.Tracer.Out
			}
			o = oracle.New(cp.AS, fx.An.OCFG, fx.Ref, sink, oraclePolicy(pol))
			if primary == nil {
				primary = o
			} else {
				o.AdoptApprovals(primary)
			}
			oracles[th] = o
		}
		ores := o.Check()
		out.Checks++
		out.Results = append(out.Results, gres)
		out.Healths = append(out.Healths, gres.Health)
		out.Divergences = append(out.Divergences, compareResults(out.Checks, gres, ores)...)
		if gres.Verdict == guard.VerdictViolation {
			out.GuardViolation = true
			k.Kill(cp, kernelsim.SIGKILL)
			return kernelsim.ErrKilled
		}
		return nil
	}
	for _, sysno := range guard.DefaultEndpoints() {
		k.Intercept(sysno, handler)
	}

	sts, err := k.RunMulticore(procs, cores, quantum, 500_000_000)
	if err != nil {
		return nil, err
	}
	km.FlushMulticore()
	km.Shutdown()

	out.Statuses = sts
	out.Killed, out.Exited = sts[0].Killed, sts[0].Exited
	out.Demux = km.DemuxStats()
	out.ThreadOracles = len(oracles)
	var osum oracle.Stats
	for _, o := range oracles {
		addOracleStats(&osum, &o.Stats)
	}
	out.Divergences = append(out.Divergences, compareStats(&g.Stats, &osum)...)
	return out, nil
}

// soloConformanceRun is the round-trip property's reference leg: the same
// input protected alone (dedicated CR3-filtered tracer, no demux), with
// the identical harness interceptors over the module's CheckCurrent, so
// the per-check result sequence is produced by the same dispatch path the
// multicore leg uses.
func soloConformanceRun(fx *DiffFixture, input []byte, pol guard.Policy) (*MCOutcome, error) {
	k := kernelsim.New()
	p, err := fx.An.App.Spawn(k, input)
	if err != nil {
		return nil, err
	}
	km := guard.InstallModule(k)
	pol.Endpoints = nil
	g, err := km.Protect(p, fx.An.OCFG, fx.An.ITC, pol)
	if err != nil {
		return nil, err
	}
	out := &MCOutcome{Guard: g}
	handler := func(cp *kernelsim.Process, sysno uint64) error {
		if cp != p {
			return nil
		}
		gres, ok := km.CheckCurrent(cp)
		if !ok {
			return nil
		}
		out.Checks++
		out.Results = append(out.Results, gres)
		out.Healths = append(out.Healths, gres.Health)
		if gres.Verdict == guard.VerdictViolation {
			out.GuardViolation = true
			k.Kill(cp, kernelsim.SIGKILL)
			return kernelsim.ErrKilled
		}
		return nil
	}
	for _, sysno := range guard.DefaultEndpoints() {
		k.Intercept(sysno, handler)
	}
	st, err := k.Run(p, 500_000_000)
	if err != nil {
		return nil, err
	}
	km.Shutdown()
	out.Statuses = []kernelsim.ExitStatus{st}
	out.Killed, out.Exited = st.Killed, st.Exited
	return out, nil
}
