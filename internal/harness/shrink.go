package harness

// Failure minimization and replayable seed artifacts for the
// differential property suite: a failing trace shrinks to a
// packet-aligned minimum and is dumped as a JSON artifact that
// TestOracleReplay re-runs bit-for-bit.

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"flowguard/internal/oracle"
)

// packetOffsets returns every packet boundary of the parseable prefix
// plus the end-of-stream sentinel. Inputs that are not packet streams at
// all (the multicore property shrinks workload bytes, not traces)
// degrade to byte-aligned offsets, so the delta debugger still works —
// just without the alignment guarantee.
func packetOffsets(raw []byte) []int {
	pkts, _, err := oracle.ParsePackets(raw)
	if err != nil || len(pkts) == 0 {
		offs := make([]int, len(raw)+1)
		for i := range offs {
			offs[i] = i
		}
		return offs
	}
	offs := make([]int, 0, len(pkts)+1)
	for _, p := range pkts {
		offs = append(offs, p.Off)
	}
	offs = append(offs, len(raw))
	return offs
}

// ShrinkTrace minimizes a failing trace while fails keeps holding:
// packet-aligned span removal with geometrically shrinking span sizes,
// looped to a fixed point (delta debugging without the external
// dependency).
func ShrinkTrace(raw []byte, fails func([]byte) bool) []byte {
	cur := append([]byte(nil), raw...)
	if !fails(cur) {
		return cur
	}
	for improved := true; improved; {
		improved = false
		offs := packetOffsets(cur)
		if len(offs) < 2 {
			return cur
		}
		for span := (len(offs) - 1) / 2; span >= 1; span /= 2 {
			for i := 0; i+span < len(offs); {
				cand := append(append([]byte(nil), cur[:offs[i]]...), cur[offs[i+span]:]...)
				if len(cand) < len(cur) && fails(cand) {
					cur = cand
					improved = true
					offs = packetOffsets(cur)
					if len(offs) < 2 {
						return cur
					}
					if span > (len(offs)-1)/2 {
						span = (len(offs) - 1) / 2
						if span < 1 {
							return cur
						}
					}
				} else {
					i++
				}
			}
		}
	}
	return cur
}

// SeedArtifact is a self-contained reproduction of one property
// failure.
type SeedArtifact struct {
	// Property names the failed property (TestOracleReplay dispatches
	// on it).
	Property string `json:"property"`
	// Seed is the generator seed of the failing case.
	Seed int64 `json:"seed"`
	// Mode is the degraded-mode policy (guard.DegradedMode value).
	Mode int `json:"mode"`
	// Chunks is the stream-replay chunking.
	Chunks int `json:"chunks"`
	// Pick parameterizes the mutation (e.g. which TIP was retargeted).
	Pick int `json:"pick"`
	// TraceHex is the (minimized) raw trace.
	TraceHex string `json:"trace_hex"`
}

// Trace decodes the artifact's raw trace bytes.
func (a *SeedArtifact) Trace() ([]byte, error) {
	return hex.DecodeString(a.TraceHex)
}

// DumpSeedArtifact writes the artifact next to the test binary's temp
// space and returns its path.
func DumpSeedArtifact(a *SeedArtifact) (string, error) {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(os.TempDir(),
		fmt.Sprintf("flowguard-oracle-%s-seed%d.json", a.Property, a.Seed))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadSeedArtifact reads an artifact dumped by DumpSeedArtifact.
func LoadSeedArtifact(path string) (*SeedArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a := &SeedArtifact{}
	if err := json.Unmarshal(data, a); err != nil {
		return nil, err
	}
	return a, nil
}
