package harness

// The demux round-trip conformance property (DESIGN.md §11): running a
// process preempted across shared multi-core trace units — its stream
// interleaved with noise neighbors, split back out by the PIP/CR3 demux —
// must be observationally identical to tracing that process alone with a
// dedicated CR3-filtered unit: byte-identical reconstructed windows,
// bit-identical per-check verdicts, and bit-identical statistics. The
// multicore leg is additionally compared against per-thread reference
// oracles at every endpoint, so the solo leg is transitively
// oracle-conformant too. Failures shrink through the delta debugger and
// dump a TestOracleReplay artifact like every other property here.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"flowguard/internal/attack"
	"flowguard/internal/guard"
)

// The undertrained fixture makes the property bite: the workload tail
// crosses legal-but-uncredited edges, so both legs must take identical
// slow paths and bank identical approvals while being preempted
// differently.
var mcFix struct {
	once sync.Once
	fx   *DiffFixture
	rop  []byte
	err  error
}

func mcFixture(t testing.TB) (*DiffFixture, []byte) {
	mcFix.once.Do(func() {
		mcFix.fx, mcFix.err = newUnderTrainedFixture()
		if mcFix.err != nil {
			return
		}
		as, err := mcFix.fx.An.App.Load()
		if err != nil {
			mcFix.err = err
			return
		}
		mcFix.rop, mcFix.err = attack.BuildROPWrite(as)
	})
	if mcFix.err != nil {
		t.Fatalf("multicore fixture: %v", mcFix.err)
	}
	return mcFix.fx, mcFix.rop
}

// mcQuanta are the slice lengths the property sweeps: short enough that
// windows are split across many slices, long enough that runs terminate
// quickly.
var mcQuanta = []uint64{60, 120, 250, 400}

// mcPoint is one seed's decoded parameter set.
type mcPoint struct {
	pol     guard.Policy
	cores   int    // shared trace units
	quantum uint64 // scheduler slice, in instructions
	noise   int    // unprotected neighbors interleaved on the same cores
	attack  bool   // workload is the ROP payload, not generated traffic
	scale   int    // benign workload size (App.MakeInput)
}

func mcPointFor(seed int64) mcPoint {
	rng := rand.New(rand.NewSource(seed))
	p := mcPoint{pol: modePolicy(diffModes[rng.Intn(len(diffModes))])}
	p.pol.Async = rng.Intn(2) == 1
	p.cores = 1 + rng.Intn(3)
	p.quantum = mcQuanta[rng.Intn(len(mcQuanta))]
	p.noise = rng.Intn(3)
	p.attack = rng.Intn(4) == 0
	p.scale = 6 + rng.Intn(24)
	return p
}

// mcInput derives the seed's workload bytes.
func mcInput(fx *DiffFixture, rop []byte, p mcPoint, seed int64) []byte {
	if p.attack {
		return rop
	}
	return fx.An.App.MakeInput(p.scale, seed)
}

// mcNoise derives the neighbor workloads (always benign: neighbors are
// unprotected scenery whose only job is to interleave trace).
func mcNoise(fx *DiffFixture, p mcPoint, seed int64) [][]byte {
	var out [][]byte
	for i := 0; i < p.noise; i++ {
		out = append(out, fx.An.App.MakeInput(4+p.scale/2, seed+1000+int64(i)))
	}
	return out
}

// mcAsyncExempt are the asynchronous-pipeline scheduling counters: the
// demuxed leg's sink receives span-batched writes where the solo tracer
// writes per packet, so region-full capture timing (never verdicts)
// legitimately differs.
var mcAsyncExempt = map[string]bool{
	"AsyncWindows": true, "AsyncMaxLag": true, "BackpressureStalls": true,
	"WatchdogSheds": true, "WorkerCrashes": true,
}

// compareMCResults demands bit-identical solo/multicore results; the
// deterministic cycle meters are included for synchronous runs (async
// checks fold drained-pipeline work into the meters, so there only the
// decision fields must match).
func compareMCResults(check int, s, m guard.Result, cycles bool) (divs []string) {
	add := func(field string, sv, mv any) {
		divs = append(divs, fmt.Sprintf("check %d %s: solo=%v multicore=%v", check, field, sv, mv))
	}
	if s.Verdict != m.Verdict {
		add("verdict", s.Verdict, m.Verdict)
	}
	if s.Reason != m.Reason {
		add("reason", s.Reason, m.Reason)
	}
	if s.TIPs != m.TIPs {
		add("tips", s.TIPs, m.TIPs)
	}
	if s.LowCredit != m.LowCredit {
		add("low-credit", s.LowCredit, m.LowCredit)
	}
	if s.UsedSlowPath != m.UsedSlowPath {
		add("used-slow-path", s.UsedSlowPath, m.UsedSlowPath)
	}
	if s.Health != m.Health {
		add("health", s.Health, m.Health)
	}
	if s.Degraded != m.Degraded {
		add("degraded", s.Degraded, m.Degraded)
	}
	if s.Retries != m.Retries {
		add("retries", s.Retries, m.Retries)
	}
	if cycles && (s.DecodeCycles != m.DecodeCycles || s.CheckCycles != m.CheckCycles ||
		s.OtherCycles != m.OtherCycles || s.SlowCycles != m.SlowCycles) {
		add("cycles", [4]uint64{s.DecodeCycles, s.CheckCycles, s.OtherCycles, s.SlowCycles},
			[4]uint64{m.DecodeCycles, m.CheckCycles, m.OtherCycles, m.SlowCycles})
	}
	return divs
}

// compareMCStats diffs every guard.Stats counter between the solo and
// multicore legs except the async scheduling counters (and, for async
// runs, the cycle meters — same reasoning as compareMCResults).
// StatsFields keeps the sweep exhaustive under the statssync invariant.
func compareMCStats(s, m *guard.Stats, async bool) (divs []string) {
	cycles := map[string]bool{
		"DecodeCycles": true, "CheckCycles": true, "OtherCycles": true, "SlowCycles": true,
	}
	sf, mf := StatsFields(s), StatsFields(m)
	for i := range sf {
		if mcAsyncExempt[sf[i].Name] || (async && cycles[sf[i].Name]) {
			continue
		}
		if sf[i].Value != mf[i].Value {
			divs = append(divs, fmt.Sprintf("stats %s: solo=%d multicore=%d", sf[i].Name, sf[i].Value, mf[i].Value))
		}
	}
	return divs
}

// runMCConformance replays one seed point through both worlds and
// returns every divergence: multicore-vs-oracle (computed inside the
// multicore leg), solo-vs-multicore result and statistics equality,
// stream byte identity, exit equivalence, and transport cleanliness (a
// fault-free schedule must never resync or lose attribution).
func runMCConformance(fx *DiffFixture, p mcPoint, input []byte, noise [][]byte) ([]string, *MCOutcome, error) {
	solo, err := soloConformanceRun(fx, input, p.pol)
	if err != nil {
		return nil, nil, err
	}
	mc, err := diffMulticoreRun(fx, input, p.pol, p.cores, p.quantum, noise)
	if err != nil {
		return nil, nil, err
	}
	divs := append([]string(nil), mc.Divergences...)
	if len(solo.Results) != len(mc.Results) {
		divs = append(divs, fmt.Sprintf("check counts: solo=%d multicore=%d", len(solo.Results), len(mc.Results)))
	} else {
		for i := range solo.Results {
			divs = append(divs, compareMCResults(i+1, solo.Results[i], mc.Results[i], !p.pol.Async)...)
		}
	}
	divs = append(divs, compareMCStats(&solo.Guard.Stats, &mc.Guard.Stats, p.pol.Async)...)
	if solo.Killed != mc.Killed || solo.Exited != mc.Exited {
		divs = append(divs, fmt.Sprintf("exit: solo killed=%v exited=%v, multicore killed=%v exited=%v",
			solo.Killed, solo.Exited, mc.Killed, mc.Exited))
	}
	st, mt := solo.Guard.Tracer.Out, mc.Guard.Tracer.Out
	if st.TotalWritten() != mt.TotalWritten() {
		divs = append(divs, fmt.Sprintf("stream length: solo=%d multicore=%d", st.TotalWritten(), mt.TotalWritten()))
	} else if !bytes.Equal(st.Snapshot(), mt.Snapshot()) {
		divs = append(divs, "stream bytes: demuxed window differs from solo capture")
	}
	if mc.Demux != nil && (mc.Demux.Resyncs != 0 || mc.Demux.UnmarkedLosses != 0) {
		divs = append(divs, fmt.Sprintf("transport: fault-free run demuxed with Resyncs=%d UnmarkedLosses=%d",
			mc.Demux.Resyncs, mc.Demux.UnmarkedLosses))
	}
	return divs, mc, nil
}

// TestPropertyDemuxRoundTrip sweeps seeded (mode, async, cores, quantum,
// noise, workload) combinations of the round-trip contract.
func TestPropertyDemuxRoundTrip(t *testing.T) {
	fx, rop := mcFixture(t)
	seeds := 1000
	if testing.Short() {
		seeds = 120
	}
	detected, slow, preempted := 0, 0, 0
	for seed := int64(0); seed < int64(seeds); seed++ {
		p := mcPointFor(seed)
		input := mcInput(fx, rop, p, seed)
		noise := mcNoise(fx, p, seed)
		divs, mc, err := runMCConformance(fx, p, input, noise)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if p.attack && mc.GuardViolation {
			detected++
		}
		if mc.Guard.Stats.SlowChecks > 0 {
			slow++
		}
		if p.noise > 0 || p.cores > 1 {
			preempted++
		}
		if len(divs) > 0 {
			for _, d := range divs {
				t.Errorf("seed %d (cores=%d quantum=%d noise=%d async=%v attack=%v): %s",
					seed, p.cores, p.quantum, p.noise, p.pol.Async, p.attack, d)
			}
			dumpFailure(t, &SeedArtifact{Property: "demux-roundtrip", Seed: seed,
				Mode: int(p.pol.OnDegraded), Chunks: p.cores, Pick: int(p.quantum)}, input,
				func(b []byte) bool {
					d2, _, e := runMCConformance(fx, p, b, noise)
					return e == nil && len(d2) > 0
				})
			return // one minimized artifact is enough; it replays the bug
		}
	}
	if detected == 0 {
		t.Error("no attack seed was detected under preemption; the security half never ran")
	}
	if slow == 0 {
		t.Error("no seed took a slow path; the approval machinery was never stressed")
	}
	if preempted == 0 {
		t.Error("no seed actually shared cores; the property was vacuous")
	}
}
