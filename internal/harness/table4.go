package harness

import (
	"fmt"
	"time"

	"flowguard/internal/apps"
	"flowguard/internal/itc"
)

// Table4Row holds one application's CFG statistics (paper Table 4).
type Table4Row struct {
	App       string
	Libraries int
	// Basic block and edge counts split by executable / libraries.
	ExecBlocks, LibBlocks int
	ExecEdges, LibEdges   int
	// OCFGAIA is the conservative O-CFG AIA.
	OCFGAIA float64
	// ITC statistics: node count, edge count, plain AIA, and the
	// TNT-labeled AIA after training (the parenthesized column).
	ITCNodes  int
	ITCEdges  int
	ITCAIA    float64
	ITCAIATnt float64
	// FlowGuardAIA is the fine-grained slow-path AIA (TypeArmor forward
	// edges, single-target shadow-stack returns).
	FlowGuardAIA float64
}

func (r Table4Row) String() string {
	return fmt.Sprintf("%-8s libs=%d  BB(exec/lib)=%d/%d  E(exec/lib)=%d/%d  O-CFG AIA=%.2f  ITC |V|=%d |E|=%d AIA=%.2f (w/tnt %.2f)  FlowGuard AIA=%.2f",
		r.App, r.Libraries, r.ExecBlocks, r.LibBlocks, r.ExecEdges, r.LibEdges,
		r.OCFGAIA, r.ITCNodes, r.ITCEdges, r.ITCAIA, r.ITCAIATnt, r.FlowGuardAIA)
}

// Table5Row holds memory usage and CFG generation time (paper Table 5).
type Table5Row struct {
	App string
	// MemoryMB is the resident size of the labeled ITC-CFG plus the
	// per-core ToPA buffers.
	MemoryMB float64
	// GenTime is the wall-clock CFG generation time.
	GenTime time.Duration
	// LibShare is the fraction of analysis work spent on libraries
	// (paper: >90%, motivating per-library CFG caching).
	LibShare float64
}

func (r Table5Row) String() string {
	return fmt.Sprintf("%-8s memory=%.2f MB  cfg-gen=%v  lib-share=%.0f%%",
		r.App, r.MemoryMB, r.GenTime.Round(time.Millisecond), 100*r.LibShare)
}

// Table4And5 analyzes and trains the four server applications and
// derives both tables.
func (r *Runner) Table4And5() ([]Table4Row, []Table5Row, error) {
	var t4 []Table4Row
	var t5 []Table5Row
	for _, a := range apps.Servers() {
		an, err := r.Analyze(a)
		if err != nil {
			return nil, nil, err
		}
		if err := r.Train(an); err != nil {
			return nil, nil, err
		}
		st := an.OCFG.ComputeStats()
		t4 = append(t4, Table4Row{
			App:          a.Name,
			Libraries:    st.Libraries,
			ExecBlocks:   st.ExecBlocks,
			LibBlocks:    st.LibBlocks,
			ExecEdges:    st.ExecEdges,
			LibEdges:     st.LibEdges,
			OCFGAIA:      st.AIA,
			ITCNodes:     an.ITC.NumNodes(),
			ITCEdges:     an.ITC.Edges,
			ITCAIA:       an.ITC.AIA(),
			ITCAIATnt:    an.ITC.AIAWithTNT(),
			FlowGuardAIA: itc.FineGrainedAIA(an.OCFG),
		})
		memBytes := an.ITC.MemoryBytes() + 16<<10 // ToPA per core
		t5 = append(t5, Table5Row{
			App:      a.Name,
			MemoryMB: float64(memBytes) / (1 << 20),
			GenTime:  an.GenTime,
			LibShare: an.LibShare,
		})
	}
	return t4, t5, nil
}

// AverageAIAReduction summarizes the Table 4 headline: the average AIA
// before (O-CFG) and after (FlowGuard fine-grained) across the servers —
// the paper reports 72 -> 20.
func AverageAIAReduction(rows []Table4Row) (before, after float64) {
	if len(rows) == 0 {
		return
	}
	for _, r := range rows {
		before += r.OCFGAIA
		after += r.FlowGuardAIA
	}
	n := float64(len(rows))
	return before / n, after / n
}
