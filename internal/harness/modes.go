package harness

import (
	"fmt"

	"flowguard/internal/apps"
	"flowguard/internal/attack"
	"flowguard/internal/guard"
	"flowguard/internal/kernelsim"
)

// ModeRow compares one checking-mode variant on the nginx analogue:
// the paper's default, the multi-level-credit variant (§4.3), the
// path-sensitive future-work mode (§7.1.2), and the PMI worst-case
// endpoint fallback.
type ModeRow struct {
	Mode string
	// Benign-run behaviour.
	OverheadPct float64
	SlowRate    float64
	Checks      uint64
	// Attack coverage.
	CatchesROP      bool
	CatchesPruning  bool
	PruningDetector string
}

func (r ModeRow) String() string {
	return fmt.Sprintf("%-16s overhead=%6.2f%%  slow-rate=%.3f  checks=%-4d ROP=%-5v pruning=%v (%s)",
		r.Mode, r.OverheadPct, r.SlowRate, r.Checks, r.CatchesROP, r.CatchesPruning, r.PruningDetector)
}

// Modes evaluates the checking-mode matrix on the vulnerable server.
func (r *Runner) Modes() ([]ModeRow, error) {
	an, err := r.Analyze(apps.Vulnd())
	if err != nil {
		return nil, err
	}
	if err := r.Train(an); err != nil {
		return nil, err
	}
	as, err := an.App.Load()
	if err != nil {
		return nil, err
	}
	rop, err := attack.BuildROPWrite(as)
	if err != nil {
		return nil, err
	}
	pruning, err := attack.BuildEndpointPruning(as)
	if err != nil {
		return nil, err
	}
	benign := an.App.MakeInput(r.Scale, r.Seed)

	mk := func(name string, mut func(*guard.Policy)) (ModeRow, error) {
		pol := r.policy()
		if mut != nil {
			mut(&pol)
		}
		row := ModeRow{Mode: name}

		pr, err := r.RunProtected(an, benign, pol)
		if err != nil {
			return row, fmt.Errorf("%s benign: %w", name, err)
		}
		if pr.Killed {
			return row, fmt.Errorf("%s: false positive on benign input: %v", name, pr.Reports)
		}
		row.OverheadPct = pr.OverheadPct()
		row.Checks = pr.Stats.Checks
		if pr.Stats.Checks > 0 {
			row.SlowRate = float64(pr.Stats.SlowChecks) / float64(pr.Stats.Checks)
		}

		prR, err := r.RunProtected(an, rop, pol)
		if err != nil {
			return row, err
		}
		row.CatchesROP = prR.Killed

		prP, err := r.RunProtected(an, pruning, pol)
		if err != nil {
			return row, err
		}
		row.CatchesPruning = prP.Killed
		row.PruningDetector = "-"
		if len(prP.Reports) > 0 {
			if prP.Reports[0].DetectedAtPMI() {
				row.PruningDetector = "PMI"
			} else {
				row.PruningDetector = kernelsim.SyscallName(prP.Reports[0].Syscall)
			}
		}
		return row, nil
	}

	var rows []ModeRow
	for _, m := range []struct {
		name string
		mut  func(*guard.Policy)
	}{
		{"default", nil},
		{"naive-full-decode", func(p *guard.Policy) { p.NaiveFullDecode = true }},
		{"cred-count>=2", func(p *guard.Policy) { p.CredMinCount = 2 }},
		{"path-sensitive", func(p *guard.Policy) { p.PathSensitive = true }},
		{"pmi-fallback", func(p *guard.Policy) { p.CheckOnPMI = true }},
	} {
		row, err := mk(m.name, m.mut)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
