package harness_test

import (
	"testing"

	"flowguard/internal/harness"
)

func runner() *harness.Runner {
	r := harness.NewRunner()
	r.Scale = 10
	r.TrainRuns = 4
	return r
}

// TestTable1Shape pins the mechanism ordering of Table 1: BTS tracing is
// orders of magnitude above IPT, LBR is below 1%, IPT lands in the
// few-percent band, and full decoding costs orders of magnitude more
// than execution.
func TestTable1Shape(t *testing.T) {
	rows, err := runner().Table1()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]harness.Table1Row{}
	for _, r := range rows {
		byName[r.Mechanism] = r
	}
	btsv, lbrv, iptv := byName["BTS"], byName["LBR"], byName["IPT"]
	if btsv.TracingOverheadPct < 10*iptv.TracingOverheadPct {
		t.Errorf("BTS %.1f%% not >> IPT %.1f%%", btsv.TracingOverheadPct, iptv.TracingOverheadPct)
	}
	if lbrv.TracingOverheadPct >= 1 {
		t.Errorf("LBR overhead %.2f%%, want < 1%%", lbrv.TracingOverheadPct)
	}
	if iptv.TracingOverheadPct <= lbrv.TracingOverheadPct {
		t.Errorf("IPT %.2f%% not above LBR %.2f%%", iptv.TracingOverheadPct, lbrv.TracingOverheadPct)
	}
	if iptv.TracingOverheadPct > 15 {
		t.Errorf("IPT tracing overhead %.2f%%, want the few-percent band", iptv.TracingOverheadPct)
	}
	if iptv.DecodingOverheadX < 50 {
		t.Errorf("IPT decode overhead %.0fx, want orders of magnitude", iptv.DecodingOverheadX)
	}
	for _, r := range rows {
		t.Log(r)
	}
}

// TestTable4Shape pins the AIA relations: the ITC-CFG is coarser than
// the O-CFG (derogation), the TNT labeling repairs most of it, and the
// fine-grained FlowGuard AIA is the strongest.
func TestTable4Shape(t *testing.T) {
	t4, t5, err := runner().Table4And5()
	if err != nil {
		t.Fatal(err)
	}
	if len(t4) != 4 {
		t.Fatalf("Table 4 rows = %d, want 4 servers", len(t4))
	}
	for _, row := range t4 {
		t.Log(row)
		if row.ITCAIA < row.OCFGAIA {
			t.Errorf("%s: ITC AIA %.2f < O-CFG %.2f (no derogation?)", row.App, row.ITCAIA, row.OCFGAIA)
		}
		if row.ITCAIATnt >= row.ITCAIA {
			t.Errorf("%s: TNT labeling did not reduce AIA (%.2f >= %.2f)", row.App, row.ITCAIATnt, row.ITCAIA)
		}
		if row.FlowGuardAIA >= row.OCFGAIA {
			t.Errorf("%s: FlowGuard AIA %.2f >= O-CFG %.2f", row.App, row.FlowGuardAIA, row.OCFGAIA)
		}
		if row.Libraries < 3 {
			t.Errorf("%s: only %d libraries", row.App, row.Libraries)
		}
		if row.ITCNodes == 0 || row.ITCEdges == 0 {
			t.Errorf("%s: empty ITC-CFG", row.App)
		}
	}
	before, after := harness.AverageAIAReduction(t4)
	if after >= before {
		t.Errorf("average AIA did not drop: %.2f -> %.2f", before, after)
	}
	t.Logf("average AIA: %.2f -> %.2f", before, after)
	for _, row := range t5 {
		t.Log(row)
		if row.MemoryMB <= 0 || row.GenTime <= 0 {
			t.Errorf("%s: degenerate Table 5 row", row.App)
		}
		if row.LibShare < 0.4 {
			t.Errorf("%s: library share %.2f, want a large analysis share", row.App, row.LibShare)
		}
	}
}

// TestFig5aShape: servers run with single-digit-ish overhead and a low
// slow-path rate after training.
func TestFig5aShape(t *testing.T) {
	rows, err := runner().Fig5a()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		t.Log(row)
		if row.App == "geomean" {
			if row.TotalPct <= 0 || row.TotalPct > 25 {
				t.Errorf("server geomean overhead %.2f%%, want a small positive number", row.TotalPct)
			}
			continue
		}
		if row.SlowRate > 0.2 {
			t.Errorf("%s: slow-path rate %.2f, want rare slow paths after training", row.App, row.SlowRate)
		}
		if row.CredRatio < 0.8 {
			t.Errorf("%s: cred-ratio %.2f, want high credibility after training", row.App, row.CredRatio)
		}
	}
}

// TestFig5bShape: utilities are cheaper than servers; dd is the
// cheapest.
func TestFig5bShape(t *testing.T) {
	rows, err := runner().Fig5b()
	if err != nil {
		t.Fatal(err)
	}
	var ddPct, maxPct float64
	for _, row := range rows {
		t.Log(row)
		if row.App == "dd" {
			ddPct = row.TotalPct
		}
		if row.App != "geomean" && row.TotalPct > maxPct {
			maxPct = row.TotalPct
		}
	}
	if ddPct >= maxPct {
		t.Errorf("dd overhead %.2f%% is not the cheapest (max %.2f%%)", ddPct, maxPct)
	}
}

// TestFig5cShape: h264ref is the outlier with the largest overhead,
// driven by trace volume.
func TestFig5cShape(t *testing.T) {
	rows, err := runner().Fig5c()
	if err != nil {
		t.Fatal(err)
	}
	var h264, maxOther float64
	for _, row := range rows {
		t.Log(row)
		switch row.App {
		case "h264ref":
			h264 = row.TotalPct
		case "geomean":
		default:
			if row.TotalPct > maxOther {
				maxOther = row.TotalPct
			}
		}
	}
	if h264 <= maxOther {
		t.Errorf("h264ref %.2f%% is not the outlier (max other %.2f%%)", h264, maxOther)
	}
}

// TestMicroShape: the slow path is at least an order of magnitude above
// the fast path on the same window (the paper reports ~60x).
func TestMicroShape(t *testing.T) {
	m, err := runner().Micro()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(m)
	if m.WindowTIPs < 50 {
		t.Errorf("window has %d TIPs, want ~100", m.WindowTIPs)
	}
	if m.SlowOverFast < 10 {
		t.Errorf("slow/fast ratio %.1fx, want >= 10x", m.SlowOverFast)
	}
	if m.SlowMsAt4GHz <= 0 {
		t.Error("slow path cost is zero")
	}
}

// TestAttackMatrix: every attack is real (succeeds unprotected) and
// every attack is detected, at the endpoints §7.1.2 names.
func TestAttackMatrix(t *testing.T) {
	rows, err := runner().Attacks()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"ROP":           "write",
		"SROP":          "sigreturn",
		"ret2lib":       "execve",
		"history-flush": "write",
	}
	for _, row := range rows {
		t.Log(row)
		if !row.SucceedsUnprotected {
			t.Errorf("%s: exploit does not work unprotected", row.Attack)
		}
		if !row.Detected {
			t.Errorf("%s: not detected", row.Attack)
		}
		if w := want[row.Attack]; row.DetectedAt != w {
			t.Errorf("%s: detected at %s, want %s", row.Attack, row.DetectedAt, w)
		}
	}
}

// TestSweeps: the cred-ratio crossover exists below 100%, and larger
// pkt_count means more checking work.
func TestSweeps(t *testing.T) {
	r := runner()
	sweeps, err := r.SweepCredRatio()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sweeps {
		t.Log(s)
		if s.Crossover >= 1 {
			t.Errorf("%s: no cred-ratio crossover below 100%%", s.App)
		}
	}
	pts, err := r.SweepPktCount([]int{10, 30, 90})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		t.Log(p)
	}
	if pts[len(pts)-1].CheckPct <= pts[0].CheckPct {
		t.Errorf("check share did not grow with pkt_count: %v -> %v", pts[0], pts[len(pts)-1])
	}
}

// TestHWAblation: the dedicated decoder removes a visible share.
func TestHWAblation(t *testing.T) {
	rows, err := runner().HWAblation()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		t.Log(row)
		if row.HWTotalPct >= row.SWTotalPct {
			t.Errorf("%s: HW decoder did not reduce overhead (%.2f >= %.2f)", row.App, row.HWTotalPct, row.SWTotalPct)
		}
	}
}

// TestFig5dShape: paths and cred-ratio rise with fuzzing effort.
func TestFig5dShape(t *testing.T) {
	pts, err := runner().Fig5d([]int{0, 150, 400})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		t.Log(p)
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.Paths <= first.Paths {
		t.Errorf("paths did not grow: %d -> %d", first.Paths, last.Paths)
	}
	if last.CredRatio < first.CredRatio {
		t.Errorf("cred-ratio fell: %.3f -> %.3f", first.CredRatio, last.CredRatio)
	}
	if last.CredRatio < 0.9 {
		t.Errorf("final cred-ratio %.3f, want the high-credibility regime", last.CredRatio)
	}
}

// TestModesMatrix: only the PMI fallback catches the endpoint-pruning
// attack; every mode catches the ROP; path-sensitivity costs more.
func TestModesMatrix(t *testing.T) {
	rows, err := runner().Modes()
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]harness.ModeRow{}
	for _, row := range rows {
		t.Log(row)
		byMode[row.Mode] = row
		if !row.CatchesROP {
			t.Errorf("%s: missed the ROP", row.Mode)
		}
	}
	if byMode["default"].CatchesPruning {
		t.Error("default endpoints should not catch the pruning attack")
	}
	if !byMode["pmi-fallback"].CatchesPruning {
		t.Error("PMI fallback missed the pruning attack")
	}
	if byMode["path-sensitive"].OverheadPct <= byMode["default"].OverheadPct {
		t.Errorf("path-sensitive overhead %.2f%% not above default %.2f%%",
			byMode["path-sensitive"].OverheadPct, byMode["default"].OverheadPct)
	}
	// The paper's core claim, quantified: naive online full decoding is
	// orders of magnitude above the hybrid fast path.
	naive := byMode["naive-full-decode"]
	if naive.OverheadPct < 100*byMode["default"].OverheadPct {
		t.Errorf("naive full decode %.0f%% not >> default %.2f%%",
			naive.OverheadPct, byMode["default"].OverheadPct)
	}
	if naive.SlowRate != 1 {
		t.Errorf("naive mode slow-rate %.2f, want 1.0", naive.SlowRate)
	}
}

// TestMultiProcTracingCost: the single CR3 filter keeps tracing cost at
// the one-process level; unfiltered multi-process tracing scales with
// the worker count (§7.2.4).
func TestMultiProcTracingCost(t *testing.T) {
	res, err := runner().MultiProc(3)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if res.UnfilteredBytes < 2*res.FilteredBytes {
		t.Errorf("unfiltered %d bytes not well above filtered %d for 3 workers",
			res.UnfilteredBytes, res.FilteredBytes)
	}
	if res.FilteredPct <= 0 || res.UnfilteredPct <= res.FilteredPct {
		t.Errorf("overheads: filtered %.2f%%, unfiltered %.2f%%", res.FilteredPct, res.UnfilteredPct)
	}
}

// TestParallelChecking pins the §6 parallel-checking experiment's shape:
// every worker finishes clean, checks happen, and the pool accounts for
// the checking time it admitted.
func TestParallelChecking(t *testing.T) {
	res, err := runner().Parallel(3)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if res.Checks == 0 {
		t.Error("parallel run performed no checks")
	}
	if res.CheckBusy <= 0 {
		t.Errorf("pool accounted no checking time: %v", res.CheckBusy)
	}
	if res.SerialWall <= 0 || res.ParallelWall <= 0 {
		t.Errorf("wall times not measured: serial %v parallel %v", res.SerialWall, res.ParallelWall)
	}
	if res.LatencyPerCheck() <= 0 {
		t.Error("aggregate check latency not derived")
	}
}
