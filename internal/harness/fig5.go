package harness

import (
	"fmt"

	"flowguard/internal/apps"
	"flowguard/internal/fuzz"
	"flowguard/internal/guard"
	"flowguard/internal/kernelsim"
	"flowguard/internal/trace/ipt"
)

// OverheadRow is one bar of Figure 5(a)-(c): the total FlowGuard
// slowdown with its component breakdown.
type OverheadRow struct {
	App       string
	Category  string
	TotalPct  float64
	TracePct  float64
	DecodePct float64
	CheckPct  float64
	OtherPct  float64
	// SlowRate is the fraction of checks that took the slow path (the
	// paper keeps it under 1% after training).
	SlowRate float64
	// CredRatio is the runtime high-credit edge ratio.
	CredRatio float64
	// BaseInstrs sizes the run.
	BaseInstrs uint64
}

func (r OverheadRow) String() string {
	return fmt.Sprintf("%-10s total=%6.2f%%  trace=%.2f%% decode=%.2f%% check=%.2f%% other=%.2f%%  slow-rate=%.3f cred=%.3f",
		r.App, r.TotalPct, r.TracePct, r.DecodePct, r.CheckPct, r.OtherPct, r.SlowRate, r.CredRatio)
}

// overheadFor runs analyze/train/protect for one app and derives its
// overhead row.
func (r *Runner) overheadFor(a *apps.App, pol guard.Policy) (OverheadRow, error) {
	an, err := r.Analyze(a)
	if err != nil {
		return OverheadRow{}, err
	}
	if err := r.Train(an); err != nil {
		return OverheadRow{}, err
	}
	input := a.MakeInput(r.Scale, r.Seed)
	_, instrs, err := r.Baseline(a, input)
	if err != nil {
		return OverheadRow{}, err
	}
	pr, err := r.RunProtected(an, input, pol)
	if err != nil {
		return OverheadRow{}, err
	}
	if pr.Killed {
		return OverheadRow{}, fmt.Errorf("harness: %s killed on benign input: %v", a.Name, pr.Reports)
	}
	tr, de, ch, ot := pr.ComponentPct()
	row := OverheadRow{
		App: a.Name, Category: a.Category,
		TotalPct: pr.OverheadPct(),
		TracePct: tr, DecodePct: de, CheckPct: ch, OtherPct: ot,
		CredRatio:  pr.Stats.CredRatioRuntime(),
		BaseInstrs: instrs,
	}
	if pr.Stats.Checks > 0 {
		row.SlowRate = float64(pr.Stats.SlowChecks) / float64(pr.Stats.Checks)
	}
	return row, nil
}

// figure runs one Figure 5 panel over a set of apps and appends the
// geometric-mean row.
func (r *Runner) figure(list []*apps.App, pol guard.Policy) ([]OverheadRow, error) {
	var rows []OverheadRow
	var totals []float64
	for _, a := range list {
		row, err := r.overheadFor(a, pol)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		totals = append(totals, row.TotalPct)
	}
	rows = append(rows, OverheadRow{App: "geomean", Category: rows[0].Category, TotalPct: geomean(totals)})
	return rows, nil
}

// Fig5a reproduces Figure 5(a): server overhead with breakdown.
func (r *Runner) Fig5a() ([]OverheadRow, error) {
	return r.figure(apps.Servers(), r.policy())
}

// Fig5b reproduces Figure 5(b): Linux-utility overhead. The utilities
// run once and exit, spawned fork+exec style with the CR3 captured
// before the run (the ptrace(PTRACE_TRACEME) dance of §7.2.1 is the
// Spawn/Protect ordering here).
func (r *Runner) Fig5b() ([]OverheadRow, error) {
	return r.figure(apps.Utilities(), r.policy())
}

// Fig5c reproduces Figure 5(c): SPEC-like kernel overhead; h264ref is
// the expected outlier.
func (r *Runner) Fig5c() ([]OverheadRow, error) {
	return r.figure(apps.SpecApps(), r.policy())
}

func (r *Runner) policy() guard.Policy {
	if r.Policy.PktCount == 0 {
		return guard.DefaultPolicy()
	}
	return r.Policy
}

// Fig5dPoint is one sample of the fuzzing-training curve (Figure 5(d)).
type Fig5dPoint struct {
	// Execs is the fuzzing effort so far (the paper's time axis).
	Execs int
	// Paths is the number of coverage points discovered.
	Paths int
	// QueueLen is the corpus size.
	QueueLen int
	// CredRatio is the runtime high-credit ratio of a guard trained with
	// the corpus at this checkpoint, measured on the reference benign
	// workload.
	CredRatio float64
}

func (p Fig5dPoint) String() string {
	return fmt.Sprintf("execs=%6d paths=%5d corpus=%4d cred-ratio=%.3f", p.Execs, p.Paths, p.QueueLen, p.CredRatio)
}

// Fig5d runs a fuzzing campaign on the nginx analogue with checkpoints:
// at each checkpoint the corpus-so-far trains a fresh ITC-CFG and the
// reference workload measures the runtime cred-ratio, reproducing the
// rising path count and the >97% credibility of Figure 5(d).
func (r *Runner) Fig5d(checkpoints []int) ([]Fig5dPoint, error) {
	a := apps.Nginx()
	exec := func(input []byte, cov []byte) error {
		k := kernelsim.New()
		p, err := a.Spawn(k, input)
		if err != nil {
			return err
		}
		p.CPU.Branch = fuzz.CoverageSink(cov)
		if _, err := k.Run(p, 3_000_000); err != nil {
			return err
		}
		return nil
	}
	seeds := [][]byte{
		[]byte("G /index\n"),
		[]byte("P 64\n"),
		[]byte("H /health\n"),
	}
	f := fuzz.New(exec, seeds, fuzz.DefaultConfig())

	refInput := a.MakeInput(r.Scale, r.Seed)
	var points []Fig5dPoint
	prev := 0
	for _, cp := range checkpoints {
		if cp > prev {
			f.Run(cp)
			prev = cp
		}
		// Train a fresh graph with the corpus so far.
		an, err := r.Analyze(a)
		if err != nil {
			return nil, err
		}
		for _, input := range f.Corpus() {
			tips, err := r.traceRunBounded(a, input, 3_000_000)
			if err != nil {
				continue // crashing corpus entries still trained partially
			}
			an.ITC.ObserveWindow(tips)
		}
		an.ITC.RebuildCache()
		pr, err := r.RunProtected(an, refInput, r.policy())
		if err != nil {
			return nil, err
		}
		points = append(points, Fig5dPoint{
			Execs:     f.Execs,
			Paths:     f.CoveredSlots(),
			QueueLen:  len(f.Queue()),
			CredRatio: pr.Stats.CredRatioRuntime(),
		})
	}
	return points, nil
}

// traceRunBounded is traceRun with an instruction budget tolerant of
// crashing inputs: whatever trace exists up to the stop is returned.
func (r *Runner) traceRunBounded(a *apps.App, input []byte, budget uint64) ([]ipt.TIPRecord, error) {
	k := kernelsim.New()
	p, err := a.Spawn(k, input)
	if err != nil {
		return nil, err
	}
	tr := ipt.NewTracer(ipt.NewToPA(32 << 20))
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
		return nil, err
	}
	p.CPU.Branch = tr
	if _, err := k.Run(p, budget); err != nil {
		return nil, err
	}
	tr.Flush()
	evs, err := ipt.DecodeFast(tr.Out.Snapshot())
	if err != nil {
		return nil, err
	}
	return ipt.ExtractTIPs(evs), nil
}

// HWAblationRow compares the software fast path against the §6
// hardware-decoder model for one server (§7.2.4).
type HWAblationRow struct {
	App          string
	SWTotalPct   float64
	HWTotalPct   float64
	SWDecodePct  float64
	HWDecodePct  float64
	DecodeShare  float64 // decode share of total overhead, software path
	ReductionPct float64 // total overhead reduction from the HW decoder
}

func (r HWAblationRow) String() string {
	return fmt.Sprintf("%-8s sw=%.2f%% (decode %.2f%%, %.0f%% of overhead)  hw=%.2f%% (decode %.2f%%)  reduction=%.0f%%",
		r.App, r.SWTotalPct, r.SWDecodePct, 100*r.DecodeShare, r.HWTotalPct, r.HWDecodePct, r.ReductionPct)
}

// HWAblation reruns the server panel with the dedicated-decoder model.
func (r *Runner) HWAblation() ([]HWAblationRow, error) {
	var rows []HWAblationRow
	for _, a := range apps.Servers() {
		sw, err := r.overheadFor(a, r.policy())
		if err != nil {
			return nil, err
		}
		polHW := r.policy()
		polHW.HWDecoder = true
		hw, err := r.overheadFor(a, polHW)
		if err != nil {
			return nil, err
		}
		row := HWAblationRow{
			App:        a.Name,
			SWTotalPct: sw.TotalPct, HWTotalPct: hw.TotalPct,
			SWDecodePct: sw.DecodePct, HWDecodePct: hw.DecodePct,
		}
		if sw.TotalPct > 0 {
			row.DecodeShare = sw.DecodePct / sw.TotalPct
			row.ReductionPct = 100 * (sw.TotalPct - hw.TotalPct) / sw.TotalPct
		}
		rows = append(rows, row)
	}
	return rows, nil
}
