package harness

import (
	"fmt"
	"time"

	"flowguard/internal/apps"
	"flowguard/internal/guard"
	"flowguard/internal/kernelsim"
)

// ParallelResult quantifies the §6 offloading design: endpoint flow
// checks for many protected processes run concurrently on spare cores
// (kernelsim.RunParallel + guard.CheckPool) instead of serializing the
// whole fleet behind one checker.
type ParallelResult struct {
	// Procs is the number of protected worker processes.
	Procs int
	// Workers is the CheckPool concurrency bound.
	Workers int
	// SerialWall is the wall time to run and check every process one
	// after another on a single checker.
	SerialWall time.Duration
	// ParallelWall is the wall time with per-core execution and pooled
	// checking.
	ParallelWall time.Duration
	// Checks / SlowChecks aggregate the per-guard stats of the parallel
	// run (deterministic: Stats.Merge over every guard).
	Checks, SlowChecks uint64
	// CheckBusy is the summed time spent inside Check() across pool
	// slots; CheckWait is the summed slot-acquisition wait.
	CheckBusy, CheckWait time.Duration
	// Agg is the full merged per-guard Stats of the parallel run, for
	// the FormatStats report.
	Agg guard.Stats
}

// Speedup is the serial/parallel wall-time ratio.
func (p ParallelResult) Speedup() float64 {
	if p.ParallelWall <= 0 {
		return 0
	}
	return float64(p.SerialWall) / float64(p.ParallelWall)
}

// LatencyPerCheck is the aggregate check latency: pool busy time
// divided by admitted checks.
func (p ParallelResult) LatencyPerCheck() time.Duration {
	if p.Checks == 0 {
		return 0
	}
	return p.CheckBusy / time.Duration(p.Checks)
}

func (p ParallelResult) String() string {
	return fmt.Sprintf("procs=%d workers=%d  serial=%s parallel=%s (%.2fx)  checks=%d (slow %d)  check latency=%s (busy %s, wait %s)",
		p.Procs, p.Workers, p.SerialWall.Round(time.Millisecond), p.ParallelWall.Round(time.Millisecond),
		p.Speedup(), p.Checks, p.SlowChecks, p.LatencyPerCheck().Round(time.Microsecond),
		p.CheckBusy.Round(time.Microsecond), p.CheckWait.Round(time.Microsecond))
}

// Parallel runs `procs` protected nginx workers twice — serially on one
// checker, then concurrently through a CheckPool of the same width —
// and reports the wall-time speedup and aggregate check latency.
func (r *Runner) Parallel(procs int) (ParallelResult, error) {
	if procs < 2 {
		procs = 2
	}
	res := ParallelResult{Procs: procs, Workers: procs}

	an, err := r.Analyze(apps.Nginx())
	if err != nil {
		return res, err
	}
	if err := r.Train(an); err != nil {
		return res, err
	}
	pol := r.Policy

	spawn := func() (*kernelsim.Kernel, *guard.KernelModule, []*kernelsim.Process, []*guard.Guard, error) {
		k := kernelsim.New()
		km := guard.InstallModule(k)
		shared := guard.NewApprovalCache()
		ps := make([]*kernelsim.Process, procs)
		gs := make([]*guard.Guard, procs)
		for i := range ps {
			p, err := an.App.Spawn(k, an.App.MakeInput(r.Scale, r.Seed+int64(i)))
			if err != nil {
				return nil, nil, nil, nil, err
			}
			g, err := km.Protect(p, an.OCFG, an.ITC, pol)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			g.ShareApprovals(shared)
			ps[i], gs[i] = p, g
		}
		return k, km, ps, gs, nil
	}

	// Serial reference: every process runs to completion, one at a time.
	k, km, ps, _, err := spawn()
	if err != nil {
		return res, err
	}
	start := time.Now()
	for i, p := range ps {
		st, err := k.Run(p, 500_000_000)
		if err != nil {
			return res, err
		}
		if !st.Exited {
			return res, fmt.Errorf("harness: serial worker %d: %v (reports %v)", i, st, km.ReportsSnapshot())
		}
	}
	res.SerialWall = time.Since(start)

	// Parallel run: per-core execution, checks bounded by the pool.
	k, km, ps, gs, err := spawn()
	if err != nil {
		return res, err
	}
	pool := guard.NewCheckPool(procs)
	km.UsePool(pool)
	start = time.Now()
	sts, err := k.RunParallel(ps, 500_000_000, 0)
	if err != nil {
		return res, err
	}
	res.ParallelWall = time.Since(start)
	for i, st := range sts {
		if !st.Exited {
			return res, fmt.Errorf("harness: parallel worker %d: %v (reports %v)", i, st, km.ReportsSnapshot())
		}
	}
	var agg guard.Stats
	for _, g := range gs {
		agg.Merge(&g.Stats)
	}
	res.Agg = agg
	res.Checks = agg.Checks
	res.SlowChecks = agg.SlowChecks
	pstats := pool.Snapshot()
	res.CheckBusy = pstats.Busy
	res.CheckWait = pstats.Wait
	return res, nil
}
