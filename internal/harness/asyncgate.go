package harness

import (
	"fmt"

	"flowguard/internal/apps"
	"flowguard/internal/guard"
	"flowguard/internal/kernelsim"
	"flowguard/internal/perfstat"
)

// AsyncGateRow is one checking configuration's slice of the
// syscall-blocked-time experiment: the per-run mean wall-clock a
// process spent blocked inside intercepted endpoints, measured by the
// kernel at the interception boundary itself (kernelsim.GateWait), so
// synchronous and asynchronous checking are compared at the exact same
// point the paper's overhead argument is about.
type AsyncGateRow struct {
	Name    string
	Workers int // 0 = synchronous checking
	// Samples holds one value per run: mean ns blocked per intercepted
	// syscall.
	Samples []float64
	// Calls is the intercepted-endpoint count across the runs; Windows,
	// Sheds and MaxLag aggregate the pipeline's own accounting.
	Calls   uint64
	Windows uint64
	Sheds   uint64
	MaxLag  uint64
	// P is the Mann-Whitney p-value of the samples against the
	// synchronous row (1 for the synchronous row itself).
	P float64
}

func (r AsyncGateRow) String() string {
	s := perfstat.Summarize(r.Samples)
	out := fmt.Sprintf("%-9s blocked/call=%7.2fµs (min %.2f, max %.2f, n=%d) calls=%d",
		r.Name, s.Median/1e3, s.Min/1e3, s.Max/1e3, len(r.Samples), r.Calls)
	if r.Workers > 0 {
		out += fmt.Sprintf(" windows=%d maxlag=%d sheds=%d p=%.4g", r.Windows, r.MaxLag, r.Sheds, r.P)
	}
	return out
}

// AsyncGate runs a benign trace-dense workload n times per checking
// configuration — synchronous, then the asynchronous pipeline with 1
// and 4 workers — each run on a fresh kernel, and reports the measured
// syscall-blocked time with Mann-Whitney significance against the
// synchronous baseline. Every run must exit cleanly: the pipeline's
// transparency contract means asynchrony may only move the decode off
// the critical path, never change a verdict.
//
// The workload is the transcoded daemon: per frame, an
// indirect-call-dense compute burst (h264ref's dispatch shape) floods
// more than a ToPA region of trace, then one write endpoint fires — so
// the synchronous gate pays the accumulated decode at every frame
// boundary while the pipeline's workers have already drained it region
// by region, and the per-call blocked time averages over every frame of
// the run.
func (r *Runner) AsyncGate(n int) ([]AsyncGateRow, error) {
	a := apps.Transcoded()
	an, err := r.Analyze(a)
	if err != nil {
		return nil, err
	}
	if err := r.Train(an); err != nil {
		return nil, err
	}
	// The pipeline only engages when trace actually fills ToPA regions;
	// a floor on the iteration count keeps small -scale values from
	// turning the async rows into a no-op comparison.
	scale := r.Scale
	if scale < 30 {
		scale = 30
	}

	rows := []AsyncGateRow{
		{Name: "sync"},
		{Name: "async-w1", Workers: 1},
		{Name: "async-w4", Workers: 4},
	}
	for ri := range rows {
		row := &rows[ri]
		for i := 0; i < n; i++ {
			input := a.MakeInput(scale, r.Seed+int64(i))
			k := kernelsim.New()
			p, err := a.Spawn(k, input)
			if err != nil {
				return nil, err
			}
			km := guard.InstallModule(k)
			pol := r.policy()
			if row.Workers > 0 {
				pol.Async = true
				pol.AsyncWorkers = row.Workers
			}
			g, err := km.Protect(p, an.OCFG, an.ITC, pol)
			if err != nil {
				return nil, err
			}
			st, err := k.Run(p, 500_000_000)
			km.Shutdown()
			if err != nil {
				return nil, err
			}
			if !st.Exited {
				return nil, fmt.Errorf("harness: async-gate %s run %d: benign workload did not exit (%v)", row.Name, i, st)
			}
			gate, calls := k.GateWait()
			if calls == 0 {
				return nil, fmt.Errorf("harness: async-gate %s run %d: no intercepted endpoints", row.Name, i)
			}
			row.Samples = append(row.Samples, float64(gate.Nanoseconds())/float64(calls))
			row.Calls += calls
			row.Windows += g.Stats.AsyncWindows
			row.Sheds += g.Stats.WatchdogSheds
			if g.Stats.AsyncMaxLag > row.MaxLag {
				row.MaxLag = g.Stats.AsyncMaxLag
			}
		}
	}
	for ri := range rows {
		if rows[ri].Workers == 0 {
			rows[ri].P = 1
			continue
		}
		if rows[ri].Windows == 0 {
			return nil, fmt.Errorf("harness: async-gate %s captured no pipeline windows; the workload never filled a trace region", rows[ri].Name)
		}
		_, p := perfstat.MannWhitneyU(rows[0].Samples, rows[ri].Samples)
		rows[ri].P = p
	}
	return rows, nil
}
