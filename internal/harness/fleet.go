package harness

// Fleet-scale enforcement simulation (DESIGN.md §10): ten thousand
// simulated processes, a few shared per-binary label artifacts, one
// sharded admission layer. Each simulated process owns only what the
// fleet design says a process costs — a guard (last-IP window cursor +
// stats), a tiny two-region ToPA, and a replay cursor into its binary's
// shared recorded trace. Everything heavyweight (address space, O-CFG,
// the flat ITC-CFG arenas, the approval cache) lives in one
// guard.Binary per executable and is referenced by pointer.
//
// The workload is heavy-tailed: driver goroutines pick processes
// through a Zipf distribution, so a few processes (and thus a few
// tenants) dominate offered load — exactly the regime the FleetPool's
// per-tenant fairness exists for. Fork storms are simulated with
// guard.ForkGuard: children inherit the parent's artifact, approvals
// and replay position.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"flowguard/internal/apps"
	"flowguard/internal/guard"
	"flowguard/internal/itc"
	"flowguard/internal/trace/ipt"
)

// FleetConfig sizes one fleet simulation.
type FleetConfig struct {
	// Procs is the number of simulated processes (default 10000).
	Procs int
	// Tenants is the number of distinct tenants the processes are
	// partitioned into (default 64).
	Tenants int
	// Shards is the FleetPool shard count (default 8).
	Shards int
	// WorkersPerShard is each shard's checker-slot count (default 4).
	WorkersPerShard int
	// Drivers is the number of concurrent driver goroutines (default 8).
	// Processes are statically partitioned across drivers, so only the
	// admission layer is contended — per-process state stays confined.
	Drivers int
	// ChunkBytes is the trace volume replayed into a process's ToPA per
	// check event (default 2048; also the per-region ToPA size).
	ChunkBytes int
	// ZipfS is the Zipf skew parameter s > 1 (default 1.2).
	ZipfS float64
	// ForkEvery, when > 0, forks the currently driven process every
	// ForkEvery driver-local events (a rolling fork storm). Each child
	// inherits via guard.ForkGuard and is immediately driven for a
	// burst of events.
	ForkEvery int
	// Apps lists the protected binaries (default: nginx, tar, dd).
	Apps []*apps.App
	// Policy is the per-process protection policy (Runner.Policy zero
	// value falls back to guard.DefaultPolicy()).
	Policy guard.Policy
}

// fleetBinary is one protected executable's shared state plus the
// recorded benign trace its processes replay.
type fleetBinary struct {
	app *apps.App
	bin *guard.Binary
	raw []byte
}

// fleetProc is one simulated process. Only its owning driver touches
// it, so it carries no lock.
type fleetProc struct {
	tenant string
	bin    *fleetBinary
	g      *guard.Guard
	topa   *ipt.ToPA
	cur    int
}

// Fleet is a built simulation: call Run to drive it. Repeated Run
// calls accumulate into the same processes and ledgers.
type Fleet struct {
	cfg  FleetConfig
	bins []*fleetBinary
	pool *guard.FleetPool
	// parts statically partitions every process (including forked
	// children, which join their parent's partition) across drivers.
	parts [][]*fleetProc

	events uint64 // total check events offered across all Run calls
	forks  uint64

	violations   atomic.Uint64
	violSample   atomic.Value // string
	shedSample   atomic.Value // string
	offeredShard []atomic.Uint64
}

func (c *FleetConfig) setDefaults() {
	if c.Procs <= 0 {
		c.Procs = 10000
	}
	if c.Tenants <= 0 {
		c.Tenants = 64
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = 4
	}
	if c.Drivers <= 0 {
		c.Drivers = 8
	}
	if c.ChunkBytes < ipt.PSBSize {
		c.ChunkBytes = 2048
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if len(c.Apps) == 0 {
		c.Apps = []*apps.App{apps.Nginx(), apps.Tar(), apps.DD()}
	}
}

// NewFleet analyzes and trains every binary, records one benign trace
// per binary, and builds the full process population. The recorded
// trace is folded into training before the artifact snapshot, so a
// clean replay can never take an untrained edge.
func (r *Runner) NewFleet(cfg FleetConfig) (*Fleet, error) {
	cfg.setDefaults()
	pol := cfg.Policy
	if pol.Endpoints == nil {
		pol = r.Policy
	}

	f := &Fleet{
		cfg:          cfg,
		pool:         guard.NewFleetPool(cfg.Shards, cfg.WorkersPerShard),
		parts:        make([][]*fleetProc, cfg.Drivers),
		offeredShard: make([]atomic.Uint64, cfg.Shards),
	}

	for _, a := range cfg.Apps {
		an, err := r.Analyze(a)
		if err != nil {
			return nil, err
		}
		if err := r.Train(an); err != nil {
			return nil, err
		}
		raw, err := r.traceBytes(a, a.MakeInput(r.Scale, r.Seed))
		if err != nil {
			return nil, err
		}
		evs, err := ipt.DecodeFast(raw)
		if err != nil {
			return nil, err
		}
		an.ITC.ObserveWindow(ipt.ExtractTIPs(evs))
		an.ITC.RebuildCache()
		f.bins = append(f.bins, &fleetBinary{
			app: a,
			bin: guard.NewBinary(an.OCFG.AS, an.OCFG, an.ITC.Artifact()),
			raw: raw,
		})
	}

	for i := 0; i < cfg.Procs; i++ {
		fb := f.bins[i%len(f.bins)]
		// Block tenant assignment: Zipf over the process index
		// concentrates load on low indices, so low-numbered tenants
		// become the heavy hitters.
		tenant := fmt.Sprintf("tenant-%03d", i*cfg.Tenants/cfg.Procs)
		p, err := f.newProc(fb, tenant, pol, 0)
		if err != nil {
			return nil, err
		}
		f.parts[i%cfg.Drivers] = append(f.parts[i%cfg.Drivers], p)
	}
	return f, nil
}

// newProc builds one simulated process over its binary's shared state.
func (f *Fleet) newProc(fb *fleetBinary, tenant string, pol guard.Policy, cur int) (*fleetProc, error) {
	topa := ipt.NewToPA(f.cfg.ChunkBytes, f.cfg.ChunkBytes)
	tr := ipt.NewTracer(topa)
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
		return nil, err
	}
	return &fleetProc{
		tenant: tenant,
		bin:    fb,
		g:      fb.bin.NewGuard(tr, pol),
		topa:   topa,
		cur:    cur,
	}, nil
}

// step replays the process's next trace chunk and offers one check to
// the admission layer.
func (f *Fleet) step(p *fleetProc) {
	raw, chunk := p.bin.raw, f.cfg.ChunkBytes
	if p.cur >= len(raw) {
		// One full pass replayed: the process "restarts" — a fresh
		// trace session over the same binary with a clean window.
		// Stitching the stream head onto the tail instead would
		// fabricate an untrained wrap edge no real execution takes.
		p.topa.Reset()
		p.g.InvalidateWindow()
		p.cur = 0
	}
	end := p.cur + chunk
	if end > len(raw) {
		end = len(raw)
	}
	p.topa.Write(raw[p.cur:end])
	p.cur = end

	f.offeredShard[f.pool.ShardIndex(p.tenant)].Add(1)
	res := f.pool.Do(p.tenant, p.g)
	if res.Verdict == guard.VerdictViolation {
		if res.Degraded {
			f.shedSample.CompareAndSwap(nil, res.Reason)
		} else {
			f.violations.Add(1)
			f.violSample.CompareAndSwap(nil, fmt.Sprintf("%s/%s: %s", p.tenant, p.bin.app.Name, res.Reason))
		}
	}
}

// forkBurst is how many events a freshly forked child is driven for
// immediately (the storm's thundering-herd shape).
const forkBurst = 4

// Run drives the fleet for `events` check events (split across the
// drivers), or until `wall` elapses, whichever comes first; events <= 0
// means wall-only. It returns the cumulative result over every Run so
// far. The error reports infrastructure failures only — invariant
// violations are in FleetResult.Check.
func (f *Fleet) Run(events int, wall time.Duration) (*FleetResult, error) {
	var deadline time.Time
	if wall > 0 {
		deadline = time.Now().Add(wall)
	}
	perDriver := make([]int, len(f.parts))
	if events > 0 {
		for i := range perDriver {
			perDriver[i] = events / len(f.parts)
		}
		for i := 0; i < events%len(f.parts); i++ {
			perDriver[i]++
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	var ran, forked uint64
	var firstErr atomic.Value // error
	for d := range f.parts {
		if len(f.parts[d]) == 0 {
			continue
		}
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			procs := f.parts[d]
			rng := rand.New(rand.NewSource(int64(7919*d) + 1))
			zipf := rand.NewZipf(rng, f.cfg.ZipfS, 1, uint64(len(procs)-1))
			local, localForks := uint64(0), uint64(0)
			for n := 0; ; n++ {
				if events > 0 && n >= perDriver[d] {
					break
				}
				if events <= 0 && (n&63) == 0 && !deadline.IsZero() && time.Now().After(deadline) {
					break
				}
				p := procs[zipf.Uint64()]
				f.step(p)
				local++
				if f.cfg.ForkEvery > 0 && n%f.cfg.ForkEvery == f.cfg.ForkEvery-1 {
					child, err := f.newProc(p.bin, p.tenant, p.g.Policy, p.cur)
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						break
					}
					child.g = guard.ForkGuard(p.g, nil, child.g.Tracer)
					procs = append(procs, child)
					localForks++
					for b := 0; b < forkBurst; b++ {
						f.step(child)
						local++
					}
				}
			}
			f.parts[d] = procs
			atomic.AddUint64(&ran, local)
			atomic.AddUint64(&forked, localForks)
		}(d)
	}
	wg.Wait()
	elapsed := time.Since(start)
	f.events += ran
	f.forks += forked
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return nil, err
	}
	return f.result(elapsed, ran), nil
}

// FleetResult is the cumulative outcome of a fleet simulation.
type FleetResult struct {
	Procs    int // population including forked children
	Binaries int
	Tenants  int
	Shards   int
	Events   uint64 // check events offered
	Forks    uint64

	// Agg is every process guard's Stats merged.
	Agg guard.Stats
	// Pool is the merged admission ledger; ShardStats the per-shard
	// ledgers; OfferedPerShard the independently counted offered load
	// per shard (ledger cross-check).
	Pool            guard.PoolStats
	ShardStats      []guard.PoolStats
	OfferedPerShard []uint64

	// SharedArtifacts counts distinct itc.Artifact pointers across the
	// whole population — the no-copy pin requires exactly Binaries.
	SharedArtifacts int
	// RealViolations counts non-degraded violation verdicts (must be
	// zero: the replayed streams are trained and benign).
	RealViolations uint64
	ViolSample     string
	ShedSample     string

	Wall         time.Duration
	ChecksPerSec float64
}

func (f *Fleet) result(elapsed time.Duration, ran uint64) *FleetResult {
	res := &FleetResult{
		Binaries:       len(f.bins),
		Tenants:        f.cfg.Tenants,
		Shards:         f.cfg.Shards,
		Events:         f.events,
		Forks:          f.forks,
		Pool:           f.pool.Snapshot(),
		ShardStats:     f.pool.ShardSnapshots(),
		RealViolations: f.violations.Load(),
		Wall:           elapsed,
	}
	arts := make(map[*itc.Artifact]bool)
	for _, part := range f.parts {
		for _, p := range part {
			res.Procs++
			res.Agg.Merge(&p.g.Stats)
			arts[p.g.Artifact()] = true
		}
	}
	res.SharedArtifacts = len(arts)
	res.OfferedPerShard = make([]uint64, len(f.offeredShard))
	for i := range f.offeredShard {
		res.OfferedPerShard[i] = f.offeredShard[i].Load()
	}
	if s, ok := f.violSample.Load().(string); ok {
		res.ViolSample = s
	}
	if s, ok := f.shedSample.Load().(string); ok {
		res.ShedSample = s
	}
	if elapsed > 0 {
		// Throughput reflects this Run call only; counters above are
		// cumulative across Run calls.
		res.ChecksPerSec = float64(ran) / elapsed.Seconds()
	}
	return res
}

// Check validates the fleet invariants and returns every violation:
//
//   - the admission ledger accounts for every offered check, in total
//     and per shard (checks == admitted + shed, nothing silent);
//   - guard-side and pool-side ledgers agree (merged Stats.Checks,
//     Shed, FairnessSheds match the pool);
//   - exactly one artifact per binary is shared by the population;
//   - fork inheritance is fully counted;
//   - no real (non-degraded) violation fired on the benign workload.
func (res *FleetResult) Check() []string {
	var bad []string
	fail := func(format string, args ...any) { bad = append(bad, fmt.Sprintf(format, args...)) }

	if res.Pool.Checks+res.Pool.Shed != res.Events {
		fail("pool ledger: admitted %d + shed %d != offered %d", res.Pool.Checks, res.Pool.Shed, res.Events)
	}
	var sum guard.PoolStats
	for i, ss := range res.ShardStats {
		sum.Merge(ss)
		if i < len(res.OfferedPerShard) && ss.Checks+ss.Shed != res.OfferedPerShard[i] {
			fail("shard %d ledger: admitted %d + shed %d != offered %d", i, ss.Checks, ss.Shed, res.OfferedPerShard[i])
		}
	}
	if sum.Checks != res.Pool.Checks || sum.Shed != res.Pool.Shed || sum.FairnessSheds != res.Pool.FairnessSheds {
		fail("shard snapshots do not sum to the merged pool ledger: %+v vs %+v", sum, res.Pool)
	}
	if res.Agg.Checks != res.Pool.Checks+res.Pool.Shed {
		fail("guard ledger: merged Stats.Checks %d != admitted %d + shed %d", res.Agg.Checks, res.Pool.Checks, res.Pool.Shed)
	}
	if res.Agg.Shed != res.Pool.Shed {
		fail("shed counters diverge: guards %d, pool %d", res.Agg.Shed, res.Pool.Shed)
	}
	if res.Agg.FairnessSheds != res.Pool.FairnessSheds {
		fail("fairness-shed counters diverge: guards %d, pool %d", res.Agg.FairnessSheds, res.Pool.FairnessSheds)
	}
	if res.SharedArtifacts != res.Binaries {
		fail("artifact sharing broken: %d distinct artifacts across %d procs, want exactly %d (one per binary)",
			res.SharedArtifacts, res.Procs, res.Binaries)
	}
	if res.Agg.ForkInherits != res.Forks {
		fail("fork inheritance undercounted: %d ForkInherits vs %d forks", res.Agg.ForkInherits, res.Forks)
	}
	if res.RealViolations != 0 {
		fail("%d real violations on a benign trained fleet (first: %s)", res.RealViolations, res.ViolSample)
	}
	return bad
}

// String renders the one-line summary flowguardd prints.
func (res *FleetResult) String() string {
	return fmt.Sprintf("procs=%d (forks=%d) binaries=%d artifacts=%d tenants=%d shards=%d  events=%d admitted=%d shed=%d (fair %d)  %.0f checks/s  wall=%s",
		res.Procs, res.Forks, res.Binaries, res.SharedArtifacts, res.Tenants, res.Shards,
		res.Events, res.Pool.Checks, res.Pool.Shed, res.Pool.FairnessSheds,
		res.ChecksPerSec, res.Wall.Round(time.Millisecond))
}

// FleetStatsMap flattens the result into the perfstat artifact's
// fleet_stats form: every guard.Stats counter plus the fleet-level
// ledgers and population shape.
func (res *FleetResult) FleetStatsMap() map[string]uint64 {
	m := StatsMap(&res.Agg)
	m["FleetProcs"] = uint64(res.Procs)
	m["FleetBinaries"] = uint64(res.Binaries)
	m["FleetArtifacts"] = uint64(res.SharedArtifacts)
	m["FleetTenants"] = uint64(res.Tenants)
	m["FleetShards"] = uint64(res.Shards)
	m["FleetEvents"] = res.Events
	m["FleetForks"] = res.Forks
	m["FleetPoolChecks"] = res.Pool.Checks
	m["FleetPoolShed"] = res.Pool.Shed
	m["FleetPoolFairnessSheds"] = res.Pool.FairnessSheds
	m["FleetPoolRetried"] = res.Pool.Retried
	m["FleetRealViolations"] = res.RealViolations
	return m
}
