package harness

import (
	"sync"
	"testing"
	"time"
)

// The benchmark fleet is deliberately smaller than flowguardd's default
// population: tier-1 samples must be cheap enough for fgperf's
// interleaved iterations, and per-event throughput is
// population-independent once every driver has processes to pick from.
var (
	benchFleetOnce sync.Once
	benchFleet     *Fleet
	benchFleetErr  error
)

func benchFleetFixture(b *testing.B) *Fleet {
	b.Helper()
	benchFleetOnce.Do(func() {
		r := NewRunner()
		benchFleet, benchFleetErr = r.NewFleet(FleetConfig{
			Procs:           1024,
			Tenants:         32,
			Shards:          4,
			WorkersPerShard: 4,
			Drivers:         4,
			ForkEvery:       2000,
		})
	})
	if benchFleetErr != nil {
		b.Fatal(benchFleetErr)
	}
	return benchFleet
}

// BenchmarkFleetThroughput is the tier-1 fleet gate (DESIGN.md §10):
// one benchmark op is one check event through the full stack — Zipf
// process pick, trace-chunk replay into the process's ToPA, sharded
// fairness admission, and the artifact-backed hybrid check. The fleet
// ledger invariants are validated at the end of every run, so a
// regression that silently drops or double-counts checks fails the
// benchmark outright rather than "speeding it up".
func BenchmarkFleetThroughput(b *testing.B) {
	f := benchFleetFixture(b)
	b.ResetTimer()
	res, err := f.Run(b.N, time.Minute)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if bad := res.Check(); len(bad) > 0 {
		b.Fatalf("fleet invariants violated: %v", bad)
	}
	b.ReportMetric(res.ChecksPerSec, "checks/sec")
}
