package harness

// The fork-inheritance conformance property (DESIGN.md §10, the
// ForkGuard contract): after a fork from a quiescent parent, the
// child's verdicts over any replayed stream are byte-identical to those
// of a fresh process built with the parent's Approvals().Clone() taken
// at fork time — and the fresh twin stays divergence-free against the
// reference oracle, so the child is transitively oracle-conformant.
// Failures shrink through the packet-aligned delta debugger and dump a
// TestOracleReplay artifact like every other property here.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"flowguard/internal/guard"
	"flowguard/internal/itc"
	"flowguard/internal/trace/ipt"
)

// The undertrained fixture is what makes the property non-vacuous: the
// replayed tail crosses legal-but-uncredited edges, so the parent banks
// slow-path approvals the child must inherit bit-for-bit.
var forkFix struct {
	once sync.Once
	fx   *DiffFixture
	art  *itc.Artifact
	err  error
}

func forkFixture(t testing.TB) (*DiffFixture, *itc.Artifact) {
	forkFix.once.Do(func() {
		forkFix.fx, forkFix.err = newUnderTrainedFixture()
		if forkFix.err == nil {
			forkFix.art = forkFix.fx.An.ITC.Artifact()
		}
	})
	if forkFix.err != nil {
		t.Fatalf("fork fixture: %v", forkFix.err)
	}
	return forkFix.fx, forkFix.art
}

// forkPoint is one seed's decoded parameter set.
type forkPoint struct {
	pol      guard.Policy
	chunks   int  // replay chunking (parent prefix and child full replay)
	forkAt   int  // the parent consumes chunks [0, forkAt) before forking
	artifact bool // dispatch via the shared itc.Artifact, not the live graph
	inject   int  // 0 = benign stream; else the injectEdge pick
}

func forkPointFor(seed int64) forkPoint {
	rng := rand.New(rand.NewSource(seed))
	p := forkPoint{
		pol:      modePolicy(diffModes[rng.Intn(len(diffModes))]),
		chunks:   3 + rng.Intn(6),
		artifact: rng.Intn(2) == 1,
	}
	// forkAt may reach chunks: a parent that completes the stream has
	// banked its slow-path approvals, so the child's own replay must
	// fast-path the edges a no-inheritance guard would slow-path.
	p.forkAt = 1 + rng.Intn(p.chunks)
	if rng.Intn(2) == 1 {
		p.inject = 1 + rng.Intn(6)
	}
	return p
}

// forkStream derives the seed's replay stream; an impossible injection
// degrades to the benign stream rather than skipping the seed.
func forkStream(fx *DiffFixture, p forkPoint) []byte {
	if p.inject == 0 {
		return fx.BenignTrace
	}
	raw, ok := injectEdge(fx.BenignTrace, p.inject, jopTarget(fx))
	if !ok {
		return fx.BenignTrace
	}
	return raw
}

// compareForkResults demands bit-identical child/twin results: the
// contract is equality of every result field — including the
// deterministic cycle meters — not mere verdict agreement.
func compareForkResults(check int, c, f guard.Result) (divs []string) {
	add := func(field string, cv, fv any) {
		divs = append(divs, fmt.Sprintf("check %d %s: child=%v fresh=%v", check, field, cv, fv))
	}
	if c.Verdict != f.Verdict {
		add("verdict", c.Verdict, f.Verdict)
	}
	if c.Reason != f.Reason {
		add("reason", c.Reason, f.Reason)
	}
	if c.TIPs != f.TIPs {
		add("tips", c.TIPs, f.TIPs)
	}
	if c.LowCredit != f.LowCredit {
		add("low-credit", c.LowCredit, f.LowCredit)
	}
	if c.UsedSlowPath != f.UsedSlowPath {
		add("used-slow-path", c.UsedSlowPath, f.UsedSlowPath)
	}
	if c.Health != f.Health {
		add("health", c.Health, f.Health)
	}
	if c.Degraded != f.Degraded {
		add("degraded", c.Degraded, f.Degraded)
	}
	if c.Retries != f.Retries {
		add("retries", c.Retries, f.Retries)
	}
	if c.DecodeCycles != f.DecodeCycles || c.CheckCycles != f.CheckCycles ||
		c.OtherCycles != f.OtherCycles || c.SlowCycles != f.SlowCycles {
		add("cycles", [4]uint64{c.DecodeCycles, c.CheckCycles, c.OtherCycles, c.SlowCycles},
			[4]uint64{f.DecodeCycles, f.CheckCycles, f.OtherCycles, f.SlowCycles})
	}
	return divs
}

// compareForkStats diffs every guard.Stats counter between child and
// twin except ForkInherits (the child counts its inheritance; the twin
// by construction has none). StatsFields keeps this exhaustive under
// the statssync invariant.
func compareForkStats(c, f *guard.Stats) (divs []string) {
	cf, ff := StatsFields(c), StatsFields(f)
	for i := range cf {
		if cf[i].Name == "ForkInherits" {
			continue
		}
		if cf[i].Value != ff[i].Value {
			divs = append(divs, fmt.Sprintf("stats %s: child=%d fresh=%d", cf[i].Name, cf[i].Value, ff[i].Value))
		}
	}
	return divs
}

// runForkConformance replays one seed point: the parent pair consumes
// chunks [0, forkAt), then the forked child (ForkGuard: shared live
// state) and the fresh twin (cloned approvals) each replay the full
// stream — their own execution — into their own buffers, with the twin
// double-checked against the oracle. Returns all divergences and
// whether the fork actually inherited a non-empty approval store.
func runForkConformance(fx *DiffFixture, art *itc.Artifact, p forkPoint, raw []byte) ([]string, bool, error) {
	region := len(raw) + guard.DefaultToPARegion
	g1, o1, topa1, err := newDiffPair(fx, p.pol, region)
	if err != nil {
		return nil, false, err
	}
	if p.artifact {
		g1.UseArtifact(art)
	}
	var divs []string
	check := 0
	for c := 0; c < p.forkAt; c++ {
		lo, hi := c*len(raw)/p.chunks, (c+1)*len(raw)/p.chunks
		topa1.Write(raw[lo:hi])
		check++
		divs = append(divs, compareResults(check, g1.Check(), o1.Check())...)
	}

	// Fork time. The child shares the parent's state by pointer; the
	// twin gets an independent snapshot of the same state.
	childTopa := ipt.NewToPA(region, region)
	childTr := ipt.NewTracer(childTopa)
	if err := childTr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
		return nil, false, err
	}
	child := guard.ForkGuard(g1, nil, childTr)

	g2, o2, topa2, err := newDiffPair(fx, p.pol, region)
	if err != nil {
		return nil, false, err
	}
	if p.artifact {
		g2.UseArtifact(art)
	}
	g2.ShareApprovals(g1.Approvals().Clone())
	o2.AdoptApprovals(o1)
	inherited := g1.Approvals().Len() > 0

	for c := 0; c < p.chunks; c++ {
		lo, hi := c*len(raw)/p.chunks, (c+1)*len(raw)/p.chunks
		childTopa.Write(raw[lo:hi])
		topa2.Write(raw[lo:hi])
		rc := child.Check()
		rf := g2.Check()
		ro := o2.Check()
		check++
		divs = append(divs, compareForkResults(check, rc, rf)...)
		divs = append(divs, compareResults(check, rf, ro)...)
	}
	divs = append(divs, compareForkStats(&child.Stats, &g2.Stats)...)
	divs = append(divs, compareStats(&g2.Stats, &o2.Stats)...)
	return divs, inherited, nil
}

// TestPropertyForkInheritance sweeps seeded (mode, chunking, fork
// point, dispatch, mutation) combinations of the conformance contract.
func TestPropertyForkInheritance(t *testing.T) {
	fx, art := forkFixture(t)
	seeds := 1000
	if testing.Short() {
		seeds = 120
	}
	inherited := 0
	for seed := int64(0); seed < int64(seeds); seed++ {
		p := forkPointFor(seed)
		raw := forkStream(fx, p)
		divs, inh, err := runForkConformance(fx, art, p, raw)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if inh {
			inherited++
		}
		if len(divs) > 0 {
			for _, d := range divs {
				t.Errorf("seed %d: %s", seed, d)
			}
			dumpFailure(t, &SeedArtifact{Property: "fork-inherit", Seed: seed,
				Mode: int(p.pol.OnDegraded), Chunks: p.chunks, Pick: p.forkAt}, raw,
				func(b []byte) bool {
					d2, _, e := runForkConformance(fx, art, p, b)
					return e == nil && len(d2) > 0
				})
			return // one minimized artifact is enough; it replays the bug
		}
	}
	if inherited == 0 {
		t.Error("no seed forked with a non-empty approval store; the property never exercised inheritance")
	}
}
