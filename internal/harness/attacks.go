package harness

import (
	"fmt"

	"flowguard/internal/apps"
	"flowguard/internal/attack"
	"flowguard/internal/kernelsim"
	"flowguard/internal/module"
)

// AttackRow records one §7.1.2 attack experiment.
type AttackRow struct {
	Attack string
	// Detected reports the protected run was killed.
	Detected bool
	// DetectedAt names the syscall endpoint of the detection.
	DetectedAt string
	// Reason is the violation diagnosis.
	Reason string
	// SucceedsUnprotected confirms the exploit is real: without
	// FlowGuard, the attacker goal is reached.
	SucceedsUnprotected bool
}

func (r AttackRow) String() string {
	return fmt.Sprintf("%-14s detected=%-5v at=%-10s exploit-valid=%v  %s",
		r.Attack, r.Detected, r.DetectedAt, r.SucceedsUnprotected, r.Reason)
}

// Attacks runs the attack matrix against the vulnerable server: each
// payload is launched once unprotected (validating the exploit) and once
// under the trained guard (validating detection and the endpoint).
func (r *Runner) Attacks() ([]AttackRow, error) {
	a := apps.Vulnd()
	an, err := r.Analyze(a)
	if err != nil {
		return nil, err
	}
	if err := r.Train(an); err != nil {
		return nil, err
	}
	as, err := a.Load()
	if err != nil {
		return nil, err
	}

	builders := []struct {
		name  string
		build func(*module.AddressSpace) ([]byte, error)
		goal  func(k *kernelsim.Kernel, p *kernelsim.Process) bool
	}{
		{"ROP", attack.BuildROPWrite, func(k *kernelsim.Kernel, p *kernelsim.Process) bool {
			c, ok := k.FileContents(attack.ROPFileName)
			return ok && string(c) == attack.ROPMarker
		}},
		{"SROP", attack.BuildSROP, func(k *kernelsim.Kernel, p *kernelsim.Process) bool {
			return len(p.Execves) > 0
		}},
		{"ret2lib", attack.BuildRet2Lib, func(k *kernelsim.Kernel, p *kernelsim.Process) bool {
			return len(p.Execves) > 0
		}},
		{"history-flush", func(as *module.AddressSpace) ([]byte, error) {
			return attack.BuildHistoryFlush(as, 48)
		}, func(k *kernelsim.Kernel, p *kernelsim.Process) bool {
			return len(p.Stdout) > 0 // the flushed write reaches stdout
		}},
	}

	var rows []AttackRow
	for _, b := range builders {
		payload, err := b.build(as)
		if err != nil {
			return nil, err
		}
		row := AttackRow{Attack: b.name}

		// Unprotected: does the exploit reach its goal?
		ku := kernelsim.New()
		pu, err := a.Spawn(ku, payload)
		if err != nil {
			return nil, err
		}
		if _, err := ku.Run(pu, 500_000_000); err != nil {
			return nil, err
		}
		row.SucceedsUnprotected = b.goal(ku, pu)

		// Protected: detection and endpoint.
		pr, err := r.RunProtected(an, payload, r.policy())
		if err != nil {
			return nil, err
		}
		row.Detected = pr.Killed
		if len(pr.Reports) > 0 {
			row.DetectedAt = kernelsim.SyscallName(pr.Reports[0].Syscall)
			row.Reason = pr.Reports[0].Reason
		}
		rows = append(rows, row)
	}
	return rows, nil
}
