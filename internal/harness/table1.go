package harness

import (
	"fmt"

	"flowguard/internal/apps"
	"flowguard/internal/kernelsim"
	"flowguard/internal/module"
	"flowguard/internal/trace"
	"flowguard/internal/trace/bts"
	"flowguard/internal/trace/ipt"
	"flowguard/internal/trace/lbr"
)

// Table1Row compares one hardware tracing mechanism (paper Table 1).
type Table1Row struct {
	Mechanism string
	Precise   string
	// TracingOverheadPct is the geometric-mean tracing slowdown over the
	// SPEC-like kernels.
	TracingOverheadPct float64
	// DecodingOverheadX is the full-decode cost as a multiple of
	// execution (IPT only; BTS records are self-describing and LBR holds
	// register pairs).
	DecodingOverheadX float64
	Filtering         string
}

func (r Table1Row) String() string {
	dec := "none needed"
	if r.DecodingOverheadX > 0 {
		dec = fmt.Sprintf("high (%.0fx)", r.DecodingOverheadX)
	}
	return fmt.Sprintf("%-4s  precise=%-5s tracing=%7.2f%%  decoding=%-12s  filtering=%s",
		r.Mechanism, r.Precise, r.TracingOverheadPct, dec, r.Filtering)
}

// Table1 measures the three mechanisms over the SPEC-like kernels.
func (r *Runner) Table1() ([]Table1Row, error) {
	var btsOv, lbrOv, iptOv, decOv []float64
	for _, a := range apps.SpecApps() {
		input := a.MakeInput(r.Scale, r.Seed)
		base, _, err := r.Baseline(a, input)
		if err != nil {
			return nil, err
		}

		// BTS: every branch recorded, no filtering.
		bt := bts.New(4096)
		if err := r.runWithSink(a, input, bt); err != nil {
			return nil, err
		}
		btsOv = append(btsOv, 100*float64(bt.Cycles())/float64(base))

		// LBR: 32-deep register stack with CoFI-type filtering.
		lt := lbr.New(lbr.Depth32, lbr.FilterCFI)
		if err := r.runWithSink(a, input, lt); err != nil {
			return nil, err
		}
		lbrOv = append(lbrOv, 100*float64(lt.Cycles())/float64(base))

		// IPT: compressed packets into a large ToPA; also measure the
		// full-decode cost of the complete trace (§2's 230x experiment:
		// "whenever the traced buffer is filled, we pause the execution
		// and decode the packets").
		it := ipt.NewTracer(ipt.NewToPA(256 << 20))
		if err := it.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
			return nil, err
		}
		as, err := r.runWithSinkAS(a, input, it)
		if err != nil {
			return nil, err
		}
		it.Flush()
		iptOv = append(iptOv, 100*float64(it.Cycles())/float64(base))
		ft, err := ipt.DecodeFull(as, it.Out.Snapshot(), 0)
		if err != nil {
			return nil, err
		}
		decOv = append(decOv, float64(ft.Cycles())/float64(base))
	}
	return []Table1Row{
		{Mechanism: "BTS", Precise: "full", TracingOverheadPct: geomean(btsOv), DecodingOverheadX: 0, Filtering: "none"},
		{Mechanism: "LBR", Precise: "low", TracingOverheadPct: geomean(lbrOv), DecodingOverheadX: 0, Filtering: "CPL, CoFI type"},
		{Mechanism: "IPT", Precise: "full", TracingOverheadPct: geomean(iptOv), DecodingOverheadX: geomean(decOv), Filtering: "CPL, CR3, IP"},
	}, nil
}

// DecodeOverheadX reproduces the standalone §2 claim: the geometric mean
// full-decode overhead over the SPEC-like kernels (the paper measures
// ~230x, with 8 of 12 benchmarks above 500x on their testbed).
func (r *Runner) DecodeOverheadX() (geo float64, perApp map[string]float64, err error) {
	perApp = make(map[string]float64)
	var all []float64
	for _, a := range apps.SpecApps() {
		input := a.MakeInput(r.Scale, r.Seed)
		base, _, err := r.Baseline(a, input)
		if err != nil {
			return 0, nil, err
		}
		it := ipt.NewTracer(ipt.NewToPA(256 << 20))
		if err := it.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
			return 0, nil, err
		}
		as, err := r.runWithSinkAS(a, input, it)
		if err != nil {
			return 0, nil, err
		}
		it.Flush()
		ft, err := ipt.DecodeFull(as, it.Out.Snapshot(), 0)
		if err != nil {
			return 0, nil, err
		}
		x := float64(ft.Cycles()) / float64(base)
		perApp[a.Name] = x
		all = append(all, x)
	}
	return geomean(all), perApp, nil
}

func (r *Runner) runWithSink(a *apps.App, input []byte, sink trace.Sink) error {
	_, err := r.runWithSinkAS(a, input, sink)
	return err
}

func (r *Runner) runWithSinkAS(a *apps.App, input []byte, sink trace.Sink) (*module.AddressSpace, error) {
	k := kernelsim.New()
	p, err := a.Spawn(k, input)
	if err != nil {
		return nil, err
	}
	if t, ok := sink.(*ipt.Tracer); ok {
		t.SetCR3(p.CR3)
	}
	p.CPU.Branch = sink
	st, err := k.Run(p, 500_000_000)
	if err != nil {
		return nil, err
	}
	if !st.Exited {
		return nil, fmt.Errorf("harness: traced run of %s: %v", a.Name, st)
	}
	return p.AS, nil
}
