package harness_test

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flowguard/internal/guard"
	"flowguard/internal/harness"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the current output")

// golden compares got against testdata/<name>, rewriting the file under
// -update so intentional format changes are a one-flag refresh.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("output diverges from %s (run with -update if intentional):\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// statsFixture fills every counter with a distinct value so the golden
// file catches a swapped or dropped line, not just a missing one.
func statsFixture() *guard.Stats {
	var s guard.Stats
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetUint(uint64(1000 + i))
	}
	return &s
}

func TestFormatStatsGolden(t *testing.T) {
	golden(t, "formatstats.golden", harness.FormatStats(statsFixture()))
}

// TestStatsFieldsCompleteness is the runtime half of the statssync
// invariant on the reporter: one entry per guard.Stats field, in
// declaration order, no duplicates, values faithfully copied.
func TestStatsFieldsCompleteness(t *testing.T) {
	s := statsFixture()
	fields := harness.StatsFields(s)
	typ := reflect.TypeOf(*s)
	if len(fields) != typ.NumField() {
		t.Fatalf("StatsFields returned %d entries, guard.Stats has %d fields", len(fields), typ.NumField())
	}
	val := reflect.ValueOf(*s)
	for i, f := range fields {
		if want := typ.Field(i).Name; f.Name != want {
			t.Errorf("field %d: name %q, want declaration-order %q", i, f.Name, want)
		}
		if want := val.Field(i).Uint(); f.Value != want {
			t.Errorf("field %s: value %d, want %d", f.Name, f.Value, want)
		}
	}

	m := harness.StatsMap(s)
	if len(m) != typ.NumField() {
		t.Fatalf("StatsMap has %d keys, want %d", len(m), typ.NumField())
	}
	for _, f := range fields {
		if m[f.Name] != f.Value {
			t.Errorf("StatsMap[%s] = %d, want %d", f.Name, m[f.Name], f.Value)
		}
	}
}

func TestPhaseBreakdowns(t *testing.T) {
	rows := []harness.OverheadRow{
		{App: "nginx", Category: "server", TotalPct: 4.5, TracePct: 1.1, DecodePct: 2.2,
			CheckPct: 1.0, OtherPct: 0.2, SlowRate: 0.004, CredRatio: 0.97, BaseInstrs: 123456},
		{App: "gzip", Category: "utility", TotalPct: 1.2},
	}
	got := harness.PhaseBreakdowns(rows)
	if len(got) != 2 {
		t.Fatalf("got %d breakdowns", len(got))
	}
	p := got[0]
	if p.App != "nginx" || p.Category != "server" || p.TotalPct != 4.5 || p.TracePct != 1.1 ||
		p.DecodePct != 2.2 || p.CheckPct != 1.0 || p.OtherPct != 0.2 ||
		p.SlowRate != 0.004 || p.CredRatio != 0.97 || p.BaseInstrs != 123456 {
		t.Errorf("breakdown[0] lost a field: %+v", p)
	}
	if got[1].App != "gzip" || got[1].TotalPct != 1.2 {
		t.Errorf("breakdown[1]: %+v", got[1])
	}
}
