// Package module defines the binary format of the synthetic toolchain and
// the address-space loader.
//
// A Module is the analogue of an ELF object: a code section, a data
// section with a global offset table (GOT) at its front, a symbol table
// carrying function metadata, a procedure linkage table (PLT) for imported
// functions, relocations for address-taken symbols, and a DT_NEEDED-style
// dependency list. The loader maps an executable, its dependency closure
// and the VDSO into one flat address space and performs eager symbol
// binding with ELF-like global symbol interposition: the executable is
// searched first, then the needed libraries in breadth-first order, and
// VDSO definitions take precedence for the symbols the VDSO exports
// (paper §4.1).
package module

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// SymKind distinguishes function symbols from data objects.
type SymKind uint8

// Symbol kinds.
const (
	SymFunc SymKind = iota
	SymObject
)

func (k SymKind) String() string {
	if k == SymFunc {
		return "func"
	}
	return "object"
}

// Symbol is one entry of a module's symbol table.
type Symbol struct {
	Name string
	Kind SymKind
	// Off is the symbol's offset within the code section (SymFunc) or the
	// data section (SymObject).
	Off  uint64
	Size uint64
	// ArgCount is the declared number of argument registers a function
	// consumes. The static analyzer computes its own arity via use-def
	// analysis; the declared value exists so tests can validate the
	// analysis against ground truth.
	ArgCount int
	// AddressTaken marks functions whose address escapes (via LEA
	// relocations or data-section function pointers). Only address-taken
	// functions are legal indirect-call targets in the conservative CFG.
	AddressTaken bool
	// Exported symbols participate in dynamic linking.
	Exported bool
}

// Reloc asks the loader to write the absolute address of Symbol at offset
// Off of the data section (a function pointer or a GOT slot).
type Reloc struct {
	// Off is the data-section offset of the 8-byte slot to patch.
	Off uint64
	// Symbol is resolved through the regular interposition order.
	Symbol string
}

// PLTEntry describes one procedure-linkage-table stub in the code section.
// The stub loads the target address from its GOT slot and performs an
// indirect jump, which is why inter-module control transfers are only ever
// indirect branches plus the matching returns (paper §4.1).
type PLTEntry struct {
	Symbol string
	// Off is the code-section offset of the stub's first instruction.
	Off uint64
	// GOTSlot is the index of the 8-byte GOT slot holding the resolved
	// target address.
	GOTSlot int
}

// Module is one linkable object: an executable, a shared library, or the
// VDSO.
type Module struct {
	Name string
	Code []byte
	Data []byte
	// GOTSlots is the number of 8-byte GOT entries at the start of Data.
	GOTSlots int
	Symbols  []Symbol
	PLT      []PLTEntry
	Relocs   []Reloc
	// Needed lists dependency module names in DT_NEEDED order.
	Needed []string
	// Entry is the code offset of the entry point (executables only).
	Entry uint64
}

// Symbol returns the symbol with the given name, if present.
func (m *Module) Symbol(name string) (Symbol, bool) {
	for i := range m.Symbols {
		if m.Symbols[i].Name == name {
			return m.Symbols[i], true
		}
	}
	return Symbol{}, false
}

// FuncAt returns the function symbol covering the given code offset.
func (m *Module) FuncAt(off uint64) (Symbol, bool) {
	best := -1
	for i := range m.Symbols {
		s := &m.Symbols[i]
		if s.Kind != SymFunc || s.Off > off {
			continue
		}
		if s.Size > 0 && off >= s.Off+s.Size {
			continue
		}
		if best < 0 || s.Off > m.Symbols[best].Off {
			best = i
		}
	}
	if best < 0 {
		return Symbol{}, false
	}
	return m.Symbols[best], true
}

// Validate performs structural checks: section sizes, symbol bounds, PLT
// and relocation targets.
func (m *Module) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("module: empty name")
	}
	if len(m.Code)%8 != 0 {
		return fmt.Errorf("module %s: code size %d not a multiple of the instruction width", m.Name, len(m.Code))
	}
	if got := uint64(m.GOTSlots * 8); got > uint64(len(m.Data)) {
		return fmt.Errorf("module %s: GOT (%d slots) exceeds data section (%d bytes)", m.Name, m.GOTSlots, len(m.Data))
	}
	for _, s := range m.Symbols {
		limit := uint64(len(m.Data))
		if s.Kind == SymFunc {
			limit = uint64(len(m.Code))
		}
		if s.Off >= limit && !(s.Off == limit && s.Size == 0) {
			return fmt.Errorf("module %s: symbol %s offset %#x out of range", m.Name, s.Name, s.Off)
		}
	}
	for _, p := range m.PLT {
		if p.Off >= uint64(len(m.Code)) {
			return fmt.Errorf("module %s: PLT stub for %s out of range", m.Name, p.Symbol)
		}
		if p.GOTSlot < 0 || p.GOTSlot >= m.GOTSlots {
			return fmt.Errorf("module %s: PLT stub for %s references GOT slot %d of %d", m.Name, p.Symbol, p.GOTSlot, m.GOTSlots)
		}
	}
	for _, r := range m.Relocs {
		if r.Off+8 > uint64(len(m.Data)) {
			return fmt.Errorf("module %s: relocation for %s at %#x out of data range", m.Name, r.Symbol, r.Off)
		}
	}
	if m.Entry >= uint64(len(m.Code)) && len(m.Code) > 0 {
		return fmt.Errorf("module %s: entry %#x out of code range", m.Name, m.Entry)
	}
	return nil
}

// Default address-space layout constants.
const (
	ExecBase  uint64 = 0x0040_0000 // executable code base
	LibBase   uint64 = 0x1000_0000 // first shared library base
	LibStride uint64 = 0x0100_0000 // spacing between libraries
	VDSOBase  uint64 = 0x7000_0000 // VDSO code base
	StackTop  uint64 = 0x7f00_0000 // initial stack pointer (exclusive)
	StackSize uint64 = 1 << 20     // 1 MiB stack
	pageAlign uint64 = 0x1000
)

// Perm is a segment permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermR Perm = 1 << iota
	PermW
	PermX
)

func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Segment is one contiguous mapped region.
type Segment struct {
	Base uint64
	Perm Perm
	Data []byte
	// Mod is the loaded module owning this segment, nil for stack and
	// anonymous mappings.
	Mod *Loaded
	// IsCode marks the code segment of a module.
	IsCode bool
	Name   string
}

// End returns the first address past the segment.
func (s *Segment) End() uint64 { return s.Base + uint64(len(s.Data)) }

// Contains reports whether addr lies inside the segment.
func (s *Segment) Contains(addr uint64) bool { return addr >= s.Base && addr < s.End() }

// Loaded is a module mapped at concrete base addresses.
type Loaded struct {
	Mod      *Module
	CodeBase uint64
	DataBase uint64
}

// CodeEnd returns the first address past the module's code segment.
func (l *Loaded) CodeEnd() uint64 { return l.CodeBase + uint64(len(l.Mod.Code)) }

// ContainsCode reports whether addr lies in the module's code segment.
func (l *Loaded) ContainsCode(addr uint64) bool {
	return addr >= l.CodeBase && addr < l.CodeEnd()
}

// SymbolAddr returns the absolute address of a symbol defined by this
// loaded module.
func (l *Loaded) SymbolAddr(name string) (uint64, bool) {
	s, ok := l.Mod.Symbol(name)
	if !ok {
		return 0, false
	}
	if s.Kind == SymFunc {
		return l.CodeBase + s.Off, true
	}
	return l.DataBase + s.Off, true
}

// FaultKind classifies memory faults raised by the address space.
type FaultKind uint8

// Fault kinds.
const (
	FaultUnmapped FaultKind = iota
	FaultPerm
	FaultMisaligned
)

// Fault is the error returned for an illegal memory access; the kernel
// model turns it into a fatal signal.
type Fault struct {
	Kind FaultKind
	Addr uint64
	Op   string
}

func (f *Fault) Error() string {
	kinds := [...]string{"unmapped address", "permission denied", "misaligned access"}
	return fmt.Sprintf("memory fault: %s at %#x (%s)", kinds[f.Kind], f.Addr, f.Op)
}

// AddressSpace is a process's flat memory map: module segments, stack and
// anonymous mappings, plus the loaded-module index used by decoders and
// the static analyzer.
type AddressSpace struct {
	segs []*Segment // sorted by Base
	// Mods holds the loaded modules: executable first, then libraries in
	// load order, then the VDSO (if any).
	Mods []*Loaded
	// Exec is the loaded executable (Mods[0]).
	Exec *Loaded
	// VDSO is the loaded VDSO module, nil if absent.
	VDSO *Loaded
	// InitialSP is the stack pointer at process start.
	InitialSP uint64
}

// LoadOption customizes Load.
type LoadOption func(*loadConfig)

type loadConfig struct {
	stackSize uint64
	noVDSO    bool
}

// WithStackSize overrides the default 1 MiB stack.
func WithStackSize(n uint64) LoadOption {
	return func(c *loadConfig) { c.stackSize = n }
}

// Load maps the executable, the transitive closure of its DT_NEEDED
// dependencies (resolved through libs), and the optional VDSO, then
// performs eager symbol binding: every GOT slot and data relocation is
// patched with the interposed symbol address.
func Load(exec *Module, libs map[string]*Module, vdso *Module, opts ...LoadOption) (*AddressSpace, error) {
	cfg := loadConfig{stackSize: StackSize}
	for _, o := range opts {
		o(&cfg)
	}
	if err := exec.Validate(); err != nil {
		return nil, err
	}

	// Resolve the dependency closure breadth-first from the executable,
	// preserving DT_NEEDED order. This order also defines the global
	// symbol search order (interposition).
	order := []*Module{exec}
	seen := map[string]bool{exec.Name: true}
	for i := 0; i < len(order); i++ {
		for _, dep := range order[i].Needed {
			if seen[dep] {
				continue
			}
			lib, ok := libs[dep]
			if !ok {
				return nil, fmt.Errorf("module %s: needed library %q not found", order[i].Name, dep)
			}
			if err := lib.Validate(); err != nil {
				return nil, err
			}
			seen[dep] = true
			order = append(order, lib)
		}
	}

	as := &AddressSpace{}
	place := func(m *Module, codeBase uint64) *Loaded {
		dataBase := align(codeBase+uint64(len(m.Code)), pageAlign)
		l := &Loaded{Mod: m, CodeBase: codeBase, DataBase: dataBase}
		code := make([]byte, len(m.Code))
		copy(code, m.Code)
		data := make([]byte, len(m.Data))
		copy(data, m.Data)
		as.segs = append(as.segs,
			&Segment{Base: codeBase, Perm: PermR | PermX, Data: code, Mod: l, IsCode: true, Name: m.Name + ".text"},
			&Segment{Base: dataBase, Perm: PermR | PermW, Data: data, Mod: l, Name: m.Name + ".data"})
		as.Mods = append(as.Mods, l)
		return l
	}

	as.Exec = place(exec, ExecBase)
	for i, m := range order[1:] {
		base := LibBase + uint64(i)*LibStride
		place(m, base)
	}
	if vdso != nil && !cfg.noVDSO {
		if err := vdso.Validate(); err != nil {
			return nil, err
		}
		as.VDSO = place(vdso, VDSOBase)
	}

	stackBase := StackTop - cfg.stackSize
	as.segs = append(as.segs, &Segment{
		Base: stackBase,
		Perm: PermR | PermW,
		Data: make([]byte, cfg.stackSize),
		Name: "[stack]",
	})
	as.InitialSP = StackTop

	sort.Slice(as.segs, func(i, j int) bool { return as.segs[i].Base < as.segs[j].Base })
	for i := 1; i < len(as.segs); i++ {
		if as.segs[i].Base < as.segs[i-1].End() {
			return nil, fmt.Errorf("module: overlapping segments %s and %s", as.segs[i-1].Name, as.segs[i].Name)
		}
	}

	if err := as.bind(); err != nil {
		return nil, err
	}
	return as, nil
}

// bind performs eager symbol resolution for every module's GOT and data
// relocations.
func (as *AddressSpace) bind() error {
	for _, l := range as.Mods {
		for _, p := range l.Mod.PLT {
			addr, err := as.resolve(p.Symbol)
			if err != nil {
				return fmt.Errorf("binding %s: %w", l.Mod.Name, err)
			}
			if err := as.pokeU64(l.DataBase+uint64(p.GOTSlot)*8, addr); err != nil {
				return err
			}
		}
		for _, r := range l.Mod.Relocs {
			var addr uint64
			// A relocation first tries the defining module itself (local
			// definitions win for plain address-taken references), then
			// the global order.
			if a, ok := l.SymbolAddr(r.Symbol); ok {
				addr = a
			} else {
				a, err := as.resolve(r.Symbol)
				if err != nil {
					return fmt.Errorf("relocating %s: %w", l.Mod.Name, err)
				}
				addr = a
			}
			if err := as.pokeU64(l.DataBase+r.Off, addr); err != nil {
				return err
			}
		}
	}
	return nil
}

// resolve performs the global symbol lookup: VDSO definitions take
// precedence (paper: VDSO functions take precedence over libraries), then
// the executable, then the libraries in breadth-first DT_NEEDED order.
func (as *AddressSpace) resolve(name string) (uint64, error) {
	if as.VDSO != nil {
		if s, ok := as.VDSO.Mod.Symbol(name); ok && s.Exported {
			return as.VDSO.CodeBase + s.Off, nil
		}
	}
	for _, l := range as.Mods {
		if l == as.VDSO {
			continue
		}
		if s, ok := l.Mod.Symbol(name); ok && s.Exported {
			if s.Kind == SymFunc {
				return l.CodeBase + s.Off, nil
			}
			return l.DataBase + s.Off, nil
		}
	}
	return 0, fmt.Errorf("module: unresolved symbol %q", name)
}

// ResolveSymbol performs the same interposed lookup used at load time.
func (as *AddressSpace) ResolveSymbol(name string) (uint64, bool) {
	addr, err := as.resolve(name)
	return addr, err == nil
}

// pokeU64 writes ignoring permissions (loader-only).
func (as *AddressSpace) pokeU64(addr, v uint64) error {
	seg := as.FindSegment(addr)
	if seg == nil || addr+8 > seg.End() {
		return &Fault{Kind: FaultUnmapped, Addr: addr, Op: "reloc"}
	}
	binary.LittleEndian.PutUint64(seg.Data[addr-seg.Base:], v)
	return nil
}

// FindSegment returns the segment containing addr, or nil.
func (as *AddressSpace) FindSegment(addr uint64) *Segment {
	lo, hi := 0, len(as.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if as.segs[mid].End() <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(as.segs) && as.segs[lo].Contains(addr) {
		return as.segs[lo]
	}
	return nil
}

// FindModule returns the loaded module whose code segment contains addr.
func (as *AddressSpace) FindModule(addr uint64) *Loaded {
	seg := as.FindSegment(addr)
	if seg == nil || !seg.IsCode {
		return nil
	}
	return seg.Mod
}

func (as *AddressSpace) access(addr uint64, n int, perm Perm, op string) ([]byte, error) {
	seg := as.FindSegment(addr)
	if seg == nil {
		return nil, &Fault{Kind: FaultUnmapped, Addr: addr, Op: op}
	}
	if seg.Perm&perm != perm {
		return nil, &Fault{Kind: FaultPerm, Addr: addr, Op: op}
	}
	if addr+uint64(n) > seg.End() {
		return nil, &Fault{Kind: FaultUnmapped, Addr: addr, Op: op}
	}
	return seg.Data[addr-seg.Base : addr-seg.Base+uint64(n)], nil
}

// ReadU64 loads a 64-bit little-endian word.
func (as *AddressSpace) ReadU64(addr uint64) (uint64, error) {
	b, err := as.access(addr, 8, PermR, "read64")
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// WriteU64 stores a 64-bit little-endian word.
func (as *AddressSpace) WriteU64(addr, v uint64) error {
	b, err := as.access(addr, 8, PermW, "write64")
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(b, v)
	return nil
}

// ReadU8 loads one byte.
func (as *AddressSpace) ReadU8(addr uint64) (byte, error) {
	b, err := as.access(addr, 1, PermR, "read8")
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// WriteU8 stores one byte.
func (as *AddressSpace) WriteU8(addr uint64, v byte) error {
	b, err := as.access(addr, 1, PermW, "write8")
	if err != nil {
		return err
	}
	b[0] = v
	return nil
}

// ReadBytes copies n bytes starting at addr.
func (as *AddressSpace) ReadBytes(addr uint64, n int) ([]byte, error) {
	b, err := as.access(addr, n, PermR, "read")
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b)
	return out, nil
}

// WriteBytes stores p at addr.
func (as *AddressSpace) WriteBytes(addr uint64, p []byte) error {
	b, err := as.access(addr, len(p), PermW, "write")
	if err != nil {
		return err
	}
	copy(b, p)
	return nil
}

// FetchInstr reads the 8 instruction bytes at pc, requiring execute
// permission (DEP/NX: data and stack are never executable).
func (as *AddressSpace) FetchInstr(pc uint64) ([]byte, error) {
	return as.access(pc, 8, PermX, "fetch")
}

// Mmap maps an anonymous region (used by the mmap syscall model). It
// returns the chosen base address.
func (as *AddressSpace) Mmap(size uint64, perm Perm) (uint64, error) {
	if size == 0 {
		return 0, fmt.Errorf("module: zero-length mmap")
	}
	size = align(size, pageAlign)
	// First-fit above the last library, below the VDSO.
	base := uint64(0x4000_0000)
	for {
		conflict := false
		for _, s := range as.segs {
			if base < s.End() && s.Base < base+size {
				conflict = true
				if s.End() > base {
					base = align(s.End(), pageAlign)
				}
				break
			}
		}
		if !conflict {
			break
		}
		if base+size > VDSOBase {
			return 0, fmt.Errorf("module: out of address space")
		}
	}
	seg := &Segment{Base: base, Perm: perm, Data: make([]byte, size), Name: "[anon]"}
	as.segs = append(as.segs, seg)
	sort.Slice(as.segs, func(i, j int) bool { return as.segs[i].Base < as.segs[j].Base })
	return base, nil
}

// Mprotect changes the permissions of the segment containing addr. It
// refuses to make a code segment writable or a data segment executable
// unless force is set; the threat model keeps W^X intact, and the syscall
// itself is a guarded endpoint.
func (as *AddressSpace) Mprotect(addr uint64, perm Perm) error {
	seg := as.FindSegment(addr)
	if seg == nil {
		return &Fault{Kind: FaultUnmapped, Addr: addr, Op: "mprotect"}
	}
	seg.Perm = perm
	return nil
}

// Segments returns the mapped segments in address order.
func (as *AddressSpace) Segments() []*Segment { return as.segs }

// Clone returns a fork-style copy of the address space: every segment's
// bytes are duplicated (memory is private to the child — the simulation
// has no COW, so copying eagerly is the honest model), while the
// loaded-module index (Mods/Exec/VDSO) is shared. That index is
// immutable mapping metadata identical in parent and child, and sharing
// it is what lets a forked child keep using the parent's per-binary CFG
// artifacts without any re-analysis.
func (as *AddressSpace) Clone() *AddressSpace {
	out := &AddressSpace{
		Mods:      as.Mods,
		Exec:      as.Exec,
		VDSO:      as.VDSO,
		InitialSP: as.InitialSP,
	}
	out.segs = make([]*Segment, len(as.segs))
	for i, s := range as.segs {
		ns := *s
		ns.Data = append([]byte(nil), s.Data...)
		out.segs[i] = &ns
	}
	return out
}

// SymbolFor returns "module!symbol+off" for a code address, for
// diagnostics.
func (as *AddressSpace) SymbolFor(addr uint64) string {
	l := as.FindModule(addr)
	if l == nil {
		return fmt.Sprintf("%#x", addr)
	}
	off := addr - l.CodeBase
	if s, ok := l.Mod.FuncAt(off); ok {
		if off == s.Off {
			return fmt.Sprintf("%s!%s", l.Mod.Name, s.Name)
		}
		return fmt.Sprintf("%s!%s+%#x", l.Mod.Name, s.Name, off-s.Off)
	}
	for _, p := range l.Mod.PLT {
		const stubSize = 3 * 8
		if off >= p.Off && off < p.Off+stubSize {
			if off == p.Off {
				return fmt.Sprintf("%s!%s@plt", l.Mod.Name, p.Symbol)
			}
			return fmt.Sprintf("%s!%s@plt+%#x", l.Mod.Name, p.Symbol, off-p.Off)
		}
	}
	return fmt.Sprintf("%s+%#x", l.Mod.Name, off)
}

func align(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }
