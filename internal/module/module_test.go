package module

import (
	"strings"
	"testing"
	"testing/quick"

	"flowguard/internal/isa"
)

// retModule builds a minimal valid module by hand: one RET-only function
// named fn, optionally exported.
func retModule(name, fn string, exported bool) *Module {
	code := (isa.Instr{Op: isa.RET}).EncodeTo(nil)
	return &Module{
		Name: name,
		Code: code,
		Symbols: []Symbol{
			{Name: fn, Kind: SymFunc, Off: 0, Size: uint64(len(code)), Exported: exported},
		},
	}
}

func TestLoadLayout(t *testing.T) {
	exec := retModule("app", "main", true)
	exec.Needed = []string{"libc", "libz"}
	libc := retModule("libc", "memcpy", true)
	libz := retModule("libz", "inflate", true)
	vdso := retModule("vdso", "gettimeofday", true)

	as, err := Load(exec, map[string]*Module{"libc": libc, "libz": libz}, vdso)
	if err != nil {
		t.Fatal(err)
	}
	if as.Exec.CodeBase != ExecBase {
		t.Errorf("exec base = %#x, want %#x", as.Exec.CodeBase, ExecBase)
	}
	if len(as.Mods) != 4 {
		t.Fatalf("loaded %d modules, want 4", len(as.Mods))
	}
	if as.Mods[1].CodeBase != LibBase || as.Mods[2].CodeBase != LibBase+LibStride {
		t.Errorf("library bases = %#x, %#x", as.Mods[1].CodeBase, as.Mods[2].CodeBase)
	}
	if as.VDSO == nil || as.VDSO.CodeBase != VDSOBase {
		t.Fatal("VDSO not loaded at VDSOBase")
	}
	if as.InitialSP != StackTop {
		t.Errorf("initial SP = %#x, want %#x", as.InitialSP, StackTop)
	}
}

func TestLoadMissingDependency(t *testing.T) {
	exec := retModule("app", "main", true)
	exec.Needed = []string{"libghost"}
	if _, err := Load(exec, nil, nil); err == nil {
		t.Fatal("Load accepted missing DT_NEEDED library")
	}
}

func TestSymbolInterposition(t *testing.T) {
	// Both libraries define "open"; the one earlier in BFS DT_NEEDED
	// order must win (global symbol interpose, §4.1).
	exec := retModule("app", "main", true)
	exec.Needed = []string{"liba", "libb"}
	exec.GOTSlots = 1
	exec.Data = make([]byte, 8)
	exec.PLT = []PLTEntry{{Symbol: "open", Off: 0, GOTSlot: 0}}
	liba := retModule("liba", "open", true)
	libb := retModule("libb", "open", true)

	as, err := Load(exec, map[string]*Module{"liba": liba, "libb": libb}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := as.ReadU64(as.Exec.DataBase)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := as.Mods[1].SymbolAddr("open") // liba
	if got != want {
		t.Errorf("GOT[open] = %#x, want liba's %#x", got, want)
	}
}

func TestVDSOPrecedence(t *testing.T) {
	// gettimeofday exists in libc and the VDSO: the VDSO definition must
	// take precedence (paper §4.1).
	exec := retModule("app", "main", true)
	exec.Needed = []string{"libc"}
	exec.GOTSlots = 1
	exec.Data = make([]byte, 8)
	exec.PLT = []PLTEntry{{Symbol: "gettimeofday", Off: 0, GOTSlot: 0}}
	libc := retModule("libc", "gettimeofday", true)
	vdso := retModule("vdso", "gettimeofday", true)

	as, err := Load(exec, map[string]*Module{"libc": libc}, vdso)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := as.ReadU64(as.Exec.DataBase)
	want, _ := as.VDSO.SymbolAddr("gettimeofday")
	if got != want {
		t.Errorf("GOT[gettimeofday] = %#x, want VDSO's %#x", got, want)
	}
}

func TestUnresolvedSymbol(t *testing.T) {
	exec := retModule("app", "main", true)
	exec.GOTSlots = 1
	exec.Data = make([]byte, 8)
	exec.PLT = []PLTEntry{{Symbol: "ghost", Off: 0, GOTSlot: 0}}
	_, err := Load(exec, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "unresolved") {
		t.Fatalf("Load = %v, want unresolved symbol error", err)
	}
}

func TestPermissions(t *testing.T) {
	exec := retModule("app", "main", true)
	exec.Data = make([]byte, 16)
	as, err := Load(exec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Code is readable and executable but not writable.
	if _, err := as.FetchInstr(ExecBase); err != nil {
		t.Errorf("FetchInstr(code): %v", err)
	}
	if err := as.WriteU64(ExecBase, 0); err == nil {
		t.Error("code segment was writable")
	}

	// Data is read/write but not executable (DEP).
	if err := as.WriteU64(as.Exec.DataBase, 42); err != nil {
		t.Errorf("WriteU64(data): %v", err)
	}
	if _, err := as.FetchInstr(as.Exec.DataBase); err == nil {
		t.Error("data segment was executable (DEP violated)")
	}

	// Stack is read/write but not executable (NX).
	sp := as.InitialSP - 8
	if err := as.WriteU64(sp, 1); err != nil {
		t.Errorf("WriteU64(stack): %v", err)
	}
	if _, err := as.FetchInstr(sp); err == nil {
		t.Error("stack was executable (NX violated)")
	}

	// Unmapped access faults with a typed *Fault error.
	_, err = as.ReadU64(0x10)
	if err == nil {
		t.Fatal("read of unmapped page succeeded")
	}
	f, ok := err.(*Fault)
	if !ok || f.Kind != FaultUnmapped {
		t.Errorf("unmapped read error = %v, want *Fault{FaultUnmapped}", err)
	}
}

func TestFindModuleAndSymbolFor(t *testing.T) {
	exec := retModule("app", "main", true)
	libc := retModule("libc", "memcpy", true)
	exec.Needed = []string{"libc"}
	as, err := Load(exec, map[string]*Module{"libc": libc}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m := as.FindModule(ExecBase); m == nil || m.Mod.Name != "app" {
		t.Errorf("FindModule(ExecBase) = %v", m)
	}
	if m := as.FindModule(LibBase); m == nil || m.Mod.Name != "libc" {
		t.Errorf("FindModule(LibBase) = %v", m)
	}
	if m := as.FindModule(as.InitialSP - 8); m != nil {
		t.Errorf("FindModule(stack) = %v, want nil", m)
	}
	if s := as.SymbolFor(LibBase); s != "libc!memcpy" {
		t.Errorf("SymbolFor = %q, want libc!memcpy", s)
	}
}

func TestMmapAndMprotect(t *testing.T) {
	exec := retModule("app", "main", true)
	as, err := Load(exec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := as.Mmap(100, PermR|PermW)
	if err != nil {
		t.Fatal(err)
	}
	if base%0x1000 != 0 {
		t.Errorf("mmap base %#x not page-aligned", base)
	}
	if err := as.WriteU64(base, 7); err != nil {
		t.Errorf("write to mmapped region: %v", err)
	}
	// Two mappings must not overlap.
	b2, err := as.Mmap(0x2000, PermR)
	if err != nil {
		t.Fatal(err)
	}
	if b2 >= base && b2 < base+0x1000 {
		t.Errorf("second mmap %#x overlaps first %#x", b2, base)
	}
	if err := as.Mprotect(base, PermR); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteU64(base, 7); err == nil {
		t.Error("write succeeded after mprotect(PROT_READ)")
	}
	if _, err := as.Mmap(0, PermR); err == nil {
		t.Error("zero-length mmap succeeded")
	}
}

func TestValidateCatchesCorruptModules(t *testing.T) {
	cases := []func(*Module){
		func(m *Module) { m.Name = "" },
		func(m *Module) { m.Code = append(m.Code, 0) },
		func(m *Module) { m.GOTSlots = 10 },
		func(m *Module) { m.Symbols[0].Off = 1 << 20 },
		func(m *Module) { m.PLT = []PLTEntry{{Symbol: "x", Off: 1 << 20}} },
		func(m *Module) {
			m.GOTSlots = 0
			m.PLT = []PLTEntry{{Symbol: "x", Off: 0, GOTSlot: 0}}
		},
		func(m *Module) { m.Relocs = []Reloc{{Off: 1 << 20, Symbol: "x"}} },
		func(m *Module) { m.Entry = 1 << 20 },
	}
	for i, corrupt := range cases {
		m := retModule("app", "main", true)
		m.Data = make([]byte, 8)
		corrupt(m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted corrupt module", i)
		}
	}
}

func TestFuncAt(t *testing.T) {
	code := (isa.Instr{Op: isa.RET}).EncodeTo(nil)
	code = (isa.Instr{Op: isa.NOP}).EncodeTo(code)
	code = (isa.Instr{Op: isa.RET}).EncodeTo(code)
	m := &Module{
		Name: "m",
		Code: code,
		Symbols: []Symbol{
			{Name: "a", Kind: SymFunc, Off: 0, Size: 8},
			{Name: "b", Kind: SymFunc, Off: 8, Size: 16},
		},
	}
	if s, ok := m.FuncAt(0); !ok || s.Name != "a" {
		t.Errorf("FuncAt(0) = %v, %v", s, ok)
	}
	if s, ok := m.FuncAt(16); !ok || s.Name != "b" {
		t.Errorf("FuncAt(16) = %v, %v", s, ok)
	}
}

// Property: FindSegment agrees with a linear scan for arbitrary
// addresses.
func TestQuickFindSegment(t *testing.T) {
	exec := retModule("app", "main", true)
	exec.Needed = []string{"libc"}
	libc := retModule("libc", "memcpy", true)
	as, err := Load(exec, map[string]*Module{"libc": libc}, retModule("vdso", "gettimeofday", true))
	if err != nil {
		t.Fatal(err)
	}
	segs := as.Segments()
	linear := func(addr uint64) *Segment {
		for _, s := range segs {
			if s.Contains(addr) {
				return s
			}
		}
		return nil
	}
	f := func(addr uint64) bool {
		addr %= StackTop + 0x1000
		return as.FindSegment(addr) == linear(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// And the exact boundaries (zero-length segments contain nothing).
	for _, s := range segs {
		if len(s.Data) > 0 && as.FindSegment(s.Base) != s {
			t.Errorf("FindSegment(base of %s) missed", s.Name)
		}
		if got := as.FindSegment(s.End()); got == s {
			t.Errorf("FindSegment(end of %s) claimed the segment", s.Name)
		}
	}
}
