package perfstat

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzBenchArtifactRoundTrip: any byte stream DecodeArtifact accepts
// must Encode back and re-Decode to the identical artifact, and both
// directions must be panic-free on arbitrary input. Part of `make
// fuzz-smoke`; the seed corpus covers the schema's corners (every
// optional section, degenerate sample sets, rejected schemas).
func FuzzBenchArtifactRoundTrip(f *testing.F) {
	seed := func(a *Artifact) {
		f.Helper()
		var buf bytes.Buffer
		if err := a.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(sampleArtifact())
	seed(&Artifact{Schema: SchemaVersion, Tool: "fgbench", CreatedAt: "2026-08-06T00:00:00Z"})
	seed(&Artifact{
		Schema: SchemaVersion, Tool: "fgperf", CreatedAt: "t",
		Benchmarks: []Benchmark{{Name: "B", Samples: map[string][]float64{"ns/op": {0}}}},
	})
	seed(&Artifact{
		Schema: SchemaVersion, Tool: "fgperf", CreatedAt: "t",
		Phases:     []PhaseBreakdown{{App: "nginx", TotalPct: -1.5}},
		FleetStats: map[string]uint64{"Checks": 1<<63 + 1},
	})
	// Rejected inputs: wrong schema, malformed JSON, non-finite floats,
	// empty units. These must decode to an error, not a panic.
	f.Add([]byte(`{"schema": 0}`))
	f.Add([]byte(`{"schema": 1, "benchmarks": [{"name": "", "samples": {}}]}`))
	f.Add([]byte(`{"schema": 1, "benchmarks": [{"name": "B", "samples": {"": [1]}}]}`))
	f.Add([]byte(`{"schema": 1, "benchmarks": [{"name": "B", "samples": {"ns/op": []}}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeArtifact(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		var buf bytes.Buffer
		if err := a.Encode(&buf); err != nil {
			t.Fatalf("decoded artifact failed to re-encode: %v", err)
		}
		b, err := DecodeArtifact(&buf)
		if err != nil {
			t.Fatalf("re-encoded artifact failed to decode: %v", err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("round trip not stable:\n  first:  %+v\n  second: %+v", a, b)
		}
	})
}
