package perfstat

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("Summarize bounds: %+v", s)
	}
	if s.Mean != 2.5 || s.Median != 2.5 {
		t.Fatalf("Summarize center: %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev, want)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero", z)
	}
	if one := Summarize([]float64{7}); one.StdDev != 0 || one.Median != 7 {
		t.Fatalf("Summarize single: %+v", one)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// The input must not be reordered.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("Median mutated its input: %v", in)
	}
}

// TestMannWhitneyU pins the statistic and p-value against hand-computed
// fixtures (normal approximation, tie and continuity corrections — the
// formulas documented on the function).
func TestMannWhitneyU(t *testing.T) {
	cases := []struct {
		name  string
		x, y  []float64
		wantU float64
		wantP float64
	}{
		{
			// Fully separated: ranks 1,2,3 vs 4,5,6. R1=6, U=0.
			// z = (4.5-0.5)/sqrt(9*7/12) = 1.7457, p = 0.0809.
			name: "separated_n3", x: []float64{1, 2, 3}, y: []float64{4, 5, 6},
			wantU: 0, wantP: 0.0809,
		},
		{
			// Ties across groups: pooled 1,2,2,2,3,4; the three 2s share
			// midrank 3. R1 = 1+3+3 = 7, U = 1.
			// variance = 9/12*(7 - 24/30) = 4.65, z = 3/2.15639 = 1.39121,
			// p = 0.1642.
			name: "ties", x: []float64{1, 2, 2}, y: []float64{2, 3, 4},
			wantU: 1, wantP: 0.1642,
		},
		{
			// Identical constant samples: zero variance → p = 1 by
			// definition (no evidence of a shift).
			name: "all_tied", x: []float64{5, 5, 5}, y: []float64{5, 5, 5},
			wantU: 4.5, wantP: 1,
		},
		{
			// Identical distributions: U = n1*n2/2 exactly, and the
			// continuity correction clamps z to 0 → p = 1.
			name: "identical_distributions", x: []float64{1, 2, 3, 4}, y: []float64{1, 2, 3, 4},
			wantU: 8, wantP: 1,
		},
		{
			// n = 1 per side: the test cannot reach significance.
			// U = 0, mu = 0.5, sigma = 0.5, z = 0 after continuity.
			name: "degenerate_n1", x: []float64{1}, y: []float64{2},
			wantU: 0, wantP: 1,
		},
		{
			// Large fully-separated groups are decisively significant:
			// z = 31.5/sqrt(64*17/12) = 3.3082, p = 0.00094.
			name:  "separated_n8",
			x:     []float64{1, 2, 3, 4, 5, 6, 7, 8},
			y:     []float64{11, 12, 13, 14, 15, 16, 17, 18},
			wantU: 0, wantP: 0.00094,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			u, p := MannWhitneyU(c.x, c.y)
			if u != c.wantU {
				t.Errorf("U = %v, want %v", u, c.wantU)
			}
			if math.Abs(p-c.wantP) > 2e-3 {
				t.Errorf("p = %v, want %v", p, c.wantP)
			}
		})
	}
}

func TestMannWhitneyUEmpty(t *testing.T) {
	if _, p := MannWhitneyU(nil, []float64{1, 2}); p != 1 {
		t.Fatalf("empty x: p = %v, want 1", p)
	}
	if _, p := MannWhitneyU([]float64{1, 2}, nil); p != 1 {
		t.Fatalf("empty y: p = %v, want 1", p)
	}
}

// TestMannWhitneyUSymmetry: swapping the sides must flip U around
// n1*n2/2 and keep p identical.
func TestMannWhitneyUSymmetry(t *testing.T) {
	x := []float64{1, 5, 7, 9}
	y := []float64{2, 3, 8, 11, 12}
	u1, p1 := MannWhitneyU(x, y)
	u2, p2 := MannWhitneyU(y, x)
	if u1+u2 != float64(len(x)*len(y)) {
		t.Fatalf("U1 + U2 = %v + %v, want %d", u1, u2, len(x)*len(y))
	}
	if p1 != p2 {
		t.Fatalf("p not symmetric: %v vs %v", p1, p2)
	}
}

func TestBootstrapCI(t *testing.T) {
	t.Run("degenerate", func(t *testing.T) {
		if lo, hi := BootstrapCI(nil, 0.95, 100, 1); lo != 0 || hi != 0 {
			t.Fatalf("empty: (%v, %v)", lo, hi)
		}
		if lo, hi := BootstrapCI([]float64{42}, 0.95, 100, 1); lo != 42 || hi != 42 {
			t.Fatalf("n=1: (%v, %v), want collapsed at 42", lo, hi)
		}
		if lo, hi := BootstrapCI([]float64{3, 3, 3, 3}, 0.95, 200, 1); lo != 3 || hi != 3 {
			t.Fatalf("constant: (%v, %v), want collapsed at 3", lo, hi)
		}
	})
	t.Run("bounds_and_coverage", func(t *testing.T) {
		samples := []float64{10, 11, 12, 13, 14, 15, 16}
		lo, hi := BootstrapCI(samples, 0.95, 2000, 7)
		if lo > hi {
			t.Fatalf("inverted interval (%v, %v)", lo, hi)
		}
		if lo < 10 || hi > 16 {
			t.Fatalf("interval (%v, %v) escapes sample range", lo, hi)
		}
		med := Median(samples)
		if lo > med || hi < med {
			t.Fatalf("interval (%v, %v) excludes the sample median %v", lo, hi, med)
		}
	})
	t.Run("deterministic", func(t *testing.T) {
		samples := []float64{3, 1, 4, 1, 5, 9, 2, 6}
		lo1, hi1 := BootstrapCI(samples, 0.95, 500, 99)
		lo2, hi2 := BootstrapCI(samples, 0.95, 500, 99)
		if lo1 != lo2 || hi1 != hi2 {
			t.Fatalf("same seed, different interval: (%v,%v) vs (%v,%v)", lo1, hi1, lo2, hi2)
		}
	})
}
