package perfstat

import (
	"reflect"
	"strings"
	"testing"
)

func TestNormalizeBenchName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFastPath-8":             "BenchmarkFastPath",
		"BenchmarkFastPath":               "BenchmarkFastPath",
		"BenchmarkCheckParallel/serial-8": "BenchmarkCheckParallel/serial",
		"BenchmarkX/sub-case":             "BenchmarkX/sub-case", // non-numeric suffix stays
		"BenchmarkX/n-16-4":               "BenchmarkX/n-16",     // only the last -N strips
	}
	for in, want := range cases {
		if got := NormalizeBenchName(in); got != want {
			t.Errorf("NormalizeBenchName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchLine(t *testing.T) {
	name, vals, ok := ParseBenchLine("BenchmarkFastPath-8   \t 1234\t  987.5 ns/op\t 16 B/op\t  0 allocs/op")
	if !ok || name != "BenchmarkFastPath" {
		t.Fatalf("parse: ok=%v name=%q", ok, name)
	}
	want := map[string]float64{"ns/op": 987.5, "B/op": 16, "allocs/op": 0}
	if !reflect.DeepEqual(vals, want) {
		t.Fatalf("values = %v, want %v", vals, want)
	}

	for _, bad := range []string{
		"PASS",
		"ok  \tflowguard\t1.234s",
		"goos: linux",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"--- BENCH: BenchmarkFastPath-8",
		"BenchmarkNoValues-8 100",
	} {
		if _, _, ok := ParseBenchLine(bad); ok {
			t.Errorf("ParseBenchLine(%q) accepted a non-result line", bad)
		}
	}
}

func TestCollectorInterleaved(t *testing.T) {
	c := NewCollector()
	// Two interleaved iterations of the same two-benchmark suite.
	iter1 := `goos: linux
BenchmarkFastPath-8    100    1000 ns/op    0 allocs/op
BenchmarkSlowPath-8    10     60000 ns/op
PASS`
	iter2 := `BenchmarkFastPath-8    100    1010 ns/op    0 allocs/op
BenchmarkSlowPath-8    10     59000 ns/op`
	if err := c.Add(strings.NewReader(iter1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(strings.NewReader(iter2)); err != nil {
		t.Fatal(err)
	}
	got := c.Benchmarks()
	if len(got) != 2 || got[0].Name != "BenchmarkFastPath" || got[1].Name != "BenchmarkSlowPath" {
		t.Fatalf("benchmarks = %+v", got)
	}
	if !reflect.DeepEqual(got[0].Samples["ns/op"], []float64{1000, 1010}) {
		t.Fatalf("FastPath ns/op samples = %v", got[0].Samples["ns/op"])
	}
	if !reflect.DeepEqual(got[0].Samples["allocs/op"], []float64{0, 0}) {
		t.Fatalf("FastPath allocs/op samples = %v", got[0].Samples["allocs/op"])
	}
	if !reflect.DeepEqual(got[1].Samples["ns/op"], []float64{60000, 59000}) {
		t.Fatalf("SlowPath samples = %v", got[1].Samples["ns/op"])
	}
}

func TestMarkTier1(t *testing.T) {
	benches := []Benchmark{
		{Name: "BenchmarkFastPath"},
		{Name: "BenchmarkIncrementalWindow/incremental"},
		{Name: "BenchmarkSlowPath"},
		{Name: "BenchmarkFastPathological"}, // prefix but not a sub-benchmark: must NOT match
	}
	n := MarkTier1(benches, Tier1Names())
	if n != 2 {
		t.Fatalf("marked %d, want 2", n)
	}
	if !benches[0].Tier1 || !benches[1].Tier1 || benches[2].Tier1 || benches[3].Tier1 {
		t.Fatalf("tier-1 flags: %+v", benches)
	}
}

func TestMissingTier1(t *testing.T) {
	if m := MissingTier1(nil, []string{"BenchmarkA"}); !reflect.DeepEqual(m, []string{"BenchmarkA"}) {
		t.Fatalf("empty run: missing = %v", m)
	}
	benches := []Benchmark{
		{Name: "BenchmarkA"},
		{Name: "BenchmarkB/sub"},
		{Name: "BenchmarkCache"}, // prefix of BenchmarkC but not a sub-benchmark
	}
	got := MissingTier1(benches, []string{"BenchmarkA", "BenchmarkB", "BenchmarkC"})
	if !reflect.DeepEqual(got, []string{"BenchmarkC"}) {
		t.Fatalf("missing = %v, want [BenchmarkC]", got)
	}
	// Every current tier-1 name present: nothing missing.
	var all []Benchmark
	for _, n := range Tier1Names() {
		all = append(all, Benchmark{Name: n})
	}
	if m := MissingTier1(all, Tier1Names()); m != nil {
		t.Fatalf("complete run reported missing: %v", m)
	}
}
