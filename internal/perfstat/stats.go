// Package perfstat is the statistics and artifact layer behind cmd/fgperf
// and fgbench -json: summary statistics over repeated benchmark samples,
// a percentile-bootstrap confidence interval for the median, a
// Mann–Whitney U significance test for baseline comparisons, and a
// schema-versioned JSON artifact (BENCH_<date>.json) that records the
// repo's performance trajectory.
//
// The paper's whole claim is quantitative (~3% tracing overhead, ~60x
// fast/slow asymmetry, ~4.4% server geomean), so "did this PR slow the
// fast path down?" must be answered with a significance test over
// repeated interleaved runs, not by eyeballing two numbers. Everything
// here is stdlib-only and deterministic: the bootstrap is seeded, so a
// given artifact pair always produces the same verdict.
package perfstat

import (
	"math"
	"math/rand"
	"sort"
)

// Summary holds the descriptive statistics of one benchmark's samples.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	// StdDev is the sample standard deviation (n-1 denominator); 0 for
	// n < 2.
	StdDev float64 `json:"stddev"`
}

// Summarize computes the descriptive statistics of samples. An empty
// slice yields the zero Summary.
func Summarize(samples []float64) Summary {
	n := len(samples)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: samples[0], Max: samples[0]}
	sum := 0.0
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(n)
	if n > 1 {
		ss := 0.0
		for _, v := range samples {
			d := v - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(n-1))
	}
	s.Median = Median(samples)
	return s
}

// Median returns the sample median (mean of the two central order
// statistics for even n), or 0 for an empty slice. The input is not
// modified.
func Median(samples []float64) float64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// BootstrapCI returns a percentile-bootstrap confidence interval for the
// median of samples at the given confidence level (e.g. 0.95). The
// resampling is driven by a seeded generator so artifacts and gate
// verdicts are reproducible. Degenerate inputs collapse the interval:
// n == 0 yields (0, 0) and n == 1 yields (x, x).
func BootstrapCI(samples []float64, confidence float64, resamples int, seed int64) (lo, hi float64) {
	n := len(samples)
	if n == 0 {
		return 0, 0
	}
	if n == 1 {
		return samples[0], samples[0]
	}
	if resamples < 1 {
		resamples = 1000
	}
	rng := rand.New(rand.NewSource(seed))
	medians := make([]float64, resamples)
	resample := make([]float64, n)
	for i := range medians {
		for j := range resample {
			resample[j] = samples[rng.Intn(n)]
		}
		sort.Float64s(resample)
		if n%2 == 1 {
			medians[i] = resample[n/2]
		} else {
			medians[i] = (resample[n/2-1] + resample[n/2]) / 2
		}
	}
	sort.Float64s(medians)
	alpha := (1 - confidence) / 2
	loIdx := int(alpha * float64(resamples))
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	if loIdx > hiIdx {
		loIdx = hiIdx
	}
	return medians[loIdx], medians[hiIdx]
}

// MannWhitneyU runs the two-sided Mann–Whitney U rank-sum test on two
// independent sample sets and returns the U statistic (for x) plus the
// two-sided p-value from the normal approximation with tie correction
// and continuity correction. Benchmark sample counts are small (3–20),
// where the normal approximation is the standard benchstat-style
// compromise; the continuity correction keeps it conservative.
//
// Degenerate inputs are defined, not errors: an empty side or a
// zero-variance pooled ranking (every observation tied) reports p = 1 —
// "no evidence of a shift" — which is exactly what the regression gate
// should conclude from them.
func MannWhitneyU(x, y []float64) (u, p float64) {
	n1, n2 := len(x), len(y)
	if n1 == 0 || n2 == 0 {
		return 0, 1
	}
	type obs struct {
		v     float64
		fromX bool
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range x {
		all = append(all, obs{v, true})
	}
	for _, v := range y {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks, accumulating the tie-group correction term Σ(t³−t).
	n := n1 + n2
	rankSumX := 0.0
	tieTerm := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		t := j - i
		rank := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			if all[k].fromX {
				rankSumX += rank
			}
		}
		if t > 1 {
			tieTerm += float64(t*t*t - t)
		}
		i = j
	}

	u = rankSumX - float64(n1*(n1+1))/2
	mu := float64(n1*n2) / 2
	variance := float64(n1*n2) / 12 * (float64(n+1) - tieTerm/float64(n*(n-1)))
	if variance <= 0 {
		return u, 1
	}
	z := (math.Abs(u-mu) - 0.5) / math.Sqrt(variance)
	if z < 0 {
		z = 0
	}
	p = math.Erfc(z / math.Sqrt2)
	if p > 1 {
		p = 1
	}
	return u, p
}
