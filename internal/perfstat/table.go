package perfstat

import (
	"fmt"
	"strings"
)

// formatValue renders a sample value compactly with an SI-style suffix,
// benchstat-fashion: 1234567 → "1.23M", 987.5 → "988".
func formatValue(v float64) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	case abs >= 1 || abs == 0:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

// spread renders the CI half-width as a ±percentage of the median,
// "±3%"; a collapsed interval renders "±0%".
func spread(median, lo, hi float64) string {
	if median == 0 {
		return "±0%"
	}
	half := (hi - lo) / 2
	pct := half / median * 100
	if pct < 0 {
		pct = -pct
	}
	return fmt.Sprintf("±%.0f%%", pct)
}

// FormatArtifact renders one artifact as an aligned summary table: per
// benchmark and unit, the sample count, median with bootstrap-CI
// spread, and min..max range.
func FormatArtifact(a *Artifact) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %-12s %3s  %-12s %s\n", "benchmark", "unit", "n", "median", "range")
	for i := range a.Benchmarks {
		bench := &a.Benchmarks[i]
		name := bench.Name
		if bench.Tier1 {
			name += " *"
		}
		for _, unit := range bench.Units() {
			samples := bench.Samples[unit]
			s := Summarize(samples)
			lo, hi := BootstrapCI(samples, 0.95, 1000, 1)
			fmt.Fprintf(&b, "%-44s %-12s %3d  %-12s %s..%s\n",
				name, unit, s.N,
				formatValue(s.Median)+" "+spread(s.Median, lo, hi),
				formatValue(s.Min), formatValue(s.Max))
			name = "" // only label the first unit row
		}
	}
	b.WriteString("(* = tier-1 hot-path benchmark, gated in CI)\n")
	return b.String()
}

// FormatComparison renders baseline-vs-current verdicts benchstat-style.
// The delta column stays "~" unless the shift is statistically
// significant at the gate's alpha.
func FormatComparison(comps []Comparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %-16s %-16s %-10s %-8s %s\n", "benchmark", "old", "new", "delta", "p", "verdict")
	for _, c := range comps {
		name := c.Name
		if c.Tier1 {
			name += " *"
		}
		if c.MissingInCurrent {
			fmt.Fprintf(&b, "%-44s %-16s %-16s %-10s %-8s %s\n",
				name, formatValue(c.Old.Median)+" "+spread(c.Old.Median, c.OldLo, c.OldHi),
				"(missing)", "", "", missingVerdict(c))
			continue
		}
		delta := "~"
		if c.Significant {
			delta = fmt.Sprintf("%+.1f%%", c.DeltaPct)
		}
		fmt.Fprintf(&b, "%-44s %-16s %-16s %-10s %-8.3f %s\n",
			name,
			formatValue(c.Old.Median)+" "+spread(c.Old.Median, c.OldLo, c.OldHi),
			formatValue(c.New.Median)+" "+spread(c.New.Median, c.NewLo, c.NewHi),
			delta, c.P, verdict(c))
	}
	b.WriteString("(* = tier-1, gated; delta shown only when significant)\n")
	return b.String()
}

func verdict(c Comparison) string {
	switch {
	case c.Regression && c.Tier1:
		return "REGRESSION (gated)"
	case c.Regression:
		return "regression"
	case c.Improvement:
		return "improvement"
	case c.Significant:
		return "shifted"
	default:
		return "ok"
	}
}

func missingVerdict(c Comparison) string {
	if c.Tier1 {
		return "MISSING (gated)"
	}
	return "missing"
}
