package perfstat

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// golden compares got against testdata/<name>, rewriting it under
// -update. Golden files pin the exact rendered shape so reporter drift
// is an explicit diff in review, never a silent reshape.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/perfstat -run %s -update` to create it)", err, t.Name())
	}
	if got != string(want) {
		t.Fatalf("output drifted from %s (re-run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestFormatArtifactGolden(t *testing.T) {
	golden(t, "artifact_table.golden", FormatArtifact(sampleArtifact()))
}

func TestFormatComparisonGolden(t *testing.T) {
	base := &Artifact{
		Schema: SchemaVersion, Tool: "test", CreatedAt: "x",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkFastPath", Tier1: true, Samples: map[string][]float64{
				"ns/op": {100, 101, 99, 100, 102, 98, 100, 101}}},
			{Name: "BenchmarkSlowPath", Samples: map[string][]float64{
				"ns/op": {60000, 61000, 59000, 60500, 59500, 60200, 59800, 60100}}},
			{Name: "BenchmarkRemoved", Tier1: true, Samples: map[string][]float64{
				"ns/op": {10, 11, 9}}},
		},
	}
	cur := &Artifact{
		Schema: SchemaVersion, Tool: "test", CreatedAt: "x",
		Benchmarks: []Benchmark{
			// Gated 2x regression.
			{Name: "BenchmarkFastPath", Tier1: true, Samples: map[string][]float64{
				"ns/op": {200, 202, 198, 201, 199, 200, 203, 197}}},
			// Clean 2x improvement, ungated.
			{Name: "BenchmarkSlowPath", Samples: map[string][]float64{
				"ns/op": {30000, 30500, 29500, 30250, 29750, 30100, 29900, 30050}}},
		},
	}
	golden(t, "comparison_table.golden", FormatComparison(Compare(base, cur, GateConfig{})))
}
