package perfstat

import (
	"strings"
	"testing"
)

// artifactWith builds a one-benchmark artifact from ns/op samples.
func artifactWith(name string, tier1 bool, nsop []float64) *Artifact {
	return &Artifact{
		Schema: SchemaVersion, Tool: "test", CreatedAt: "2026-08-06T00:00:00Z",
		Benchmarks: []Benchmark{{Name: name, Tier1: tier1, Samples: map[string][]float64{"ns/op": nsop}}},
	}
}

// TestGateFiresOnSyntheticSlowdown is the acceptance fixture: a clean
// 2x slowdown of a tier-1 benchmark across 8 interleaved samples must
// be flagged significant, classified a regression, and fail the gate.
func TestGateFiresOnSyntheticSlowdown(t *testing.T) {
	base := artifactWith("BenchmarkFastPath", true,
		[]float64{100, 101, 99, 100, 102, 98, 100, 101})
	cur := artifactWith("BenchmarkFastPath", true,
		[]float64{200, 202, 198, 201, 199, 200, 203, 197})
	comps := Compare(base, cur, GateConfig{})
	if len(comps) != 1 {
		t.Fatalf("comparisons = %+v", comps)
	}
	c := comps[0]
	if !c.Significant || c.P >= 0.05 {
		t.Fatalf("2x slowdown not significant: p=%v", c.P)
	}
	if c.DeltaPct < 90 || c.DeltaPct > 110 {
		t.Fatalf("DeltaPct = %v, want ~+100%%", c.DeltaPct)
	}
	if !c.Regression {
		t.Fatalf("2x slowdown not classified as regression: %+v", c)
	}
	err := Gate(comps)
	if err == nil {
		t.Fatal("gate passed a 2x tier-1 slowdown")
	}
	if !strings.Contains(err.Error(), "BenchmarkFastPath") {
		t.Fatalf("gate error does not name the benchmark: %v", err)
	}
}

// TestGateIgnoresNonTier1Regression: the same slowdown on an ungated
// benchmark is reported in the comparison but does not fail the gate.
func TestGateIgnoresNonTier1Regression(t *testing.T) {
	base := artifactWith("BenchmarkOffline", false,
		[]float64{100, 101, 99, 100, 102, 98, 100, 101})
	cur := artifactWith("BenchmarkOffline", false,
		[]float64{200, 202, 198, 201, 199, 200, 203, 197})
	comps := Compare(base, cur, GateConfig{})
	if !comps[0].Regression {
		t.Fatalf("slowdown not classified: %+v", comps[0])
	}
	if err := Gate(comps); err != nil {
		t.Fatalf("gate failed on a non-tier-1 regression: %v", err)
	}
}

// TestNoRegressionOnIdenticalDistribution: comparing an artifact
// against itself must report nothing significant — this is what `make
// bench-compare BASE=<just-written artifact>` relies on.
func TestNoRegressionOnIdenticalDistribution(t *testing.T) {
	a := artifactWith("BenchmarkFastPath", true,
		[]float64{100, 105, 95, 102, 98, 101, 99, 103})
	comps := Compare(a, a, GateConfig{})
	c := comps[0]
	if c.Significant || c.Regression || c.Improvement {
		t.Fatalf("self-comparison flagged: %+v", c)
	}
	if c.P != 1 {
		t.Fatalf("self-comparison p = %v, want 1", c.P)
	}
	if err := Gate(comps); err != nil {
		t.Fatalf("gate failed a self-comparison: %v", err)
	}
}

// TestSignificantButSmallDeltaPasses: a real but sub-threshold shift
// (clean +5% with tight samples) is significant yet not a regression.
func TestSignificantButSmallDeltaPasses(t *testing.T) {
	base := artifactWith("BenchmarkFastPath", true,
		[]float64{100, 100.1, 99.9, 100, 100.2, 99.8, 100, 100.1})
	cur := artifactWith("BenchmarkFastPath", true,
		[]float64{105, 105.1, 104.9, 105, 105.2, 104.8, 105, 105.1})
	comps := Compare(base, cur, GateConfig{})
	c := comps[0]
	if !c.Significant {
		t.Fatalf("clean +5%% shift not significant: p=%v", c.P)
	}
	if c.Regression {
		t.Fatalf("+5%% flagged as regression with 10%% threshold: %+v", c)
	}
	if err := Gate(comps); err != nil {
		t.Fatalf("gate failed: %v", err)
	}
}

// TestImprovementClassified: a 2x speedup is an improvement, never a
// gate failure.
func TestImprovementClassified(t *testing.T) {
	base := artifactWith("BenchmarkFastPath", true,
		[]float64{200, 202, 198, 201, 199, 200, 203, 197})
	cur := artifactWith("BenchmarkFastPath", true,
		[]float64{100, 101, 99, 100, 102, 98, 100, 101})
	comps := Compare(base, cur, GateConfig{})
	if !comps[0].Improvement || comps[0].Regression {
		t.Fatalf("speedup misclassified: %+v", comps[0])
	}
	if err := Gate(comps); err != nil {
		t.Fatalf("gate failed on an improvement: %v", err)
	}
}

// TestMissingTier1FailsGate: deleting a gated benchmark must not
// silence the gate.
func TestMissingTier1FailsGate(t *testing.T) {
	base := artifactWith("BenchmarkFastPath", true, []float64{100, 101, 99})
	cur := &Artifact{Schema: SchemaVersion, Tool: "test", CreatedAt: "x"}
	comps := Compare(base, cur, GateConfig{})
	if len(comps) != 1 || !comps[0].MissingInCurrent {
		t.Fatalf("comparisons = %+v", comps)
	}
	if err := Gate(comps); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("gate err = %v, want missing-benchmark failure", err)
	}
	// A missing non-tier-1 benchmark is fine.
	base.Benchmarks[0].Tier1 = false
	if err := Gate(Compare(base, cur, GateConfig{})); err != nil {
		t.Fatalf("gate failed on missing non-tier-1: %v", err)
	}
}

// TestTinySampleCountsCannotFire: with n=3 per side the Mann–Whitney
// normal approximation cannot reach p < 0.05, so noisy small runs are
// structurally incapable of failing the gate — the orchestrator must
// use n >= 5 for a meaningful gate (fgperf -short does).
func TestTinySampleCountsCannotFire(t *testing.T) {
	base := artifactWith("BenchmarkFastPath", true, []float64{100, 101, 99})
	cur := artifactWith("BenchmarkFastPath", true, []float64{200, 202, 198})
	comps := Compare(base, cur, GateConfig{})
	if comps[0].Significant {
		t.Fatalf("n=3 comparison reached significance: p=%v", comps[0].P)
	}
	if err := Gate(comps); err != nil {
		t.Fatalf("gate failed: %v", err)
	}
}
