package perfstat

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Collector accumulates parsed `go test -bench` output lines across
// repeated suite iterations into per-benchmark sample sets.
type Collector struct {
	order  []string
	byName map[string]*Benchmark
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{byName: make(map[string]*Benchmark)}
}

// NormalizeBenchName strips the trailing -GOMAXPROCS suffix go test
// appends to the final path element ("BenchmarkFastPath-8" →
// "BenchmarkFastPath", "BenchmarkX/sub-8" → "BenchmarkX/sub"), so
// artifacts from machines with different core counts compare by name.
func NormalizeBenchName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i < strings.LastIndexByte(name, '/') {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// ParseBenchLine parses one benchmark result line of the form
//
//	BenchmarkFastPath-8   1234   987.5 ns/op   0 B/op   0 allocs/op
//
// returning the normalized name and the unit → value pairs. Non-result
// lines (PASS, ok, goos:, headers, test logs) report ok == false.
func ParseBenchLine(line string) (name string, values map[string]float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false
	}
	values = make(map[string]float64, (len(fields)-2)/2)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		values[fields[i+1]] = v
	}
	if len(values) == 0 {
		return "", nil, false
	}
	return NormalizeBenchName(fields[0]), values, true
}

// Add parses one go test -bench output stream and appends every result
// line's values as one sample per unit. A benchmark appearing more than
// once in a single stream (e.g. -count > 1) contributes one sample per
// appearance.
func (c *Collector) Add(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		name, values, ok := ParseBenchLine(sc.Text())
		if !ok {
			continue
		}
		b := c.byName[name]
		if b == nil {
			b = &Benchmark{Name: name, Samples: make(map[string][]float64)}
			c.byName[name] = b
			c.order = append(c.order, name)
		}
		for unit, v := range values {
			b.Samples[unit] = append(b.Samples[unit], v)
		}
	}
	return sc.Err()
}

// Benchmarks returns the accumulated benchmarks. The order is the first
// appearance order, which for interleaved iterations is the suite's own
// declaration order — stable across runs.
func (c *Collector) Benchmarks() []Benchmark {
	out := make([]Benchmark, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, *c.byName[name])
	}
	return out
}

// MarkTier1 sets the Tier1 flag on every benchmark whose normalized
// name matches one of the given exact names or "prefix/" sub-benchmark
// roots, and returns how many were marked.
func MarkTier1(benches []Benchmark, names []string) int {
	marked := 0
	for i := range benches {
		for _, n := range names {
			if benches[i].Name == n || strings.HasPrefix(benches[i].Name, n+"/") {
				benches[i].Tier1 = true
				marked++
				break
			}
		}
	}
	return marked
}

// MissingTier1 lists the tier-1 names with no benchmark in the set —
// neither an exact match nor a sub-benchmark. A gate that only diffs
// against a baseline misses a benchmark that was renamed or deleted in
// the same change that regenerated the baseline; this check is absolute,
// so the protected set cannot silently shrink.
func MissingTier1(benches []Benchmark, names []string) []string {
	var missing []string
	for _, n := range names {
		found := false
		for i := range benches {
			if benches[i].Name == n || strings.HasPrefix(benches[i].Name, n+"/") {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, n)
		}
	}
	return missing
}

// Tier1Names is the hot-path benchmark set the CI regression gate
// protects: the §5.3 fast path and its feeding layers. Sub-benchmarks
// of a listed name are included.
func Tier1Names() []string {
	names := []string{
		"BenchmarkFastPath",
		"BenchmarkFastDecode",
		"BenchmarkGuardCheck",
		"BenchmarkITCLookup",
		"BenchmarkITCFlatSerialize",
		"BenchmarkIPTPacketScan",
		"BenchmarkApprovalCache",
		"BenchmarkIncrementalWindow",
		"BenchmarkCheckPoolThroughput",
		"BenchmarkAsyncSyscallGate",
		"BenchmarkFleetThroughput",
		"BenchmarkDemux",
	}
	sort.Strings(names)
	return names
}
