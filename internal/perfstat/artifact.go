package perfstat

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// SchemaVersion is the artifact schema generation. Decode rejects any
// other value: a reader that silently accepted a future schema would
// compare the wrong fields and report a confident nonsense verdict,
// which is worse than failing loudly.
const SchemaVersion = 1

// Artifact is one BENCH_<date>.json: every benchmark's raw samples from
// one orchestrated fgperf run (or one fgbench -json experiment run),
// plus enough environment metadata to judge comparability. Raw samples
// — not pre-digested summaries — are stored so a future reader can
// re-run any statistic over an old trajectory point.
type Artifact struct {
	// Schema must equal SchemaVersion.
	Schema int `json:"schema"`
	// Tool identifies the producer ("fgperf", "fgbench").
	Tool string `json:"tool"`
	// CreatedAt is an RFC3339 timestamp, supplied by the producer.
	CreatedAt string `json:"created_at"`
	GoVersion string `json:"go_version,omitempty"`
	GOOS      string `json:"goos,omitempty"`
	GOARCH    string `json:"goarch,omitempty"`
	NumCPU    int    `json:"num_cpu,omitempty"`
	// Iterations is how many interleaved suite repetitions contributed
	// samples (fgperf -n).
	Iterations int `json:"iterations,omitempty"`
	// BenchArgs records the go test flags used, for reproducibility.
	BenchArgs string `json:"bench_args,omitempty"`

	Benchmarks []Benchmark `json:"benchmarks"`

	// Phases holds Figure 5-style per-app overhead breakdowns from the
	// harness (trace/decode/check/other percentages), making the fgbench
	// report machine-readable alongside the wall-clock benchmarks.
	Phases []PhaseBreakdown `json:"phases,omitempty"`
	// FleetStats is the merged guard.Stats counter map of a parallel
	// fleet run (harness.StatsMap), when the producer ran one.
	FleetStats map[string]uint64 `json:"fleet_stats,omitempty"`
}

// Benchmark is one benchmark's accumulated samples across iterations,
// keyed by unit ("ns/op", "B/op", "allocs/op", and any custom
// b.ReportMetric units such as "gc-cycles/op").
type Benchmark struct {
	// Name is the benchmark name with the trailing -GOMAXPROCS suffix
	// stripped (sub-benchmark paths are kept), so artifacts from
	// machines with different core counts stay comparable.
	Name string `json:"name"`
	// Tier1 marks the hot-path benchmarks covered by the CI regression
	// gate.
	Tier1 bool `json:"tier1,omitempty"`
	// Samples maps unit → one sample per contributing iteration.
	Samples map[string][]float64 `json:"samples"`
}

// PhaseBreakdown mirrors harness.OverheadRow in schema-stable form: one
// protected app's total overhead and its per-phase split.
type PhaseBreakdown struct {
	App        string  `json:"app"`
	Category   string  `json:"category,omitempty"`
	TotalPct   float64 `json:"total_pct"`
	TracePct   float64 `json:"trace_pct"`
	DecodePct  float64 `json:"decode_pct"`
	CheckPct   float64 `json:"check_pct"`
	OtherPct   float64 `json:"other_pct"`
	SlowRate   float64 `json:"slow_rate"`
	CredRatio  float64 `json:"cred_ratio"`
	BaseInstrs uint64  `json:"base_instrs,omitempty"`
}

// Units returns the benchmark's units in deterministic order, ns/op
// first (it is the headline unit everywhere).
func (b *Benchmark) Units() []string {
	units := make([]string, 0, len(b.Samples))
	for u := range b.Samples {
		units = append(units, u)
	}
	sort.Slice(units, func(i, j int) bool {
		if (units[i] == "ns/op") != (units[j] == "ns/op") {
			return units[i] == "ns/op"
		}
		return units[i] < units[j]
	})
	return units
}

// Find returns the named benchmark, or nil.
func (a *Artifact) Find(name string) *Benchmark {
	for i := range a.Benchmarks {
		if a.Benchmarks[i].Name == name {
			return &a.Benchmarks[i]
		}
	}
	return nil
}

// Validate checks the structural invariants Decode enforces.
func (a *Artifact) Validate() error {
	if a.Schema != SchemaVersion {
		return fmt.Errorf("perfstat: artifact schema %d, this reader understands %d", a.Schema, SchemaVersion)
	}
	seen := make(map[string]bool, len(a.Benchmarks))
	for i := range a.Benchmarks {
		b := &a.Benchmarks[i]
		if b.Name == "" {
			return fmt.Errorf("perfstat: benchmark %d has an empty name", i)
		}
		if seen[b.Name] {
			return fmt.Errorf("perfstat: duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		for unit, samples := range b.Samples {
			if unit == "" {
				return fmt.Errorf("perfstat: %s has a sample set with an empty unit", b.Name)
			}
			if len(samples) == 0 {
				return fmt.Errorf("perfstat: %s %s has no samples", b.Name, unit)
			}
			for _, v := range samples {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("perfstat: %s %s contains a non-finite sample", b.Name, unit)
				}
			}
		}
	}
	return nil
}

// Encode writes the artifact as indented JSON. The artifact must
// validate: writing a file this package would then refuse to read is
// always a producer bug.
func (a *Artifact) Encode(w io.Writer) error {
	if err := a.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// DecodeArtifact parses and validates one artifact.
func DecodeArtifact(r io.Reader) (*Artifact, error) {
	dec := json.NewDecoder(r)
	var a Artifact
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("perfstat: decode artifact: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}
