package perfstat

import (
	"fmt"
	"strings"
)

// GateConfig parameterizes a baseline comparison and its regression
// gate.
type GateConfig struct {
	// Alpha is the significance level for the Mann–Whitney U test
	// (default 0.05).
	Alpha float64
	// ThresholdPct is the minimum median slowdown, in percent, that a
	// statistically significant change must reach to count as a
	// regression (default 10): the CI gate fails on "significant AND
	// >10% slower", so pure noise and real-but-tiny drifts both pass.
	ThresholdPct float64
	// Resamples and Seed drive the bootstrap CI annotations (defaults
	// 1000 and 1); they do not affect the gate verdict.
	Resamples int
	Seed      int64
	// Unit is the compared unit (default "ns/op").
	Unit string
}

// withDefaults fills the zero fields.
func (c GateConfig) withDefaults() GateConfig {
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.ThresholdPct == 0 {
		c.ThresholdPct = 10
	}
	if c.Resamples == 0 {
		c.Resamples = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Unit == "" {
		c.Unit = "ns/op"
	}
	return c
}

// Comparison is one benchmark's baseline-vs-current verdict.
type Comparison struct {
	Name  string
	Unit  string
	Tier1 bool

	Old, New         Summary
	OldLo, OldHi     float64 // bootstrap CI of the old median
	NewLo, NewHi     float64 // bootstrap CI of the new median
	DeltaPct         float64 // median change, percent; positive = slower
	P                float64 // two-sided Mann–Whitney p-value
	Significant      bool    // P < Alpha
	Regression       bool    // Significant && DeltaPct > ThresholdPct
	Improvement      bool    // Significant && DeltaPct < -ThresholdPct
	MissingInCurrent bool    // baseline benchmark absent from the new artifact
}

// Compare evaluates every baseline benchmark against the current
// artifact under cfg. Benchmarks present only in the current artifact
// are ignored (new benchmarks cannot regress); baseline benchmarks
// missing from the current run are reported with MissingInCurrent set,
// and a missing *tier-1* benchmark fails the gate — deleting the
// benchmark must never be a way to silence it.
func Compare(base, cur *Artifact, cfg GateConfig) []Comparison {
	cfg = cfg.withDefaults()
	var out []Comparison
	for i := range base.Benchmarks {
		ob := &base.Benchmarks[i]
		oldSamples := ob.Samples[cfg.Unit]
		if len(oldSamples) == 0 {
			continue // baseline never measured this unit
		}
		c := Comparison{Name: ob.Name, Unit: cfg.Unit, Tier1: ob.Tier1, Old: Summarize(oldSamples)}
		c.OldLo, c.OldHi = BootstrapCI(oldSamples, 0.95, cfg.Resamples, cfg.Seed)
		nb := cur.Find(ob.Name)
		if nb == nil || len(nb.Samples[cfg.Unit]) == 0 {
			c.MissingInCurrent = true
			out = append(out, c)
			continue
		}
		newSamples := nb.Samples[cfg.Unit]
		c.Tier1 = c.Tier1 || nb.Tier1
		c.New = Summarize(newSamples)
		c.NewLo, c.NewHi = BootstrapCI(newSamples, 0.95, cfg.Resamples, cfg.Seed)
		if c.Old.Median != 0 {
			c.DeltaPct = (c.New.Median - c.Old.Median) / c.Old.Median * 100
		}
		_, c.P = MannWhitneyU(oldSamples, newSamples)
		c.Significant = c.P < cfg.Alpha
		c.Regression = c.Significant && c.DeltaPct > cfg.ThresholdPct
		c.Improvement = c.Significant && c.DeltaPct < -cfg.ThresholdPct
		out = append(out, c)
	}
	return out
}

// Gate returns an error naming every tier-1 regression (or missing
// tier-1 benchmark) in comps, or nil when the gate passes. Non-tier-1
// regressions are advisory: they show in the table but do not fail CI.
func Gate(comps []Comparison) error {
	var bad []string
	for _, c := range comps {
		if !c.Tier1 {
			continue
		}
		switch {
		case c.MissingInCurrent:
			bad = append(bad, fmt.Sprintf("%s: tier-1 benchmark missing from current run", c.Name))
		case c.Regression:
			bad = append(bad, fmt.Sprintf("%s: %+.1f%% %s (p=%.4f)", c.Name, c.DeltaPct, c.Unit, c.P))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("perfstat: %d tier-1 regression(s):\n  %s", len(bad), strings.Join(bad, "\n  "))
}
