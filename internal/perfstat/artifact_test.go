package perfstat

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// sampleArtifact builds a small valid artifact used across tests.
func sampleArtifact() *Artifact {
	return &Artifact{
		Schema:     SchemaVersion,
		Tool:       "fgperf",
		CreatedAt:  "2026-08-06T00:00:00Z",
		GoVersion:  "go1.24.0",
		GOOS:       "linux",
		GOARCH:     "amd64",
		NumCPU:     8,
		Iterations: 5,
		BenchArgs:  "-benchmem -benchtime 20x",
		Benchmarks: []Benchmark{
			{
				Name:  "BenchmarkFastPath",
				Tier1: true,
				Samples: map[string][]float64{
					"ns/op":     {1000, 1010, 990, 1005, 995},
					"allocs/op": {0, 0, 0, 0, 0},
				},
			},
			{
				Name: "BenchmarkSlowPath",
				Samples: map[string][]float64{
					"ns/op": {60000, 61000, 59000, 60500, 59500},
				},
			},
		},
		Phases: []PhaseBreakdown{
			{App: "nginx", Category: "server", TotalPct: 4.4, TracePct: 1.0, DecodePct: 1.4, CheckPct: 1.2, OtherPct: 0.8, SlowRate: 0.004, CredRatio: 0.97, BaseInstrs: 1 << 20},
		},
		FleetStats: map[string]uint64{"Checks": 42, "Violations": 0},
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	a := sampleArtifact()
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Fatalf("round trip changed the artifact:\n  in:  %+v\n  out: %+v", a, got)
	}
}

func TestDecodeRejectsWrongSchema(t *testing.T) {
	a := sampleArtifact()
	a.Schema = SchemaVersion + 1
	var buf bytes.Buffer
	// Encode refuses to produce it...
	if err := a.Encode(&buf); err == nil {
		t.Fatal("Encode accepted a future schema")
	}
	// ...and Decode refuses to read it if produced by hand.
	raw := `{"schema": 99, "tool": "fgperf", "created_at": "x", "benchmarks": []}`
	if _, err := DecodeArtifact(strings.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("DecodeArtifact(schema 99) err = %v, want schema error", err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Artifact)
		want   string
	}{
		{"empty_name", func(a *Artifact) { a.Benchmarks[0].Name = "" }, "empty name"},
		{"duplicate", func(a *Artifact) { a.Benchmarks[1].Name = a.Benchmarks[0].Name }, "duplicate"},
		{"empty_unit", func(a *Artifact) { a.Benchmarks[0].Samples[""] = []float64{1} }, "empty unit"},
		{"no_samples", func(a *Artifact) { a.Benchmarks[0].Samples["ns/op"] = nil }, "no samples"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := sampleArtifact()
			c.mutate(a)
			err := a.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate err = %v, want mention of %q", err, c.want)
			}
		})
	}
}

func TestFind(t *testing.T) {
	a := sampleArtifact()
	if b := a.Find("BenchmarkSlowPath"); b == nil || b.Name != "BenchmarkSlowPath" {
		t.Fatalf("Find(BenchmarkSlowPath) = %+v", b)
	}
	if b := a.Find("BenchmarkNope"); b != nil {
		t.Fatalf("Find(BenchmarkNope) = %+v, want nil", b)
	}
}

func TestUnitsOrder(t *testing.T) {
	b := Benchmark{Samples: map[string][]float64{
		"allocs/op": {0}, "ns/op": {1}, "B/op": {0}, "gc-cycles/op": {0},
	}}
	got := b.Units()
	want := []string{"ns/op", "B/op", "allocs/op", "gc-cycles/op"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Units() = %v, want %v", got, want)
	}
}
