package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: NOP},
		{Op: HALT},
		{Op: MOV, Rd: R3, Rs: R7},
		{Op: MOVI, Rd: R0, Imm: -1},
		{Op: MOVIH, Rd: SP, Imm: math.MaxInt32},
		{Op: LEA, Rd: R12, Imm: 4096},
		{Op: ADD, Rd: FP, Rs: SP},
		{Op: ADDI, Rd: SP, Imm: -64},
		{Op: CMP, Rd: R1, Rs: R2},
		{Op: CMPI, Rd: R1, Imm: 100},
		{Op: LD, Rd: R4, Rs: FP, Imm: -8},
		{Op: ST, Rd: SP, Rs: R0, Imm: 16},
		{Op: LDB, Rd: R9, Rs: R8, Imm: 1},
		{Op: STB, Rd: R8, Rs: R9, Imm: 0},
		{Op: PUSH, Rs: R5},
		{Op: POP, Rd: R5},
		{Op: JMP, Imm: -8},
		{Op: JCC, Aux: uint8(NE), Imm: 8},
		{Op: CALL, Imm: 1024},
		{Op: JMPR, Rs: R12},
		{Op: CALLR, Rs: R6},
		{Op: RET},
		{Op: SYSCALL},
	}
	for _, want := range cases {
		var buf [InstrSize]byte
		want.Encode(buf[:])
		got, err := Decode(buf[:])
		if err != nil {
			t.Fatalf("Decode(%v): %v", want, err)
		}
		if got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestDecodeRejectsIllegalOpcode(t *testing.T) {
	buf := [InstrSize]byte{0xff}
	if _, err := Decode(buf[:]); err == nil {
		t.Fatal("Decode accepted illegal opcode 0xff")
	}
	buf = [InstrSize]byte{uint8(opMax)}
	if _, err := Decode(buf[:]); err == nil {
		t.Fatalf("Decode accepted opcode %d (opMax)", opMax)
	}
}

func TestDecodeRejectsShortBuffer(t *testing.T) {
	if _, err := Decode(make([]byte, InstrSize-1)); err == nil {
		t.Fatal("Decode accepted truncated buffer")
	}
}

func TestDecodeRejectsReservedByte(t *testing.T) {
	i := Instr{Op: NOP}
	var buf [InstrSize]byte
	i.Encode(buf[:])
	buf[3] = 1
	if _, err := Decode(buf[:]); err == nil {
		t.Fatal("Decode accepted nonzero reserved byte")
	}
}

func TestDecodeRejectsIllegalCond(t *testing.T) {
	i := Instr{Op: JCC, Aux: uint8(condMax), Imm: 8}
	var buf [InstrSize]byte
	i.Encode(buf[:])
	if _, err := Decode(buf[:]); err == nil {
		t.Fatal("Decode accepted illegal condition code")
	}
}

// TestTable3CoFIOutputs pins the CoFI classification from Table 3 of the
// paper: direct branches are silent, conditional branches produce TNT,
// indirect branches and returns produce TIP, and far transfers FUP|TIP.
func TestTable3CoFIOutputs(t *testing.T) {
	want := map[Op]CoFIClass{
		JMP:     CoFIDirect,
		CALL:    CoFIDirect,
		JCC:     CoFICond,
		JMPR:    CoFIIndirect,
		CALLR:   CoFIIndirect,
		RET:     CoFIRet,
		SYSCALL: CoFIFarTransfer,
	}
	for op, class := range want {
		if got := op.Class(); got != class {
			t.Errorf("%v.Class() = %v, want %v", op, got, class)
		}
		if !op.IsCoFI() {
			t.Errorf("%v.IsCoFI() = false, want true", op)
		}
	}
	for _, op := range []Op{NOP, MOV, MOVI, ADD, LD, ST, PUSH, POP, CMP, HALT} {
		if op.IsCoFI() {
			t.Errorf("%v.IsCoFI() = true, want false", op)
		}
	}
}

func TestBranchTarget(t *testing.T) {
	i := Instr{Op: JMP, Imm: -16}
	if got := i.BranchTarget(0x400010); got != 0x400008 {
		t.Errorf("BranchTarget = %#x, want 0x400008", got)
	}
	i = Instr{Op: CALL, Imm: 0}
	if got := i.BranchTarget(0x400000); got != 0x400008 {
		t.Errorf("BranchTarget(+0) = %#x, want fallthrough 0x400008", got)
	}
}

// Property: every structurally valid instruction survives an
// encode/decode round trip bit-exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(op8, rd, rs, aux uint8, imm int32) bool {
		op := Op(op8 % uint8(opMax))
		in := Instr{
			Op:  op,
			Rd:  Reg(rd % NumRegs),
			Rs:  Reg(rs % NumRegs),
			Imm: imm,
		}
		if op == JCC {
			in.Aux = aux % uint8(condMax)
		}
		var buf [InstrSize]byte
		in.Encode(buf[:])
		out, err := Decode(buf[:])
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics on arbitrary bytes and, when it succeeds,
// re-encoding reproduces the canonical form of the accepted fields.
func TestQuickDecodeTotal(t *testing.T) {
	f := func(raw [InstrSize]byte) bool {
		in, err := Decode(raw[:])
		if err != nil {
			return true
		}
		var buf [InstrSize]byte
		in.Encode(buf[:])
		out, err := Decode(buf[:])
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestStrings(t *testing.T) {
	cases := map[string]Instr{
		"nop":             {Op: NOP},
		"mov r3, r7":      {Op: MOV, Rd: R3, Rs: R7},
		"movi r0, -1":     {Op: MOVI, Rd: R0, Imm: -1},
		"ld r4, [fp-8]":   {Op: LD, Rd: R4, Rs: FP, Imm: -8},
		"st [sp+16], r0":  {Op: ST, Rd: SP, Rs: R0, Imm: 16},
		"jne +8":          {Op: JCC, Aux: uint8(NE), Imm: 8},
		"callr r6":        {Op: CALLR, Rs: R6},
		"lea r12, [pc+4]": {Op: LEA, Rd: R12, Imm: 4},
		"push r5":         {Op: PUSH, Rs: R5},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
