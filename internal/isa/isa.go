// Package isa defines the synthetic instruction set architecture that the
// whole FlowGuard reproduction is built on.
//
// The paper targets x86-64 binaries traced by Intel Processor Trace. Real
// x86 decoding is orthogonal to the paper's contribution, so this package
// provides a fixed-width (8 byte) RISC-like ISA that preserves everything
// CFI cares about:
//
//   - direct unconditional branches (JMP, CALL)  -> no trace output
//   - conditional branches (JCC)                 -> TNT packets
//   - indirect branches (JMPR, CALLR)            -> TIP packets
//   - near returns (RET)                         -> TIP packets
//   - far transfers (SYSCALL, traps)             -> FUP + TIP packets
//
// which is exactly Table 3 of the paper. The fixed width makes linear-sweep
// disassembly exact, so the static analyzer's conservatism guarantees are
// honest rather than artifacts of a fragile x86 decoder.
package isa

import "fmt"

// InstrSize is the fixed encoded size of every instruction in bytes.
const InstrSize = 8

// Reg identifies one of the 16 general-purpose registers.
//
// Calling convention (enforced by the assembler and assumed by the
// TypeArmor-style arity analysis): R0..R5 carry arguments, R0 carries the
// return value, R6..R11 are scratch, R12 is the PLT scratch register,
// FP (R14) is the frame pointer and SP (R15) the stack pointer.
type Reg uint8

// Register names.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7 // syscall number register
	R8
	R9
	R10
	R11
	R12 // PLT scratch
	R13
	FP // frame pointer (R14)
	SP // stack pointer (R15)
)

// NumRegs is the size of the general-purpose register file.
const NumRegs = 16

// NumArgRegs is the number of argument-passing registers (R0..R5), the
// basis for the TypeArmor-style use-def arity analysis.
const NumArgRegs = 6

func (r Reg) String() string {
	switch r {
	case FP:
		return "fp"
	case SP:
		return "sp"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Op is an instruction opcode.
type Op uint8

// Opcodes. The numeric values are part of the binary encoding and must not
// be reordered.
const (
	NOP Op = iota
	HALT
	MOV   // rd = rs
	MOVI  // rd = signext(imm32)
	MOVIH // rd = (rd & 0xffffffff) | imm32<<32
	LEA   // rd = pc_next + signext(imm32)   (position-independent address)
	ADD   // rd += rs
	SUB   // rd -= rs
	MUL   // rd *= rs
	DIV   // rd /= rs (unsigned; divide by zero faults)
	MOD   // rd %= rs (unsigned; divide by zero faults)
	AND   // rd &= rs
	OR    // rd |= rs
	XOR   // rd ^= rs
	SHL   // rd <<= rs & 63
	SHR   // rd >>= rs & 63 (logical)
	ADDI  // rd += signext(imm32)
	CMP   // flags = compare(rd, rs)
	CMPI  // flags = compare(rd, signext(imm32))
	LD    // rd = mem64[rs + signext(imm32)]
	ST    // mem64[rd + signext(imm32)] = rs
	LDB   // rd = zeroext(mem8[rs + signext(imm32)])
	STB   // mem8[rd + signext(imm32)] = low8(rs)
	PUSH  // sp -= 8; mem64[sp] = rs
	POP   // rd = mem64[sp]; sp += 8
	JMP   // pc = pc_next + signext(imm32)                 direct branch
	JCC   // if cond(aux): pc = pc_next + signext(imm32)   conditional branch
	CALL  // push pc_next; pc = pc_next + signext(imm32)   direct call
	JMPR  // pc = rs                                       indirect branch
	CALLR // push pc_next; pc = rs                         indirect call
	RET   // pc = pop()                                    near return
	SYSCALL
	opMax
)

var opNames = [...]string{
	NOP: "nop", HALT: "halt", MOV: "mov", MOVI: "movi", MOVIH: "movih",
	LEA: "lea", ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", MOD: "mod",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr", ADDI: "addi",
	CMP: "cmp", CMPI: "cmpi", LD: "ld", ST: "st", LDB: "ldb", STB: "stb",
	PUSH: "push", POP: "pop", JMP: "jmp", JCC: "jcc", CALL: "call",
	JMPR: "jmpr", CALLR: "callr", RET: "ret", SYSCALL: "syscall",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < opMax }

// Cond is a condition code for JCC, stored in the aux byte.
type Cond uint8

// Condition codes evaluated against the flags set by CMP/CMPI.
const (
	EQ Cond = iota // equal           (Z)
	NE             // not equal       (!Z)
	LT             // signed less     (N)
	LE             // signed <=       (N || Z)
	GT             // signed greater  (!N && !Z)
	GE             // signed >=       (!N)
	condMax
)

var condNames = [...]string{EQ: "eq", NE: "ne", LT: "lt", LE: "le", GT: "gt", GE: "ge"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Valid reports whether c is a defined condition code.
func (c Cond) Valid() bool { return c < condMax }

// CoFIClass classifies change-of-flow instructions the way Intel Processor
// Trace does (paper Table 3). Non-CoFI instructions are CoFINone.
type CoFIClass uint8

// CoFI classes and the trace output each produces.
const (
	CoFINone        CoFIClass = iota // not a change-of-flow instruction
	CoFIDirect                       // JMP, CALL: no output
	CoFICond                         // JCC: TNT
	CoFIIndirect                     // JMPR, CALLR: TIP
	CoFIRet                          // RET: TIP
	CoFIFarTransfer                  // SYSCALL, traps, interrupts: FUP | TIP
)

func (c CoFIClass) String() string {
	switch c {
	case CoFINone:
		return "none"
	case CoFIDirect:
		return "direct"
	case CoFICond:
		return "cond"
	case CoFIIndirect:
		return "indirect"
	case CoFIRet:
		return "ret"
	case CoFIFarTransfer:
		return "far"
	default:
		return fmt.Sprintf("cofi(%d)", uint8(c))
	}
}

// Class returns the CoFI classification of the opcode.
func (o Op) Class() CoFIClass {
	switch o {
	case JMP, CALL:
		return CoFIDirect
	case JCC:
		return CoFICond
	case JMPR, CALLR:
		return CoFIIndirect
	case RET:
		return CoFIRet
	case SYSCALL:
		return CoFIFarTransfer
	default:
		return CoFINone
	}
}

// IsCoFI reports whether the opcode changes control flow.
func (o Op) IsCoFI() bool { return o.Class() != CoFINone }

// Instr is one decoded instruction.
type Instr struct {
	Op  Op
	Rd  Reg   // destination register (bits 7..4 of byte 1)
	Rs  Reg   // source register      (bits 3..0 of byte 1)
	Aux uint8 // condition code for JCC; otherwise 0
	Imm int32 // signed 32-bit immediate / PC-relative displacement
}

// Cond returns the condition code of a JCC instruction.
func (i Instr) Cond() Cond { return Cond(i.Aux) }

// Encode writes the 8-byte encoding of the instruction into buf.
// buf must be at least InstrSize bytes long.
func (i Instr) Encode(buf []byte) {
	_ = buf[7]
	buf[0] = uint8(i.Op)
	buf[1] = uint8(i.Rd)<<4 | uint8(i.Rs)&0x0f
	buf[2] = i.Aux
	buf[3] = 0
	u := uint32(i.Imm)
	buf[4] = byte(u)
	buf[5] = byte(u >> 8)
	buf[6] = byte(u >> 16)
	buf[7] = byte(u >> 24)
}

// EncodeTo appends the 8-byte encoding of the instruction to dst.
func (i Instr) EncodeTo(dst []byte) []byte {
	var b [InstrSize]byte
	i.Encode(b[:])
	return append(dst, b[:]...)
}

// Decode parses one instruction from buf. It returns an error if buf is
// shorter than InstrSize or the opcode is undefined. A decode error models
// the CPU's illegal-instruction fault.
func Decode(buf []byte) (Instr, error) {
	if len(buf) < InstrSize {
		return Instr{}, fmt.Errorf("isa: truncated instruction: %d bytes", len(buf))
	}
	op := Op(buf[0])
	if !op.Valid() {
		return Instr{}, fmt.Errorf("isa: illegal opcode %#02x", buf[0])
	}
	if buf[3] != 0 {
		return Instr{}, fmt.Errorf("isa: nonzero reserved byte %#02x", buf[3])
	}
	i := Instr{
		Op:  op,
		Rd:  Reg(buf[1] >> 4),
		Rs:  Reg(buf[1] & 0x0f),
		Aux: buf[2],
		Imm: int32(uint32(buf[4]) | uint32(buf[5])<<8 | uint32(buf[6])<<16 | uint32(buf[7])<<24),
	}
	if op == JCC && !Cond(i.Aux).Valid() {
		return Instr{}, fmt.Errorf("isa: illegal condition code %d", i.Aux)
	}
	return i, nil
}

// BranchTarget returns the absolute target address of a direct branch
// (JMP, CALL or JCC taken) located at pc. For other opcodes the result is
// meaningless; callers must check Op first.
func (i Instr) BranchTarget(pc uint64) uint64 {
	return pc + InstrSize + uint64(int64(i.Imm))
}

// String renders the instruction in assembly-like syntax.
func (i Instr) String() string {
	switch i.Op {
	case NOP, HALT, RET, SYSCALL:
		return i.Op.String()
	case MOV, ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR, CMP:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs)
	case MOVI, MOVIH, ADDI, CMPI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case LEA:
		return fmt.Sprintf("lea %s, [pc%+d]", i.Rd, i.Imm)
	case LD, LDB:
		return fmt.Sprintf("%s %s, [%s%+d]", i.Op, i.Rd, i.Rs, i.Imm)
	case ST, STB:
		return fmt.Sprintf("%s [%s%+d], %s", i.Op, i.Rd, i.Imm, i.Rs)
	case PUSH:
		return fmt.Sprintf("push %s", i.Rs)
	case POP:
		return fmt.Sprintf("pop %s", i.Rd)
	case JMP, CALL:
		return fmt.Sprintf("%s %+d", i.Op, i.Imm)
	case JCC:
		return fmt.Sprintf("j%s %+d", i.Cond(), i.Imm)
	case JMPR, CALLR:
		return fmt.Sprintf("%s %s", i.Op, i.Rs)
	default:
		return fmt.Sprintf("%s rd=%s rs=%s aux=%d imm=%d", i.Op, i.Rd, i.Rs, i.Aux, i.Imm)
	}
}
