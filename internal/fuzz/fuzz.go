// Package fuzz implements the coverage-oriented, fuzzing-like input
// generation of the paper's dynamic training phase (§4.3), modeled on
// AFL: a queue of interesting test cases, deterministic mutation stages
// followed by stacked havoc mutations and splicing, and an edge-coverage
// bitmap with AFL's hit-count bucketing to decide which mutants uncover
// new state transitions.
//
// The paper runs targets under QEMU user-mode emulation for coverage;
// here the role of QEMU is played by the CPU emulator — callers provide
// an Executor that runs an input and reports edge coverage (see
// CoverageSink for the canonical instrumentation).
//
// The fuzzer's product is its corpus. Training (step 3 of §4.3) replays
// the corpus on the "real hardware" — the emulator with the IPT model
// attached — and labels the ITC-CFG edges the traces exercise; that part
// lives with the callers (internal/harness, the public API) so this
// package stays independent of the graph machinery.
package fuzz

import (
	"math/rand"

	"flowguard/internal/trace"
)

// MapSize is the coverage bitmap size (AFL's default 64 KiB).
const MapSize = 1 << 16

// Executor runs the target on one input and fills cov with edge hit
// counts. It must be deterministic for a given input.
type Executor func(input []byte, cov []byte) error

// CoverageSink returns a trace.Sink recording AFL-style edge coverage
// into cov: each (source, target) branch pair hashes to a bitmap slot
// whose hit count saturates at 255.
func CoverageSink(cov []byte) trace.Sink {
	return trace.SinkFunc(func(b trace.Branch) {
		h := (b.Source*0x9e3779b1 ^ b.Target*0x85ebca77) >> 4
		slot := &cov[h&(MapSize-1)]
		if *slot < 255 {
			*slot++
		}
	})
}

// bucket quantizes a hit count into AFL's count classes so loops do not
// register a "new transition" on every extra iteration.
func bucket(n byte) byte {
	switch {
	case n == 0:
		return 0
	case n == 1:
		return 1
	case n == 2:
		return 2
	case n == 3:
		return 4
	case n <= 7:
		return 8
	case n <= 15:
		return 16
	case n <= 31:
		return 32
	case n <= 127:
		return 64
	default:
		return 128
	}
}

// Entry is one corpus member.
type Entry struct {
	Input []byte
	// NewBits is the number of bitmap slots this entry was the first to
	// light up.
	NewBits int
	// Exec is the execution index at which it was found (Figure 5(d)'s
	// time axis).
	Exec int
	// determinized marks that the deterministic stages already ran.
	determinized bool
}

// Config tunes the fuzzing campaign.
type Config struct {
	// Seed drives all mutation randomness (campaigns are reproducible).
	Seed int64
	// MaxInputLen caps mutant length.
	MaxInputLen int
	// DetBudget caps the per-entry deterministic stage positions (the
	// full AFL walk is quadratic on long inputs).
	DetBudget int
	// TrimBudget caps the executions spent minimizing each new queue
	// entry (AFL's trim stage); 0 disables trimming.
	TrimBudget int
}

// DefaultConfig returns sensible campaign settings.
func DefaultConfig() Config {
	return Config{Seed: 1, MaxInputLen: 4096, DetBudget: 2048, TrimBudget: 64}
}

// Fuzzer is one campaign.
type Fuzzer struct {
	cfg    Config
	run    Executor
	rng    *rand.Rand
	queue  []*Entry
	virgin [MapSize]byte // buckets seen so far
	cov    [MapSize]byte

	// Execs counts target executions.
	Execs int
	// Finds counts queue additions beyond the seeds.
	Finds int
	// Errors counts executions that returned an error (crashes are
	// interesting to a vulnerability hunter; for training we only care
	// that coverage was recorded before the crash).
	Errors int
	// TrimmedBytes counts bytes removed from queue entries by the trim
	// stage.
	TrimmedBytes int
}

// New starts a campaign from the given seed inputs.
func New(run Executor, seeds [][]byte, cfg Config) *Fuzzer {
	if cfg.MaxInputLen <= 0 {
		cfg.MaxInputLen = 4096
	}
	if cfg.DetBudget <= 0 {
		cfg.DetBudget = 2048
	}
	f := &Fuzzer{cfg: cfg, run: run, rng: rand.New(rand.NewSource(cfg.Seed))}
	for _, s := range seeds {
		f.tryInput(append([]byte(nil), s...), true)
	}
	return f
}

// Corpus returns the current queue inputs (the training corpus).
func (f *Fuzzer) Corpus() [][]byte {
	out := make([][]byte, len(f.queue))
	for i, e := range f.queue {
		out[i] = e.Input
	}
	return out
}

// Queue returns the corpus entries with their discovery metadata.
func (f *Fuzzer) Queue() []*Entry { return f.queue }

// CoveredSlots returns the number of bitmap slots ever hit — the "paths
// discovered" proxy plotted in Figure 5(d).
func (f *Fuzzer) CoveredSlots() int {
	n := 0
	for _, v := range f.virgin {
		if v != 0 {
			n++
		}
	}
	return n
}

// TryInput executes one externally supplied input (no mutation) and
// queues it if it uncovers new coverage, reporting whether it was
// queued. Useful for importing corpora or unit-testing bucket behavior.
func (f *Fuzzer) TryInput(in []byte) bool {
	return f.tryInput(append([]byte(nil), in...), false)
}

// tryInput executes the input and queues it if it lights new bucket
// bits. It reports whether the input was queued.
func (f *Fuzzer) tryInput(in []byte, seed bool) bool {
	for i := range f.cov {
		f.cov[i] = 0
	}
	f.Execs++
	if err := f.run(in, f.cov[:]); err != nil {
		f.Errors++
	}
	newBits := 0
	for i, v := range f.cov {
		if v == 0 {
			continue
		}
		b := bucket(v)
		if f.virgin[i]&b == 0 {
			f.virgin[i] |= b
			newBits++
		}
	}
	if newBits == 0 {
		return false
	}
	f.queue = append(f.queue, &Entry{Input: in, NewBits: newBits, Exec: f.Execs})
	if !seed {
		f.Finds++
	}
	return true
}

// Run executes up to maxExecs target runs, cycling the queue: each entry
// gets its deterministic stages once, then havoc/splice rounds.
func (f *Fuzzer) Run(maxExecs int) {
	if len(f.queue) == 0 {
		f.tryInput([]byte("\n"), true)
	}
	for qi := 0; f.Execs < maxExecs; qi = (qi + 1) % len(f.queue) {
		e := f.queue[qi]
		if !e.determinized {
			e.determinized = true
			f.trim(e, maxExecs)
			f.deterministic(e, maxExecs)
		}
		f.havocRound(e, maxExecs)
		if f.Execs >= maxExecs {
			return
		}
	}
}

// covSig runs the input and returns a signature of its bucketed
// coverage map (the invariant the trim stage preserves).
func (f *Fuzzer) covSig(in []byte) uint64 {
	for i := range f.cov {
		f.cov[i] = 0
	}
	f.Execs++
	if err := f.run(in, f.cov[:]); err != nil {
		f.Errors++
	}
	h := uint64(0xcbf29ce484222325)
	for i, v := range f.cov {
		if v == 0 {
			continue
		}
		h = (h ^ uint64(i)) * 0x100000001b3
		h = (h ^ uint64(bucket(v))) * 0x100000001b3
	}
	return h
}

// trim shrinks a queue entry by removing chunks whose absence does not
// change its coverage signature (AFL's trim stage): shorter corpus
// entries make every later mutation cheaper and the training replays
// faster.
func (f *Fuzzer) trim(e *Entry, maxExecs int) {
	if f.cfg.TrimBudget <= 0 || len(e.Input) < 8 {
		return
	}
	want := f.covSig(e.Input)
	spent := 1
	for frac := 2; frac <= 16 && len(e.Input) >= frac*2; frac *= 2 {
		step := len(e.Input) / frac
		if step == 0 {
			break
		}
		for pos := 0; pos+step <= len(e.Input); {
			if spent >= f.cfg.TrimBudget || f.Execs >= maxExecs {
				return
			}
			candidate := append(append([]byte{}, e.Input[:pos]...), e.Input[pos+step:]...)
			spent++
			if f.covSig(candidate) == want {
				f.TrimmedBytes += step
				e.Input = candidate
				// Re-test the same position against the shorter input.
				continue
			}
			pos += step
		}
	}
}

// deterministic runs AFL's walking bitflip / arithmetic / interesting
// value stages over the entry, bounded by DetBudget positions.
func (f *Fuzzer) deterministic(e *Entry, maxExecs int) {
	in := e.Input
	limit := len(in)
	if limit > f.cfg.DetBudget {
		limit = f.cfg.DetBudget
	}
	mutated := func(buf []byte) bool {
		if f.Execs >= maxExecs {
			return true
		}
		f.tryInput(buf, false)
		return false
	}
	// Walking single-bit flips.
	for pos := 0; pos < limit*8; pos++ {
		buf := append([]byte(nil), in...)
		buf[pos/8] ^= 1 << (pos % 8)
		if mutated(buf) {
			return
		}
	}
	// Byte flips.
	for pos := 0; pos < limit; pos++ {
		buf := append([]byte(nil), in...)
		buf[pos] ^= 0xff
		if mutated(buf) {
			return
		}
	}
	// Arithmetic ±1..16.
	for pos := 0; pos < limit; pos++ {
		for d := 1; d <= 16; d++ {
			buf := append([]byte(nil), in...)
			buf[pos] += byte(d)
			if mutated(buf) {
				return
			}
			buf2 := append([]byte(nil), in...)
			buf2[pos] -= byte(d)
			if mutated(buf2) {
				return
			}
		}
	}
	// Interesting bytes.
	for pos := 0; pos < limit; pos++ {
		for _, v := range []byte{0, 1, 16, 32, 64, 100, 127, 128, 255, '\n', ' ', '0', '9'} {
			buf := append([]byte(nil), in...)
			buf[pos] = v
			if mutated(buf) {
				return
			}
		}
	}
}

// havocRound applies a burst of stacked random mutations (and one
// splice) derived from the entry.
func (f *Fuzzer) havocRound(e *Entry, maxExecs int) {
	const roundMutants = 48
	for m := 0; m < roundMutants && f.Execs < maxExecs; m++ {
		buf := append([]byte(nil), e.Input...)
		if m == roundMutants-1 && len(f.queue) > 1 {
			buf = f.splice(buf)
		}
		stack := 1 << (1 + f.rng.Intn(4))
		for s := 0; s < stack; s++ {
			buf = f.havocOp(buf)
		}
		if len(buf) == 0 {
			buf = []byte{'\n'}
		}
		if len(buf) > f.cfg.MaxInputLen {
			buf = buf[:f.cfg.MaxInputLen]
		}
		f.tryInput(buf, false)
	}
}

func (f *Fuzzer) havocOp(buf []byte) []byte {
	if len(buf) == 0 {
		return []byte{byte(f.rng.Intn(256))}
	}
	switch f.rng.Intn(8) {
	case 0: // flip a bit
		p := f.rng.Intn(len(buf))
		buf[p] ^= 1 << f.rng.Intn(8)
	case 1: // random byte
		buf[f.rng.Intn(len(buf))] = byte(f.rng.Intn(256))
	case 2: // arithmetic
		buf[f.rng.Intn(len(buf))] += byte(1 + f.rng.Intn(32))
	case 3: // delete a range
		if len(buf) > 2 {
			s := f.rng.Intn(len(buf) - 1)
			l := 1 + f.rng.Intn(len(buf)-s-1)
			buf = append(buf[:s], buf[s+l:]...)
		}
	case 4: // duplicate a range
		s := f.rng.Intn(len(buf))
		l := 1 + f.rng.Intn(16)
		if s+l > len(buf) {
			l = len(buf) - s
		}
		chunk := append([]byte(nil), buf[s:s+l]...)
		p := f.rng.Intn(len(buf) + 1)
		buf = append(buf[:p], append(chunk, buf[p:]...)...)
	case 5: // insert random bytes
		p := f.rng.Intn(len(buf) + 1)
		chunk := make([]byte, 1+f.rng.Intn(8))
		for i := range chunk {
			chunk[i] = byte(f.rng.Intn(256))
		}
		buf = append(buf[:p], append(chunk, buf[p:]...)...)
	case 6: // overwrite with an ASCII digit run (protocol numbers)
		p := f.rng.Intn(len(buf))
		for i := p; i < len(buf) && i < p+4; i++ {
			buf[i] = byte('0' + f.rng.Intn(10))
		}
	case 7: // newline injection (line-oriented protocols)
		buf[f.rng.Intn(len(buf))] = '\n'
	}
	return buf
}

// splice crosses the buffer with a random other queue entry.
func (f *Fuzzer) splice(buf []byte) []byte {
	other := f.queue[f.rng.Intn(len(f.queue))].Input
	if len(other) == 0 || len(buf) == 0 {
		return buf
	}
	cut1 := f.rng.Intn(len(buf))
	cut2 := f.rng.Intn(len(other))
	return append(append([]byte(nil), buf[:cut1]...), other[cut2:]...)
}
