package fuzz_test

import (
	"testing"

	"flowguard/internal/apps"
	"flowguard/internal/cfg"
	"flowguard/internal/fuzz"
	"flowguard/internal/itc"
	"flowguard/internal/kernelsim"
	"flowguard/internal/trace/ipt"
)

const ctlDefault = ipt.CtlTraceEn | ipt.CtlBranchEn | ipt.CtlUser | ipt.CtlToPA

// executor adapts an app to the fuzzer: one fresh process per input with
// the coverage sink attached (the QEMU-mode analogue of §4.3 step 1).
func executor(a *apps.App) fuzz.Executor {
	return func(input []byte, cov []byte) error {
		k := kernelsim.New()
		p, err := a.Spawn(k, input)
		if err != nil {
			return err
		}
		p.CPU.Branch = fuzz.CoverageSink(cov)
		st, err := k.Run(p, 3_000_000)
		if err != nil {
			return err
		}
		if st.Killed {
			return st.FaultErr
		}
		return nil
	}
}

func TestFuzzerDiscoversCoverage(t *testing.T) {
	a := apps.Nginx()
	f := fuzz.New(executor(a), [][]byte{
		[]byte("G /index\n"),
	}, fuzz.DefaultConfig())
	base := f.CoveredSlots()
	if base == 0 {
		t.Fatal("seed produced no coverage")
	}
	f.Run(400)
	if f.CoveredSlots() <= base {
		t.Errorf("coverage did not grow: %d -> %d", base, f.CoveredSlots())
	}
	if f.Finds == 0 {
		t.Error("no new queue entries found")
	}
	if f.Execs < 400 {
		t.Errorf("executed %d inputs, want 400", f.Execs)
	}
	// Queue entries record discovery order for Figure 5(d).
	for i, e := range f.Queue() {
		if len(e.Input) == 0 {
			t.Errorf("queue[%d] empty", i)
		}
		if e.Exec == 0 {
			t.Errorf("queue[%d] missing discovery index", i)
		}
	}
	t.Logf("execs=%d queue=%d covered=%d errors=%d", f.Execs, len(f.Queue()), f.CoveredSlots(), f.Errors)
}

// TestFuzzerReachesNewHandlers: starting from a GET-only seed, mutation
// must eventually reach another request handler (coverage-guided state
// discovery).
func TestFuzzerReachesNewHandlers(t *testing.T) {
	a := apps.Nginx()
	f := fuzz.New(executor(a), [][]byte{[]byte("G /a\n")}, fuzz.DefaultConfig())
	f.Run(1200)
	// The P and H handlers contain code GET never touches; finding them
	// shows up as a clearly larger covered set than one request shape
	// alone. Compare against a GET-only corpus baseline.
	fBase := fuzz.New(executor(a), [][]byte{[]byte("G /a\n")}, fuzz.DefaultConfig())
	if f.CoveredSlots() <= fBase.CoveredSlots() {
		t.Errorf("campaign coverage %d not above single-input baseline %d",
			f.CoveredSlots(), fBase.CoveredSlots())
	}
}

// TestTrainingPipeline wires fuzzing into ITC labeling (§4.3 step 3):
// replay the corpus under IPT and label edges; the cred-ratio must grow
// with corpus size (the Figure 5(d) dynamic).
func TestTrainingPipeline(t *testing.T) {
	a := apps.Nginx()
	as, err := a.Load()
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(as)
	if err != nil {
		t.Fatal(err)
	}
	ig := itc.FromCFG(g)

	f := fuzz.New(executor(a), [][]byte{[]byte("G /index\n"), []byte("P 64\nH /x\n")}, fuzz.DefaultConfig())
	f.Run(300)

	replay := func(input []byte) []ipt.TIPRecord {
		k := kernelsim.New()
		p, err := a.Spawn(k, input)
		if err != nil {
			t.Fatal(err)
		}
		tr := ipt.NewTracer(ipt.NewToPA(16 << 20))
		if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlDefault); err != nil {
			t.Fatal(err)
		}
		p.CPU.Branch = tr
		if _, err := k.Run(p, 3_000_000); err != nil {
			t.Fatal(err)
		}
		tr.Flush()
		evs, err := ipt.DecodeFast(tr.Out.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return ipt.ExtractTIPs(evs)
	}

	var ratios []float64
	corpus := f.Corpus()
	for ci, input := range corpus {
		tips := replay(input)
		for i := 0; i+1 < len(tips); i++ {
			ig.Observe(tips[i].IP, tips[i+1].IP, tips[i+1].TNTSig)
		}
		if ci == 0 || ci == len(corpus)-1 {
			ratios = append(ratios, ig.Credits().Ratio)
		}
	}
	if len(ratios) < 2 || ratios[len(ratios)-1] <= ratios[0] {
		t.Errorf("cred-ratio did not grow with the corpus: %v", ratios)
	}
	ig.RebuildCache()
	if ig.Credits().HighCredit == 0 {
		t.Fatal("training labeled nothing")
	}
}

// TestBucketing pins AFL count-class behavior: re-running a loop a few
// more times must not count as new coverage once its bucket saturates.
func TestBucketing(t *testing.T) {
	runs := 0
	exec := func(input []byte, cov []byte) error {
		runs++
		// One edge hit len(input) times.
		n := len(input)
		if n > 200 {
			n = 200
		}
		for i := 0; i < n; i++ {
			cov[7]++
		}
		return nil
	}
	f := fuzz.New(exec, [][]byte{make([]byte, 1)}, fuzz.DefaultConfig())
	before := len(f.Queue())
	// 1 -> 2 hits: new bucket.
	if added := fuzzTry(f, make([]byte, 2)); !added {
		t.Error("hit-count 2 should be a new bucket")
	}
	// 16 -> 17 hits: same bucket (16..31).
	fuzzTry(f, make([]byte, 16))
	if added := fuzzTry(f, make([]byte, 17)); added {
		t.Error("hit-count 17 should share the 16..31 bucket")
	}
	_ = before
}

// fuzzTry exposes queue growth for one crafted input.
func fuzzTry(f *fuzz.Fuzzer, in []byte) bool {
	before := len(f.Queue())
	// Run a single havoc-free execution by abusing Run's seed path:
	// inject via the public surface — a one-exec campaign would mutate,
	// so drive the executor directly through New with the input as a
	// seed of a throwaway fuzzer sharing the same virgin map is not
	// possible; instead use the documented TryInput hook.
	f.TryInput(in)
	return len(f.Queue()) > before
}

// TestTrimRemovesRedundantBytes: a synthetic target whose coverage is
// the set of distinct letters lets the trim stage strip everything else.
func TestTrimRemovesRedundantBytes(t *testing.T) {
	exec := func(input []byte, cov []byte) error {
		for _, b := range input {
			if b >= 'A' && b <= 'Z' {
				cov[int(b-'A')]++
			}
		}
		return nil
	}
	cfg := fuzz.DefaultConfig()
	cfg.TrimBudget = 200
	seed := append([]byte("AB"), make([]byte, 200)...) // 200 redundant NULs
	f := fuzz.New(exec, [][]byte{seed}, cfg)
	f.Run(300)
	if f.TrimmedBytes == 0 {
		t.Fatal("trim removed nothing")
	}
	q := f.Queue()[0]
	if len(q.Input) > 32 {
		t.Errorf("seed still %d bytes after trimming, want close to 2", len(q.Input))
	}
	for _, b := range []byte("AB") {
		if !containsByte(q.Input, b) {
			t.Errorf("trim lost coverage-relevant byte %q", b)
		}
	}
}

func containsByte(p []byte, b byte) bool {
	for _, x := range p {
		if x == b {
			return true
		}
	}
	return false
}
