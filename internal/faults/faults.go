// Package faults is the fault-injection harness for the trace pipeline:
// seeded, deterministic plans that damage the trace stream the way real
// deployments do — lost ToPA output, corrupted buffer bytes, overflow
// desynchronization, wrap floods — plus checker-side stalls for
// overloading a guard.CheckPool. A Plan plugs into ipt.Tracer via the
// ipt.WriteFault hook and into the pool via its Stall method; the guard
// under test is never modified, only its inputs are.
//
// The fault model follows the hardware's failure semantics: faults that
// lose output (Drop, Truncate, Delay) leave an in-band OVF packet, as
// the trace unit does when internal buffering overruns, so a correct
// decoder can detect the loss. BitFlip and Splice model memory
// corruption of the ToPA pages themselves — silent damage with no
// marker, which must surface as grammar errors or impossible flow.
package faults

import (
	"math/rand"
	"sync"
	"time"

	"flowguard/internal/trace/ipt"
)

var _ ipt.WriteFault = (*Plan)(nil)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// BitFlip flips 1–3 bits somewhere in the written bytes: silent
	// corruption of the buffer pages.
	BitFlip Kind = iota
	// Truncate cuts the write short mid-packet and marks the loss with
	// an OVF packet.
	Truncate
	// Splice inserts garbage bytes mid-write: a torn or misdirected DMA.
	Splice
	// InjectOVF prepends a spurious OVF packet without losing bytes:
	// pure desynchronization until the next PSB.
	InjectOVF
	// Drop discards the whole write, leaving only the OVF marker.
	Drop
	// Delay holds the write back and releases it before the next one,
	// after an OVF marker: late DMA arriving out of order.
	Delay
	// Wrap prepends a PAD flood that pushes the circular buffer past the
	// checker's cached window, forcing a resynchronizing re-snapshot.
	Wrap
	// Stall does not touch the stream: it wedges a checker-pool slot for
	// StallFor (via Plan.Stall), modeling checker overload.
	Stall
	// WorkerStall wedges an asynchronous checking worker at task pickup
	// for StallFor (via Plan.WorkerStall): the pipeline falls behind and
	// the gate deadline / watchdog must cover the backlog.
	WorkerStall
	// WorkerCrash panics an asynchronous checking worker at task pickup
	// (via Plan.WorkerCrash): the pool must contain the crash and the
	// backlog must still reach a verdict.
	WorkerCrash

	numKinds
)

// NumKinds is the number of fault classes.
const NumKinds = int(numKinds)

var kindNames = [...]string{
	BitFlip: "bit-flip", Truncate: "truncate", Splice: "splice",
	InjectOVF: "inject-ovf", Drop: "drop", Delay: "delay",
	Wrap: "wrap", Stall: "stall", WorkerStall: "worker-stall",
	WorkerCrash: "worker-crash",
}

// sideKind reports a checker-side fault: it fires from pool hooks, not
// from tracer writes.
func sideKind(k Kind) bool {
	return k == Stall || k == WorkerStall || k == WorkerCrash
}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "fault(?)"
}

// ovfMarker is a bare OVF packet, the in-band trace-loss marker.
var ovfMarker = []byte{0x02, 0xF3}

// Defaults for zero Config fields.
const (
	// DefaultWrapBurst comfortably exceeds the guard's default two-region
	// 16 KiB ToPA, so one Wrap fault evicts any cached window.
	DefaultWrapBurst = 20 << 10
	// DefaultStallFor is long enough to hold a pool slot past a short
	// admission deadline without slowing tests unduly.
	DefaultStallFor = 2 * time.Millisecond
)

// Config parameterizes a Plan. The zero value injects nothing.
type Config struct {
	// Seed makes the plan deterministic: equal configs produce equal
	// fault sequences for equal input sequences.
	Seed int64
	// Rates is the per-write (per-Stall-call for Stall) probability of
	// each fault kind. At most one fault fires per write; kinds are
	// tried in declaration order.
	Rates [numKinds]float64
	// WrapBurst is the PAD-flood size for Wrap faults
	// (DefaultWrapBurst if zero).
	WrapBurst int
	// StallFor is how long a Stall fault wedges a checker slot
	// (DefaultStallFor if zero).
	StallFor time.Duration
	// MaxFaults bounds the total number of injected faults
	// (0 = unlimited).
	MaxFaults int
}

// Plan is a live fault injector. It is safe for concurrent use (the
// tracer write path and the pool hooks may race); stream faults draw
// from their own generator, so their sequence is deterministic for a
// deterministic write sequence even while checker-side hooks (Stall,
// WorkerStall, WorkerCrash) race against the stream from worker
// goroutines — essential for comparing asynchronous runs against
// synchronous ones on identical trace bytes.
type Plan struct {
	cfg Config

	mu      sync.Mutex
	rng     *rand.Rand // stream-fault draws (per tracer write)
	side    *rand.Rand // checker-side draws (per pool hook call)
	pending []byte     // a delayed write awaiting release
	counts  [numKinds]uint64
	total   uint64
}

// sideSeedMix decorrelates the checker-side generator from the stream
// generator derived from the same seed.
const sideSeedMix int64 = 0x1e3779b97f4a7c15

// New returns a Plan for the config.
func New(cfg Config) *Plan {
	return &Plan{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		side: rand.New(rand.NewSource(cfg.Seed ^ sideSeedMix)),
	}
}

// FromSeed derives a whole plan deterministically from one seed: 1–3
// active fault kinds with rates in [0.01, 0.11). It is the chaos soak's
// plan generator — seed space is scenario space.
func FromSeed(seed int64) *Plan {
	rng := rand.New(rand.NewSource(seed))
	var cfg Config
	cfg.Seed = seed
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		k := Kind(rng.Intn(int(numKinds)))
		cfg.Rates[k] = 0.01 + rng.Float64()*0.10
	}
	return New(cfg)
}

// Config returns the plan's configuration.
func (pl *Plan) Config() Config { return pl.cfg }

// Active reports whether the plan can inject kind k.
func (pl *Plan) Active(k Kind) bool { return pl.cfg.Rates[k] > 0 }

// Corrupting reports whether the plan includes kinds that damage packet
// framing or contents (BitFlip, Splice, Truncate — a mid-packet cut
// leaves a partial packet that can swallow the loss marker) and so can
// fabricate impossible-looking flow. Plans without them only lose,
// delay, or desynchronize trace — damage a decoder can always attribute
// to overflow.
func (pl *Plan) Corrupting() bool {
	return pl.Active(BitFlip) || pl.Active(Splice) || pl.Active(Truncate)
}

// Counts returns the number of injected faults per kind.
func (pl *Plan) Counts() [numKinds]uint64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.counts
}

// Total returns the total number of injected faults.
func (pl *Plan) Total() uint64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.total
}

// draw picks the stream fault to inject for one write, or -1. Caller
// holds mu.
func (pl *Plan) draw() Kind {
	if pl.cfg.MaxFaults > 0 && pl.total >= uint64(pl.cfg.MaxFaults) {
		return -1
	}
	for k := Kind(0); k < numKinds; k++ {
		if sideKind(k) {
			continue // stream faults on writes, side kinds on pool hooks
		}
		if pl.cfg.Rates[k] > 0 && pl.rng.Float64() < pl.cfg.Rates[k] {
			pl.counts[k]++
			pl.total++
			return k
		}
	}
	return -1
}

// drawSide is one Bernoulli draw of a single checker-side kind from the
// side generator. Caller holds mu.
func (pl *Plan) drawSide(k Kind) bool {
	if pl.cfg.MaxFaults > 0 && pl.total >= uint64(pl.cfg.MaxFaults) {
		return false
	}
	if pl.cfg.Rates[k] > 0 && pl.side.Float64() < pl.cfg.Rates[k] {
		pl.counts[k]++
		pl.total++
		return true
	}
	return false
}

// Corrupt implements ipt.WriteFault: it returns the bytes that actually
// reach the ToPA for one tracer write. The caller's slice is never
// mutated or retained; a delayed write held from a previous call is
// released ahead of the current bytes.
func (pl *Plan) Corrupt(p []byte, off uint64) []byte {
	pl.mu.Lock()
	defer pl.mu.Unlock()

	var held []byte
	if len(pl.pending) > 0 {
		held = pl.pending
		pl.pending = nil
	}

	out := p
	switch pl.draw() {
	case BitFlip:
		out = append([]byte(nil), p...)
		for i, n := 0, 1+pl.rng.Intn(3); i < n && len(out) > 0; i++ {
			out[pl.rng.Intn(len(out))] ^= 1 << uint(pl.rng.Intn(8))
		}
	case Truncate:
		cut := 0
		if len(p) > 1 {
			cut = pl.rng.Intn(len(p) - 1)
		}
		out = append(append([]byte(nil), p[:cut]...), ovfMarker...)
	case Splice:
		at := 0
		if len(p) > 0 {
			at = pl.rng.Intn(len(p) + 1)
		}
		garbage := make([]byte, 1+pl.rng.Intn(4))
		for i := range garbage {
			garbage[i] = byte(pl.rng.Intn(256))
		}
		out = make([]byte, 0, len(p)+len(garbage))
		out = append(out, p[:at]...)
		out = append(out, garbage...)
		out = append(out, p[at:]...)
	case InjectOVF:
		out = append(append([]byte(nil), ovfMarker...), p...)
	case Drop:
		out = append([]byte(nil), ovfMarker...)
	case Delay:
		pl.pending = append([]byte(nil), p...)
		out = append([]byte(nil), ovfMarker...)
	case Wrap:
		burst := pl.cfg.WrapBurst
		if burst <= 0 {
			burst = DefaultWrapBurst
		}
		out = append(make([]byte, burst), p...) // PAD flood, then the write
	}

	if held == nil {
		return out
	}
	return append(held, out...)
}

// Stall implements the checker-pool stall hook: the returned duration is
// how long the acquired slot stays wedged (zero = no fault this time).
func (pl *Plan) Stall() time.Duration {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if !pl.drawSide(Stall) {
		return 0
	}
	return pl.stallFor()
}

// WorkerStall implements guard.WorkerFaults: how long an async worker
// wedges at task pickup (zero = no fault this time).
func (pl *Plan) WorkerStall() time.Duration {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if !pl.drawSide(WorkerStall) {
		return 0
	}
	return pl.stallFor()
}

// WorkerCrash implements guard.WorkerFaults: whether an async worker
// crashes at task pickup.
func (pl *Plan) WorkerCrash() bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.drawSide(WorkerCrash)
}

// stallFor returns the configured stall duration. Caller holds mu.
func (pl *Plan) stallFor() time.Duration {
	if pl.cfg.StallFor > 0 {
		return pl.cfg.StallFor
	}
	return DefaultStallFor
}
