package faults_test

// Chaos soak: seeded fault plans × degraded-mode policies × workloads
// (benign traffic and real attacks), run end to end through the kernel
// module. The soak pins the two robustness guarantees of the degraded
// checking design: no fault plan can panic the guard, and injected
// attacks are still detected in every degraded mode except an explicit
// fail-open window. A companion test saturates a one-slot CheckPool and
// verifies overload sheds are policy-governed and fully accounted —
// never silent.

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"flowguard/internal/apps"
	"flowguard/internal/attack"
	"flowguard/internal/cfg"
	"flowguard/internal/faults"
	"flowguard/internal/guard"
	"flowguard/internal/isa"
	"flowguard/internal/itc"
	"flowguard/internal/kernelsim"
	"flowguard/internal/trace"
	"flowguard/internal/trace/ipt"
)

const ctlTrace = ipt.CtlTraceEn | ipt.CtlBranchEn | ipt.CtlUser | ipt.CtlToPA

// fixture is the offline phase, shared across every soak scenario: the
// CFG depends only on the deterministic binaries, so one analysis and
// one training pass serve all runs.
type fixture struct {
	app  *apps.App
	ocfg *cfg.Graph
	ig   *itc.Graph
	rop  []byte
	srop []byte
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func chaosFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		app := apps.Vulnd()
		as, err := app.Load()
		if err != nil {
			fixErr = err
			return
		}
		g, err := cfg.Build(as)
		if err != nil {
			fixErr = err
			return
		}
		f := &fixture{app: app, ocfg: g, ig: itc.FromCFG(g)}
		if f.rop, err = attack.BuildROPWrite(as); err != nil {
			fixErr = err
			return
		}
		if f.srop, err = attack.BuildSROP(as); err != nil {
			fixErr = err
			return
		}
		for _, in := range [][]byte{benignTraffic(), []byte("G /x\nP 32\nH /h\n")} {
			k := kernelsim.New()
			p, err := app.Spawn(k, in)
			if err != nil {
				fixErr = err
				return
			}
			tr := ipt.NewTracer(ipt.NewToPA(16 << 20))
			if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
				fixErr = err
				return
			}
			p.CPU.Branch = tr
			if st, err := k.Run(p, 50_000_000); err != nil || !st.Exited {
				fixErr = err
				return
			}
			tr.Flush()
			evs, err := ipt.DecodeFast(tr.Out.Snapshot())
			if err != nil {
				fixErr = err
				return
			}
			f.ig.ObserveWindow(ipt.ExtractTIPs(evs))
		}
		f.ig.RebuildCache()
		fix = f
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

func benignTraffic() []byte {
	return []byte("G /index\nG /api/v1/users\nH /health\nP 128\nG /about\nG /static/logo\nP 256\nG /index2\n")
}

// scenario is one soak run: a workload under one degraded-mode policy
// with one fault plan wired into the tracer's write path — and, for
// async scenarios, the same plan wired into the worker pool's fault
// hooks (WorkerStall/WorkerCrash).
type scenario struct {
	seed   int64
	mode   guard.DegradedMode
	attack bool // workload is an exploit payload, not benign traffic
	async  bool // run the asynchronous checking pipeline
}

// runScenario executes one protected run with the plan injected and
// returns the exit status, the guard, and the plan.
func runScenario(t *testing.T, f *fixture, sc scenario) (kernelsim.ExitStatus, *guard.Guard, *faults.Plan) {
	t.Helper()
	input := benignTraffic()
	if sc.async && !sc.attack {
		// Async scenarios need enough trace to fill 8 KiB ToPA regions,
		// or the capture path (and its worker-fault hooks) never fires.
		// Safe requests only: repeating payload requests overflows the
		// server by itself.
		input = []byte(strings.Repeat("G /index\nG /api/v1/users\nH /health\n", 8))
	}
	if sc.attack {
		if (sc.seed/2)%2 == 0 {
			input = f.rop
		} else {
			input = f.srop
		}
	}
	k := kernelsim.New()
	p, err := f.app.Spawn(k, input)
	if err != nil {
		t.Fatal(err)
	}
	km := guard.InstallModule(k)
	pol := guard.DefaultPolicy()
	pol.OnDegraded = sc.mode
	pol.Async = sc.async
	plan := faults.FromSeed(sc.seed)
	var ap *guard.AsyncPool
	if sc.async {
		ap = guard.NewAsyncPool(2, 0)
		ap.InjectFaults(plan)
		km.UseAsync(ap)
	}
	g, err := km.Protect(p, f.ocfg, f.ig, pol)
	if err != nil {
		t.Fatal(err)
	}
	g.Tracer.Fault = plan
	st, err := k.Run(p, 80_000_000)
	km.Shutdown()
	if ap != nil {
		ap.Close()
	}
	if err != nil {
		t.Fatalf("seed %d mode %v attack %v async %v: run aborted: %v", sc.seed, sc.mode, sc.attack, sc.async, err)
	}
	return st, g, plan
}

// TestChaosSoak sweeps seeded fault plans across the three degraded
// modes and both workload classes, in parallel. Any panic anywhere in
// the pipeline fails the test; the per-scenario assertions pin the
// security (attacks detected) and availability (benign loss-only runs
// survive fail-open) halves of the policy contract.
func TestChaosSoak(t *testing.T) {
	f := chaosFixture(t)
	n := int64(1002)
	if testing.Short() {
		n = 120
	}
	modes := []guard.DegradedMode{guard.FailClosed, guard.SlowPathRetry, guard.FailOpen}

	var mu sync.Mutex
	var degraded, retries, failOpens, failClosures uint64
	var asyncRuns, asyncWindows, workerFaults, workerCrashes uint64

	seeds := make(chan int64)
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seeds {
				// Mode cycles with period 3, workload with period 2, and
				// the async pipeline with period 6 × 2, so every mode
				// meets both workload classes both sync and async
				// (full combination period 12).
				sc := scenario{
					seed:   seed,
					mode:   modes[seed%int64(len(modes))],
					attack: seed%2 == 1,
					async:  (seed/6)%2 == 0,
				}
				st, g, plan := runScenario(t, f, sc)
				if sc.attack && sc.mode != guard.FailOpen && !st.Killed {
					t.Errorf("seed %d mode %v async %v: attack not detected (plan %+v, status %v)",
						seed, sc.mode, sc.async, plan.Config(), st)
				}
				if !sc.attack && sc.mode == guard.FailOpen && !plan.Corrupting() && !st.Exited {
					t.Errorf("seed %d fail-open async %v: benign loss-only run did not survive (plan %+v, status %v)",
						seed, sc.async, plan.Config(), st)
				}
				counts := plan.Counts()
				mu.Lock()
				degraded += g.Stats.DegradedChecks
				retries += g.Stats.Retries
				failOpens += g.Stats.FailOpens
				failClosures += g.Stats.FailClosures
				if sc.async {
					asyncRuns++
					asyncWindows += g.Stats.AsyncWindows
					workerFaults += counts[faults.WorkerStall] + counts[faults.WorkerCrash]
					workerCrashes += g.Stats.WorkerCrashes
				}
				mu.Unlock()
			}
		}()
	}
	for seed := int64(0); seed < n; seed++ {
		seeds <- seed
	}
	close(seeds)
	wg.Wait()

	if degraded == 0 {
		t.Error("soak never degraded a check; fault injection is not reaching the guard")
	}
	if asyncRuns == 0 || asyncWindows == 0 {
		t.Errorf("soak ran %d async scenarios capturing %d windows; the pipeline is not being exercised",
			asyncRuns, asyncWindows)
	}
	if !testing.Short() && workerFaults == 0 {
		t.Error("full soak never drew a worker-side fault; WorkerStall/WorkerCrash plans are not folded in")
	}
	t.Logf("%d scenarios (%d async): degraded=%d retries=%d failOpens=%d failClosures=%d asyncWindows=%d workerFaults=%d workerCrashes=%d",
		n, asyncRuns, degraded, retries, failOpens, failClosures, asyncWindows, workerFaults, workerCrashes)
}

// TestChaosPoolOverload saturates a single-slot CheckPool with stalled
// checks from parallel processes. The pool must neither deadlock nor
// drop checks silently: every endpoint check appears in the guards'
// statistics, sheds are counted on both sides, and attacks are still
// detected under the non-fail-open policies.
func TestChaosPoolOverload(t *testing.T) {
	f := chaosFixture(t)
	for _, mode := range []guard.DegradedMode{guard.FailClosed, guard.SlowPathRetry} {
		k := kernelsim.New()
		km := guard.InstallModule(k)
		pool := guard.NewCheckPool(1)
		pool.Deadline = 100 * time.Microsecond
		pool.QueueLimit = 2
		pool.RetryBackoff = 50 * time.Microsecond
		stallPlan := faults.New(faults.Config{
			Seed:     42,
			Rates:    stallAlways(),
			StallFor: 2 * time.Millisecond,
		})
		pool.Stall = stallPlan.Stall
		km.UsePool(pool)

		pol := guard.DefaultPolicy()
		pol.OnDegraded = mode

		var procs []*kernelsim.Process
		var guards []*guard.Guard
		attackIdx := map[int]bool{}
		for i := 0; i < 6; i++ {
			input := benignTraffic()
			if i%3 == 0 {
				input = f.rop
				attackIdx[i] = true
			}
			p, err := f.app.Spawn(k, input)
			if err != nil {
				t.Fatal(err)
			}
			g, err := km.Protect(p, f.ocfg, f.ig, pol)
			if err != nil {
				t.Fatal(err)
			}
			procs = append(procs, p)
			guards = append(guards, g)
		}

		done := make(chan struct{})
		var sts []kernelsim.ExitStatus
		var runErr error
		go func() {
			sts, runErr = k.RunParallel(procs, 80_000_000, 0)
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("mode %v: pool overload deadlocked", mode)
		}
		if runErr != nil {
			t.Fatalf("mode %v: %v", mode, runErr)
		}

		for i, st := range sts {
			if attackIdx[i] && !st.Killed {
				t.Errorf("mode %v: attack process %d not detected under overload: %v", mode, i, st)
			}
		}
		ps := pool.Snapshot()
		var guardChecks uint64
		for _, g := range guards {
			guardChecks += g.Stats.Checks
		}
		if guardChecks != ps.Checks+ps.Shed {
			t.Errorf("mode %v: %d guard checks vs %d admitted + %d shed: checks dropped silently",
				mode, guardChecks, ps.Checks, ps.Shed)
		}
		if ps.Shed == 0 {
			t.Errorf("mode %v: saturated pool shed nothing; overload path untested", mode)
		}
		if mode == guard.SlowPathRetry && ps.Retried == 0 {
			t.Errorf("slow-path-retry mode recorded no admission retries")
		}
		t.Logf("mode %v: admitted=%d shed=%d retried=%d guardChecks=%d", mode, ps.Checks, ps.Shed, ps.Retried, guardChecks)
	}
}

func stallAlways() [faults.NumKinds]float64 {
	var r [faults.NumKinds]float64
	r[faults.Stall] = 1
	return r
}

// TestChaosDecoderSoak is the cheap wide sweep: thousands of seeded
// plans against the raw encode/decode pipeline (no kernel, no guard).
// Decode errors are legal outcomes under corruption; panics are not.
func TestChaosDecoderSoak(t *testing.T) {
	n := int64(3000)
	if testing.Short() {
		n = 600
	}
	for seed := int64(0); seed < n; seed++ {
		plan := faults.FromSeed(seed)
		tr := ipt.NewTracer(ipt.NewToPA(4096, 4096))
		if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
			t.Fatal(err)
		}
		tr.Fault = plan
		for i := 0; i < 300; i++ {
			addr := uint64(0x400000 + (seed*131+int64(i)*17)%8192*4)
			tr.Branch(trace.Branch{Class: isa.CoFIIndirect, Source: addr, Target: addr, Taken: true})
			if i%5 == 0 {
				tr.Branch(trace.Branch{Class: isa.CoFICond, Source: addr, Target: addr + 4, Taken: i%2 == 0})
			}
		}
		tr.Flush()
		buf := tr.Out.Snapshot()
		if evs, err := ipt.DecodeFast(buf); err == nil {
			ipt.ExtractTIPs(evs)
		}
		d := ipt.NewWindowDecoder(0)
		chunk := 1 + int(seed%97)
		for lo := 0; lo < len(buf); lo += chunk {
			hi := lo + chunk
			if hi > len(buf) {
				hi = len(buf)
			}
			if err := d.Feed(buf[lo:hi]); err != nil {
				break // malformed: a legal outcome, not a panic
			}
		}
	}
}
