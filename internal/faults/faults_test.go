package faults

import (
	"bytes"
	"testing"
	"time"
)

// TestDeterminism: two plans from the same seed produce byte-identical
// fault sequences over identical input sequences — the property that
// makes a chaos-soak failure reproducible from its seed alone.
func TestDeterminism(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, b := FromSeed(seed), FromSeed(seed)
		if a.Config() != b.Config() {
			t.Fatalf("seed %d: configs diverge: %+v vs %+v", seed, a.Config(), b.Config())
		}
		off := uint64(0)
		for i := 0; i < 200; i++ {
			in := bytes.Repeat([]byte{byte(i), 0x00, 0x02, 0x23}, 1+i%7)
			ra := a.Corrupt(in, off)
			rb := b.Corrupt(in, off)
			if !bytes.Equal(ra, rb) {
				t.Fatalf("seed %d write %d: outputs diverge (%d vs %d bytes)", seed, i, len(ra), len(rb))
			}
			if a.Stall() != b.Stall() {
				t.Fatalf("seed %d write %d: stalls diverge", seed, i)
			}
			off += uint64(len(ra))
		}
		if a.Counts() != b.Counts() {
			t.Fatalf("seed %d: counts diverge: %v vs %v", seed, a.Counts(), b.Counts())
		}
	}
}

// TestCallerSliceNeverMutated: Corrupt must copy before damaging — the
// tracer passes its reusable scratch buffer.
func TestCallerSliceNeverMutated(t *testing.T) {
	var cfg Config
	cfg.Seed = 7
	for k := Kind(0); k < numKinds; k++ {
		cfg.Rates[k] = 1 // every write faults with the first kind drawn
	}
	pl := New(cfg)
	in := bytes.Repeat([]byte{0xA5}, 64)
	want := append([]byte(nil), in...)
	for i := 0; i < 500; i++ {
		pl.Corrupt(in, uint64(i))
		if !bytes.Equal(in, want) {
			t.Fatalf("write %d mutated the caller's slice", i)
		}
	}
	if pl.Total() == 0 {
		t.Fatal("rate-1 plan injected nothing")
	}
}

// TestDelayedBytesReleased: a Delay fault re-emits the held write before
// the next one — bytes are reordered past an OVF marker, never lost
// twice.
func TestDelayedBytesReleased(t *testing.T) {
	var cfg Config
	cfg.Seed = 1
	cfg.Rates[Delay] = 1
	cfg.MaxFaults = 1
	pl := New(cfg)
	first := []byte{0x11, 0x22}
	out1 := pl.Corrupt(first, 0)
	if !bytes.Equal(out1, []byte{0x02, 0xF3}) {
		t.Fatalf("delayed write emitted %x, want bare OVF marker", out1)
	}
	second := []byte{0x33}
	out2 := pl.Corrupt(second, 2)
	if !bytes.Equal(out2, []byte{0x11, 0x22, 0x33}) {
		t.Fatalf("release write emitted %x, want held bytes then new", out2)
	}
}

// TestMaxFaultsBudget: the injection budget is enforced.
func TestMaxFaultsBudget(t *testing.T) {
	var cfg Config
	cfg.Seed = 3
	cfg.Rates[Drop] = 1
	cfg.MaxFaults = 4
	pl := New(cfg)
	in := []byte{0x00}
	for i := 0; i < 100; i++ {
		pl.Corrupt(in, uint64(i))
	}
	if got := pl.Total(); got != 4 {
		t.Fatalf("injected %d faults, budget was 4", got)
	}
}

// TestStallOnlyFromStallHook: Stall never fires on the write path and
// stream kinds never fire on the stall path.
func TestStallOnlyFromStallHook(t *testing.T) {
	var cfg Config
	cfg.Seed = 5
	cfg.Rates[Stall] = 1
	cfg.StallFor = time.Millisecond
	pl := New(cfg)
	in := []byte{0x00, 0x00}
	for i := 0; i < 50; i++ {
		out := pl.Corrupt(in, uint64(i))
		if !bytes.Equal(out, in) {
			t.Fatalf("stall-only plan altered write %d: %x", i, out)
		}
	}
	if d := pl.Stall(); d != time.Millisecond {
		t.Fatalf("Stall() = %v, want configured 1ms", d)
	}
	c := pl.Counts()
	if c[Stall] != 1 || pl.Total() != 1 {
		t.Fatalf("counts = %v, want exactly one stall", c)
	}
}

// TestFromSeedActivatesSomething: every derived plan has at least one
// active kind, and the seed space covers all kinds.
func TestFromSeedActivatesSomething(t *testing.T) {
	var seen [numKinds]bool
	for seed := int64(0); seed < 500; seed++ {
		pl := FromSeed(seed)
		any := false
		for k := Kind(0); k < numKinds; k++ {
			if pl.Active(k) {
				any = true
				seen[k] = true
			}
		}
		if !any {
			t.Fatalf("seed %d derived an empty plan", seed)
		}
	}
	for k := Kind(0); k < numKinds; k++ {
		if !seen[k] {
			t.Errorf("kind %v never activated across 500 seeds", k)
		}
	}
}
