package faults_test

// Fleet chaos scenarios (DESIGN.md §10), folded into the `make chaos`
// sweep by name: fork storms through the kernel module's inheritance
// path, a tenant flood against the sharded admission layer, and a
// wedged shard whose stalls must not leak into its siblings. Every
// scenario draws its faults from seeded plans and audits the same
// ledger the fleet simulator pins: checks == admitted + shed, per
// shard and merged, with fork inheritance fully counted.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flowguard/internal/apps"
	"flowguard/internal/cfg"
	"flowguard/internal/faults"
	"flowguard/internal/guard"
	"flowguard/internal/itc"
	"flowguard/internal/kernelsim"
	"flowguard/internal/trace/ipt"
)

// forkdFix is the fork-storm fixture: forkd analyzed and trained on
// fork-free inputs only (the kernel never schedules training children),
// so the storm's children certify inheritance, not fresh training.
type forkdFix struct {
	app  *apps.App
	ocfg *cfg.Graph
	ig   *itc.Graph
}

var (
	forkdOnce sync.Once
	forkdF    *forkdFix
	forkdErr  error
)

func forkdFixture(t *testing.T) *forkdFix {
	t.Helper()
	forkdOnce.Do(func() {
		app := apps.Forkd()
		as, err := app.Load()
		if err != nil {
			forkdErr = err
			return
		}
		g, err := cfg.Build(as)
		if err != nil {
			forkdErr = err
			return
		}
		f := &forkdFix{app: app, ocfg: g, ig: itc.FromCFG(g)}
		for _, in := range [][]byte{[]byte("abcdabcd"), []byte("dcbaadbc")} {
			k := kernelsim.New()
			p, err := app.Spawn(k, in)
			if err != nil {
				forkdErr = err
				return
			}
			tr := ipt.NewTracer(ipt.NewToPA(16 << 20))
			if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
				forkdErr = err
				return
			}
			p.CPU.Branch = tr
			st, err := k.Run(p, 50_000_000)
			if err != nil {
				forkdErr = err
				return
			}
			if !st.Exited {
				forkdErr = fmt.Errorf("forkd training run stopped: %v", st)
				return
			}
			tr.Flush()
			evs, err := ipt.DecodeFast(tr.Out.Snapshot())
			if err != nil {
				forkdErr = err
				return
			}
			f.ig.ObserveWindow(ipt.ExtractTIPs(evs))
		}
		f.ig.RebuildCache()
		forkdF = f
	})
	if forkdErr != nil {
		t.Fatal(forkdErr)
	}
	return forkdF
}

// TestChaosFleetForkStorm sweeps seeded fault plans over fork storms:
// four protected forkd processes each fork twice (a 4 → 16 population)
// while a fault plan corrupts their trace writes and stalls the shared
// check pool. Whatever the plan does, every process in the table must
// hold a guard, every child must carry a ForkInherits mark, and the
// pool ledger must account for every check the guards saw.
func TestChaosFleetForkStorm(t *testing.T) {
	f := forkdFixture(t)
	n := int64(30)
	if testing.Short() {
		n = 6
	}
	modes := []guard.DegradedMode{guard.FailClosed, guard.SlowPathRetry, guard.FailOpen}
	const initial = 4

	var totalInherits uint64
	for seed := int64(0); seed < n; seed++ {
		plan := faults.FromSeed(seed)
		k := kernelsim.New()
		km := guard.InstallModule(k)
		pool := guard.NewCheckPool(2)
		pool.Stall = plan.Stall
		km.UsePool(pool)

		pol := guard.DefaultPolicy()
		pol.OnDegraded = modes[seed%int64(len(modes))]

		var procs []*kernelsim.Process
		for i := 0; i < initial; i++ {
			// Two 'F' commands: each initial process becomes four — the
			// second fork is executed by parent and first child alike,
			// because both inherit the stdin cursor.
			p, err := f.app.Spawn(k, []byte("abFcdFab"))
			if err != nil {
				t.Fatal(err)
			}
			g, err := km.Protect(p, f.ocfg, f.ig, pol)
			if err != nil {
				t.Fatal(err)
			}
			g.Tracer.Fault = plan
			procs = append(procs, p)
		}

		sts, err := k.RunInterleaved(procs, 200, 50_000_000)
		km.Shutdown()
		if err != nil {
			t.Fatalf("seed %d mode %v: storm aborted: %v", seed, pol.OnDegraded, err)
		}

		total := len(k.Procs())
		guards := km.Guards()
		if len(guards) != total {
			t.Errorf("seed %d: %d guards for %d processes: a forked child runs unguarded", seed, len(guards), total)
		}
		if len(sts) != total {
			t.Errorf("seed %d: %d exit statuses for %d processes", seed, len(sts), total)
		}

		var inherits, guardChecks uint64
		for _, g := range guards {
			inherits += g.Stats.ForkInherits
			guardChecks += g.Stats.Checks
		}
		if inherits != uint64(total-initial) {
			t.Errorf("seed %d: %d ForkInherits across %d processes (%d initial): inheritance miscounted",
				seed, inherits, total, initial)
		}
		totalInherits += inherits

		ps := pool.Snapshot()
		if guardChecks != ps.Checks+ps.Shed {
			t.Errorf("seed %d: %d guard checks vs %d admitted + %d shed: checks dropped silently",
				seed, guardChecks, ps.Checks, ps.Shed)
		}
		if pol.OnDegraded == guard.FailOpen && !plan.Corrupting() {
			for i, st := range sts {
				if !st.Exited {
					t.Errorf("seed %d fail-open: benign process %d did not survive a loss-only plan: %v (plan %+v)",
						seed, i, st, plan.Config())
				}
			}
		}
	}
	if totalInherits == 0 {
		t.Error("no fork in the whole sweep inherited protection; the storm never stormed")
	}
}

// TestChaosFleetTenantFlood floods a sharded FleetPool from a skewed
// tenant population while a seeded fault plan stalls every checker
// slot: admission must shed (deadlines are shorter than the stalls)
// but never miscount — per shard and merged, checks == admitted +
// shed against independently counted offered load, with the guard-side
// ledger agreeing.
func TestChaosFleetTenantFlood(t *testing.T) {
	f := chaosFixture(t)
	const (
		shards       = 3
		workers      = 2
		noisyWorkers = 8
		tenants      = 10
		rounds       = 20
	)
	for seed := int64(0); seed < 3; seed++ {
		plan := faults.New(faults.Config{
			Seed:     1000 + seed,
			Rates:    stallAlways(),
			StallFor: time.Duration(100+seed*150) * time.Microsecond,
		})
		fp := guard.NewFleetPool(shards, workers)
		for _, p := range fp.Shards() {
			p.Stall = plan.Stall
			p.Deadline = 50 * time.Microsecond
			p.QueueLimit = 1
		}

		offered := make([]atomic.Uint64, shards)
		var guards []*guard.Guard
		var mu sync.Mutex
		var wg sync.WaitGroup
		drive := func(tenant string, g *guard.Guard) {
			defer wg.Done()
			shard := fp.ShardIndex(tenant)
			for r := 0; r < rounds; r++ {
				offered[shard].Add(1)
				fp.Do(tenant, g)
			}
		}
		for i := 0; i < tenants; i++ {
			name := fmt.Sprintf("tenant-%d", i)
			workersFor := 1
			if i == 0 {
				workersFor = noisyWorkers // the flooding tenant
			}
			for w := 0; w < workersFor; w++ {
				g := idleGuard(t, f, guard.DefaultPolicy())
				mu.Lock()
				guards = append(guards, g)
				mu.Unlock()
				wg.Add(1)
				go drive(name, g)
			}
		}
		wg.Wait()

		var total uint64
		var sum guard.PoolStats
		for s, ps := range fp.ShardSnapshots() {
			off := offered[s].Load()
			total += off
			if ps.Checks+ps.Shed != off {
				t.Errorf("seed %d shard %d ledger: admitted %d + shed %d != offered %d",
					seed, s, ps.Checks, ps.Shed, off)
			}
			if ps.FairnessSheds > ps.Shed {
				t.Errorf("seed %d shard %d: fairness sheds %d exceed sheds %d", seed, s, ps.FairnessSheds, ps.Shed)
			}
			sum.Merge(ps)
		}
		merged := fp.Snapshot()
		if sum.Checks != merged.Checks || sum.Shed != merged.Shed || sum.FairnessSheds != merged.FairnessSheds {
			t.Errorf("seed %d: shard sum %+v diverges from merged %+v", seed, sum, merged)
		}
		if merged.Checks+merged.Shed != total {
			t.Errorf("seed %d merged ledger: admitted %d + shed %d != offered %d", seed, merged.Checks, merged.Shed, total)
		}
		if merged.Shed == 0 {
			t.Errorf("seed %d: a stalled flood shed nothing; the overload path went untested", seed)
		}
		var agg guard.Stats
		for _, g := range guards {
			agg.Merge(&g.Stats)
		}
		if agg.Checks != total {
			t.Errorf("seed %d: guards account %d checks, %d were offered", seed, agg.Checks, total)
		}
		if agg.Shed != merged.Shed || agg.FairnessSheds != merged.FairnessSheds {
			t.Errorf("seed %d: guard sheds (%d, %d fairness) diverge from pool (%d, %d)",
				seed, agg.Shed, agg.FairnessSheds, merged.Shed, merged.FairnessSheds)
		}
		if counts := plan.Counts(); counts[faults.Stall] == 0 {
			t.Errorf("seed %d: the fault plan never stalled a slot; the flood ran unimpeded", seed)
		}
	}
}

// TestChaosFleetShardStall wedges one shard of a FleetPool — checker
// slots stalled far past the admission deadline — while the other
// shards run clean. Failure containment is the property: tenants on
// clean shards must never be shed or degraded, the wedged shard must
// shed (not deadlock), and every ledger must still balance.
func TestChaosFleetShardStall(t *testing.T) {
	f := chaosFixture(t)
	const (
		shards       = 4
		workers      = 2
		wedgedLoops  = 6
		rounds       = 10
		cleanPerShrd = 2
	)
	fp := guard.NewFleetPool(shards, workers)
	byShard := make([][]string, shards)
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("t-%02d", i)
		byShard[fp.ShardIndex(name)] = append(byShard[fp.ShardIndex(name)], name)
	}
	for s, names := range byShard {
		if len(names) == 0 {
			t.Fatalf("no probe tenant hashed to shard %d; widen the tenant sweep", s)
		}
	}
	const wedged = 0
	plan := faults.New(faults.Config{
		Seed:     77,
		Rates:    stallAlways(),
		StallFor: 2 * time.Millisecond,
	})
	wp := fp.Shards()[wedged]
	wp.Stall = plan.Stall
	wp.Deadline = 100 * time.Microsecond
	wp.QueueLimit = 1

	offered := make([]atomic.Uint64, shards)
	var cleanGuards []*guard.Guard
	var mu sync.Mutex
	var wg sync.WaitGroup
	// The wedged shard's tenant hammers it concurrently...
	for w := 0; w < wedgedLoops; w++ {
		g := idleGuard(t, f, guard.DefaultPolicy())
		wg.Add(1)
		go func(tenant string, g *guard.Guard) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				offered[wedged].Add(1)
				fp.Do(tenant, g)
			}
		}(byShard[wedged][0], g)
	}
	// ...while tenants on every clean shard check sequentially, within
	// their fair share, and must come back undegraded every time.
	for s := 1; s < shards; s++ {
		names := byShard[s]
		if len(names) > cleanPerShrd {
			names = names[:cleanPerShrd]
		}
		for _, name := range names {
			g := idleGuard(t, f, guard.DefaultPolicy())
			mu.Lock()
			cleanGuards = append(cleanGuards, g)
			mu.Unlock()
			wg.Add(1)
			go func(shard int, tenant string, g *guard.Guard) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					offered[shard].Add(1)
					if res := fp.Do(tenant, g); res.Degraded {
						t.Errorf("tenant %s on clean shard %d degraded: %s", tenant, shard, res.Reason)
					}
				}
			}(s, name, g)
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("wedged shard deadlocked the fleet pool")
	}

	snaps := fp.ShardSnapshots()
	if snaps[wedged].Shed == 0 {
		t.Error("the wedged shard shed nothing; its deadline never fired")
	}
	var sum guard.PoolStats
	for s, ps := range snaps {
		if s != wedged && ps.Shed != 0 {
			t.Errorf("clean shard %d shed %d checks; the wedged shard's failure leaked", s, ps.Shed)
		}
		if off := offered[s].Load(); ps.Checks+ps.Shed != off {
			t.Errorf("shard %d ledger: admitted %d + shed %d != offered %d", s, ps.Checks, ps.Shed, off)
		}
		sum.Merge(ps)
	}
	merged := fp.Snapshot()
	if sum.Checks != merged.Checks || sum.Shed != merged.Shed {
		t.Errorf("shard sum %+v diverges from merged %+v", sum, merged)
	}
	var clean guard.Stats
	for _, g := range cleanGuards {
		clean.Merge(&g.Stats)
	}
	if clean.Shed != 0 || clean.FairnessSheds != 0 {
		t.Errorf("clean-shard tenants were shed: %d total, %d fairness", clean.Shed, clean.FairnessSheds)
	}
}

// idleGuard builds a guard over an empty trace buffer: trivially clean
// checks, maximum admission pressure.
func idleGuard(t *testing.T, f *fixture, pol guard.Policy) *guard.Guard {
	t.Helper()
	tr := ipt.NewTracer(ipt.NewToPA(1 << 16))
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
		t.Fatal(err)
	}
	return guard.New(nil, f.ocfg, f.ig, tr, pol)
}
