package faults

// SliceFaults targets the preemptive world's slice boundaries: it
// recognizes the context-switch marker the kernel module writes when a
// core's trace unit is handed to another task — a bare PIP naming the
// incoming CR3 followed by a MODE.Exec packet, emitted as one 13-byte
// write — and, by seeded draw, truncates it mid-PIP or drops it
// entirely. Every other write passes through untouched, so the damage
// model is precisely "the attribution breadcrumb went missing", the
// §5.1 failure the demux must classify rather than silently misroute:
//
//   - a truncated marker is grammar damage (or, worse, a marker whose
//     CR3 payload is swallowed from the following span — a binding to a
//     CR3 that owns no sink); the demux contains it by dropping to the
//     next PSB and reporting the span's process lost;
//   - a dropped marker silently misattributes everything up to the next
//     PSB, where the PSB+ PIP disagrees with the stale binding and the
//     demux classifies an unmarked loss, reporting both processes.
//
// SliceFaults deliberately does NOT extend Plan's Kind enumeration:
// FromSeed's draw sequence is seed-addressable scenario space, and
// inserting kinds would renumber every existing chaos seed. It is its
// own ipt.WriteFault, composable by wiring it into the per-core tracers
// (guard.KernelModule.InjectCoreFaults) while a Plan damages a
// process's own stream.

import (
	"math/rand"
	"sync"

	"flowguard/internal/trace/ipt"
)

var _ ipt.WriteFault = (*SliceFaults)(nil)

// switchMarkerLen is the context-switch marker's size: a bare PIP
// (2-byte opcode + 8-byte CR3) plus a MODE packet (2-byte opcode +
// 1-byte payload).
const switchMarkerLen = 13

// isSwitchMarker matches a context-switch marker write by content:
// PIP (0x02 0x43) directly followed by MODE (0x02 0x99). Solo tracers
// never produce this write shape — PIPs otherwise appear only inside
// PSB+ where they are part of a larger emission.
func isSwitchMarker(p []byte) bool {
	return len(p) == switchMarkerLen &&
		p[0] == 0x02 && p[1] == 0x43 && p[10] == 0x02 && p[11] == 0x99
}

// SliceConfig parameterizes SliceFaults. The zero value injects nothing.
type SliceConfig struct {
	// Seed makes the injector deterministic per marker sequence.
	Seed int64
	// TruncateRate / DropRate are per-marker probabilities; at most one
	// fault fires per marker (truncate is drawn first).
	TruncateRate float64
	DropRate     float64
	// MaxFaults bounds the total injected faults (0 = unlimited).
	MaxFaults int
}

// SliceFaults is a live slice-boundary fault injector. Safe for
// concurrent use (per-core tracers may be pumped from test goroutines).
type SliceFaults struct {
	cfg SliceConfig

	mu        sync.Mutex
	rng       *rand.Rand
	truncated uint64
	dropped   uint64
}

// NewSliceFaults returns an injector for the config.
func NewSliceFaults(cfg SliceConfig) *SliceFaults {
	return &SliceFaults{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// SliceFromSeed derives a whole slice-fault scenario from one seed:
// truncation-only, drop-only, or both, with rates high enough that a
// preempted run of a few hundred slices fires several faults.
func SliceFromSeed(seed int64) *SliceFaults {
	rng := rand.New(rand.NewSource(seed))
	cfg := SliceConfig{Seed: seed}
	switch rng.Intn(3) {
	case 0:
		cfg.TruncateRate = 0.05 + rng.Float64()*0.25
	case 1:
		cfg.DropRate = 0.05 + rng.Float64()*0.25
	default:
		cfg.TruncateRate = 0.03 + rng.Float64()*0.12
		cfg.DropRate = 0.03 + rng.Float64()*0.12
	}
	return NewSliceFaults(cfg)
}

// Config returns the injector's configuration.
func (sf *SliceFaults) Config() SliceConfig { return sf.cfg }

// Truncated and Dropped count fired faults per kind; Total sums them.
func (sf *SliceFaults) Truncated() uint64 {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	return sf.truncated
}

func (sf *SliceFaults) Dropped() uint64 {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	return sf.dropped
}

func (sf *SliceFaults) Total() uint64 {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	return sf.truncated + sf.dropped
}

// Corrupt implements ipt.WriteFault: non-marker writes pass through
// unchanged; a marker write may be cut mid-PIP or suppressed entirely.
func (sf *SliceFaults) Corrupt(p []byte, off uint64) []byte {
	if !isSwitchMarker(p) {
		return p
	}
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if sf.cfg.MaxFaults > 0 && sf.truncated+sf.dropped >= uint64(sf.cfg.MaxFaults) {
		return p
	}
	r := sf.rng.Float64()
	switch {
	case r < sf.cfg.TruncateRate:
		sf.truncated++
		// Keep 1..9 bytes: anywhere from a lone extension opcode to a
		// PIP one byte short of its CR3 payload.
		return p[:1+sf.rng.Intn(9)]
	case r < sf.cfg.TruncateRate+sf.cfg.DropRate:
		sf.dropped++
		return nil
	}
	return p
}
