package faults_test

// Chaos at slice boundaries: seeded SliceFaults scenarios damage the
// context-switch markers of a preempted multi-core run — benign and
// hijacked processes sharing trace units — and the soak pins the
// transport's failure contract: marker loss is never silent (it surfaces
// as demux resynchronizations, unmarked-loss classifications, or
// guard-level stream-loss accounting), and runs whose markers survived
// intact still detect their attacks in every non-fail-open mode.

import (
	"testing"

	"flowguard/internal/faults"
	"flowguard/internal/guard"
	"flowguard/internal/kernelsim"
)

// runSliceChaos executes one preempted three-process run (two benign
// neighbors + exploit payload) on two cores — more tasks than cores, so
// core 0 genuinely interleaves two CR3s and every slice boundary there
// carries a marker — with sf wired into the shared per-core tracers.
// The attack is always the last process.
func runSliceChaos(t *testing.T, f *fixture, seed int64, mode guard.DegradedMode,
	sf *faults.SliceFaults) (sts []kernelsim.ExitStatus, km *guard.KernelModule, guards []*guard.Guard) {
	t.Helper()
	payload := f.rop
	if (seed/2)%2 == 1 {
		payload = f.srop
	}
	k := kernelsim.New()
	km = guard.InstallModule(k)
	const cores = 2
	if err := km.EnableMulticore(cores); err != nil {
		t.Fatal(err)
	}
	pol := guard.DefaultPolicy()
	pol.OnDegraded = mode
	var procs []*kernelsim.Process
	for _, input := range [][]byte{benignTraffic(), benignTraffic(), payload} {
		p, err := f.app.Spawn(k, input)
		if err != nil {
			t.Fatal(err)
		}
		g, err := km.ProtectMulticore(p, f.ocfg, f.ig, pol)
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
		guards = append(guards, g)
	}
	km.InjectCoreFaults(sf)
	sts, err := k.RunMulticore(procs, cores, 150+uint64(seed%3)*100, 200_000_000)
	if err != nil {
		t.Fatalf("seed %d mode %v: run aborted: %v", seed, mode, err)
	}
	km.FlushMulticore()
	km.Shutdown()
	return sts, km, guards
}

// TestChaosSliceBoundarySoak sweeps seeded slice-fault scenarios across
// the degraded modes. Per-seed guarantees are statistical (a dropped
// marker is only classifiable once a PSB lands inside the misattributed
// span), so the assertions are: intact-marker runs must still kill
// their attacks; across the soak, every classification channel —
// grammar-damage resyncs, unmarked losses, and per-guard stream-loss
// counters — must actually fire; and no fired fault may leave the whole
// soak unclassified.
func TestChaosSliceBoundarySoak(t *testing.T) {
	f := chaosFixture(t)
	n := int64(48)
	if testing.Short() {
		n = 12
	}
	modes := []guard.DegradedMode{guard.FailClosed, guard.SlowPathRetry, guard.FailOpen}

	var fired, resyncs, unmarked, streamLosses uint64
	var faultedAttacks, faultedDetected, cleanRuns int
	for seed := int64(0); seed < n; seed++ {
		mode := modes[seed%3]
		sf := faults.SliceFromSeed(seed)
		sts, km, guards := runSliceChaos(t, f, seed, mode, sf)

		total := sf.Total()
		fired += total
		dmx := km.DemuxStats()
		resyncs += uint64(dmx.Resyncs)
		unmarked += uint64(dmx.UnmarkedLosses)
		for _, g := range guards {
			streamLosses += g.Stats.StreamLosses
		}
		if total == 0 {
			// Markers intact: the transport is byte-identical to the
			// fault-free world, so the security contract holds exactly.
			cleanRuns++
			if mode != guard.FailOpen && !sts[2].Killed {
				t.Errorf("seed %d mode %v: attack not detected with intact markers (cfg %+v)",
					seed, mode, sf.Config())
			}
			if dmx.Resyncs != 0 || dmx.UnmarkedLosses != 0 {
				t.Errorf("seed %d: no fault fired yet demux classified Resyncs=%d UnmarkedLosses=%d",
					seed, dmx.Resyncs, dmx.UnmarkedLosses)
			}
		} else if mode != guard.FailOpen {
			faultedAttacks++
			if sts[2].Killed {
				faultedDetected++
			}
		}
	}

	if fired == 0 {
		t.Fatal("soak fired no slice faults; the injector never saw a marker write")
	}
	if resyncs == 0 {
		t.Error("no truncated marker was contained by a resynchronization")
	}
	if unmarked == 0 {
		t.Error("no dropped marker was classified as an unmarked loss")
	}
	if streamLosses == 0 {
		t.Error("no marker fault surfaced in a guard's StreamLosses accounting")
	}
	if faultedAttacks > 0 && faultedDetected == 0 {
		t.Errorf("0 of %d attacks detected under marker faults; detection collapsed entirely", faultedAttacks)
	}
	t.Logf("%d seeds (%d fault-free): fired=%d resyncs=%d unmarked=%d streamLosses=%d faultedAttacks=%d/%d",
		n, cleanRuns, fired, resyncs, unmarked, streamLosses, faultedDetected, faultedAttacks)
}

// TestSliceFaultDropIsUnmarkedLoss is the deterministic core of the
// soak's statistical claim: dropping EVERY context-switch marker leaves
// attribution pinned to whatever the first PSB named, so each later
// PSB+ PIP naming the other process must be classified as an unmarked
// loss and charged to both processes' stream-loss accounts.
func TestSliceFaultDropIsUnmarkedLoss(t *testing.T) {
	f := chaosFixture(t)
	sf := faults.NewSliceFaults(faults.SliceConfig{Seed: 1, DropRate: 1})
	sts, km, guards := runSliceChaos(t, f, 0, guard.FailOpen, sf)
	if sf.Dropped() == 0 {
		t.Fatal("no markers dropped; scenario vacuous")
	}
	dmx := km.DemuxStats()
	if dmx.UnmarkedLosses == 0 {
		t.Errorf("every marker dropped yet UnmarkedLosses=0 (Resyncs=%d)", dmx.Resyncs)
	}
	var losses uint64
	for _, g := range guards {
		losses += g.Stats.StreamLosses
	}
	if losses == 0 {
		t.Error("unmarked losses never reached the guards' StreamLosses counters")
	}
	_ = sts
}

// TestSliceFaultTruncateIsContained: truncating every marker must never
// silently misroute — each damaged boundary surfaces as grammar-damage
// resynchronization or unmarked-loss classification, with the affected
// processes charged.
func TestSliceFaultTruncateIsContained(t *testing.T) {
	f := chaosFixture(t)
	sf := faults.NewSliceFaults(faults.SliceConfig{Seed: 2, TruncateRate: 1})
	_, km, guards := runSliceChaos(t, f, 1, guard.FailOpen, sf)
	if sf.Truncated() == 0 {
		t.Fatal("no markers truncated; scenario vacuous")
	}
	dmx := km.DemuxStats()
	if dmx.Resyncs == 0 && dmx.UnmarkedLosses == 0 {
		t.Error("every marker truncated yet the demux classified nothing")
	}
	var losses uint64
	for _, g := range guards {
		losses += g.Stats.StreamLosses
	}
	if losses == 0 {
		t.Error("truncation damage never reached the guards' StreamLosses counters")
	}
}
