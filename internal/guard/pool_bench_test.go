package guard_test

// Throughput benchmark of the bounded checker-core pool (§6): guards
// for a fleet of traced vulnd processes push steady-state endpoint
// checks through one CheckPool, and the workers axis shows how checking
// capacity scales with dedicated cores. Tier-1 in fgperf's regression
// gate: a regression here means the pool's admission machinery (slot
// channel, accounting mutex) got more expensive relative to the checks
// it schedules.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"flowguard/internal/apps"
	"flowguard/internal/cfg"
	"flowguard/internal/guard"
	"flowguard/internal/itc"
	"flowguard/internal/kernelsim"
	"flowguard/internal/module"
	"flowguard/internal/trace/ipt"
)

// poolBench caches the offline phase for the pool benchmarks: one
// analysis plus training pass, shared by every sub-benchmark (the same
// offline/online split analyze/train give the tests, but usable from a
// *testing.B).
var poolBench struct {
	once sync.Once
	err  error
	app  *apps.App
	as   *module.AddressSpace
	ocfg *cfg.Graph
	ig   *itc.Graph
}

func poolBenchSetup(b *testing.B) {
	b.Helper()
	poolBench.once.Do(func() {
		app := apps.Vulnd()
		as, err := app.Load()
		if err != nil {
			poolBench.err = err
			return
		}
		ocfg, err := cfg.Build(as)
		if err != nil {
			poolBench.err = err
			return
		}
		ig := itc.FromCFG(ocfg)
		for _, in := range [][]byte{benignTraffic(), []byte("G /x\nP 32\nH /h\n")} {
			k := kernelsim.New()
			p, err := app.Spawn(k, in)
			if err != nil {
				poolBench.err = err
				return
			}
			tr := ipt.NewTracer(ipt.NewToPA(16 << 20))
			if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
				poolBench.err = err
				return
			}
			p.CPU.Branch = tr
			if st, err := k.Run(p, 50_000_000); err != nil || !st.Exited {
				poolBench.err = fmt.Errorf("training run: %v %v", st, err)
				return
			}
			tr.Flush()
			evs, err := ipt.DecodeFast(tr.Out.Snapshot())
			if err != nil {
				poolBench.err = err
				return
			}
			if !ig.ObserveWindow(ipt.ExtractTIPs(evs)) {
				poolBench.err = fmt.Errorf("training observed an edge outside the ITC-CFG")
				return
			}
		}
		ig.RebuildCache()
		poolBench.app, poolBench.as, poolBench.ocfg, poolBench.ig = app, as, ocfg, ig
	})
	if poolBench.err != nil {
		b.Fatal(poolBench.err)
	}
}

// newTracedGuard runs one benign vulnd instance to completion with a
// tracer attached and returns a guard over the recorded trace. The
// first Check decodes the window incrementally; after that the stream
// is static, so every pooled check measures the steady-state fast loop
// plus the pool's admission overhead.
func newTracedGuard(b *testing.B) *guard.Guard {
	b.Helper()
	k := kernelsim.New()
	p, err := poolBench.app.Spawn(k, benignTraffic())
	if err != nil {
		b.Fatal(err)
	}
	tr := ipt.NewTracer(ipt.NewToPA(1 << 20))
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
		b.Fatal(err)
	}
	p.CPU.Branch = tr
	if st, err := k.Run(p, 80_000_000); err != nil || !st.Exited {
		b.Fatalf("traced run: %v %v", st, err)
	}
	tr.Flush()
	return guard.New(poolBench.as, poolBench.ocfg, poolBench.ig, tr, guard.DefaultPolicy())
}

func BenchmarkCheckPoolThroughput(b *testing.B) {
	poolBenchSetup(b)
	for _, workers := range []int{1, 2, 4} {
		// "w1" not "workers-1": a trailing -<digits> would be
		// indistinguishable from the -GOMAXPROCS suffix fgperf's
		// parser strips to keep artifacts machine-portable.
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			pool := guard.NewCheckPool(workers)
			shared := guard.NewApprovalCache()
			fleet := runtime.GOMAXPROCS(0)
			guards := make(chan *guard.Guard, fleet)
			for i := 0; i < fleet; i++ {
				g := newTracedGuard(b)
				g.ShareApprovals(shared)
				// Absorb the one-time window decode (and any first
				// slow path) so the measured loop is steady state.
				if res := g.Check(); res.Verdict != guard.VerdictClean {
					b.Fatalf("priming check: %+v", res)
				}
				guards <- g
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				g := <-guards
				defer func() { guards <- g }()
				for pb.Next() {
					if res := pool.Do(g); res.Verdict != guard.VerdictClean {
						b.Errorf("benign steady-state check: %+v", res)
						return
					}
				}
			})
			b.StopTimer()
			ps := pool.Snapshot()
			if ps.Shed != 0 {
				b.Fatalf("unbounded pool shed %d checks", ps.Shed)
			}
		})
	}
}
