package guard_test

import (
	"strings"
	"testing"

	"flowguard/internal/apps"
	"flowguard/internal/attack"
	"flowguard/internal/cfg"
	"flowguard/internal/guard"
	"flowguard/internal/itc"
	"flowguard/internal/kernelsim"
	"flowguard/internal/trace"
	"flowguard/internal/trace/ipt"
)

const ctlTrace = ipt.CtlTraceEn | ipt.CtlBranchEn | ipt.CtlUser | ipt.CtlToPA

// analyzed caches the offline phase for the vulnerable server: the CFG
// depends only on the binaries and load addresses, which are
// deterministic, so one analysis serves every spawned instance — exactly
// the paper's offline/online split.
type analyzed struct {
	app  *apps.App
	ocfg *cfg.Graph
	ig   *itc.Graph
}

func analyze(t *testing.T, app *apps.App) *analyzed {
	t.Helper()
	as, err := app.Load()
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(as)
	if err != nil {
		t.Fatal(err)
	}
	return &analyzed{app: app, ocfg: g, ig: itc.FromCFG(g)}
}

// train replays inputs under the IPT model and labels the ITC-CFG
// (§4.3 step 3).
func (a *analyzed) train(t *testing.T, inputs ...[]byte) {
	t.Helper()
	for _, in := range inputs {
		k := kernelsim.New()
		p, err := a.app.Spawn(k, in)
		if err != nil {
			t.Fatal(err)
		}
		tr := ipt.NewTracer(ipt.NewToPA(16 << 20))
		if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
			t.Fatal(err)
		}
		p.CPU.Branch = tr
		if st, err := k.Run(p, 50_000_000); err != nil || !st.Exited {
			t.Fatalf("training run: %v %v", st, err)
		}
		tr.Flush()
		evs, err := ipt.DecodeFast(tr.Out.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if !a.ig.ObserveWindow(ipt.ExtractTIPs(evs)) {
			t.Fatal("training observed an edge outside the ITC-CFG")
		}
	}
	a.ig.RebuildCache()
}

// protectAndRun spawns the app under full FlowGuard protection and runs
// it on the input.
func (a *analyzed) protectAndRun(t *testing.T, input []byte, pol guard.Policy) (kernelsim.ExitStatus, *guard.KernelModule, *guard.Guard, *kernelsim.Process) {
	t.Helper()
	k := kernelsim.New()
	p, err := a.app.Spawn(k, input)
	if err != nil {
		t.Fatal(err)
	}
	km := guard.InstallModule(k)
	g, err := km.Protect(p, a.ocfg, a.ig, pol)
	if err != nil {
		t.Fatal(err)
	}
	st, err := k.Run(p, 80_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return st, km, g, p
}

func benignTraffic() []byte {
	return []byte("G /index\nG /api/v1/users\nH /health\nP 128\nG /about\nG /static/logo\nP 256\nG /index2\n")
}

func TestBenignTrafficSurvivesProtection(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic(), []byte("G /x\nP 32\nH /h\n"))
	st, km, g, p := a.protectAndRun(t, benignTraffic(), guard.DefaultPolicy())
	if !st.Exited {
		t.Fatalf("benign run under protection: %v; reports: %v", st, km.Reports)
	}
	if len(km.Reports) != 0 {
		t.Fatalf("false positives: %v", km.Reports)
	}
	if g.Stats.Checks == 0 {
		t.Fatal("no endpoint checks ran")
	}
	if len(p.Stdout) == 0 {
		t.Error("no output under protection")
	}
	t.Logf("checks=%d slow=%d cred-ratio=%.3f", g.Stats.Checks, g.Stats.SlowChecks, g.Stats.CredRatioRuntime())
}

// TestNoFalsePositivesWithoutTraining is the conservatism guarantee end
// to end: even with an empty training set (everything low-credit, every
// window slow-pathed), legitimate execution is never killed.
func TestNoFalsePositivesWithoutTraining(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	st, km, g, _ := a.protectAndRun(t, benignTraffic(), guard.DefaultPolicy())
	if !st.Exited {
		t.Fatalf("untrained benign run: %v; reports: %v", st, km.Reports)
	}
	if len(km.Reports) != 0 {
		t.Fatalf("false positives: %v", km.Reports)
	}
	if g.Stats.SlowChecks == 0 {
		t.Error("expected slow paths without training")
	}
}

// TestSlowVerdictCache verifies §7.1.1: cached slow-path approvals make
// later identical windows fast-path-only.
func TestSlowVerdictCache(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	// Repetitive traffic, untrained: the first window slow-paths, later
	// identical windows must hit the approved-edge cache.
	input := []byte(strings.Repeat("G /index\n", 12))
	st, _, g, _ := a.protectAndRun(t, input, guard.DefaultPolicy())
	if !st.Exited {
		t.Fatalf("run: %v", st)
	}
	if g.Stats.SlowChecks == 0 {
		t.Fatal("no slow paths at all")
	}
	if g.Stats.SlowChecks >= g.Stats.Checks {
		t.Errorf("slow=%d of %d checks; approvals not cached", g.Stats.SlowChecks, g.Stats.Checks)
	}
	if g.Stats.CacheHits == 0 {
		t.Error("no cache hits recorded")
	}
}

func TestROPDetectedAtWrite(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())
	as, _ := a.app.Load()
	payload, err := attack.BuildROPWrite(as)
	if err != nil {
		t.Fatal(err)
	}
	st, km, _, p := a.protectAndRun(t, payload, guard.DefaultPolicy())
	if !st.Killed || st.Signal != kernelsim.SIGKILL {
		t.Fatalf("ROP run: %v, want SIGKILL", st)
	}
	if len(km.Reports) == 0 {
		t.Fatal("no violation report")
	}
	r := km.Reports[0]
	if r.Syscall != kernelsim.SysWrite {
		t.Errorf("detected at %s, want write (paper §7.1.2)", kernelsim.SyscallName(r.Syscall))
	}
	// The attacker goal must have been stopped.
	if got, ok := kernelFile(p); ok && got == attack.ROPMarker {
		t.Error("attack wrote the target file despite detection")
	}
	t.Logf("report: %v", r)
}

func kernelFile(p *kernelsim.Process) (string, bool) {
	// The file lives in the kernel's fs; reach it via a fresh handle on
	// the process's kernel is not exposed, so tests that need it use
	// their own kernel reference. Here we only check via Execves being
	// empty; the stronger file assertions live in the unprotected test.
	return "", false
}

// TestROPSucceedsUnprotected validates the exploit itself: without
// FlowGuard the chain opens the file and writes the marker.
func TestROPSucceedsUnprotected(t *testing.T) {
	app := apps.Vulnd()
	as, err := app.Load()
	if err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildROPWrite(as)
	if err != nil {
		t.Fatal(err)
	}
	k := kernelsim.New()
	p, err := app.Spawn(k, payload)
	if err != nil {
		t.Fatal(err)
	}
	st, err := k.Run(p, 80_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Exited {
		t.Fatalf("unprotected ROP run: %v (fault %v)", st, st.FaultErr)
	}
	got, ok := k.FileContents(attack.ROPFileName)
	if !ok || string(got) != attack.ROPMarker {
		t.Fatalf("exploit did not work: file %q = %q, %v", attack.ROPFileName, got, ok)
	}
}

func TestSROPDetectedAtSigreturn(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())
	as, _ := a.app.Load()
	payload, err := attack.BuildSROP(as)
	if err != nil {
		t.Fatal(err)
	}
	st, km, _, p := a.protectAndRun(t, payload, guard.DefaultPolicy())
	if !st.Killed {
		t.Fatalf("SROP run: %v, want SIGKILL", st)
	}
	if len(km.Reports) == 0 {
		t.Fatal("no violation report")
	}
	if got := km.Reports[0].Syscall; got != kernelsim.SysSigreturn {
		t.Errorf("detected at %s, want sigreturn (paper §7.1.2)", kernelsim.SyscallName(got))
	}
	if len(p.Execves) != 0 {
		t.Error("SROP reached execve despite detection")
	}
}

func TestSROPSucceedsUnprotected(t *testing.T) {
	app := apps.Vulnd()
	as, _ := app.Load()
	payload, err := attack.BuildSROP(as)
	if err != nil {
		t.Fatal(err)
	}
	k := kernelsim.New()
	p, err := app.Spawn(k, payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(p, 80_000_000); err != nil {
		t.Fatal(err)
	}
	if len(p.Execves) == 0 {
		t.Fatal("unprotected SROP did not reach execve")
	}
}

func TestRet2LibDetected(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())
	as, _ := a.app.Load()
	payload, err := attack.BuildRet2Lib(as)
	if err != nil {
		t.Fatal(err)
	}
	st, km, _, p := a.protectAndRun(t, payload, guard.DefaultPolicy())
	if !st.Killed {
		t.Fatalf("ret2lib run: %v, want SIGKILL", st)
	}
	if len(km.Reports) == 0 {
		t.Fatal("no violation report")
	}
	if got := km.Reports[0].Syscall; got != kernelsim.SysExecve {
		t.Errorf("detected at %s, want execve", kernelsim.SyscallName(got))
	}
	if len(p.Execves) != 0 {
		t.Error("ret2lib spawned despite detection")
	}
}

// TestHistoryFlushStillDetected: >30 NOP-like hops cannot flush the
// window because the hops themselves violate the ITC-CFG (§7.1.1).
func TestHistoryFlushStillDetected(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())
	as, _ := a.app.Load()
	payload, err := attack.BuildHistoryFlush(as, 48)
	if err != nil {
		t.Fatal(err)
	}
	st, km, _, _ := a.protectAndRun(t, payload, guard.DefaultPolicy())
	if !st.Killed {
		t.Fatalf("history-flush run: %v, want SIGKILL", st)
	}
	if len(km.Reports) == 0 {
		t.Fatal("no violation report")
	}
	t.Logf("report: %v", km.Reports[0])
}

// TestHWDecoderAblation: the §6 hardware-decoder suggestion shrinks the
// fast-path decode share (§7.2.4).
func TestHWDecoderAblation(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())

	pol := guard.DefaultPolicy()
	_, _, gSW, _ := a.protectAndRun(t, benignTraffic(), pol)
	pol.HWDecoder = true
	_, _, gHW, _ := a.protectAndRun(t, benignTraffic(), pol)
	if gHW.Stats.FastCycles() >= gSW.Stats.FastCycles() {
		t.Errorf("HW decoder fast cycles %d >= SW %d", gHW.Stats.FastCycles(), gSW.Stats.FastCycles())
	}
}

// TestModuleStridePolicy: disabling the stride requirement still detects
// the ROP (the edges are bogus regardless), and the policy toggles are
// exercised.
func TestPolicyVariants(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())
	as, _ := a.app.Load()
	payload, err := attack.BuildROPWrite(as)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []guard.Policy{
		{PktCount: 10, CredRatio: 1, Endpoints: guard.DefaultEndpoints()},
		{PktCount: 30, CredRatio: 0.5, RequireModuleStride: true, Endpoints: guard.DefaultEndpoints()},
		{PktCount: 60, CredRatio: 1, RequireModuleStride: true, Endpoints: guard.DefaultEndpoints()},
	} {
		st, _, _, _ := a.protectAndRun(t, payload, pol)
		if !st.Killed {
			t.Errorf("policy %+v missed the ROP", pol)
		}
	}
}

// TestUnprotectedProcessPassesThrough: interceptors must not affect
// other processes (CR3 discrimination, §5.2).
func TestUnprotectedProcessPassesThrough(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	k := kernelsim.New()
	km := guard.InstallModule(k)
	// Protect one process...
	p1, err := a.app.Spawn(k, benignTraffic())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := km.Protect(p1, a.ocfg, a.ig, guard.DefaultPolicy()); err != nil {
		t.Fatal(err)
	}
	// ...then run a different, unprotected process through the same
	// syscall table.
	p2, err := a.app.Spawn(k, benignTraffic())
	if err != nil {
		t.Fatal(err)
	}
	st, err := k.Run(p2, 80_000_000)
	if err != nil || !st.Exited {
		t.Fatalf("unprotected sibling: %v %v", st, err)
	}
	if len(km.Reports) != 0 {
		t.Fatalf("reports against unprotected process: %v", km.Reports)
	}
	// Unprotect releases the guard.
	km.Unprotect(p1)
	st1, err := k.Run(p1, 80_000_000)
	if err != nil || !st1.Exited {
		t.Fatalf("p1 after unprotect: %v %v", st1, err)
	}
}

// TestTrainingReducesSlowPaths mirrors Figure 5(d)'s consequence: the
// trained guard slow-paths less than the untrained one on identical
// traffic.
func TestTrainingReducesSlowPaths(t *testing.T) {
	input := benignTraffic()

	aU := analyze(t, apps.Vulnd())
	_, _, gU, _ := aU.protectAndRun(t, input, guard.DefaultPolicy())

	aT := analyze(t, apps.Vulnd())
	aT.train(t, input, []byte("G /q\nP 64\n"))
	_, _, gT, _ := aT.protectAndRun(t, input, guard.DefaultPolicy())

	if gT.Stats.SlowChecks >= gU.Stats.SlowChecks {
		t.Errorf("trained slow checks %d >= untrained %d", gT.Stats.SlowChecks, gU.Stats.SlowChecks)
	}
	if gT.Stats.CredRatioRuntime() <= gU.Stats.CredRatioRuntime() {
		t.Errorf("trained cred-ratio %.3f <= untrained %.3f",
			gT.Stats.CredRatioRuntime(), gU.Stats.CredRatioRuntime())
	}
}

// TestTrace sink composition: the module must not clobber an existing
// branch sink.
func TestProtectPreservesExistingSink(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	k := kernelsim.New()
	p, err := a.app.Spawn(k, benignTraffic())
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	p.CPU.Branch = trace.SinkFunc(func(trace.Branch) { seen++ })
	km := guard.InstallModule(k)
	if _, err := km.Protect(p, a.ocfg, a.ig, guard.DefaultPolicy()); err != nil {
		t.Fatal(err)
	}
	if st, err := k.Run(p, 80_000_000); err != nil || !st.Exited {
		t.Fatalf("run: %v %v", st, err)
	}
	if seen == 0 {
		t.Error("pre-existing sink no longer receives branches")
	}
}
