package guard_test

// Concurrency tests (run them under -race): several protected processes
// execute simultaneously on their own goroutines — the §6 multi-core
// deployment — with endpoint checks bounded by a CheckPool and slow-path
// verdicts pooled in a shared ApprovalCache.

import (
	"testing"

	"flowguard/internal/apps"
	"flowguard/internal/attack"
	"flowguard/internal/guard"
	"flowguard/internal/kernelsim"
)

func ropPayload(t *testing.T, a *analyzed) []byte {
	t.Helper()
	as, err := a.app.Load()
	if err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildROPWrite(as)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

func TestParallelProtectedProcesses(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic(), []byte("G /x\nP 32\nH /h\n"))

	k := kernelsim.New()
	km := guard.InstallModule(k)
	pool := guard.NewCheckPool(2)
	km.UsePool(pool)
	shared := guard.NewApprovalCache()

	const procsN = 6
	procs := make([]*kernelsim.Process, procsN)
	guards := make([]*guard.Guard, procsN)
	for i := range procs {
		p, err := a.app.Spawn(k, benignTraffic())
		if err != nil {
			t.Fatal(err)
		}
		g, err := km.Protect(p, a.ocfg, a.ig, guard.DefaultPolicy())
		if err != nil {
			t.Fatal(err)
		}
		g.ShareApprovals(shared)
		procs[i], guards[i] = p, g
	}

	sts, err := k.RunParallel(procs, 80_000_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range sts {
		if !st.Exited {
			t.Fatalf("proc %d: %v; reports: %v", i, st, km.ReportsSnapshot())
		}
	}
	if reps := km.ReportsSnapshot(); len(reps) != 0 {
		t.Fatalf("false positives under parallel checking: %v", reps)
	}

	var agg guard.Stats
	for i, g := range guards {
		if g.Stats.Checks == 0 {
			t.Fatalf("guard %d ran no checks", i)
		}
		agg.Merge(&g.Stats)
	}
	ps := pool.Snapshot()
	if ps.Checks != agg.Checks {
		t.Fatalf("pool admitted %d checks, guards ran %d", ps.Checks, agg.Checks)
	}
	if agg.Violations != 0 {
		t.Fatalf("aggregate stats report %d violations", agg.Violations)
	}
}

// TestParallelAttackIsolation: one hijacked process among concurrent
// benign siblings is killed, and only it.
func TestParallelAttackIsolation(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic(), []byte("G /x\nP 32\nH /h\n"))
	payload := ropPayload(t, a)

	k := kernelsim.New()
	km := guard.InstallModule(k)
	km.UsePool(guard.NewCheckPool(3))
	shared := guard.NewApprovalCache()

	inputs := [][]byte{benignTraffic(), payload, benignTraffic(), benignTraffic()}
	procs := make([]*kernelsim.Process, len(inputs))
	for i, in := range inputs {
		p, err := a.app.Spawn(k, in)
		if err != nil {
			t.Fatal(err)
		}
		g, err := km.Protect(p, a.ocfg, a.ig, guard.DefaultPolicy())
		if err != nil {
			t.Fatal(err)
		}
		g.ShareApprovals(shared)
		procs[i] = p
	}
	sts, err := k.RunParallel(procs, 80_000_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sts[1].Killed {
		t.Fatalf("hijacked process not killed: %v", sts[1])
	}
	for _, i := range []int{0, 2, 3} {
		if !sts[i].Exited {
			t.Fatalf("benign proc %d: %v", i, sts[i])
		}
	}
	reps := km.ReportsSnapshot()
	if len(reps) == 0 {
		t.Fatal("no violation report")
	}
	for _, r := range reps {
		if r.PID != procs[1].PID {
			t.Fatalf("report against the wrong process: %+v", r)
		}
	}
}

// TestSharedApprovalsConvertSlowPathsToFast: with verdict pooling, a
// window slow-path-approved by the first process is fast-path-accepted
// by every later sibling, so total slow checks drop versus isolated
// caches.
func TestSharedApprovalsConvertSlowPathsToFast(t *testing.T) {
	// Train sparsely so benign traffic leaves untrained (low-credit)
	// edges that escalate to the slow path.
	a := analyze(t, apps.Vulnd())
	a.train(t, []byte("G /x\n"))

	run := func(share bool) (slow uint64) {
		k := kernelsim.New()
		km := guard.InstallModule(k)
		shared := guard.NewApprovalCache()
		procs := make([]*kernelsim.Process, 4)
		guards := make([]*guard.Guard, 4)
		for i := range procs {
			p, err := a.app.Spawn(k, benignTraffic())
			if err != nil {
				t.Fatal(err)
			}
			g, err := km.Protect(p, a.ocfg, a.ig, guard.DefaultPolicy())
			if err != nil {
				t.Fatal(err)
			}
			if share {
				g.ShareApprovals(shared)
			}
			procs[i], guards[i] = p, g
		}
		// Serialize execution so the sharing benefit is deterministic:
		// the first process populates the cache before the others check.
		for i, p := range procs {
			if st, err := k.Run(p, 80_000_000); err != nil || !st.Exited {
				t.Fatalf("proc %d: %v %v; reports %v", i, st, err, km.ReportsSnapshot())
			}
		}
		var agg guard.Stats
		for _, g := range guards {
			agg.Merge(&g.Stats)
		}
		if agg.SlowChecks == 0 && !share {
			t.Fatal("sparse training produced no slow paths; test is vacuous")
		}
		return agg.SlowChecks
	}

	isolated := run(false)
	pooled := run(true)
	if pooled >= isolated {
		t.Fatalf("shared approvals did not reduce slow checks: %d (shared) vs %d (isolated)", pooled, isolated)
	}
}
